#!/usr/bin/env sh
# Benchmark-regression harness: runs the paired observability
# micro/macro benchmarks (plain vs -Obs variants of AdaptiveDecision
# and MachineReset), plus the quote service's built-in load generator,
# and writes the results to BENCH_obs.json. For every Name/NameObs
# pair the report includes obs_overhead_pct — the acceptance budget is
# 5% on the macro (AdaptiveDecision) pair; CI uploads the file as an
# artifact so regressions are diffable across runs.
#
# The same run also covers the batched-replay pair (AdaptiveDecision
# Batched vs Oracle, plus the BatchRank macro) and writes BENCH_batch
# .json with the measured speedup_x and allocation ratio. The batched
# engine replacing per-permutation machine replays is the whole point,
# so the script fails if it measures slower than the oracle.
#
# Finally the cluster simulator (quotelb -sim) sweeps the routing
# policies across offered-load levels and writes the capacity curves
# plus the quota and backend-kill scenarios to BENCH_cluster.json. The
# simulator process itself enforces the fleet gates — affinity routing
# must meet round-robin's cache-hit floor, quota exhaustion must yield
# counted 429s, and a killed backend must eject without a
# client-visible error — so a violated gate fails this script.
#
# The streaming pair (StreamTick vs StreamFullRerank) measures the
# incremental per-tick re-ranker against a from-scratch Rank per tick
# over the same retention window, and the streaming load generator
# (quoted -selfbench -stream) measures plan-push latency over real SSE
# connections; both land in BENCH_stream.json. The per-tick update must
# be at least 5x faster than the full re-rank — the point of streaming
# quotes — or the script fails.
#
# The fleet chaos soak (chaossim -fleet) runs last and writes its
# aggregate recovery accounting — kills, restores, catch-up ticks per
# restore — to BENCH_chaos_fleet.json; the soak process enforces its
# own gates (zero client errors, snapshot resume, determinism), so a
# violated fleet invariant fails this script too.
#
# The counterfactual-replay pair (CounterfactualReplay vs
# CounterfactualNaive) measures scripted decision replay — pinned
# prefix, no evaluator sweeps — against naively re-simulating the whole
# prefix with a live strategy, on the paper's full §7 evaluation grid;
# together with the TunerSearch throughput (decisions/s) it lands in
# BENCH_tuner.json. Scripted replay must be at least 3x faster than the
# naive path — the point of recording decisions — or the script fails.
#
# Usage: scripts/bench.sh [obs-output] [batch-output] [cluster-output] [stream-output] [fleet-output] [tuner-output]
#        (defaults BENCH_obs.json, BENCH_batch.json, BENCH_cluster.json,
#        BENCH_stream.json, BENCH_chaos_fleet.json, BENCH_tuner.json)
set -eu
cd "$(dirname "$0")/.."

out=${1:-BENCH_obs.json}
batchout=${2:-BENCH_batch.json}
clusterout=${3:-BENCH_cluster.json}
streamout=${4:-BENCH_stream.json}
fleetout=${5:-BENCH_chaos_fleet.json}
tunerout=${6:-BENCH_tuner.json}
count=${BENCH_COUNT:-3}
clients=${BENCH_CLIENTS:-50}
duration=${BENCH_DURATION:-3s}
sim_loads=${BENCH_SIM_LOADS:-300,1200,4800}
sim_duration=${BENCH_SIM_DURATION:-2s}
stream_subs=${BENCH_STREAM_SUBS:-50}
stream_rate=${BENCH_STREAM_RATE:-20}

tmp=$(mktemp)
self=$(mktemp)
streamself=$(mktemp)
trap 'rm -f "$tmp" "$self" "$streamself"' EXIT

echo "bench: go test -bench 'AdaptiveDecision|MachineReset|BatchRank|StreamTick|StreamFullRerank' -count $count" >&2
go test -run '^$' -bench 'AdaptiveDecision|MachineReset|BatchRank|StreamTick|StreamFullRerank' -benchmem \
	-count "$count" . | tee /dev/stderr >"$tmp"

echo "bench: quoted -selfbench $clients -bench-duration $duration" >&2
go run ./cmd/quoted -selfbench "$clients" -bench-duration "$duration" \
	| tee /dev/stderr >"$self"

awk -v self="$self" '
# Benchmark lines: name, iterations, ns/op, B/op, allocs/op. With
# -count > 1 each name repeats; keep the minimum ns/op (least noisy)
# and its companion memory columns.
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)        # strip GOMAXPROCS suffix
	sub(/^Benchmark/, "", name)
	ns = $3; bytes = $5; allocs = $7
	if (!(name in best) || ns + 0 < best[name] + 0) {
		best[name] = ns; mem[name] = bytes; alloc[name] = allocs
		if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
	}
}
END {
	# selfbench lines:
	#   "  requests      N (R req/s), errors E"
	#   "  latency       p50 X.XXXms  p95 X.XXXms  p99 X.XXXms"
	reqs = ""; rate = ""; errs = ""; p50 = ""; p99 = ""
	while ((getline line < self) > 0) {
		if (line ~ /requests/) {
			split(line, f, /[ (),]+/)
			reqs = f[3]; rate = f[4]; errs = f[7]
		}
		if (line ~ /latency/) {
			split(line, f, /[ ]+/)
			p50 = f[4]; p99 = f[8]
			sub(/ms$/, "", p50); sub(/ms$/, "", p99)
		}
	}
	printf "{\n  \"benchmarks\": [\n"
	for (i = 1; i <= n; i++) {
		name = order[i]
		printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
			name, best[name], mem[name], alloc[name], (i < n ? "," : "")
	}
	printf "  ],\n  \"obs_overhead\": [\n"
	m = 0
	for (i = 1; i <= n; i++) {
		base = order[i]
		if (base ~ /Obs$/ || !((base "Obs") in best)) continue
		pair[++m] = base
	}
	for (i = 1; i <= m; i++) {
		base = pair[i]; obs = base "Obs"
		pct = (best[obs] - best[base]) / best[base] * 100
		printf "    {\"name\": \"%s\", \"base_ns_per_op\": %s, \"obs_ns_per_op\": %s, \"obs_overhead_pct\": %.2f}%s\n", \
			base, best[base], best[obs], pct, (i < m ? "," : "")
	}
	printf "  ],\n"
	printf "  \"selfbench\": {\"requests\": %s, \"req_per_sec\": %s, \"errors\": %s, \"p50_ms\": %s, \"p99_ms\": %s}\n", \
		(reqs == "" ? 0 : reqs), (rate == "" ? 0 : rate), (errs == "" ? 0 : errs), \
		(p50 == "" ? 0 : p50), (p99 == "" ? 0 : p99)
	printf "}\n"
}
' "$tmp" >"$out"

echo "bench: wrote $out" >&2

# Batched-replay report: same benchmark output, different lens. The
# Batched/Oracle rows come from one interleaved run, so the speedup is
# a same-machine ratio rather than a cross-run comparison.
awk '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	sub(/^Benchmark/, "", name)
	ns = $3; allocs = $7
	if (!(name in best) || ns + 0 < best[name] + 0) {
		best[name] = ns; alloc[name] = allocs
	}
}
END {
	b = best["AdaptiveDecisionBatched"]; o = best["AdaptiveDecisionOracle"]
	if (b == "" || o == "") {
		print "bench: missing AdaptiveDecisionBatched/Oracle pair" > "/dev/stderr"
		exit 1
	}
	speed = (o + 0) / (b + 0)
	ar = (alloc["AdaptiveDecisionOracle"] + 0) / (alloc["AdaptiveDecisionBatched"] + 0)
	printf "{\n"
	printf "  \"adaptive_decision\": {\"batched_ns_per_op\": %s, \"oracle_ns_per_op\": %s, \"speedup_x\": %.2f, \"batched_allocs_per_op\": %s, \"oracle_allocs_per_op\": %s, \"alloc_ratio_x\": %.2f},\n", \
		b, o, speed, alloc["AdaptiveDecisionBatched"], alloc["AdaptiveDecisionOracle"], ar
	printf "  \"batch_rank\": {\"ns_per_op\": %s, \"allocs_per_op\": %s}\n", \
		best["BatchRank"], alloc["BatchRank"]
	printf "}\n"
	if (speed < 1) {
		printf "bench: batched evaluator slower than oracle (%.2fx)\n", speed > "/dev/stderr"
		exit 1
	}
}
' "$tmp" >"$batchout"

echo "bench: wrote $batchout" >&2

# Cluster capacity curves: the simulator prints the report JSON on
# stdout and exits non-zero if a fleet gate (affinity >= round-robin
# cache hits, counted quota 429s, clean backend-kill ejection) fails.
echo "bench: quotelb -sim -sim-loads $sim_loads -sim-duration $sim_duration" >&2
go run ./cmd/quotelb -sim -sim-loads "$sim_loads" -sim-duration "$sim_duration" >"$clusterout"

echo "bench: wrote $clusterout" >&2

# Streaming report: the per-tick incremental re-rank vs the
# from-scratch baseline (gated at 5x), plus the SSE subscriber load
# generator's plan-push pipeline numbers.
echo "bench: quoted -selfbench $stream_subs -stream -stream-rate $stream_rate -bench-duration $duration" >&2
go run ./cmd/quoted -selfbench "$stream_subs" -stream -stream-rate "$stream_rate" \
	-bench-duration "$duration" | tee /dev/stderr >"$streamself"

awk -v streamself="$streamself" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	sub(/^Benchmark/, "", name)
	ns = $3; allocs = $7
	if (!(name in best) || ns + 0 < best[name] + 0) {
		best[name] = ns; alloc[name] = allocs
	}
}
END {
	tick = best["StreamTick"]; full = best["StreamFullRerank"]
	if (tick == "" || full == "") {
		print "bench: missing StreamTick/StreamFullRerank pair" > "/dev/stderr"
		exit 1
	}
	speed = (full + 0) / (tick + 0)
	# streambench lines:
	#   "  feed          N ticks (R/s), G plan generations"
	#   "  pushes        E plan events delivered (X/subscriber), errors F"
	#   "  push latency  p50 X.XXXms  p95 X.XXXms  p99 X.XXXms"
	ticks = 0; gens = 0; events = 0; p50 = 0; p99 = 0
	while ((getline line < streamself) > 0) {
		if (line ~ /feed/) {
			split(line, f, /[ (),]+/)
			ticks = f[3]; gens = f[6]
		}
		if (line ~ /pushes/) {
			split(line, f, /[ (),]+/)
			events = f[3]
		}
		if (line ~ /push latency/) {
			split(line, f, /[ ]+/)
			p50 = f[5]; p99 = f[9]
			sub(/ms$/, "", p50); sub(/ms$/, "", p99)
		}
	}
	printf "{\n"
	printf "  \"per_tick\": {\"stream_tick_ns_per_op\": %s, \"full_rerank_ns_per_op\": %s, \"speedup_x\": %.2f, \"stream_tick_allocs_per_op\": %s, \"full_rerank_allocs_per_op\": %s},\n", \
		tick, full, speed, alloc["StreamTick"], alloc["StreamFullRerank"]
	printf "  \"streambench\": {\"ticks\": %s, \"generations\": %s, \"plan_events\": %s, \"push_p50_ms\": %s, \"push_p99_ms\": %s}\n", \
		ticks, gens, events, p50, p99
	printf "}\n"
	if (speed < 5) {
		printf "bench: per-tick streaming update only %.2fx faster than full re-rank (gate: 5x)\n", speed > "/dev/stderr"
		exit 1
	}
}
' "$tmp" >"$streamout"

echo "bench: wrote $streamout" >&2

# Counterfactual/tuner report: scripted replay vs naive re-simulation
# (gated at 3x) plus tuner search throughput. BenchmarkTunerSearch
# reports an extra custom "decisions/s" column, so fields are located
# by their unit token rather than by position.
tunertmp=$(mktemp)
echo "bench: go test -bench 'Counterfactual|TunerSearch' -count $count ./internal/decision" >&2
go test -run '^$' -bench 'CounterfactualReplay|CounterfactualNaive|TunerSearch' -benchmem \
	-count "$count" ./internal/decision | tee /dev/stderr >"$tunertmp"

awk '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	sub(/^Benchmark/, "", name)
	ns = ""; dps = ""
	for (i = 2; i < NF; i++) {
		if ($(i + 1) == "ns/op") ns = $i
		if ($(i + 1) == "decisions/s") dps = $i
	}
	if (ns == "") next
	if (!(name in best) || ns + 0 < best[name] + 0) {
		best[name] = ns
		if (dps != "") rate[name] = dps
	}
}
END {
	fast = best["CounterfactualReplay"]; slow = best["CounterfactualNaive"]
	search = best["TunerSearch"]
	if (fast == "" || slow == "" || search == "") {
		print "bench: missing CounterfactualReplay/CounterfactualNaive/TunerSearch rows" > "/dev/stderr"
		exit 1
	}
	speed = (slow + 0) / (fast + 0)
	printf "{\n"
	printf "  \"counterfactual\": {\"replay_ns_per_op\": %s, \"naive_ns_per_op\": %s, \"speedup_x\": %.2f},\n", \
		fast, slow, speed
	printf "  \"tuner\": {\"search_ns_per_op\": %s, \"decisions_per_sec\": %s}\n", \
		search, (rate["TunerSearch"] == "" ? 0 : rate["TunerSearch"])
	printf "}\n"
	if (speed < 3) {
		printf "bench: scripted counterfactual replay only %.2fx faster than naive re-simulation (gate: 3x)\n", speed > "/dev/stderr"
		exit 1
	}
}
' "$tunertmp" >"$tunerout"
rm -f "$tunertmp"

echo "bench: wrote $tunerout" >&2

echo "bench: chaossim -fleet" >&2
go run ./cmd/chaossim -fleet -runs "${BENCH_FLEET_RUNS:-20}" -seed 1 -json >"$fleetout"

echo "bench: wrote $fleetout" >&2
