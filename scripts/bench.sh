#!/usr/bin/env sh
# Benchmark-regression harness: runs the paired observability
# micro/macro benchmarks (plain vs -Obs variants of AdaptiveDecision
# and MachineReset), plus the quote service's built-in load generator,
# and writes the results to BENCH_obs.json. For every Name/NameObs
# pair the report includes obs_overhead_pct — the acceptance budget is
# 5% on the macro (AdaptiveDecision) pair; CI uploads the file as an
# artifact so regressions are diffable across runs.
#
# Usage: scripts/bench.sh [output-file]   (default BENCH_obs.json)
set -eu
cd "$(dirname "$0")/.."

out=${1:-BENCH_obs.json}
count=${BENCH_COUNT:-3}
clients=${BENCH_CLIENTS:-50}
duration=${BENCH_DURATION:-3s}

tmp=$(mktemp)
self=$(mktemp)
trap 'rm -f "$tmp" "$self"' EXIT

echo "bench: go test -bench 'AdaptiveDecision|MachineReset' -count $count" >&2
go test -run '^$' -bench 'AdaptiveDecision|MachineReset' -benchmem \
	-count "$count" . | tee /dev/stderr >"$tmp"

echo "bench: quoted -selfbench $clients -bench-duration $duration" >&2
go run ./cmd/quoted -selfbench "$clients" -bench-duration "$duration" \
	| tee /dev/stderr >"$self"

awk -v self="$self" '
# Benchmark lines: name, iterations, ns/op, B/op, allocs/op. With
# -count > 1 each name repeats; keep the minimum ns/op (least noisy)
# and its companion memory columns.
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)        # strip GOMAXPROCS suffix
	sub(/^Benchmark/, "", name)
	ns = $3; bytes = $5; allocs = $7
	if (!(name in best) || ns + 0 < best[name] + 0) {
		best[name] = ns; mem[name] = bytes; alloc[name] = allocs
		if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
	}
}
END {
	# selfbench line: "  requests      N (R req/s), errors E"
	reqs = ""; rate = ""; errs = ""
	while ((getline line < self) > 0) {
		if (line ~ /requests/) {
			split(line, f, /[ (),]+/)
			reqs = f[3]; rate = f[4]; errs = f[7]
		}
	}
	printf "{\n  \"benchmarks\": [\n"
	for (i = 1; i <= n; i++) {
		name = order[i]
		printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
			name, best[name], mem[name], alloc[name], (i < n ? "," : "")
	}
	printf "  ],\n  \"obs_overhead\": [\n"
	m = 0
	for (i = 1; i <= n; i++) {
		base = order[i]
		if (base ~ /Obs$/ || !((base "Obs") in best)) continue
		pair[++m] = base
	}
	for (i = 1; i <= m; i++) {
		base = pair[i]; obs = base "Obs"
		pct = (best[obs] - best[base]) / best[base] * 100
		printf "    {\"name\": \"%s\", \"base_ns_per_op\": %s, \"obs_ns_per_op\": %s, \"obs_overhead_pct\": %.2f}%s\n", \
			base, best[base], best[obs], pct, (i < m ? "," : "")
	}
	printf "  ],\n"
	printf "  \"selfbench\": {\"requests\": %s, \"req_per_sec\": %s, \"errors\": %s}\n", \
		(reqs == "" ? 0 : reqs), (rate == "" ? 0 : rate), (errs == "" ? 0 : errs)
	printf "}\n"
}
' "$tmp" >"$out"

echo "bench: wrote $out" >&2
