#!/usr/bin/env sh
# Repository gate: vet, build, then the full test suite under the race
# detector. The suite includes doccheck_test.go (exported-symbol doc
# coverage) and the golden determinism tests of the replay engine and
# the parallel permutation evaluator, so a green run certifies both
# correctness and bit-for-bit reproducibility of the figures.
set -eu
cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...
