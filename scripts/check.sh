#!/usr/bin/env sh
# Repository gate: formatting, vet, build, the full test suite under
# the race detector, then a short chaos soak. The suite includes
# doccheck_test.go (exported-symbol doc coverage) and the golden
# determinism tests of the replay engine, the parallel permutation
# evaluator, the batched replay engine (differential against the
# machine oracle, plus the FuzzBatchedMeasure sweep below) and the
# quote service, so a green run certifies correctness, bit-for-bit
# reproducibility of the figures, and byte-identical plan serving. The soak replays the live pipeline
# through 20 seeded fault scenarios and fails on a missed deadline
# without fallback, ledger inconsistency, goroutine leaks or
# nondeterminism. A second, fleet-scale soak drives quotelb over three
# in-process quoted backends (race detector on) through seeded backend
# kills, partitions, slow clients and feed gaps, asserting zero
# client-visible errors, monotonic stream generations, snapshot resume
# and per-seed determinism.
set -eu
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
go build ./...
go test -race ./...
go test -run '^$' -fuzz '^FuzzRowParser$' -fuzztime 5s ./internal/livesched
go test -run '^$' -fuzz '^FuzzBatchedMeasure$' -fuzztime 5s ./internal/core
go test -run '^$' -fuzz '^FuzzBidIndexAppend$' -fuzztime 5s ./internal/trace
go test -run '^$' -fuzz '^FuzzDecisionLogRoundTrip$' -fuzztime 5s ./internal/decision
go run ./cmd/chaossim -runs 20 -seed 1
# Fleet-topology soak: quotelb over 3 in-process quoted backends under
# 20 seeded fleet fault scenarios (kill/restart with snapshot resume,
# partitions, slow-loris subscribers, feed gaps), each replayed twice.
go run -race ./cmd/chaossim -fleet -runs 20 -seed 1 -backends 3 -ticks 64
