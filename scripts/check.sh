#!/usr/bin/env sh
# Repository gate: formatting, vet, build, the full test suite under
# the race detector, then a short chaos soak. The suite includes
# doccheck_test.go (exported-symbol doc coverage) and the golden
# determinism tests of the replay engine, the parallel permutation
# evaluator, the batched replay engine (differential against the
# machine oracle, plus the FuzzBatchedMeasure sweep below) and the
# quote service, so a green run certifies correctness, bit-for-bit
# reproducibility of the figures, and byte-identical plan serving. The soak replays the live pipeline
# through 20 seeded fault scenarios and fails on a missed deadline
# without fallback, ledger inconsistency, goroutine leaks or
# nondeterminism.
set -eu
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
go build ./...
go test -race ./...
go test -run '^$' -fuzz '^FuzzRowParser$' -fuzztime 5s ./internal/livesched
go test -run '^$' -fuzz '^FuzzBatchedMeasure$' -fuzztime 5s ./internal/core
go test -run '^$' -fuzz '^FuzzBidIndexAppend$' -fuzztime 5s ./internal/trace
go run ./cmd/chaossim -runs 20 -seed 1
