package repro_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestExportedSymbolsAreDocumented enforces the repository's
// documentation bar: every exported type, function, method, constant
// and variable in non-test files carries a doc comment. It walks the
// source with go/parser so the bar holds as the code grows.
func TestExportedSymbolsAreDocumented(t *testing.T) {
	var violations []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		for _, decl := range file.Decls {
			switch dd := decl.(type) {
			case *ast.FuncDecl:
				if dd.Name.IsExported() && dd.Doc == nil {
					violations = append(violations, loc(fset, dd.Pos(), "func "+dd.Name.Name))
				}
			case *ast.GenDecl:
				// A doc comment on the grouped declaration covers its
				// specs (the common Go style for const/var blocks).
				if dd.Doc != nil {
					continue
				}
				for _, spec := range dd.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if sp.Name.IsExported() && sp.Doc == nil && sp.Comment == nil {
							violations = append(violations, loc(fset, sp.Pos(), "type "+sp.Name.Name))
						}
					case *ast.ValueSpec:
						for _, n := range sp.Names {
							if n.IsExported() && sp.Doc == nil && sp.Comment == nil {
								violations = append(violations, loc(fset, sp.Pos(), "value "+n.Name))
							}
						}
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) > 0 {
		t.Fatalf("%d exported symbols lack doc comments:\n  %s",
			len(violations), strings.Join(violations, "\n  "))
	}
}

func loc(fset *token.FileSet, pos token.Pos, what string) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, what)
}
