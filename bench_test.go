// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus ablations of the design choices called out in
// DESIGN.md. Each benchmark regenerates its experiment at a reduced
// window count (the paper's 80 windows shrink to benchWindows for
// wall-clock sanity; run cmd/paperfigs -windows 80 for the full sweep)
// and reports the headline statistic as a benchmark metric.
package repro_test

import (
	"fmt"
	"math"
	"os"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/market"
	"repro/internal/markov"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

const benchWindows = 6

var (
	benchSuiteOnce sync.Once
	benchSuite     *experiment.Suite
)

// suite returns a shared reduced-scale suite so trace generation is
// paid once across benchmarks.
func suite() *experiment.Suite {
	benchSuiteOnce.Do(func() {
		benchSuite = experiment.NewQuickSuite(1, benchWindows)
	})
	return benchSuite
}

var printOnce sync.Map

// printFirst emits the reproduced rows once per benchmark name, so
// `go test -bench=.` shows the regenerated figure content without
// repeating it for every timing iteration.
func printFirst(name string, f func()) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		f()
	}
}

// BenchmarkFig2Availability regenerates Figure 2: per-zone and combined
// availability over a 15-hour high-volatility window.
func BenchmarkFig2Availability(b *testing.B) {
	s := suite()
	b.ReportAllocs()
	var frac float64
	for i := 0; i < b.N; i++ {
		res, err := s.Fig2(experiment.RegimeHigh, 5*24*trace.Hour, 0)
		if err != nil {
			b.Fatal(err)
		}
		frac = res.CombinedUpFraction
		printFirst("fig2", func() { _ = report.Fig2(os.Stdout, res) })
	}
	b.ReportMetric(frac*100, "combined-up-%")
}

// BenchmarkVARAnalysis regenerates the §3.1 vector auto-regression over
// a 12-month composite trace.
func BenchmarkVARAnalysis(b *testing.B) {
	s := suite()
	b.ReportAllocs()
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := s.VarAnalysis(4)
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.Dependence.Ratio
		printFirst("var", func() { _ = report.Var(os.Stdout, res) })
	}
	b.ReportMetric(ratio, "self/cross-ratio")
}

// BenchmarkFig4Policies regenerates the Figure 4 panels (t_c = 300 s):
// single-zone Threshold/Edge/Periodic/Markov-Daly versus best-case
// redundancy at the figure's bids, per volatility and slack.
func BenchmarkFig4Policies(b *testing.B) {
	s := suite()
	for _, regime := range []string{experiment.RegimeLow, experiment.RegimeHigh} {
		for _, slack := range experiment.Slacks {
			name := fmt.Sprintf("%s-slack%.0f%%", regime, slack*100)
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				var median float64
				for i := 0; i < b.N; i++ {
					cell, err := s.Fig4(regime, slack, 300, nil)
					if err != nil {
						b.Fatal(err)
					}
					median = cell.BestRedundant[0.81].Median
					printFirst("fig4-"+name, func() { _ = report.Fig4(os.Stdout, cell) })
				}
				b.ReportMetric(median, "best-red-median-$")
			})
		}
	}
}

// BenchmarkTable2 regenerates Table 2 (optimal policies at t_c = 300 s).
func BenchmarkTable2(b *testing.B) { benchTable(b, 300) }

// BenchmarkTable3 regenerates Table 3 (optimal policies at t_c = 900 s).
func BenchmarkTable3(b *testing.B) { benchTable(b, 900) }

func benchTable(b *testing.B, tc int64) {
	s := suite()
	b.ReportAllocs()
	var median float64
	for i := 0; i < b.N; i++ {
		rows, err := s.Table(tc)
		if err != nil {
			b.Fatal(err)
		}
		median = rows[0].Median
		printFirst(fmt.Sprintf("table-%d", tc), func() { _ = report.BestPolicyTable(os.Stdout, tc, rows) })
	}
	b.ReportMetric(median, "first-cell-median-$")
}

// BenchmarkFig5Adaptive regenerates the Figure 5 panels: Adaptive versus
// Periodic, Markov-Daly and best-case redundancy at B = $0.81.
func BenchmarkFig5Adaptive(b *testing.B) {
	s := suite()
	for _, regime := range []string{experiment.RegimeLow, experiment.RegimeHigh} {
		for _, tc := range experiment.CheckpointCosts {
			name := fmt.Sprintf("%s-tc%d", regime, tc)
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				var median float64
				for i := 0; i < b.N; i++ {
					cell, err := s.Fig5(regime, experiment.Slacks[0], tc)
					if err != nil {
						b.Fatal(err)
					}
					median = cell.Adaptive.Median
					printFirst("fig5-"+name, func() { _ = report.Fig5(os.Stdout, cell) })
				}
				b.ReportMetric(median, "adaptive-median-$")
			})
		}
	}
}

// BenchmarkFig6LargeBid regenerates a Figure 6 panel: Large-bid across
// thresholds versus Adaptive on the spike-bearing low-volatility window.
func BenchmarkFig6LargeBid(b *testing.B) {
	s := experiment.NewQuickSuite(9, 30) // dense tiling so windows hit the spike
	b.ReportAllocs()
	var worst float64
	for i := 0; i < b.N; i++ {
		cell, err := s.Fig6(experiment.RegimeLowSpike, experiment.Slacks[0], 300)
		if err != nil {
			b.Fatal(err)
		}
		worst = cell.LargeBid[math.Inf(1)].Max
		printFirst("fig6", func() { _ = report.Fig6(os.Stdout, cell) })
	}
	b.ReportMetric(worst, "naive-worst-$")
}

// BenchmarkHeadline computes the paper-vs-measured headline claims.
func BenchmarkHeadline(b *testing.B) {
	s := suite()
	b.ReportAllocs()
	var ratio float64
	for i := 0; i < b.N; i++ {
		h, err := s.Headline()
		if err != nil {
			b.Fatal(err)
		}
		ratio = h.AdaptiveVsOnDemand
		printFirst("headline", func() { _ = report.HeadlineReport(os.Stdout, h) })
	}
	b.ReportMetric(ratio, "adaptive-vs-od-x")
}

// BenchmarkOracleGap computes the clairvoyant lower bound per window
// and the Adaptive-to-oracle gap (an analysis beyond the paper).
func BenchmarkOracleGap(b *testing.B) {
	s := suite()
	b.ReportAllocs()
	var medianBound float64
	for i := 0; i < b.N; i++ {
		bounds, err := s.OracleBounds(experiment.RegimeHigh, experiment.Slacks[0])
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, v := range bounds {
			sum += v
		}
		medianBound = sum / float64(len(bounds))
	}
	b.ReportMetric(medianBound, "oracle-mean-$")
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §5)
// ---------------------------------------------------------------------------

func ablationConfig(delay market.DelayModel) sim.Config {
	set := tracegen.HighVolatility(33)
	start := set.Start() + 5*24*trace.Hour
	return sim.Config{
		Trace:          set.Slice(start, start+25*trace.Hour),
		History:        set.Slice(start-2*24*trace.Hour, start),
		Work:           20 * trace.Hour,
		Deadline:       23 * trace.Hour,
		CheckpointCost: 300,
		RestartCost:    300,
		Delay:          delay,
		Seed:           1,
	}
}

// BenchmarkAblationQueueDelay quantifies the cost of the measured
// spot-request queuing delay against an idealised instant-start market.
func BenchmarkAblationQueueDelay(b *testing.B) {
	for _, c := range []struct {
		name  string
		delay market.DelayModel
	}{
		{"measured", market.DefaultDelay()},
		{"none", market.FixedDelay(0)},
	} {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			var cost float64
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(ablationConfig(c.delay), core.Redundant(core.NewMarkovDaly(), 0.81, []int{0, 1, 2}))
				if err != nil {
					b.Fatal(err)
				}
				cost = res.Cost
			}
			b.ReportMetric(cost, "cost-$")
		})
	}
}

// BenchmarkAblationDalyOrder compares Daly's higher-order checkpoint
// interval against Young's first-order estimate inside Markov-Daly.
func BenchmarkAblationDalyOrder(b *testing.B) {
	for _, higher := range []bool{true, false} {
		name := "young"
		if higher {
			name = "daly"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var cost float64
			for i := 0; i < b.N; i++ {
				pol := core.NewMarkovDaly()
				pol.HigherOrder = higher
				res, err := sim.Run(ablationConfig(market.FixedDelay(300)), core.SingleZone(pol, 0.81, 0))
				if err != nil {
					b.Fatal(err)
				}
				cost = res.Cost
			}
			b.ReportMetric(cost, "cost-$")
		})
	}
}

// BenchmarkAblationZones sweeps the redundancy degree N ∈ {1, 2, 3}
// (the paper reports diminishing returns below N = 3).
func BenchmarkAblationZones(b *testing.B) {
	for n := 1; n <= 3; n++ {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			b.ReportAllocs()
			zones := make([]int, n)
			for i := range zones {
				zones[i] = i
			}
			var cost float64
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(ablationConfig(market.FixedDelay(300)), core.Redundant(core.NewMarkovDaly(), 0.81, zones))
				if err != nil {
					b.Fatal(err)
				}
				cost = res.Cost
			}
			b.ReportMetric(cost, "cost-$")
		})
	}
}

// BenchmarkAblationAdaptiveTriggers compares the paper's decision
// triggers (terminations and hour boundaries) against hour boundaries
// only.
func BenchmarkAblationAdaptiveTriggers(b *testing.B) {
	for _, hourOnly := range []bool{false, true} {
		name := "kills+hours"
		if hourOnly {
			name = "hours-only"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var cost float64
			for i := 0; i < b.N; i++ {
				a := core.NewAdaptive()
				a.ReDecideOnHourOnly = hourOnly
				res, err := sim.Run(ablationConfig(market.FixedDelay(300)), a)
				if err != nil {
					b.Fatal(err)
				}
				cost = res.Cost
			}
			b.ReportMetric(cost, "cost-$")
		})
	}
}

// BenchmarkAblationBidChooser compares the analytic bid chooser
// (internal/opt: stationary-chain expected cost, an extension beyond the
// paper) against the paper's simulation-based Adaptive search on the
// same window, single zone.
func BenchmarkAblationBidChooser(b *testing.B) {
	set := tracegen.HighVolatility(33)
	start := set.Start() + 5*24*trace.Hour
	histPrices := markov.Quantize(set.Series[0].Slice(start-2*24*trace.Hour, start).Prices, 0.05)
	chain, err := markov.Fit(histPrices, trace.DefaultStep)
	if err != nil {
		b.Fatal(err)
	}
	cfg := ablationConfig(market.FixedDelay(300))
	requiredRate := float64(cfg.Work) / float64(cfg.Deadline)

	b.Run("analytic", func(b *testing.B) {
		b.ReportAllocs()
		var cost float64
		for i := 0; i < b.N; i++ {
			rec, err := opt.BestBid(chain, core.BidGrid(), opt.Overheads{
				CheckpointCost: float64(cfg.CheckpointCost),
				RestartCost:    float64(cfg.RestartCost),
				QueueDelay:     300,
			}, requiredRate)
			if err != nil {
				b.Fatal(err)
			}
			res, err := sim.Run(cfg, core.SingleZone(core.NewMarkovDaly(), rec.Bid, 0))
			if err != nil {
				b.Fatal(err)
			}
			cost = res.Cost
		}
		b.ReportMetric(cost, "cost-$")
	})
	b.Run("simulated", func(b *testing.B) {
		b.ReportAllocs()
		var cost float64
		for i := 0; i < b.N; i++ {
			a := core.NewAdaptive()
			a.MaxZones = 1
			res, err := sim.Run(cfg, a)
			if err != nil {
				b.Fatal(err)
			}
			cost = res.Cost
		}
		b.ReportMetric(cost, "cost-$")
	})
	b.Run("adaptive-analytic", func(b *testing.B) {
		b.ReportAllocs()
		var cost float64
		for i := 0; i < b.N; i++ {
			a := core.NewAdaptive()
			a.Analytic = true
			res, err := sim.Run(cfg, a)
			if err != nil {
				b.Fatal(err)
			}
			cost = res.Cost
		}
		b.ReportMetric(cost, "cost-$")
	})
}

// BenchmarkAblationEdgeFamily compares the paper's reactive policies —
// Edge and Threshold — against the repository's CUSUM-based Changepoint
// extension on a volatile window.
func BenchmarkAblationEdgeFamily(b *testing.B) {
	for _, kind := range []string{"edge", "threshold", "changepoint"} {
		b.Run(kind, func(b *testing.B) {
			b.ReportAllocs()
			var cost float64
			var ckpts int
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(ablationConfig(market.FixedDelay(300)), core.SingleZone(experiment.NewPolicy(kind), 0.81, 0))
				if err != nil {
					b.Fatal(err)
				}
				cost = res.Cost
				ckpts = res.Checkpoints
			}
			b.ReportMetric(cost, "cost-$")
			b.ReportMetric(float64(ckpts), "checkpoints")
		})
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the substrates
// ---------------------------------------------------------------------------

// BenchmarkEngineRun times one full-scale single-zone simulation.
func BenchmarkEngineRun(b *testing.B) {
	cfg := ablationConfig(market.FixedDelay(300))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(cfg, core.SingleZone(core.NewPeriodic(), 0.81, 0)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMarkovUptime times the closed-form expected-uptime solve on
// a two-day volatile history.
func BenchmarkMarkovUptime(b *testing.B) {
	set := tracegen.HighVolatility(3)
	hist := markov.Quantize(set.Series[0].Slice(0, 2*24*trace.Hour).Prices, 0.05)
	m, err := markov.Fit(hist, 300)
	if err != nil {
		b.Fatal(err)
	}
	cur := hist[len(hist)-1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ExpectedUptimeExact(0.81, cur)
	}
}

// BenchmarkTraceGeneration times generating one month of three-zone
// high-volatility trace.
func BenchmarkTraceGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tracegen.HighVolatility(uint64(i))
	}
}

// BenchmarkAdaptiveDecision times one full Adaptive run over a volatile
// day — dominated by the permutation searches at each decision point,
// i.e. the Evaluator's pooled parallel replays.
func BenchmarkAdaptiveDecision(b *testing.B) {
	cfg := ablationConfig(market.FixedDelay(300))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(cfg, core.NewAdaptive()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdaptiveDecisionBatched is BenchmarkAdaptiveDecision with
// the columnar batched evaluator selected explicitly; paired with
// BenchmarkAdaptiveDecisionOracle it measures the batching speedup
// (scripts/bench.sh computes speedup_x into BENCH_batch.json).
func BenchmarkAdaptiveDecisionBatched(b *testing.B) {
	cfg := ablationConfig(market.FixedDelay(300))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := core.NewAdaptive()
		a.Eval = &core.Evaluator{DisableBatch: false}
		if _, err := sim.Run(cfg, a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdaptiveDecisionOracle is BenchmarkAdaptiveDecision forced
// through the per-permutation machine-oracle replays (the pre-batching
// hot path, kept as the golden reference).
func BenchmarkAdaptiveDecisionOracle(b *testing.B) {
	cfg := ablationConfig(market.FixedDelay(300))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := core.NewAdaptive()
		a.Eval = &core.Evaluator{DisableBatch: true}
		if _, err := sim.Run(cfg, a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchRank times one quote-service ranking sweep — the full
// (bid, zones, policy) grid priced by Evaluator.MeasureAll through the
// batched engine — on the volatile ablation window.
func BenchmarkBatchRank(b *testing.B) {
	cfg := ablationConfig(market.FixedDelay(300))
	ev := core.NewEvaluator()
	req := core.PlanRequest{
		History:        cfg.History,
		Work:           cfg.Work,
		Deadline:       cfg.Deadline,
		CheckpointCost: cfg.CheckpointCost,
		RestartCost:    cfg.RestartCost,
		MaxZones:       3,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plans, err := ev.Rank(req)
		if err != nil {
			b.Fatal(err)
		}
		if len(plans) == 0 {
			b.Fatal("no plans")
		}
	}
}

// BenchmarkAdaptiveDecisionObs is BenchmarkAdaptiveDecision with span
// tracing enabled on both the run and its inner Evaluator replays; the
// pair bounds the observability overhead (scripts/bench.sh computes the
// percentage into BENCH_obs.json).
func BenchmarkAdaptiveDecisionObs(b *testing.B) {
	tracer := obs.NewTracer(obs.DefaultSpanCapacity)
	cfg := ablationConfig(market.FixedDelay(300))
	cfg.ObsTrace = tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := core.NewAdaptive()
		a.Eval = &core.Evaluator{Trace: tracer}
		if _, err := sim.Run(cfg, a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMachineReset times re-arming a pooled machine and driving a
// full single-zone run on it, the Evaluator's steady-state replay cycle;
// allocs/op is the headline (a fresh NewMachine pays the full engine
// allocation every run).
func BenchmarkMachineReset(b *testing.B) {
	cfg := ablationConfig(market.FixedDelay(300))
	m, err := sim.AcquireMachine(cfg, core.SingleZone(core.NewPeriodic(), 0.81, 0))
	if err != nil {
		b.Fatal(err)
	}
	defer sim.ReleaseMachine(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Reset(cfg, core.SingleZone(core.NewPeriodic(), 0.81, 0)); err != nil {
			b.Fatal(err)
		}
		for !m.Done() {
			if err := m.Step(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkMachineResetObs is BenchmarkMachineReset with span tracing
// enabled on the machine's config, the worst case for the engine's
// per-run span records.
func BenchmarkMachineResetObs(b *testing.B) {
	cfg := ablationConfig(market.FixedDelay(300))
	cfg.ObsTrace = obs.NewTracer(obs.DefaultSpanCapacity)
	m, err := sim.AcquireMachine(cfg, core.SingleZone(core.NewPeriodic(), 0.81, 0))
	if err != nil {
		b.Fatal(err)
	}
	defer sim.ReleaseMachine(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Reset(cfg, core.SingleZone(core.NewPeriodic(), 0.81, 0)); err != nil {
			b.Fatal(err)
		}
		for !m.Done() {
			if err := m.Step(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// streamBenchRows returns a row source cycling the ablation history, so
// streaming benchmarks can tick indefinitely past the window's end.
func streamBenchRows(hist *trace.Set) func(i int) []float64 {
	n := hist.Series[0].Len()
	return func(i int) []float64 {
		return hist.PricesAt(hist.Start() + int64(i%n)*hist.Step())
	}
}

// BenchmarkStreamTick times one steady-state streaming tick: append a
// price row and incrementally re-rank the full (bid, zones, policy)
// grid via the resident batch state — the O(delta) path that replaces
// a from-scratch Rank per tick. scripts/bench.sh pairs it with
// BenchmarkStreamFullRerank and gates on the speedup.
func BenchmarkStreamTick(b *testing.B) {
	cfg := ablationConfig(market.FixedDelay(300))
	hist := cfg.History
	se, err := core.NewStreamEvaluator(nil, core.StreamConfig{
		Zones:           hist.Zones(),
		Start:           hist.Start(),
		Step:            hist.Step(),
		Work:            cfg.Work,
		Deadline:        cfg.Deadline,
		CheckpointCost:  cfg.CheckpointCost,
		RestartCost:     cfg.RestartCost,
		MaxZones:        3,
		CrossCheckEvery: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	row := streamBenchRows(hist)
	n := hist.Series[0].Len()
	for i := 0; i < n; i++ { // warm to the full window
		if _, err := se.Advance(row(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := se.Advance(row(n + i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamFullRerank is the per-tick baseline the streaming
// evaluator replaces: append the row to a tape and run a from-scratch
// Evaluator.Rank over the whole window, with the same retention policy
// (compact to half past the streaming default) so both benchmarks see
// comparable window lengths.
func BenchmarkStreamFullRerank(b *testing.B) {
	cfg := ablationConfig(market.FixedDelay(300))
	hist := cfg.History
	ev := core.NewEvaluator()
	tape, err := trace.NewTape(hist.Zones(), hist.Start(), hist.Step())
	if err != nil {
		b.Fatal(err)
	}
	row := streamBenchRows(hist)
	n := hist.Series[0].Len()
	for i := 0; i < n; i++ {
		if err := tape.Append(row(i)); err != nil {
			b.Fatal(err)
		}
	}
	req := core.PlanRequest{
		Work:           cfg.Work,
		Deadline:       cfg.Deadline,
		CheckpointCost: cfg.CheckpointCost,
		RestartCost:    cfg.RestartCost,
		MaxZones:       3,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tape.Append(row(n + i)); err != nil {
			b.Fatal(err)
		}
		if tape.Len() > core.DefaultStreamRetention {
			tape = tape.Tail(core.DefaultStreamRetention / 2)
		}
		req.History = tape.Set()
		plans, err := ev.Rank(req)
		if err != nil {
			b.Fatal(err)
		}
		if len(plans) == 0 {
			b.Fatal("no plans")
		}
	}
}
