// Command quoted serves least-cost execution plans over HTTP: clients
// POST a job description (work hours, deadline, on-demand price,
// history window) to /v1/quote and receive the ranked (bid, zones,
// policy) permutation table computed by replaying the evaluation core
// over recent spot price history.
//
// History comes from a pricefeedd-style endpoint (-feed URL) or a
// built-in synthetic generator (-preset/-seed). The server is hardened
// (header/read/idle timeouts), drains gracefully on SIGINT/SIGTERM, and
// exposes /metrics and /healthz. With -trace-spans N every request is
// traced end-to-end (request → history fetch → evaluation) into a ring
// of N spans served at /debug/trace; -pprof mounts net/http/pprof under
// /debug/pprof/.
//
// Usage:
//
//	quoted -addr :8081 -preset high -seed 7
//	quoted -addr :8081 -feed http://localhost:8080
//	curl -s localhost:8081/v1/quote -d '{"work_hours":20,"deadline_hours":30,"history_window":12}'
//
// The built-in load generator measures the service end-to-end over a
// real listener and prints throughput and latency quantiles:
//
//	quoted -selfbench 200 -bench-duration 5s
package main

import (
	"bufio"
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/decision"
	"repro/internal/httpx"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/quote"
	"repro/internal/spotapi"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quoted: ")

	addr := flag.String("addr", ":8081", "listen address")
	feed := flag.String("feed", "", "pricefeedd-style history endpoint (overrides -preset)")
	feedTTL := flag.Duration("feed-ttl", 10*time.Second, "how long a fetched history is reused")
	preset := flag.String("preset", "high", "synthetic trace preset: low, high, low-spike, year")
	seed := flag.Uint64("seed", 1, "synthetic generator seed")
	workers := flag.Int("workers", 0, "evaluation workers per request (0: GOMAXPROCS)")
	batched := flag.Bool("batched", true, "price plan evaluations with the columnar batched engine (false: per-permutation oracle replays; plans are bit-identical either way)")
	maxInflight := flag.Int("max-inflight", 0, "concurrent evaluations admitted (0: 2×GOMAXPROCS)")
	cacheSize := flag.Int("cache", 1024, "plan cache entries")
	breakerFails := flag.Int("breaker-failures", quote.DefaultBreakerThreshold, "consecutive history failures that open the circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", quote.DefaultBreakerCooldown, "open-breaker period before a half-open probe")
	selfbench := flag.Int("selfbench", 0, "run the load generator with this many concurrent clients instead of serving")
	benchDur := flag.Duration("bench-duration", 5*time.Second, "load generator run time")
	stream := flag.Bool("stream", false, "serve GET /v1/quotes/stream, feeding the streamer by replaying the synthetic preset as a live tick feed (with -selfbench: run the subscriber load generator instead)")
	streamRate := flag.Float64("stream-rate", 8, "replayed feed ticks per second in -stream mode")
	snapshot := flag.String("snapshot", "", "crash-recovery snapshot file for -stream mode: checkpoints are written there and, on startup, the stream resumes from it instead of replaying from scratch")
	checkpointEvery := flag.Int("checkpoint-every", quote.DefaultCheckpointEvery, "feed ticks between -snapshot checkpoints")
	heartbeat := flag.Duration("stream-heartbeat", quote.DefaultHeartbeat, "SSE keepalive cadence")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	traceSpans := flag.Int("trace-spans", 0, "trace request/evaluation spans into a ring of this size, served at /debug/trace (0: disabled)")
	decisions := flag.Int("decisions", 0, "record ranking decisions into a ring of this size, served at /debug/decisions (0: disabled)")
	decisionLog := flag.String("decision-log", "", "also append every recorded decision to this JSON-lines file (implies -decisions)")
	flag.Parse()

	var tracer *obs.Tracer
	if *traceSpans > 0 {
		tracer = obs.NewTracer(*traceSpans)
	}

	metrics := quote.NewMetrics()
	var presetSet *trace.Set
	var source quote.HistorySource
	if *feed != "" {
		// Share the service's metrics sink so feed degradation (stale
		// serves, staleness watchdog trips) shows up on /metrics.
		source = &quote.FeedSource{Client: &spotapi.Client{BaseURL: *feed}, TTL: *feedTTL, Stats: metrics}
	} else {
		var set *trace.Set
		switch *preset {
		case "low":
			set = tracegen.LowVolatility(*seed)
		case "high":
			set = tracegen.HighVolatility(*seed)
		case "low-spike":
			set = tracegen.LowVolatilityWithMegaSpike(*seed)
		case "year":
			set = tracegen.Year(*seed)
		default:
			log.Fatalf("unknown preset %q", *preset)
		}
		presetSet = set
		source = &quote.StaticSource{Set: set}
	}

	// Decision recording: every /v1/quote ranking emits one decision
	// point (the chosen plan plus all ranked rivals) into a bounded ring
	// served at /debug/decisions, optionally mirrored to an append-only
	// JSON-lines file for offline counterfactual replay.
	var dlog *decision.Log
	if *decisions > 0 || *decisionLog != "" {
		var w io.Writer
		if *decisionLog != "" {
			f, err := os.OpenFile(*decisionLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				log.Fatalf("opening decision log: %v", err)
			}
			defer f.Close()
			w = f
		}
		dlog = decision.NewLog(*decisions, w)
	}

	svc := &quote.Service{
		Source:    source,
		Eval:      &core.Evaluator{Workers: *workers, Trace: tracer, DisableBatch: !*batched},
		Gate:      pool.NewGate(*maxInflight),
		CacheSize: *cacheSize,
		Metrics:   metrics,
		Breaker:   &quote.Breaker{Threshold: *breakerFails, Cooldown: *breakerCooldown},
	}
	// Streaming mode: mount the push API and replay the synthetic
	// preset as a live tick feed. (A live -feed endpoint has no tick
	// stream to subscribe to; it stays one-shot only.)
	var streamer *quote.Streamer
	var streamMetrics *quote.StreamMetrics
	if *stream {
		if presetSet == nil {
			log.Fatal("-stream needs a synthetic -preset feed; -feed is one-shot only")
		}
		streamMetrics = metrics.AttachStream()
		streamer = &quote.Streamer{
			Eval:            svc.Eval,
			Metrics:         streamMetrics,
			Zones:           presetSet.Zones(),
			Start:           presetSet.Start(),
			Step:            presetSet.Step(),
			Heartbeat:       *heartbeat,
			CheckpointEvery: *checkpointEvery,
		}
		if *snapshot != "" {
			store := &quote.FileStore{Path: *snapshot}
			streamer.Store = store
			snap, err := store.Load()
			if err != nil {
				log.Fatalf("loading snapshot %s: %v", *snapshot, err)
			}
			if snap != nil {
				if err := streamer.Restore(snap); err != nil {
					log.Fatalf("restoring snapshot %s: %v", *snapshot, err)
				}
				log.Printf("resumed stream from %s at feed seq %d (%d shapes)", *snapshot, snap.Seq, len(snap.Shapes))
			}
		}
	}
	// The API handler is wrapped with request tracing; the debug surface
	// (/debug/trace, /debug/pprof/) mounts beside it, outside the traced
	// path.
	mux := http.NewServeMux()
	mux.Handle("/", httpx.Wrap(quote.NewStreamingHandler(svc, streamer), tracer))
	obs.Mount(mux, tracer, *pprofOn)
	if dlog != nil {
		svc.Eval.Sink = dlog
		mux.Handle("GET /debug/decisions", dlog.Handler())
	}
	handler := http.Handler(mux)

	if *selfbench > 0 {
		var err error
		if *stream {
			err = runStreamBench(streamer, streamMetrics, handler, presetSet, *selfbench, *benchDur, *streamRate)
		} else {
			err = runSelfbench(svc, handler, *selfbench, *benchDur)
		}
		if err != nil {
			log.Fatal(err)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if streamer != nil {
		go replayFeed(ctx, streamer, presetSet, *streamRate)
		log.Printf("streaming plans at http://%s/v1/quotes/stream (%.3g ticks/s)", *addr, *streamRate)
	}
	srv := httpx.NewServer(*addr, handler)
	log.Printf("serving plans at http://%s/v1/quote (metrics at /metrics)", *addr)
	if err := httpx.ListenAndServe(ctx, srv, httpx.DefaultGrace); err != nil {
		log.Fatal(err)
	}
}

// replayFeed drives the streamer with the preset trace as if it were a
// live feed: one row per tick at rate ticks/second, cycling when the
// trace runs out. Sequence numbers are the feed's own, so the
// streamer's dedup/gap handling is exercised identically to a real
// feed. A streamer restored from a -snapshot resumes at its next
// sequence number — the restart catches up instead of replaying.
func replayFeed(ctx context.Context, st *quote.Streamer, set *trace.Set, rate float64) {
	if rate <= 0 {
		rate = 8
	}
	t := time.NewTicker(time.Duration(float64(time.Second) / rate))
	defer t.Stop()
	n := set.Series[0].Len()
	for seq := st.Seq() + 1; ; seq++ {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		i := int((seq - 1) % uint64(n))
		if err := st.Ingest(seq, set.PricesAt(set.Start()+int64(i)*set.Step())); err != nil {
			log.Printf("stream feed: %v", err)
			return
		}
	}
}

// benchRequests is the request mix the load generator cycles through:
// enough distinct shapes to exercise evaluation, coalescing and the
// cache rather than a single hot key.
func benchRequests() [][]byte {
	var out [][]byte
	for _, work := range []float64{4, 8, 12, 16, 20, 24} {
		for _, slack := range []float64{1.2, 1.5} {
			body := fmt.Sprintf(`{"work_hours":%g,"deadline_hours":%g,"history_window":6,"max_zones":2}`,
				work, work*slack)
			out = append(out, []byte(body))
		}
	}
	return out
}

// runSelfbench boots the service on an ephemeral local listener, fires
// clients concurrent request loops at it for dur, and prints
// throughput, latency quantiles and cache statistics. Latencies go
// through the same obs.Histogram machinery the cluster simulator's
// capacity curves use, so single-instance p50/p99 and fleet p50/p99 in
// BENCH_cluster.json are directly comparable numbers.
func runSelfbench(svc *quote.Service, handler http.Handler, clients int, dur time.Duration) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := httpx.NewServer("", handler)
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- httpx.Serve(ctx, srv, ln, httpx.DefaultGrace) }()
	base := "http://" + ln.Addr().String()

	transport := &http.Transport{MaxIdleConns: clients, MaxIdleConnsPerHost: clients}
	client := &http.Client{Transport: transport, Timeout: 2 * time.Minute}
	reqs := benchRequests()

	var (
		latency = obs.NewHistogram(nil)
		total   atomic.Int64
		errs    atomic.Int64
	)
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				body := reqs[(c+i)%len(reqs)]
				start := time.Now()
				resp, err := client.Post(base+"/v1/quote", "application/json", bytes.NewReader(body))
				if err != nil {
					errs.Add(1)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					errs.Add(1)
				}
				_, _ = new(bytes.Buffer).ReadFrom(resp.Body)
				resp.Body.Close()
				latency.Observe(time.Since(start).Seconds())
				total.Add(1)
			}
		}(c)
	}
	wg.Wait()
	cancel()
	if err := <-serveDone; err != nil {
		return err
	}

	m := svc.Stats()
	fmt.Printf("selfbench: %d clients × %s\n", clients, dur)
	fmt.Printf("  requests      %d (%.0f req/s), errors %d\n",
		total.Load(), float64(total.Load())/dur.Seconds(), errs.Load())
	fmt.Printf("  latency       p50 %.3fms  p95 %.3fms  p99 %.3fms\n",
		latency.Quantile(0.50)*1e3, latency.Quantile(0.95)*1e3, latency.Quantile(0.99)*1e3)
	fmt.Printf("  cache         hits %d  misses %d  coalesced %d\n",
		m.CacheHits.Load(), m.CacheMisses.Load(), m.Coalesced.Load())
	if errs.Load() > 0 {
		return fmt.Errorf("selfbench: %d failed requests", errs.Load())
	}
	return nil
}

// streamBenchShapes is the subscription mix the streaming load
// generator spreads its subscribers across: a handful of distinct
// shapes, so fan-out within a shape and multiple resident evaluators
// are both exercised.
func streamBenchShapes() []string {
	var out []string
	for _, work := range []float64{4, 8, 12, 16} {
		out = append(out, fmt.Sprintf("work_hours=%g&deadline_hours=%g&max_zones=2&top=3", work, 3*work))
	}
	return out
}

// runStreamBench boots the streaming service on an ephemeral listener,
// attaches subscribers SSE clients, replays the preset feed at rate
// ticks/second for dur, and prints the tick/publish pipeline's
// throughput and plan-push latency quantiles (publish to client
// write), measured by the same histogram /metrics exports.
func runStreamBench(st *quote.Streamer, sm *quote.StreamMetrics, handler http.Handler, set *trace.Set, subscribers int, dur time.Duration, rate float64) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := httpx.NewServer("", handler)
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- httpx.Serve(ctx, srv, ln, httpx.DefaultGrace) }()
	base := "http://" + ln.Addr().String()

	clientCtx, stopClients := context.WithCancel(ctx)
	shapes := streamBenchShapes()
	transport := &http.Transport{MaxIdleConns: subscribers, MaxIdleConnsPerHost: subscribers}
	client := &http.Client{Transport: transport}
	var (
		events atomic.Int64
		errs   atomic.Int64
		wg     sync.WaitGroup
	)
	wg.Add(subscribers)
	for c := 0; c < subscribers; c++ {
		go func(c int) {
			defer wg.Done()
			url := base + "/v1/quotes/stream?" + shapes[c%len(shapes)]
			req, err := http.NewRequestWithContext(clientCtx, http.MethodGet, url, nil)
			if err != nil {
				errs.Add(1)
				return
			}
			resp, err := client.Do(req)
			if err != nil {
				errs.Add(1)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs.Add(1)
				return
			}
			sc := bufio.NewScanner(resp.Body)
			for sc.Scan() {
				if strings.HasPrefix(sc.Text(), "event: plan") {
					events.Add(1)
				}
			}
		}(c)
	}

	// Feed ticks for the benchmark window, then stop the clients.
	feedCtx, stopFeed := context.WithTimeout(ctx, dur)
	replayFeed(feedCtx, st, set, rate)
	stopFeed()
	time.Sleep(100 * time.Millisecond) // let the last pushes drain
	stopClients()
	wg.Wait()
	cancel()
	if err := <-serveDone; err != nil {
		return err
	}

	ticks := st.Metrics.Ticks.Load()
	gens := st.Metrics.Generations.Load()
	fmt.Printf("streambench: %d subscribers × %s @ %.3g ticks/s\n", subscribers, dur, rate)
	fmt.Printf("  feed          %d ticks (%.1f/s), %d plan generations\n",
		ticks, float64(ticks)/dur.Seconds(), gens)
	fmt.Printf("  pushes        %d plan events delivered (%.1f/subscriber), errors %d\n",
		events.Load(), float64(events.Load())/float64(subscribers), errs.Load())
	fmt.Printf("  push latency  p50 %.3fms  p95 %.3fms  p99 %.3fms\n",
		sm.PushLatencyQuantile(0.50)*1e3, sm.PushLatencyQuantile(0.95)*1e3, sm.PushLatencyQuantile(0.99)*1e3)
	if errs.Load() > 0 {
		return fmt.Errorf("streambench: %d failed subscriptions", errs.Load())
	}
	return nil
}
