// Command sweep runs free-form parameter sweeps — policy × bid × zone
// count over experiment windows — and emits one CSV row per run, for
// analyses beyond the paper's fixed figures.
//
// Usage:
//
//	sweep -preset high -policies periodic,markov-daly -bids 0.27,0.81,2.40 -ns 1,3 -windows 20 > sweep.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/pool"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")

	preset := flag.String("preset", "high", "regime: low, high, low-spike")
	seed := flag.Uint64("seed", 1, "suite seed")
	windows := flag.Int("windows", 20, "experiment windows")
	policies := flag.String("policies", "periodic,markov-daly,edge,threshold", "comma-separated policies; \"adaptive\" runs the full Adaptive scheme (its bid/n columns echo the grid point but do not constrain it)")
	batched := flag.Bool("batched", true, "price adaptive evaluations with the columnar batched engine (false: per-permutation oracle replays; rows are bit-identical either way)")
	bids := flag.String("bids", "0.27,0.81,2.40", "comma-separated bid prices")
	ns := flag.String("ns", "1,3", "comma-separated redundancy degrees")
	slack := flag.Float64("slack", 0.15, "slack fraction")
	tc := flag.Int64("tc", 300, "checkpoint cost in seconds")
	format := flag.String("format", "csv", "output format: csv, or json (a replay archive for later re-analysis)")
	workers := flag.Int("workers", 0, "worker pool size; 0 selects GOMAXPROCS")
	flag.Parse()

	if *format != "csv" && *format != "json" {
		log.Fatalf("unknown format %q", *format)
	}
	s := experiment.NewQuickSuite(*seed, *windows)
	set := s.Regime(*preset)

	bidVals, err := parseFloats(*bids)
	if err != nil {
		log.Fatal(err)
	}
	nVals, err := parseInts(*ns)
	if err != nil {
		log.Fatal(err)
	}
	kinds := strings.Split(*policies, ",")

	type job struct {
		kind   string
		bid    float64
		n      int
		window trace.Window
	}
	if set.NumZones() == 0 {
		log.Fatal("empty regime")
	}
	var jobs []job
	for _, kind := range kinds {
		for _, bid := range bidVals {
			for _, n := range nVals {
				for _, win := range s.ExperimentWindows(*preset, *slack) {
					jobs = append(jobs, job{kind, bid, n, win})
				}
			}
		}
	}
	archive := &replay.Archive{Meta: map[string]string{
		"regime":  *preset,
		"seed":    strconv.FormatUint(*seed, 10),
		"windows": strconv.Itoa(*windows),
	}}
	var w *csv.Writer
	if *format == "csv" {
		w = csv.NewWriter(os.Stdout)
		defer w.Flush()
		if err := w.Write([]string{"policy", "bid", "n", "window", "cost", "spot_cost", "od_cost", "checkpoints", "restarts", "kills", "switched_od", "finish_h"}); err != nil {
			log.Fatal(err)
		}
	}
	// Run the whole grid across the shared worker pool into indexed
	// slots, then emit rows in grid order so the output is byte-identical
	// to a sequential sweep.
	results := make([]*sim.Result, len(jobs))
	errs := make([]error, len(jobs))
	pool.Run(*workers, len(jobs), func(i int) {
		j := jobs[i]
		cfg := s.Config(j.window, *slack, *tc)
		zones := make([]int, j.n)
		for zi := range zones {
			zones[zi] = zi
		}
		var strat sim.Strategy
		if j.kind == "adaptive" {
			a := core.NewAdaptive()
			a.Eval = &core.Evaluator{DisableBatch: !*batched}
			strat = a
		} else {
			strat = core.NewStatic(j.kind, sim.RunSpec{Bid: j.bid, Zones: zones, Policy: experiment.NewPolicy(j.kind)})
		}
		results[i], errs[i] = sim.Run(cfg, strat)
	})
	for i, j := range jobs {
		if errs[i] != nil {
			log.Fatal(errs[i])
		}
		res := results[i]
		switch *format {
		case "json":
			archive.Add(replay.FromResult(res, *preset, *slack, *tc, j.bid, j.n, j.window.Index))
		case "csv":
			rec := []string{
				j.kind,
				fmt.Sprintf("%.2f", j.bid),
				strconv.Itoa(j.n),
				strconv.Itoa(j.window.Index),
				fmt.Sprintf("%.2f", res.Cost),
				fmt.Sprintf("%.2f", res.SpotCost),
				fmt.Sprintf("%.2f", res.OnDemandCost),
				strconv.Itoa(res.Checkpoints),
				strconv.Itoa(res.Restarts),
				strconv.Itoa(res.ProviderKills),
				strconv.FormatBool(res.SwitchedOnDemand),
				fmt.Sprintf("%.2f", float64(res.FinishTime-j.window.Run.Start())/float64(trace.Hour)),
			}
			if err := w.Write(rec); err != nil {
				log.Fatal(err)
			}
		default:
			log.Fatalf("unknown format %q", *format)
		}
	}
	if *format == "json" {
		if err := archive.Write(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
