// Command spotsim runs a single spot-market experiment — one policy,
// bid and zone set over one window — and prints the cost ledger and
// optional event timeline. It is the single-run companion to paperfigs.
//
// Usage:
//
//	spotsim -preset high -policy markov-daly -bid 0.81 -n 3 -slack 0.15 -tc 300
//	spotsim -preset low -policy adaptive -timeline
//	spotsim -preset low-spike -policy large-bid -threshold 0.81
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/market"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spotsim: ")

	preset := flag.String("preset", "low", "trace preset: low, high, low-spike")
	seed := flag.Uint64("seed", 1, "trace and run seed")
	policy := flag.String("policy", "periodic", "policy: periodic, markov-daly, edge, threshold, changepoint, large-bid, adaptive, on-demand")
	bid := flag.Float64("bid", 0.81, "bid price in $/h (large-bid uses $100 automatically)")
	n := flag.Int("n", 1, "number of redundant zones (1-3)")
	threshold := flag.Float64("threshold", 0.81, "large-bid cost-control threshold L (0 = naive)")
	workHours := flag.Float64("work", 20, "uninterrupted computation time C in hours")
	slack := flag.Float64("slack", 0.15, "slack fraction of C (deadline = C*(1+slack))")
	tc := flag.Int64("tc", 300, "checkpoint (and restart) cost in seconds")
	appName := flag.String("app", "", "derive checkpoint/restart costs from an application profile (e.g. nas-ft-d-128); overrides -tc")
	day := flag.Int("day", 5, "start day of the experiment window within the month trace")
	timeline := flag.Bool("timeline", false, "print the detailed event timeline")
	flag.Parse()

	set, err := buildSet(*preset, *seed)
	if err != nil {
		log.Fatal(err)
	}
	start := set.Start() + int64(*day)*24*trace.Hour
	if start-2*24*trace.Hour < set.Start() {
		log.Fatalf("day %d leaves no room for the 2-day model history", *day)
	}
	work := int64(*workHours * float64(trace.Hour))
	deadline := int64(float64(work) * (1 + *slack))
	runEnd := start + deadline + 2*trace.Hour
	if runEnd > set.End() {
		log.Fatalf("window exceeds the trace; pick an earlier -day")
	}

	ckptCost, restartCost := *tc, *tc
	var iteration int64
	if *appName != "" {
		profile, err := app.Lookup(*appName)
		if err != nil {
			log.Fatal(err)
		}
		ckptCost, restartCost, err = app.Costs(profile, app.DefaultIOServer())
		if err != nil {
			log.Fatal(err)
		}
		iteration = int64(profile.IterationSeconds)
		fmt.Printf("application %s: %d tasks × %.0f MB → checkpoint %d s, restart %d s, iteration %d s\n\n",
			profile.Name, profile.Tasks, profile.StatePerTaskMB, ckptCost, restartCost, iteration)
	}

	cfg := sim.Config{
		Trace:            set.Slice(start, runEnd),
		History:          set.Slice(start-2*24*trace.Hour, start),
		Work:             work,
		Deadline:         deadline,
		CheckpointCost:   ckptCost,
		RestartCost:      restartCost,
		IterationSeconds: iteration,
		Seed:             *seed,
		RecordTimeline:   *timeline,
	}

	strat, err := buildStrategy(*policy, *bid, *n, *threshold, set.NumZones())
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(cfg, strat)
	if err != nil {
		log.Fatal(err)
	}
	printResult(cfg, res, start)
}

func buildSet(preset string, seed uint64) (*trace.Set, error) {
	switch preset {
	case "low":
		return tracegen.LowVolatility(seed), nil
	case "high":
		return tracegen.HighVolatility(seed), nil
	case "low-spike":
		return tracegen.LowVolatilityWithMegaSpike(seed), nil
	default:
		return nil, fmt.Errorf("unknown preset %q", preset)
	}
}

func buildStrategy(policy string, bid float64, n int, threshold float64, zones int) (sim.Strategy, error) {
	if n < 1 || n > zones {
		return nil, fmt.Errorf("n must be in 1..%d", zones)
	}
	zoneIdx := make([]int, n)
	for i := range zoneIdx {
		zoneIdx[i] = i
	}
	switch policy {
	case "periodic", "markov-daly", "edge", "threshold", "changepoint":
		var p sim.CheckpointPolicy
		switch policy {
		case "periodic":
			p = core.NewPeriodic()
		case "markov-daly":
			p = core.NewMarkovDaly()
		case "edge":
			p = core.NewEdge()
		case "threshold":
			p = core.NewThreshold()
		case "changepoint":
			p = core.NewChangepoint()
		}
		if n == 1 {
			return core.SingleZone(p, bid, 0), nil
		}
		return core.Redundant(p, bid, zoneIdx), nil
	case "large-bid":
		l := threshold
		if l <= 0 {
			l = math.Inf(1)
		}
		return core.NewStatic("large-bid", sim.RunSpec{
			Bid: core.LargeBidAmount, Zones: []int{0}, Policy: core.NewLargeBid(l),
		}), nil
	case "adaptive":
		return core.NewAdaptive(), nil
	case "on-demand":
		return core.NewOnDemandOnly(), nil
	default:
		return nil, fmt.Errorf("unknown policy %q", policy)
	}
}

func printResult(cfg sim.Config, res *sim.Result, start int64) {
	hours := func(t int64) float64 { return float64(t-start) / float64(trace.Hour) }
	fmt.Printf("strategy:          %s (%s)\n", res.Strategy, res.Policy)
	fmt.Printf("completed:         %v (deadline met: %v)\n", res.Completed, res.DeadlineMet)
	fmt.Printf("finish:            %.2f h (deadline %.2f h)\n", hours(res.FinishTime), float64(cfg.Deadline)/float64(trace.Hour))
	fmt.Printf("total cost:        $%.2f (spot $%.2f + on-demand $%.2f)\n", res.Cost, res.SpotCost, res.OnDemandCost)
	fmt.Printf("on-demand ref:     $%.2f\n", math.Ceil(float64(cfg.Work)/float64(trace.Hour))*market.OnDemandRate)
	fmt.Printf("checkpoints:       %d (+%d aborted), restarts: %d\n", res.Checkpoints, res.AbortedCheckpoints, res.Restarts)
	fmt.Printf("time attribution:  %.1f h rework lost to terminations, %.1f h checkpoint/restore overhead\n",
		float64(res.ReworkSeconds)/float64(trace.Hour), float64(res.OverheadSeconds)/float64(trace.Hour))
	fmt.Printf("terminations:      %d by provider, %d by user; spec switches: %d\n", res.ProviderKills, res.UserReleases, res.SpecSwitches)
	fmt.Printf("switched to OD:    %v\n", res.SwitchedOnDemand)
	fmt.Println("\nledger:")
	for _, e := range res.Ledger.Entries {
		kind := "spot"
		if e.OnDemand {
			kind = "on-demand"
		}
		partial := ""
		if e.Partial {
			partial = " (partial hour, charged in full)"
		}
		fmt.Printf("  %6.2f h  %-10s %-12s $%.2f%s\n", hours(e.HourStart), kind, e.Zone, e.Rate, partial)
	}
	if len(res.Timeline) > 0 {
		fmt.Println("\ntimeline:")
		for _, ev := range res.Timeline {
			zone := ""
			if ev.Zone >= 0 {
				zone = fmt.Sprintf(" zone=%d", ev.Zone)
			}
			detail := ""
			if ev.Detail != "" {
				detail = " " + ev.Detail
			}
			fmt.Printf("  %6.2f h  %-18s%s%s\n", hours(ev.Time), ev.Kind, zone, detail)
		}
	}
	if !res.DeadlineMet {
		os.Exit(1)
	}
}
