// Command chaossim soaks the live scheduling pipeline under seeded
// fault injection: each run replays a synthetic trace through the fault
// injector (latency, drops, duplicates, corruption, stalls, zone
// blackouts), the retry decorator and the scheduler with its feed
// watchdog, then verifies the paper's invariants — deadline met or
// on-demand fallback provably engaged, a consistent billing ledger, no
// goroutine leaks, and bit-for-bit determinism per seed (every scenario
// is replayed twice and the results compared).
//
// It exits non-zero on the first violated invariant, which makes it a
// CI gate; scripts/check.sh runs a short soak.
//
// Usage:
//
//	chaossim -runs 20 -seed 1 -preset high
//	chaossim -runs 100 -watchdog 50ms -v
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"repro/internal/chaos"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chaossim: ")

	runs := flag.Int("runs", 20, "fault scenarios to soak (each replayed twice for determinism)")
	seed := flag.Uint64("seed", 1, "base seed; run i uses seed+i")
	preset := flag.String("preset", "high", "trace preset: low, high, low-spike")
	work := flag.Float64("work", 4, "computation time C in hours")
	slack := flag.Float64("slack", 0.5, "deadline slack fraction")
	watchdog := flag.Duration("watchdog", 100*time.Millisecond, "feed watchdog gap (stalls sleep 10x this)")
	verbose := flag.Bool("v", false, "print one line per run")
	flag.Parse()

	var lw io.Writer
	if *verbose {
		lw = os.Stdout
	}
	rep, err := chaos.Soak(context.Background(), chaos.Config{
		Preset:      *preset,
		Seed:        *seed,
		Runs:        *runs,
		WorkHours:   *work,
		SlackFrac:   *slack,
		WatchdogGap: *watchdog,
		Log:         lw,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chaos soak passed: %d seeded scenarios (each replayed twice) in %s\n",
		len(rep.Runs), rep.Elapsed.Round(time.Millisecond))
	fmt.Printf("  fallbacks engaged  %d/%d\n", rep.Fallbacks, len(rep.Runs))
	fmt.Printf("  watchdog trips     %d\n", rep.WatchdogTrips)
	fmt.Printf("  invalid rows       %d\n", rep.InvalidRows)
	fmt.Printf("  feed errors        %d\n", rep.FeedErrors)
	fmt.Println("  invariants         deadline-or-fallback, ledger-consistent, leak-free, deterministic")
}
