// Command chaossim soaks the live scheduling pipeline under seeded
// fault injection: each run replays a synthetic trace through the fault
// injector (latency, drops, duplicates, corruption, stalls, zone
// blackouts), the retry decorator and the scheduler with its feed
// watchdog, then verifies the paper's invariants — deadline met or
// on-demand fallback provably engaged, a consistent billing ledger, no
// goroutine leaks, and bit-for-bit determinism per seed (every scenario
// is replayed twice and the results compared).
//
// With -fleet it soaks the serving topology instead: quotelb routing
// over N in-process quoted instances with per-backend snapshot stores,
// under seeded fleet faults (backend kill/restart, LB↔backend
// partitions, slow-loris subscribers, feed gaps) while clients keep
// quoting and streaming through the front door. Invariants: zero
// client-visible errors within the retry budget, monotonic plan
// generations across reconnects and failovers, snapshot resume (never
// full replay) after a kill, no goroutine leaks, and byte-identical
// per-seed reports.
//
// It exits non-zero on the first violated invariant, which makes it a
// CI gate; scripts/check.sh runs a short soak of both modes.
//
// Usage:
//
//	chaossim -runs 20 -seed 1 -preset high
//	chaossim -runs 100 -watchdog 50ms -v
//	chaossim -fleet -runs 20 -backends 3
//	chaossim -fleet -runs 20 -json > BENCH_chaos_fleet.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"repro/internal/chaos"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chaossim: ")

	runs := flag.Int("runs", 20, "fault scenarios to soak (each replayed twice for determinism)")
	seed := flag.Uint64("seed", 1, "base seed; run i uses seed+i")
	preset := flag.String("preset", "high", "trace preset: low, high, low-spike")
	work := flag.Float64("work", 4, "computation time C in hours")
	slack := flag.Float64("slack", 0.5, "deadline slack fraction")
	watchdog := flag.Duration("watchdog", 100*time.Millisecond, "feed watchdog gap (stalls sleep 10x this)")
	fleet := flag.Bool("fleet", false, "soak the quotelb/quoted serving topology under fleet faults instead of the scheduler pipeline")
	backends := flag.Int("backends", 3, "fleet size in -fleet mode")
	ticks := flag.Int("ticks", 96, "feed horizon per scenario in -fleet mode")
	checkpointEvery := flag.Int("checkpoint-every", 8, "streamer snapshot cadence in feed ticks in -fleet mode")
	jsonOut := flag.Bool("json", false, "in -fleet mode, print the aggregate report as JSON (for BENCH_chaos_fleet.json)")
	verbose := flag.Bool("v", false, "print one line per run")
	flag.Parse()

	var lw io.Writer
	if *verbose {
		lw = os.Stderr
	}
	if *fleet {
		runFleet(chaos.FleetConfig{
			Seed:            *seed,
			Scenarios:       *runs,
			Backends:        *backends,
			Ticks:           *ticks,
			CheckpointEvery: *checkpointEvery,
			Log:             lw,
		}, *jsonOut)
		return
	}
	rep, err := chaos.Soak(context.Background(), chaos.Config{
		Preset:      *preset,
		Seed:        *seed,
		Runs:        *runs,
		WorkHours:   *work,
		SlackFrac:   *slack,
		WatchdogGap: *watchdog,
		Log:         lw,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chaos soak passed: %d seeded scenarios (each replayed twice) in %s\n",
		len(rep.Runs), rep.Elapsed.Round(time.Millisecond))
	fmt.Printf("  fallbacks engaged  %d/%d\n", rep.Fallbacks, len(rep.Runs))
	fmt.Printf("  watchdog trips     %d\n", rep.WatchdogTrips)
	fmt.Printf("  invalid rows       %d\n", rep.InvalidRows)
	fmt.Printf("  feed errors        %d\n", rep.FeedErrors)
	fmt.Println("  invariants         deadline-or-fallback, ledger-consistent, leak-free, deterministic")
}

// fleetJSON is the BENCH_chaos_fleet.json shape: the aggregate fleet
// counters plus one entry per scenario.
type fleetJSON struct {
	Scenarios   int     `json:"scenarios"`
	Backends    int     `json:"backends"`
	Ticks       int     `json:"ticks_per_scenario"`
	Kills       int     `json:"kills"`
	Partitions  int     `json:"partitions"`
	SlowClients int     `json:"slow_clients"`
	FeedGaps    int     `json:"feed_gaps"`
	Restores    int     `json:"restores"`
	Catchup     int     `json:"catchup_ticks_total"`
	MaxCatchup  int     `json:"max_catchup_ticks"`
	ElapsedSec  float64 `json:"elapsed_seconds"`
	Runs        []struct {
		Seed       uint64 `json:"seed"`
		Faults     int    `json:"faults"`
		Restores   int    `json:"restores"`
		Catchup    int    `json:"catchup_ticks"`
		Reconnects int    `json:"sse_reconnects"`
		Digest     string `json:"digest"`
	} `json:"runs"`
}

// runFleet soaks the fleet topology and prints either the human summary
// or the JSON report.
func runFleet(cfg chaos.FleetConfig, jsonOut bool) {
	rep, err := chaos.FleetSoak(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	if cfg.Backends <= 0 {
		cfg.Backends = 3
	}
	if cfg.Ticks <= 0 {
		cfg.Ticks = 96
	}
	if jsonOut {
		out := fleetJSON{
			Scenarios:   len(rep.Runs),
			Backends:    cfg.Backends,
			Ticks:       cfg.Ticks,
			Kills:       rep.Kills,
			Partitions:  rep.Partitions,
			SlowClients: rep.SlowClients,
			FeedGaps:    rep.FeedGaps,
			Restores:    rep.Restores,
			Catchup:     rep.CatchupTicks,
			MaxCatchup:  rep.MaxCatchup,
			ElapsedSec:  rep.Elapsed.Seconds(),
		}
		for _, r := range rep.Runs {
			out.Runs = append(out.Runs, struct {
				Seed       uint64 `json:"seed"`
				Faults     int    `json:"faults"`
				Restores   int    `json:"restores"`
				Catchup    int    `json:"catchup_ticks"`
				Reconnects int    `json:"sse_reconnects"`
				Digest     string `json:"digest"`
			}{r.Seed, len(r.Scenario.Plans), r.Restores, r.CatchupTicks, r.Reconnects, r.Digest})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("fleet chaos soak passed: %d seeded scenarios (each replayed twice) over %d backends in %s\n",
		len(rep.Runs), cfg.Backends, rep.Elapsed.Round(time.Millisecond))
	fmt.Printf("  backend kills      %d (all restored from snapshots)\n", rep.Kills)
	fmt.Printf("  partitions         %d\n", rep.Partitions)
	fmt.Printf("  slow clients       %d\n", rep.SlowClients)
	fmt.Printf("  feed gaps          %d\n", rep.FeedGaps)
	fmt.Printf("  catch-up ticks     %d total, %d max per restore (horizon %d)\n",
		rep.CatchupTicks, rep.MaxCatchup, cfg.Ticks)
	fmt.Println("  invariants         zero client errors, monotonic generations, snapshot resume, leak-free, deterministic")
}
