// Command bidopt prints the analytic bid-price landscape of a zone:
// for each candidate bid, the stationary availability, expected paid
// rate, grant/outage cycle durations, effective progress rate and
// expected dollars per hour of committed work, plus the recommended bid
// for a required progress rate. It is the closed-form counterpart of
// the Adaptive scheme's simulation-based search (see internal/opt).
//
// Usage:
//
//	bidopt -preset high -zone 0 -rate 0.87
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/markov"
	"repro/internal/opt"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bidopt: ")

	preset := flag.String("preset", "high", "trace preset: low, high, low-spike")
	seed := flag.Uint64("seed", 1, "trace seed")
	zone := flag.Int("zone", 0, "zone index (0-2)")
	days := flag.Int64("days", 4, "history length in days to fit the chain on")
	tc := flag.Float64("tc", 300, "checkpoint cost in seconds")
	delay := flag.Float64("delay", 300, "mean queuing delay in seconds")
	rate := flag.Float64("rate", 0.87, "required progress rate (work / remaining time); 20h in 23h ≈ 0.87")
	flag.Parse()

	var set *trace.Set
	switch *preset {
	case "low":
		set = tracegen.LowVolatility(*seed)
	case "high":
		set = tracegen.HighVolatility(*seed)
	case "low-spike":
		set = tracegen.LowVolatilityWithMegaSpike(*seed)
	default:
		log.Fatalf("unknown preset %q", *preset)
	}
	if *zone < 0 || *zone >= set.NumZones() {
		log.Fatalf("zone %d out of range", *zone)
	}
	s := set.Series[*zone].Slice(set.Start(), set.Start()+*days*24*trace.Hour)
	hist := markov.Quantize(s.Prices, 0.05)
	m, err := markov.Fit(hist, s.Step)
	if err != nil {
		log.Fatal(err)
	}
	ov := opt.Overheads{CheckpointCost: *tc, RestartCost: *tc, QueueDelay: *delay}

	fmt.Printf("zone %s, %d days of history, %d price states, t_c=%gs\n\n", s.Zone, *days, m.NumStates(), *tc)
	var rows [][]string
	for _, bid := range core.BidGrid() {
		an := opt.Analyze(m, bid, ov)
		up := "inf"
		if !math.IsInf(an.ExpectedUptime, 1) {
			up = fmt.Sprintf("%.0fm", an.ExpectedUptime/60)
		}
		cost := "-"
		if an.CostPerWorkHour > 0 {
			cost = fmt.Sprintf("%.3f", an.CostPerWorkHour)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", bid),
			fmt.Sprintf("%.1f%%", an.Availability*100),
			fmt.Sprintf("%.3f", an.MeanPaidPrice),
			up,
			fmt.Sprintf("%.0fm", an.ExpectedDowntime/60),
			fmt.Sprintf("%.3f", an.EffectiveRate),
			cost,
		})
	}
	if err := report.Table(os.Stdout, []string{"bid", "avail", "paid $/h", "E[up]", "E[down]", "eff rate", "$/work-h"}, rows); err != nil {
		log.Fatal(err)
	}

	rec, err := opt.BestBid(m, core.BidGrid(), ov, *rate)
	if err != nil {
		log.Fatal(err)
	}
	if rec.Feasible {
		fmt.Printf("\nrecommended bid for rate >= %.2f: $%.2f (expected $%.3f per work-hour)\n",
			*rate, rec.Bid, rec.Analysis.CostPerWorkHour)
	} else {
		fmt.Printf("\nno bid sustains rate %.2f on this zone; fastest is $%.2f at rate %.3f — the deadline guard will buy on-demand time\n",
			*rate, rec.Bid, rec.Analysis.EffectiveRate)
	}
}
