// Command quotelb is the fleet's front door: it fans /v1/quote
// requests across N quoted backends with a pluggable routing policy,
// per-tenant token-bucket admission control, and health-aware backend
// ejection with buffered failover — a dying backend costs a retry, not
// a client-visible error.
//
// Policies:
//
//	affinity      rendezvous-hash the canonical request key, so
//	              identical quotes land on the same backend's plan
//	              cache (the default)
//	least-loaded  prefer the backend with the fewest in-flight requests
//	round-robin   cycle through the fleet
//
// Usage:
//
//	quoted -addr :8081 -preset high &
//	quoted -addr :8082 -preset high &
//	quoted -addr :8083 -preset high &
//	quotelb -addr :8080 -backends http://localhost:8081,http://localhost:8082,http://localhost:8083
//	curl -s localhost:8080/v1/quote -d '{"work_hours":20,"deadline_hours":30,"history_window":12}'
//
// Admission control: -rate/-burst set the shared default bucket and
// repeated -quota tenant=rate:burst flags give named tenants (the
// X-Tenant request header) private buckets; exhausted quotas answer
// 429 with a dedicated metric.
//
// With -sim the binary runs the in-process cluster simulator instead
// of serving: N real quote services behind the real router, swept
// across offered-load levels per policy by a seeded open-loop
// workload, with the capacity curves (p50/p99 latency, error rate,
// plan-cache hit rate vs offered load), the quota-exhaustion scenario
// and the mid-run backend-kill scenario reported as JSON on stdout.
// The process exits non-zero if affinity routing misses round-robin's
// cache-hit-rate floor, quota exhaustion produces no counted 429s, or
// the killed backend is not ejected cleanly — scripts/bench.sh runs
// exactly this as the BENCH_cluster.json gate.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/httpx"
	"repro/internal/obs"
	"repro/internal/quote"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quotelb: ")

	addr := flag.String("addr", ":8080", "listen address")
	backends := flag.String("backends", "", "comma-separated quoted base URLs (required unless -sim)")
	policyName := flag.String("policy", "affinity", "routing policy: affinity, least-loaded, round-robin")
	rate := flag.Float64("rate", 0, "default-bucket admission rate in req/s (0: unlimited)")
	burst := flag.Float64("burst", 0, "default-bucket burst (0: same as -rate)")
	maxAttempts := flag.Int("max-attempts", 0, "forward attempts per request (0: every backend once)")
	retryRatio := flag.Float64("retry-budget-ratio", 0, "retry tokens each admitted request earns; failovers and hedges each spend one (0: unbounded failover)")
	retryBurst := flag.Float64("retry-budget-burst", cluster.DefaultRetryBurst, "retry token pool cap when -retry-budget-ratio is set")
	hedgeAfter := flag.Duration("hedge-after", 0, "launch one speculative attempt at the next backend if the first has not answered within this (0: no hedging; deadline-aware and budget-gated)")
	breakerFails := flag.Int("breaker-failures", quote.DefaultBreakerThreshold, "consecutive forward failures that eject a backend")
	breakerCooldown := flag.Duration("breaker-cooldown", quote.DefaultBreakerCooldown, "ejection period before a readmission probe")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "active /healthz probe interval for ejected backends (0: passive only)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	traceSpans := flag.Int("trace-spans", 0, "trace routing spans into a ring of this size, served at /debug/trace (0: disabled)")

	quotas := map[string]cluster.Quota{}
	flag.Func("quota", "per-tenant quota as tenant=rate:burst (repeatable)", func(s string) error {
		tenant, q, err := parseQuota(s)
		if err != nil {
			return err
		}
		quotas[tenant] = q
		return nil
	})

	simOn := flag.Bool("sim", false, "run the in-process cluster simulator and print BENCH_cluster JSON instead of serving")
	simBackends := flag.Int("sim-backends", 3, "simulated fleet size")
	simSeed := flag.Uint64("sim-seed", 1, "simulator workload/history seed")
	simLoads := flag.String("sim-loads", "300,1200,4800", "comma-separated offered-load levels in req/s")
	simDur := flag.Duration("sim-duration", 2*time.Second, "simulator run time per (policy, load) level")
	simHot := flag.Float64("sim-hot", 0.85, "fraction of simulated requests drawn from the repeated hot set")
	flag.Parse()

	if *simOn {
		if err := runSim(*simBackends, *simSeed, *simLoads, *simDur, *simHot); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *backends == "" {
		log.Fatal("-backends is required (or use -sim)")
	}
	fleet, err := parseBackends(*backends, *breakerFails, *breakerCooldown)
	if err != nil {
		log.Fatal(err)
	}
	policy, err := cluster.ParsePolicy(*policyName)
	if err != nil {
		log.Fatal(err)
	}
	var limiter *cluster.Limiter
	if *rate > 0 || len(quotas) > 0 {
		b := *burst
		if b <= 0 {
			b = *rate
		}
		limiter = &cluster.Limiter{Default: cluster.Quota{Rate: *rate, Burst: b}, Tenants: quotas}
	}
	var budget *cluster.Budget
	if *retryRatio > 0 {
		budget = &cluster.Budget{Ratio: *retryRatio, Burst: *retryBurst}
	}
	router := &cluster.Router{
		Backends:    fleet,
		Policy:      policy,
		Limiter:     limiter,
		MaxAttempts: *maxAttempts,
		Retry:       budget,
		HedgeAfter:  *hedgeAfter,
	}

	var tracer *obs.Tracer
	if *traceSpans > 0 {
		tracer = obs.NewTracer(*traceSpans)
	}
	mux := http.NewServeMux()
	mux.Handle("/", httpx.Wrap(router.Handler(), tracer))
	obs.Mount(mux, tracer, *pprofOn)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if *probeInterval > 0 {
		probeClient := &http.Client{Timeout: httpx.ProxyDialTimeout}
		go router.ProbeLoop(ctx, *probeInterval, func(ctx context.Context, b *cluster.Backend) error {
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.Name+"/healthz", nil)
			if err != nil {
				return err
			}
			resp, err := probeClient.Do(req)
			if err != nil {
				return err
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("healthz %s", resp.Status)
			}
			return nil
		})
	}

	log.Printf("routing %d backends with %s policy at http://%s/v1/quote (metrics at /metrics)",
		len(fleet), policy.Name(), *addr)
	srv := httpx.NewServer(*addr, mux)
	if err := httpx.ListenAndServe(ctx, srv, httpx.DefaultGrace); err != nil {
		log.Fatal(err)
	}
}

// parseBackends builds proxied backends from comma-separated base URLs;
// each backend is named by its base URL, which doubles as the probe
// target.
func parseBackends(list string, threshold int, cooldown time.Duration) ([]*cluster.Backend, error) {
	var out []*cluster.Backend
	seen := map[string]bool{}
	for _, raw := range strings.Split(list, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		u, err := url.Parse(raw)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("bad backend URL %q (want e.g. http://host:8081)", raw)
		}
		name := strings.TrimSuffix(u.String(), "/")
		if seen[name] {
			return nil, fmt.Errorf("duplicate backend %q", name)
		}
		seen[name] = true
		b := cluster.NewBackend(name, httpx.Proxy(u, nil))
		b.Breaker = &quote.Breaker{Threshold: threshold, Cooldown: cooldown}
		out = append(out, b)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no backends in %q", list)
	}
	return out, nil
}

// parseQuota parses tenant=rate:burst (burst optional, defaults to
// rate).
func parseQuota(s string) (string, cluster.Quota, error) {
	tenant, spec, ok := strings.Cut(s, "=")
	if !ok || tenant == "" {
		return "", cluster.Quota{}, fmt.Errorf("bad -quota %q (want tenant=rate:burst)", s)
	}
	rateStr, burstStr, hasBurst := strings.Cut(spec, ":")
	rate, err := strconv.ParseFloat(rateStr, 64)
	if err != nil || rate <= 0 {
		return "", cluster.Quota{}, fmt.Errorf("bad -quota rate in %q", s)
	}
	burst := rate
	if hasBurst {
		if burst, err = strconv.ParseFloat(burstStr, 64); err != nil || burst < 1 {
			return "", cluster.Quota{}, fmt.Errorf("bad -quota burst in %q", s)
		}
	}
	return tenant, cluster.Quota{Rate: rate, Burst: burst}, nil
}

// runSim runs the capacity-curve simulator and prints its JSON report,
// failing the process if an acceptance gate does not hold.
func runSim(backends int, seed uint64, loads string, dur time.Duration, hot float64) error {
	var levels []float64
	for _, f := range strings.Split(loads, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v <= 0 {
			return fmt.Errorf("bad -sim-loads entry %q", f)
		}
		levels = append(levels, v)
	}
	log.Printf("sim: %d backends, %d load levels × %s per policy, seed %d", backends, len(levels), dur, seed)
	res, err := cluster.RunSim(cluster.SimConfig{
		Backends:    backends,
		Seed:        seed,
		Loads:       levels,
		Duration:    dur,
		HotFraction: hot,
	})
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		return err
	}
	for _, p := range res.Curves {
		log.Printf("sim: %-12s %6.0f req/s offered → p50 %7.2fms p99 %8.2fms errors %.3f%% cache-hit %.1f%%",
			p.Policy, p.OfferedRPS, p.P50Ms, p.P99Ms, 100*p.ErrorRate, 100*p.CacheHitRate)
	}
	log.Printf("sim: affinity cache-hit %.1f%% vs round-robin %.1f%%; quota 429s %d; kill ejections %d errors %d",
		100*res.Duel.AffinityHitRate, 100*res.Duel.RoundRobinHitRate,
		res.Quota.Throttled, res.Kill.Ejections, res.Kill.Errors)
	return res.Check()
}
