// Command paperfigs regenerates every table and figure of the paper's
// evaluation from the simulation harness.
//
// Usage:
//
//	paperfigs [flags] <experiment>
//
// where experiment is one of: fig1, fig2, fig3 (the paper's didactic
// timelines and availability view), var, fig4, table2, table3, fig5,
// fig6, headline, oracle (a clairvoyant-gap analysis beyond the paper),
// all.
//
// Flags control scale: -windows selects the number of partially
// overlapping experiment windows per regime (the paper uses 80; smaller
// values are faster with thinner tails).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/experiment"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperfigs: ")

	seed := flag.Uint64("seed", 1, "suite seed (traces and run streams)")
	windows := flag.Int("windows", experiment.DefaultWindows, "experiment windows per regime (paper: 80)")
	workers := flag.Int("workers", 0, "worker pool size for suite runs (0 = all cores); output is identical at any setting")
	batched := flag.Bool("batched", true, "price adaptive evaluations with the columnar batched engine (false: per-permutation oracle replays); figures are byte-identical either way")
	csvDir := flag.String("csv", "", "also write per-figure boxplot CSVs into this directory")
	svgDir := flag.String("svg", "", "also write per-figure SVG boxplot panels into this directory")
	tcFlag := flag.Int64("tc", 300, "checkpoint cost for fig4 (the paper plots 300 s and tabulates 900 s)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: paperfigs [flags] fig1|fig2|fig3|var|fig4|table2|table3|fig5|fig6|headline|oracle|convergence|yearbound|all\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	s := experiment.NewQuickSuite(*seed, *windows)
	s.Workers = *workers
	s.OracleEval = !*batched
	r := runner{s: s, csvDir: *csvDir, svgDir: *svgDir, tc: *tcFlag}
	for _, dir := range []string{r.csvDir, r.svgDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				log.Fatal(err)
			}
		}
	}

	var err error
	switch what := flag.Arg(0); what {
	case "fig1":
		err = r.illustration(r.s.Fig1)
	case "fig3":
		err = r.illustration(r.s.Fig3)
	case "fig2":
		err = r.fig2()
	case "var":
		err = r.varAnalysis()
	case "fig4":
		err = r.fig4()
	case "table2":
		err = r.table(300)
	case "table3":
		err = r.table(900)
	case "fig5":
		err = r.fig5()
	case "fig6":
		err = r.fig6()
	case "headline":
		err = r.headline()
	case "oracle":
		err = r.oracle()
	case "convergence":
		err = r.convergence()
	case "yearbound":
		err = r.yearBound()
	case "all":
		for _, f := range []func() error{
			func() error { return r.illustration(r.s.Fig1) },
			func() error { return r.illustration(r.s.Fig3) },
			r.fig2, r.varAnalysis, r.fig4,
			func() error { return r.table(300) },
			func() error { return r.table(900) },
			r.fig5, r.fig6, r.headline, r.oracle, r.convergence, r.yearBound} {
			if err = f(); err != nil {
				break
			}
		}
	default:
		log.Fatalf("unknown experiment %q", what)
	}
	if err != nil {
		log.Fatal(err)
	}
}

// runner bundles the suite with output options.
type runner struct {
	s      *experiment.Suite
	csvDir string
	svgDir string
	tc     int64
}

// writeCSV emits labelled boxes as a CSV file when -csv is set.
func (r runner) writeCSV(name string, labels []string, boxes []stats.Box) error {
	if r.csvDir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(r.csvDir, name))
	if err != nil {
		return err
	}
	if err := report.WriteBoxesCSV(f, labels, boxes); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeSVG emits the panel when -svg is set; the on-demand and minimum
// spot references ride along.
func (r runner) writeSVG(name, title string, labels []string, boxes []stats.Box) error {
	if r.svgDir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(r.svgDir, name))
	if err != nil {
		return err
	}
	panel := report.SVGPanel{
		Title:  title,
		Labels: labels,
		Boxes:  boxes,
		RefLines: map[string]float64{
			"on-demand $48.00": r.s.OnDemandReferenceCost(),
			"min spot $5.40":   r.s.MinSpotReferenceCost(),
		},
	}
	if err := report.WriteSVG(f, panel); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// illustration renders a Figure 1/3 style run chart.
func (r runner) illustration(build func() (*experiment.Illustration, error)) error {
	ill, err := build()
	if err != nil {
		return err
	}
	if err := report.RunChart(os.Stdout, ill.Cfg, ill.Res, ill.Bid, 76); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

func (r runner) fig2() error {
	res, err := r.s.Fig2(experiment.RegimeHigh, 5*24*trace.Hour, 0)
	if err != nil {
		return err
	}
	if err := report.Fig2(os.Stdout, res); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

func (r runner) varAnalysis() error {
	res, err := r.s.VarAnalysis(6)
	if err != nil {
		return err
	}
	if err := report.Var(os.Stdout, res); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

func (r runner) fig4() error {
	for _, regime := range []string{experiment.RegimeLow, experiment.RegimeHigh} {
		for _, slack := range experiment.Slacks {
			cell, err := r.s.Fig4(regime, slack, r.tc, nil)
			if err != nil {
				return err
			}
			if err := report.Fig4(os.Stdout, cell); err != nil {
				return err
			}
			var labels []string
			var boxes []stats.Box
			for _, kind := range experiment.SinglePolicies {
				for _, bid := range cell.Bids {
					labels = append(labels, fmt.Sprintf("%s@%.2f", kind, bid))
					boxes = append(boxes, cell.Singles[kind][bid])
				}
			}
			for _, bid := range cell.Bids {
				labels = append(labels, fmt.Sprintf("redundancy@%.2f", bid))
				boxes = append(boxes, cell.BestRedundant[bid])
			}
			base := fmt.Sprintf("fig4_%s_slack%.0f_tc%d", regime, slack*100, r.tc)
			if err := r.writeCSV(base+".csv", labels, boxes); err != nil {
				return err
			}
			title := fmt.Sprintf("Figure 4 — %s volatility, slack %.0f%%, t_c=%ds", regime, slack*100, r.tc)
			if err := r.writeSVG(base+".svg", title, labels, boxes); err != nil {
				return err
			}
		}
	}
	return nil
}

func (r runner) table(tc int64) error {
	rows, err := r.s.Table(tc)
	if err != nil {
		return err
	}
	if err := report.BestPolicyTable(os.Stdout, tc, rows); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

func (r runner) fig5() error {
	cells, err := r.s.Fig5All()
	if err != nil {
		return err
	}
	for _, cell := range cells {
		if err := report.Fig5(os.Stdout, cell); err != nil {
			return err
		}
		base := fmt.Sprintf("fig5_%s_slack%.0f_tc%d", cell.Regime, cell.Slack*100, cell.Tc)
		labels := []string{"adaptive", "periodic", "markov-daly", "redundancy"}
		boxes := []stats.Box{cell.Adaptive, cell.Periodic, cell.MarkovDaly, cell.BestRedundant}
		if err := r.writeCSV(base+".csv", labels, boxes); err != nil {
			return err
		}
		title := fmt.Sprintf("Figure 5 — %s volatility, slack %.0f%%, t_c=%ds", cell.Regime, cell.Slack*100, cell.Tc)
		if err := r.writeSVG(base+".svg", title, labels, boxes); err != nil {
			return err
		}
	}
	return nil
}

func (r runner) fig6() error {
	cells, err := r.s.Fig6All()
	if err != nil {
		return err
	}
	for _, cell := range cells {
		if err := report.Fig6(os.Stdout, cell); err != nil {
			return err
		}
		var labels []string
		var boxes []stats.Box
		for _, l := range experiment.Fig6Thresholds() {
			labels = append(labels, "large-bid-"+experiment.ThresholdLabel(l))
			boxes = append(boxes, cell.LargeBid[l])
		}
		labels = append(labels, "adaptive")
		boxes = append(boxes, cell.Adaptive)
		base := fmt.Sprintf("fig6_%s_slack%.0f_tc%d", cell.Regime, cell.Slack*100, cell.Tc)
		if err := r.writeCSV(base+".csv", labels, boxes); err != nil {
			return err
		}
		title := fmt.Sprintf("Figure 6 — %s volatility, slack %.0f%%, t_c=%ds", cell.Regime, cell.Slack*100, cell.Tc)
		if err := r.writeSVG(base+".svg", title, labels, boxes); err != nil {
			return err
		}
	}
	return nil
}

// convergence reports how the cost median stabilises as experiment
// windows accumulate — the methodology behind the 80-window tiling.
func (r runner) convergence() error {
	fmt.Println("Window-count convergence — periodic @ $0.81, high volatility, 15% slack")
	counts := []int{5, 10, 20, 40, 80}
	pts, err := r.s.Convergence(experiment.RegimeHigh, 0.15, 300, experiment.KindPeriodic, 0.81, counts)
	if err != nil {
		return err
	}
	var rows [][]string
	for _, p := range pts {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Windows),
			fmt.Sprintf("%.2f", p.Median),
			fmt.Sprintf("%.2f", p.IQR),
		})
	}
	if err := report.Table(os.Stdout, []string{"windows", "median $", "IQR $"}, rows); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

// yearBound reproduces the §7.2.1 bounded-cost claim over the full
// 12-month composite trace.
func (r runner) yearBound() error {
	res, err := r.s.YearBound(r.s.Windows, 0.15, 300)
	if err != nil {
		return err
	}
	fmt.Printf("12-month bounded-cost check — Adaptive across %d windows spanning the year\n", res.Windows)
	fmt.Printf("cost: median $%.2f, worst $%.2f = %.2fx on-demand (paper: never > 1.20x)\n",
		res.Costs.Median, res.Costs.Max, res.WorstOverOnDemand)
	fmt.Printf("deadlines missed: %d (the guard guarantees 0)\n\n", res.DeadlinesMissed)
	return nil
}

// oracle reports how close Adaptive gets to the clairvoyant lower
// bound (an analysis beyond the paper).
func (r runner) oracle() error {
	fmt.Println("Clairvoyant oracle gap — Adaptive cost / hindsight-optimal lower bound")
	var rows [][]string
	for _, regime := range []string{experiment.RegimeLow, experiment.RegimeHigh} {
		for _, slack := range experiment.Slacks {
			bounds, err := r.s.OracleBounds(regime, slack)
			if err != nil {
				return err
			}
			cell, err := r.s.Fig5(regime, slack, 300)
			if err != nil {
				return err
			}
			samples := cell.AdaptiveSamples()
			ratios := make([]float64, 0, len(samples))
			for i, c := range samples {
				if i < len(bounds) && bounds[i] > 0 {
					ratios = append(ratios, c/bounds[i])
				}
			}
			rows = append(rows, []string{
				regime,
				fmt.Sprintf("%.0f%%", slack*100),
				fmt.Sprintf("%.2f", stats.Quantile(bounds, 0.5)),
				fmt.Sprintf("%.2f", cell.Adaptive.Median),
				fmt.Sprintf("%.2fx", stats.Quantile(ratios, 0.5)),
				fmt.Sprintf("%.2fx", stats.Quantile(ratios, 1.0)),
			})
		}
	}
	if err := report.Table(os.Stdout, []string{"volatility", "slack", "oracle median $", "adaptive median $", "median gap", "worst gap"}, rows); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

func (r runner) headline() error {
	h, err := r.s.Headline()
	if err != nil {
		return err
	}
	return report.HeadlineReport(os.Stdout, h)
}
