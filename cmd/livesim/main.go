// Command livesim runs the live scheduler against a replayed price
// feed in compressed wall-clock time, printing every scheduling action
// as it is issued. With -serve it also spins up a local HTTP endpoint
// in the AWS DescribeSpotPriceHistory format, fetches the history back
// through the spotapi client, and replays that — exercising the full
// deployment path without touching a cloud.
//
// Usage:
//
//	livesim -preset high -policy adaptive -speedup 6000
//	livesim -serve -preset low -policy markov-daly
//	livesim -chaos 7 -watchdog 100ms -speedup 6000
//
// With -policy adaptive, -decisions prints the recorded decision trail
// (chosen permutation and rival count per decision point) after the
// run, and -regret K replays the scenario offline, forcing the top-K
// rivals of every decision through the simulator and printing the
// realized-regret table.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/decision"
	"repro/internal/faults"
	"repro/internal/livesched"
	"repro/internal/market"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/spotapi"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("livesim: ")

	preset := flag.String("preset", "high", "trace preset: low, high, low-spike")
	seed := flag.Uint64("seed", 1, "trace and run seed")
	policy := flag.String("policy", "adaptive", "policy: periodic, markov-daly, edge, threshold, adaptive")
	batched := flag.Bool("batched", true, "price adaptive evaluations with the columnar batched engine (false: per-permutation oracle replays; runs are bit-identical either way)")
	bid := flag.Float64("bid", 0.81, "bid price for non-adaptive policies")
	n := flag.Int("n", 3, "redundancy degree for non-adaptive policies")
	workHours := flag.Float64("work", 20, "computation time C in hours")
	slack := flag.Float64("slack", 0.15, "slack fraction")
	speedup := flag.Float64("speedup", 0, "wall-clock compression (0 = as fast as possible; 6000 replays 5-minute steps at 50 ms)")
	serve := flag.Bool("serve", false, "serve the history over HTTP (AWS format) and consume it through the spotapi client")
	watchdog := flag.Duration("watchdog", 0, "feed watchdog gap: a sample gap past this drives the run to the on-demand fallback (0 disables)")
	chaos := flag.Uint64("chaos", 0, "inject a seeded fault scenario (stalls, drops, corruption, blackouts) into the feed; 0 disables")
	spans := flag.Int("spans", 0, "record simulated-time spans (run, guard, fallback, decisions) into a ring of this size and print them after the run (0: disabled)")
	decisions := flag.Bool("decisions", false, "record and print the adaptive decision trail (adaptive policy only)")
	regretK := flag.Int("regret", 0, "after the run, replay the scenario offline forcing the top-K rivals of every decision and print the regret table (adaptive policy only; 0: disabled)")
	flag.Parse()

	if (*decisions || *regretK > 0) && *policy != "adaptive" {
		log.Fatal("-decisions and -regret need -policy adaptive")
	}
	if *regretK > 0 && *chaos != 0 {
		log.Fatal("-regret replays the feed offline; it cannot reproduce -chaos fault injection")
	}

	var tracer *obs.Tracer
	if *spans > 0 {
		tracer = obs.NewTracer(*spans)
	}

	set, err := buildSet(*preset, *seed)
	if err != nil {
		log.Fatal(err)
	}
	start := set.Start() + 5*24*trace.Hour
	work := int64(*workHours * float64(trace.Hour))
	deadline := int64(float64(work)*(1+*slack)) / trace.DefaultStep * trace.DefaultStep

	history := rebase(set.Slice(start-2*24*trace.Hour, start), start)
	run := rebase(set.Slice(start, start+deadline+2*trace.Hour), start)

	if *serve {
		epoch := time.Now().UTC().Truncate(time.Second)
		srv := httptest.NewServer(spotapi.Handler(run, epoch))
		defer srv.Close()
		fmt.Printf("serving AWS-format history at %s/spot-price-history\n", srv.URL)
		client := &spotapi.Client{BaseURL: srv.URL, HTTPClient: &http.Client{Timeout: 30 * time.Second}}
		fetched, _, err := client.Fetch(context.Background(), time.Time{}, time.Time{}, trace.DefaultStep)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fetched %d zones × %d samples through the spotapi client\n\n", fetched.NumZones(), fetched.Series[0].Len())
		run = fetched
	}

	strat, adaptive, err := buildStrategy(*policy, *bid, *n, run.NumZones(), tracer, *batched)
	if err != nil {
		log.Fatal(err)
	}
	var trail *decision.Collector
	if *decisions && adaptive != nil {
		trail = &decision.Collector{}
		adaptive.Sink = trail
	}

	var interval time.Duration
	if *speedup > 0 {
		interval = time.Duration(float64(trace.DefaultStep) / *speedup * float64(time.Second))
	}
	var feed livesched.Feed = &livesched.TraceFeed{Set: run, Interval: interval}
	if *chaos != 0 {
		gap := *watchdog
		if gap <= 0 {
			gap = time.Second
		}
		scenario := faults.RandomScenario(*chaos, int64(run.Series[0].Len()), run.Zones(), 10*gap, gap/20)
		fmt.Printf("chaos seed %d: injecting %d fault plans\n", *chaos, len(scenario.Plans))
		for _, p := range scenario.Plans {
			fmt.Printf("  at sample %-4d %-9s for %d samples (zones: %v)\n", p.At, p.Kind, p.Duration, p.Zones)
		}
		fmt.Println()
		feed = &faults.Injector{Inner: feed, Scenario: scenario}
	}
	sched, err := livesched.New(livesched.Config{
		Work:                work,
		Deadline:            deadline,
		CheckpointCost:      300,
		RestartCost:         300,
		History:             history,
		Delay:               market.DefaultDelay(),
		Seed:                *seed,
		WatchdogGap:         *watchdog,
		FallbackOnFeedError: *chaos != 0,
		Trace:               tracer,
	}, strat, feed, livesched.LogActuator{W: os.Stdout})
	if err != nil {
		log.Fatal(err)
	}

	res, err := sched.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncompleted: cost $%.2f (spot $%.2f + on-demand $%.2f), finish %.2f h, deadline met: %v\n",
		res.Cost, res.SpotCost, res.OnDemandCost, float64(res.FinishTime)/float64(trace.Hour), res.DeadlineMet)
	if deg := sched.Degradation(); deg != (livesched.Degradation{}) {
		fmt.Printf("degradation: watchdog trips %d, invalid rows skipped %d, feed errors absorbed %d\n",
			deg.WatchdogTrips, deg.InvalidRows, deg.FeedErrors)
	}
	if tracer != nil {
		printSpans(tracer)
	}
	if trail != nil {
		printDecisions(trail.Records())
	}
	if *regretK > 0 {
		cfg := sim.Config{
			Trace:          run,
			History:        history,
			Work:           work,
			Deadline:       deadline,
			CheckpointCost: 300,
			RestartCost:    300,
			Delay:          market.DefaultDelay(),
			Seed:           *seed,
		}
		if err := printRegret(cfg, *regretK); err != nil {
			log.Fatal(err)
		}
	}
}

// printDecisions dumps the recorded decision trail, one line per
// decision point.
func printDecisions(recs []decision.Record) {
	fmt.Printf("\ndecisions: %d recorded\n", len(recs))
	for _, r := range recs {
		mark := " "
		if r.Switched {
			mark = "*"
		}
		fmt.Printf("  [%6.2fh] %-13s %s bid=%.2f n=%d %-12s (predicted $%.2f, %d rivals)\n",
			float64(r.Time)/float64(trace.Hour), r.Trigger, mark,
			r.Chosen.Bid, len(r.Chosen.Zones), r.Chosen.Policy, r.Chosen.Cost, len(r.Ranked))
	}
}

// printRegret replays the scenario offline — same trace, history, seed
// and delay model as the live run — records the baseline decision
// trail, forces the top-k rivals of every decision through the
// simulator, and prints the realized-regret table.
func printRegret(cfg sim.Config, topK int) error {
	r := &decision.Replayer{Cfg: cfg, TopK: topK}
	baseline, dlog, err := r.Baseline()
	if err != nil {
		return err
	}
	rep, err := r.Replay(baseline, dlog)
	if err != nil {
		return err
	}
	fmt.Printf("\nregret: offline replay, top-%d rivals per decision\n\n", topK)
	return rep.WriteTable(os.Stdout)
}

// printSpans dumps the recorded span trail, oldest first, with
// simulated-time spans rendered in hours.
func printSpans(tracer *obs.Tracer) {
	spans := tracer.Spans()
	fmt.Printf("\ntrace: %d spans recorded (ring holds %d)\n", tracer.Total(), len(spans))
	for _, s := range spans {
		attrs := ""
		for _, a := range s.Attrs {
			attrs += fmt.Sprintf(" %s=%s", a.Key, a.Value)
		}
		if s.Clock == obs.SimClock {
			fmt.Printf("  [%6.2fh → %6.2fh] %-24s%s\n",
				float64(s.Start)/float64(trace.Hour), float64(s.End)/float64(trace.Hour), s.Name, attrs)
		} else {
			fmt.Printf("  [%s] %-24s%s\n",
				time.Duration(s.End-s.Start).Round(time.Microsecond), s.Name, attrs)
		}
	}
}

// rebase clones a slice of a trace so its epoch is relative to start.
func rebase(set *trace.Set, start int64) *trace.Set {
	out := set.Clone()
	for _, s := range out.Series {
		s.Epoch -= start
	}
	return out
}

func buildSet(preset string, seed uint64) (*trace.Set, error) {
	switch preset {
	case "low":
		return tracegen.LowVolatility(seed), nil
	case "high":
		return tracegen.HighVolatility(seed), nil
	case "low-spike":
		return tracegen.LowVolatilityWithMegaSpike(seed), nil
	default:
		return nil, fmt.Errorf("unknown preset %q", preset)
	}
}

// buildStrategy resolves the policy flag; for "adaptive" it also
// returns the strategy instance so callers can attach a decision sink.
func buildStrategy(policy string, bid float64, n, zones int, tracer *obs.Tracer, batched bool) (sim.Strategy, *core.Adaptive, error) {
	if policy == "adaptive" {
		a := core.NewAdaptive()
		a.Eval = &core.Evaluator{Trace: tracer, DisableBatch: !batched}
		return a, a, nil
	}
	if n < 1 || n > zones {
		return nil, nil, fmt.Errorf("n must be in 1..%d", zones)
	}
	zoneIdx := make([]int, n)
	for i := range zoneIdx {
		zoneIdx[i] = i
	}
	var p sim.CheckpointPolicy
	switch policy {
	case "periodic":
		p = core.NewPeriodic()
	case "markov-daly":
		p = core.NewMarkovDaly()
	case "edge":
		p = core.NewEdge()
	case "threshold":
		p = core.NewThreshold()
	default:
		return nil, nil, fmt.Errorf("unknown policy %q", policy)
	}
	if n == 1 {
		return core.SingleZone(p, bid, 0), nil, nil
	}
	return core.Redundant(p, bid, zoneIdx), nil, nil
}
