// Command tracegen generates synthetic EC2 CC2 spot price traces
// calibrated to the paper's published statistics, and prints summary
// statistics of generated or loaded traces.
//
// Usage:
//
//	tracegen -preset high -seed 7 -format csv -o high.csv
//	tracegen -preset year -seed 1 -stats
//	tracegen -in high.csv -stats
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/mixture"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")

	preset := flag.String("preset", "low", "trace preset: low, high, low-spike, moderate, year")
	seed := flag.Uint64("seed", 1, "generator seed")
	samples := flag.Int("samples", tracegen.SamplesPerMonth, "samples per zone (5-minute steps); ignored for year")
	format := flag.String("format", "csv", "output format: csv or json")
	out := flag.String("o", "", "output file (default stdout)")
	in := flag.String("in", "", "load a trace file instead of generating (format inferred from -format)")
	statsOnly := flag.Bool("stats", false, "print per-zone summary statistics instead of the trace")
	mixtureFit := flag.Bool("mixture", false, "fit a Gaussian mixture to each zone's prices (Javadi et al. methodology) instead of printing the trace")
	flag.Parse()

	set, err := buildSet(*in, *preset, *seed, *samples, *format)
	if err != nil {
		log.Fatal(err)
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}

	if *statsOnly {
		printStats(w, set)
		return
	}
	if *mixtureFit {
		if err := printMixture(w, set); err != nil {
			log.Fatal(err)
		}
		return
	}
	switch *format {
	case "csv":
		err = set.WriteCSV(w)
	case "json":
		err = set.WriteJSON(w)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func buildSet(in, preset string, seed uint64, samples int, format string) (*trace.Set, error) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if format == "json" {
			return trace.ReadJSON(f)
		}
		return trace.ReadCSV(f)
	}
	switch preset {
	case "low":
		return tracegen.Generate(tracegen.LowVolatilityConfig(seed, samples))
	case "high":
		return tracegen.Generate(tracegen.HighVolatilityConfig(seed, samples))
	case "moderate":
		return tracegen.Generate(tracegen.ModerateVolatilityConfig(seed, samples))
	case "low-spike":
		return tracegen.LowVolatilityWithMegaSpike(seed), nil
	case "year":
		return tracegen.Year(seed), nil
	default:
		return nil, fmt.Errorf("unknown preset %q", preset)
	}
}

// printMixture fits and reports per-zone price mixtures, the
// distribution-modelling methodology of the paper's related work.
func printMixture(w io.Writer, set *trace.Set) error {
	for _, s := range set.Series {
		m, err := mixture.SelectComponents(s.Prices, 4, mixture.Options{})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s: %d components (BIC-selected), log-likelihood %.0f\n", s.Zone, len(m.Components), m.LogLikelihood)
		for _, c := range m.Components {
			fmt.Fprintf(w, "  weight %.3f  mean $%.3f  stddev %.3f\n", c.Weight, c.Mean, c.Stddev)
		}
		fmt.Fprintf(w, "  P(price > $0.81) = %.3f, P(price > $2.40) = %.3f\n", m.TailProbability(0.81), m.TailProbability(2.40))
	}
	return nil
}

func printStats(w io.Writer, set *trace.Set) {
	fmt.Fprintf(w, "zones: %d, samples/zone: %d, span: %.1f days, volatility class: %s\n",
		set.NumZones(), set.Series[0].Len(),
		float64(set.Duration())/86400, set.ClassifyVolatility())
	for _, s := range set.Series {
		sum := s.Summarize()
		fmt.Fprintf(w, "%-12s mean=%.3f var=%.4f min=%.2f max=%.2f median=%.2f changes=%d spikes>%.2f=%d\n",
			s.Zone, sum.Mean, sum.Variance, sum.Min, sum.Max, sum.Median, sum.Changes, sum.SpikeThreshold, sum.Spikes)
	}
}
