// Command pricefeedd serves a synthetic spot price history over HTTP in
// the AWS DescribeSpotPriceHistory document format, for driving the
// live scheduler (cmd/livesim) or any spotapi.Client consumer without
// cloud access. It shuts down gracefully on SIGINT/SIGTERM. With
// -trace-spans N requests are traced into a ring served at
// /debug/trace; -pprof mounts net/http/pprof under /debug/pprof/.
//
// Usage:
//
//	pricefeedd -addr :8080 -preset high -seed 7
//	curl 'http://localhost:8080/spot-price-history?start=2013-03-01T00:00:00Z'
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/httpx"
	"repro/internal/obs"
	"repro/internal/spotapi"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pricefeedd: ")

	addr := flag.String("addr", ":8080", "listen address")
	preset := flag.String("preset", "high", "trace preset: low, high, low-spike, year")
	seed := flag.Uint64("seed", 1, "generator seed")
	epochStr := flag.String("epoch", "2013-03-01T00:00:00Z", "wall-clock time of the first sample (RFC 3339)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	traceSpans := flag.Int("trace-spans", 0, "trace request spans into a ring of this size, served at /debug/trace (0: disabled)")
	flag.Parse()

	var set *trace.Set
	switch *preset {
	case "low":
		set = tracegen.LowVolatility(*seed)
	case "high":
		set = tracegen.HighVolatility(*seed)
	case "low-spike":
		set = tracegen.LowVolatilityWithMegaSpike(*seed)
	case "year":
		set = tracegen.Year(*seed)
	default:
		log.Fatalf("unknown preset %q", *preset)
	}
	epoch, err := time.Parse(time.RFC3339, *epochStr)
	if err != nil {
		log.Fatalf("bad -epoch: %v", err)
	}

	var tracer *obs.Tracer
	if *traceSpans > 0 {
		tracer = obs.NewTracer(*traceSpans)
	}
	mux := http.NewServeMux()
	mux.Handle("/", httpx.Wrap(spotapi.Handler(set, epoch), tracer))
	obs.Mount(mux, tracer, *pprofOn)

	srv := httpx.NewServer(*addr, mux)
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	log.Printf("serving %s preset (%d zones × %d samples) at http://%s/spot-price-history",
		*preset, set.NumZones(), set.Series[0].Len(), *addr)
	if err := httpx.ListenAndServe(ctx, srv, httpx.DefaultGrace); err != nil {
		log.Fatal(err)
	}
}
