// Command policytune searches the Adaptive strategy's hyperparameter
// space — bid grid, estimation window, headroom/churn thresholds,
// redundancy bound — against a replayed price trace, scoring each
// configuration with a weighted multi-objective fitness over cost,
// deadline margin and checkpoint waste. The search runs a deterministic
// grid stage (the paper default plus single-axis variations) followed
// by a seeded evolutionary stage, parallelized across the worker pool;
// with -state it checkpoints after every generation and a killed search
// resumes exactly where it stopped.
//
// The paper-default configuration is always evaluated, so the reported
// best is never worse than the §7 defaults on the chosen trace, and the
// whole search is reproducible for a fixed -tune-seed.
//
// Usage:
//
//	policytune -preset high -seed 31 -work 20 -slack 0.3
//	policytune -preset low-spike -generations 10 -state tuner.json
//	policytune -json -w-cost 1 -w-margin 0.05 -w-waste 0.1
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/decision"
	"repro/internal/market"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("policytune: ")

	preset := flag.String("preset", "high", "trace preset: low, high, low-spike")
	seed := flag.Uint64("seed", 31, "trace and run seed")
	workHours := flag.Float64("work", 20, "computation time C in hours")
	slack := flag.Float64("slack", 0.3, "slack fraction (deadline = work × (1+slack))")
	tuneSeed := flag.Uint64("tune-seed", 7, "evolutionary search seed")
	pop := flag.Int("population", 12, "offspring per generation")
	gens := flag.Int("generations", 6, "evolutionary generations")
	workers := flag.Int("workers", 0, "parallel evaluations (0: GOMAXPROCS)")
	state := flag.String("state", "", "checkpoint file: the search saves after every generation and resumes from it")
	wCost := flag.Float64("w-cost", 1, "fitness weight per dollar of cost")
	wMargin := flag.Float64("w-margin", 0.05, "fitness weight per hour of deadline margin")
	wWaste := flag.Float64("w-waste", 0.1, "fitness weight per hour of rework+overhead waste")
	asJSON := flag.Bool("json", false, "emit the search result as JSON")
	flag.Parse()

	var set *trace.Set
	switch *preset {
	case "low":
		set = tracegen.LowVolatility(*seed)
	case "high":
		set = tracegen.HighVolatility(*seed)
	case "low-spike":
		set = tracegen.LowVolatilityWithMegaSpike(*seed)
	default:
		log.Fatalf("unknown preset %q", *preset)
	}
	start := set.Start() + 5*24*trace.Hour
	work := int64(*workHours * float64(trace.Hour))
	deadline := int64(float64(work)*(1+*slack)) / trace.DefaultStep * trace.DefaultStep

	t := &decision.Tuner{
		Cfg: sim.Config{
			Trace:          set.Slice(start, start+deadline+2*trace.Hour),
			History:        set.Slice(start-2*24*trace.Hour, start),
			Work:           work,
			Deadline:       deadline,
			CheckpointCost: 300,
			RestartCost:    300,
			Delay:          market.DefaultDelay(),
			Seed:           *seed,
		},
		Weights:     decision.Weights{Cost: *wCost, Margin: *wMargin, Waste: *wWaste},
		Seed:        *tuneSeed,
		Workers:     *workers,
		Population:  *pop,
		Generations: *gens,
		StatePath:   *state,
		Log:         os.Stderr,
	}
	res, err := t.Search()
	if err != nil {
		log.Fatal(err)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("searched %d configurations over %d generations (%d decisions simulated)\n\n",
		res.Evaluated, res.Generations, res.Decisions)
	printEval("default (paper §7)", res.Default)
	fmt.Println()
	printEval("best found", res.Best)
	fmt.Printf("\nfitness improvement over default: %+.4f\n", res.Best.Fitness-res.Default.Fitness)
}

// printEval renders one evaluated configuration.
func printEval(label string, ev decision.Eval) {
	g := ev.Genome
	fmt.Printf("%s:\n", label)
	fmt.Printf("  bids $%.2f..$%.2f step $%.2f, window %dh, headroom %.3f, churn %.3f, zones<=%d\n",
		g.BidLo, g.BidHi, g.BidStep, g.WindowHours, g.Headroom, g.Churn, g.MaxZones)
	fmt.Printf("  fitness %.4f  cost $%.2f  margin %.2fh  waste %.2fh  deadline met: %v\n",
		ev.Fitness, ev.Cost, ev.MarginHours, ev.WasteHours, ev.Outcome.DeadlineMet)
}
