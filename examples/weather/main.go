// Weather: the paper's motivating scenario — "finish the weather
// prediction for tomorrow before the evening newscast at 7 pm". The
// forecast takes 20 hours of computation; how much the run costs
// depends almost entirely on how much slack the submission time leaves,
// because slack is what lets the scheduler ride out spot-market
// downtime instead of falling back to on-demand instances.
//
// The example submits the same job at several times of day (= slack
// values) on a volatile market and reports what the Adaptive scheduler
// does with each.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

func main() {
	log.SetFlags(0)

	market := tracegen.HighVolatility(7)
	const work = 20 * trace.Hour
	start := market.Start() + 4*24*trace.Hour

	fmt.Println("20-hour forecast, deadline 7 pm tomorrow; volatile spot market")
	fmt.Println()
	fmt.Printf("%-22s %-8s %-10s %-12s %-10s\n", "submitted", "slack", "cost", "on-demand?", "vs $48 OD")

	for _, tc := range []struct {
		label string
		slack float64
	}{
		{"6 pm (1 h slack)", 0.05},
		{"4 pm (3 h slack)", 0.15},
		{"9 am (10 h slack)", 0.50},
		{"midnight (17 h)", 0.85},
	} {
		deadline := int64(float64(work) * (1 + tc.slack))
		deadline = deadline / trace.DefaultStep * trace.DefaultStep
		cfg := sim.Config{
			Trace:          market.Slice(start, start+deadline+2*trace.Hour),
			History:        market.Slice(start-2*24*trace.Hour, start),
			Work:           work,
			Deadline:       deadline,
			CheckpointCost: 300,
			RestartCost:    300,
			Seed:           3,
		}
		res, err := sim.Run(cfg, core.NewAdaptive())
		if err != nil {
			log.Fatal(err)
		}
		if !res.DeadlineMet {
			log.Fatalf("deadline missed at slack %.0f%% — the guard is broken", tc.slack*100)
		}
		od := "no"
		if res.SwitchedOnDemand {
			od = "yes"
		}
		fmt.Printf("%-22s %-8s $%-9.2f %-12s %.1fx cheaper\n",
			tc.label,
			fmt.Sprintf("%.0f%%", tc.slack*100),
			res.Cost, od, 48.0/res.Cost)
	}

	fmt.Println()
	fmt.Println("More slack lets the scheduler wait out price spikes on the spot")
	fmt.Println("market; with almost none, the deadline guard buys on-demand time.")
}
