// Quickstart: generate a synthetic spot market, run one 20-hour HPC job
// under the Adaptive scheduler, and compare its cost against the
// on-demand baseline.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

func main() {
	log.SetFlags(0)

	// A month of three-zone spot price history (the "March 2013"
	// low-volatility calibration), sampled every 5 minutes.
	market := tracegen.LowVolatility(42)

	// The experiment: C = 20 h of computation, deadline D = 23 h
	// (15% slack), checkpoints and restarts cost 300 s each. The run
	// starts five days into the month; the preceding two days prime the
	// Markov model.
	start := market.Start() + 5*24*trace.Hour
	cfg := sim.Config{
		Trace:          market.Slice(start, start+25*trace.Hour),
		History:        market.Slice(start-2*24*trace.Hour, start),
		Work:           20 * trace.Hour,
		Deadline:       23 * trace.Hour,
		CheckpointCost: 300,
		RestartCost:    300,
		Seed:           1,
	}

	adaptive, err := sim.Run(cfg, core.NewAdaptive())
	if err != nil {
		log.Fatal(err)
	}
	onDemand, err := sim.Run(cfg, core.NewOnDemandOnly())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("adaptive:   $%6.2f  (policy %s, finished %.1f h before the deadline)\n",
		adaptive.Cost, adaptive.Policy,
		float64(start+cfg.Deadline-adaptive.FinishTime)/float64(trace.Hour))
	fmt.Printf("on-demand:  $%6.2f\n", onDemand.Cost)
	fmt.Printf("saving:     %.1fx cheaper, deadline met: %v\n",
		onDemand.Cost/adaptive.Cost, adaptive.DeadlineMet)
}
