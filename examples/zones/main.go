// Zones: the redundancy study behind §3 — per-zone versus combined
// availability at a bid (the Figure 2 view), and what each redundancy
// degree N costs for the same deadline-constrained job. It shows the
// paper's core trade: redundant zones multiply the hourly bill but
// union availability keeps the job off the expensive on-demand
// fallback.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

func main() {
	log.SetFlags(0)

	market := tracegen.HighVolatility(19)
	const bid = 0.81

	// Availability over a 15-hour window, Figure 2 style.
	start := market.Start() + 6*24*trace.Hour
	win := market.Slice(start, start+15*trace.Hour)
	fmt.Printf("availability at bid $%.2f over 15 h ('#' = up):\n\n", bid)
	printBar("combined", win.CombinedUpIntervals(bid), win.Start(), win.End(), win.CombinedUpFraction(bid))
	for _, s := range win.Series {
		printBar(s.Zone, s.UpIntervals(bid), win.Start(), win.End(), s.UpFraction(bid))
	}

	// Cost vs redundancy degree for a 20 h job with 15% slack.
	fmt.Printf("\n20 h job, deadline 23 h, markov-daly at bid $%.2f:\n\n", bid)
	fmt.Printf("%-4s %-10s %-12s %-10s %-8s\n", "N", "cost", "on-demand?", "restarts", "kills")
	for n := 1; n <= 3; n++ {
		zones := make([]int, n)
		for i := range zones {
			zones[i] = i
		}
		cfg := sim.Config{
			Trace:          market.Slice(start, start+25*trace.Hour),
			History:        market.Slice(start-2*24*trace.Hour, start),
			Work:           20 * trace.Hour,
			Deadline:       23 * trace.Hour,
			CheckpointCost: 300,
			RestartCost:    300,
			Seed:           5,
		}
		res, err := sim.Run(cfg, core.Redundant(core.NewMarkovDaly(), bid, zones))
		if err != nil {
			log.Fatal(err)
		}
		od := "no"
		if res.SwitchedOnDemand {
			od = "yes"
		}
		fmt.Printf("%-4d $%-9.2f %-12s %-10d %-8d\n", n, res.Cost, od, res.Restarts, res.ProviderKills)
	}
	fmt.Println("\n(the paper's §6: under volatility and tight deadlines, paying for")
	fmt.Println("redundant zones is cheaper than falling back to $2.40/h on-demand)")
}

func printBar(label string, ivs []trace.Interval, start, end int64, frac float64) {
	const width = 60
	span := end - start
	bar := []rune(strings.Repeat(".", width))
	for _, iv := range ivs {
		lo := int((iv.Start - start) * int64(width) / span)
		hi := int((iv.End - start) * int64(width) / span)
		if hi > width {
			hi = width
		}
		for i := lo; i < hi; i++ {
			bar[i] = '#'
		}
	}
	fmt.Printf("%-12s %s %5.1f%%\n", label, string(bar), 100*frac)
}
