// Bidding: sweep the bid price across the paper's grid for single-zone
// Periodic and Markov-Daly on a volatile market, exposing the
// cost-versus-bid landscape behind Table 2/3's "sweet spot" bids:
// too low and the instance is never granted (pure on-demand cost), too
// high and spike hours are paid at their full hour-start price.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

func main() {
	log.SetFlags(0)

	market := tracegen.HighVolatility(11)
	const work = 20 * trace.Hour
	const deadline = 30 * trace.Hour // 50% slack

	policies := map[string]func() sim.CheckpointPolicy{
		"periodic":    func() sim.CheckpointPolicy { return core.NewPeriodic() },
		"markov-daly": func() sim.CheckpointPolicy { return core.NewMarkovDaly() },
	}

	fmt.Println("median cost over 8 windows vs bid (single zone, volatile market, 50% slack)")
	fmt.Println()
	fmt.Printf("%6s  %-12s %-12s\n", "bid", "periodic", "markov-daly")

	for _, bid := range core.BidGrid() {
		medians := map[string]float64{}
		for name, newPolicy := range policies {
			var costs []float64
			for day := 3; day <= 24; day += 3 {
				start := market.Start() + int64(day)*24*trace.Hour
				cfg := sim.Config{
					Trace:          market.Slice(start, start+deadline+2*trace.Hour),
					History:        market.Slice(start-2*24*trace.Hour, start),
					Work:           work,
					Deadline:       deadline,
					CheckpointCost: 300,
					RestartCost:    300,
					Seed:           uint64(day),
				}
				res, err := sim.Run(cfg, core.SingleZone(newPolicy(), bid, 0))
				if err != nil {
					log.Fatal(err)
				}
				costs = append(costs, res.Cost)
			}
			medians[name] = stats.Quantile(costs, 0.5)
		}
		bar := strings.Repeat("#", int(medians["markov-daly"]/1.2))
		fmt.Printf("%6.2f  $%-11.2f $%-11.2f %s\n", bid, medians["periodic"], medians["markov-daly"], bar)
	}
	fmt.Println()
	fmt.Println("(bars: markov-daly median; $48.00 would be the pure on-demand cost)")
}
