// Analysis: the run-once/re-analyse-many workflow. A parameter sweep is
// executed once and archived as JSON (internal/replay); the archive is
// then reloaded and interrogated — boxplots per configuration and a
// Mann-Whitney significance test of the redundancy advantage — without
// re-running a single simulation.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)

	// Phase 1: run a small sweep and archive it, as `sweep -format
	// json` would.
	s := experiment.NewQuickSuite(1, 10)
	archive := &replay.Archive{Meta: map[string]string{"regime": "high", "slack": "15%"}}
	const slack, tc, bid = 0.15, 300, 0.81
	for _, n := range []int{1, 3} {
		zones := make([]int, n)
		for i := range zones {
			zones[i] = i
		}
		for _, w := range s.ExperimentWindows(experiment.RegimeHigh, slack) {
			strat := core.NewStatic("markov-daly", sim.RunSpec{
				Bid: bid, Zones: zones, Policy: core.NewMarkovDaly(),
			})
			res, err := sim.Run(s.Config(w, slack, tc), strat)
			if err != nil {
				log.Fatal(err)
			}
			archive.Add(replay.FromResult(res, experiment.RegimeHigh, slack, tc, bid, n, w.Index))
		}
	}

	// The archive round-trips through its serialised form.
	var buf bytes.Buffer
	if err := archive.Write(&buf); err != nil {
		log.Fatal(err)
	}
	archivedBytes := buf.Len()
	loaded, err := replay.Read(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("archived %d runs (%d bytes of JSON)\n\n", len(loaded.Records), archivedBytes)

	// Phase 2: analyse without re-simulating.
	single := loaded.Costs(func(r replay.Record) bool { return r.N == 1 })
	redundant := loaded.Costs(func(r replay.Record) bool { return r.N == 3 })
	bs, br := stats.NewBox(single), stats.NewBox(redundant)
	fmt.Printf("single zone (N=1):  median $%.2f  [%.2f .. %.2f]\n", bs.Median, bs.Min, bs.Max)
	fmt.Printf("redundant  (N=3):   median $%.2f  [%.2f .. %.2f]\n", br.Median, br.Min, br.Max)

	mw := stats.MannWhitney(redundant, single)
	fmt.Printf("\nMann-Whitney: P(redundant > single) = %.2f, p-value = %.4f\n", mw.EffectSize, mw.P)
	if mw.P < 0.05 && mw.EffectSize < 0.5 {
		fmt.Println("→ the redundancy advantage on this volatile market is statistically significant")
	} else {
		fmt.Println("→ no significant difference on this sample")
	}
	met, missed := loaded.Deadlines(func(replay.Record) bool { return true })
	fmt.Printf("deadlines: %d met, %d missed (the guard guarantees 0 misses)\n", met, missed)
}
