// Live: drive the deployable scheduler against a streaming price feed.
// The same Algorithm 1 state machine that the paper's evaluation ran
// offline consumes one 5-minute price sample at a time and emits every
// externally visible action — spot requests, terminations, checkpoints,
// and the deadline-guard migration — exactly as a production controller
// wired to cloud APIs would.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/livesched"
	"repro/internal/market"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

func main() {
	log.SetFlags(0)

	set := tracegen.HighVolatility(3)
	start := set.Start() + 5*24*trace.Hour

	// Rebase the window so the feed starts at time zero, as a live
	// subscription would.
	rebase := func(s *trace.Set) *trace.Set {
		out := s.Clone()
		for _, series := range out.Series {
			series.Epoch -= start
		}
		return out
	}
	history := rebase(set.Slice(start-2*24*trace.Hour, start))
	feedData := rebase(set.Slice(start, start+12*trace.Hour))

	sched, err := livesched.New(livesched.Config{
		Work:           8 * trace.Hour,
		Deadline:       11 * trace.Hour,
		CheckpointCost: 300,
		RestartCost:    300,
		History:        history,
		Delay:          market.DefaultDelay(),
		Seed:           1,
	},
		core.Redundant(core.NewMarkovDaly(), 0.81, []int{0, 1, 2}),
		&livesched.TraceFeed{Set: feedData}, // Interval: 300*time.Millisecond for 1000× replay
		livesched.LogActuator{W: os.Stdout},
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sched.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndone: $%.2f (spot $%.2f, on-demand $%.2f), %d checkpoints, %d kills, deadline met: %v\n",
		res.Cost, res.SpotCost, res.OnDemandCost, res.Checkpoints, res.ProviderKills, res.DeadlineMet)
}
