package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/stats"
)

// SVG boxplot rendering: a self-contained, dependency-free generator of
// publication-style panels matching the paper's figure layout — one box
// per labelled sample, reference lines for the on-demand and minimum
// spot costs.

// SVGPanel describes one boxplot figure.
type SVGPanel struct {
	// Title is drawn across the top.
	Title string
	// Labels and Boxes pair one x-axis entry per boxplot.
	Labels []string
	Boxes  []stats.Box
	// RefLines are horizontal reference values with labels (e.g. the
	// $48 on-demand line).
	RefLines map[string]float64
	// YLabel captions the y axis (default "Cost per Instance ($)").
	YLabel string
}

// geometry constants (pixels).
const (
	svgW       = 640
	svgH       = 420
	svgMarginL = 70
	svgMarginR = 20
	svgMarginT = 40
	svgMarginB = 70
)

// WriteSVG renders the panel as an SVG document.
func WriteSVG(w io.Writer, p SVGPanel) error {
	if len(p.Labels) != len(p.Boxes) {
		return fmt.Errorf("report: %d labels for %d boxes", len(p.Labels), len(p.Boxes))
	}
	if len(p.Boxes) == 0 {
		return fmt.Errorf("report: empty panel")
	}
	yLabel := p.YLabel
	if yLabel == "" {
		yLabel = "Cost per Instance ($)"
	}

	// Scale: 0 .. max(box max, refs) × 1.05.
	top := 0.0
	for _, b := range p.Boxes {
		if b.N > 0 && !math.IsNaN(b.Max) && b.Max > top {
			top = b.Max
		}
	}
	for _, v := range p.RefLines {
		if v > top {
			top = v
		}
	}
	if top <= 0 {
		top = 1
	}
	top *= 1.05
	plotW := float64(svgW - svgMarginL - svgMarginR)
	plotH := float64(svgH - svgMarginT - svgMarginB)
	y := func(v float64) float64 { return float64(svgMarginT) + plotH*(1-v/top) }

	var sb strings.Builder
	sb.WriteString(`<?xml version="1.0" encoding="UTF-8"?>` + "\n")
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", svgW, svgH, svgW, svgH)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&sb, `<text x="%d" y="24" font-family="sans-serif" font-size="14" font-weight="bold">%s</text>`+"\n", svgMarginL, escape(p.Title))

	// Axes.
	fmt.Fprintf(&sb, `<line x1="%d" y1="%g" x2="%d" y2="%g" stroke="black"/>`+"\n",
		svgMarginL, y(0), svgW-svgMarginR, y(0))
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%g" stroke="black"/>`+"\n",
		svgMarginL, svgMarginT, svgMarginL, y(0))
	fmt.Fprintf(&sb, `<text x="16" y="%g" font-family="sans-serif" font-size="11" transform="rotate(-90 16 %g)">%s</text>`+"\n",
		float64(svgMarginT)+plotH/2, float64(svgMarginT)+plotH/2, escape(yLabel))

	// Y ticks: five evenly spaced values.
	for i := 0; i <= 5; i++ {
		v := top * float64(i) / 5
		fmt.Fprintf(&sb, `<line x1="%d" y1="%g" x2="%d" y2="%g" stroke="#ddd"/>`+"\n",
			svgMarginL, y(v), svgW-svgMarginR, y(v))
		fmt.Fprintf(&sb, `<text x="%d" y="%g" font-family="sans-serif" font-size="10" text-anchor="end">%.0f</text>`+"\n",
			svgMarginL-6, y(v)+3, v)
	}

	// Reference lines.
	for label, v := range p.RefLines {
		fmt.Fprintf(&sb, `<line x1="%d" y1="%g" x2="%d" y2="%g" stroke="#888" stroke-dasharray="6,3"/>`+"\n",
			svgMarginL, y(v), svgW-svgMarginR, y(v))
		fmt.Fprintf(&sb, `<text x="%d" y="%g" font-family="sans-serif" font-size="10" fill="#555" text-anchor="end">%s</text>`+"\n",
			svgW-svgMarginR, y(v)-4, escape(label))
	}

	// Boxes.
	slot := plotW / float64(len(p.Boxes))
	boxW := slot * 0.5
	for i, b := range p.Boxes {
		cx := float64(svgMarginL) + slot*(float64(i)+0.5)
		if b.N > 0 && !math.IsNaN(b.Median) {
			// Whiskers.
			fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", cx, y(b.Min), cx, y(b.Q1))
			fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", cx, y(b.Q3), cx, y(b.Max))
			fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", cx-boxW/4, y(b.Min), cx+boxW/4, y(b.Min))
			fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", cx-boxW/4, y(b.Max), cx+boxW/4, y(b.Max))
			// Box.
			fmt.Fprintf(&sb, `<rect x="%g" y="%g" width="%g" height="%g" fill="#c6dbef" stroke="black"/>`+"\n",
				cx-boxW/2, y(b.Q3), boxW, math.Max(1, y(b.Q1)-y(b.Q3)))
			// Median.
			fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black" stroke-width="2"/>`+"\n",
				cx-boxW/2, y(b.Median), cx+boxW/2, y(b.Median))
		}
		// X label, slanted for readability.
		fmt.Fprintf(&sb, `<text x="%g" y="%g" font-family="sans-serif" font-size="10" text-anchor="end" transform="rotate(-35 %g %g)">%s</text>`+"\n",
			cx, y(0)+14, cx, y(0)+14, escape(p.Labels[i]))
	}

	sb.WriteString("</svg>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// escape sanitises text for SVG embedding.
func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
