// Package report renders experiment results as aligned text tables,
// ASCII boxplots and CSV, mirroring the shape of the paper's figures in
// a terminal.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/stats"
)

// Table writes rows under headers with aligned columns.
func Table(w io.Writer, headers []string, rows [][]string) error {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteString("\n")
		_, err := io.WriteString(w, b.String())
		return err
	}
	if err := line(headers); err != nil {
		return err
	}
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// BoxCells formats a boxplot as table cells: n, min, q1, median, q3, max.
func BoxCells(b stats.Box) []string {
	f := func(v float64) string {
		if math.IsNaN(v) {
			return "-"
		}
		return fmt.Sprintf("%.2f", v)
	}
	return []string{
		fmt.Sprintf("%d", b.N), f(b.Min), f(b.Q1), f(b.Median), f(b.Q3), f(b.Max),
	}
}

// BoxHeaders returns the headers matching BoxCells.
func BoxHeaders() []string { return []string{"n", "min", "q1", "median", "q3", "max"} }

// AsciiBox draws a horizontal box-and-whisker over [lo, hi] in width
// runes: whiskers as '-', the box as '=', the median as 'M'.
func AsciiBox(b stats.Box, lo, hi float64, width int) string {
	if width < 10 {
		width = 10
	}
	if b.N == 0 || math.IsNaN(b.Median) || hi <= lo {
		return strings.Repeat(" ", width)
	}
	pos := func(v float64) int {
		p := int(math.Round((v - lo) / (hi - lo) * float64(width-1)))
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}
	out := []rune(strings.Repeat(" ", width))
	for i := pos(b.Min); i <= pos(b.Max); i++ {
		out[i] = '-'
	}
	for i := pos(b.Q1); i <= pos(b.Q3); i++ {
		out[i] = '='
	}
	out[pos(b.Median)] = 'M'
	return string(out)
}

// Gauge renders a reference marker line (e.g. the $48 on-demand line)
// aligned with AsciiBox output.
func Gauge(value, lo, hi float64, width int, mark rune) string {
	if width < 10 {
		width = 10
	}
	out := []rune(strings.Repeat(" ", width))
	if hi > lo {
		p := int(math.Round((value - lo) / (hi - lo) * float64(width-1)))
		if p >= 0 && p < width {
			out[p] = mark
		}
	}
	return string(out)
}

// WriteCSV emits one header row and the given rows as RFC 4180 CSV.
// Cells are quoted only when needed, so the output of numeric tables is
// byte-stable across runs — which is what the golden regret-report
// fixtures rely on.
func WriteCSV(w io.Writer, headers []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(headers); err != nil {
		return err
	}
	for _, row := range rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteBoxesCSV emits labelled boxplots as CSV rows
// "label,n,min,q1,median,q3,max,mean".
func WriteBoxesCSV(w io.Writer, labels []string, boxes []stats.Box) error {
	if _, err := io.WriteString(w, "label,n,min,q1,median,q3,max,mean\n"); err != nil {
		return err
	}
	for i, b := range boxes {
		_, err := fmt.Fprintf(w, "%s,%d,%g,%g,%g,%g,%g,%g\n",
			labels[i], b.N, b.Min, b.Q1, b.Median, b.Q3, b.Max, b.Mean)
		if err != nil {
			return err
		}
	}
	return nil
}
