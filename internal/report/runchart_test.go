package report

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/experiment"
	"repro/internal/sim"
)

func TestRunChartFig1(t *testing.T) {
	s := experiment.NewQuickSuite(1, 3)
	ill, err := s.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RunChart(&buf, ill.Cfg, ill.Res, ill.Bid, 76); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"price", "state", "progress", "legend", "^", "#", "C"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	// The Figure 1 story: two kills, at least one committed checkpoint,
	// one restart from it.
	if ill.Res.ProviderKills != 2 {
		t.Fatalf("kills = %d, want 2", ill.Res.ProviderKills)
	}
	if ill.Res.Checkpoints == 0 || ill.Res.Restarts == 0 {
		t.Fatalf("checkpoints=%d restarts=%d", ill.Res.Checkpoints, ill.Res.Restarts)
	}
	if !ill.Res.DeadlineMet {
		t.Fatal("illustration missed its deadline")
	}
}

func TestRunChartFig3(t *testing.T) {
	s := experiment.NewQuickSuite(1, 3)
	ill, err := s.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RunChart(&buf, ill.Cfg, ill.Res, ill.Bid, 76); err != nil {
		t.Fatal(err)
	}
	// Edge checkpoints on the two rising edges below the bid.
	if ill.Res.Checkpoints != 2 {
		t.Fatalf("edge checkpoints = %d, want 2", ill.Res.Checkpoints)
	}
	if ill.Res.ProviderKills != 1 {
		t.Fatalf("kills = %d, want 1", ill.Res.ProviderKills)
	}
	// Progress survives the kill: the ramp must show non-zero committed
	// progress before the restart.
	if !strings.Contains(buf.String(), "4") {
		t.Fatalf("progress ramp missing committed deciles:\n%s", buf.String())
	}
}

func TestRunChartNeedsTimeline(t *testing.T) {
	var buf bytes.Buffer
	err := RunChart(&buf, sim.Config{}, &sim.Result{}, 0.8, 76)
	if err == nil {
		t.Fatal("accepted a result without a timeline")
	}
}
