package report

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"

	"repro/internal/stats"
)

func samplePanel() SVGPanel {
	return SVGPanel{
		Title:  "Figure 4 — high volatility, slack 15%",
		Labels: []string{"periodic@0.81", "redundancy@0.81"},
		Boxes: []stats.Box{
			stats.NewBox([]float64{40, 42, 44, 46, 48}),
			stats.NewBox([]float64{15, 17, 20, 26, 37}),
		},
		RefLines: map[string]float64{"on-demand $48": 48, "min spot $5.40": 5.4},
	}
}

func TestWriteSVGWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSVG(&buf, samplePanel()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// The document must be well-formed XML.
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("malformed SVG: %v", err)
		}
	}
	for _, want := range []string{"<svg", "rect", "Figure 4", "on-demand $48", "periodic@0.81"} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
}

func TestWriteSVGErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSVG(&buf, SVGPanel{Labels: []string{"a"}, Boxes: nil}); err == nil {
		t.Fatal("accepted mismatched labels/boxes")
	}
	if err := WriteSVG(&buf, SVGPanel{}); err == nil {
		t.Fatal("accepted an empty panel")
	}
}

func TestWriteSVGHandlesEmptyBox(t *testing.T) {
	p := SVGPanel{
		Title:  "empty box",
		Labels: []string{"none"},
		Boxes:  []stats.Box{stats.NewBox(nil)},
	}
	var buf bytes.Buffer
	if err := WriteSVG(&buf, p); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "none") {
		t.Fatal("label missing for empty box")
	}
}

func TestEscape(t *testing.T) {
	if got := escape(`a<b>&"c"`); got != "a&lt;b&gt;&amp;&quot;c&quot;" {
		t.Fatalf("escape = %q", got)
	}
}
