package report

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/sim"
	"repro/internal/trace"
)

// RunChart renders a recorded run as the paper's Figure 1/3 view: per
// zone, the spot price relative to the bid and the instance state over
// time (running, checkpointing, restarting, down), plus the committed
// progress bar P at the bottom. It requires a result produced with
// Config.RecordTimeline set.
//
// Row legend:
//
//	price  '.' ≤ bid, '^' > bid
//	state  '#' running, 'C' checkpointing, 'R' restarting/queued,
//	       'W' waiting, ' ' down
//	P      committed-progress deciles ('.' none, '0'-'9', '#' done)
func RunChart(w io.Writer, cfg sim.Config, res *sim.Result, bid float64, width int) error {
	if len(res.Timeline) == 0 {
		return fmt.Errorf("report: run chart needs a recorded timeline")
	}
	if width < 20 {
		width = 72
	}
	start := cfg.Trace.Start()
	end := res.FinishTime
	if end <= start {
		end = cfg.Trace.End()
	}
	span := end - start

	fmt.Fprintf(w, "run chart — %s (%s), %.0f h span, bid $%.2f\n",
		res.Strategy, res.Policy, float64(span)/float64(trace.Hour), bid)
	// Zones involved in the run (those with any timeline event).
	zones := map[int]bool{}
	for _, ev := range res.Timeline {
		if ev.Zone >= 0 {
			zones[ev.Zone] = true
		}
	}
	var zoneIdx []int
	for zi := range zones {
		zoneIdx = append(zoneIdx, zi)
	}
	sort.Ints(zoneIdx)

	for _, zi := range zoneIdx {
		series := cfg.Trace.Series[zi]
		price := make([]rune, width)
		for c := 0; c < width; c++ {
			at := start + int64(c)*span/int64(width)
			if series.PriceAt(at) > bid {
				price[c] = '^'
			} else {
				price[c] = '.'
			}
		}
		state := buildStateRow(res.Timeline, zi, start, span, width)
		fmt.Fprintf(w, "%-12s price %s\n", series.Zone, string(price))
		fmt.Fprintf(w, "%-12s state %s\n", "", state)
	}

	// Committed progress as a decile ramp: at each time column the digit
	// is the committed fraction of the total work (checkpoint commits
	// carry their P value in the event detail); '#' marks completion.
	progress := make([]rune, width)
	type commit struct {
		at int64
		p  int64
	}
	var commits []commit
	for _, ev := range res.Timeline {
		switch ev.Kind {
		case sim.TLCheckpointDone:
			if p, err := strconv.ParseInt(ev.Detail, 10, 64); err == nil {
				commits = append(commits, commit{at: ev.Time, p: p})
			}
		case sim.TLComplete:
			commits = append(commits, commit{at: ev.Time, p: cfg.Work})
		}
	}
	for c := 0; c < width; c++ {
		at := start + int64(c+1)*span/int64(width)
		var committed int64
		for _, cm := range commits {
			if cm.at <= at {
				committed = cm.p
			}
		}
		switch {
		case committed >= cfg.Work:
			progress[c] = '#'
		case committed == 0:
			progress[c] = '.'
		default:
			progress[c] = rune('0' + committed*10/cfg.Work)
		}
	}
	fmt.Fprintf(w, "%-12s P     %s\n", "progress", string(progress))

	fmt.Fprintf(w, "legend: price '.'<=bid '^'>bid | state '#'run 'C'ckpt 'R'restart 'W'wait | P committed deciles, '#' done\n")
	fmt.Fprintf(w, "events: %d checkpoints (%d aborted), %d kills, %d restarts, on-demand: %v, cost $%.2f\n",
		res.Checkpoints, res.AbortedCheckpoints, res.ProviderKills, res.Restarts, res.SwitchedOnDemand, res.Cost)
	return nil
}

// buildStateRow paints one zone's instance state across the width.
func buildStateRow(events []sim.TimelineEvent, zone int, start, span int64, width int) string {
	row := []rune(strings.Repeat(" ", width))
	col := func(t int64) int {
		c := int((t - start) * int64(width) / span)
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	cur := ' '
	lastCol := 0
	paint := func(upTo int) {
		for c := lastCol; c < upTo && c < width; c++ {
			row[c] = cur
		}
	}
	for _, ev := range events {
		if ev.Zone != zone {
			continue
		}
		c := col(ev.Time)
		paint(c)
		lastCol = c
		switch ev.Kind {
		case sim.TLZoneUp:
			cur = '#'
		case sim.TLZonePending:
			cur = 'R'
		case sim.TLZoneWaiting:
			cur = 'W'
		case sim.TLZoneDown:
			cur = ' '
		case sim.TLCheckpointStart:
			cur = 'C'
		case sim.TLCheckpointDone, sim.TLCheckpointAborted:
			cur = '#'
		}
	}
	paint(width)
	return string(row)
}
