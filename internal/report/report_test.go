package report

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/experiment"
	"repro/internal/stats"
	"repro/internal/trace"
)

func TestTableAlignment(t *testing.T) {
	var buf bytes.Buffer
	err := Table(&buf, []string{"a", "long-header"}, [][]string{
		{"x", "1"},
		{"longer-cell", "2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	// All data rows start their second column at the same offset.
	off := strings.Index(lines[2], "1")
	if strings.Index(lines[3], "2") != off {
		t.Fatalf("misaligned:\n%s", buf.String())
	}
}

func TestBoxCells(t *testing.T) {
	b := stats.NewBox([]float64{1, 2, 3, 4, 5})
	cells := BoxCells(b)
	if len(cells) != len(BoxHeaders()) {
		t.Fatalf("cells = %v", cells)
	}
	if cells[0] != "5" || cells[3] != "3.00" {
		t.Fatalf("cells = %v", cells)
	}
	empty := BoxCells(stats.NewBox(nil))
	if empty[1] != "-" {
		t.Fatalf("empty cells = %v", empty)
	}
}

func TestAsciiBox(t *testing.T) {
	b := stats.NewBox([]float64{10, 20, 30, 40, 50})
	s := AsciiBox(b, 0, 100, 40)
	if len([]rune(s)) != 40 {
		t.Fatalf("width = %d", len(s))
	}
	if !strings.Contains(s, "M") || !strings.Contains(s, "=") || !strings.Contains(s, "-") {
		t.Fatalf("box = %q", s)
	}
	// Median lands near 30% of the width.
	if i := strings.IndexRune(s, 'M'); i < 8 || i > 16 {
		t.Fatalf("median at %d in %q", i, s)
	}
	if got := AsciiBox(stats.NewBox(nil), 0, 1, 20); strings.TrimSpace(got) != "" {
		t.Fatalf("empty box = %q", got)
	}
	if got := AsciiBox(b, 5, 5, 20); strings.TrimSpace(got) != "" {
		t.Fatalf("degenerate scale = %q", got)
	}
}

func TestGauge(t *testing.T) {
	g := Gauge(50, 0, 100, 40, '|')
	if i := strings.IndexRune(g, '|'); i < 16 || i > 24 {
		t.Fatalf("gauge at %d", i)
	}
	if g := Gauge(500, 0, 100, 40, '|'); strings.ContainsRune(g, '|') {
		t.Fatal("out-of-range gauge drawn")
	}
}

func TestWriteBoxesCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteBoxesCSV(&buf, []string{"a"}, []stats.Box{stats.NewBox([]float64{1, 2, 3})})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "label,n,min,q1,median,q3,max,mean\n") || !strings.Contains(out, "a,3,1,") {
		t.Fatalf("csv = %q", out)
	}
}

func TestFigureRenderers(t *testing.T) {
	s := experiment.NewQuickSuite(1, 3)

	var buf bytes.Buffer
	f2, err := s.Fig2(experiment.RegimeHigh, 5*24*trace.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := Fig2(&buf, f2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "combined") {
		t.Fatalf("fig2 output: %q", buf.String())
	}

	buf.Reset()
	f4, err := s.Fig4(experiment.RegimeLow, 0.15, 300, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Fig4(&buf, f4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "redundancy*") || !strings.Contains(buf.String(), "on-demand $48.00") {
		t.Fatalf("fig4 output: %q", buf.String())
	}

	buf.Reset()
	rows, err := s.Table(300)
	if err != nil {
		t.Fatal(err)
	}
	if err := BestPolicyTable(&buf, 300, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "best policy") {
		t.Fatalf("table output: %q", buf.String())
	}

	buf.Reset()
	f5, err := s.Fig5(experiment.RegimeLow, 0.15, 300)
	if err != nil {
		t.Fatal(err)
	}
	if err := Fig5(&buf, f5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "adaptive") {
		t.Fatalf("fig5 output: %q", buf.String())
	}

	buf.Reset()
	f6, err := s.Fig6(experiment.RegimeLowSpike, 0.15, 300)
	if err != nil {
		t.Fatal(err)
	}
	if err := Fig6(&buf, f6); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "large-bid L=Naive") {
		t.Fatalf("fig6 output: %q", buf.String())
	}

	buf.Reset()
	v, err := s.VarAnalysis(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := Var(&buf, v); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "self/cross ratio") {
		t.Fatalf("var output: %q", buf.String())
	}

	buf.Reset()
	h := &experiment.Headline{
		AdaptiveVsOnDemand: 5, AdaptiveVsOnDemandCell: "low/15%/300s",
		AdaptiveVsBestSingle: 0.3, AdaptiveVsBestSingleCell: "high/15%/900s",
		RedundancyVsPeriodic:      0.2,
		AdaptiveWorstOverOnDemand: 1.1, AdaptiveWorstOverOnDemandCell: "high/15%/900s",
	}
	if err := HeadlineReport(&buf, h); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "23.9% cheaper") {
		t.Fatalf("headline output: %q", buf.String())
	}
}

func TestScaleHi(t *testing.T) {
	b := stats.NewBox([]float64{10, 100})
	if hi := scaleHi([]float64{48}, b); hi < 100 {
		t.Fatalf("scaleHi = %g", hi)
	}
	nan := stats.NewBox(nil)
	if hi := scaleHi([]float64{48}, nan); math.IsNaN(hi) || hi < 48 {
		t.Fatalf("scaleHi with empty box = %g", hi)
	}
}
