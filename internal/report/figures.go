package report

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/experiment"
	"repro/internal/stats"
	"repro/internal/trace"
)

// scaleHi returns a plot upper bound covering all boxes and references.
func scaleHi(refs []float64, boxes ...stats.Box) float64 {
	hi := 0.0
	for _, r := range refs {
		if r > hi {
			hi = r
		}
	}
	for _, b := range boxes {
		if b.N > 0 && !math.IsNaN(b.Max) && b.Max > hi {
			hi = b.Max
		}
	}
	return hi * 1.05
}

// Fig2 renders the availability bars of Figure 2.
func Fig2(w io.Writer, r *experiment.Fig2Result) error {
	const width = 72
	span := r.End - r.Start
	fmt.Fprintf(w, "Figure 2 — zone availability over %d h at bid $%.2f\n", span/trace.Hour, r.Bid)
	bar := func(intervals []trace.Interval) string {
		out := make([]rune, width)
		for i := range out {
			out[i] = '.'
		}
		for _, iv := range intervals {
			lo := int((iv.Start - r.Start) * int64(width) / span)
			hi := int((iv.End - r.Start) * int64(width) / span)
			if hi > width {
				hi = width
			}
			for i := lo; i < hi; i++ {
				out[i] = '#'
			}
		}
		return string(out)
	}
	fmt.Fprintf(w, "%-12s %s %5.1f%%\n", "combined", bar(r.Combined), 100*r.CombinedUpFraction)
	zones := make([]string, 0, len(r.ZoneIntervals))
	for z := range r.ZoneIntervals {
		zones = append(zones, z)
	}
	sort.Strings(zones)
	for _, z := range zones {
		fmt.Fprintf(w, "%-12s %s %5.1f%%\n", z, bar(r.ZoneIntervals[z]), 100*r.ZoneUpFraction[z])
	}
	return nil
}

// Var renders the §3.1 dependence analysis.
func Var(w io.Writer, r *experiment.VarResult) error {
	fmt.Fprintf(w, "§3.1 — vector auto-regression (AIC-selected lag %d over %d observations)\n", r.Lag, r.Obs)
	fmt.Fprintf(w, "mean |same-zone| coefficient:  %.4f\n", r.Dependence.SelfMean)
	fmt.Fprintf(w, "mean |cross-zone| coefficient: %.4f\n", r.Dependence.CrossMean)
	fmt.Fprintf(w, "self/cross ratio:              %.1fx (paper: 1-2 orders of magnitude)\n", r.Dependence.Ratio)
	if len(r.Granger) > 0 {
		fmt.Fprintf(w, "Granger causality:             %d/%d cross-zone links significant at α=0.05\n",
			r.SignificantCross, len(r.Granger))
		fmt.Fprintf(w, "                               (the paper: cross-zone dependencies carry some\n")
		fmt.Fprintf(w, "                               statistical significance despite their small effects)\n")
	}
	return nil
}

// Fig4 renders one Figure 4 panel.
func Fig4(w io.Writer, c *experiment.Fig4Cell) error {
	fmt.Fprintf(w, "Figure 4 — %s volatility, slack %.0f%%, t_c=%ds (cost per instance, $)\n",
		c.Regime, c.Slack*100, c.Tc)
	const width = 44
	var all []stats.Box
	for _, kind := range experiment.SinglePolicies {
		for _, bid := range c.Bids {
			all = append(all, c.Singles[kind][bid])
		}
	}
	for _, bid := range c.Bids {
		all = append(all, c.BestRedundant[bid])
	}
	hi := scaleHi([]float64{c.OnDemandRef}, all...)

	var rows [][]string
	add := func(label string, bid float64, b stats.Box) {
		cells := append([]string{label, fmt.Sprintf("%.2f", bid)}, BoxCells(b)...)
		cells = append(cells, AsciiBox(b, 0, hi, width))
		rows = append(rows, cells)
	}
	for _, kind := range experiment.SinglePolicies {
		for _, bid := range c.Bids {
			add(kind, bid, c.Singles[kind][bid])
		}
	}
	for _, bid := range c.Bids {
		add("redundancy*", bid, c.BestRedundant[bid])
	}
	headers := append([]string{"policy", "bid"}, BoxHeaders()...)
	headers = append(headers, fmt.Sprintf("0 .. $%.0f", hi))
	if err := Table(w, headers, rows); err != nil {
		return err
	}
	fmt.Fprintf(w, "references: on-demand $%.2f [%s]  min-spot $%.2f\n",
		c.OnDemandRef, Gauge(c.OnDemandRef, 0, hi, width, '|'), c.MinSpotRef)
	mw := c.RedundancySignificance
	fmt.Fprintf(w, "redundancy vs best single @ $0.81: Mann-Whitney p=%.4f, P(redundant < single)=%.2f\n\n",
		mw.P, 1-mw.EffectSize)
	return nil
}

// BestPolicyTable renders Table 2 or Table 3.
func BestPolicyTable(w io.Writer, tc int64, rows []experiment.BestPolicy) error {
	fmt.Fprintf(w, "Table (t_c = %d s) — optimal policy per cell\n", tc)
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Regime,
			fmt.Sprintf("%.0f%%", r.Slack*100),
			fmt.Sprintf("%s (bid=$%.2f)", r.Policy, r.Bid),
			fmt.Sprintf("%.2f", r.Median),
			fmt.Sprintf("%s (%.2f)", r.RunnerUp, r.RunnerUpMedian),
		})
	}
	return Table(w, []string{"volatility", "slack", "best policy", "median $", "runner-up"}, out)
}

// Fig5 renders one Figure 5 panel.
func Fig5(w io.Writer, c *experiment.Fig5Cell) error {
	fmt.Fprintf(w, "Figure 5 — %s volatility, slack %.0f%%, t_c=%ds at B=$%.2f (cost per instance, $)\n",
		c.Regime, c.Slack*100, c.Tc, experiment.Fig5Bid)
	const width = 44
	hi := scaleHi([]float64{c.OnDemandRef}, c.Adaptive, c.Periodic, c.MarkovDaly, c.BestRedundant)
	var rows [][]string
	add := func(label string, b stats.Box) {
		cells := append([]string{label}, BoxCells(b)...)
		cells = append(cells, AsciiBox(b, 0, hi, width))
		rows = append(rows, cells)
	}
	add("adaptive", c.Adaptive)
	add("periodic", c.Periodic)
	add("markov-daly", c.MarkovDaly)
	add("redundancy*", c.BestRedundant)
	headers := append([]string{"policy"}, BoxHeaders()...)
	headers = append(headers, fmt.Sprintf("0 .. $%.0f", hi))
	if err := Table(w, headers, rows); err != nil {
		return err
	}
	fmt.Fprintf(w, "references: on-demand $%.2f  min-spot $%.2f\n", c.OnDemandRef, c.MinSpotRef)
	mw := c.AdaptiveVsPeriodic
	fmt.Fprintf(w, "adaptive vs periodic: Mann-Whitney p=%.4f, P(adaptive < periodic)=%.2f\n\n",
		mw.P, 1-mw.EffectSize)
	return nil
}

// Fig6 renders one Figure 6 panel.
func Fig6(w io.Writer, c *experiment.Fig6Cell) error {
	fmt.Fprintf(w, "Figure 6 — %s volatility, slack %.0f%%, t_c=%ds (cost per instance, $)\n",
		c.Regime, c.Slack*100, c.Tc)
	const width = 44
	boxes := []stats.Box{c.Adaptive}
	for _, b := range c.LargeBid {
		boxes = append(boxes, b)
	}
	hi := scaleHi([]float64{c.OnDemandRef}, boxes...)
	var rows [][]string
	for _, l := range experiment.Fig6Thresholds() {
		b := c.LargeBid[l]
		cells := append([]string{"large-bid L=" + experiment.ThresholdLabel(l)}, BoxCells(b)...)
		cells = append(cells, AsciiBox(b, 0, hi, width))
		rows = append(rows, cells)
	}
	cells := append([]string{"adaptive"}, BoxCells(c.Adaptive)...)
	cells = append(cells, AsciiBox(c.Adaptive, 0, hi, width))
	rows = append(rows, cells)
	headers := append([]string{"policy"}, BoxHeaders()...)
	headers = append(headers, fmt.Sprintf("0 .. $%.0f", hi))
	if err := Table(w, headers, rows); err != nil {
		return err
	}
	fmt.Fprintf(w, "references: on-demand $%.2f  min-spot $%.2f (max column = the figure's circles)\n\n",
		c.OnDemandRef, c.MinSpotRef)
	return nil
}

// HeadlineReport renders the paper-vs-measured headline claims.
func HeadlineReport(w io.Writer, h *experiment.Headline) error {
	rows := [][]string{
		{"Adaptive vs on-demand", "up to 7.0x cheaper", fmt.Sprintf("%.1fx cheaper (%s)", h.AdaptiveVsOnDemand, h.AdaptiveVsOnDemandCell)},
		{"Adaptive vs best single-zone", "up to 44% cheaper", fmt.Sprintf("%.0f%% cheaper (%s)", h.AdaptiveVsBestSingle*100, h.AdaptiveVsBestSingleCell)},
		{"Redundancy vs Periodic (high vol, 15% slack)", "23.9% cheaper", fmt.Sprintf("%.1f%% cheaper", h.RedundancyVsPeriodic*100)},
		{"Adaptive worst case vs on-demand", "never > 1.20x", fmt.Sprintf("%.2fx (%s)", h.AdaptiveWorstOverOnDemand, h.AdaptiveWorstOverOnDemandCell)},
	}
	return Table(w, []string{"claim", "paper", "measured"}, rows)
}
