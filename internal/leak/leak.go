// Package leak is the repository's shared goroutine-leak checker: a
// baseline-and-settle probe extracted from the chaos soak so every
// suite that spins up servers, subscribers or fleets (internal/chaos,
// internal/quote, internal/cluster) asserts the same invariant the
// same way — after the exercise, the goroutine count settles back to
// where it started.
//
// The check polls rather than sampling once because goroutine teardown
// is asynchronous: handlers unwind after their connections close, and
// the runtime's own helpers (timer goroutines, the race detector's
// background work) come and go. A leak is only reported when the count
// stays above the baseline for the full settle window.
package leak

import (
	"fmt"
	"runtime"
	"time"
)

// DefaultSettle is how long Check waits for the goroutine count to
// drain back to the baseline before declaring a leak.
const DefaultSettle = 2 * time.Second

// Baseline captures the current goroutine count; take it before the
// exercise under test starts anything.
func Baseline() int { return runtime.NumGoroutine() }

// Check polls until the goroutine count settles back to at most
// baseline, returning an error naming the excess if it does not within
// DefaultSettle.
func Check(baseline int) error {
	return CheckWithin(baseline, DefaultSettle)
}

// CheckWithin is Check with an explicit settle window.
func CheckWithin(baseline int, settle time.Duration) error {
	deadline := time.Now().Add(settle)
	var n int
	for {
		n = runtime.NumGoroutine()
		if n <= baseline {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("goroutine leak: %d running, baseline %d", n, baseline)
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TB is the subset of testing.TB the test helper needs, declared
// locally so the package stays importable from non-test code.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
}

// CheckT is the test-suite form: it reports a leak as a test error.
//
//	defer leak.CheckT(t, leak.Baseline())
func CheckT(t TB, baseline int) {
	t.Helper()
	if err := Check(baseline); err != nil {
		t.Errorf("%v", err)
	}
}
