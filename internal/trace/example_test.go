package trace_test

import (
	"fmt"

	"repro/internal/trace"
)

// ExampleSeries_UpIntervals shows the availability view behind the
// paper's Figure 2: intervals during which a bid would hold a spot
// instance.
func ExampleSeries_UpIntervals() {
	s := trace.NewSeries("us-east-1a", 0, []float64{0.30, 0.30, 0.95, 0.40})
	for _, iv := range s.UpIntervals(0.81) {
		fmt.Printf("up %d..%d\n", iv.Start, iv.End)
	}
	fmt.Printf("availability %.0f%%\n", 100*s.UpFraction(0.81))
	// Output:
	// up 0..600
	// up 900..1200
	// availability 75%
}
