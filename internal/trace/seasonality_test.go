package trace

import (
	"math"
	"testing"
)

func TestHourOfDayProfile(t *testing.T) {
	// Two days: $0.20 during hours 0-11, $0.40 during hours 12-23.
	var prices []float64
	for d := 0; d < 2; d++ {
		for h := 0; h < 24; h++ {
			v := 0.20
			if h >= 12 {
				v = 0.40
			}
			for i := 0; i < 12; i++ {
				prices = append(prices, v)
			}
		}
	}
	s := NewSeries("z", 0, prices)
	profile := s.HourOfDayProfile()
	if math.Abs(profile[3]-0.20) > 1e-9 || math.Abs(profile[15]-0.40) > 1e-9 {
		t.Fatalf("profile = %v", profile)
	}
	// Index = (0.40-0.20)/0.30 ≈ 0.667.
	if idx := s.SeasonalityIndex(); math.Abs(idx-0.2/0.3) > 1e-9 {
		t.Fatalf("index = %g", idx)
	}
}

func TestSeasonalityFlat(t *testing.T) {
	prices := make([]float64, 12*48)
	for i := range prices {
		prices[i] = 0.30
	}
	s := NewSeries("z", 0, prices)
	if idx := s.SeasonalityIndex(); idx != 0 {
		t.Fatalf("flat index = %g", idx)
	}
}

func TestSeasonalityNegativeEpochSafe(t *testing.T) {
	s := NewSeries("z", -7200, []float64{0.3, 0.3, 0.3})
	profile := s.HourOfDayProfile()
	for _, v := range profile {
		if v < 0 {
			t.Fatal("negative profile entry")
		}
	}
}
