package trace

import (
	"math"
	"testing"
)

func mkSeries(zone string, epoch int64, prices ...float64) *Series {
	return NewSeries(zone, epoch, prices)
}

func TestSeriesAccessors(t *testing.T) {
	s := mkSeries("us-east-1a", 1000, 0.3, 0.4, 0.5)
	if got := s.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	if got := s.Duration(); got != 3*DefaultStep {
		t.Fatalf("Duration = %d, want %d", got, 3*DefaultStep)
	}
	if got := s.Start(); got != 1000 {
		t.Fatalf("Start = %d, want 1000", got)
	}
	if got := s.End(); got != 1000+3*DefaultStep {
		t.Fatalf("End = %d, want %d", got, 1000+3*DefaultStep)
	}
}

func TestPriceAt(t *testing.T) {
	s := mkSeries("z", 0, 0.3, 0.4, 0.5)
	cases := []struct {
		t    int64
		want float64
	}{
		{-100, 0.3}, // clamped before epoch
		{0, 0.3},
		{299, 0.3},
		{300, 0.4},
		{599, 0.4},
		{600, 0.5},
		{899, 0.5},
		{10_000, 0.5}, // clamped past end
	}
	for _, c := range cases {
		if got := s.PriceAt(c.t); got != c.want {
			t.Errorf("PriceAt(%d) = %g, want %g", c.t, got, c.want)
		}
	}
}

func TestPriceAtEmpty(t *testing.T) {
	s := mkSeries("z", 0)
	if got := s.PriceAt(0); !math.IsNaN(got) {
		t.Fatalf("PriceAt on empty series = %g, want NaN", got)
	}
}

func TestSlice(t *testing.T) {
	s := mkSeries("z", 0, 1, 2, 3, 4, 5, 6)
	sub := s.Slice(300, 1200)
	if sub.Epoch != 300 || sub.Len() != 3 {
		t.Fatalf("Slice = epoch %d len %d, want 300, 3", sub.Epoch, sub.Len())
	}
	if sub.Prices[0] != 2 || sub.Prices[2] != 4 {
		t.Fatalf("Slice prices = %v, want [2 3 4]", sub.Prices)
	}
	// Bounds clamped.
	all := s.Slice(-100, 99999)
	if all.Len() != 6 {
		t.Fatalf("clamped Slice len = %d, want 6", all.Len())
	}
	// Inverted bounds yield an empty slice, not a panic.
	empty := s.Slice(1200, 300)
	if empty.Len() != 0 {
		t.Fatalf("inverted Slice len = %d, want 0", empty.Len())
	}
	// Bounds entirely past the end (or before the start) are empty too;
	// this was a crash the spotapi handler could trigger on
	// out-of-range requests.
	past := s.Slice(s.End()+Hour, s.End()+2*Hour)
	if past.Len() != 0 {
		t.Fatalf("past-end Slice len = %d, want 0", past.Len())
	}
	before := s.Slice(-10*Hour, -9*Hour)
	if before.Len() != 0 {
		t.Fatalf("pre-start Slice len = %d, want 0", before.Len())
	}
}

func TestValidate(t *testing.T) {
	good := mkSeries("z", 0, 0.5, 0.7)
	if err := good.Validate(); err != nil {
		t.Fatalf("Validate(good) = %v", err)
	}
	bad := mkSeries("z", 0, 0.5, -0.1)
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted a negative price")
	}
	nan := mkSeries("z", 0, math.NaN())
	if err := nan.Validate(); err == nil {
		t.Fatal("Validate accepted a NaN price")
	}
	zeroStep := &Series{Zone: "z", Step: 0, Prices: []float64{1}}
	if err := zeroStep.Validate(); err == nil {
		t.Fatal("Validate accepted a zero step")
	}
}

func TestChanges(t *testing.T) {
	s := mkSeries("z", 0, 1, 1, 2, 2, 2, 3, 1)
	if got := s.Changes(); got != 3 {
		t.Fatalf("Changes = %d, want 3", got)
	}
}

func TestNewSetAlignment(t *testing.T) {
	a := mkSeries("a", 0, 1, 2, 3)
	b := mkSeries("b", 0, 4, 5, 6)
	if _, err := NewSet(a, b); err != nil {
		t.Fatalf("NewSet(aligned) = %v", err)
	}
	c := mkSeries("c", 300, 4, 5, 6) // different epoch
	if _, err := NewSet(a, c); err == nil {
		t.Fatal("NewSet accepted misaligned epochs")
	}
	d := mkSeries("d", 0, 4, 5) // different length
	if _, err := NewSet(a, d); err == nil {
		t.Fatal("NewSet accepted misaligned lengths")
	}
	if _, err := NewSet(); err == nil {
		t.Fatal("NewSet accepted an empty set")
	}
}

func TestSetAccessors(t *testing.T) {
	set := MustNewSet(mkSeries("a", 0, 1, 2), mkSeries("b", 0, 3, 4))
	if got := set.NumZones(); got != 2 {
		t.Fatalf("NumZones = %d, want 2", got)
	}
	zs := set.Zones()
	if zs[0] != "a" || zs[1] != "b" {
		t.Fatalf("Zones = %v", zs)
	}
	if set.Zone("b") == nil || set.Zone("missing") != nil {
		t.Fatal("Zone lookup failed")
	}
	ps := set.PricesAt(301)
	if ps[0] != 2 || ps[1] != 4 {
		t.Fatalf("PricesAt = %v, want [2 4]", ps)
	}
	sliced := set.Slice(300, 600)
	if sliced.Duration() != 300 || sliced.Series[1].Prices[0] != 4 {
		t.Fatalf("Set.Slice wrong: %+v", sliced.Series[1])
	}
}

func TestCloneIsDeep(t *testing.T) {
	set := MustNewSet(mkSeries("a", 0, 1, 2))
	cl := set.Clone()
	cl.Series[0].Prices[0] = 99
	if set.Series[0].Prices[0] == 99 {
		t.Fatal("Clone shares price storage")
	}
}

func TestIndexClamping(t *testing.T) {
	s := mkSeries("z", 600, 1, 2, 3)
	if got := s.Index(0); got != 0 {
		t.Fatalf("Index before epoch = %d, want 0", got)
	}
	if got := s.Index(600 + 10*DefaultStep); got != 2 {
		t.Fatalf("Index past end = %d, want 2", got)
	}
}
