package trace

// Availability analysis reproduces the Figure 2 view of the paper: for a
// fixed bid, each zone is "up" while its spot price is at or below the
// bid and "down" otherwise, and the combined availability of a set of
// zones is the union of their up intervals.

// Interval is a half-open time span [Start, End) in absolute seconds.
type Interval struct {
	Start int64
	End   int64
}

// Length returns the interval length in seconds.
func (iv Interval) Length() int64 { return iv.End - iv.Start }

// UpIntervals returns the maximal intervals during which the zone price
// is at or below bid, i.e. a spot request at that bid would be granted.
func (s *Series) UpIntervals(bid float64) []Interval {
	var out []Interval
	open := false
	var start int64
	for i, p := range s.Prices {
		t := s.Epoch + int64(i)*s.Step
		if p <= bid {
			if !open {
				open = true
				start = t
			}
		} else if open {
			open = false
			out = append(out, Interval{Start: start, End: t})
		}
	}
	if open {
		out = append(out, Interval{Start: start, End: s.End()})
	}
	return out
}

// UpFraction returns the fraction of the series duration during which
// the price is at or below bid.
func (s *Series) UpFraction(bid float64) float64 {
	if len(s.Prices) == 0 {
		return 0
	}
	up := 0
	for _, p := range s.Prices {
		if p <= bid {
			up++
		}
	}
	return float64(up) / float64(len(s.Prices))
}

// UpAt reports whether the zone price at time t is at or below bid.
func (s *Series) UpAt(t int64, bid float64) bool { return s.PriceAt(t) <= bid }

// CombinedUpIntervals returns the maximal intervals during which at
// least one zone of the set is up at the given bid — the top bar of the
// paper's Figure 2.
func (t *Set) CombinedUpIntervals(bid float64) []Interval {
	if len(t.Series) == 0 {
		return nil
	}
	ref := t.Series[0]
	var out []Interval
	open := false
	var start int64
	for i := 0; i < ref.Len(); i++ {
		at := ref.Epoch + int64(i)*ref.Step
		up := false
		for _, s := range t.Series {
			if s.Prices[i] <= bid {
				up = true
				break
			}
		}
		if up {
			if !open {
				open = true
				start = at
			}
		} else if open {
			open = false
			out = append(out, Interval{Start: start, End: at})
		}
	}
	if open {
		out = append(out, Interval{Start: start, End: ref.End()})
	}
	return out
}

// CombinedUpFraction returns the fraction of time at least one zone is
// up at the given bid.
func (t *Set) CombinedUpFraction(bid float64) float64 {
	if len(t.Series) == 0 || t.Series[0].Len() == 0 {
		return 0
	}
	n := t.Series[0].Len()
	up := 0
	for i := 0; i < n; i++ {
		for _, s := range t.Series {
			if s.Prices[i] <= bid {
				up++
				break
			}
		}
	}
	return float64(up) / float64(n)
}

// MeanUptime returns the average length, in seconds, of the zone's up
// intervals at the given bid; 0 when the zone is never up. This is the
// empirical counterpart of the Markov model's expected uptime and is
// used by the Threshold policy's time threshold.
func (s *Series) MeanUptime(bid float64) float64 {
	ivs := s.UpIntervals(bid)
	if len(ivs) == 0 {
		return 0
	}
	var total int64
	for _, iv := range ivs {
		total += iv.Length()
	}
	return float64(total) / float64(len(ivs))
}
