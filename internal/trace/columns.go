package trace

// Columnar view over a Set for batched replay. The evaluation hot path
// (internal/core's batched estimator) prices every sibling permutation
// of a decision point in one pass over the price window; what it needs
// from the trace is struct-of-arrays access — per-zone price columns
// indexed by step — plus, per (zone, candidate bid), a precomputed
// up/down index so availability at any step resolves by lookup instead
// of a price comparison re-derived per permutation. Columns and
// BidIndex provide exactly that, aliasing the Set's price storage (no
// copies) and reusing their own buffers across decisions via Reset.

// Columns is a struct-of-arrays view over an aligned Set: one price
// column per zone plus the shared time grid. The view aliases the Set's
// price storage; it is cheap to build and must not outlive mutations of
// the underlying Set. Index and PriceAt follow the exact clamping
// semantics of Series.Index / Series.PriceAt, so a consumer switching
// between the row view and the column view sees identical prices at
// every time, including the edge cases (times at or past End, before
// Start, zero-length windows, single-sample series).
type Columns struct {
	cols  [][]float64
	start int64
	step  int64
	n     int
}

// NewColumns builds the columnar view of the set.
func NewColumns(set *Set) *Columns {
	c := &Columns{}
	c.Reset(set)
	return c
}

// Reset re-points the view at a new set, reusing the column-header
// buffer.
func (c *Columns) Reset(set *Set) {
	c.cols = c.cols[:0]
	for _, s := range set.Series {
		c.cols = append(c.cols, s.Prices)
	}
	c.start = set.Start()
	c.step = set.Step()
	c.n = set.Series[0].Len()
}

// NumZones returns the number of price columns.
func (c *Columns) NumZones() int { return len(c.cols) }

// Steps returns the number of samples per column.
func (c *Columns) Steps() int { return c.n }

// Start returns the absolute time of the first sample.
func (c *Columns) Start() int64 { return c.start }

// Step returns the sampling interval in seconds.
func (c *Columns) Step() int64 { return c.step }

// End returns the absolute time just past the last sample.
func (c *Columns) End() int64 { return c.start + int64(c.n)*c.step }

// Col returns the zone's price column (aliased, read-only by
// convention).
func (c *Columns) Col(zone int) []float64 { return c.cols[zone] }

// Index returns the sample index holding time t with the same clamping
// as Series.Index: times before Start map to 0 and times at or past End
// map to the final sample. A zero-length view returns 0.
func (c *Columns) Index(t int64) int {
	if c.n == 0 {
		return 0
	}
	i := (t - c.start) / c.step
	if i < 0 {
		return 0
	}
	if i >= int64(c.n) {
		return c.n - 1
	}
	return int(i)
}

// Price returns the zone's price at sample index i.
func (c *Columns) Price(zone, i int) float64 { return c.cols[zone][i] }

// PriceAt returns the zone's price in force at absolute time t,
// clamping exactly like Series.PriceAt.
func (c *Columns) PriceAt(zone int, t int64) float64 {
	return c.cols[zone][c.Index(t)]
}

// History samples the zone's trailing price history — span seconds
// ending at (and including) now, on the step grid, oldest first — with
// the same bounds behaviour as sim.Env.PriceHistory over a history-free
// config: the window start clamps to the view's Start. It returns a
// fresh slice (nil when the window is empty), so callers may hand it to
// model fitters that assume exclusive ownership.
func (c *Columns) History(zone int, now, span int64) []float64 {
	from := now - span + c.step
	if from < c.start {
		from = c.start
	}
	n := (now-from)/c.step + 1
	if n <= 0 {
		return nil
	}
	out := make([]float64, 0, n)
	col := c.cols[zone]
	for t := from; t <= now; t += c.step {
		out = append(out, col[c.Index(t)])
	}
	return out
}

// HistoryInto is History appending into a caller-provided buffer
// (usually buf[:0]), for hot paths that refit models per replay step
// and cannot afford a fresh slice per call. The sampled values are
// identical to History's; an empty window appends nothing.
func (c *Columns) HistoryInto(buf []float64, zone int, now, span int64) []float64 {
	from := now - span + c.step
	if from < c.start {
		from = c.start
	}
	if (now-from)/c.step+1 <= 0 {
		return buf
	}
	col := c.cols[zone]
	for t := from; t <= now; t += c.step {
		buf = append(buf, col[c.Index(t)])
	}
	return buf
}

// BidIndex is the precomputed availability index of one (zone, bid)
// pair: per step, whether the zone's price admits the bid (price ≤ bid,
// the paper's "up" condition), plus a next-up skip table so a replay
// whose zones are all down can jump directly to the next step where one
// becomes available.
//
// The skip tables store open runs as a -1 sentinel ("no such step yet")
// rather than the window length, which makes the index append-aware:
// Append extends it tick by tick in amortized O(1) per step — every
// entry is written at most twice, once at its own append and once when
// the run it opens is closed by a later step — while NextUp/NextChange
// keep reporting the current Steps() for open runs, exactly as a fresh
// Build over the grown window would.
type BidIndex struct {
	// Zone is the indexed zone.
	Zone int
	// Bid is the indexed candidate bid.
	Bid float64

	up   []bool
	next []int32 // first up step at or after i; -1 while none yet
	chg  []int32 // first availability flip after i; -1 while none yet
	nUp  int
}

// Build populates the index for the (zone, bid) pair over the columnar
// view, reusing the receiver's buffers.
func (bi *BidIndex) Build(c *Columns, zone int, bid float64) {
	bi.Zone = zone
	bi.Bid = bid
	bi.up = bi.up[:0]
	bi.next = bi.next[:0]
	bi.chg = bi.chg[:0]
	bi.nUp = 0
	bi.Append(c, 0)
}

// Append extends the index over the view's steps [from, Steps()), where
// from must be the length the index currently covers. Amortized cost is
// O(1) per appended step: an up arrival closes the trailing next-up
// run, an availability flip closes the trailing equal-run, and each
// entry belongs to at most one such run.
func (bi *BidIndex) Append(c *Columns, from int) {
	col := c.cols[bi.Zone]
	for i := from; i < c.n; i++ {
		u := col[i] <= bi.Bid
		bi.up = append(bi.up, u)
		bi.chg = append(bi.chg, -1)
		if u {
			bi.nUp++
			bi.next = append(bi.next, int32(i))
			for j := i - 1; j >= 0 && bi.next[j] < 0; j-- {
				bi.next[j] = int32(i)
			}
		} else {
			bi.next = append(bi.next, -1)
		}
		if i > 0 && u != bi.up[i-1] {
			for j := i - 1; j >= 0 && bi.chg[j] < 0; j-- {
				bi.chg[j] = int32(i)
			}
		}
	}
}

// Len returns how many steps the index covers.
func (bi *BidIndex) Len() int { return len(bi.up) }

// UpCount returns how many covered steps are available — the running
// availability count a streaming consumer reads instead of rescanning
// the window.
func (bi *BidIndex) UpCount() int { return bi.nUp }

// Up reports whether the zone is available at step i.
func (bi *BidIndex) Up(i int) bool { return bi.up[i] }

// NextUp returns the first step at or after i where the zone is
// available, or Steps() when it never is again.
func (bi *BidIndex) NextUp(i int) int {
	if v := bi.next[i]; v >= 0 {
		return int(v)
	}
	return len(bi.up)
}

// NextChange returns the first step after i where the zone's
// availability differs from its availability at i, or Steps() when it
// never changes again. An event-driven replay uses this to bound the
// stretch over which every zone's up/down state is constant.
func (bi *BidIndex) NextChange(i int) int {
	if v := bi.chg[i]; v >= 0 {
		return int(v)
	}
	return len(bi.up)
}

// UpIntervals reconstructs the maximal availability intervals from the
// index; it must agree with Series.UpIntervals at the same bid (the
// columnar view's equivalence test exercises this).
func (bi *BidIndex) UpIntervals(c *Columns) []Interval {
	var out []Interval
	open := false
	var start int64
	for i := 0; i < len(bi.up); i++ {
		t := c.start + int64(i)*c.step
		if bi.up[i] {
			if !open {
				open = true
				start = t
			}
		} else if open {
			open = false
			out = append(out, Interval{Start: start, End: t})
		}
	}
	if open {
		out = append(out, Interval{Start: start, End: c.End()})
	}
	return out
}

// AvailIndex caches BidIndex instances per (zone, bid) pair for one
// columnar view. Reset recycles every index's buffers into a free list,
// so the steady state of a caller evaluating the same grid of bids over
// successive windows allocates nothing. The working set is a bid grid
// times a handful of zones, so lookups scan the pair list linearly —
// cheaper than hashing a (zone, float64) key at these sizes.
type AvailIndex struct {
	cols  *Columns
	pairs []*BidIndex
	free  []*BidIndex
}

// NewAvailIndex returns an empty availability cache for the view.
func NewAvailIndex(cols *Columns) *AvailIndex {
	return &AvailIndex{cols: cols}
}

// Reset re-points the cache at a (possibly re-Reset) columnar view and
// recycles all cached indexes.
func (x *AvailIndex) Reset(cols *Columns) {
	x.cols = cols
	x.free = append(x.free, x.pairs...)
	x.pairs = x.pairs[:0]
}

// Get returns the availability index of the (zone, bid) pair, building
// it on first use.
func (x *AvailIndex) Get(zone int, bid float64) *BidIndex {
	for _, bi := range x.pairs {
		if bi.Zone == zone && bi.Bid == bid {
			return bi
		}
	}
	var bi *BidIndex
	if n := len(x.free); n > 0 {
		bi = x.free[n-1]
		x.free = x.free[:n-1]
	} else {
		bi = &BidIndex{}
	}
	bi.Build(x.cols, zone, bid)
	x.pairs = append(x.pairs, bi)
	return bi
}

// Extend appends the view's new trailing steps to every cached index
// after the underlying columns grew (e.g. a streaming tick). Indexes
// built by a later Get cover the grown window already; Extend brings
// the resident ones up to date in O(pairs) amortized.
func (x *AvailIndex) Extend() {
	for _, bi := range x.pairs {
		bi.Append(x.cols, bi.Len())
	}
}
