package trace

import (
	"bytes"
	"strings"
	"testing"
)

func sampleSet() *Set {
	return MustNewSet(
		mkSeries("us-east-1a", 600, 0.3, 0.4, 0.5),
		mkSeries("us-east-1b", 600, 0.9, 0.8, 0.7),
	)
}

func TestJSONRoundTrip(t *testing.T) {
	set := sampleSet()
	var buf bytes.Buffer
	if err := set.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	assertSetsEqual(t, set, got)
}

func TestCSVRoundTrip(t *testing.T) {
	set := sampleSet()
	var buf bytes.Buffer
	if err := set.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	assertSetsEqual(t, set, got)
}

func assertSetsEqual(t *testing.T, want, got *Set) {
	t.Helper()
	if got.NumZones() != want.NumZones() {
		t.Fatalf("zones = %d, want %d", got.NumZones(), want.NumZones())
	}
	for i, ws := range want.Series {
		gs := got.Series[i]
		if gs.Zone != ws.Zone || gs.Epoch != ws.Epoch || gs.Step != ws.Step {
			t.Fatalf("series %d header = %+v, want %+v", i, gs, ws)
		}
		if len(gs.Prices) != len(ws.Prices) {
			t.Fatalf("series %d length = %d, want %d", i, len(gs.Prices), len(ws.Prices))
		}
		for j := range ws.Prices {
			if gs.Prices[j] != ws.Prices[j] {
				t.Fatalf("series %d price %d = %g, want %g", i, j, gs.Prices[j], ws.Prices[j])
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"bad header", "a,b,c\n"},
		{"empty body", "time,zone,price\n"},
		{"bad time", "time,zone,price\nxx,z,0.3\n"},
		{"bad price", "time,zone,price\n0,z,xx\n"},
		{"non-uniform", "time,zone,price\n0,z,0.3\n300,z,0.4\n900,z,0.5\n"},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: ReadCSV accepted bad input", c.name)
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{")); err == nil {
		t.Fatal("ReadJSON accepted truncated JSON")
	}
	// Valid JSON, invalid set (negative price).
	bad := `{"series":[{"zone":"z","epoch":0,"step":300,"prices":[-1]}]}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Fatal("ReadJSON accepted a negative price")
	}
}

func TestReadCSVSingleSampleDefaultsStep(t *testing.T) {
	set, err := ReadCSV(strings.NewReader("time,zone,price\n0,z,0.3\n"))
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if set.Step() != DefaultStep {
		t.Fatalf("Step = %d, want default %d", set.Step(), DefaultStep)
	}
}
