package trace

import (
	"math/rand"
	"testing"
)

// randRow derives one price row from the rng, mixing flat stretches,
// small moves and spikes so availability runs of every shape appear.
func randRow(rng *rand.Rand, prev []float64) []float64 {
	row := make([]float64, len(prev))
	for z := range prev {
		p := prev[z]
		switch rng.Intn(10) {
		case 0:
			p = 0.27 + rng.Float64()*3 // rebase
		case 1, 2:
			p += (rng.Float64() - 0.5) * 0.4 // drift
		case 3:
			p *= 4 // spike
		}
		if p < 0.01 {
			p = 0.01
		}
		row[z] = p
	}
	return row
}

// TestBidIndexAppendMatchesRebuild is the append-then-query property
// test: over randomized tick sequences, an index extended tick by tick
// (through AvailIndex.Extend) answers every query identically to an
// index rebuilt from scratch over the grown window.
func TestBidIndexAppendMatchesRebuild(t *testing.T) {
	bids := []float64{0.27, 0.87, 1.47, 3.07}
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nz := 1 + rng.Intn(3)
		zones := make([]string, nz)
		for i := range zones {
			zones[i] = string(rune('a' + i))
		}
		tape, err := NewTape(zones, 1000, DefaultStep)
		if err != nil {
			t.Fatal(err)
		}
		row := make([]float64, nz)
		for i := range row {
			row[i] = 0.3 + rng.Float64()
		}

		cols := &Columns{}
		avail := NewAvailIndex(cols)
		ticks := 40 + rng.Intn(120)
		for tick := 0; tick < ticks; tick++ {
			row = randRow(rng, row)
			if err := tape.Append(row); err != nil {
				t.Fatal(err)
			}
			cols.Reset(tape.Set())
			avail.Extend()

			fresh := &Columns{}
			fresh.Reset(tape.Set())
			for z := 0; z < nz; z++ {
				for _, bid := range bids {
					inc := avail.Get(z, bid)
					var ref BidIndex
					ref.Build(fresh, z, bid)
					if inc.Len() != ref.Len() || inc.Len() != tick+1 {
						t.Fatalf("seed %d tick %d: len %d vs rebuild %d", seed, tick, inc.Len(), ref.Len())
					}
					if inc.UpCount() != ref.UpCount() {
						t.Fatalf("seed %d tick %d zone %d bid %v: UpCount %d vs rebuild %d",
							seed, tick, z, bid, inc.UpCount(), ref.UpCount())
					}
					for i := 0; i < inc.Len(); i++ {
						if inc.Up(i) != ref.Up(i) {
							t.Fatalf("seed %d tick %d zone %d bid %v: Up(%d) %v vs %v",
								seed, tick, z, bid, i, inc.Up(i), ref.Up(i))
						}
						if inc.NextUp(i) != ref.NextUp(i) {
							t.Fatalf("seed %d tick %d zone %d bid %v: NextUp(%d) %d vs %d",
								seed, tick, z, bid, i, inc.NextUp(i), ref.NextUp(i))
						}
						if inc.NextChange(i) != ref.NextChange(i) {
							t.Fatalf("seed %d tick %d zone %d bid %v: NextChange(%d) %d vs %d",
								seed, tick, z, bid, i, inc.NextChange(i), ref.NextChange(i))
						}
					}
				}
			}
		}
	}
}

// TestTapeSetView pins the Set view's alignment and aliasing: the view
// tracks appends, validates, and matches the appended rows sample for
// sample.
func TestTapeSetView(t *testing.T) {
	tape, err := NewTape([]string{"us-east-1a", "us-east-1b"}, 5000, 300)
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]float64{{0.3, 0.4}, {0.5, 0.4}, {0.5, 1.2}}
	for _, r := range rows {
		if err := tape.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	set := tape.Set()
	if err := set.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if set.Start() != 5000 || set.Step() != 300 || set.Series[0].Len() != 3 {
		t.Fatalf("view geometry: start %d step %d len %d", set.Start(), set.Step(), set.Series[0].Len())
	}
	for i, r := range rows {
		for z := range r {
			if got := set.Series[z].Prices[i]; got != r[z] {
				t.Fatalf("sample (%d, %d) = %v, want %v", z, i, got, r[z])
			}
		}
	}
	if err := tape.Append([]float64{1}); err == nil {
		t.Fatal("short row accepted")
	}
	if err := tape.Append([]float64{-1, 2}); err == nil {
		t.Fatal("negative price accepted")
	}

	tail := tape.Tail(2)
	if tail.Len() != 2 || tail.Start() != 5300 {
		t.Fatalf("Tail: len %d start %d", tail.Len(), tail.Start())
	}
	if got := tail.Set().Series[1].Prices[1]; got != 1.2 {
		t.Fatalf("Tail sample = %v, want 1.2", got)
	}
}
