package trace

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarize(t *testing.T) {
	s := mkSeries("z", 0, 1, 2, 3, 4)
	sum := s.Summarize()
	if sum.Samples != 4 {
		t.Fatalf("Samples = %d", sum.Samples)
	}
	if !almostEqual(sum.Mean, 2.5, 1e-12) {
		t.Fatalf("Mean = %g, want 2.5", sum.Mean)
	}
	if !almostEqual(sum.Variance, 1.25, 1e-12) {
		t.Fatalf("Variance = %g, want 1.25", sum.Variance)
	}
	if sum.Min != 1 || sum.Max != 4 {
		t.Fatalf("Min/Max = %g/%g", sum.Min, sum.Max)
	}
	if !almostEqual(sum.Median, 2.5, 1e-12) {
		t.Fatalf("Median = %g, want 2.5", sum.Median)
	}
	if sum.Spikes != 2 { // 3 and 4 exceed the default 2.40 threshold
		t.Fatalf("Spikes = %d, want 2", sum.Spikes)
	}
	if sum.Changes != 3 {
		t.Fatalf("Changes = %d, want 3", sum.Changes)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	sum := mkSeries("z", 0).Summarize()
	if !math.IsNaN(sum.Mean) || !math.IsNaN(sum.Median) {
		t.Fatalf("empty summary should be NaN, got %+v", sum)
	}
}

func TestQuantile(t *testing.T) {
	s := mkSeries("z", 0, 10, 20, 30, 40, 50)
	cases := []struct{ q, want float64 }{
		{0, 10}, {0.25, 20}, {0.5, 30}, {0.75, 40}, {1, 50}, {-1, 10}, {2, 50},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
}

func TestQuantileProperties(t *testing.T) {
	// Quantile is monotone in q and bounded by min/max.
	f := func(raw []float64, q1, q2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		prices := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			prices[i] = math.Abs(math.Mod(v, 100))
		}
		s := mkSeries("z", 0, prices...)
		q1 = math.Abs(math.Mod(q1, 1))
		q2 = math.Abs(math.Mod(q2, 1))
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		lo, hi := s.Quantile(q1), s.Quantile(q2)
		sum := s.Summarize()
		return lo <= hi+1e-9 && lo >= sum.Min-1e-9 && hi <= sum.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClassifyVolatility(t *testing.T) {
	calm := MustNewSet(mkSeries("a", 0, 0.30, 0.31, 0.30, 0.29))
	if got := calm.ClassifyVolatility(); got != LowVolatility {
		t.Fatalf("calm volatility = %v, want low", got)
	}
	wild := MustNewSet(mkSeries("a", 0, 0.30, 3.0, 0.4, 2.5))
	if got := wild.ClassifyVolatility(); got != HighVolatility {
		t.Fatalf("wild volatility = %v, want high", got)
	}
	mid := MustNewSet(mkSeries("a", 0, 0.30, 0.8, 0.3, 0.8))
	if got := mid.ClassifyVolatility(); got != ModerateVolatility {
		t.Fatalf("mid volatility = %v, want moderate", got)
	}
}

func TestVolatilityString(t *testing.T) {
	if LowVolatility.String() != "low" || HighVolatility.String() != "high" ||
		ModerateVolatility.String() != "moderate" || Volatility(42).String() != "unknown" {
		t.Fatal("Volatility.String mismatch")
	}
}

func TestSetMinMaxPrice(t *testing.T) {
	set := MustNewSet(mkSeries("a", 0, 0.5, 0.7), mkSeries("b", 0, 0.2, 1.9))
	if got := set.MinPrice(); got != 0.2 {
		t.Fatalf("MinPrice = %g", got)
	}
	if got := set.MaxPrice(); got != 1.9 {
		t.Fatalf("MaxPrice = %g", got)
	}
}
