// Package trace represents Amazon EC2 spot price histories.
//
// A Series holds the spot price of one availability zone as a uniformly
// sampled step function: the paper (§5) samples zone prices every five
// minutes and notes that intra-interval movements are rare enough to
// ignore. A Set bundles the series of several zones over a common time
// range, which is the form every policy and experiment in this repository
// consumes.
//
// All times are int64 seconds relative to the epoch of the trace. Prices
// are float64 dollars per instance-hour.
package trace

import (
	"errors"
	"fmt"
	"math"
)

// DefaultStep is the sampling interval used throughout the paper: 5 minutes.
const DefaultStep int64 = 300

// Hour is one billing hour in seconds.
const Hour int64 = 3600

// Series is a uniformly sampled spot price history for a single zone.
// The price during [Epoch + i*Step, Epoch + (i+1)*Step) is Prices[i].
type Series struct {
	// Zone names the availability zone, e.g. "us-east-1a".
	Zone string
	// Epoch is the absolute time of Prices[0] in seconds. Windows cut
	// from a longer trace keep the parent epoch so experiment logs can
	// be traced back to their position in the year.
	Epoch int64
	// Step is the sampling interval in seconds (> 0).
	Step int64
	// Prices holds one sample per step.
	Prices []float64
}

// NewSeries constructs a Series with the default 5-minute step.
func NewSeries(zone string, epoch int64, prices []float64) *Series {
	return &Series{Zone: zone, Epoch: epoch, Step: DefaultStep, Prices: prices}
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Prices) }

// Duration returns the time covered by the series in seconds.
func (s *Series) Duration() int64 { return int64(len(s.Prices)) * s.Step }

// Start returns the absolute time of the first sample.
func (s *Series) Start() int64 { return s.Epoch }

// End returns the absolute time just past the last sample.
func (s *Series) End() int64 { return s.Epoch + s.Duration() }

// Index returns the sample index holding time t, clamped to the valid
// range. Times before the epoch map to 0 and times at or past End map to
// the final sample, so a simulator that runs slightly past a window edge
// sees a frozen final price instead of a panic.
func (s *Series) Index(t int64) int {
	if len(s.Prices) == 0 {
		return 0
	}
	i := (t - s.Epoch) / s.Step
	if i < 0 {
		return 0
	}
	if i >= int64(len(s.Prices)) {
		return len(s.Prices) - 1
	}
	return int(i)
}

// PriceAt returns the spot price in force at absolute time t.
func (s *Series) PriceAt(t int64) float64 {
	if len(s.Prices) == 0 {
		return math.NaN()
	}
	return s.Prices[s.Index(t)]
}

// Slice returns the sub-series covering [from, to). The bounds are
// clamped to the series range; the returned series shares the underlying
// price storage.
func (s *Series) Slice(from, to int64) *Series {
	if from < s.Epoch {
		from = s.Epoch
	}
	if to > s.End() {
		to = s.End()
	}
	if to < from {
		to = from
	}
	lo := (from - s.Epoch) / s.Step
	if lo < 0 {
		lo = 0
	}
	if lo > int64(len(s.Prices)) {
		lo = int64(len(s.Prices))
	}
	hi := (to - s.Epoch + s.Step - 1) / s.Step
	if hi > int64(len(s.Prices)) {
		hi = int64(len(s.Prices))
	}
	if hi < lo {
		hi = lo
	}
	return &Series{
		Zone:   s.Zone,
		Epoch:  s.Epoch + lo*s.Step,
		Step:   s.Step,
		Prices: s.Prices[lo:hi],
	}
}

// Clone returns a deep copy of the series.
func (s *Series) Clone() *Series {
	p := make([]float64, len(s.Prices))
	copy(p, s.Prices)
	return &Series{Zone: s.Zone, Epoch: s.Epoch, Step: s.Step, Prices: p}
}

// Validate reports structural problems: non-positive step, negative or
// non-finite prices.
func (s *Series) Validate() error {
	if s.Step <= 0 {
		return fmt.Errorf("trace: series %q has non-positive step %d", s.Zone, s.Step)
	}
	for i, p := range s.Prices {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			return fmt.Errorf("trace: series %q sample %d is not finite", s.Zone, i)
		}
		if p < 0 {
			return fmt.Errorf("trace: series %q sample %d is negative (%g)", s.Zone, i, p)
		}
	}
	return nil
}

// Changes returns the number of samples whose price differs from the
// previous sample, i.e. the number of observed price movements.
func (s *Series) Changes() int {
	n := 0
	for i := 1; i < len(s.Prices); i++ {
		if s.Prices[i] != s.Prices[i-1] {
			n++
		}
	}
	return n
}

// Set bundles the price series of several zones. All series must share
// the same epoch, step and length; NewSet enforces this.
type Set struct {
	Series []*Series
}

// ErrMisaligned reports that the series of a Set do not share a common
// epoch, step and length.
var ErrMisaligned = errors.New("trace: zone series are not aligned")

// NewSet builds a Set after checking that all series are aligned.
func NewSet(series ...*Series) (*Set, error) {
	if len(series) == 0 {
		return nil, errors.New("trace: empty set")
	}
	first := series[0]
	for _, s := range series[1:] {
		if s.Epoch != first.Epoch || s.Step != first.Step || len(s.Prices) != len(first.Prices) {
			return nil, fmt.Errorf("%w: %q vs %q", ErrMisaligned, first.Zone, s.Zone)
		}
	}
	return &Set{Series: series}, nil
}

// MustNewSet is NewSet that panics on error; for tests and generators
// that construct aligned series by design.
func MustNewSet(series ...*Series) *Set {
	set, err := NewSet(series...)
	if err != nil {
		panic(err)
	}
	return set
}

// Zones returns the zone names in order.
func (t *Set) Zones() []string {
	names := make([]string, len(t.Series))
	for i, s := range t.Series {
		names[i] = s.Zone
	}
	return names
}

// NumZones returns the number of zones.
func (t *Set) NumZones() int { return len(t.Series) }

// Zone returns the series with the given name, or nil.
func (t *Set) Zone(name string) *Series {
	for _, s := range t.Series {
		if s.Zone == name {
			return s
		}
	}
	return nil
}

// Step returns the common sampling interval.
func (t *Set) Step() int64 { return t.Series[0].Step }

// Start returns the common start time.
func (t *Set) Start() int64 { return t.Series[0].Start() }

// End returns the common end time.
func (t *Set) End() int64 { return t.Series[0].End() }

// Duration returns the covered time span in seconds.
func (t *Set) Duration() int64 { return t.Series[0].Duration() }

// PricesAt returns the price of every zone at absolute time t, in zone
// order.
func (t *Set) PricesAt(at int64) []float64 {
	out := make([]float64, len(t.Series))
	for i, s := range t.Series {
		out[i] = s.PriceAt(at)
	}
	return out
}

// Slice returns the Set restricted to [from, to).
func (t *Set) Slice(from, to int64) *Set {
	out := make([]*Series, len(t.Series))
	for i, s := range t.Series {
		out[i] = s.Slice(from, to)
	}
	return &Set{Series: out}
}

// Clone returns a deep copy of the set.
func (t *Set) Clone() *Set {
	out := make([]*Series, len(t.Series))
	for i, s := range t.Series {
		out[i] = s.Clone()
	}
	return &Set{Series: out}
}

// Validate validates every series and the alignment invariant.
func (t *Set) Validate() error {
	if len(t.Series) == 0 {
		return errors.New("trace: empty set")
	}
	first := t.Series[0]
	for _, s := range t.Series {
		if err := s.Validate(); err != nil {
			return err
		}
		if s.Epoch != first.Epoch || s.Step != first.Step || len(s.Prices) != len(first.Prices) {
			return fmt.Errorf("%w: %q vs %q", ErrMisaligned, first.Zone, s.Zone)
		}
	}
	return nil
}
