package trace

// HourOfDayProfile returns the mean price per hour of day (24 entries):
// the seasonality view of a price history. Real spot markets show a
// demand-driven daily cycle (the paper sampled its queuing-delay
// measurements at 7 am and 7 pm for the same reason); the generator can
// reproduce it via ZoneConfig.DiurnalAmplitude and this profile
// verifies either its presence or its absence.
func (s *Series) HourOfDayProfile() [24]float64 {
	var sums, counts [24]float64
	for i, p := range s.Prices {
		hod := (s.Epoch + int64(i)*s.Step) % (24 * 3600) / 3600
		if hod < 0 {
			hod += 24
		}
		sums[hod] += p
		counts[hod]++
	}
	var out [24]float64
	for h := range out {
		if counts[h] > 0 {
			out[h] = sums[h] / counts[h]
		}
	}
	return out
}

// SeasonalityIndex summarises the daily cycle strength: the relative
// spread (max − min) / mean of the hour-of-day profile. A flat market
// scores near 0.
func (s *Series) SeasonalityIndex() float64 {
	profile := s.HourOfDayProfile()
	min, max, sum := profile[0], profile[0], 0.0
	for _, v := range profile {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		sum += v
	}
	mean := sum / 24
	if mean == 0 {
		return 0
	}
	return (max - min) / mean
}
