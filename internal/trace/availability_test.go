package trace

import (
	"testing"
	"testing/quick"
)

func TestUpIntervals(t *testing.T) {
	// bid 0.5: up at samples 0,1 (0-600), down 2 (600-900), up 3,4 (900-1500)
	s := mkSeries("z", 0, 0.3, 0.5, 0.9, 0.4, 0.2)
	ivs := s.UpIntervals(0.5)
	want := []Interval{{0, 600}, {900, 1500}}
	if len(ivs) != len(want) {
		t.Fatalf("UpIntervals = %v, want %v", ivs, want)
	}
	for i := range want {
		if ivs[i] != want[i] {
			t.Fatalf("UpIntervals[%d] = %v, want %v", i, ivs[i], want[i])
		}
	}
}

func TestUpIntervalsAllDownAllUp(t *testing.T) {
	s := mkSeries("z", 0, 1, 1, 1)
	if ivs := s.UpIntervals(0.5); len(ivs) != 0 {
		t.Fatalf("all-down UpIntervals = %v", ivs)
	}
	if ivs := s.UpIntervals(2); len(ivs) != 1 || ivs[0] != (Interval{0, 900}) {
		t.Fatalf("all-up UpIntervals = %v", ivs)
	}
}

func TestUpFraction(t *testing.T) {
	s := mkSeries("z", 0, 0.3, 0.5, 0.9, 0.4)
	if got := s.UpFraction(0.5); got != 0.75 {
		t.Fatalf("UpFraction = %g, want 0.75", got)
	}
	if got := mkSeries("z", 0).UpFraction(1); got != 0 {
		t.Fatalf("empty UpFraction = %g", got)
	}
}

func TestCombinedUpIntervals(t *testing.T) {
	a := mkSeries("a", 0, 0.3, 0.9, 0.9, 0.3)
	b := mkSeries("b", 0, 0.9, 0.3, 0.9, 0.9)
	set := MustNewSet(a, b)
	// bid 0.5: a up at samples 0,3; b up at sample 1; combined up 0,1,3.
	ivs := set.CombinedUpIntervals(0.5)
	want := []Interval{{0, 600}, {900, 1200}}
	if len(ivs) != 2 || ivs[0] != want[0] || ivs[1] != want[1] {
		t.Fatalf("CombinedUpIntervals = %v, want %v", ivs, want)
	}
	if got := set.CombinedUpFraction(0.5); got != 0.75 {
		t.Fatalf("CombinedUpFraction = %g, want 0.75", got)
	}
}

// Combined availability must dominate every individual zone's availability.
func TestCombinedDominatesProperty(t *testing.T) {
	f := func(pa, pb []uint8, bidRaw uint8) bool {
		n := len(pa)
		if len(pb) < n {
			n = len(pb)
		}
		if n == 0 {
			return true
		}
		ap := make([]float64, n)
		bp := make([]float64, n)
		for i := 0; i < n; i++ {
			ap[i] = float64(pa[i]) / 100
			bp[i] = float64(pb[i]) / 100
		}
		bid := float64(bidRaw) / 100
		set := MustNewSet(mkSeries("a", 0, ap...), mkSeries("b", 0, bp...))
		comb := set.CombinedUpFraction(bid)
		for _, s := range set.Series {
			if s.UpFraction(bid) > comb+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanUptime(t *testing.T) {
	s := mkSeries("z", 0, 0.3, 0.3, 0.9, 0.3)
	// up intervals: [0,600) and [900,1200) → lengths 600, 300, mean 450.
	if got := s.MeanUptime(0.5); got != 450 {
		t.Fatalf("MeanUptime = %g, want 450", got)
	}
	if got := s.MeanUptime(0.1); got != 0 {
		t.Fatalf("MeanUptime never-up = %g, want 0", got)
	}
}

func TestUpAt(t *testing.T) {
	s := mkSeries("z", 0, 0.3, 0.9)
	if !s.UpAt(0, 0.5) || s.UpAt(300, 0.5) {
		t.Fatal("UpAt mismatch")
	}
}
