package trace

import (
	"math/rand"
	"testing"
)

// colSet builds an aligned two-zone set with hand-picked prices around
// a 0.30 bid boundary.
func colSet(t *testing.T) *Set {
	t.Helper()
	a := NewSeries("a", 1000*DefaultStep, []float64{0.10, 0.40, 0.20, 0.20, 0.50, 0.25})
	b := NewSeries("b", 1000*DefaultStep, []float64{0.35, 0.35, 0.15, 0.45, 0.10, 0.10})
	return MustNewSet(a, b)
}

// TestColumnsIndexMatchesSeries pins the clamping contract: Columns.Index
// and Columns.PriceAt agree with Series.Index / Series.PriceAt at every
// probe time, including the edges (before Start, at Start, at End()-step,
// exactly at End(), past End()) and on a single-sample series.
func TestColumnsIndexMatchesSeries(t *testing.T) {
	single := MustNewSet(NewSeries("s", 500, []float64{0.42}))
	single.Series[0].Step = 60

	for _, tc := range []struct {
		name string
		set  *Set
	}{
		{"multi", colSet(t)},
		{"single-sample", single},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cols := NewColumns(tc.set)
			step := tc.set.Step()
			probes := []int64{
				tc.set.Start() - 10*step, tc.set.Start() - 1,
				tc.set.Start(), tc.set.Start() + 1,
				tc.set.Start() + step, tc.set.Start() + step/2,
				tc.set.End() - step, tc.set.End() - 1,
				tc.set.End(), // exactly at End: clamps to the final sample
				tc.set.End() + 1, tc.set.End() + 7*step,
			}
			for zi, s := range tc.set.Series {
				for _, at := range probes {
					if got, want := cols.Index(at), s.Index(at); got != want {
						t.Errorf("zone %d Index(%d) = %d, Series.Index = %d", zi, at, got, want)
					}
					if got, want := cols.PriceAt(zi, at), s.PriceAt(at); got != want {
						t.Errorf("zone %d PriceAt(%d) = %v, Series.PriceAt = %v", zi, at, got, want)
					}
				}
			}
		})
	}
}

// TestColumnsZeroLength pins the zero-length window: a Slice(t, t) cut
// produces an empty set, and Index stays in bounds (0) like
// Series.Index does.
func TestColumnsZeroLength(t *testing.T) {
	set := colSet(t)
	cut := set.Slice(set.Start()+2*set.Step(), set.Start()+2*set.Step())
	if cut.Series[0].Len() != 0 {
		t.Fatalf("Slice(t, t) length = %d, want 0", cut.Series[0].Len())
	}
	cols := NewColumns(cut)
	if cols.Steps() != 0 {
		t.Fatalf("Steps() = %d, want 0", cols.Steps())
	}
	for _, at := range []int64{cut.Start() - 1, cut.Start(), cut.Start() + 1} {
		if got := cols.Index(at); got != cut.Series[0].Index(at) {
			t.Errorf("Index(%d) = %d, Series.Index = %d", at, got, cut.Series[0].Index(at))
		}
	}
	if cols.End() != cols.Start() {
		t.Errorf("End() = %d, want Start() = %d", cols.End(), cols.Start())
	}
}

// TestColumnsHistory checks History/HistoryInto against a reference
// sampling through Series.PriceAt, including the window-start clamp and
// the empty window.
func TestColumnsHistory(t *testing.T) {
	set := colSet(t)
	cols := NewColumns(set)
	step := set.Step()
	for zi, s := range set.Series {
		for _, span := range []int64{step, 3 * step, 100 * step} {
			for now := set.Start(); now <= set.End()+step; now += step {
				var want []float64
				from := now - span + step
				if from < set.Start() {
					from = set.Start()
				}
				for at := from; at <= now; at += step {
					want = append(want, s.PriceAt(at))
				}
				got := cols.History(zi, now, span)
				if len(got) != len(want) {
					t.Fatalf("zone %d History(now=%d, span=%d) len = %d, want %d", zi, now, span, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("zone %d History(now=%d, span=%d)[%d] = %v, want %v", zi, now, span, i, got[i], want[i])
					}
				}
				into := cols.HistoryInto(nil, zi, now, span)
				if len(into) != len(got) {
					t.Fatalf("HistoryInto len = %d, History len = %d", len(into), len(got))
				}
				for i := range got {
					if into[i] != got[i] {
						t.Fatalf("HistoryInto[%d] = %v, History = %v", i, into[i], got[i])
					}
				}
			}
		}
		// A window ending before the view starts is empty.
		if got := cols.History(zi, set.Start()-step, step); got != nil {
			t.Errorf("zone %d History before start = %v, want nil", zi, got)
		}
		if got := cols.HistoryInto(nil, zi, set.Start()-step, step); len(got) != 0 {
			t.Errorf("zone %d HistoryInto before start appended %v", zi, got)
		}
	}
}

// TestBidIndexMatchesSeries pins BidIndex against the Series
// availability primitives on a randomized trace: Up against UpAt,
// UpIntervals against Series.UpIntervals, and the NextUp/NextChange skip
// tables against reference scans.
func TestBidIndexMatchesSeries(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	prices := make([]float64, 400)
	for i := range prices {
		prices[i] = 0.05 * float64(1+rng.Intn(12)) // 0.05 .. 0.60
	}
	s := NewSeries("z", 12345*DefaultStep, prices)
	set := MustNewSet(s)
	cols := NewColumns(set)

	for _, bid := range []float64{0.01, 0.05, 0.25, 0.60, 1.00} {
		var bi BidIndex
		bi.Build(cols, 0, bid)
		for i := 0; i < len(prices); i++ {
			at := s.Epoch + int64(i)*s.Step
			if got, want := bi.Up(i), s.UpAt(at, bid); got != want {
				t.Fatalf("bid %v Up(%d) = %v, UpAt = %v", bid, i, got, want)
			}
			wantNext := len(prices)
			for j := i; j < len(prices); j++ {
				if prices[j] <= bid {
					wantNext = j
					break
				}
			}
			if got := bi.NextUp(i); got != wantNext {
				t.Fatalf("bid %v NextUp(%d) = %d, want %d", bid, i, got, wantNext)
			}
			wantChg := len(prices)
			for j := i + 1; j < len(prices); j++ {
				if (prices[j] <= bid) != (prices[i] <= bid) {
					wantChg = j
					break
				}
			}
			if got := bi.NextChange(i); got != wantChg {
				t.Fatalf("bid %v NextChange(%d) = %d, want %d", bid, i, got, wantChg)
			}
		}
		got := bi.UpIntervals(cols)
		want := s.UpIntervals(bid)
		if len(got) != len(want) {
			t.Fatalf("bid %v UpIntervals count = %d, want %d", bid, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("bid %v UpIntervals[%d] = %+v, want %+v", bid, i, got[i], want[i])
			}
		}
	}
}

// TestAvailIndexReuse checks that the cache hands back the same index
// per (zone, bid) pair, and that Reset recycles indexes without stale
// answers after the view moves to a different window.
func TestAvailIndexReuse(t *testing.T) {
	set := colSet(t)
	cols := NewColumns(set)
	x := NewAvailIndex(cols)

	a := x.Get(0, 0.30)
	if b := x.Get(0, 0.30); b != a {
		t.Fatalf("second Get returned a different index")
	}
	if c := x.Get(1, 0.30); c == a {
		t.Fatalf("different zone shares an index")
	}

	cut := set.Slice(set.Start()+2*set.Step(), set.End())
	cols.Reset(cut)
	x.Reset(cols)
	bi := x.Get(0, 0.30)
	for i := 0; i < cut.Series[0].Len(); i++ {
		at := cut.Start() + int64(i)*cut.Step()
		if got, want := bi.Up(i), cut.Series[0].UpAt(at, 0.30); got != want {
			t.Fatalf("after Reset Up(%d) = %v, want %v", i, got, want)
		}
	}
}
