package trace

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Trace serialisation. Two formats are supported:
//
//   - CSV with header "time,zone,price": one row per (sample, zone),
//     matching the shape of the price history files Amazon's
//     describe-spot-price-history API returns once flattened.
//   - JSON: a direct encoding of the Set structure.
//
// Both round-trip exactly for aligned sets.

type jsonSeries struct {
	Zone   string    `json:"zone"`
	Epoch  int64     `json:"epoch"`
	Step   int64     `json:"step"`
	Prices []float64 `json:"prices"`
}

type jsonSet struct {
	Series []jsonSeries `json:"series"`
}

// WriteJSON encodes the set as JSON.
func (t *Set) WriteJSON(w io.Writer) error {
	out := jsonSet{Series: make([]jsonSeries, len(t.Series))}
	for i, s := range t.Series {
		out.Series[i] = jsonSeries{Zone: s.Zone, Epoch: s.Epoch, Step: s.Step, Prices: s.Prices}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ReadJSON decodes a set from JSON and validates it.
func ReadJSON(r io.Reader) (*Set, error) {
	var in jsonSet
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("trace: decoding JSON: %w", err)
	}
	series := make([]*Series, len(in.Series))
	for i, s := range in.Series {
		series[i] = &Series{Zone: s.Zone, Epoch: s.Epoch, Step: s.Step, Prices: s.Prices}
	}
	set := &Set{Series: series}
	if err := set.Validate(); err != nil {
		return nil, err
	}
	return set, nil
}

// WriteCSV encodes the set as CSV rows "time,zone,price".
func (t *Set) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	if err := cw.Write([]string{"time", "zone", "price"}); err != nil {
		return err
	}
	for _, s := range t.Series {
		for i, p := range s.Prices {
			at := s.Epoch + int64(i)*s.Step
			rec := []string{
				strconv.FormatInt(at, 10),
				s.Zone,
				strconv.FormatFloat(p, 'g', -1, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCSV decodes a set from CSV rows "time,zone,price". Rows may appear
// in any order; the sampling step is inferred from the smallest time gap
// within a zone and every zone must produce an aligned series.
func ReadCSV(r io.Reader) (*Set, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading CSV header: %w", err)
	}
	if header[0] != "time" || header[1] != "zone" || header[2] != "price" {
		return nil, fmt.Errorf("trace: unexpected CSV header %v", header)
	}
	type sample struct {
		t int64
		p float64
	}
	byZone := map[string][]sample{}
	var zoneOrder []string
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: reading CSV: %w", err)
		}
		at, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad time %q: %w", rec[0], err)
		}
		price, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad price %q: %w", rec[2], err)
		}
		if _, ok := byZone[rec[1]]; !ok {
			zoneOrder = append(zoneOrder, rec[1])
		}
		byZone[rec[1]] = append(byZone[rec[1]], sample{t: at, p: price})
	}
	if len(zoneOrder) == 0 {
		return nil, fmt.Errorf("trace: CSV contains no samples")
	}
	series := make([]*Series, 0, len(zoneOrder))
	for _, zone := range zoneOrder {
		samples := byZone[zone]
		sort.Slice(samples, func(i, j int) bool { return samples[i].t < samples[j].t })
		step := int64(0)
		for i := 1; i < len(samples); i++ {
			gap := samples[i].t - samples[i-1].t
			if gap > 0 && (step == 0 || gap < step) {
				step = gap
			}
		}
		if step == 0 {
			step = DefaultStep
		}
		prices := make([]float64, len(samples))
		for i, sm := range samples {
			want := samples[0].t + int64(i)*step
			if sm.t != want {
				return nil, fmt.Errorf("trace: zone %q is not uniformly sampled at t=%d (want %d)", zone, sm.t, want)
			}
			prices[i] = sm.p
		}
		series = append(series, &Series{Zone: zone, Epoch: samples[0].t, Step: step, Prices: prices})
	}
	set := &Set{Series: series}
	if err := set.Validate(); err != nil {
		return nil, err
	}
	return set, nil
}
