package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV exercises the CSV decoder against arbitrary inputs: it
// must never panic, and any accepted input must round-trip.
func FuzzReadCSV(f *testing.F) {
	var seed bytes.Buffer
	_ = sampleSet().WriteCSV(&seed)
	f.Add(seed.String())
	f.Add("time,zone,price\n0,a,0.3\n")
	f.Add("time,zone,price\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, in string) {
		set, err := ReadCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := set.Validate(); err != nil {
			t.Fatalf("ReadCSV accepted an invalid set: %v", err)
		}
		var buf bytes.Buffer
		if err := set.WriteCSV(&buf); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if again.NumZones() != set.NumZones() || again.Duration() != set.Duration() {
			t.Fatalf("round trip changed shape")
		}
	})
}

// FuzzReadJSON exercises the JSON decoder similarly.
func FuzzReadJSON(f *testing.F) {
	var seed bytes.Buffer
	_ = sampleSet().WriteJSON(&seed)
	f.Add(seed.String())
	f.Add(`{"series":[{"zone":"z","epoch":0,"step":300,"prices":[0.3]}]}`)
	f.Add(`{}`)
	f.Fuzz(func(t *testing.T, in string) {
		set, err := ReadJSON(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := set.Validate(); err != nil {
			t.Fatalf("ReadJSON accepted an invalid set: %v", err)
		}
	})
}

// FuzzBidIndexAppend drives the append-aware availability index with
// arbitrary byte-derived tick sequences and asserts the streaming
// invariant: an index extended tick by tick answers every query
// identically to one rebuilt from scratch over the grown window.
func FuzzBidIndexAppend(f *testing.F) {
	f.Add([]byte{10, 200, 10, 40, 40, 40, 200, 0, 0, 255})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{255, 1, 254, 2, 253, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 512 {
			return
		}
		// Each byte is one tick's price in cents; the bid sits mid-range
		// so both availability states occur.
		tape, err := NewTape([]string{"z"}, 0, DefaultStep)
		if err != nil {
			t.Fatal(err)
		}
		cols := &Columns{}
		var inc BidIndex
		const bid = 1.28
		for i, b := range data {
			if err := tape.Append([]float64{float64(b) / 100}); err != nil {
				t.Fatal(err)
			}
			cols.Reset(tape.Set())
			if i == 0 {
				inc.Build(cols, 0, bid)
			} else {
				inc.Append(cols, inc.Len())
			}
		}
		var ref BidIndex
		ref.Build(cols, 0, bid)
		if inc.Len() != ref.Len() || inc.UpCount() != ref.UpCount() {
			t.Fatalf("shape: len %d/%d upcount %d/%d", inc.Len(), ref.Len(), inc.UpCount(), ref.UpCount())
		}
		for i := 0; i < ref.Len(); i++ {
			if inc.Up(i) != ref.Up(i) || inc.NextUp(i) != ref.NextUp(i) || inc.NextChange(i) != ref.NextChange(i) {
				t.Fatalf("step %d: up %v/%v nextup %d/%d nextchange %d/%d", i,
					inc.Up(i), ref.Up(i), inc.NextUp(i), ref.NextUp(i), inc.NextChange(i), ref.NextChange(i))
			}
		}
	})
}
