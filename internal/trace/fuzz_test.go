package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV exercises the CSV decoder against arbitrary inputs: it
// must never panic, and any accepted input must round-trip.
func FuzzReadCSV(f *testing.F) {
	var seed bytes.Buffer
	_ = sampleSet().WriteCSV(&seed)
	f.Add(seed.String())
	f.Add("time,zone,price\n0,a,0.3\n")
	f.Add("time,zone,price\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, in string) {
		set, err := ReadCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := set.Validate(); err != nil {
			t.Fatalf("ReadCSV accepted an invalid set: %v", err)
		}
		var buf bytes.Buffer
		if err := set.WriteCSV(&buf); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if again.NumZones() != set.NumZones() || again.Duration() != set.Duration() {
			t.Fatalf("round trip changed shape")
		}
	})
}

// FuzzReadJSON exercises the JSON decoder similarly.
func FuzzReadJSON(f *testing.F) {
	var seed bytes.Buffer
	_ = sampleSet().WriteJSON(&seed)
	f.Add(seed.String())
	f.Add(`{"series":[{"zone":"z","epoch":0,"step":300,"prices":[0.3]}]}`)
	f.Add(`{}`)
	f.Fuzz(func(t *testing.T, in string) {
		set, err := ReadJSON(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := set.Validate(); err != nil {
			t.Fatalf("ReadJSON accepted an invalid set: %v", err)
		}
	})
}
