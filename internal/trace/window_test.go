package trace

import "testing"

func longSet(samples int) *Set {
	prices := make([]float64, samples)
	for i := range prices {
		prices[i] = 0.3 + float64(i%7)*0.01
	}
	return MustNewSet(NewSeries("a", 0, prices))
}

func TestWindowsTiling(t *testing.T) {
	set := longSet(1000) // 1000*300s
	runLen := int64(100 * 300)
	histLen := int64(50 * 300)
	ws := set.Windows(10, runLen, histLen)
	if len(ws) != 10 {
		t.Fatalf("got %d windows, want 10", len(ws))
	}
	for i, w := range ws {
		if w.Index != i {
			t.Fatalf("window %d has index %d", i, w.Index)
		}
		if w.Run.Duration() != runLen {
			t.Fatalf("window %d run duration = %d, want %d", i, w.Run.Duration(), runLen)
		}
		if w.History.End() != w.Run.Start() {
			t.Fatalf("window %d history ends at %d, run starts at %d", i, w.History.End(), w.Run.Start())
		}
		if w.History.Duration() > histLen {
			t.Fatalf("window %d history too long: %d", i, w.History.Duration())
		}
	}
	// First window starts at trace start; last ends at trace end.
	if ws[0].Run.Start() != set.Start() {
		t.Fatalf("first window starts at %d", ws[0].Run.Start())
	}
	if ws[len(ws)-1].Run.End() != set.End() {
		t.Fatalf("last window ends at %d, want %d", ws[len(ws)-1].Run.End(), set.End())
	}
	// Consecutive windows overlap (10 windows of 100 samples over 1000).
	if ws[1].Run.Start() >= ws[0].Run.End() {
		t.Log("windows do not overlap; acceptable for this tiling but unexpected")
	}
}

func TestWindowsDegenerate(t *testing.T) {
	set := longSet(10)
	if ws := set.Windows(0, 300, 0); ws != nil {
		t.Fatal("count=0 should produce nil")
	}
	if ws := set.Windows(5, 0, 0); ws != nil {
		t.Fatal("runLength=0 should produce nil")
	}
	if ws := set.Windows(5, set.Duration()+300, 0); ws != nil {
		t.Fatal("too-long run should produce nil")
	}
	ws := set.Windows(1, set.Duration(), 0)
	if len(ws) != 1 || ws[0].Run.Duration() != set.Duration() {
		t.Fatalf("single full window wrong: %+v", ws)
	}
	if ws[0].History.Duration() != 0 {
		t.Fatalf("expected empty history, got %d", ws[0].History.Duration())
	}
}

func TestWindowsOverlapCoverage(t *testing.T) {
	// 80 windows as in the paper: every start offset aligned to the grid.
	set := longSet(2000)
	ws := set.Windows(80, int64(400*300), int64(100*300))
	if len(ws) != 80 {
		t.Fatalf("got %d windows", len(ws))
	}
	for _, w := range ws {
		if (w.Run.Start()-set.Start())%set.Step() != 0 {
			t.Fatalf("window %d start %d not grid-aligned", w.Index, w.Run.Start())
		}
	}
}
