package trace

// Window extraction for the experiment harness. The paper (§5) runs 80
// experiments over "partially overlapping chunks" of each volatility
// window; Windows produces exactly that tiling.

// Window is one experiment chunk cut from a longer trace, together with
// the history that precedes it (used to bootstrap the Markov model and
// the Adaptive policy, which the paper primes with 2 days of history).
type Window struct {
	// Index is the position of this window in the tiling.
	Index int
	// Run is the trace visible to the experiment, starting at the
	// experiment start time.
	Run *Set
	// History is the trace preceding Run (may span zero seconds when
	// the window starts at the head of the parent trace).
	History *Set
}

// Windows cuts count windows of runLength seconds from the set, spaced
// evenly so that they partially overlap when count*runLength exceeds the
// available span. Each window carries up to historyLength seconds of
// preceding trace. The final window always ends at the end of the parent
// trace. It returns fewer windows when the trace is too short to hold
// even one.
func (t *Set) Windows(count int, runLength, historyLength int64) []Window {
	if count <= 0 || runLength <= 0 {
		return nil
	}
	total := t.Duration()
	if total < runLength {
		return nil
	}
	step := t.Step()
	span := total - runLength // span of possible start offsets
	var out []Window
	for i := 0; i < count; i++ {
		var off int64
		if count == 1 {
			off = 0
		} else {
			off = span * int64(i) / int64(count-1)
		}
		off = off / step * step // align to sampling grid
		start := t.Start() + off
		histStart := start - historyLength
		if histStart < t.Start() {
			histStart = t.Start()
		}
		out = append(out, Window{
			Index:   i,
			Run:     t.Slice(start, start+runLength),
			History: t.Slice(histStart, start),
		})
	}
	return out
}
