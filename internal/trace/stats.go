package trace

import (
	"math"
	"sort"
)

// Summary holds descriptive statistics of one price series, matching the
// quantities the paper reports when characterising its low- and
// high-volatility windows (§5): mean, variance, extremes and movement
// counts.
type Summary struct {
	Zone     string
	Samples  int
	Mean     float64
	Variance float64 // population variance, as the paper quotes ("variance of less than 0.01")
	Stddev   float64
	Min      float64
	Max      float64
	Median   float64
	Changes  int // number of price movements
	// Spikes counts samples strictly above SpikeThreshold.
	Spikes         int
	SpikeThreshold float64
}

// DefaultSpikeThreshold marks prices the paper treats as spikes: CC2
// on-demand is $2.40/h and the paper reports occasional spot spikes up to
// $3.00 with a worst observed price of $20.02.
const DefaultSpikeThreshold = 2.40

// Summarize computes descriptive statistics for the series using
// DefaultSpikeThreshold.
func (s *Series) Summarize() Summary { return s.SummarizeWithThreshold(DefaultSpikeThreshold) }

// SummarizeWithThreshold computes descriptive statistics, counting spikes
// above the given threshold.
func (s *Series) SummarizeWithThreshold(spike float64) Summary {
	out := Summary{Zone: s.Zone, Samples: len(s.Prices), SpikeThreshold: spike}
	if len(s.Prices) == 0 {
		out.Min, out.Max, out.Mean, out.Median = math.NaN(), math.NaN(), math.NaN(), math.NaN()
		return out
	}
	out.Min, out.Max = s.Prices[0], s.Prices[0]
	var sum float64
	for _, p := range s.Prices {
		sum += p
		if p < out.Min {
			out.Min = p
		}
		if p > out.Max {
			out.Max = p
		}
		if p > spike {
			out.Spikes++
		}
	}
	n := float64(len(s.Prices))
	out.Mean = sum / n
	var ss float64
	for _, p := range s.Prices {
		d := p - out.Mean
		ss += d * d
	}
	out.Variance = ss / n
	out.Stddev = math.Sqrt(out.Variance)
	out.Changes = s.Changes()

	sorted := make([]float64, len(s.Prices))
	copy(sorted, s.Prices)
	sort.Float64s(sorted)
	out.Median = quantileSorted(sorted, 0.5)
	return out
}

// Quantile returns the q-quantile (0 <= q <= 1) of the series prices
// using linear interpolation between order statistics.
func (s *Series) Quantile(q float64) float64 {
	if len(s.Prices) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(s.Prices))
	copy(sorted, s.Prices)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Volatility classifies a window in the spirit of the paper's §5: a
// window is low-volatility when every zone's price variance stays below
// LowVarianceCutoff, high-volatility when any zone's variance exceeds
// HighVarianceCutoff, and moderate otherwise.
type Volatility int

// Volatility classes.
const (
	LowVolatility Volatility = iota
	ModerateVolatility
	HighVolatility
)

// Cutoffs taken from the paper's window characterisation: the March 2013
// low-volatility window has per-zone variance below 0.01; the January
// 2013 high-volatility window has variance up to 2.02.
const (
	LowVarianceCutoff  = 0.01
	HighVarianceCutoff = 0.25
)

// String implements fmt.Stringer.
func (v Volatility) String() string {
	switch v {
	case LowVolatility:
		return "low"
	case ModerateVolatility:
		return "moderate"
	case HighVolatility:
		return "high"
	default:
		return "unknown"
	}
}

// ClassifyVolatility classifies the set's window.
func (t *Set) ClassifyVolatility() Volatility {
	maxVar := 0.0
	for _, s := range t.Series {
		v := s.Summarize().Variance
		if v > maxVar {
			maxVar = v
		}
	}
	switch {
	case maxVar < LowVarianceCutoff:
		return LowVolatility
	case maxVar > HighVarianceCutoff:
		return HighVolatility
	default:
		return ModerateVolatility
	}
}

// MinPrice returns the minimum price over all zones in the set.
func (t *Set) MinPrice() float64 {
	min := math.Inf(1)
	for _, s := range t.Series {
		if sum := s.Summarize(); sum.Min < min {
			min = sum.Min
		}
	}
	return min
}

// MaxPrice returns the maximum price over all zones in the set.
func (t *Set) MaxPrice() float64 {
	max := math.Inf(-1)
	for _, s := range t.Series {
		if sum := s.Summarize(); sum.Max > max {
			max = sum.Max
		}
	}
	return max
}
