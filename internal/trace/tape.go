package trace

import (
	"fmt"
	"math"
)

// Tape is an append-only columnar price store for streaming
// consumption: the price feed delivers one sample row per tick, the
// tape owns the per-zone columns it accretes them into, and the
// evaluation layers read the accumulated history through the usual Set
// and Columns views. It is the mutable counterpart of a Set — a Set
// slices windows off a fixed history, a Tape grows one tick at a time —
// and exists so the streaming evaluator can delta-update availability
// indexes and resident replay state instead of rebuilding them per
// request.
//
// A Tape is not safe for concurrent use; the streaming pipeline owns it
// from a single tick goroutine.
type Tape struct {
	zones []string
	start int64
	step  int64
	cols  [][]float64

	series []*Series
	set    Set
}

// NewTape returns an empty tape for the zones, with the first sample to
// arrive at absolute time start and subsequent samples every step
// seconds.
func NewTape(zones []string, start, step int64) (*Tape, error) {
	if len(zones) == 0 {
		return nil, fmt.Errorf("trace: tape needs at least one zone")
	}
	if step <= 0 {
		return nil, fmt.Errorf("trace: tape needs a positive step, got %d", step)
	}
	t := &Tape{
		zones:  append([]string(nil), zones...),
		start:  start,
		step:   step,
		cols:   make([][]float64, len(zones)),
		series: make([]*Series, len(zones)),
	}
	for i, z := range zones {
		t.series[i] = &Series{Zone: z, Epoch: start, Step: step}
	}
	t.set.Series = t.series
	return t, nil
}

// Zones returns the zone names in column order.
func (t *Tape) Zones() []string { return t.zones }

// Len returns the number of appended ticks.
func (t *Tape) Len() int { return len(t.cols[0]) }

// Start returns the absolute time of the first sample.
func (t *Tape) Start() int64 { return t.start }

// Step returns the sampling interval in seconds.
func (t *Tape) Step() int64 { return t.step }

// End returns the absolute time just past the last sample.
func (t *Tape) End() int64 { return t.start + int64(t.Len())*t.step }

// Append accretes one price row (one sample per zone, column order),
// rejecting rows a trace.Validate would reject — non-finite or negative
// prices — so everything downstream keeps the Set invariants.
func (t *Tape) Append(prices []float64) error {
	if len(prices) != len(t.cols) {
		return fmt.Errorf("trace: tape row has %d prices for %d zones", len(prices), len(t.cols))
	}
	for i, p := range prices {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			return fmt.Errorf("trace: tape row price %d (%q) is not finite", i, t.zones[i])
		}
		if p < 0 {
			return fmt.Errorf("trace: tape row price %d (%q) is negative (%g)", i, t.zones[i], p)
		}
	}
	for i, p := range prices {
		t.cols[i] = append(t.cols[i], p)
	}
	return nil
}

// Set returns the tape's current contents as an aligned Set aliasing
// the tape's storage. The view is only valid until the next Append;
// consumers that outlive a tick must Clone it.
func (t *Tape) Set() *Set {
	for i := range t.series {
		t.series[i].Prices = t.cols[i]
	}
	return &t.set
}

// Tail returns a new tape holding only the trailing keep ticks (deep
// copy, epoch advanced accordingly) — the compaction step a bounded
// streaming window uses when the accumulated history outgrows its
// retention budget. keep larger than Len copies everything.
func (t *Tape) Tail(keep int) *Tape {
	n := t.Len()
	if keep > n {
		keep = n
	}
	drop := n - keep
	nt, err := NewTape(t.zones, t.start+int64(drop)*t.step, t.step)
	if err != nil {
		panic(err) // t itself was constructed through the same checks
	}
	for i := range t.cols {
		nt.cols[i] = append([]float64(nil), t.cols[i][drop:]...)
	}
	return nt
}
