package sim

import (
	"math"
	"testing"

	"repro/internal/market"
	"repro/internal/trace"
)

// switcher changes the configuration at the first hour boundary.
type switcher struct {
	initial RunSpec
	next    RunSpec
	fired   bool
}

func (s *switcher) Name() string { return "switcher" }
func (s *switcher) Begin(*Env) RunSpec {
	return s.initial
}
func (s *switcher) Reconsider(env *Env, events []Event) (RunSpec, bool) {
	if s.fired {
		return RunSpec{}, false
	}
	for _, ev := range events {
		if ev.Kind == HourBoundary {
			s.fired = true
			return s.next, true
		}
	}
	return RunSpec{}, false
}

func multiZoneSet(price float64, n int) *trace.Set {
	prices := make([]float64, n)
	for i := range prices {
		prices[i] = price
	}
	return trace.MustNewSet(
		trace.NewSeries("a", 0, prices),
		trace.NewSeries("b", 0, append([]float64(nil), prices...)),
		trace.NewSeries("c", 0, append([]float64(nil), prices...)),
	)
}

func TestSpecSwitchZoneChange(t *testing.T) {
	set := multiZoneSet(0.30, 12*12)
	cfg := baseConfig(set)
	cfg.Deadline = 11 * trace.Hour
	pol := neverCheckpoint{}
	strat := &switcher{
		initial: RunSpec{Bid: 0.81, Zones: []int{0}, Policy: pol},
		next:    RunSpec{Bid: 0.81, Zones: []int{1}, Policy: pol},
	}
	cfg.RecordTimeline = true
	res, err := Run(cfg, strat)
	if err != nil {
		t.Fatal(err)
	}
	if res.SpecSwitches != 1 {
		t.Fatalf("switches = %d", res.SpecSwitches)
	}
	// The switch needs a protective checkpoint (uncommitted progress on
	// zone 0), then zone 0 is user-terminated and zone 1 starts from
	// the checkpoint.
	if res.Checkpoints == 0 {
		t.Fatal("no protective checkpoint before the switch")
	}
	if res.UserReleases != 1 {
		t.Fatalf("user releases = %d, want 1 (zone change)", res.UserReleases)
	}
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1 (zone 1 restores the checkpoint)", res.Restarts)
	}
	if !res.DeadlineMet {
		t.Fatal("deadline missed after switch")
	}
	// Cost: zone 0's partial second hour is charged (user-terminated);
	// the run is longer than 4 h by the overheads but still cheap.
	if res.Cost > 3 {
		t.Fatalf("cost = %g", res.Cost)
	}
	sawSwitch := false
	for _, ev := range res.Timeline {
		if ev.Kind == TLSwitchSpec {
			sawSwitch = true
		}
	}
	if !sawSwitch {
		t.Fatal("switch not recorded in timeline")
	}
}

func TestSpecSwitchBidChangeRestartsInstance(t *testing.T) {
	set := multiZoneSet(0.30, 12*12)
	cfg := baseConfig(set)
	cfg.Deadline = 11 * trace.Hour
	pol := neverCheckpoint{}
	strat := &switcher{
		initial: RunSpec{Bid: 0.81, Zones: []int{0}, Policy: pol},
		next:    RunSpec{Bid: 1.27, Zones: []int{0}, Policy: pol},
	}
	res, err := Run(cfg, strat)
	if err != nil {
		t.Fatal(err)
	}
	// EC2 cannot change a bid in place: the instance is terminated and
	// re-requested at the new bid.
	if res.UserReleases != 1 || res.SpecSwitches != 1 {
		t.Fatalf("releases=%d switches=%d", res.UserReleases, res.SpecSwitches)
	}
	if !res.Completed || !res.DeadlineMet {
		t.Fatalf("run failed: %+v", res)
	}
}

func TestSpecSwitchSamePolicyNoOp(t *testing.T) {
	set := multiZoneSet(0.30, 12*12)
	cfg := baseConfig(set)
	cfg.Deadline = 11 * trace.Hour
	pol := neverCheckpoint{}
	spec := RunSpec{Bid: 0.81, Zones: []int{0}, Policy: pol}
	strat := &switcher{initial: spec, next: spec}
	res, err := Run(cfg, strat)
	if err != nil {
		t.Fatal(err)
	}
	// Equal specs never trigger a switch.
	if res.SpecSwitches != 0 || res.UserReleases != 0 {
		t.Fatalf("no-op switch caused churn: %+v", res)
	}
}

// releasingPolicy releases the instance after an hour of uptime and
// refuses to start while the release flag is set.
type releasingPolicy struct {
	neverCheckpoint
	blockStarts bool
}

func (p *releasingPolicy) ShouldRelease(env *Env, zone int) bool {
	for _, z := range env.UpZones() {
		if z.Index == zone && env.Now-z.UpSince >= trace.Hour {
			return true
		}
	}
	return false
}

func (p *releasingPolicy) MayStart(env *Env, zone int) bool { return !p.blockStarts }

func TestReleaserHook(t *testing.T) {
	set := multiZoneSet(0.30, 12*20)
	cfg := baseConfig(set)
	cfg.Deadline = 16 * trace.Hour
	cfg.Work = 2 * trace.Hour
	pol := &releasingPolicy{}
	res, err := Run(cfg, static{RunSpec{Bid: 0.81, Zones: []int{0}, Policy: pol}})
	if err != nil {
		t.Fatal(err)
	}
	// The instance is released after each hour and restarted; progress
	// is lost each time (never checkpointed), but releases keep paying
	// full hours, so it eventually finishes... it cannot: each cycle
	// loses everything. The deadline guard must save it.
	if res.UserReleases == 0 {
		t.Fatal("releaser never fired")
	}
	if !res.DeadlineMet {
		t.Fatal("deadline missed")
	}
	if !res.SwitchedOnDemand {
		t.Fatal("expected the guard to finish a self-sabotaging policy")
	}
}

func TestAdmissionHook(t *testing.T) {
	set := multiZoneSet(0.30, 12*12)
	cfg := baseConfig(set)
	cfg.Deadline = 11 * trace.Hour
	pol := &releasingPolicy{blockStarts: true}
	res, err := Run(cfg, static{RunSpec{Bid: 0.81, Zones: []int{0}, Policy: pol}})
	if err != nil {
		t.Fatal(err)
	}
	// Admission always refuses: the zone never starts, the guard runs
	// the whole job on-demand.
	if res.Restarts != 0 || res.SpotCost != 0 {
		t.Fatalf("blocked admission still ran: %+v", res)
	}
	if !res.SwitchedOnDemand || !res.DeadlineMet {
		t.Fatalf("guard did not save the run: %+v", res)
	}
}

func TestEnvAccessors(t *testing.T) {
	set := multiZoneSet(0.30, 12*12)
	cfg := baseConfig(set)
	cfg.Deadline = 11 * trace.Hour
	m, err := NewMachine(cfg, static{RunSpec{Bid: 0.81, Zones: []int{0, 1}, Policy: neverCheckpoint{}}})
	if err != nil {
		t.Fatal(err)
	}
	env := m.Env()
	if env.Work() != cfg.Work || env.CheckpointCost() != 300 || env.RestartCost() != 300 {
		t.Fatal("config accessors wrong")
	}
	if env.Deadline() != set.Start()+cfg.Deadline {
		t.Fatalf("deadline = %d", env.Deadline())
	}
	if env.Rand() == nil {
		t.Fatal("nil rng")
	}
	if m.Now() != set.Start() {
		t.Fatalf("machine now = %d", m.Now())
	}
	// Step a few intervals and check time accounting.
	for i := 0; i < 3; i++ {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if env.ElapsedTime() != 3*set.Step() {
		t.Fatalf("elapsed = %d", env.ElapsedTime())
	}
	if env.RemainingTime() != cfg.Deadline-3*set.Step() {
		t.Fatalf("remaining = %d", env.RemainingTime())
	}
	if env.RemainingWork() != cfg.Work {
		t.Fatalf("remaining work = %d (nothing committed yet)", env.RemainingWork())
	}
	if got := env.UncommittedProgress(); got <= 0 {
		t.Fatalf("uncommitted = %d after 3 steps up", got)
	}
	if lead := env.Leader(); lead == nil || lead.Progress != env.LeaderProgress() {
		t.Fatal("leader accessors inconsistent")
	}
	if env.CheckpointInProgress() {
		t.Fatal("phantom checkpoint")
	}
	if env.Cost() < 0 {
		t.Fatal("negative cost")
	}
	if math.IsNaN(env.MinObservedPrice(0)) {
		t.Fatal("min observed price NaN")
	}
	if env.RisingEdge(0) {
		t.Fatal("rising edge on a flat trace")
	}
}

func TestIterationGranularCheckpoints(t *testing.T) {
	// With 25-minute iterations, a checkpoint at the first hour can only
	// commit two completed iterations (50 min), not the full 60 min.
	set := multiZoneSet(0.30, 12*12)
	cfg := baseConfig(set)
	cfg.Deadline = 11 * trace.Hour
	cfg.IterationSeconds = 1500
	pol := &hourly{interval: trace.Hour}
	m, err := NewMachine(cfg, static{RunSpec{Bid: 0.81, Zones: []int{0}, Policy: pol}})
	if err != nil {
		t.Fatal(err)
	}
	env := m.Env()
	for !m.Done() && env.Committed == 0 {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if env.Committed%1500 != 0 {
		t.Fatalf("committed %d is not iteration-aligned", env.Committed)
	}
	if env.Committed == 0 || env.Committed > trace.Hour {
		t.Fatalf("committed = %d", env.Committed)
	}
	// Drain to completion: the run still finishes and meets the deadline.
	for !m.Done() {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if !m.Result().DeadlineMet {
		t.Fatal("deadline missed with iteration granularity")
	}
}

func TestIterationValidation(t *testing.T) {
	cfg := baseConfig(multiZoneSet(0.3, 12*12))
	cfg.IterationSeconds = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("accepted negative iteration length")
	}
}

func TestTimelineKindStrings(t *testing.T) {
	kinds := []TimelineKind{TLZoneUp, TLZoneDown, TLZoneWaiting, TLZonePending,
		TLCheckpointStart, TLCheckpointDone, TLCheckpointAborted, TLRestart,
		TLSwitchSpec, TLOnDemand, TLComplete}
	for _, k := range kinds {
		if k.String() == "unknown" {
			t.Fatalf("kind %d unnamed", k)
		}
	}
	if TimelineKind(99).String() != "unknown" {
		t.Fatal("unknown kind misnamed")
	}
}

func TestMeterAccessors(t *testing.T) {
	m := market.OpenSpotMeter("z", 100, 0.5)
	if m.HourStart() != 100 || m.HourRate() != 0.5 || m.Closed() {
		t.Fatal("meter accessors wrong")
	}
	var l market.Ledger
	m.Close(100, market.ByUser, nil, &l)
	if !m.Closed() {
		t.Fatal("meter not closed")
	}
}
