package sim

// This file implements machine pooling: the Adaptive scheme's
// permutation evaluator replays thousands of short estimation windows
// per experiment, and building a fresh Machine for each replay
// dominated its allocation profile. A sync.Pool recycles machines —
// zone slices, billing ledgers, event scratch buffers and RNGs — across
// replays; Machine.Reset guarantees a recycled machine reproduces a
// fresh one bit-for-bit.

import "sync"

// machinePool recycles Machines across runs. Pooled machines keep their
// internal buffers (zone state, ledger entries, event scratch, RNG) so
// a Reset-and-rerun cycle is allocation-free in the steady state.
var machinePool = sync.Pool{New: func() any { return new(Machine) }}

// AcquireMachine returns a pooled machine reset to run cfg under strat.
// It is safe for concurrent use; each caller owns the returned machine
// exclusively until ReleaseMachine. The machine's Result and Env alias
// its internal buffers, so consume (or clone) them before releasing.
func AcquireMachine(cfg Config, strat Strategy) (*Machine, error) {
	m := machinePool.Get().(*Machine)
	if err := m.Reset(cfg, strat); err != nil {
		machinePool.Put(m)
		return nil, err
	}
	return m, nil
}

// ReleaseMachine returns a machine obtained from AcquireMachine to the
// pool. The machine, its Env and its Result must not be used afterwards.
func ReleaseMachine(m *Machine) {
	if m == nil {
		return
	}
	machinePool.Put(m)
}

// RunPooled executes one run on a pooled machine and hands the live
// result to consume before the machine returns to the pool. The
// *Result (including its Ledger and Timeline) is only valid inside
// consume; copy anything that must outlive the call. This is the
// allocation-lean form of Run for callers that only extract scalars,
// such as the Adaptive permutation evaluator.
func RunPooled(cfg Config, strat Strategy, consume func(*Result)) error {
	m, err := AcquireMachine(cfg, strat)
	if err != nil {
		return err
	}
	defer ReleaseMachine(m)
	res, err := m.runToCompletion()
	if err != nil {
		return err
	}
	consume(res)
	return nil
}
