package sim

import (
	"reflect"
	"testing"

	"repro/internal/trace"
)

// volatileTwoZoneSet builds a two-zone trace whose prices repeatedly
// cross a $0.80 bid, so runs exercise kills, waits, restarts, billing
// boundaries and the delay model's random stream.
func volatileTwoZoneSet() *trace.Set {
	n := 16 * 12 // 16 hours of 5-minute steps
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = 0.40
		if i%40 >= 30 {
			a[i] = 1.20 // hour-scale out-of-bid excursions
		}
		b[i] = 0.55
		if (i+17)%56 >= 44 {
			b[i] = 2.00
		}
	}
	return trace.MustNewSet(trace.NewSeries("z0", 0, a), trace.NewSeries("z1", 0, b))
}

func goldenConfig() Config {
	return Config{
		Trace:          volatileTwoZoneSet(),
		Work:           4 * trace.Hour,
		Deadline:       14 * trace.Hour,
		CheckpointCost: 300,
		RestartCost:    300,
		Seed:           99, // default delay model: the RNG stream matters
		RecordTimeline: true,
	}
}

func goldenStrategy() Strategy {
	return static{spec: RunSpec{Bid: 0.80, Zones: []int{0, 1}, Policy: &hourly{interval: trace.Hour}}}
}

// cloneResult deep-copies the fields of a pooled result that alias
// machine buffers, so it stays valid after the machine is reused.
func cloneResult(r *Result) *Result {
	c := *r
	c.Ledger = r.Ledger.Clone()
	c.Timeline = append([]TimelineEvent(nil), r.Timeline...)
	return &c
}

// TestResetReproducesFreshRun is the golden determinism contract of the
// reusable engine: a pooled machine, a reset machine that already ran a
// different configuration, and the plain Run entry point must produce
// bit-identical results for the same seed.
func TestResetReproducesFreshRun(t *testing.T) {
	cfg := goldenConfig()

	fresh, err := Run(cfg, goldenStrategy())
	if err != nil {
		t.Fatal(err)
	}
	if !fresh.Completed {
		t.Fatalf("golden run did not complete: %+v", fresh)
	}
	if fresh.ProviderKills == 0 || fresh.Checkpoints == 0 {
		t.Fatalf("golden run too tame to validate reuse (kills=%d checkpoints=%d)",
			fresh.ProviderKills, fresh.Checkpoints)
	}

	// A pooled machine via the one-shot helper.
	var pooled *Result
	if err := RunPooled(cfg, goldenStrategy(), func(r *Result) { pooled = cloneResult(r) }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, pooled) {
		t.Errorf("pooled run diverged from fresh run:\nfresh:  %+v\npooled: %+v", fresh, pooled)
	}

	// A machine that first ran a different config, then was Reset.
	other := cfg
	other.Seed = 7
	other.Work = 2 * trace.Hour
	m, err := AcquireMachine(other, goldenStrategy())
	if err != nil {
		t.Fatal(err)
	}
	defer ReleaseMachine(m)
	if _, err := m.runToCompletion(); err != nil {
		t.Fatal(err)
	}
	if err := m.Reset(cfg, goldenStrategy()); err != nil {
		t.Fatal(err)
	}
	reused, err := m.runToCompletion()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, cloneResult(reused)) {
		t.Errorf("reset-after-use run diverged from fresh run:\nfresh:  %+v\nreused: %+v", fresh, reused)
	}
}

// TestResetReproducesEstimationRun covers the guard-disabled estimation
// path (FinishEstimation) that the Adaptive evaluator exercises.
func TestResetReproducesEstimationRun(t *testing.T) {
	cfg := goldenConfig()
	cfg.Work = 1 << 40
	cfg.Deadline = 1 << 40
	cfg.DisableDeadlineGuard = true

	fresh, err := Run(cfg, goldenStrategy())
	if err != nil {
		t.Fatal(err)
	}
	var pooled *Result
	if err := RunPooled(cfg, goldenStrategy(), func(r *Result) { pooled = cloneResult(r) }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, pooled) {
		t.Errorf("pooled estimation run diverged:\nfresh:  %+v\npooled: %+v", fresh, pooled)
	}
	if fresh.MaxProgress == 0 {
		t.Fatal("estimation run made no progress; scenario too tame")
	}
}

// TestConcurrentPooledRuns drives many pooled machines from concurrent
// goroutines (the evaluator's access pattern); under -race this checks
// the pool hand-off, and each result must still match the golden run.
func TestConcurrentPooledRuns(t *testing.T) {
	cfg := goldenConfig()
	fresh, err := Run(cfg, goldenStrategy())
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	errs := make([]error, workers)
	costs := make([]float64, workers)
	done := make(chan int, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- w }()
			for rep := 0; rep < 4; rep++ {
				errs[w] = RunPooled(cfg, goldenStrategy(), func(r *Result) { costs[w] = r.Cost })
				if errs[w] != nil {
					return
				}
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if costs[w] != fresh.Cost {
			t.Errorf("worker %d cost %g != fresh %g", w, costs[w], fresh.Cost)
		}
	}
}
