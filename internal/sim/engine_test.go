package sim

import (
	"math"
	"testing"

	"repro/internal/market"
	"repro/internal/trace"
)

// neverCheckpoint is a policy that never checkpoints.
type neverCheckpoint struct{}

func (neverCheckpoint) Name() string                  { return "never" }
func (neverCheckpoint) Reset(*Env)                    {}
func (neverCheckpoint) CheckpointCondition(*Env) bool { return false }
func (neverCheckpoint) ScheduleNextCheckpoint(*Env)   {}

// hourly checkpoints every interval seconds of wall-clock time.
type hourly struct {
	interval int64
	ts       int64
}

func (h *hourly) Name() string { return "hourly" }
func (h *hourly) Reset(env *Env) {
	h.ts = env.Now + h.interval
}
func (h *hourly) CheckpointCondition(env *Env) bool { return env.Now >= h.ts }
func (h *hourly) ScheduleNextCheckpoint(env *Env)   { h.ts = env.Now + h.interval }

// static is a minimal fixed strategy.
type static struct {
	spec RunSpec
}

func (s static) Name() string       { return "static" }
func (s static) Begin(*Env) RunSpec { return s.spec }
func (s static) Reconsider(*Env, []Event) (RunSpec, bool) {
	return RunSpec{}, false
}

// constSet builds a single-zone constant-price trace of n samples.
func constSet(price float64, n int) *trace.Set {
	prices := make([]float64, n)
	for i := range prices {
		prices[i] = price
	}
	return trace.MustNewSet(trace.NewSeries("z0", 0, prices))
}

// stepSet builds a single-zone trace from (price, samples) pairs.
func stepSet(segments ...[2]float64) *trace.Set {
	var prices []float64
	for _, seg := range segments {
		for i := 0; i < int(seg[1]); i++ {
			prices = append(prices, seg[0])
		}
	}
	return trace.MustNewSet(trace.NewSeries("z0", 0, prices))
}

func baseConfig(set *trace.Set) Config {
	return Config{
		Trace:          set,
		Work:           4 * trace.Hour,
		Deadline:       8 * trace.Hour,
		CheckpointCost: 300,
		RestartCost:    300,
		Delay:          market.FixedDelay(0),
		Seed:           1,
	}
}

func TestUninterruptedSpotRun(t *testing.T) {
	cfg := baseConfig(constSet(0.30, 12*10)) // 10 hours of $0.30
	// Keep the deadline far enough away that the engine's pre-guard
	// insurance checkpoint never triggers during the 4 h run.
	cfg.Deadline = 12 * trace.Hour
	res, err := Run(cfg, static{RunSpec{Bid: 0.50, Zones: []int{0}, Policy: neverCheckpoint{}}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || !res.DeadlineMet {
		t.Fatalf("run did not complete: %+v", res)
	}
	// Started at t=0 with zero delay and no restore: finishes at exactly
	// 4 h; exactly 4 billing hours at $0.30.
	if res.FinishTime != 4*trace.Hour {
		t.Fatalf("finish = %d, want %d", res.FinishTime, 4*trace.Hour)
	}
	if math.Abs(res.Cost-4*0.30) > 1e-9 {
		t.Fatalf("cost = %g, want %g", res.Cost, 4*0.30)
	}
	if res.SwitchedOnDemand || res.ProviderKills != 0 || res.Restarts != 0 {
		t.Fatalf("unexpected events: %+v", res)
	}
}

func TestPureOnDemandBaseline(t *testing.T) {
	cfg := baseConfig(constSet(0.30, 12*10))
	cfg.Work = 4*trace.Hour + 100 // partial final hour
	res, err := Run(cfg, static{RunSpec{}})
	if err != nil {
		t.Fatal(err)
	}
	// ceil(4h+100s) = 5 started hours at $2.40.
	want := 5 * market.OnDemandRate
	if math.Abs(res.Cost-want) > 1e-9 {
		t.Fatalf("on-demand cost = %g, want %g", res.Cost, want)
	}
	if !res.Completed || !res.DeadlineMet || !res.SwitchedOnDemand {
		t.Fatalf("baseline result: %+v", res)
	}
	if res.OnDemandCost != res.Cost || res.SpotCost != 0 {
		t.Fatalf("cost split: %+v", res)
	}
}

func TestDeadlineGuardFiresWhenNeverUp(t *testing.T) {
	// Price always above the bid: the job can only finish on-demand.
	cfg := baseConfig(constSet(1.00, 12*10))
	res, err := Run(cfg, static{RunSpec{Bid: 0.50, Zones: []int{0}, Policy: neverCheckpoint{}}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.SwitchedOnDemand {
		t.Fatal("guard did not fire")
	}
	if !res.Completed || !res.DeadlineMet {
		t.Fatalf("deadline missed: %+v", res)
	}
	// No checkpoint, no restart: pure work on-demand → 4 hours.
	if math.Abs(res.Cost-4*market.OnDemandRate) > 1e-9 {
		t.Fatalf("cost = %g, want %g", res.Cost, 4*market.OnDemandRate)
	}
	// The guard fires as late as possible: finish must be within the
	// deadline but after deadline - work - 2 steps.
	if res.FinishTime > cfg.Deadline || res.FinishTime < cfg.Deadline-2*cfg.Trace.Step() {
		t.Fatalf("finish = %d, deadline %d", res.FinishTime, cfg.Deadline)
	}
}

func TestProviderKillLosesProgressAndIsFree(t *testing.T) {
	// Up for 1h30m, killed, down 1h, up again. No checkpoints: all
	// progress lost at the kill.
	set := stepSet([2]float64{0.30, 18}, [2]float64{1.0, 12}, [2]float64{0.30, 12 * 10})
	cfg := baseConfig(set)
	cfg.Deadline = 12 * trace.Hour
	res, err := Run(cfg, static{RunSpec{Bid: 0.50, Zones: []int{0}, Policy: neverCheckpoint{}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.ProviderKills != 1 {
		t.Fatalf("kills = %d", res.ProviderKills)
	}
	if !res.Completed || !res.DeadlineMet {
		t.Fatalf("did not complete: %+v", res)
	}
	// First up period: [0, 5400): one full hour charged at 0.30; the
	// partial second hour is free (provider kill). Second up period
	// starts at 2.5 h and runs 4 h of work to 6.5 h → 4 full hours.
	// Total: 5 × 0.30.
	if math.Abs(res.Cost-5*0.30) > 1e-9 {
		t.Fatalf("cost = %g, want %g (ledger %+v)", res.Cost, 5*0.30, res.Ledger.Entries)
	}
	if res.FinishTime != int64(6.5*float64(trace.Hour)) {
		t.Fatalf("finish = %d, want %d", res.FinishTime, int64(6.5*float64(trace.Hour)))
	}
}

func TestCheckpointPreservesProgress(t *testing.T) {
	// Same price pattern, but hourly checkpoints: the kill at 1.5 h
	// only loses the progress since the checkpoint at 1 h.
	set := stepSet([2]float64{0.30, 18}, [2]float64{1.0, 12}, [2]float64{0.30, 12 * 10})
	cfg := baseConfig(set)
	cfg.Deadline = 9 * trace.Hour
	pol := &hourly{interval: trace.Hour}
	res, err := Run(cfg, static{RunSpec{Bid: 0.50, Zones: []int{0}, Policy: pol}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Checkpoints == 0 || res.Restarts != 1 {
		t.Fatalf("checkpoints=%d restarts=%d", res.Checkpoints, res.Restarts)
	}
	// The checkpoint at 1 h commits ~1 h of progress (minus nothing: the
	// checkpoint takes 300 s during which no progress happens). After
	// the kill at 1.5 h, the zone restarts at 2.5 h from ≈ 1 h progress
	// plus restart cost. It must finish earlier than the no-checkpoint
	// run minus ~45 minutes.
	noCkpt := int64(6.5 * float64(trace.Hour))
	if res.FinishTime >= noCkpt {
		t.Fatalf("finish = %d, not earlier than %d", res.FinishTime, noCkpt)
	}
	if !res.DeadlineMet {
		t.Fatal("deadline missed")
	}
}

func TestTimeAttribution(t *testing.T) {
	// Up 1.5 h, killed (no checkpoints): 1.5 h of rework. After the
	// restart there is no checkpoint to restore, so overhead stays 0.
	set := stepSet([2]float64{0.30, 18}, [2]float64{1.0, 12}, [2]float64{0.30, 12 * 10})
	cfg := baseConfig(set)
	cfg.Deadline = 12 * trace.Hour
	res, err := Run(cfg, static{RunSpec{Bid: 0.50, Zones: []int{0}, Policy: neverCheckpoint{}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReworkSeconds != int64(1.5*float64(trace.Hour)) {
		t.Fatalf("rework = %d, want %d", res.ReworkSeconds, int64(1.5*float64(trace.Hour)))
	}
	if res.OverheadSeconds != 0 {
		t.Fatalf("overhead = %d, want 0", res.OverheadSeconds)
	}

	// Same market with hourly checkpoints: the kill only loses the
	// last partial hour, and overhead counts checkpoints + the restore.
	pol := &hourly{interval: trace.Hour}
	res2, err := Run(cfg, static{RunSpec{Bid: 0.50, Zones: []int{0}, Policy: pol}})
	if err != nil {
		t.Fatal(err)
	}
	if res2.ReworkSeconds >= res.ReworkSeconds {
		t.Fatalf("checkpointing rework %d not below no-checkpoint %d", res2.ReworkSeconds, res.ReworkSeconds)
	}
	wantOverhead := int64(res2.Checkpoints)*cfg.CheckpointCost + int64(res2.Restarts)*cfg.RestartCost
	if res2.OverheadSeconds != wantOverhead {
		t.Fatalf("overhead = %d, want %d", res2.OverheadSeconds, wantOverhead)
	}
}

func TestQueueDelayDelaysStart(t *testing.T) {
	cfg := baseConfig(constSet(0.30, 12*10))
	cfg.Deadline = 12 * trace.Hour
	cfg.Delay = market.FixedDelay(600)
	res, err := Run(cfg, static{RunSpec{Bid: 0.50, Zones: []int{0}, Policy: neverCheckpoint{}}})
	if err != nil {
		t.Fatal(err)
	}
	// Start delayed by 600 s: finish at 600 + 4 h (no restore cost on a
	// fresh start).
	if res.FinishTime != 600+4*trace.Hour {
		t.Fatalf("finish = %d, want %d", res.FinishTime, 600+4*trace.Hour)
	}
}

func TestRedundantZonesCostMore(t *testing.T) {
	prices := make([]float64, 12*10)
	for i := range prices {
		prices[i] = 0.30
	}
	set := trace.MustNewSet(
		trace.NewSeries("a", 0, prices),
		trace.NewSeries("b", 0, prices),
		trace.NewSeries("c", 0, prices),
	)
	cfg := baseConfig(set)
	cfg.Deadline = 12 * trace.Hour
	single, err := Run(cfg, static{RunSpec{Bid: 0.50, Zones: []int{0}, Policy: neverCheckpoint{}}})
	if err != nil {
		t.Fatal(err)
	}
	all, err := Run(cfg, static{RunSpec{Bid: 0.50, Zones: []int{0, 1, 2}, Policy: neverCheckpoint{}}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(all.Cost-3*single.Cost) > 1e-9 {
		t.Fatalf("redundant cost = %g, want %g", all.Cost, 3*single.Cost)
	}
}

func TestNodesMultiplier(t *testing.T) {
	cfg := baseConfig(constSet(0.30, 12*10))
	cfg.Deadline = 12 * trace.Hour
	cfg.Nodes = 8
	res, err := Run(cfg, static{RunSpec{Bid: 0.50, Zones: []int{0}, Policy: neverCheckpoint{}}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Cost-8*4*0.30) > 1e-9 {
		t.Fatalf("cost = %g, want %g", res.Cost, 8*4*0.30)
	}
}

func TestConfigValidation(t *testing.T) {
	good := baseConfig(constSet(0.3, 120))
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Work = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted zero work")
	}
	bad = good
	bad.Deadline = good.Work // no room for migration overhead
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted unguaranteeable deadline")
	}
	bad = good
	bad.Trace = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted nil trace")
	}
	bad = good
	bad.CheckpointCost = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted negative checkpoint cost")
	}
	bad = good
	bad.Nodes = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted negative nodes")
	}
}

func TestSpecValidation(t *testing.T) {
	cfg := baseConfig(constSet(0.3, 12*10))
	cases := []RunSpec{
		{Bid: 0.5, Zones: []int{5}, Policy: neverCheckpoint{}},    // out of range
		{Bid: 0.5, Zones: []int{0, 0}, Policy: neverCheckpoint{}}, // repeated
		{Bid: 0.5, Zones: []int{0}, Policy: nil},                  // no policy
		{Bid: 0, Zones: []int{0}, Policy: neverCheckpoint{}},      // no bid
	}
	for i, spec := range cases {
		if _, err := Run(cfg, static{spec}); err == nil {
			t.Errorf("case %d: Run accepted invalid spec", i)
		}
	}
}

func TestTraceTooShortForDeadline(t *testing.T) {
	cfg := baseConfig(constSet(1.0, 12)) // 1 hour of trace
	cfg.Work = 4 * trace.Hour
	cfg.Deadline = 8 * trace.Hour
	if _, err := Run(cfg, static{RunSpec{Bid: 0.5, Zones: []int{0}, Policy: neverCheckpoint{}}}); err == nil {
		t.Fatal("expected an error when the trace cannot cover the deadline")
	}
}

func TestTimelineRecording(t *testing.T) {
	cfg := baseConfig(constSet(0.30, 12*10))
	cfg.RecordTimeline = true
	res, err := Run(cfg, static{RunSpec{Bid: 0.50, Zones: []int{0}, Policy: neverCheckpoint{}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) == 0 {
		t.Fatal("no timeline recorded")
	}
	last := res.Timeline[len(res.Timeline)-1]
	if last.Kind != TLComplete {
		t.Fatalf("last event = %v", last.Kind)
	}
}

func TestInstanceStateString(t *testing.T) {
	states := map[InstanceState]string{Down: "down", Waiting: "waiting", Pending: "pending", Up: "up", InstanceState(9): "unknown"}
	for s, want := range states {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
	if ProviderKill.String() != "provider-kill" || HourBoundary.String() != "hour-boundary" || EventKind(7).String() != "unknown" {
		t.Error("EventKind.String mismatch")
	}
}

func TestRunSpecEqual(t *testing.T) {
	p := neverCheckpoint{}
	a := RunSpec{Bid: 0.5, Zones: []int{0, 1}, Policy: p}
	if !a.Equal(RunSpec{Bid: 0.5, Zones: []int{0, 1}, Policy: p}) {
		t.Fatal("equal specs not equal")
	}
	if a.Equal(RunSpec{Bid: 0.7, Zones: []int{0, 1}, Policy: p}) {
		t.Fatal("different bid equal")
	}
	if a.Equal(RunSpec{Bid: 0.5, Zones: []int{0}, Policy: p}) {
		t.Fatal("different zones equal")
	}
	if a.Equal(RunSpec{Bid: 0.5, Zones: []int{0, 2}, Policy: p}) {
		t.Fatal("different zone set equal")
	}
}
