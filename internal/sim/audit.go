package sim

import (
	"fmt"
	"math"
)

// AuditResult independently re-verifies a run's ledger against the
// price trace and the recorded timeline — a second implementation of
// the billing rules used to cross-check the engine:
//
//   - every spot hour's rate equals the trace price of its zone at the
//     hour start (hour-boundary pricing);
//   - every charged spot hour falls inside one of the zone's recorded
//     up periods, and hours cut short by a provider kill are absent;
//   - hours cut short by the user are present (charged in full);
//   - on-demand hours are billed at the fixed rate and only after the
//     recorded on-demand migration;
//   - totals equal the result's cost decomposition.
//
// It requires a run recorded with Config.RecordTimeline.
func AuditResult(cfg Config, res *Result) error {
	if len(res.Timeline) == 0 {
		return fmt.Errorf("sim: audit needs a recorded timeline")
	}
	// Reconstruct per-zone up periods [upAt, downAt) from the timeline.
	type period struct {
		from, to int64
		byUser   bool // closed by user (or still open at completion)
	}
	periods := map[string][]period{}
	open := map[string]int64{}
	zoneName := func(zi int) string { return cfg.Trace.Series[zi].Zone }
	var odStart int64 = math.MaxInt64
	for _, ev := range res.Timeline {
		switch ev.Kind {
		case TLZoneUp:
			// The instance became usable at or before this event (its
			// billing started at ReadyAt ≤ ev.Time); use the meter's
			// view below for rates, the timeline for ordering only.
			open[zoneName(ev.Zone)] = ev.Time
		case TLZoneDown:
			name := zoneName(ev.Zone)
			if from, ok := open[name]; ok {
				periods[name] = append(periods[name], period{
					from: from, to: ev.Time,
					byUser: ev.Detail != "provider-kill",
				})
				delete(open, name)
			}
		case TLOnDemand:
			if ev.Time < odStart {
				odStart = ev.Time
			}
		}
	}
	for name, from := range open {
		// Still up at completion: closed by the user at finish.
		periods[name] = append(periods[name], period{from: from, to: res.FinishTime, byUser: true})
	}

	var spot, od float64
	for _, e := range res.Ledger.Entries {
		if e.OnDemand {
			od += e.Rate
			if e.Rate != 2.40 {
				return fmt.Errorf("sim: audit: on-demand hour at $%g", e.Rate)
			}
			if odStart == math.MaxInt64 {
				return fmt.Errorf("sim: audit: on-demand charge without a recorded migration")
			}
			continue
		}
		spot += e.Rate
		// Hour-boundary pricing against the raw trace.
		var series *int
		for zi := range cfg.Trace.Series {
			if cfg.Trace.Series[zi].Zone == e.Zone {
				z := zi
				series = &z
				break
			}
		}
		if series == nil {
			return fmt.Errorf("sim: audit: charge for unknown zone %q", e.Zone)
		}
		want := cfg.Trace.Series[*series].PriceAt(e.HourStart)
		if e.HourStart < cfg.Trace.Start() && cfg.History != nil {
			want = cfg.History.Series[*series].PriceAt(e.HourStart)
		}
		if math.Abs(e.Rate-want) > 1e-9 {
			return fmt.Errorf("sim: audit: zone %s hour at %d billed $%g, trace says $%g",
				e.Zone, e.HourStart, e.Rate, want)
		}
		// The hour must start inside a recorded up period, and if it
		// does not complete within the period, the period must have
		// ended by the user (provider-killed partial hours are free).
		var within *period
		for i := range periods[e.Zone] {
			p := &periods[e.Zone][i]
			// Billing can begin slightly before the up event lands on
			// the grid (the instance became usable between steps).
			if e.HourStart >= p.from-cfg.Trace.Step() && e.HourStart < p.to {
				within = p
				break
			}
		}
		if within == nil {
			return fmt.Errorf("sim: audit: zone %s charged for hour at %d outside any up period", e.Zone, e.HourStart)
		}
		if e.HourStart+3600 > within.to && !within.byUser {
			return fmt.Errorf("sim: audit: zone %s charged for a provider-killed partial hour at %d", e.Zone, e.HourStart)
		}
	}

	nodes := cfg.Nodes
	if nodes <= 0 {
		nodes = 1
	}
	if math.Abs(spot*float64(nodes)-res.SpotCost) > 1e-6 {
		return fmt.Errorf("sim: audit: spot total %g != result %g", spot*float64(nodes), res.SpotCost)
	}
	if math.Abs(od*float64(nodes)-res.OnDemandCost) > 1e-6 {
		return fmt.Errorf("sim: audit: on-demand total %g != result %g", od*float64(nodes), res.OnDemandCost)
	}
	if math.Abs(res.Cost-(res.SpotCost+res.OnDemandCost)) > 1e-6 {
		return fmt.Errorf("sim: audit: cost %g != spot %g + od %g", res.Cost, res.SpotCost, res.OnDemandCost)
	}
	return nil
}
