package sim

import (
	"math/rand/v2"
	"strings"
	"testing"

	"repro/internal/market"
	"repro/internal/trace"
)

func TestAuditAcceptsRealRuns(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 17))
	for trial := 0; trial < 40; trial++ {
		set := randomSet(rng, 2, 12*30)
		cfg := Config{
			Trace: set, Work: 4 * trace.Hour, Deadline: 8 * trace.Hour,
			CheckpointCost: 300, RestartCost: 300,
			Delay: market.FixedDelay(300), Seed: uint64(trial),
			RecordTimeline: true,
		}
		res, err := Run(cfg, static{RunSpec{Bid: 0.27 + rng.Float64()*2, Zones: []int{0, 1}, Policy: &hourly{interval: trace.Hour}}})
		if err != nil {
			t.Fatal(err)
		}
		if err := AuditResult(cfg, res); err != nil {
			t.Fatalf("trial %d: audit rejected a real run: %v", trial, err)
		}
	}
}

func TestAuditNeedsTimeline(t *testing.T) {
	cfg := baseConfig(constSet(0.3, 12*10))
	res, err := Run(cfg, static{RunSpec{Bid: 0.5, Zones: []int{0}, Policy: neverCheckpoint{}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := AuditResult(cfg, res); err == nil {
		t.Fatal("audit accepted a run without a timeline")
	}
}

func TestAuditCatchesTamperedLedger(t *testing.T) {
	cfg := baseConfig(constSet(0.3, 12*10))
	cfg.Deadline = 12 * trace.Hour
	cfg.RecordTimeline = true
	res, err := Run(cfg, static{RunSpec{Bid: 0.5, Zones: []int{0}, Policy: neverCheckpoint{}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := AuditResult(cfg, res); err != nil {
		t.Fatalf("clean run rejected: %v", err)
	}

	// Tamper with a rate: hour-start pricing violated.
	tampered := *res
	tampered.Ledger.Entries = append([]market.Entry(nil), res.Ledger.Entries...)
	tampered.Ledger.Entries[0].Rate = 0.99
	if err := AuditResult(cfg, &tampered); err == nil || !strings.Contains(err.Error(), "trace says") {
		t.Fatalf("tampered rate not caught: %v", err)
	}

	// Move a charge outside any up period.
	tampered2 := *res
	tampered2.Ledger.Entries = append([]market.Entry(nil), res.Ledger.Entries...)
	tampered2.Ledger.Entries[0].HourStart = res.FinishTime + 10*trace.Hour
	if err := AuditResult(cfg, &tampered2); err == nil {
		t.Fatal("out-of-period charge not caught")
	}

	// Invent an unknown zone.
	tampered3 := *res
	tampered3.Ledger.Entries = append([]market.Entry(nil), res.Ledger.Entries...)
	tampered3.Ledger.Entries[0].Zone = "mars-north-1"
	if err := AuditResult(cfg, &tampered3); err == nil || !strings.Contains(err.Error(), "unknown zone") {
		t.Fatalf("unknown zone not caught: %v", err)
	}

	// Corrupt the total.
	tampered4 := *res
	tampered4.SpotCost += 1
	if err := AuditResult(cfg, &tampered4); err == nil {
		t.Fatal("corrupted total not caught")
	}
}

func TestAuditGuardRun(t *testing.T) {
	// A run that migrates to on-demand: the audit accepts the on-demand
	// hours because the migration is in the timeline.
	cfg := baseConfig(constSet(5.0, 12*10)) // never grantable
	cfg.RecordTimeline = true
	res, err := Run(cfg, static{RunSpec{Bid: 0.5, Zones: []int{0}, Policy: neverCheckpoint{}}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.SwitchedOnDemand {
		t.Fatal("expected a guard migration")
	}
	if err := AuditResult(cfg, res); err != nil {
		t.Fatalf("audit rejected a guard run: %v", err)
	}
}
