package sim

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/market"
	"repro/internal/trace"
)

// randomSet builds an adversarial random multi-zone trace: arbitrary
// price levels, plateaus, cliffs and spikes, cent-quantised.
func randomSet(rng *rand.Rand, zones, samples int) *trace.Set {
	series := make([]*trace.Series, zones)
	for z := 0; z < zones; z++ {
		prices := make([]float64, samples)
		p := 0.27 + rng.Float64()*2
		for i := range prices {
			switch rng.IntN(10) {
			case 0: // cliff to a new level
				p = 0.27 + rng.Float64()*3
			case 1: // spike
				p = 2.4 + rng.Float64()*18
			case 2, 3: // drift
				p += (rng.Float64() - 0.5) * 0.2
				if p < 0.27 {
					p = 0.27
				}
			}
			prices[i] = math.Round(p*100) / 100
		}
		series[z] = trace.NewSeries(string(rune('a'+z)), 0, prices)
	}
	return trace.MustNewSet(series...)
}

// chaoticPolicy makes checkpoint decisions pseudo-randomly, exercising
// checkpoint interleavings no sensible policy would produce.
type chaoticPolicy struct {
	rng *rand.Rand
}

func (c *chaoticPolicy) Name() string                { return "chaotic" }
func (c *chaoticPolicy) Reset(*Env)                  {}
func (c *chaoticPolicy) ScheduleNextCheckpoint(*Env) {}
func (c *chaoticPolicy) CheckpointCondition(*Env) bool {
	return c.rng.IntN(4) == 0
}

// TestDeadlineAlwaysMetProperty is the central guarantee: across random
// adversarial markets, policies, bids and redundancy degrees, every run
// completes within its deadline.
func TestDeadlineAlwaysMetProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(2024, 6))
	for trial := 0; trial < 200; trial++ {
		zones := 1 + rng.IntN(3)
		set := randomSet(rng, zones, 12*40) // 40 hours
		work := trace.Hour * int64(2+rng.IntN(8))
		slack := 1 + rng.Float64()*9 // 1..10 hours of slack
		deadline := work + int64(slack*float64(trace.Hour))
		tc := int64(rng.IntN(4)) * 300
		cfg := Config{
			Trace:          set,
			Work:           work,
			Deadline:       deadline,
			CheckpointCost: tc,
			RestartCost:    tc,
			Delay:          market.MeasuredDelay{Mu: math.Log(270), Sigma: 0.5, Min: 143, Max: 880},
			Seed:           uint64(trial),
			RecordTimeline: true, // audited below
		}
		zoneIdx := make([]int, 1+rng.IntN(zones))
		for i := range zoneIdx {
			zoneIdx[i] = i
		}
		spec := RunSpec{
			Bid:    0.27 + rng.Float64()*3,
			Zones:  zoneIdx,
			Policy: &chaoticPolicy{rng: rand.New(rand.NewPCG(uint64(trial), 1))},
		}
		res, err := Run(cfg, static{spec})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !res.Completed {
			t.Fatalf("trial %d: not completed", trial)
		}
		if !res.DeadlineMet {
			t.Fatalf("trial %d: deadline missed (finish %d, deadline %d, work %d, tc %d, bid %.2f, zones %d)",
				trial, res.FinishTime, deadline, work, tc, spec.Bid, len(zoneIdx))
		}
		if res.Cost < 0 {
			t.Fatalf("trial %d: negative cost", trial)
		}
		if res.Committed != work {
			t.Fatalf("trial %d: committed %d != work %d at completion", trial, res.Committed, work)
		}
		// Independent billing verification over the same run.
		if err := AuditResult(cfg, res); err != nil {
			t.Fatalf("trial %d: billing audit failed: %v", trial, err)
		}
	}
}

// TestDeterminism: identical configurations produce identical results.
func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 1))
	set := randomSet(rng, 3, 12*30)
	cfg := Config{
		Trace: set, Work: 5 * trace.Hour, Deadline: 9 * trace.Hour,
		CheckpointCost: 300, RestartCost: 300, Seed: 42,
	}
	spec := RunSpec{Bid: 0.81, Zones: []int{0, 1, 2}, Policy: &hourly{interval: trace.Hour}}
	a, err := Run(cfg, static{spec})
	if err != nil {
		t.Fatal(err)
	}
	spec2 := RunSpec{Bid: 0.81, Zones: []int{0, 1, 2}, Policy: &hourly{interval: trace.Hour}}
	b, err := Run(cfg, static{spec2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost || a.FinishTime != b.FinishTime || a.Checkpoints != b.Checkpoints ||
		a.ProviderKills != b.ProviderKills || a.Restarts != b.Restarts {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

// TestLedgerConsistency: the result's cost decomposition always matches
// the ledger, and no spot hour is ever charged above the bid.
func TestLedgerConsistency(t *testing.T) {
	rng := rand.New(rand.NewPCG(99, 2))
	for trial := 0; trial < 50; trial++ {
		set := randomSet(rng, 2, 12*30)
		bid := 0.27 + rng.Float64()*3
		cfg := Config{
			Trace: set, Work: 4 * trace.Hour, Deadline: 8 * trace.Hour,
			CheckpointCost: 300, RestartCost: 300, Seed: uint64(trial),
		}
		res, err := Run(cfg, static{RunSpec{Bid: bid, Zones: []int{0, 1}, Policy: &hourly{interval: trace.Hour}}})
		if err != nil {
			t.Fatal(err)
		}
		var spot, od float64
		for _, e := range res.Ledger.Entries {
			if e.OnDemand {
				od += e.Rate
				if e.Rate != market.OnDemandRate {
					t.Fatalf("trial %d: on-demand hour at %g", trial, e.Rate)
				}
				continue
			}
			spot += e.Rate
			// Hour-start pricing: a spot hour begins only while the
			// price is within the bid, so no charged hour can exceed it.
			if e.Rate > bid+1e-9 {
				t.Fatalf("trial %d: charged %g above bid %g", trial, e.Rate, bid)
			}
		}
		if math.Abs(spot-res.SpotCost) > 1e-9 || math.Abs(od-res.OnDemandCost) > 1e-9 {
			t.Fatalf("trial %d: split mismatch", trial)
		}
		if math.Abs(res.Cost-(res.SpotCost+res.OnDemandCost)) > 1e-9 {
			t.Fatalf("trial %d: total mismatch", trial)
		}
	}
}

// TestMachineStepEquivalence: stepping a Machine manually produces the
// same result as Run.
func TestMachineStepEquivalence(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	set := randomSet(rng, 2, 12*30)
	cfg := Config{
		Trace: set, Work: 4 * trace.Hour, Deadline: 8 * trace.Hour,
		CheckpointCost: 300, RestartCost: 300, Seed: 3,
	}
	mkSpec := func() RunSpec {
		return RunSpec{Bid: 1.2, Zones: []int{0, 1}, Policy: &hourly{interval: trace.Hour}}
	}
	want, err := Run(cfg, static{mkSpec()})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(cfg, static{mkSpec()})
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for !m.Done() {
		if !m.HasData() {
			t.Fatal("machine ran out of data")
		}
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
		steps++
		if steps > 20000 {
			t.Fatal("machine did not terminate")
		}
	}
	got := m.Result()
	if got.Cost != want.Cost || got.FinishTime != want.FinishTime {
		t.Fatalf("machine result %+v != run result %+v", got, want)
	}
}

// TestMachineErrNoData: a machine over an exhausted trace reports
// ErrNoData instead of stepping blindly.
func TestMachineErrNoData(t *testing.T) {
	set := constSet(0.3, 2) // 10 minutes of data
	cfg := Config{
		Trace: set, Work: trace.Hour, Deadline: 2 * trace.Hour,
		CheckpointCost: 0, RestartCost: 0, Delay: market.FixedDelay(0), Seed: 1,
		DisableDeadlineGuard: true,
	}
	m, err := NewMachine(cfg, static{RunSpec{Bid: 1, Zones: []int{0}, Policy: neverCheckpoint{}}})
	if err != nil {
		t.Fatal(err)
	}
	for m.HasData() {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Step(); err != ErrNoData {
		t.Fatalf("err = %v, want ErrNoData", err)
	}
	res := m.FinishEstimation()
	if res == nil || res.Completed {
		t.Fatalf("estimation finish = %+v", res)
	}
	// FinishEstimation is idempotent.
	if m.FinishEstimation() != res {
		t.Fatal("FinishEstimation not idempotent")
	}
}

// TestCostMonotoneInWorkProperty: more work never costs less under
// identical market conditions (same policy, bid, seed).
func TestCostMonotoneInWorkProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 13))
	for trial := 0; trial < 30; trial++ {
		set := randomSet(rng, 1, 12*40)
		small := Config{
			Trace: set, Work: 2 * trace.Hour, Deadline: 12 * trace.Hour,
			CheckpointCost: 300, RestartCost: 300, Delay: market.FixedDelay(300), Seed: uint64(trial),
		}
		large := small
		large.Work = 6 * trace.Hour
		spec := func() RunSpec {
			return RunSpec{Bid: 1.0, Zones: []int{0}, Policy: &hourly{interval: trace.Hour}}
		}
		a, err := Run(small, static{spec()})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(large, static{spec()})
		if err != nil {
			t.Fatal(err)
		}
		if b.Cost < a.Cost-1e-9 {
			t.Fatalf("trial %d: 6h job (%g) cheaper than 2h job (%g)", trial, b.Cost, a.Cost)
		}
	}
}

// TestPermanentOutage: a market that dies permanently mid-run still
// meets the deadline through the guard.
func TestPermanentOutage(t *testing.T) {
	set := stepSet([2]float64{0.30, 30}, [2]float64{50.0, 12 * 20})
	cfg := Config{
		Trace: set, Work: 6 * trace.Hour, Deadline: 10 * trace.Hour,
		CheckpointCost: 300, RestartCost: 300, Delay: market.FixedDelay(0), Seed: 1,
	}
	res, err := Run(cfg, static{RunSpec{Bid: 0.81, Zones: []int{0}, Policy: &hourly{interval: trace.Hour}}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.DeadlineMet || !res.SwitchedOnDemand {
		t.Fatalf("outage run: %+v", res)
	}
	// The ~2 h of spot progress before the outage was checkpointed, so
	// the on-demand tail is under the full 6 h.
	if res.OnDemandCost >= 6*market.OnDemandRate {
		t.Fatalf("on-demand tail %g did not benefit from committed progress", res.OnDemandCost)
	}
}

// TestFlappingMarket: price oscillating around the bid every step kills
// and restarts the instance constantly; the run must still complete in
// time, and every interrupted hour must be free.
func TestFlappingMarket(t *testing.T) {
	var prices []float64
	for i := 0; i < 12*30; i++ {
		if i%2 == 0 {
			prices = append(prices, 0.30)
		} else {
			prices = append(prices, 5.00)
		}
	}
	set := trace.MustNewSet(trace.NewSeries("flap", 0, prices))
	cfg := Config{
		Trace: set, Work: 2 * trace.Hour, Deadline: 8 * trace.Hour,
		CheckpointCost: 300, RestartCost: 300, Delay: market.FixedDelay(0), Seed: 1,
	}
	res, err := Run(cfg, static{RunSpec{Bid: 0.81, Zones: []int{0}, Policy: &hourly{interval: trace.Hour}}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.DeadlineMet {
		t.Fatalf("flapping run missed deadline: %+v", res)
	}
	// Instances die within 5 minutes of coming up: no billing hour ever
	// completes, so the whole spot phase is free.
	if res.SpotCost != 0 {
		t.Fatalf("flapping spot cost = %g, want 0 (all partial hours provider-killed)", res.SpotCost)
	}
	if res.ProviderKills == 0 {
		t.Fatal("no kills recorded in a flapping market")
	}
}
