package sim

import (
	"math/rand/v2"

	"repro/internal/market"
)

// ZoneState is the run-time state of one zone's instance.
type ZoneState struct {
	// Index is the zone's position in the trace.
	Index int
	// Name is the zone label.
	Name string
	// State is the instance lifecycle state.
	State InstanceState
	// Meter bills the running instance (non-nil while Up).
	Meter *market.Meter
	// Progress is the replica's total application progress in seconds
	// (committed plus speculative).
	Progress int64
	// BusyUntil freezes progress until the given absolute time while
	// the replica checkpoints or restores.
	BusyUntil int64
	// ReadyAt is when a Pending request becomes usable.
	ReadyAt int64
	// restore marks a Pending start that must load a checkpoint.
	restore bool
	// UpSince is when the instance last became Up.
	UpSince int64
}

// checkpoint tracks an in-progress checkpoint.
type checkpoint struct {
	zone   int   // zone index performing the checkpoint
	endsAt int64 // absolute completion time
	snap   int64 // progress value being committed
}

// Env is the engine state policies and strategies observe.
type Env struct {
	// Cfg is the immutable run configuration.
	Cfg Config
	// Spec is the active run specification.
	Spec RunSpec
	// Now is the current absolute simulation time.
	Now int64
	// StartTime is the experiment start (Trace.Start()).
	StartTime int64
	// Step is the simulation step in seconds.
	Step int64
	// Zones holds the state of every zone in the trace (active or not).
	Zones []ZoneState
	// Committed is P: checkpointed progress in seconds.
	Committed int64
	// LastCheckpointAt is when the latest checkpoint completed (or the
	// start time when none has).
	LastCheckpointAt int64
	// LastRestartAt is when instances last (re)started.
	LastRestartAt int64

	ledger  market.Ledger
	rng     *rand.Rand
	pcg     *rand.PCG
	delay   market.DelayModel
	ck      *checkpoint
	ckBuf   checkpoint
	res     Result
	rateFns []func(int64) float64
}

// reset re-initialises the environment for a new run in place, reusing
// the zone slice, ledger backing array, timeline buffer, cached billing
// closures and RNG allocated by previous runs. The caller must have
// validated cfg.
func (e *Env) reset(cfg Config) {
	e.Cfg = cfg
	e.Spec = RunSpec{}
	e.Step = cfg.Trace.Step()
	e.StartTime = cfg.Trace.Start()
	e.Now = e.StartTime
	e.Committed = 0
	e.LastCheckpointAt = e.StartTime
	e.LastRestartAt = e.StartTime
	if e.pcg == nil {
		e.pcg = rand.NewPCG(cfg.Seed, rngStream)
		e.rng = rand.New(e.pcg)
	} else {
		e.pcg.Seed(cfg.Seed, rngStream)
	}
	e.delay = cfg.Delay
	if e.delay == nil {
		e.delay = market.DefaultDelay()
	}
	e.ck = nil
	e.ledger.Reset()
	tl := e.res.Timeline[:0]
	e.res = Result{}
	e.res.Timeline = tl

	nz := cfg.Trace.NumZones()
	if cap(e.Zones) < nz {
		e.Zones = make([]ZoneState, nz)
		e.rateFns = make([]func(int64) float64, nz)
	}
	e.Zones = e.Zones[:nz]
	e.rateFns = e.rateFns[:nz]
	for i := range e.Zones {
		e.Zones[i] = ZoneState{Index: i, Name: cfg.Trace.Series[i].Zone, State: Down}
		if e.rateFns[i] == nil {
			zi := i
			e.rateFns[i] = func(t int64) float64 { return e.Price(zi, t) }
		}
	}
}

// rngStream is the fixed second PCG seed word of every run's private
// random stream; reseeding a pooled engine with the same (Seed,
// rngStream) pair reproduces the stream of a freshly built one
// bit-for-bit.
const rngStream = 0x5eed_0f_de1a75

// Rand returns the run's deterministic random stream.
func (e *Env) Rand() *rand.Rand { return e.rng }

// Work returns C in seconds.
func (e *Env) Work() int64 { return e.Cfg.Work }

// Deadline returns the absolute deadline time.
func (e *Env) Deadline() int64 { return e.StartTime + e.Cfg.Deadline }

// RemainingTime returns T_r: seconds until the deadline.
func (e *Env) RemainingTime() int64 { return e.Deadline() - e.Now }

// RemainingWork returns C_r: seconds of computation not yet committed.
func (e *Env) RemainingWork() int64 { return e.Cfg.Work - e.Committed }

// ElapsedTime returns T: seconds since the experiment start.
func (e *Env) ElapsedTime() int64 { return e.Now - e.StartTime }

// CheckpointCost returns t_c in seconds.
func (e *Env) CheckpointCost() int64 { return e.Cfg.CheckpointCost }

// RestartCost returns t_r in seconds.
func (e *Env) RestartCost() int64 { return e.Cfg.RestartCost }

// Price returns the spot price of the zone at absolute time t, reading
// the bootstrap history for times before the run window.
func (e *Env) Price(zone int, t int64) float64 {
	if t < e.StartTime && e.Cfg.History != nil && e.Cfg.History.NumZones() > zone {
		return e.Cfg.History.Series[zone].PriceAt(t)
	}
	return e.Cfg.Trace.Series[zone].PriceAt(t)
}

// PriceNow returns the zone's current spot price.
func (e *Env) PriceNow(zone int) float64 { return e.Price(zone, e.Now) }

// PriceHistory samples the zone's trailing price history: span seconds
// ending at (and including) Now, on the step grid, oldest first. The
// available history bounds the result.
func (e *Env) PriceHistory(zone int, span int64) []float64 {
	from := e.Now - span + e.Step
	lo := e.StartTime
	if e.Cfg.History != nil && e.Cfg.History.Duration() > 0 {
		lo = e.Cfg.History.Start()
	}
	if from < lo {
		from = lo
	}
	n := (e.Now-from)/e.Step + 1
	if n <= 0 {
		return nil
	}
	out := make([]float64, 0, n)
	for t := from; t <= e.Now; t += e.Step {
		out = append(out, e.Price(zone, t))
	}
	return out
}

// ActiveZones returns the states of the zones in the current spec.
func (e *Env) ActiveZones() []*ZoneState {
	out := make([]*ZoneState, 0, len(e.Spec.Zones))
	for _, zi := range e.Spec.Zones {
		out = append(out, &e.Zones[zi])
	}
	return out
}

// UpZones returns the active zones currently Up.
func (e *Env) UpZones() []*ZoneState {
	var out []*ZoneState
	for _, z := range e.ActiveZones() {
		if z.State == Up {
			out = append(out, z)
		}
	}
	return out
}

// AnyUp reports whether any active zone is Up.
func (e *Env) AnyUp() bool {
	for _, zi := range e.Spec.Zones {
		if e.Zones[zi].State == Up {
			return true
		}
	}
	return false
}

// Leader returns the Up zone with the most progress, or nil.
func (e *Env) Leader() *ZoneState {
	var best *ZoneState
	for _, zi := range e.Spec.Zones {
		z := &e.Zones[zi]
		if z.State == Up && (best == nil || z.Progress > best.Progress) {
			best = z
		}
	}
	return best
}

// LeaderProgress returns the leader's progress, or Committed when no
// zone is up.
func (e *Env) LeaderProgress() int64 {
	if l := e.Leader(); l != nil {
		return l.Progress
	}
	return e.Committed
}

// CheckpointInProgress reports whether a checkpoint is being taken.
func (e *Env) CheckpointInProgress() bool { return e.ck != nil }

// UncommittedProgress returns the leader's progress beyond the latest
// checkpoint.
func (e *Env) UncommittedProgress() int64 { return e.LeaderProgress() - e.Committed }

// Cost returns the dollars charged so far (per node).
func (e *Env) Cost() float64 { return e.ledger.Total() }

// RisingEdge reports whether the zone's spot price moved upward across
// the latest step (the Edge policy trigger).
func (e *Env) RisingEdge(zone int) bool {
	return e.Price(zone, e.Now) > e.Price(zone, e.Now-e.Step)
}

// MinObservedPrice returns the minimum price the zone quoted over its
// available history up to now (S_min in the Threshold policy).
func (e *Env) MinObservedPrice(zone int) float64 {
	lo := e.StartTime
	if e.Cfg.History != nil && e.Cfg.History.Duration() > 0 {
		lo = e.Cfg.History.Start()
	}
	min := e.Price(zone, lo)
	for t := lo; t <= e.Now; t += e.Step {
		if p := e.Price(zone, t); p < min {
			min = p
		}
	}
	return min
}

// TimelineEvents returns the events recorded so far (only populated
// when Cfg.RecordTimeline is set). The live scheduler drains it
// incrementally to derive externally visible actions.
func (e *Env) TimelineEvents() []TimelineEvent { return e.res.Timeline }

func (e *Env) timeline(kind TimelineKind, zone int, detail string) {
	if !e.Cfg.RecordTimeline {
		return
	}
	e.res.Timeline = append(e.res.Timeline, TimelineEvent{Time: e.Now, Kind: kind, Zone: zone, Detail: detail})
}

// nodes returns the cost multiplier.
func (e *Env) nodes() int {
	if e.Cfg.Nodes <= 0 {
		return 1
	}
	return e.Cfg.Nodes
}
