package sim_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/market"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Example runs a 4-hour job on a calm single-zone market under the
// Periodic policy and prints the outcome.
func Example() {
	prices := make([]float64, 12*12) // 12 hours at $0.30
	for i := range prices {
		prices[i] = 0.30
	}
	cfg := sim.Config{
		Trace:          trace.MustNewSet(trace.NewSeries("us-east-1a", 0, prices)),
		Work:           4 * trace.Hour,
		Deadline:       10 * trace.Hour,
		CheckpointCost: 300,
		RestartCost:    300,
		Delay:          market.FixedDelay(0),
		Seed:           1,
	}
	res, err := sim.Run(cfg, core.SingleZone(core.NewPeriodic(), 0.81, 0))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("cost $%.2f, deadline met: %v, checkpoints: %d\n",
		res.Cost, res.DeadlineMet, res.Checkpoints)
	// Output: cost $1.50, deadline met: true, checkpoints: 4
}
