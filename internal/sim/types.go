// Package sim is the discrete-time simulation engine for spot-market
// experiments. It implements the paper's Algorithm 1 framework:
//
//   - zone instances move between down / waiting / pending / up states
//     as the spot price crosses the bid;
//   - a deadline guard switches to the on-demand market the moment the
//     remaining slack equals the remaining computation plus migration
//     overhead, guaranteeing completion within the user bound D;
//   - pluggable CheckpointCondition / ScheduleNextCheckpoint hooks define
//     each checkpoint policy;
//   - a Strategy may re-parameterise the run (bid, zone set, policy) at
//     decision points, which is how the Adaptive scheme is expressed.
//
// Time advances in 5-minute steps (the paper's sampling interval).
// Progress, billing and checkpoint/restart latency are tracked exactly
// under the market package's EC2 billing rules.
package sim

import (
	"errors"
	"fmt"

	"repro/internal/market"
	"repro/internal/obs"
	"repro/internal/trace"
)

// InstanceState is the lifecycle state of one zone's spot instance.
type InstanceState int

// Instance states. Waiting matches the paper's state of the same name:
// the zone is eligible (bid ≥ spot price) but no instance has been
// requested, so it can adopt a fresh checkpoint before starting.
// Pending models a submitted request waiting out the queuing delay.
const (
	Down InstanceState = iota
	Waiting
	Pending
	Up
)

// String implements fmt.Stringer.
func (s InstanceState) String() string {
	switch s {
	case Down:
		return "down"
	case Waiting:
		return "waiting"
	case Pending:
		return "pending"
	case Up:
		return "up"
	default:
		return "unknown"
	}
}

// CheckpointPolicy supplies the two hooks of Algorithm 1.
type CheckpointPolicy interface {
	// Name identifies the policy in reports.
	Name() string
	// Reset prepares the policy at run start and after a strategy
	// switch re-parameterises the run.
	Reset(env *Env)
	// CheckpointCondition reports whether a checkpoint should begin
	// now (evaluated once per step while at least one zone is up).
	CheckpointCondition(env *Env) bool
	// ScheduleNextCheckpoint is invoked after a checkpoint completes
	// and after restarts, letting the policy plan its next T_s.
	ScheduleNextCheckpoint(env *Env)
}

// Releaser is an optional policy extension for voluntary instance
// release (the Large-bid policy terminates instances manually when the
// spot price exceeds its cost-control threshold near the hour end).
type Releaser interface {
	// ShouldRelease reports whether the up instance in the zone should
	// be terminated by the user now.
	ShouldRelease(env *Env, zone int) bool
}

// Admission is an optional policy extension gating instance starts (the
// Large-bid policy refuses to start instances while the spot price is
// above its threshold even though the bid would admit them).
type Admission interface {
	// MayStart reports whether the zone may be started now.
	MayStart(env *Env, zone int) bool
}

// RunSpec parameterises the framework: the bid, the set of zones used
// (its length is the paper's redundancy degree N), and the checkpoint
// policy.
type RunSpec struct {
	// Bid is the user bid B in dollars per hour.
	Bid float64
	// Zones holds indices into the trace's zone list.
	Zones []int
	// Policy supplies the checkpoint hooks.
	Policy CheckpointPolicy
}

// Equal reports whether two specs request the same configuration.
func (s RunSpec) Equal(o RunSpec) bool {
	if s.Bid != o.Bid || s.Policy != o.Policy || len(s.Zones) != len(o.Zones) {
		return false
	}
	for i := range s.Zones {
		if s.Zones[i] != o.Zones[i] {
			return false
		}
	}
	return true
}

// EqualConfig reports whether two specs request the same observable
// configuration — bid, zone set and policy family (compared by Name) —
// ignoring policy instance identity, which Equal distinguishes. The
// decision replayer uses it to decide whether forcing an alternative
// actually changes the running configuration.
func (s RunSpec) EqualConfig(o RunSpec) bool {
	if s.Bid != o.Bid || len(s.Zones) != len(o.Zones) {
		return false
	}
	for i := range s.Zones {
		if s.Zones[i] != o.Zones[i] {
			return false
		}
	}
	var sn, on string
	if s.Policy != nil {
		sn = s.Policy.Name()
	}
	if o.Policy != nil {
		on = o.Policy.Name()
	}
	return sn == on
}

// EventKind classifies decision-point events offered to a Strategy.
type EventKind int

// Decision-point events, matching the paper's Adaptive triggers: a zone
// terminated out-of-bid, or a billing hour ended.
const (
	ProviderKill EventKind = iota
	HourBoundary
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case ProviderKill:
		return "provider-kill"
	case HourBoundary:
		return "hour-boundary"
	default:
		return "unknown"
	}
}

// Event is one decision-point occurrence.
type Event struct {
	Kind EventKind
	// Zone is the zone index the event concerns.
	Zone int
	// Time is the absolute time of the event.
	Time int64
}

// Strategy owns run-time configuration decisions. Static policies wrap
// a fixed RunSpec; the Adaptive scheme re-simulates permutations at
// decision points and switches.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// Begin returns the initial spec.
	Begin(env *Env) RunSpec
	// Reconsider is offered the step's decision-point events; returning
	// (spec, true) requests a switch to the new configuration.
	Reconsider(env *Env, events []Event) (RunSpec, bool)
}

// Config describes one experiment.
type Config struct {
	// Trace is the price window visible to the run; the experiment
	// starts at Trace.Start().
	Trace *trace.Set
	// History precedes the run and bootstraps prediction models (the
	// paper primes the Markov state with 2 days of history).
	History *trace.Set
	// Work is C: the uninterrupted computation time in seconds.
	Work int64
	// Deadline is D, in seconds from the experiment start.
	Deadline int64
	// CheckpointCost is t_c in seconds.
	CheckpointCost int64
	// RestartCost is t_r in seconds.
	RestartCost int64
	// Nodes is the number of VM instances per zone; it multiplies all
	// costs. Zero means 1 (the paper reports cost per instance).
	Nodes int
	// IterationSeconds is the application's progress granularity: the
	// paper's framework observes progress P through MPI_Pcontrol at
	// iteration boundaries, and a checkpoint can only capture completed
	// iterations. Zero means progress is continuous.
	IterationSeconds int64
	// Delay models the spot request queuing delay; nil selects the
	// paper's measured distribution.
	Delay market.DelayModel
	// Seed drives the run's private random stream (queuing delays).
	Seed uint64
	// RecordTimeline enables the detailed event log in the result.
	RecordTimeline bool
	// DisableDeadlineGuard turns off the on-demand fallback; used only
	// by estimation runs inside the Adaptive policy and by ablations.
	DisableDeadlineGuard bool
	// ObsTrace, when non-nil, receives simulated-time spans for the run
	// and its guard/fallback transitions. Nil (the default) records
	// nothing and costs nothing on the replay hot path.
	ObsTrace *obs.Tracer
}

// Validate reports configuration errors, including a deadline too tight
// to be guaranteed even by an immediate switch to on-demand.
func (c Config) Validate() error {
	if c.Trace == nil || c.Trace.NumZones() == 0 {
		return errors.New("sim: missing trace")
	}
	if err := c.Trace.Validate(); err != nil {
		return err
	}
	if c.Work <= 0 {
		return fmt.Errorf("sim: non-positive work %d", c.Work)
	}
	if c.CheckpointCost < 0 || c.RestartCost < 0 {
		return fmt.Errorf("sim: negative checkpoint/restart cost")
	}
	if !c.DisableDeadlineGuard {
		// The guard can always fall back to a from-scratch on-demand
		// run, so D must cover the work plus one step of grid margin.
		minDeadline := c.Work + c.Trace.Step()
		if c.Deadline < minDeadline {
			return fmt.Errorf("sim: deadline %d cannot be guaranteed; need >= %d", c.Deadline, minDeadline)
		}
	}
	if c.Nodes < 0 {
		return fmt.Errorf("sim: negative node count")
	}
	if c.IterationSeconds < 0 {
		return fmt.Errorf("sim: negative iteration length")
	}
	return nil
}

// TimelineKind classifies timeline events.
type TimelineKind int

// Timeline event kinds.
const (
	TLZoneUp TimelineKind = iota
	TLZoneDown
	TLZoneWaiting
	TLZonePending
	TLCheckpointStart
	TLCheckpointDone
	TLCheckpointAborted
	TLRestart
	TLSwitchSpec
	TLOnDemand
	TLComplete
)

// String implements fmt.Stringer.
func (k TimelineKind) String() string {
	switch k {
	case TLZoneUp:
		return "zone-up"
	case TLZoneDown:
		return "zone-down"
	case TLZoneWaiting:
		return "zone-waiting"
	case TLZonePending:
		return "zone-pending"
	case TLCheckpointStart:
		return "checkpoint-start"
	case TLCheckpointDone:
		return "checkpoint-done"
	case TLCheckpointAborted:
		return "checkpoint-aborted"
	case TLRestart:
		return "restart"
	case TLSwitchSpec:
		return "switch-spec"
	case TLOnDemand:
		return "on-demand"
	case TLComplete:
		return "complete"
	default:
		return "unknown"
	}
}

// TimelineEvent is one entry of the optional detailed run log.
type TimelineEvent struct {
	Time   int64
	Kind   TimelineKind
	Zone   int // -1 when not zone-specific
	Detail string
}

// Result summarises one run.
type Result struct {
	// Strategy and Policy name what produced the run.
	Strategy string
	Policy   string
	// Cost is the total dollars charged (already multiplied by Nodes).
	Cost float64
	// SpotCost and OnDemandCost split Cost by market.
	SpotCost     float64
	OnDemandCost float64
	// Completed reports whether the work finished.
	Completed bool
	// FinishTime is the absolute completion time (valid if Completed).
	FinishTime int64
	// DeadlineMet reports FinishTime within the deadline.
	DeadlineMet bool
	// SwitchedOnDemand reports the deadline guard fired.
	SwitchedOnDemand bool
	// Checkpoints counts completed checkpoints; AbortedCheckpoints
	// counts checkpoints lost to mid-checkpoint terminations.
	Checkpoints        int
	AbortedCheckpoints int
	// Restarts counts instance starts that restored a checkpoint.
	Restarts int
	// ProviderKills counts out-of-bid terminations; UserReleases counts
	// voluntary terminations.
	ProviderKills int
	UserReleases  int
	// SpecSwitches counts strategy re-configurations.
	SpecSwitches int
	// Committed is the checkpointed progress P at the end of the run
	// (equals Work for completed runs).
	Committed int64
	// Time attribution (seconds, summed across zones):
	// ReworkSeconds is speculative progress lost to terminations and
	// rollbacks; OverheadSeconds is time spent checkpointing and
	// restoring. Together with the committed work they explain where
	// the paid instance-hours went.
	ReworkSeconds   int64
	OverheadSeconds int64
	// MaxProgress is the furthest replica progress at the end of the
	// run, including speculative work not yet committed; estimation
	// runs that end with the trace use it to measure a configuration's
	// progress rate without the artificial last-checkpoint lag.
	MaxProgress int64
	// Ledger is the full charge ledger (per single node).
	Ledger market.Ledger
	// Timeline is the detailed log when recording was enabled.
	Timeline []TimelineEvent
}
