package sim

import (
	"errors"
	"fmt"
	"strconv"

	"repro/internal/market"
	"repro/internal/obs"
)

// Machine is the incremental form of the simulation engine: one Step
// call advances the Algorithm 1 state machine by a single 5-minute
// interval. Run drives a Machine to completion over a fixed trace; the
// live scheduler drives one in wall-clock time over a trace that grows
// as price updates arrive. A finished Machine can be re-armed for a new
// run with Reset, which reuses every internal buffer.
type Machine struct {
	env         *Env
	strat       Strategy
	pendingSpec *RunSpec
	specBuf     RunSpec
	result      *Result
	events      []Event
}

// ErrNoData reports that the machine's trace does not yet cover the
// next step; callers feeding a live trace append more samples and
// retry.
var ErrNoData = errors.New("sim: trace does not cover the next step")

// NewMachine validates the configuration, asks the strategy for its
// initial spec, and returns a machine positioned at the first step. A
// zero-zone spec (the on-demand baseline) completes immediately.
func NewMachine(cfg Config, strat Strategy) (*Machine, error) {
	m := &Machine{}
	if err := m.Reset(cfg, strat); err != nil {
		return nil, err
	}
	return m, nil
}

// Reset re-arms the machine for a new run without reallocating zone
// state, the billing ledger, the event scratch buffer or the RNG: a
// reset machine reproduces a freshly built one bit-for-bit (the run's
// random stream is reseeded from cfg.Seed). The previous run's Result
// and Env aliased the machine's internal buffers, so both must be fully
// consumed — or cloned — before Reset is called.
func (m *Machine) Reset(cfg Config, strat Strategy) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if m.env == nil {
		m.env = &Env{}
	}
	env := m.env
	env.reset(cfg)
	m.strat = strat
	m.pendingSpec = nil
	m.result = nil
	m.events = m.events[:0]

	env.Spec = strat.Begin(env)
	if err := checkSpec(env, env.Spec); err != nil {
		return err
	}
	env.res.Strategy = strat.Name()
	if env.Spec.Policy != nil {
		env.res.Policy = env.Spec.Policy.Name()
		env.Spec.Policy.Reset(env)
	}
	if len(env.Spec.Zones) == 0 {
		// Pure on-demand execution: start immediately, run uninterrupted.
		m.result = finishOnDemand(env)
	}
	return nil
}

// Done reports whether the run has finished.
func (m *Machine) Done() bool { return m.result != nil }

// Result returns the final result, or nil while the run is ongoing.
func (m *Machine) Result() *Result { return m.result }

// Env exposes the engine state (read-mostly; external mutation is for
// tests only).
func (m *Machine) Env() *Env { return m.env }

// Now returns the machine's current simulated time.
func (m *Machine) Now() int64 { return m.env.Now }

// HasData reports whether the trace covers the machine's next step.
func (m *Machine) HasData() bool { return m.env.Now < m.env.Cfg.Trace.End() }

// Step advances the machine by one interval. It returns ErrNoData when
// the trace does not cover the step (live mode: feed more samples), and
// is a no-op once the run is done.
func (m *Machine) Step() error {
	if m.result != nil {
		return nil
	}
	if !m.HasData() {
		return ErrNoData
	}
	env := m.env
	cfg := env.Cfg
	events := m.events[:0]

	// Billing: commit completed instance-hours, noting boundaries.
	for zi := range env.Zones {
		z := &env.Zones[zi]
		if z.State != Up {
			continue
		}
		before := z.Meter.HourStart()
		z.Meter.Advance(env.Now, env.rateFn(zi), &env.ledger)
		if z.Meter.HourStart() != before {
			events = append(events, Event{Kind: HourBoundary, Zone: zi, Time: z.Meter.HourStart()})
		}
	}

	// Instance state updates against the current spot prices
	// (Algorithm 1 lines 2-8, plus our queuing-delay Pending state).
	for _, zi := range env.Spec.Zones {
		z := &env.Zones[zi]
		s := env.PriceNow(zi)
		switch z.State {
		case Up:
			if s > env.Spec.Bid {
				env.providerKill(z)
				events = append(events, Event{Kind: ProviderKill, Zone: zi, Time: env.Now})
			}
		case Pending:
			if s > env.Spec.Bid {
				z.State = Down
				env.timeline(TLZoneDown, zi, "request-cancelled")
			} else if z.ReadyAt <= env.Now {
				env.promote(z)
			}
		case Waiting:
			if s > env.Spec.Bid {
				z.State = Down
				env.timeline(TLZoneDown, zi, "out-of-bid")
			}
		case Down:
			if s <= env.Spec.Bid && env.mayStart(zi) {
				z.State = Waiting
				env.timeline(TLZoneWaiting, zi, "")
			}
		}
	}

	// Checkpoint completion commits progress and wakes waiting zones
	// from the fresh checkpoint (lines 17-25).
	if env.ck != nil && env.Now >= env.ck.endsAt {
		env.commitCheckpoint()
		if m.pendingSpec != nil {
			env.applySpec(*m.pendingSpec)
			m.pendingSpec = nil
		}
	}

	// Deadline guard (line 11): switch to on-demand the moment the
	// remaining slack only just covers the remaining *committed* work
	// plus migration. Committed progress never rolls back, so this
	// guarantee survives any termination pattern.
	if !cfg.DisableDeadlineGuard {
		slack := env.guardSlack()
		if slack <= 0 {
			if cfg.ObsTrace != nil {
				cfg.ObsTrace.Record(obs.Span{
					Name: "sim.deadline-guard", Clock: obs.SimClock,
					Start: env.Now, End: env.Now,
				})
			}
			m.result = finishViaOnDemand(env)
			return nil
		}
		// When the guard is one checkpoint away from firing, force a
		// protective checkpoint so speculative progress is committed
		// before slack (computed against P) runs out.
		if slack <= cfg.CheckpointCost+2*env.Step && env.ck == nil && env.UncommittedProgress() > 0 {
			env.beginCheckpoint()
		}
	}

	// Strategy decision points (the Adaptive triggers). The event slice
	// is the machine's scratch buffer, reused across steps; strategies
	// must not retain it.
	m.events = events
	if len(events) > 0 {
		if spec, ok := m.strat.Reconsider(env, events); ok && !spec.Equal(env.Spec) {
			if err := checkSpec(env, spec); err != nil {
				return err
			}
			m.specBuf = spec
			m.pendingSpec = &m.specBuf
		}
	}
	// Apply a requested switch, committing uncommitted progress through
	// a protective checkpoint first.
	if m.pendingSpec != nil && env.ck == nil {
		if env.needsProtectiveCheckpoint() {
			env.beginCheckpoint()
		}
		if env.ck == nil {
			env.applySpec(*m.pendingSpec)
			m.pendingSpec = nil
		}
	}

	// Policy hooks.
	if env.AnyUp() {
		if rel, ok := env.Spec.Policy.(Releaser); ok {
			for _, zi := range env.Spec.Zones {
				z := &env.Zones[zi]
				if z.State != Up {
					continue
				}
				if env.ck != nil && env.ck.zone == z.Index {
					continue // release after the checkpoint lands
				}
				if rel.ShouldRelease(env, z.Index) {
					env.releaseUser(z)
				}
			}
		}
		if env.ck == nil && env.AnyUp() && env.Spec.Policy.CheckpointCondition(env) {
			env.beginCheckpoint()
		}
	} else if env.startWaiting() {
		// No zone up: restart every waiting zone from the previous
		// checkpoint (lines 29-33).
		env.Spec.Policy.ScheduleNextCheckpoint(env)
	}

	// Compute over [Now, Now+Step) on every up zone (line 38).
	for _, zi := range env.Spec.Zones {
		z := &env.Zones[zi]
		if z.State != Up {
			continue
		}
		activeStart := env.Now
		if z.BusyUntil > activeStart {
			activeStart = z.BusyUntil
		}
		end := env.Now + env.Step
		if activeStart >= end {
			continue
		}
		needed := cfg.Work - z.Progress
		avail := end - activeStart
		if needed <= avail {
			m.result = finishComplete(env, z, activeStart+needed)
			return nil
		}
		z.Progress += avail
	}

	env.Now += env.Step
	return nil
}

// ForceOnDemand abandons the spot market immediately and finishes the
// job on the on-demand fallback, exactly as the deadline guard would:
// the best of a final checkpoint, the last committed checkpoint or a
// from-scratch restart is migrated on-demand and billed. The live
// scheduler's feed watchdog calls this when the price feed degrades
// past the point where waiting for data is safe — firing early only
// leaves more slack, so the deadline guarantee is preserved. It is a
// no-op on a finished machine.
func (m *Machine) ForceOnDemand() *Result {
	if m.result == nil {
		if t := m.env.Cfg.ObsTrace; t != nil {
			t.Record(obs.Span{
				Name: "sim.force-on-demand", Clock: obs.SimClock,
				Start: m.env.Now, End: m.env.Now,
			})
		}
		m.result = finishViaOnDemand(m.env)
	}
	return m.result
}

// FinishEstimation closes out a guard-disabled run at the end of its
// trace (billing every running meter as user-terminated) and returns
// the result. It is how estimation replays and live shutdowns conclude.
func (m *Machine) FinishEstimation() *Result {
	if m.result != nil {
		return m.result
	}
	env := m.env
	for zi := range env.Zones {
		z := &env.Zones[zi]
		if z.State == Up {
			z.Meter.Close(env.Now, market.ByUser, env.rateFn(zi), &env.ledger)
			z.Meter = nil
			z.State = Down
		}
	}
	m.result = env.finalize()
	return m.result
}

// Run executes one experiment under the given strategy and returns its
// result. The run is deterministic for a fixed configuration. It is a
// thin wrapper over the Machine stepper; callers running many
// configurations back to back should prefer a pooled machine
// (AcquireMachine / ReleaseMachine) to amortise allocations.
func Run(cfg Config, strat Strategy) (*Result, error) {
	m, err := NewMachine(cfg, strat)
	if err != nil {
		return nil, err
	}
	return m.runToCompletion()
}

// runToCompletion drives the machine until the run finishes, closing
// out guard-disabled estimation runs at the end of their trace.
func (m *Machine) runToCompletion() (*Result, error) {
	for !m.Done() {
		if !m.HasData() {
			if !m.env.Cfg.DisableDeadlineGuard {
				return nil, errors.New("sim: trace ended before the deadline guard fired; deadline must fit the trace window")
			}
			// Estimation runs end with the trace; close out billing.
			return m.FinishEstimation(), nil
		}
		if err := m.Step(); err != nil {
			return nil, err
		}
	}
	return m.Result(), nil
}

// checkSpec validates a strategy-provided spec.
func checkSpec(env *Env, spec RunSpec) error {
	for i, zi := range spec.Zones {
		if zi < 0 || zi >= len(env.Zones) {
			return fmt.Errorf("sim: spec zone index %d out of range", zi)
		}
		for _, zj := range spec.Zones[:i] {
			if zj == zi {
				return fmt.Errorf("sim: spec repeats zone %d", zi)
			}
		}
	}
	if len(spec.Zones) > 0 && spec.Policy == nil {
		return errors.New("sim: spec has zones but no policy")
	}
	if len(spec.Zones) > 0 && spec.Bid <= 0 {
		return fmt.Errorf("sim: non-positive bid %g", spec.Bid)
	}
	return nil
}

// rateFn returns the spot price lookup for a zone's billing meter,
// cached per zone so the hot billing path does not allocate a closure
// every step.
func (e *Env) rateFn(zone int) func(int64) float64 {
	if zone < len(e.rateFns) && e.rateFns[zone] != nil {
		return e.rateFns[zone]
	}
	return func(t int64) float64 { return e.Price(zone, t) }
}

func (e *Env) mayStart(zone int) bool {
	if adm, ok := e.Spec.Policy.(Admission); ok {
		return adm.MayStart(e, zone)
	}
	return true
}

// providerKill handles an out-of-bid termination: the in-progress hour
// is free and all speculative progress is lost.
func (e *Env) providerKill(z *ZoneState) {
	z.Meter.Close(e.Now, market.ByProvider, e.rateFn(z.Index), &e.ledger)
	z.Meter = nil
	z.State = Down
	if lost := z.Progress - e.Committed; lost > 0 {
		e.res.ReworkSeconds += lost
	}
	z.Progress = e.Committed
	e.res.ProviderKills++
	e.timeline(TLZoneDown, z.Index, "provider-kill")
	if e.ck != nil && e.ck.zone == z.Index {
		e.ck = nil
		e.res.AbortedCheckpoints++
		e.timeline(TLCheckpointAborted, z.Index, "")
	}
}

// releaseUser handles a voluntary termination; the started hour is paid.
func (e *Env) releaseUser(z *ZoneState) {
	z.Meter.Close(e.Now, market.ByUser, e.rateFn(z.Index), &e.ledger)
	z.Meter = nil
	z.State = Down
	if lost := z.Progress - e.Committed; lost > 0 {
		e.res.ReworkSeconds += lost
	}
	z.Progress = e.Committed
	e.res.UserReleases++
	e.timeline(TLZoneDown, z.Index, "user-release")
}

// promote turns a Pending request into a running instance. Billing
// starts when the instance became usable; a restart that loads a
// checkpoint keeps the replica busy for the restart cost.
func (e *Env) promote(z *ZoneState) {
	z.State = Up
	z.UpSince = z.ReadyAt
	z.Meter = market.OpenSpotMeter(z.Name, z.ReadyAt, e.Price(z.Index, z.ReadyAt))
	z.Progress = e.Committed
	z.BusyUntil = z.ReadyAt
	if z.restore {
		z.BusyUntil += e.Cfg.RestartCost
		e.res.OverheadSeconds += e.Cfg.RestartCost
		e.res.Restarts++
	}
	e.LastRestartAt = z.ReadyAt
	e.timeline(TLZoneUp, z.Index, "")
}

// startWaiting submits spot requests for every admissible waiting zone;
// it reports whether any request was submitted.
func (e *Env) startWaiting() bool {
	any := false
	for _, zi := range e.Spec.Zones {
		z := &e.Zones[zi]
		if z.State != Waiting || !e.mayStart(z.Index) {
			continue
		}
		z.State = Pending
		z.ReadyAt = e.Now + e.delay.Sample(e.rng)
		z.restore = e.Committed > 0
		any = true
		e.timeline(TLZonePending, z.Index, "")
		if z.ReadyAt <= e.Now {
			e.promote(z)
		}
	}
	return any
}

// beginCheckpoint starts a checkpoint on the most advanced non-busy up
// zone, if it has anything uncommitted.
func (e *Env) beginCheckpoint() {
	var leader *ZoneState
	for _, zi := range e.Spec.Zones {
		z := &e.Zones[zi]
		if z.State != Up || z.BusyUntil > e.Now {
			continue
		}
		if leader == nil || z.Progress > leader.Progress {
			leader = z
		}
	}
	if leader == nil {
		return
	}
	snap := leader.Progress
	if it := e.Cfg.IterationSeconds; it > 0 {
		// A checkpoint captures completed iterations only (the paper's
		// MPI_Pcontrol progress granularity).
		snap = snap / it * it
	}
	if snap <= e.Committed {
		return
	}
	e.ckBuf = checkpoint{zone: leader.Index, endsAt: e.Now + e.Cfg.CheckpointCost, snap: snap}
	e.ck = &e.ckBuf
	leader.BusyUntil = e.ck.endsAt
	e.timeline(TLCheckpointStart, leader.Index, "")
	if e.Cfg.CheckpointCost == 0 {
		e.commitCheckpoint()
	}
}

// commitCheckpoint finalises the in-progress checkpoint, updates P, and
// restarts waiting zones from the fresh checkpoint. The committed
// seconds ride along in the timeline event for run-chart rendering.
func (e *Env) commitCheckpoint() {
	e.Committed = e.ck.snap
	e.LastCheckpointAt = e.ck.endsAt
	e.res.OverheadSeconds += e.Cfg.CheckpointCost
	e.res.Checkpoints++
	e.timeline(TLCheckpointDone, e.ck.zone, strconv.FormatInt(e.Committed, 10))
	e.ck = nil
	e.startWaiting()
	e.Spec.Policy.ScheduleNextCheckpoint(e)
}

// needsProtectiveCheckpoint reports whether a spec switch should first
// commit uncommitted progress.
func (e *Env) needsProtectiveCheckpoint() bool {
	return e.UncommittedProgress() > 0 && e.AnyUp()
}

// applySpec reconfigures the run: zones leaving the spec (or whose bid
// changed — EC2 requires cancelling the request) are user-terminated.
func (e *Env) applySpec(spec RunSpec) {
	inNew := map[int]bool{}
	for _, zi := range spec.Zones {
		inNew[zi] = true
	}
	bidChanged := spec.Bid != e.Spec.Bid
	for _, zi := range e.Spec.Zones {
		if inNew[zi] && !bidChanged {
			continue
		}
		z := &e.Zones[zi]
		switch z.State {
		case Up:
			if e.ck != nil && e.ck.zone == zi {
				// The protective checkpoint was aborted with its zone.
				e.ck = nil
				e.res.AbortedCheckpoints++
			}
			e.releaseUser(z)
		case Pending, Waiting:
			z.State = Down
			e.timeline(TLZoneDown, zi, "spec-switch")
		}
	}
	e.Spec = spec
	e.res.SpecSwitches++
	e.res.Policy = spec.Policy.Name()
	e.timeline(TLSwitchSpec, -1, fmt.Sprintf("bid=%.2f n=%d policy=%s", spec.Bid, len(spec.Zones), spec.Policy.Name()))
	spec.Policy.Reset(e)
}

// minOnDemandDelay returns the smallest wall-clock delay in which the
// job can be finished on the on-demand market right now: either restart
// from the last checkpoint (restore cost t_r, then C − P of work) or
// restart from scratch (C of work, no restore). The value never
// increases over a run — P only grows — which is what makes the
// deadline guard sound.
func (e *Env) minOnDemandDelay() int64 {
	fromScratch := e.Cfg.Work
	if e.Committed <= 0 {
		return fromScratch
	}
	fromCkpt := e.Cfg.RestartCost + (e.Cfg.Work - e.Committed)
	if fromCkpt < fromScratch {
		return fromCkpt
	}
	return fromScratch
}

// guardSlack implements line 11 of Algorithm 1 on committed progress:
// how many seconds remain before the guard must fire. One step of
// margin covers the discrete time grid. Because minOnDemandDelay never
// increases and T_r shrinks by exactly one step per iteration, a
// positive slack at one step guarantees the job can still be finished
// in time at the next, so the guarantee holds under any termination
// pattern.
func (e *Env) guardSlack() int64 {
	return e.RemainingTime() - e.minOnDemandDelay() - e.Step
}

// finishViaOnDemand performs the deadline-guard migration. It picks the
// fastest feasible plan among: taking a final checkpoint of the leading
// up zone and restoring it on-demand; restoring the last committed
// checkpoint on-demand; or restarting the job from scratch on-demand.
// The latter two always fit the deadline when the guard fires on time;
// the first is taken opportunistically when it both fits and finishes
// sooner.
func finishViaOnDemand(env *Env) *Result {
	type plan struct {
		tcUsed, trUsed int64
		base           int64 // progress the on-demand run resumes from
	}
	delay := func(p plan) int64 { return p.tcUsed + p.trUsed + (env.Cfg.Work - p.base) }

	best := plan{} // restart from scratch: delay = Work
	if env.Committed > 0 {
		p := plan{trUsed: env.Cfg.RestartCost, base: env.Committed}
		if delay(p) < delay(best) {
			best = p
		}
	}
	if lead := env.Leader(); lead != nil {
		base := lead.Progress
		if it := env.Cfg.IterationSeconds; it > 0 {
			base = base / it * it // completed iterations only
		}
		if base > env.Committed {
			p := plan{tcUsed: env.Cfg.CheckpointCost, trUsed: env.Cfg.RestartCost, base: base}
			if delay(p) < delay(best) && delay(p) <= env.RemainingTime() {
				best = p
			}
		}
	}
	if best.tcUsed > 0 {
		env.Committed = best.base
		env.res.Checkpoints++
	}
	env.ck = nil // superseded by the migration
	closeAt := env.Now + best.tcUsed
	for zi := range env.Zones {
		z := &env.Zones[zi]
		switch z.State {
		case Up:
			z.Meter.Close(closeAt, market.ByUser, env.rateFn(zi), &env.ledger)
			z.Meter = nil
			z.State = Down
		case Pending, Waiting:
			z.State = Down
		}
	}
	finish := env.Now + delay(best)
	od := market.OpenOnDemandMeter(closeAt)
	od.Close(finish, market.ByUser, nil, &env.ledger)
	env.res.SwitchedOnDemand = true
	env.timeline(TLOnDemand, -1, "")
	return completeAt(env, finish)
}

// finishOnDemand handles a zero-zone spec: pure on-demand from the
// start, with no checkpoint or restart overhead.
func finishOnDemand(env *Env) *Result {
	finish := env.StartTime + env.Cfg.Work
	od := market.OpenOnDemandMeter(env.StartTime)
	od.Close(finish, market.ByUser, nil, &env.ledger)
	env.res.SwitchedOnDemand = true
	env.timeline(TLOnDemand, -1, "pure")
	return completeAt(env, finish)
}

// finishComplete handles a zone reaching the total work on the spot
// market at the given instant.
func finishComplete(env *Env, winner *ZoneState, finish int64) *Result {
	winner.Progress = env.Cfg.Work
	env.Committed = env.Cfg.Work
	for zi := range env.Zones {
		z := &env.Zones[zi]
		switch z.State {
		case Up:
			z.Meter.Close(finish, market.ByUser, env.rateFn(zi), &env.ledger)
			z.Meter = nil
			z.State = Down
		case Pending, Waiting:
			z.State = Down
		}
	}
	return completeAt(env, finish)
}

func completeAt(env *Env, finish int64) *Result {
	env.Committed = env.Cfg.Work // all work done, whichever path finished
	env.res.Completed = true
	env.res.FinishTime = finish
	env.res.DeadlineMet = finish <= env.Deadline()
	env.Now = finish
	env.timeline(TLComplete, -1, "")
	return env.finalize()
}

// finalize computes totals and returns the accumulated result.
func (e *Env) finalize() *Result {
	if t := e.Cfg.ObsTrace; t != nil {
		t.Record(obs.Span{
			Name: "sim.run", Clock: obs.SimClock,
			Start: e.StartTime, End: e.Now,
			Attrs: []obs.Attr{
				{Key: "strategy", Value: e.res.Strategy},
				{Key: "policy", Value: e.res.Policy},
			},
		})
	}
	n := float64(e.nodes())
	e.res.Cost = e.ledger.Total() * n
	e.res.SpotCost = e.ledger.SpotTotal() * n
	e.res.OnDemandCost = e.ledger.OnDemandTotal() * n
	e.res.Committed = e.Committed
	e.res.MaxProgress = e.Committed
	for i := range e.Zones {
		if p := e.Zones[i].Progress; p > e.res.MaxProgress {
			e.res.MaxProgress = p
		}
	}
	e.res.Ledger = e.ledger
	return &e.res
}
