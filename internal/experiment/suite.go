// Package experiment reproduces the paper's evaluation (§5–§7): the
// simulation setup, the 80 partially-overlapping experiment windows per
// volatility regime, and one driver per table and figure. Runs are
// deterministic for a fixed suite seed and execute in parallel across a
// worker pool.
package experiment

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/market"
	"repro/internal/pool"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// Experiment constants from §5.
const (
	// DefaultWork is the uninterrupted execution time C: 20 hours.
	DefaultWork = 20 * trace.Hour
	// DefaultWindows is the number of partially overlapping experiment
	// windows per volatility regime.
	DefaultWindows = 80
	// DefaultHistorySpan primes prediction models: 2 days.
	DefaultHistorySpan = 2 * 24 * trace.Hour
)

// Slacks are the evaluated slack fractions T_l (15% and 50% of C).
var Slacks = []float64{0.15, 0.50}

// CheckpointCosts are the evaluated checkpoint/restart costs in seconds.
var CheckpointCosts = []int64{300, 900}

// Regime names.
const (
	RegimeLow = "low"
	// RegimeLowSpike is the low-volatility window including the $20.02
	// spike the paper observed on March 13–14 2013 (behind Large-bid's
	// worst case).
	RegimeLowSpike = "low-spike"
	RegimeHigh     = "high"
)

// Suite holds the experiment-wide configuration.
type Suite struct {
	// Seed drives trace generation and run seeds.
	Seed uint64
	// Windows is the number of experiment windows per regime.
	Windows int
	// Work is C in seconds.
	Work int64
	// HistorySpan is the model bootstrap history per window.
	HistorySpan int64
	// Workers bounds parallelism; 0 selects GOMAXPROCS.
	Workers int
	// Delay is the queuing delay model; nil selects the measured one.
	Delay market.DelayModel
	// OracleEval routes the Adaptive scheme's estimation replays
	// through the per-permutation machine oracle instead of the
	// columnar batched engine — the suite-level counterpart of
	// core.Evaluator.DisableBatch. The two engines are bit-identical,
	// so figures must not change either way; this exists for A/B runs
	// that prove exactly that.
	OracleEval bool

	mu      sync.Mutex
	regimes map[string]*trace.Set
}

// NewSuite returns a suite with the paper's defaults.
func NewSuite(seed uint64) *Suite {
	return &Suite{
		Seed:        seed,
		Windows:     DefaultWindows,
		Work:        DefaultWork,
		HistorySpan: DefaultHistorySpan,
	}
}

// NewQuickSuite returns a reduced-scale suite (fewer windows) for tests
// and benchmarks; the statistical shape survives, the tails thin out.
func NewQuickSuite(seed uint64, windows int) *Suite {
	s := NewSuite(seed)
	s.Windows = windows
	return s
}

// Regime returns (and caches) the named regime's month-long trace.
func (s *Suite) Regime(name string) *trace.Set {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.regimes == nil {
		s.regimes = make(map[string]*trace.Set)
	}
	if set, ok := s.regimes[name]; ok {
		return set
	}
	var set *trace.Set
	switch name {
	case RegimeLow:
		set = tracegen.LowVolatility(s.Seed)
	case RegimeLowSpike:
		set = tracegen.LowVolatilityWithMegaSpike(s.Seed)
	case RegimeHigh:
		set = tracegen.HighVolatility(s.Seed + 1000)
	default:
		panic(fmt.Sprintf("experiment: unknown regime %q", name))
	}
	s.regimes[name] = set
	return set
}

// Deadline returns D for a slack fraction, aligned to the step grid.
func (s *Suite) Deadline(slack float64) int64 {
	d := int64(float64(s.Work) * (1 + slack))
	return d / trace.DefaultStep * trace.DefaultStep
}

// windowsFor tiles the regime trace into experiment windows whose run
// spans cover the deadline (plus a safety margin) and whose history is
// always complete.
func (s *Suite) windowsFor(set *trace.Set, slack float64) []trace.Window {
	runLen := s.Deadline(slack) + 2*trace.Hour
	step := set.Step()
	lo := set.Start() + s.HistorySpan
	hi := set.End() - runLen
	if hi < lo {
		return nil
	}
	count := s.Windows
	if count <= 0 {
		count = 1
	}
	out := make([]trace.Window, 0, count)
	span := hi - lo
	for i := 0; i < count; i++ {
		var off int64
		if count > 1 {
			off = span * int64(i) / int64(count-1)
		}
		start := (lo + off) / step * step
		out = append(out, trace.Window{
			Index:   i,
			Run:     set.Slice(start, start+runLen),
			History: set.Slice(start-s.HistorySpan, start),
		})
	}
	return out
}

// ExperimentWindows returns the regime's experiment windows for a slack
// fraction: the public form of the suite's tiling.
func (s *Suite) ExperimentWindows(regime string, slack float64) []trace.Window {
	return s.windowsFor(s.Regime(regime), slack)
}

// Config builds the sim configuration for one window.
func (s *Suite) Config(w trace.Window, slack float64, tc int64) sim.Config {
	return sim.Config{
		Trace:          w.Run,
		History:        w.History,
		Work:           s.Work,
		Deadline:       s.Deadline(slack),
		CheckpointCost: tc,
		RestartCost:    tc, // the paper assumes t_c = t_r (§5)
		Delay:          s.Delay,
		Seed:           s.Seed ^ (uint64(w.Index)+1)*0x9e3779b97f4a7c15,
	}
}

// newAdaptive builds the Adaptive strategy for one experiment task,
// honouring the suite's evaluator routing.
func (s *Suite) newAdaptive() sim.Strategy {
	a := core.NewAdaptive()
	if s.OracleEval {
		a.Eval = &core.Evaluator{DisableBatch: true}
	}
	return a
}

// parallel runs fn(0..n-1) across the shared worker pool and waits.
// A panicking task does not deadlock the batch: pool.Run drains the
// remaining work and re-raises the panic (annotated with the item
// index) on this goroutine.
func (s *Suite) parallel(n int, fn func(i int)) {
	pool.Run(s.Workers, n, fn)
}

// OnDemandReferenceCost is the grey line of every figure: the cost of
// running C entirely on-demand.
func (s *Suite) OnDemandReferenceCost() float64 {
	hours := (s.Work + trace.Hour - 1) / trace.Hour
	return float64(hours) * market.OnDemandRate
}

// MinSpotReferenceCost is the black line: C at the lowest spot price
// ($0.27/h).
func (s *Suite) MinSpotReferenceCost() float64 {
	hours := (s.Work + trace.Hour - 1) / trace.Hour
	return float64(hours) * 0.27
}
