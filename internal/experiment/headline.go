package experiment

import (
	"fmt"
	"math"
)

// Headline collects the paper's four headline claims with our measured
// counterparts:
//
//  1. Adaptive executes programs up to 7× cheaper than on-demand.
//  2. Adaptive is up to 44% cheaper than the best non-redundant
//     spot-market policy.
//  3. Best-case redundancy is 23.9% cheaper than Periodic under high
//     volatility with low slack (t_c = 300 s).
//  4. Adaptive's total cost never exceeded 20% above on-demand.
type Headline struct {
	// AdaptiveVsOnDemand is the best observed on-demand/adaptive median
	// ratio across cells (paper: up to 7×).
	AdaptiveVsOnDemand float64
	// AdaptiveVsOnDemandCell names the cell achieving it.
	AdaptiveVsOnDemandCell string
	// AdaptiveVsBestSingle is the largest observed saving of Adaptive's
	// median over the best single-zone policy median (paper: up to 44%).
	AdaptiveVsBestSingle     float64
	AdaptiveVsBestSingleCell string
	// RedundancyVsPeriodic is the saving of best-case redundancy over
	// Periodic in the high-volatility, low-slack, t_c = 300 s cell
	// (paper: 23.9%).
	RedundancyVsPeriodic float64
	// AdaptiveWorstOverOnDemand is the worst adaptive cost divided by
	// the on-demand cost across all cells (paper: never above 1.20).
	AdaptiveWorstOverOnDemand     float64
	AdaptiveWorstOverOnDemandCell string
}

// Headline computes the claims from full Figure 4 and Figure 5 sweeps.
func (s *Suite) Headline() (*Headline, error) {
	h := &Headline{}
	od := s.OnDemandReferenceCost()

	// Claim 3 from the Figure 4 high-volatility low-slack cell.
	cell, err := s.Fig4(RegimeHigh, Slacks[0], 300, nil)
	if err != nil {
		return nil, err
	}
	bestPeriodic := math.Inf(1)
	bestRed := math.Inf(1)
	for _, bid := range cell.Bids {
		if m := cell.Singles[KindPeriodic][bid].Median; m < bestPeriodic {
			bestPeriodic = m
		}
		if m := cell.BestRedundant[bid].Median; m < bestRed {
			bestRed = m
		}
	}
	h.RedundancyVsPeriodic = 1 - bestRed/bestPeriodic

	// Claims 1, 2 and 4 from the Figure 5 sweep.
	cells, err := s.Fig5All()
	if err != nil {
		return nil, err
	}
	h.AdaptiveWorstOverOnDemand = 0
	for _, c := range cells {
		name := cellName(c.Regime, c.Slack, c.Tc)
		if r := od / c.Adaptive.Median; r > h.AdaptiveVsOnDemand {
			h.AdaptiveVsOnDemand = r
			h.AdaptiveVsOnDemandCell = name
		}
		bestSingle := math.Min(c.Periodic.Median, c.MarkovDaly.Median)
		if saving := 1 - c.Adaptive.Median/bestSingle; saving > h.AdaptiveVsBestSingle {
			h.AdaptiveVsBestSingle = saving
			h.AdaptiveVsBestSingleCell = name
		}
		if r := c.Adaptive.Max / od; r > h.AdaptiveWorstOverOnDemand {
			h.AdaptiveWorstOverOnDemand = r
			h.AdaptiveWorstOverOnDemandCell = name
		}
	}
	return h, nil
}

func cellName(regime string, slack float64, tc int64) string {
	return fmt.Sprintf("%s/%.0f%%/%ds", regime, slack*100, tc)
}
