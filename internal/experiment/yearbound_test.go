package experiment

import "testing"

func TestYearBound(t *testing.T) {
	s := NewQuickSuite(1, 4)
	res, err := s.YearBound(8, 0.15, 300)
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows != 8 || res.Costs.N != 8 {
		t.Fatalf("windows = %d, n = %d", res.Windows, res.Costs.N)
	}
	if res.DeadlinesMissed != 0 {
		t.Fatalf("missed %d deadlines", res.DeadlinesMissed)
	}
	// The paper's bound: never above 20% over on-demand; enforce with a
	// small numerical margin.
	if res.WorstOverOnDemand > 1.25 {
		t.Fatalf("worst cost %.2fx on-demand exceeds the paper's bound", res.WorstOverOnDemand)
	}
	if _, err := s.YearBound(0, 0.15, 300); err == nil {
		t.Fatal("accepted zero windows")
	}
}
