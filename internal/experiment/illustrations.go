package experiment

import (
	"repro/internal/core"
	"repro/internal/market"
	"repro/internal/sim"
	"repro/internal/trace"
)

// The paper's Figures 1 and 3 are didactic timelines rather than
// measurements: Figure 1 walks through spot price movements, instance
// state transitions, checkpoint/restart costs and net progress for a
// periodic-checkpointing run; Figure 3 does the same for the Rising
// Edge policy. These drivers reconstruct equivalent scenarios on
// crafted traces and return the recorded run for report.RunChart.

// Illustration bundles a recorded run with its configuration and bid.
type Illustration struct {
	Cfg sim.Config
	Res *sim.Result
	Bid float64
}

// Fig1 reproduces the Figure 1 scenario: a single zone whose price
// crosses above the bid twice. The first termination loses all progress
// (no checkpoint yet); a periodic checkpoint then commits progress, so
// the second termination rolls back only to the checkpoint.
func (s *Suite) Fig1() (*Illustration, error) {
	const bid = 0.80
	segments := [][2]float64{
		{0.30, 10}, // T0: running
		{1.20, 6},  // Ta: S > B, terminated, progress lost
		{0.30, 20}, // Tb: re-initiated from scratch; checkpoint at T_s
		{1.20, 8},  // Tc: terminated again
		{0.30, 80}, // Td: restart from the checkpoint, finish
	}
	var prices []float64
	for _, seg := range segments {
		for i := 0; i < int(seg[1]); i++ {
			prices = append(prices, seg[0])
		}
	}
	set := trace.MustNewSet(trace.NewSeries("us-east-1a", 0, prices))
	cfg := sim.Config{
		Trace:          set,
		Work:           4 * trace.Hour,
		Deadline:       9 * trace.Hour,
		CheckpointCost: 300,
		RestartCost:    300,
		Delay:          market.FixedDelay(300),
		Seed:           1,
		RecordTimeline: true,
	}
	res, err := sim.Run(cfg, core.SingleZone(core.NewPeriodic(), bid, 0))
	if err != nil {
		return nil, err
	}
	return &Illustration{Cfg: cfg, Res: res, Bid: bid}, nil
}

// Fig3 reproduces the Figure 3 scenario: the Rising Edge policy
// checkpoints on each upward price movement below the bid, saving
// progress just before the price finally crosses the bid.
func (s *Suite) Fig3() (*Illustration, error) {
	const bid = 0.80
	segments := [][2]float64{
		{0.30, 12}, // stable hour
		{0.45, 10}, // rising edge → checkpoint
		{0.60, 10}, // rising edge → checkpoint
		{1.10, 8},  // crosses the bid: terminated, recent progress saved
		{0.35, 80}, // back below: restart from the last edge checkpoint
	}
	var prices []float64
	for _, seg := range segments {
		for i := 0; i < int(seg[1]); i++ {
			prices = append(prices, seg[0])
		}
	}
	set := trace.MustNewSet(trace.NewSeries("us-east-1a", 0, prices))
	cfg := sim.Config{
		Trace:          set,
		Work:           4 * trace.Hour,
		Deadline:       9 * trace.Hour,
		CheckpointCost: 300,
		RestartCost:    300,
		Delay:          market.FixedDelay(300),
		Seed:           1,
		RecordTimeline: true,
	}
	res, err := sim.Run(cfg, core.SingleZone(core.NewEdge(), bid, 0))
	if err != nil {
		return nil, err
	}
	return &Illustration{Cfg: cfg, Res: res, Bid: bid}, nil
}
