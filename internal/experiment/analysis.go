package experiment

import (
	"fmt"

	"repro/internal/trace"
	"repro/internal/tracegen"
	"repro/internal/vecar"
)

// Fig2Result reproduces Figure 2: per-zone up/down intervals over a
// 15-hour window at a fixed bid, plus the combined availability bar.
type Fig2Result struct {
	Bid   float64
	Start int64
	End   int64
	// ZoneIntervals maps zone name to its up intervals.
	ZoneIntervals map[string][]trace.Interval
	// ZoneUpFraction maps zone name to its availability.
	ZoneUpFraction map[string]float64
	// Combined is the union availability bar.
	Combined []trace.Interval
	// CombinedUpFraction is the union availability.
	CombinedUpFraction float64
}

// Fig2 computes the availability view over a 15 h window starting at
// the given offset into the regime trace. A bid ≤ 0 selects the
// regime's median price, which yields the mixed up/down structure the
// figure illustrates.
func (s *Suite) Fig2(regime string, offset int64, bid float64) (*Fig2Result, error) {
	set := s.Regime(regime)
	const span = 15 * trace.Hour
	start := set.Start() + offset
	if start+span > set.End() {
		return nil, fmt.Errorf("experiment: 15 h window at offset %d exceeds the trace", offset)
	}
	win := set.Slice(start, start+span)
	if bid <= 0 {
		bid = win.Series[0].Quantile(0.5)
	}
	out := &Fig2Result{
		Bid: bid, Start: win.Start(), End: win.End(),
		ZoneIntervals:      map[string][]trace.Interval{},
		ZoneUpFraction:     map[string]float64{},
		Combined:           win.CombinedUpIntervals(bid),
		CombinedUpFraction: win.CombinedUpFraction(bid),
	}
	for _, series := range win.Series {
		out.ZoneIntervals[series.Zone] = series.UpIntervals(bid)
		out.ZoneUpFraction[series.Zone] = series.UpFraction(bid)
	}
	return out, nil
}

// VarResult reproduces the §3.1 analysis: a VAR with AIC-selected lag
// over a long trace, summarised as same-zone versus cross-zone
// dependence, plus Granger-causality tests of the cross-zone links.
// The paper's wording maps directly: "there is some statistical
// significance in the dependencies across zones" (Granger p-values),
// "[but] the size of the effect is consistently 1-2 orders of magnitude
// smaller than within a zone" (the dependence ratio).
type VarResult struct {
	Lag        int
	Obs        int
	Dependence vecar.Dependence
	// Granger holds the cross-zone causality tests at the selected lag.
	Granger []vecar.GrangerResult
	// SignificantCross counts cross-zone links significant at α = 0.05.
	SignificantCross int
}

// VarAnalysis fits the VAR to a year-long composite trace (as the paper
// does over its 12-month history) and reports the dependence summary.
func (s *Suite) VarAnalysis(maxLag int) (*VarResult, error) {
	year := tracegen.Year(s.Seed)
	m, err := vecar.SelectLagSet(year, maxLag)
	if err != nil {
		return nil, err
	}
	series := make([][]float64, year.NumZones())
	for i, zs := range year.Series {
		series[i] = zs.Prices
	}
	granger, err := vecar.GrangerMatrix(series, m.Lag)
	if err != nil {
		return nil, err
	}
	res := &VarResult{Lag: m.Lag, Obs: m.Obs, Dependence: m.Dependence(), Granger: granger}
	for _, g := range granger {
		if g.Significant(0.05) {
			res.SignificantCross++
		}
	}
	return res, nil
}
