package experiment

import (
	"math"
	"testing"

	"repro/internal/trace"
)

func TestSuiteDefaults(t *testing.T) {
	s := NewSuite(1)
	if s.Windows != DefaultWindows || s.Work != DefaultWork || s.HistorySpan != DefaultHistorySpan {
		t.Fatalf("defaults: %+v", s)
	}
	if got := s.Deadline(0.15); got != 23*trace.Hour {
		t.Fatalf("deadline(0.15) = %d, want %d", got, 23*trace.Hour)
	}
	if got := s.Deadline(0.50); got != 30*trace.Hour {
		t.Fatalf("deadline(0.50) = %d, want %d", got, 30*trace.Hour)
	}
	if got := s.OnDemandReferenceCost(); got != 48.0 {
		t.Fatalf("on-demand ref = %g, want 48.00", got)
	}
	if math.Abs(s.MinSpotReferenceCost()-5.40) > 1e-9 {
		t.Fatalf("min spot ref = %g, want 5.40", s.MinSpotReferenceCost())
	}
}

func TestRegimesAreCachedAndDistinct(t *testing.T) {
	s := NewSuite(2)
	low := s.Regime(RegimeLow)
	if s.Regime(RegimeLow) != low {
		t.Fatal("regime not cached")
	}
	high := s.Regime(RegimeHigh)
	if low == high {
		t.Fatal("regimes alias")
	}
	spike := s.Regime(RegimeLowSpike)
	if spike.MaxPrice() < 20 {
		t.Fatal("low-spike regime lacks the mega spike")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown regime did not panic")
		}
	}()
	s.Regime("nope")
}

func TestWindowsForTiling(t *testing.T) {
	s := NewQuickSuite(3, 10)
	set := s.Regime(RegimeLow)
	ws := s.windowsFor(set, 0.15)
	if len(ws) != 10 {
		t.Fatalf("windows = %d", len(ws))
	}
	runLen := s.Deadline(0.15) + 2*trace.Hour
	for _, w := range ws {
		if w.Run.Duration() != runLen {
			t.Fatalf("window %d run = %d, want %d", w.Index, w.Run.Duration(), runLen)
		}
		if w.History.Duration() != s.HistorySpan {
			t.Fatalf("window %d history = %d, want %d", w.Index, w.History.Duration(), s.HistorySpan)
		}
		if w.History.End() != w.Run.Start() {
			t.Fatalf("window %d history/run not contiguous", w.Index)
		}
	}
}

func TestParallelCoversAllIndices(t *testing.T) {
	s := NewQuickSuite(1, 4)
	s.Workers = 4
	n := 100
	hit := make([]int, n)
	s.parallel(n, func(i int) { hit[i]++ })
	for i, h := range hit {
		if h != 1 {
			t.Fatalf("index %d executed %d times", i, h)
		}
	}
	// Degenerate sizes.
	s.parallel(0, func(int) { t.Fatal("fn called for n=0") })
	s.Workers = 1
	count := 0
	s.parallel(3, func(int) { count++ })
	if count != 3 {
		t.Fatalf("serial path executed %d", count)
	}
}

func TestFig4CellShape(t *testing.T) {
	s := NewQuickSuite(1, 4)
	cell, err := s.Fig4(RegimeHigh, 0.15, 300, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cell.Bids) != 3 {
		t.Fatalf("bids = %v", cell.Bids)
	}
	for _, kind := range SinglePolicies {
		for _, bid := range cell.Bids {
			b := cell.Singles[kind][bid]
			if b.N != 4*3 { // windows × zones
				t.Fatalf("%s@%.2f N = %d, want 12", kind, bid, b.N)
			}
			if math.IsNaN(b.Median) || b.Median <= 0 {
				t.Fatalf("%s@%.2f median = %g", kind, bid, b.Median)
			}
		}
		if cell.SinglesMerged[kind].N != 36 {
			t.Fatalf("merged N = %d", cell.SinglesMerged[kind].N)
		}
	}
	for _, bid := range cell.Bids {
		b := cell.BestRedundant[bid]
		if b.N != 4 {
			t.Fatalf("best-red@%.2f N = %d", bid, b.N)
		}
		// Best-case redundancy is a min over policies: its median can
		// never exceed any individual redundant policy's median, and
		// samples must be positive.
		if b.Min <= 0 {
			t.Fatalf("best-red@%.2f min = %g", bid, b.Min)
		}
	}
	if cell.OnDemandRef != 48 {
		t.Fatalf("od ref = %g", cell.OnDemandRef)
	}
	if got := len(cell.SingleSamples(KindPeriodic, 0.81)); got != 12 {
		t.Fatalf("raw samples = %d", got)
	}
	if got := len(cell.BestRedundantSamples(0.81)); got != 4 {
		t.Fatalf("raw best-red samples = %d", got)
	}
}

func TestFig4RedundancyBeatsSinglesHighVolLowSlack(t *testing.T) {
	s := NewQuickSuite(7, 6)
	cell, err := s.Fig4(RegimeHigh, 0.15, 300, nil)
	if err != nil {
		t.Fatal(err)
	}
	red := cell.BestRedundant[0.81].Median
	per := cell.Singles[KindPeriodic][0.81].Median
	if red >= per {
		t.Fatalf("best-red median %.2f not below periodic %.2f at B=0.81", red, per)
	}
}

func TestTableWinnersAreValid(t *testing.T) {
	s := NewQuickSuite(1, 3)
	rows, err := s.Table(300)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	valid := map[string]bool{"redundancy": true}
	for _, kind := range SinglePolicies {
		valid[kind] = true
	}
	for _, row := range rows {
		if !valid[row.Policy] {
			t.Fatalf("winner %q invalid", row.Policy)
		}
		if row.Median <= 0 || math.IsInf(row.Median, 1) {
			t.Fatalf("median = %g", row.Median)
		}
		if row.RunnerUpMedian < row.Median {
			t.Fatalf("runner-up %g beats winner %g", row.RunnerUpMedian, row.Median)
		}
	}
}

func TestFig2(t *testing.T) {
	s := NewQuickSuite(1, 4)
	res, err := s.Fig2(RegimeHigh, 5*24*trace.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.End-res.Start != 15*trace.Hour {
		t.Fatalf("span = %d", res.End-res.Start)
	}
	for zone, frac := range res.ZoneUpFraction {
		if frac < 0 || frac > 1 {
			t.Fatalf("zone %s fraction %g", zone, frac)
		}
		if res.CombinedUpFraction < frac-1e-12 {
			t.Fatalf("combined %g below zone %s %g", res.CombinedUpFraction, zone, frac)
		}
	}
	if _, err := s.Fig2(RegimeHigh, 31*24*trace.Hour, 0); err == nil {
		t.Fatal("accepted an out-of-range offset")
	}
}

func TestVarAnalysis(t *testing.T) {
	s := NewQuickSuite(1, 4)
	res, err := s.VarAnalysis(4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lag < 1 || res.Lag > 4 {
		t.Fatalf("lag = %d", res.Lag)
	}
	// §3.1: same-zone dependence dominates cross-zone by 1–2 orders of
	// magnitude; require at least a factor 5 on the synthetic year.
	if res.Dependence.Ratio < 5 {
		t.Fatalf("self/cross ratio = %g", res.Dependence.Ratio)
	}
}

func TestFig5CellAndBound(t *testing.T) {
	s := NewQuickSuite(5, 4)
	cell, err := s.Fig5(RegimeHigh, 0.15, 300)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Adaptive.N != 4 || cell.Periodic.N != 12 || cell.BestRedundant.N != 4 {
		t.Fatalf("sample counts: %+v", cell)
	}
	// The paper's §7.2 finding: Adaptive's cost never exceeded 20%
	// above on-demand; allow a hair of numerical headroom.
	if cell.Adaptive.Max > 1.25*cell.OnDemandRef {
		t.Fatalf("adaptive worst case %.2f above 1.25×on-demand", cell.Adaptive.Max)
	}
	if len(cell.AdaptiveSamples()) != 4 {
		t.Fatal("raw adaptive samples missing")
	}
}

func TestFig6LargeBidWorstCase(t *testing.T) {
	// Enough windows that some overlap the six-hour $20.02 spike 40%
	// into the month (the full suite's 80 windows tile densely).
	s := NewQuickSuite(9, 30)
	cell, err := s.Fig6(RegimeLowSpike, 0.15, 300)
	if err != nil {
		t.Fatal(err)
	}
	naive := cell.LargeBid[math.Inf(1)]
	// At least one window crosses the $20.02 spike: the naive variant's
	// worst case must far exceed Adaptive's.
	if naive.Max <= cell.Adaptive.Max {
		t.Fatalf("naive large-bid max %.2f not above adaptive max %.2f", naive.Max, cell.Adaptive.Max)
	}
	if naive.Max <= cell.OnDemandRef {
		t.Fatalf("naive large-bid max %.2f should exceed on-demand %.2f on the spike window", naive.Max, cell.OnDemandRef)
	}
	// The low threshold bounds the worst case below the naive variant.
	low := cell.LargeBid[0.27]
	if low.Max >= naive.Max {
		t.Fatalf("L=0.27 max %.2f not below naive max %.2f", low.Max, naive.Max)
	}
}

func TestThresholdLabel(t *testing.T) {
	if ThresholdLabel(math.Inf(1)) != "Naive" {
		t.Fatal("naive label")
	}
	if ThresholdLabel(20.02) != "Max" {
		t.Fatal("max label")
	}
	if ThresholdLabel(0.27) != "0.27" {
		t.Fatal("plain label")
	}
}

func TestNewPolicyKinds(t *testing.T) {
	for _, kind := range SinglePolicies {
		if NewPolicy(kind).Name() != kind {
			t.Fatalf("NewPolicy(%q) name mismatch", kind)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown kind did not panic")
		}
	}()
	NewPolicy("bogus")
}

func TestConvergence(t *testing.T) {
	s := NewQuickSuite(1, 8)
	pts, err := s.Convergence(RegimeHigh, 0.15, 300, KindPeriodic, 0.81, []int{2, 4, 8, 99})
	if err != nil {
		t.Fatal(err)
	}
	// The out-of-range count (99) is skipped.
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for i, p := range pts {
		if p.Median <= 0 {
			t.Fatalf("point %d median = %g", i, p.Median)
		}
	}
	if pts[0].Windows != 2 || pts[2].Windows != 8 {
		t.Fatalf("window counts = %+v", pts)
	}
	if _, err := s.Convergence(RegimeHigh, 0.15, 300, KindPeriodic, 0.81, []int{99}); err == nil {
		t.Fatal("accepted only-invalid counts")
	}
}

func TestHeadlineClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("headline sweep is slow")
	}
	s := NewQuickSuite(1, 4)
	h, err := s.Headline()
	if err != nil {
		t.Fatal(err)
	}
	if h.AdaptiveVsOnDemand < 2 {
		t.Errorf("adaptive vs on-demand ratio = %.2f, want clearly above 2", h.AdaptiveVsOnDemand)
	}
	if h.RedundancyVsPeriodic <= 0 {
		t.Errorf("redundancy saving = %.3f, want positive", h.RedundancyVsPeriodic)
	}
	if h.AdaptiveWorstOverOnDemand > 1.3 {
		t.Errorf("adaptive worst case = %.2f× on-demand, want bounded near 1.2", h.AdaptiveWorstOverOnDemand)
	}
	t.Logf("headline: %+v", h)
}
