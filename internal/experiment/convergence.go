package experiment

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
)

// ConvergencePoint is one step of the window-count methodology study:
// the cost median over the first Windows experiment windows.
type ConvergencePoint struct {
	Windows int
	Median  float64
	IQR     float64
}

// Convergence reports how a policy's cost median stabilises as windows
// accumulate — the methodology behind choosing 80 windows: enough that
// the median stops moving. It runs the cell once at the suite's window
// count and evaluates prefixes, so the work is paid once.
func (s *Suite) Convergence(regime string, slack float64, tc int64, kind string, bid float64, counts []int) ([]ConvergencePoint, error) {
	set := s.Regime(regime)
	windows := s.windowsFor(set, slack)
	if len(windows) == 0 {
		return nil, fmt.Errorf("experiment: no windows for %s at slack %g", regime, slack)
	}
	costs := make([]float64, len(windows))
	var tasks []task
	for wi, w := range windows {
		tasks = append(tasks, task{
			cfg:   s.Config(w, slack, tc),
			strat: core.SingleZone(NewPolicy(kind), bid, 0),
			out:   &costs[wi],
		})
	}
	if err := s.runTasks(tasks); err != nil {
		return nil, err
	}
	var out []ConvergencePoint
	for _, c := range counts {
		if c <= 0 || c > len(costs) {
			continue
		}
		box := stats.NewBox(costs[:c])
		out = append(out, ConvergencePoint{Windows: c, Median: box.Median, IQR: box.IQR()})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiment: no valid prefix counts in %v (have %d windows)", counts, len(costs))
	}
	return out, nil
}
