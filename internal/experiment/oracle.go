package experiment

import (
	"fmt"
	"math"

	"repro/internal/trace"
)

// OracleLowerBound computes a clairvoyant lower bound on the cost of
// finishing `work` seconds of computation within the window's first
// `deadline` seconds: with perfect knowledge of future prices, ignoring
// checkpoint/restart overheads and queuing delay, a scheduler needs at
// least ⌈work/hour⌉ disjoint instance-hours, pays each at its
// hour-start price, and may pick the cheapest zone for each hour. The
// optimal choice of disjoint hours is a small dynamic program over the
// 5-minute grid.
//
// No online policy can beat this bound (overheads only add cost and
// hour-start pricing is exact), so it anchors how close Adaptive gets
// to hindsight-optimal in EXPERIMENTS.md.
func OracleLowerBound(run *trace.Set, deadline, work int64) (float64, error) {
	if work <= 0 {
		return 0, nil
	}
	step := run.Step()
	if deadline > run.Duration() {
		deadline = run.Duration()
	}
	hoursNeeded := int((work + trace.Hour - 1) / trace.Hour)
	steps := int(deadline / step)
	stepsPerHour := int(trace.Hour / step)
	if steps < hoursNeeded*stepsPerHour {
		return 0, fmt.Errorf("experiment: deadline %d cannot hold %d instance-hours", deadline, hoursNeeded)
	}

	// minPrice[t]: the cheapest zone's price at grid point t (a spot
	// instance started there is billed that price for the next hour).
	minPrice := make([]float64, steps)
	for t := 0; t < steps; t++ {
		at := run.Start() + int64(t)*step
		best := math.Inf(1)
		for _, s := range run.Series {
			if p := s.PriceAt(at); p < best {
				best = p
			}
		}
		minPrice[t] = best
	}

	// dp[j] = min cost of j completed hours by the current grid point.
	const inf = math.MaxFloat64
	prev := make([][]float64, steps+1)
	for t := range prev {
		prev[t] = make([]float64, hoursNeeded+1)
		for j := range prev[t] {
			prev[t][j] = inf
		}
		prev[t][0] = 0
	}
	for t := 1; t <= steps; t++ {
		for j := 1; j <= hoursNeeded; j++ {
			// Idle through this step.
			best := prev[t-1][j]
			// Or finish an hour that started stepsPerHour ago.
			if t >= stepsPerHour && prev[t-stepsPerHour][j-1] < inf {
				if c := prev[t-stepsPerHour][j-1] + minPrice[t-stepsPerHour]; c < best {
					best = c
				}
			}
			prev[t][j] = best
		}
	}
	out := prev[steps][hoursNeeded]
	if out >= inf {
		return 0, fmt.Errorf("experiment: no feasible oracle schedule")
	}
	return out, nil
}

// OracleGap reports the median ratio of a policy's cost samples to the
// per-window oracle lower bound: 1.0 means hindsight-optimal.
type OracleGap struct {
	Regime string
	Slack  float64
	// OracleMedian is the median clairvoyant bound across windows.
	OracleMedian float64
	// MedianRatio maps a policy label to median(cost/oracle).
	MedianRatio map[string]float64
}

// OracleBounds computes the clairvoyant bound for every window of a
// regime/slack cell.
func (s *Suite) OracleBounds(regime string, slack float64) ([]float64, error) {
	windows := s.windowsFor(s.Regime(regime), slack)
	if len(windows) == 0 {
		return nil, fmt.Errorf("experiment: no windows for %s at slack %g", regime, slack)
	}
	out := make([]float64, len(windows))
	for i, w := range windows {
		lb, err := OracleLowerBound(w.Run, s.Deadline(slack), s.Work)
		if err != nil {
			return nil, err
		}
		out[i] = lb
	}
	return out, nil
}
