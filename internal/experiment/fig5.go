package experiment

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/stats"
)

// Fig5Bid is the bid the paper fixes for the Figure 5 comparison: $0.81
// "generally results in better median costs compared to other bids".
const Fig5Bid = 0.81

// Fig5Cell holds one panel of Figure 5: Adaptive against single-zone
// Periodic, single-zone Markov-Daly and best-case redundancy at B =
// $0.81, for one (volatility, slack, t_c) combination.
type Fig5Cell struct {
	Regime string
	Slack  float64
	Tc     int64
	// Adaptive is the box over windows.
	Adaptive stats.Box
	// Periodic and MarkovDaly merge the three zones, as in Figure 4.
	Periodic   stats.Box
	MarkovDaly stats.Box
	// BestRedundant is the per-window best case across the redundant
	// policy family.
	BestRedundant           stats.Box
	OnDemandRef, MinSpotRef float64
	// AdaptiveVsPeriodic is the Mann-Whitney comparison of the adaptive
	// and periodic cost samples: a small p-value with effect size below
	// 0.5 certifies that Adaptive's advantage in this cell is not
	// window-tiling noise.
	AdaptiveVsPeriodic stats.MannWhitneyResult

	adaptiveCosts []float64
}

// AdaptiveSamples exposes the raw adaptive costs.
func (c *Fig5Cell) AdaptiveSamples() []float64 { return c.adaptiveCosts }

// Fig5 reproduces one panel of Figure 5.
func (s *Suite) Fig5(regime string, slack float64, tc int64) (*Fig5Cell, error) {
	set := s.Regime(regime)
	windows := s.windowsFor(set, slack)
	if len(windows) == 0 {
		return nil, fmt.Errorf("experiment: regime %q cannot host any window at slack %g", regime, slack)
	}
	zones := make([]int, set.NumZones())
	for i := range zones {
		zones[i] = i
	}

	adaptive := make([]float64, len(windows))
	singles := map[string][]float64{
		KindPeriodic:   make([]float64, len(windows)*len(zones)),
		KindMarkovDaly: make([]float64, len(windows)*len(zones)),
	}
	redundant := map[string][]float64{}
	for _, kind := range RedundantPolicies {
		redundant[kind] = make([]float64, len(windows))
	}

	var tasks []task
	for wi, w := range windows {
		tasks = append(tasks, task{
			cfg:   s.Config(w, slack, tc),
			strat: s.newAdaptive(),
			out:   &adaptive[wi],
		})
		for kind := range singles {
			for zi := range zones {
				tasks = append(tasks, task{
					cfg:   s.Config(w, slack, tc),
					strat: core.SingleZone(NewPolicy(kind), Fig5Bid, zones[zi]),
					out:   &singles[kind][zi*len(windows)+wi],
				})
			}
		}
		for _, kind := range RedundantPolicies {
			tasks = append(tasks, task{
				cfg:   s.Config(w, slack, tc),
				strat: core.Redundant(NewPolicy(kind), Fig5Bid, zones),
				out:   &redundant[kind][wi],
			})
		}
	}
	if err := s.runTasks(tasks); err != nil {
		return nil, err
	}

	best := make([]float64, len(windows))
	for wi := range best {
		best[wi] = math.Inf(1)
		for _, kind := range RedundantPolicies {
			if c := redundant[kind][wi]; c < best[wi] {
				best[wi] = c
			}
		}
	}
	return &Fig5Cell{
		Regime: regime, Slack: slack, Tc: tc,
		Adaptive:           stats.NewBox(adaptive),
		Periodic:           stats.NewBox(singles[KindPeriodic]),
		MarkovDaly:         stats.NewBox(singles[KindMarkovDaly]),
		BestRedundant:      stats.NewBox(best),
		OnDemandRef:        s.OnDemandReferenceCost(),
		MinSpotRef:         s.MinSpotReferenceCost(),
		AdaptiveVsPeriodic: stats.MannWhitney(adaptive, singles[KindPeriodic]),
		adaptiveCosts:      adaptive,
	}, nil
}

// Fig5All runs every Figure 5 panel: 2 volatilities × 2 slacks × 2
// checkpoint costs, in the paper's (a)–(h) order.
func (s *Suite) Fig5All() ([]*Fig5Cell, error) {
	var out []*Fig5Cell
	for _, regime := range []string{RegimeLow, RegimeHigh} {
		for _, slack := range Slacks {
			for _, tc := range CheckpointCosts {
				cell, err := s.Fig5(regime, slack, tc)
				if err != nil {
					return nil, err
				}
				out = append(out, cell)
			}
		}
	}
	return out, nil
}
