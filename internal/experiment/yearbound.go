package experiment

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// resultHolder captures a task's full result alongside its cost slot.
type resultHolder struct{ r *sim.Result }

// YearBoundResult reproduces the paper's §7.2.1 bounded-cost claim over
// the full 12-month history: "total cost never exceeds 20% above the
// on-demand cost for our experiments involving 12-month data".
type YearBoundResult struct {
	// Windows is the number of experiment windows tiled across the year.
	Windows int
	// Costs summarises Adaptive's cost across them.
	Costs stats.Box
	// WorstOverOnDemand is max cost divided by the on-demand cost.
	WorstOverOnDemand float64
	// OnDemandRef is the on-demand cost.
	OnDemandRef float64
	// DeadlinesMissed must be zero (the guard's guarantee).
	DeadlinesMissed int
}

// YearBound tiles windows across the 12-month composite trace — calm,
// moderate and volatile months plus the $20.02 spike — and runs the
// Adaptive strategy on each, measuring the worst cost relative to
// on-demand.
func (s *Suite) YearBound(windows int, slack float64, tc int64) (*YearBoundResult, error) {
	if windows <= 0 {
		return nil, fmt.Errorf("experiment: non-positive window count")
	}
	year := tracegen.Year(s.Seed)
	runLen := s.Deadline(slack) + 2*trace.Hour
	step := year.Step()
	lo := year.Start() + s.HistorySpan
	hi := year.End() - runLen
	if hi < lo {
		return nil, fmt.Errorf("experiment: year trace cannot host the deadline")
	}
	costs := make([]float64, windows)
	missed := 0
	var tasks []task
	results := make([]*resultHolder, windows)
	for i := 0; i < windows; i++ {
		var off int64
		if windows > 1 {
			off = (hi - lo) * int64(i) / int64(windows-1)
		}
		start := (lo + off) / step * step
		w := trace.Window{
			Index:   i,
			Run:     year.Slice(start, start+runLen),
			History: year.Slice(start-s.HistorySpan, start),
		}
		holder := &resultHolder{}
		results[i] = holder
		tasks = append(tasks, task{
			cfg:   s.Config(w, slack, tc),
			strat: s.newAdaptive(),
			out:   &costs[i],
			res:   &holder.r,
		})
	}
	if err := s.runTasks(tasks); err != nil {
		return nil, err
	}
	for _, h := range results {
		if h.r != nil && !h.r.DeadlineMet {
			missed++
		}
	}
	od := s.OnDemandReferenceCost()
	box := stats.NewBox(costs)
	return &YearBoundResult{
		Windows:           windows,
		Costs:             box,
		WorstOverOnDemand: box.Max / od,
		OnDemandRef:       od,
		DeadlinesMissed:   missed,
	}, nil
}
