package experiment

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Policy kind identifiers used across the harness.
const (
	KindThreshold  = "threshold"
	KindEdge       = "edge"
	KindPeriodic   = "periodic"
	KindMarkovDaly = "markov-daly"
	// KindChangepoint is the repository's CUSUM-based extension of the
	// Edge family (not part of the paper's figures).
	KindChangepoint = "changepoint"
)

// SinglePolicies are the single-zone checkpoint policies of Figure 4,
// in the paper's x-axis order (T, E, P, M).
var SinglePolicies = []string{KindThreshold, KindEdge, KindPeriodic, KindMarkovDaly}

// RedundantPolicies are the policy families run with N = 3 redundancy;
// the figures show their per-experiment best case ("R").
var RedundantPolicies = []string{KindThreshold, KindEdge, KindPeriodic, KindMarkovDaly}

// NewPolicy builds a fresh policy instance of the given kind.
func NewPolicy(kind string) sim.CheckpointPolicy {
	switch kind {
	case KindThreshold:
		return core.NewThreshold()
	case KindEdge:
		return core.NewEdge()
	case KindPeriodic:
		return core.NewPeriodic()
	case KindMarkovDaly:
		return core.NewMarkovDaly()
	case KindChangepoint:
		return core.NewChangepoint()
	default:
		panic(fmt.Sprintf("experiment: unknown policy kind %q", kind))
	}
}

// task pairs a run with the slot its cost lands in.
type task struct {
	cfg   sim.Config
	strat sim.Strategy
	out   *float64
	res   **sim.Result
}

// runTasks executes tasks in parallel; the first error aborts the batch
// result (individual runs are deterministic, so errors are structural).
func (s *Suite) runTasks(tasks []task) error {
	errs := make([]error, len(tasks))
	s.parallel(len(tasks), func(i int) {
		res, err := sim.Run(tasks[i].cfg, tasks[i].strat)
		if err != nil {
			errs[i] = err
			*tasks[i].out = math.NaN()
			return
		}
		*tasks[i].out = res.Cost
		if tasks[i].res != nil {
			*tasks[i].res = res
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Fig4Cell holds one panel of Figure 4: every single-zone policy and
// the best-case redundancy policy, per bid and merged across the
// highlighted bids, as total cost per instance in dollars.
type Fig4Cell struct {
	Regime string
	Slack  float64
	Tc     int64
	Bids   []float64
	// Singles maps policy kind → bid → boxplot over windows × zones
	// (the paper merges the three zones into one box).
	Singles map[string]map[float64]stats.Box
	// SinglesMerged maps policy kind → boxplot across all bids.
	SinglesMerged map[string]stats.Box
	// BestRedundant maps bid → boxplot of the per-window minimum cost
	// across the redundant policy family (the paper's best-case R).
	BestRedundant map[float64]stats.Box
	// BestRedundantMerged merges R across bids.
	BestRedundantMerged stats.Box
	// References: the on-demand and minimum-spot cost lines.
	OnDemandRef, MinSpotRef float64
	// RedundancySignificance is the Mann-Whitney comparison of the
	// best-case redundancy costs against the best single-zone policy's
	// costs at the paper's $0.81 bid: a small p-value with effect size
	// below 0.5 certifies the cell's redundancy advantage.
	RedundancySignificance stats.MannWhitneyResult

	// raw samples for downstream analyses (headline ratios).
	singleCosts map[string]map[float64][]float64
	bestRedCost map[float64][]float64
}

// SingleSamples exposes the raw per-run costs of a single-zone policy
// at a bid (windows × zones entries).
func (c *Fig4Cell) SingleSamples(kind string, bid float64) []float64 {
	return c.singleCosts[kind][bid]
}

// BestRedundantSamples exposes the raw per-window best-case redundancy
// costs at a bid.
func (c *Fig4Cell) BestRedundantSamples(bid float64) []float64 {
	return c.bestRedCost[bid]
}

// Fig4 reproduces one panel of Figure 4 (and the underlying data for
// Tables 2 and 3): single-zone Threshold/Edge/Periodic/Markov-Daly
// versus best-case redundancy at the figure's bid prices.
func (s *Suite) Fig4(regime string, slack float64, tc int64, bids []float64) (*Fig4Cell, error) {
	if bids == nil {
		bids = core.Figure4Bids()
	}
	set := s.Regime(regime)
	windows := s.windowsFor(set, slack)
	if len(windows) == 0 {
		return nil, fmt.Errorf("experiment: regime %q cannot host any window at slack %g", regime, slack)
	}
	zones := make([]int, set.NumZones())
	for i := range zones {
		zones[i] = i
	}

	cell := &Fig4Cell{
		Regime: regime, Slack: slack, Tc: tc, Bids: bids,
		Singles:       map[string]map[float64]stats.Box{},
		SinglesMerged: map[string]stats.Box{},
		BestRedundant: map[float64]stats.Box{},
		OnDemandRef:   s.OnDemandReferenceCost(),
		MinSpotRef:    s.MinSpotReferenceCost(),
		singleCosts:   map[string]map[float64][]float64{},
		bestRedCost:   map[float64][]float64{},
	}

	var tasks []task

	// Single-zone runs: policy × bid × zone × window.
	for _, kind := range SinglePolicies {
		cell.singleCosts[kind] = map[float64][]float64{}
		for _, bid := range bids {
			costs := make([]float64, len(windows)*len(zones))
			cell.singleCosts[kind][bid] = costs
			for zi := range zones {
				for wi, w := range windows {
					tasks = append(tasks, task{
						cfg:   s.Config(w, slack, tc),
						strat: core.SingleZone(NewPolicy(kind), bid, zones[zi]),
						out:   &costs[zi*len(windows)+wi],
					})
				}
			}
		}
	}

	// Redundant runs: policy × bid × window; reduced to the per-window
	// best case afterwards.
	redCosts := map[string]map[float64][]float64{}
	for _, kind := range RedundantPolicies {
		redCosts[kind] = map[float64][]float64{}
		for _, bid := range bids {
			costs := make([]float64, len(windows))
			redCosts[kind][bid] = costs
			for wi, w := range windows {
				tasks = append(tasks, task{
					cfg:   s.Config(w, slack, tc),
					strat: core.Redundant(NewPolicy(kind), bid, zones),
					out:   &costs[wi],
				})
			}
		}
	}

	if err := s.runTasks(tasks); err != nil {
		return nil, err
	}

	// Aggregate.
	for _, kind := range SinglePolicies {
		cell.Singles[kind] = map[float64]stats.Box{}
		var merged []float64
		for _, bid := range bids {
			costs := cell.singleCosts[kind][bid]
			cell.Singles[kind][bid] = stats.NewBox(costs)
			merged = append(merged, costs...)
		}
		cell.SinglesMerged[kind] = stats.NewBox(merged)
	}
	var mergedBest []float64
	for _, bid := range bids {
		best := make([]float64, len(windows))
		for wi := range best {
			best[wi] = math.Inf(1)
			for _, kind := range RedundantPolicies {
				if c := redCosts[kind][bid][wi]; c < best[wi] {
					best[wi] = c
				}
			}
		}
		cell.bestRedCost[bid] = best
		cell.BestRedundant[bid] = stats.NewBox(best)
		mergedBest = append(mergedBest, best...)
	}
	cell.BestRedundantMerged = stats.NewBox(mergedBest)

	// Significance of the redundancy advantage at the paper's focus bid.
	const focusBid = 0.81
	if red, ok := cell.bestRedCost[focusBid]; ok {
		bestKind := ""
		bestMedian := math.Inf(1)
		for _, kind := range SinglePolicies {
			if m := cell.Singles[kind][focusBid].Median; m < bestMedian {
				bestMedian = m
				bestKind = kind
			}
		}
		if bestKind != "" {
			cell.RedundancySignificance = stats.MannWhitney(red, cell.singleCosts[bestKind][focusBid])
		}
	}
	return cell, nil
}

// OnDemandCost runs the on-demand baseline (it is price-independent,
// but kept as a run for fidelity).
func (s *Suite) OnDemandCost(regime string, slack float64, tc int64) (float64, error) {
	set := s.Regime(regime)
	windows := s.windowsFor(set, slack)
	if len(windows) == 0 {
		return 0, fmt.Errorf("experiment: no window available")
	}
	res, err := sim.Run(s.Config(windows[0], slack, tc), core.NewOnDemandOnly())
	if err != nil {
		return 0, err
	}
	return res.Cost, nil
}

// BestPolicy summarises a Table 2/3 cell: the policy (and bid) with the
// lowest median cost.
type BestPolicy struct {
	Regime string
	Slack  float64
	Tc     int64
	// Policy is the winning configuration: one of the single-zone
	// kinds, or "redundancy".
	Policy string
	Bid    float64
	Median float64
	// RunnerUp is the second-best configuration and its median.
	RunnerUp       string
	RunnerUpMedian float64
}

// BestPolicyCell reduces a Fig4Cell to its Table 2/3 entry.
func BestPolicyCell(cell *Fig4Cell) BestPolicy {
	best := BestPolicy{Regime: cell.Regime, Slack: cell.Slack, Tc: cell.Tc, Median: math.Inf(1), RunnerUpMedian: math.Inf(1)}
	consider := func(policy string, bid, median float64) {
		if median < best.Median {
			best.RunnerUp, best.RunnerUpMedian = best.Policy, best.Median
			best.Policy, best.Bid, best.Median = policy, bid, median
		} else if median < best.RunnerUpMedian {
			best.RunnerUp, best.RunnerUpMedian = policy, median
		}
	}
	for _, kind := range SinglePolicies {
		for _, bid := range cell.Bids {
			consider(kind, bid, cell.Singles[kind][bid].Median)
		}
	}
	for _, bid := range cell.Bids {
		consider("redundancy", bid, cell.BestRedundant[bid].Median)
	}
	return best
}

// Table reproduces Table 2 (t_c = 300 s) or Table 3 (t_c = 900 s): the
// optimal policy per (volatility, slack) cell.
func (s *Suite) Table(tc int64) ([]BestPolicy, error) {
	var out []BestPolicy
	for _, regime := range []string{RegimeLow, RegimeHigh} {
		for _, slack := range Slacks {
			cell, err := s.Fig4(regime, slack, tc, nil)
			if err != nil {
				return nil, err
			}
			out = append(out, BestPolicyCell(cell))
		}
	}
	return out, nil
}
