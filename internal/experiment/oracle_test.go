package experiment

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/market"
	"repro/internal/sim"
	"repro/internal/trace"
)

func constantSet(price float64, hours int) *trace.Set {
	n := hours * 12
	prices := make([]float64, n)
	for i := range prices {
		prices[i] = price
	}
	return trace.MustNewSet(trace.NewSeries("z", 0, prices))
}

func TestOracleConstantMarket(t *testing.T) {
	run := constantSet(0.30, 12)
	lb, err := OracleLowerBound(run, 10*trace.Hour, 4*trace.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lb-4*0.30) > 1e-9 {
		t.Fatalf("oracle = %g, want 1.20", lb)
	}
}

func TestOraclePicksCheapHours(t *testing.T) {
	// 2 expensive hours, then 4 cheap, then expensive again; the oracle
	// needs 3 hours within a 9-hour deadline and takes the cheap ones.
	var prices []float64
	for i := 0; i < 12*2; i++ {
		prices = append(prices, 2.00)
	}
	for i := 0; i < 12*4; i++ {
		prices = append(prices, 0.30)
	}
	for i := 0; i < 12*6; i++ {
		prices = append(prices, 2.00)
	}
	run := trace.MustNewSet(trace.NewSeries("z", 0, prices))
	lb, err := OracleLowerBound(run, 9*trace.Hour, 3*trace.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lb-3*0.30) > 1e-9 {
		t.Fatalf("oracle = %g, want 0.90", lb)
	}
}

func TestOracleRespectsDeadline(t *testing.T) {
	// Cheap hours exist only after the deadline: the oracle must pay
	// the early expensive ones.
	var prices []float64
	for i := 0; i < 12*4; i++ {
		prices = append(prices, 1.00)
	}
	for i := 0; i < 12*8; i++ {
		prices = append(prices, 0.30)
	}
	run := trace.MustNewSet(trace.NewSeries("z", 0, prices))
	lb, err := OracleLowerBound(run, 3*trace.Hour, 2*trace.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lb-2*1.00) > 1e-9 {
		t.Fatalf("oracle = %g, want 2.00", lb)
	}
}

func TestOracleUsesCheapestZone(t *testing.T) {
	a := make([]float64, 12*6)
	b := make([]float64, 12*6)
	for i := range a {
		a[i] = 1.00
		b[i] = 0.40
	}
	run := trace.MustNewSet(trace.NewSeries("a", 0, a), trace.NewSeries("b", 0, b))
	lb, err := OracleLowerBound(run, 5*trace.Hour, 2*trace.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lb-2*0.40) > 1e-9 {
		t.Fatalf("oracle = %g, want 0.80", lb)
	}
}

func TestOracleInfeasible(t *testing.T) {
	run := constantSet(0.30, 3)
	if _, err := OracleLowerBound(run, 2*trace.Hour, 4*trace.Hour); err == nil {
		t.Fatal("accepted an infeasible deadline")
	}
	if lb, err := OracleLowerBound(run, 2*trace.Hour, 0); err != nil || lb != 0 {
		t.Fatalf("zero work = %g, %v", lb, err)
	}
}

// No policy can beat the oracle on any window — the bound's defining
// property, checked against real runs.
func TestOracleIsALowerBound(t *testing.T) {
	s := NewQuickSuite(3, 5)
	slack := 0.15
	bounds, err := s.OracleBounds(RegimeHigh, slack)
	if err != nil {
		t.Fatal(err)
	}
	windows := s.windowsFor(s.Regime(RegimeHigh), slack)
	for i, w := range windows {
		for _, strat := range []sim.Strategy{
			core.SingleZone(core.NewPeriodic(), 0.81, 0),
			core.Redundant(core.NewMarkovDaly(), 2.40, []int{0, 1, 2}),
			core.NewAdaptive(),
		} {
			cfg := s.Config(w, slack, 300)
			cfg.Delay = market.FixedDelay(300)
			res, err := sim.Run(cfg, strat)
			if err != nil {
				t.Fatal(err)
			}
			if res.Cost < bounds[i]-1e-9 {
				t.Fatalf("window %d: %s cost %.2f beat the oracle bound %.2f",
					i, strat.Name(), res.Cost, bounds[i])
			}
		}
	}
}
