package experiment

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tracegen"
)

// Fig6Thresholds are the Large-bid cost-control thresholds of Figure 6:
// from the lowest observed price to the highest ($20.02, labelled Max),
// plus the thresholdless Naive variant (+Inf).
func Fig6Thresholds() []float64 {
	return []float64{0.27, 0.81, 2.40, tracegen.MaxObservedSpike, math.Inf(1)}
}

// ThresholdLabel renders a threshold the way the figure does.
func ThresholdLabel(l float64) string {
	if math.IsInf(l, 1) {
		return "Naive"
	}
	if l == tracegen.MaxObservedSpike {
		return "Max"
	}
	return fmt.Sprintf("%.2f", l)
}

// Fig6Cell holds one Figure 6 panel: Large-bid at each threshold
// against Adaptive, for one (volatility, slack, t_c) combination. The
// low-volatility panel uses the spike-bearing window (the paper's March
// 2013 window contained the $20.02 spike that produced Large-bid's
// $183.75 worst case).
type Fig6Cell struct {
	Regime string
	Slack  float64
	Tc     int64
	// LargeBid maps each threshold to its box; Max costs are the
	// circles of the figure (box.Max).
	LargeBid map[float64]stats.Box
	// Adaptive is the comparison box.
	Adaptive                stats.Box
	OnDemandRef, MinSpotRef float64
}

// Fig6 reproduces one Figure 6 panel.
func (s *Suite) Fig6(regime string, slack float64, tc int64) (*Fig6Cell, error) {
	set := s.Regime(regime)
	windows := s.windowsFor(set, slack)
	if len(windows) == 0 {
		return nil, fmt.Errorf("experiment: regime %q cannot host any window at slack %g", regime, slack)
	}

	thresholds := Fig6Thresholds()
	lb := map[float64][]float64{}
	for _, l := range thresholds {
		lb[l] = make([]float64, len(windows))
	}
	adaptive := make([]float64, len(windows))

	var tasks []task
	for wi, w := range windows {
		for _, l := range thresholds {
			tasks = append(tasks, task{
				cfg: s.Config(w, slack, tc),
				strat: core.NewStatic("large-bid", sim.RunSpec{
					Bid:    core.LargeBidAmount,
					Zones:  []int{0},
					Policy: core.NewLargeBid(l),
				}),
				out: &lb[l][wi],
			})
		}
		tasks = append(tasks, task{
			cfg:   s.Config(w, slack, tc),
			strat: s.newAdaptive(),
			out:   &adaptive[wi],
		})
	}
	if err := s.runTasks(tasks); err != nil {
		return nil, err
	}

	cell := &Fig6Cell{
		Regime: regime, Slack: slack, Tc: tc,
		LargeBid:    map[float64]stats.Box{},
		Adaptive:    stats.NewBox(adaptive),
		OnDemandRef: s.OnDemandReferenceCost(),
		MinSpotRef:  s.MinSpotReferenceCost(),
	}
	for _, l := range thresholds {
		cell.LargeBid[l] = stats.NewBox(lb[l])
	}
	return cell, nil
}

// Fig6All runs the Figure 6 panels for both volatility regimes across
// slacks and checkpoint costs; the low-volatility regime is the
// spike-bearing variant.
func (s *Suite) Fig6All() ([]*Fig6Cell, error) {
	var out []*Fig6Cell
	for _, regime := range []string{RegimeLowSpike, RegimeHigh} {
		for _, slack := range Slacks {
			for _, tc := range CheckpointCosts {
				cell, err := s.Fig6(regime, slack, tc)
				if err != nil {
					return nil, err
				}
				out = append(out, cell)
			}
		}
	}
	return out, nil
}
