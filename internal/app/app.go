// Package app models the tightly coupled MPI applications whose
// checkpoint costs drive the paper's experiments.
//
// The paper (§5) does not measure checkpoint costs for large
// applications directly; it argues from prior studies — up to 200 s for
// NAS benchmarks at 64 tasks with small problem sizes, tens of minutes
// for real applications with large working sets through an on-demand
// I/O server — and assumes t_c = t_r ∈ [300 s, 900 s]. This package
// makes that derivation explicit: an application Profile (ranks ×
// per-rank state) checkpointed through an IOServer (aggregate bandwidth
// + coordination overhead) yields the checkpoint and restart costs fed
// to the simulation, and the stock profiles land inside the paper's
// assumed range.
package app

import (
	"fmt"
	"math"
)

// Profile describes a tightly coupled MPI application configuration:
// fixed problem size and task count, per the paper's experiment
// definition.
type Profile struct {
	// Name identifies the profile, e.g. "nas-ft-d-128".
	Name string
	// Tasks is the number of MPI ranks.
	Tasks int
	// StatePerTaskMB is the checkpointed state per rank in MB.
	StatePerTaskMB float64
	// IterationSeconds is the application's progress-reporting
	// granularity (the paper monitors progress via MPI_Pcontrol at
	// iteration boundaries).
	IterationSeconds float64
}

// Validate reports configuration errors.
func (p Profile) Validate() error {
	if p.Tasks <= 0 {
		return fmt.Errorf("app: profile %q has %d tasks", p.Name, p.Tasks)
	}
	if p.StatePerTaskMB < 0 {
		return fmt.Errorf("app: profile %q has negative state", p.Name)
	}
	if p.IterationSeconds <= 0 {
		return fmt.Errorf("app: profile %q has non-positive iteration length", p.Name)
	}
	return nil
}

// CheckpointMB returns the total checkpoint volume in MB.
func (p Profile) CheckpointMB() float64 {
	return float64(p.Tasks) * p.StatePerTaskMB
}

// IOServer models the on-demand I/O server setup (EBS-backed, per §5)
// that stores checkpoints while spot instances run.
type IOServer struct {
	// WriteBandwidthMBps is the aggregate sustained write bandwidth.
	WriteBandwidthMBps float64
	// ReadBandwidthMBps is the aggregate sustained read bandwidth used
	// on restart.
	ReadBandwidthMBps float64
	// CoordinationSeconds is the fixed per-operation overhead:
	// quiescing the MPI job, draining in-flight messages, metadata.
	CoordinationSeconds float64
}

// Validate reports configuration errors.
func (io IOServer) Validate() error {
	if io.WriteBandwidthMBps <= 0 || io.ReadBandwidthMBps <= 0 {
		return fmt.Errorf("app: I/O server bandwidth must be positive")
	}
	if io.CoordinationSeconds < 0 {
		return fmt.Errorf("app: negative coordination overhead")
	}
	return nil
}

// DefaultIOServer returns an I/O server calibrated to the paper's
// cloud-era numbers: a single on-demand instance with EBS volumes
// sustaining a few hundred MB/s aggregate and tens of seconds of
// coordination overhead, so that mid-size working sets cost minutes to
// checkpoint (the paper's 300–900 s band).
func DefaultIOServer() IOServer {
	return IOServer{
		WriteBandwidthMBps:  250,
		ReadBandwidthMBps:   300,
		CoordinationSeconds: 30,
	}
}

// CheckpointSeconds returns the time to write the profile's checkpoint
// through the server.
func (io IOServer) CheckpointSeconds(p Profile) float64 {
	return io.CoordinationSeconds + p.CheckpointMB()/io.WriteBandwidthMBps
}

// RestartSeconds returns the time to read the checkpoint back and
// resume.
func (io IOServer) RestartSeconds(p Profile) float64 {
	return io.CoordinationSeconds + p.CheckpointMB()/io.ReadBandwidthMBps
}

// Costs derives the simulation's (t_c, t_r) for the profile, rounded up
// to whole seconds.
func Costs(p Profile, io IOServer) (tc, tr int64, err error) {
	if err := p.Validate(); err != nil {
		return 0, 0, err
	}
	if err := io.Validate(); err != nil {
		return 0, 0, err
	}
	return int64(math.Ceil(io.CheckpointSeconds(p))), int64(math.Ceil(io.RestartSeconds(p))), nil
}

// Catalog returns representative application profiles. The NAS-style
// entries follow the class/rank scaling of the NAS Parallel Benchmarks
// the paper cites (200 s-scale checkpoints for small problems at 64
// tasks); the production-style entries have the multi-hundred-GB
// working sets that push checkpoints toward the paper's 900 s bound.
func Catalog() []Profile {
	return []Profile{
		{Name: "nas-cg-c-64", Tasks: 64, StatePerTaskMB: 420, IterationSeconds: 8},
		{Name: "nas-ft-d-128", Tasks: 128, StatePerTaskMB: 660, IterationSeconds: 15},
		{Name: "nas-lu-d-128", Tasks: 128, StatePerTaskMB: 510, IterationSeconds: 12},
		{Name: "cosmology-512", Tasks: 512, StatePerTaskMB: 350, IterationSeconds: 60},
		{Name: "climate-256", Tasks: 256, StatePerTaskMB: 800, IterationSeconds: 90},
	}
}

// Lookup returns the catalog profile with the given name.
func Lookup(name string) (Profile, error) {
	for _, p := range Catalog() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("app: unknown profile %q", name)
}
