package app

import (
	"testing"
	"testing/quick"
)

func TestCatalogProfilesLandInPaperBand(t *testing.T) {
	io := DefaultIOServer()
	for _, p := range Catalog() {
		tc, tr, err := Costs(p, io)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		// The paper assumes checkpoint/restart overheads of 300-900 s
		// for real applications; allow the small NAS benchmarks down to
		// the ~130 s scale it cites for small problem sizes.
		if tc < 100 || tc > 900 {
			t.Errorf("%s: t_c = %d s outside the paper's band", p.Name, tc)
		}
		if tr <= 0 || tr > 900 {
			t.Errorf("%s: t_r = %d s outside the paper's band", p.Name, tr)
		}
	}
}

func TestAtLeastOneLargeProfile(t *testing.T) {
	io := DefaultIOServer()
	large := 0
	for _, p := range Catalog() {
		tc, _, err := Costs(p, io)
		if err != nil {
			t.Fatal(err)
		}
		if tc >= 600 {
			large++
		}
	}
	if large == 0 {
		t.Fatal("no catalog profile reaches the paper's high checkpoint-cost regime")
	}
}

func TestCostsMonotoneInStateSize(t *testing.T) {
	io := DefaultIOServer()
	f := func(tasks uint8, stateMB uint16) bool {
		p := Profile{Name: "x", Tasks: 1 + int(tasks%64), StatePerTaskMB: float64(stateMB), IterationSeconds: 10}
		bigger := p
		bigger.StatePerTaskMB += 100
		tc1, tr1, err1 := Costs(p, io)
		tc2, tr2, err2 := Costs(bigger, io)
		if err1 != nil || err2 != nil {
			return false
		}
		return tc2 >= tc1 && tr2 >= tr1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRestartUsesReadBandwidth(t *testing.T) {
	p := Profile{Name: "x", Tasks: 100, StatePerTaskMB: 1000, IterationSeconds: 10}
	io := IOServer{WriteBandwidthMBps: 100, ReadBandwidthMBps: 400, CoordinationSeconds: 0}
	tc, tr, err := Costs(p, io)
	if err != nil {
		t.Fatal(err)
	}
	if tc != 1000 || tr != 250 {
		t.Fatalf("tc=%d tr=%d, want 1000/250", tc, tr)
	}
}

func TestValidation(t *testing.T) {
	good := Profile{Name: "x", Tasks: 4, StatePerTaskMB: 10, IterationSeconds: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Profile{
		{Name: "a", Tasks: 0, StatePerTaskMB: 10, IterationSeconds: 1},
		{Name: "b", Tasks: 4, StatePerTaskMB: -1, IterationSeconds: 1},
		{Name: "c", Tasks: 4, StatePerTaskMB: 10, IterationSeconds: 0},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("profile %q accepted", p.Name)
		}
	}
	badIO := []IOServer{
		{WriteBandwidthMBps: 0, ReadBandwidthMBps: 1},
		{WriteBandwidthMBps: 1, ReadBandwidthMBps: 0},
		{WriteBandwidthMBps: 1, ReadBandwidthMBps: 1, CoordinationSeconds: -1},
	}
	for i, io := range badIO {
		if err := io.Validate(); err == nil {
			t.Errorf("io server %d accepted", i)
		}
	}
	if _, _, err := Costs(bad[0], DefaultIOServer()); err == nil {
		t.Error("Costs accepted a bad profile")
	}
	if _, _, err := Costs(good, badIO[0]); err == nil {
		t.Error("Costs accepted a bad io server")
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("nas-ft-d-128"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("Lookup accepted an unknown profile")
	}
}

func TestCheckpointMB(t *testing.T) {
	p := Profile{Name: "x", Tasks: 10, StatePerTaskMB: 5, IterationSeconds: 1}
	if got := p.CheckpointMB(); got != 50 {
		t.Fatalf("CheckpointMB = %g", got)
	}
}
