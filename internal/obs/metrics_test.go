package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestCounterGauge exercises the basic counter and gauge operations.
func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Add(3)
	c.Inc()
	if got := c.Load(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	var g Gauge
	g.Add(5)
	g.Add(-2)
	if got := g.Load(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
	g.Set(7)
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

// TestFastPathZeroAlloc pins the acceptance bar: the counter, gauge and
// histogram fast paths must not allocate.
func TestFastPathZeroAlloc(t *testing.T) {
	var c Counter
	if n := testing.AllocsPerRun(100, func() { c.Add(1) }); n != 0 {
		t.Errorf("Counter.Add allocates %v per op, want 0", n)
	}
	var g Gauge
	if n := testing.AllocsPerRun(100, func() { g.Add(-1) }); n != 0 {
		t.Errorf("Gauge.Add allocates %v per op, want 0", n)
	}
	h := NewHistogram(nil)
	if n := testing.AllocsPerRun(100, func() { h.Observe(0.003) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v per op, want 0", n)
	}
}

// TestHistogramQuantile checks the interpolation against hand-computed
// values (one observation in the (0.0025, 0.005] bucket).
func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(nil)
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %g, want 0", got)
	}
	h.Observe(0.003)
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 0.00375},
		{0.9, 0.00475},
		{0.99, 0.004975},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
	count, sum := h.Snapshot()
	if count != 1 || math.Abs(sum-0.003) > 1e-12 {
		t.Fatalf("snapshot = (%d, %g), want (1, 0.003)", count, sum)
	}
}

// TestHistogramOverflow checks values beyond the last bound land in the
// overflow bucket and quantiles saturate at the last finite bound.
func TestHistogramOverflow(t *testing.T) {
	h := NewHistogram(nil)
	h.Observe(1e6)
	last := DefaultLatencyBounds[len(DefaultLatencyBounds)-1]
	if got := h.Quantile(0.5); got != last {
		t.Fatalf("overflow quantile = %g, want %g", got, last)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines;
// run under -race this certifies the lock-free paths, and the totals
// must balance.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(nil)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				h.Observe(0.01)
			}
		}()
	}
	wg.Wait()
	count, sum := h.Snapshot()
	if count != workers*per {
		t.Fatalf("count = %d, want %d", count, workers*per)
	}
	if math.Abs(sum-float64(workers*per)*0.01) > 1e-6 {
		t.Fatalf("sum = %g, want %g", sum, float64(workers*per)*0.01)
	}
}

// TestRegistryRenderOrder checks metrics render in registration order
// with the exact exposition syntax.
func TestRegistryRenderOrder(t *testing.T) {
	var r Registry
	var a, b Counter
	var g Gauge
	h := NewHistogram(nil)
	r.Counter("x_total", &a)
	r.Gauge("x_in_flight", &g)
	r.Counter("y_total", &b)
	r.Histogram("x_latency_seconds", "stage", "eval", []float64{0.5}, h)
	a.Add(1)
	b.Add(2)
	g.Set(3)
	h.Observe(0.003)

	var buf bytes.Buffer
	r.Render(&buf)
	want := strings.Join([]string{
		"x_total 1",
		"x_in_flight 3",
		"y_total 2",
		`x_latency_seconds{stage="eval",quantile="0.5"} 0.00375`,
		`x_latency_seconds_count{stage="eval"} 1`,
		`x_latency_seconds_sum{stage="eval"} 0.003`,
		"",
	}, "\n")
	if buf.String() != want {
		t.Fatalf("render mismatch:\ngot:\n%swant:\n%s", buf.String(), want)
	}
}

// TestRegistryUnlabeledHistogram checks the label-free exposition form.
func TestRegistryUnlabeledHistogram(t *testing.T) {
	var r Registry
	h := NewHistogram(nil)
	r.Histogram("z_seconds", "", "", []float64{0.5}, h)
	var buf bytes.Buffer
	r.Render(&buf)
	want := "z_seconds{quantile=\"0.5\"} 0\nz_seconds_count 0\nz_seconds_sum 0\n"
	if buf.String() != want {
		t.Fatalf("render mismatch:\ngot %q\nwant %q", buf.String(), want)
	}
}
