// Package obs is the repository's unified observability layer: a
// stdlib-only metrics registry (lock-free counters, gauges and
// quantile-estimating histograms rendered in the Prometheus text
// exposition format), span-based tracing with a fixed-capacity
// ring-buffer exporter, and the HTTP debug surface (/debug/trace,
// /debug/pprof) the daemons mount behind flags.
//
// The design goals, in order:
//
//   - Zero-allocation, lock-free fast paths. Counter.Add, Gauge.Add and
//     Histogram.Observe are single atomic operations so they can sit on
//     the evaluator's permutation-sweep and the engine's replay hot
//     paths without moving the benchmarks.
//   - Nil-safety everywhere. A nil *Tracer records nothing and a zero
//     ActiveSpan is inert, so instrumented code never branches on
//     whether observability is enabled.
//   - Two clocks. HTTP-facing spans are stamped in wall-clock
//     nanoseconds; replay and evaluation spans are stamped in simulated
//     seconds, so a trace of a planning request lines up with the
//     simulated windows it replayed.
//
// The quote service's /metrics endpoint renders through a Registry and
// stays byte-compatible with the pre-registry exposition; a golden test
// in internal/quote pins that.
package obs
