package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The fast path is one
// atomic add: lock-free and allocation-free. The zero value is ready to
// use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a metric that can move in both directions (e.g. in-flight
// requests). Like Counter, updates are single atomic operations. The
// zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// DefaultLatencyBounds are log-spaced latency histogram bucket upper
// bounds in seconds (0.5 ms – 60 s, plus an implicit +Inf bucket) — the
// buckets the quote service has always exposed.
var DefaultLatencyBounds = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram is a fixed-bucket histogram with approximate quantiles
// (linear interpolation inside the winning bucket). Observe is
// lock-free and allocation-free: one atomic add per bucket, count and
// sum. Use NewHistogram; the zero value is not ready.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is the +Inf overflow
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, updated by CAS
}

// NewHistogram returns an empty histogram over the given sorted bucket
// upper bounds (nil selects DefaultLatencyBounds).
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBounds
	}
	return &Histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.buckets[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Quantile approximates the q-quantile (0 < q < 1); an empty histogram
// reports 0. Values in the overflow bucket report the last finite
// bound.
func (h *Histogram) Quantile(q float64) float64 {
	count := h.count.Load()
	if count == 0 {
		return 0
	}
	rank := q * float64(count)
	var cum int64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[len(h.bounds)-1]
			if i < len(h.bounds) {
				hi = h.bounds[i]
			}
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// Snapshot returns the observation count and sum.
func (h *Histogram) Snapshot() (count int64, sum float64) {
	return h.count.Load(), math.Float64frombits(h.sumBits.Load())
}

// Registry renders a set of metrics in the Prometheus text exposition
// format, in registration order, so an exposition migrated from
// hand-written Fprintf lines stays byte-identical. Metrics are owned by
// their callers (typically struct fields) and registered by pointer;
// the registry only formats. The zero value is ready to use; a Registry
// is safe for concurrent use.
type Registry struct {
	mu    sync.Mutex
	items []func(io.Writer)
}

// Counter registers c to render as "name value".
func (r *Registry) Counter(name string, c *Counter) {
	r.add(func(w io.Writer) { fmt.Fprintf(w, "%s %d\n", name, c.Load()) })
}

// Gauge registers g to render as "name value".
func (r *Registry) Gauge(name string, g *Gauge) {
	r.add(func(w io.Writer) { fmt.Fprintf(w, "%s %d\n", name, g.Load()) })
}

// Histogram registers h to render as quantile series plus _count and
// _sum lines under the given family name. A non-empty labelKey/labelVal
// pair is attached to every line (e.g. stage="eval"), matching the
// quote service's historical exposition.
func (r *Registry) Histogram(name, labelKey, labelVal string, quantiles []float64, h *Histogram) {
	r.add(func(w io.Writer) {
		for _, q := range quantiles {
			if labelKey != "" {
				fmt.Fprintf(w, "%s{%s=%q,quantile=\"%g\"} %g\n", name, labelKey, labelVal, q, h.Quantile(q))
			} else {
				fmt.Fprintf(w, "%s{quantile=\"%g\"} %g\n", name, q, h.Quantile(q))
			}
		}
		count, sum := h.Snapshot()
		if labelKey != "" {
			fmt.Fprintf(w, "%s_count{%s=%q} %d\n", name, labelKey, labelVal, count)
			fmt.Fprintf(w, "%s_sum{%s=%q} %g\n", name, labelKey, labelVal, sum)
		} else {
			fmt.Fprintf(w, "%s_count %d\n", name, count)
			fmt.Fprintf(w, "%s_sum %g\n", name, sum)
		}
	})
}

// add appends one renderer under the lock.
func (r *Registry) add(f func(io.Writer)) {
	r.mu.Lock()
	r.items = append(r.items, f)
	r.mu.Unlock()
}

// Render writes every registered metric in registration order.
func (r *Registry) Render(w io.Writer) {
	r.mu.Lock()
	items := r.items
	r.mu.Unlock()
	for _, f := range items {
		f(w)
	}
}
