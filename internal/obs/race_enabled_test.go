//go:build race

package obs

// raceEnabled reports whether the race detector is on; the allocation
// pin skips under it because sync.Pool deliberately drops Puts there.
const raceEnabled = true
