package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// traceDump is the /debug/trace response document.
type traceDump struct {
	// Total counts spans ever recorded, including overwritten ones.
	Total uint64 `json:"total"`
	// Capacity is the ring capacity.
	Capacity int `json:"capacity"`
	// Spans is the ring's current contents, oldest first.
	Spans []Span `json:"spans"`
}

// TraceHandler serves the tracer's ring buffer as a JSON document:
// {"total": N, "capacity": C, "spans": [...]}, oldest span first. Mount
// it at /debug/trace.
func TraceHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(traceDump{Total: t.Total(), Capacity: t.Capacity(), Spans: t.Spans()})
	})
}

// PProfHandler returns the net/http/pprof suite rooted at
// /debug/pprof/, for explicit mounting on a daemon's mux (nothing is
// registered on http.DefaultServeMux by this package).
func PProfHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Mount attaches the debug endpoints to mux: /debug/trace when tracer
// is non-nil, and the /debug/pprof suite when enablePProf is set.
func Mount(mux *http.ServeMux, tracer *Tracer, enablePProf bool) {
	if tracer != nil {
		mux.Handle("GET /debug/trace", TraceHandler(tracer))
	}
	if enablePProf {
		mux.Handle("/debug/pprof/", PProfHandler())
	}
}
