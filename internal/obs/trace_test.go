package obs

import (
	"context"
	"sync"
	"testing"
)

// TestNilTracerSafe checks every entry point is a no-op on a nil
// tracer and a zero ActiveSpan.
func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(Span{Name: "x"})
	if got := tr.Spans(); got != nil {
		t.Fatalf("nil tracer spans = %v, want nil", got)
	}
	if tr.Total() != 0 || tr.Capacity() != 0 {
		t.Fatalf("nil tracer total/capacity nonzero")
	}
	sp := tr.Start("root")
	if sp.Recording() {
		t.Fatalf("nil tracer span is recording")
	}
	child := sp.Child("child")
	child.SetAttr("k", "v")
	child.End()
	sp.End()

	var zero ActiveSpan
	zero.SetAttr("k", "v")
	zero.End()
	if zero.Recording() {
		t.Fatalf("zero ActiveSpan is recording")
	}
}

// TestSpanHierarchy checks trace/parent/ID propagation through root and
// child spans, and that SetAttr is visible even when the ActiveSpan is
// copied (it holds a pointer to the span).
func TestSpanHierarchy(t *testing.T) {
	tr := NewTracer(16)
	root := tr.Start("root")
	copied := root // ActiveSpan copies must share the underlying span
	child := root.Child("child")
	child.SetAttr("stage", "eval")
	child.End()
	copied.SetAttr("status", "200")
	root.End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	c, r := spans[0], spans[1] // child ends first
	if c.Name != "child" || r.Name != "root" {
		t.Fatalf("span order = %q, %q; want child, root", c.Name, r.Name)
	}
	if c.Trace != r.Trace {
		t.Fatalf("child trace %d != root trace %d", c.Trace, r.Trace)
	}
	if c.Parent != r.ID {
		t.Fatalf("child parent %d != root id %d", c.Parent, r.ID)
	}
	if r.Parent != 0 {
		t.Fatalf("root parent = %d, want 0", r.Parent)
	}
	if len(c.Attrs) != 1 || c.Attrs[0] != (Attr{Key: "stage", Value: "eval"}) {
		t.Fatalf("child attrs = %v", c.Attrs)
	}
	if len(r.Attrs) != 1 || r.Attrs[0] != (Attr{Key: "status", Value: "200"}) {
		t.Fatalf("root attrs = %v (SetAttr on a copy must stick)", r.Attrs)
	}
	if r.End < r.Start || c.End < c.Start {
		t.Fatalf("span end precedes start")
	}
}

// TestRingWraparound fills the ring past capacity and checks the oldest
// spans are overwritten and Spans returns oldest-first.
func TestRingWraparound(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 7; i++ {
		tr.Record(Span{Name: "s", Clock: SimClock, Start: int64(i), End: int64(i)})
	}
	if tr.Total() != 7 {
		t.Fatalf("total = %d, want 7", tr.Total())
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	for i, s := range spans {
		if want := int64(i + 3); s.Start != want {
			t.Fatalf("spans[%d].Start = %d, want %d (oldest first)", i, s.Start, want)
		}
	}
}

// TestRecordDefaults checks Record fills in ID, Trace and Clock when
// the caller leaves them zero.
func TestRecordDefaults(t *testing.T) {
	tr := NewTracer(4)
	tr.Record(Span{Name: "bare"})
	s := tr.Spans()[0]
	if s.ID == 0 || s.Trace != s.ID {
		t.Fatalf("ID/Trace defaults not applied: %+v", s)
	}
	if s.Clock != WallClock {
		t.Fatalf("clock default = %q, want %q", s.Clock, WallClock)
	}
	tr.Record(Span{Name: "sim", Clock: SimClock})
	if got := tr.Spans()[1].Clock; got != SimClock {
		t.Fatalf("explicit clock overwritten: %q", got)
	}
}

// TestContextRoundTrip checks NewContext/FromContext carry the active
// span, and that missing or nil contexts yield the inert zero span.
func TestContextRoundTrip(t *testing.T) {
	tr := NewTracer(4)
	root := tr.Start("root")
	ctx := NewContext(context.Background(), root)
	got := FromContext(ctx)
	if !got.Recording() {
		t.Fatalf("span lost through context")
	}
	got.Child("child").End()
	root.End()
	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Parent != spans[1].ID {
		t.Fatalf("child via context not parented to root: %+v", spans)
	}
	if FromContext(context.Background()).Recording() {
		t.Fatalf("empty context yields recording span")
	}
	if FromContext(nil).Recording() { //nolint:staticcheck // nil-safety is the contract under test
		t.Fatalf("nil context yields recording span")
	}
}

// TestTracerConcurrent records from many goroutines; run under -race
// this certifies the locking, and Total must balance.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(32)
	const workers, per = 8, 100
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				sp := tr.Start("op")
				sp.SetAttr("n", "1")
				sp.End()
			}
		}()
	}
	wg.Wait()
	if tr.Total() != workers*per {
		t.Fatalf("total = %d, want %d", tr.Total(), workers*per)
	}
	if got := len(tr.Spans()); got != 32 {
		t.Fatalf("ring holds %d spans, want 32", got)
	}
}
