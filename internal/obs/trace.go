package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Span clocks. Wall spans stamp nanoseconds since the Unix epoch; sim
// spans stamp seconds of simulated time, so replay spans line up with
// the trace windows they covered rather than with the wall clock of the
// machine that replayed them.
const (
	// WallClock marks wall-clock spans (nanoseconds since the epoch).
	WallClock = "wall"
	// SimClock marks simulated-time spans (seconds of simulated time).
	SimClock = "sim"
)

// Attr is one span annotation.
type Attr struct {
	// Key names the attribute.
	Key string `json:"k"`
	// Value is the attribute value.
	Value string `json:"v"`
}

// Span is one completed traced operation. IDs are process-unique;
// Parent links child spans to the span they were started under, and
// Trace groups every span of one request.
type Span struct {
	// Trace groups the spans of one root operation.
	Trace uint64 `json:"trace,omitempty"`
	// ID is the span's process-unique id (assigned by Record if zero).
	ID uint64 `json:"id,omitempty"`
	// Parent is the enclosing span's ID, zero for roots.
	Parent uint64 `json:"parent,omitempty"`
	// Name identifies the operation (e.g. "quote.eval", "sim.run").
	Name string `json:"name"`
	// Clock is WallClock or SimClock.
	Clock string `json:"clock"`
	// Start and End are timestamps in the span's clock.
	Start int64 `json:"start"`
	End   int64 `json:"end"`
	// Attrs carries optional annotations.
	Attrs []Attr `json:"attrs,omitempty"`
}

// Tracer records completed spans into a fixed-capacity ring buffer:
// recording never blocks on an exporter and never grows memory — once
// the ring is full the oldest spans are overwritten. A nil *Tracer is
// valid and records nothing, so instrumented code needs no enabled
// checks. A Tracer is safe for concurrent use.
type Tracer struct {
	ids   atomic.Uint64
	mu    sync.Mutex
	buf   []Span
	next  int // write cursor once the ring has wrapped
	total uint64
}

// DefaultSpanCapacity is the ring capacity NewTracer selects for
// non-positive requests.
const DefaultSpanCapacity = 4096

// NewTracer returns a tracer whose ring holds capacity spans
// (non-positive selects DefaultSpanCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &Tracer{buf: make([]Span, 0, capacity)}
}

// Record appends one completed span to the ring, assigning its ID (and
// Trace, for roots) if unset. The span's attributes are copied into the
// ring slot's reused backing, so recording is allocation-free once the
// ring has wrapped and each slot's backing has grown to the working
// attribute count. It is nil-safe and safe for concurrent use.
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	if s.ID == 0 {
		s.ID = t.ids.Add(1)
	}
	if s.Trace == 0 {
		s.Trace = s.ID
	}
	if s.Clock == "" {
		s.Clock = WallClock
	}
	t.mu.Lock()
	var dst *Span
	if len(t.buf) < cap(t.buf) {
		t.buf = t.buf[:len(t.buf)+1]
		dst = &t.buf[len(t.buf)-1]
	} else {
		dst = &t.buf[t.next]
		t.next = (t.next + 1) % len(t.buf)
	}
	attrs := dst.Attrs[:0]
	*dst = s
	dst.Attrs = append(attrs, s.Attrs...)
	t.total++
	t.mu.Unlock()
}

// Spans returns a copy of the ring's contents, oldest first. Attribute
// slices are deep-copied — the ring reuses slot backings across
// overwrites, so callers must never see them.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.buf))
	appendCopy := func(src []Span) {
		for i := range src {
			sp := src[i]
			if len(sp.Attrs) > 0 {
				sp.Attrs = append([]Attr(nil), sp.Attrs...)
			} else {
				sp.Attrs = nil
			}
			out = append(out, sp)
		}
	}
	if len(t.buf) == cap(t.buf) {
		appendCopy(t.buf[t.next:])
		appendCopy(t.buf[:t.next])
	} else {
		appendCopy(t.buf)
	}
	return out
}

// Total returns how many spans have ever been recorded (including those
// the ring has since overwritten).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Capacity returns the ring capacity (0 for a nil tracer).
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return cap(t.buf)
}

// pooledSpan is the sync.Pool unit behind ActiveSpan: the span under
// construction plus a generation counter that End bumps before
// releasing, so stale handles (SetAttr/End after End, double End)
// detect the reuse and become no-ops instead of corrupting whichever
// span the pool hands the backing to next.
type pooledSpan struct {
	Span
	gen uint64
}

// spanPool recycles in-progress spans (and their attribute backings)
// across Start/End cycles, making the steady-state span lifecycle
// allocation-free.
var spanPool = sync.Pool{New: func() any { return new(pooledSpan) }}

// getSpan leases a pooled span initialized to s, preserving the pooled
// attribute backing.
func getSpan(s Span) *pooledSpan {
	ps := spanPool.Get().(*pooledSpan)
	attrs := ps.Attrs[:0]
	ps.Span = s
	ps.Attrs = attrs
	return ps
}

// ActiveSpan is an in-progress wall-clock span. The zero value is inert
// — every method is a no-op — which is what FromContext and a nil
// tracer's Start return, so callers never branch on tracing being
// enabled.
type ActiveSpan struct {
	t   *Tracer
	s   *pooledSpan
	gen uint64
}

// Start begins a wall-clock root span. On a nil tracer it returns the
// inert zero ActiveSpan.
func (t *Tracer) Start(name string) ActiveSpan {
	if t == nil {
		return ActiveSpan{}
	}
	id := t.ids.Add(1)
	ps := getSpan(Span{Trace: id, ID: id, Name: name, Clock: WallClock, Start: time.Now().UnixNano()})
	return ActiveSpan{t: t, s: ps, gen: ps.gen}
}

// Child begins a wall-clock span under a. A child started from an
// already-ended span is inert.
func (a ActiveSpan) Child(name string) ActiveSpan {
	if a.t == nil || a.s.gen != a.gen {
		return ActiveSpan{}
	}
	ps := getSpan(Span{
		Trace: a.s.Trace, ID: a.t.ids.Add(1), Parent: a.s.ID,
		Name: name, Clock: WallClock, Start: time.Now().UnixNano(),
	})
	return ActiveSpan{t: a.t, s: ps, gen: ps.gen}
}

// SetAttr annotates the span. Attributes set after End are lost.
func (a ActiveSpan) SetAttr(key, value string) {
	if a.t == nil || a.s.gen != a.gen {
		return
	}
	a.s.Attrs = append(a.s.Attrs, Attr{Key: key, Value: value})
}

// End stamps the span's end time, records it and releases the span's
// backing for reuse. A second End (or any later use of the handle) is a
// no-op.
func (a ActiveSpan) End() {
	if a.t == nil || a.s.gen != a.gen {
		return
	}
	a.s.End = time.Now().UnixNano()
	a.s.gen++
	a.t.Record(a.s.Span)
	spanPool.Put(a.s)
}

// Recording reports whether the span is backed by a tracer.
func (a ActiveSpan) Recording() bool { return a.t != nil }

// ctxKey keys the active span in a context.
type ctxKey struct{}

// NewContext returns ctx carrying the span, for handlers to hang child
// spans off.
func NewContext(ctx context.Context, s ActiveSpan) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the context's active span, or the inert zero
// ActiveSpan when none (or a nil context) is present.
func FromContext(ctx context.Context) ActiveSpan {
	if ctx == nil {
		return ActiveSpan{}
	}
	s, _ := ctx.Value(ctxKey{}).(ActiveSpan)
	return s
}
