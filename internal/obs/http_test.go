package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestTraceHandler checks /debug/trace serves the ring as JSON with
// total, capacity and oldest-first spans.
func TestTraceHandler(t *testing.T) {
	tr := NewTracer(8)
	sp := tr.Start("quote.request")
	sp.SetAttr("cache", "hit")
	sp.End()
	tr.Record(Span{Name: "sim.run", Clock: SimClock, Start: 0, End: 3600})

	rec := httptest.NewRecorder()
	TraceHandler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var dump struct {
		Total    uint64 `json:"total"`
		Capacity int    `json:"capacity"`
		Spans    []Span `json:"spans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if dump.Total != 2 || dump.Capacity != 8 || len(dump.Spans) != 2 {
		t.Fatalf("dump = %+v", dump)
	}
	if dump.Spans[0].Name != "quote.request" || dump.Spans[1].Clock != SimClock {
		t.Fatalf("spans = %+v", dump.Spans)
	}
}

// TestMount checks Mount wires /debug/trace and the pprof suite onto a
// private mux, and omits them when disabled.
func TestMount(t *testing.T) {
	mux := http.NewServeMux()
	tr := NewTracer(4)
	Mount(mux, tr, true)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	for _, path := range []string{"/debug/trace", "/debug/pprof/", "/debug/pprof/cmdline"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}

	bare := http.NewServeMux()
	Mount(bare, nil, false)
	rec := httptest.NewRecorder()
	bare.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("disabled /debug/trace = %d, want 404", rec.Code)
	}
	rec = httptest.NewRecorder()
	bare.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("disabled /debug/pprof/ = %d, want 404", rec.Code)
	}
}

// TestPProfIndex checks the pprof index actually renders profiles (the
// handler is mounted explicitly, not via DefaultServeMux).
func TestPProfIndex(t *testing.T) {
	rec := httptest.NewRecorder()
	PProfHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("pprof index = %d, want 200", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "goroutine") {
		t.Fatalf("pprof index missing profiles: %.200s", rec.Body.String())
	}
}
