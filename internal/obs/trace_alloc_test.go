package obs

import (
	"sync"
	"testing"

	"repro/internal/leak"
)

// TestSpanSteadyStateAllocs pins the decision-capture span path at zero
// steady-state allocations: once the ring has wrapped and the span pool
// and per-slot attribute backings are warm, a full
// Start/SetAttr×4/Child/End lifecycle must not allocate.
func TestSpanSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under the race detector, defeating the warm pool")
	}
	tr := NewTracer(64)
	record := func() {
		sp := tr.Start("adaptive.decision")
		sp.SetAttr("trigger", "hour-boundary")
		sp.SetAttr("bid", "1.07")
		sp.SetAttr("zones", "2")
		sp.SetAttr("cost", "14.8")
		child := sp.Child("adaptive.decision.eval")
		child.SetAttr("grid", "45")
		child.End()
		sp.End()
	}
	// Warm past the ring capacity so every slot's attribute backing has
	// reached the working shape and the span pool is primed.
	for i := 0; i < 3*tr.Capacity(); i++ {
		record()
	}
	if allocs := testing.AllocsPerRun(200, record); allocs != 0 {
		t.Fatalf("steady-state span lifecycle allocates %.1f/op, want 0", allocs)
	}
}

// TestSpanEndedHandleInert verifies the generation guard: using a span
// handle after End (double End, late SetAttr, late Child) must neither
// record again nor corrupt whichever span has since reused the pooled
// backing.
func TestSpanEndedHandleInert(t *testing.T) {
	tr := NewTracer(16)
	sp := tr.Start("first")
	sp.End()
	before := tr.Total()
	sp.End() // double End: no second record
	if tr.Total() != before {
		t.Fatalf("double End recorded a span: total %d -> %d", before, tr.Total())
	}
	// The pooled backing is likely reused by the next span; stale
	// writes must not touch it.
	next := tr.Start("second")
	sp.SetAttr("stale", "write")
	if c := sp.Child("stale-child"); c.Recording() {
		t.Fatal("Child of an ended span should be inert")
	}
	next.End()
	spans := tr.Spans()
	last := spans[len(spans)-1]
	if last.Name != "second" || len(last.Attrs) != 0 {
		t.Fatalf("stale handle corrupted reused span: %+v", last)
	}
}

// TestSpanRecordConcurrent hammers the recording path from many
// goroutines under the race detector and leak-checks the exercise: the
// ring must retain exactly capacity spans, every retained span must be
// internally consistent (its attributes are its own, not a neighbour's)
// and no goroutine may outlive the run.
func TestSpanRecordConcurrent(t *testing.T) {
	base := leak.Baseline()
	tr := NewTracer(128)
	const workers = 8
	const perWorker = 400
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			names := [...]string{"alpha", "beta", "gamma", "delta"}
			for i := 0; i < perWorker; i++ {
				sp := tr.Start(names[w%len(names)])
				sp.SetAttr("k", names[(w+i)%len(names)])
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Total(); got != workers*perWorker {
		t.Fatalf("recorded %d spans, want %d", got, workers*perWorker)
	}
	spans := tr.Spans()
	if len(spans) != tr.Capacity() {
		t.Fatalf("ring holds %d spans, want capacity %d", len(spans), tr.Capacity())
	}
	for _, sp := range spans {
		if len(sp.Attrs) != 1 || sp.Attrs[0].Key != "k" {
			t.Fatalf("span %q has inconsistent attrs: %+v", sp.Name, sp.Attrs)
		}
	}
	leak.CheckT(t, base)
}

// TestSpansDeepCopiesAttrs verifies readers never alias ring slot
// backings: mutating a returned span's attributes must not show up in a
// later read.
func TestSpansDeepCopiesAttrs(t *testing.T) {
	tr := NewTracer(4)
	sp := tr.Start("op")
	sp.SetAttr("key", "original")
	sp.End()
	first := tr.Spans()
	first[0].Attrs[0].Value = "mutated"
	second := tr.Spans()
	if second[0].Attrs[0].Value != "original" {
		t.Fatalf("Spans() aliased the ring backing: %+v", second[0].Attrs)
	}
}
