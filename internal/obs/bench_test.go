package obs

import "testing"

// BenchmarkCounterAdd measures the counter fast path (must report 0
// allocs/op).
func BenchmarkCounterAdd(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkHistogramObserve measures the histogram fast path (must
// report 0 allocs/op).
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.003)
	}
}

// BenchmarkHistogramObserveParallel measures contended observes.
func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewHistogram(nil)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.003)
		}
	})
}

// BenchmarkSpanStartEnd measures a full wall span lifecycle.
func BenchmarkSpanStartEnd(b *testing.B) {
	tr := NewTracer(DefaultSpanCapacity)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Start("op").End()
	}
}

// BenchmarkTracerRecord measures the one-shot sim-span path used by the
// replay engine.
func BenchmarkTracerRecord(b *testing.B) {
	tr := NewTracer(DefaultSpanCapacity)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record(Span{Name: "sim.run", Clock: SimClock, Start: 0, End: 3600})
	}
}
