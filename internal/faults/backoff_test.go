package faults

import (
	"context"
	"testing"
	"time"
)

func TestBackoffDoublesWithoutJitter(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Cap: time.Hour, Jitter: -1}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond, 800 * time.Millisecond}
	for i, w := range want {
		if got := b.Delay(i); got != w {
			t.Fatalf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestBackoffCap(t *testing.T) {
	b := Backoff{Base: time.Second, Cap: 5 * time.Second, Jitter: -1}
	for i := 0; i < 20; i++ {
		if got := b.Delay(i); got > 5*time.Second {
			t.Fatalf("Delay(%d) = %v exceeds cap", i, got)
		}
	}
	if b.Delay(10) != 5*time.Second {
		t.Fatalf("Delay(10) = %v, want the cap", b.Delay(10))
	}
}

func TestBackoffJitterBoundedAndDeterministic(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Cap: time.Hour, Jitter: 0.2, Seed: 7}
	var jittered bool
	for i := 0; i < 10; i++ {
		nominal := 100 * time.Millisecond << uint(i)
		got := b.Delay(i)
		lo := time.Duration(float64(nominal) * 0.8)
		hi := time.Duration(float64(nominal) * 1.2)
		if got < lo || got > hi {
			t.Fatalf("Delay(%d) = %v outside [%v, %v]", i, got, lo, hi)
		}
		if got != nominal {
			jittered = true
		}
		if again := b.Delay(i); again != got {
			t.Fatalf("Delay(%d) not deterministic: %v then %v", i, got, again)
		}
	}
	if !jittered {
		t.Fatal("jitter never moved a delay")
	}
	other := Backoff{Base: 100 * time.Millisecond, Cap: time.Hour, Jitter: 0.2, Seed: 8}
	var moved bool
	for i := 0; i < 10; i++ {
		if other.Delay(i) != b.Delay(i) {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("distinct seeds produced identical jitter")
	}
}

func TestBackoffDefaults(t *testing.T) {
	var b Backoff
	if d := b.Delay(0); d <= 0 {
		t.Fatalf("zero-value Delay(0) = %v", d)
	}
	for i := 0; i < 20; i++ {
		if d := b.Delay(i); d > DefaultCap+time.Duration(float64(DefaultCap)*DefaultJitter) {
			t.Fatalf("zero-value Delay(%d) = %v way past the default cap", i, d)
		}
	}
}

func TestSleepHonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := Sleep(ctx, time.Hour); err != context.Canceled {
		t.Fatalf("err = %v, want canceled", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("Sleep blocked despite cancellation")
	}
}

func TestSleepZero(t *testing.T) {
	if err := Sleep(context.Background(), 0); err != nil {
		t.Fatalf("Sleep(0) = %v", err)
	}
}
