package faults

import (
	"context"
	"io"
	"math"
	"reflect"
	"testing"
	"time"
)

// sliceFeed serves fixed rows, for injector tests.
type sliceFeed struct {
	zones []string
	rows  [][]float64
	next  int
}

func (f *sliceFeed) Zones() []string { return f.zones }
func (f *sliceFeed) Step() int64     { return 300 }
func (f *sliceFeed) Next(context.Context) ([]float64, error) {
	if f.next >= len(f.rows) {
		return nil, io.EOF
	}
	row := make([]float64, len(f.rows[f.next]))
	copy(row, f.rows[f.next])
	f.next++
	return row, nil
}

func rows(n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = []float64{float64(i), float64(i) + 100}
	}
	return out
}

func drain(t *testing.T, f Feed) [][]float64 {
	t.Helper()
	var out [][]float64
	for {
		row, err := f.Next(context.Background())
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, row)
	}
}

func TestInjectorPassthrough(t *testing.T) {
	inner := &sliceFeed{zones: []string{"a", "b"}, rows: rows(5)}
	inj := &Injector{Inner: inner}
	got := drain(t, inj)
	if len(got) != 5 || got[3][0] != 3 {
		t.Fatalf("passthrough altered the stream: %v", got)
	}
	if inj.Step() != 300 || len(inj.Zones()) != 2 {
		t.Fatal("delegation broken")
	}
}

func TestInjectorDrop(t *testing.T) {
	inner := &sliceFeed{zones: []string{"a", "b"}, rows: rows(6)}
	inj := &Injector{Inner: inner, Scenario: Scenario{Plans: []Plan{{At: 1, Kind: Drop, Duration: 2}}}}
	got := drain(t, inj)
	if len(got) != 4 {
		t.Fatalf("got %d rows, want 4", len(got))
	}
	if got[0][0] != 0 || got[1][0] != 3 {
		t.Fatalf("dropped the wrong rows: %v", got)
	}
}

func TestInjectorDuplicate(t *testing.T) {
	inner := &sliceFeed{zones: []string{"a", "b"}, rows: rows(3)}
	inj := &Injector{Inner: inner, Scenario: Scenario{Plans: []Plan{{At: 1, Kind: Duplicate, Duration: 2}}}}
	got := drain(t, inj)
	// 3 inner rows + 2 duplicated positions = 5 delivered.
	if len(got) != 5 {
		t.Fatalf("got %d rows, want 5", len(got))
	}
	if got[1][0] != 0 || got[2][0] != 0 || got[3][0] != 1 {
		t.Fatalf("duplication wrong: %v", got)
	}
}

func TestInjectorCorruptIsDetectableAndZoneScoped(t *testing.T) {
	inner := &sliceFeed{zones: []string{"a", "b"}, rows: rows(4)}
	inj := &Injector{Inner: inner, Scenario: Scenario{
		Seed:  9,
		Plans: []Plan{{At: 2, Kind: Corrupt, Duration: 1, Zones: []string{"b"}}},
	}}
	got := drain(t, inj)
	if len(got) != 4 {
		t.Fatalf("got %d rows", len(got))
	}
	if got[2][0] != 2 {
		t.Fatalf("zone a was corrupted too: %v", got[2])
	}
	b := got[2][1]
	if !math.IsNaN(b) && !math.IsInf(b, 0) && b >= 0 {
		t.Fatalf("corrupted price %v is not detectably invalid", b)
	}
}

func TestInjectorBlackout(t *testing.T) {
	inner := &sliceFeed{zones: []string{"a", "b"}, rows: rows(4)}
	inj := &Injector{Inner: inner, Scenario: Scenario{
		Plans: []Plan{{At: 1, Kind: Blackout, Duration: 2, Zones: []string{"a"}}},
	}}
	got := drain(t, inj)
	if got[1][0] != BlackoutPrice || got[2][0] != BlackoutPrice {
		t.Fatalf("blackout did not hit zone a: %v", got)
	}
	if got[1][1] == BlackoutPrice {
		t.Fatalf("blackout leaked into zone b: %v", got[1])
	}
	if got[3][0] != 3 {
		t.Fatalf("blackout did not end: %v", got[3])
	}
}

func TestInjectorStallSleepsAndObserves(t *testing.T) {
	inner := &sliceFeed{zones: []string{"a", "b"}, rows: rows(3)}
	var slept []time.Duration
	var seen []Observation
	inj := &Injector{
		Inner:    inner,
		Scenario: Scenario{Plans: []Plan{{At: 1, Kind: Stall, Duration: 1, Delay: time.Minute}}},
		Sleep: func(_ context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
		OnFault: func(o Observation) { seen = append(seen, o) },
	}
	got := drain(t, inj)
	if len(got) != 3 {
		t.Fatalf("stall lost rows: %v", got)
	}
	if len(slept) != 1 || slept[0] != time.Minute {
		t.Fatalf("slept %v, want one minute-long stall", slept)
	}
	if len(seen) != 1 || seen[0].Kind != Stall || seen[0].Index != 1 {
		t.Fatalf("observations = %v", seen)
	}
}

func TestInjectorStallHonoursCancellation(t *testing.T) {
	inner := &sliceFeed{zones: []string{"a"}, rows: rows(3)}
	inj := &Injector{
		Inner:    inner,
		Scenario: Scenario{Plans: []Plan{{At: 0, Kind: Stall, Duration: 1, Delay: time.Hour}}},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := inj.Next(ctx); err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestInjectorDeterminism(t *testing.T) {
	sc := RandomScenario(42, 50, []string{"a", "b"}, time.Second, time.Millisecond)
	run := func() [][]float64 {
		inner := &sliceFeed{zones: []string{"a", "b"}, rows: rows(50)}
		inj := &Injector{Inner: inner, Scenario: sc, Sleep: func(context.Context, time.Duration) error { return nil }}
		return drain(t, inj)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths diverge: %d vs %d", len(a), len(b))
	}
	for i := range a {
		for j := range a[i] {
			av, bv := a[i][j], b[i][j]
			if av != bv && !(math.IsNaN(av) && math.IsNaN(bv)) {
				t.Fatalf("row %d diverges: %v vs %v", i, a[i], b[i])
			}
		}
	}
}

func TestRandomScenarioSeeded(t *testing.T) {
	a := RandomScenario(7, 100, []string{"a", "b"}, time.Second, time.Millisecond)
	b := RandomScenario(7, 100, []string{"a", "b"}, time.Second, time.Millisecond)
	if len(a.Plans) != len(b.Plans) {
		t.Fatalf("plan counts diverge: %d vs %d", len(a.Plans), len(b.Plans))
	}
	for i := range a.Plans {
		if a.Plans[i].At != b.Plans[i].At || a.Plans[i].Kind != b.Plans[i].Kind {
			t.Fatalf("plans diverge: %v vs %v", a.Plans, b.Plans)
		}
	}
	for _, p := range a.Plans {
		if p.At < 1 {
			t.Fatalf("plan at index %d; index 0 must stay clean", p.At)
		}
	}
	c := RandomScenario(8, 100, []string{"a", "b"}, time.Second, time.Millisecond)
	if len(a.Plans) == len(c.Plans) {
		same := true
		for i := range a.Plans {
			if a.Plans[i].At != c.Plans[i].At || a.Plans[i].Kind != c.Plans[i].Kind {
				same = false
				break
			}
		}
		if same {
			t.Fatal("distinct seeds produced identical scenarios")
		}
	}
}

func TestKindString(t *testing.T) {
	kinds := []Kind{Latency, Drop, Duplicate, Corrupt, Stall, Blackout, HTTPError, HTTPTimeout}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "unknown" || seen[s] {
			t.Fatalf("kind %d has bad name %q", k, s)
		}
		seen[s] = true
	}
	if Kind(99).String() != "unknown" {
		t.Fatal("unknown kind misnamed")
	}
}

// TestRandomFleetScenario pins the fleet schedule's structural
// guarantees: determinism, valid backend targets, fleet-only kinds, and
// pairwise-disjoint fault windows with clean head and tail ticks.
func TestRandomFleetScenario(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		const horizon, backends = 96, 3
		sc := RandomFleetScenario(seed, horizon, backends)
		again := RandomFleetScenario(seed, horizon, backends)
		if !reflect.DeepEqual(sc, again) {
			t.Fatalf("seed %d: scenario not deterministic", seed)
		}
		if len(sc.Plans) < 2 || len(sc.Plans) > 4 {
			t.Fatalf("seed %d: %d plans, want 2..4", seed, len(sc.Plans))
		}
		for i, p := range sc.Plans {
			switch p.Kind {
			case BackendKill, Partition, SlowClient, FeedGap:
			default:
				t.Fatalf("seed %d: non-fleet kind %v", seed, p.Kind)
			}
			if p.Backend < 0 || p.Backend >= backends {
				t.Fatalf("seed %d: backend %d out of fleet", seed, p.Backend)
			}
			if p.Duration < 1 {
				t.Fatalf("seed %d: duration %d", seed, p.Duration)
			}
			if p.At <= 0 || p.At+p.Duration >= horizon {
				t.Fatalf("seed %d: window [%d,%d) touches the horizon edges", seed, p.At, p.At+p.Duration)
			}
			if i > 0 {
				prev := sc.Plans[i-1]
				if p.At < prev.At+prev.Duration {
					t.Fatalf("seed %d: windows overlap: %+v then %+v", seed, prev, p)
				}
			}
		}
	}
}
