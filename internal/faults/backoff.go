package faults

import (
	"context"
	"time"
)

// Backoff defaults, shared by every retry path in the repository.
const (
	// DefaultBase is the first retry delay.
	DefaultBase = time.Second
	// DefaultCap bounds any single delay: a price feed samples every
	// five minutes, so sleeping longer than this between retries only
	// widens an outage.
	DefaultCap = 30 * time.Second
	// DefaultJitter is the default fractional jitter (±10%).
	DefaultJitter = 0.1
)

// Backoff computes capped exponential retry delays with bounded,
// deterministic jitter. The zero value is ready and selects the
// defaults; set Jitter negative to disable jitter entirely. Delay is a
// pure function of (Seed, attempt), so retry schedules are reproducible
// — a property the chaos soak relies on — while distinct seeds still
// de-synchronize retry storms across clients.
type Backoff struct {
	// Base is the delay before the first retry; 0 selects DefaultBase.
	Base time.Duration
	// Cap bounds the doubled delay; 0 selects DefaultCap. Without a
	// cap, a long outage doubles past any useful horizon (the bug this
	// type exists to fix).
	Cap time.Duration
	// Jitter is the fractional jitter amplitude: each delay is drawn
	// uniformly from [d·(1−Jitter), d·(1+Jitter)], then re-capped.
	// 0 selects DefaultJitter; negative disables jitter.
	Jitter float64
	// Seed selects the deterministic jitter stream.
	Seed uint64
}

// Delay returns the delay before retry attempt (0-based): Base doubled
// attempt times, capped at Cap, with bounded jitter applied.
func (b Backoff) Delay(attempt int) time.Duration {
	base := b.Base
	if base <= 0 {
		base = DefaultBase
	}
	cap := b.Cap
	if cap <= 0 {
		cap = DefaultCap
	}
	if base > cap {
		base = cap
	}
	d := base
	for i := 0; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	j := b.Jitter
	if j == 0 {
		j = DefaultJitter
	}
	if j > 0 {
		// splitmix64 over (Seed, attempt) → uniform fraction in [0, 1);
		// stateless, so the schedule does not depend on call history.
		h := splitmix64(b.Seed + uint64(attempt)*0x9e3779b97f4a7c15)
		frac := float64(h>>11) / (1 << 53)
		d = time.Duration(float64(d) * (1 - j + 2*j*frac))
		if d > cap {
			d = cap
		}
		if d < 0 {
			d = 0
		}
	}
	return d
}

// splitmix64 is the SplitMix64 output function: a cheap, well-mixed
// hash from one 64-bit word to another.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Sleep pauses for d or until ctx is done, returning the context's
// error when cancellation wins. It is the context-aware timer every
// retry loop in the repository shares.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
