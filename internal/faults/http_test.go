package faults

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// okTransport answers every request with a 200.
type okTransport struct{ calls int }

func (t *okTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.calls++
	rec := httptest.NewRecorder()
	rec.WriteString("ok")
	resp := rec.Result()
	resp.Request = req
	return resp, nil
}

func TestRoundTripperInjectsError(t *testing.T) {
	inner := &okTransport{}
	rt := &RoundTripper{
		Next:     inner,
		Scenario: Scenario{Plans: []Plan{{At: 1, Kind: HTTPError, Duration: 2}}},
	}
	codes := make([]int, 0, 4)
	for i := 0; i < 4; i++ {
		req := httptest.NewRequest("GET", "http://example.test/", nil)
		resp, err := rt.RoundTrip(req)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		codes = append(codes, resp.StatusCode)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	want := []int{200, 503, 503, 200}
	for i := range want {
		if codes[i] != want[i] {
			t.Fatalf("codes = %v, want %v", codes, want)
		}
	}
	if inner.calls != 2 {
		t.Fatalf("inner transport saw %d calls, want 2", inner.calls)
	}
}

func TestRoundTripperInjectsTimeout(t *testing.T) {
	var slept time.Duration
	rt := &RoundTripper{
		Next:     &okTransport{},
		Scenario: Scenario{Plans: []Plan{{At: 0, Kind: HTTPTimeout, Duration: 1, Delay: 250 * time.Millisecond}}},
		Sleep: func(_ context.Context, d time.Duration) error {
			slept = d
			return nil
		},
	}
	req := httptest.NewRequest("GET", "http://example.test/", nil)
	_, err := rt.RoundTrip(req)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want a deadline-exceeded wrapper", err)
	}
	if slept != 250*time.Millisecond {
		t.Fatalf("slept %v, want 250ms", slept)
	}
}

func TestHandlerInjectsError(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	})
	var seen []Observation
	h := Handler(inner, Scenario{Plans: []Plan{{At: 0, Kind: HTTPError, Duration: 1}}},
		func(o Observation) { seen = append(seen, o) })
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("first request: %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second request: %d, want 200", resp.StatusCode)
	}
	if len(seen) != 1 || seen[0].Kind != HTTPError {
		t.Fatalf("observations = %v", seen)
	}
}

func TestHandlerTimeoutHoldsUntilClientGivesUp(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	})
	h := Handler(inner, Scenario{Plans: []Plan{{At: 0, Kind: HTTPTimeout, Duration: 1, Delay: time.Hour}}}, nil)
	srv := httptest.NewServer(h)
	defer srv.Close()

	client := &http.Client{Timeout: 50 * time.Millisecond}
	if _, err := client.Get(srv.URL); err == nil {
		t.Fatal("held request should have timed out client-side")
	}
}
