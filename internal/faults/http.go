package faults

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"
)

// ErrInjectedTimeout is the error an injected HTTP timeout surfaces,
// wrapping context.DeadlineExceeded so callers' timeout handling
// (errors.Is) treats it exactly like a real one.
var ErrInjectedTimeout = fmt.Errorf("faults: injected timeout: %w", context.DeadlineExceeded)

// RoundTripper wraps an http.RoundTripper with injected 5xx responses
// and timeouts, keyed to the request count. It is safe for concurrent
// use; under concurrency the request numbering follows arrival order.
type RoundTripper struct {
	// Next is the wrapped transport; nil selects
	// http.DefaultTransport.
	Next http.RoundTripper
	// Scenario is the fault schedule; HTTPError and HTTPTimeout plans
	// apply, keyed by request index.
	Scenario Scenario
	// Status is the synthesized error status; 0 selects 503.
	Status int
	// Sleep is overridable for tests; nil selects the shared Sleep.
	Sleep func(ctx context.Context, d time.Duration) error
	// OnFault, when set, observes every fault as it fires.
	OnFault func(Observation)

	n atomic.Int64
}

// RoundTrip implements http.RoundTripper.
func (rt *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	i := rt.n.Add(1) - 1
	if p := rt.Scenario.active(HTTPTimeout, i); p != nil {
		if rt.OnFault != nil {
			rt.OnFault(Observation{Kind: HTTPTimeout, Index: i})
		}
		sleep := rt.Sleep
		if sleep == nil {
			sleep = Sleep
		}
		if err := sleep(req.Context(), p.Delay); err != nil {
			return nil, err
		}
		return nil, ErrInjectedTimeout
	}
	if p := rt.Scenario.active(HTTPError, i); p != nil {
		if rt.OnFault != nil {
			rt.OnFault(Observation{Kind: HTTPError, Index: i})
		}
		status := rt.Status
		if status == 0 {
			status = http.StatusServiceUnavailable
		}
		body := fmt.Sprintf("faults: injected %d\n", status)
		return &http.Response{
			StatusCode: status,
			Status:     fmt.Sprintf("%d %s", status, http.StatusText(status)),
			Proto:      req.Proto,
			ProtoMajor: req.ProtoMajor,
			ProtoMinor: req.ProtoMinor,
			Header:     http.Header{"Content-Type": []string{"text/plain; charset=utf-8"}},
			Body:       io.NopCloser(bytes.NewBufferString(body)),
			Request:    req,
		}, nil
	}
	next := rt.Next
	if next == nil {
		next = http.DefaultTransport
	}
	return next.RoundTrip(req)
}

// Handler wraps an http.Handler with server-side fault injection:
// HTTPError plans answer with a synthesized 5xx, HTTPTimeout plans hold
// the request for Delay before forwarding (the client's timeout is what
// turns the hold into a failure). Request numbering follows arrival
// order.
func Handler(inner http.Handler, sc Scenario, onFault func(Observation)) http.Handler {
	var n atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		i := n.Add(1) - 1
		if p := sc.active(HTTPTimeout, i); p != nil {
			if onFault != nil {
				onFault(Observation{Kind: HTTPTimeout, Index: i})
			}
			if err := Sleep(r.Context(), p.Delay); err != nil {
				return // client gave up mid-hold
			}
		}
		if p := sc.active(HTTPError, i); p != nil {
			if onFault != nil {
				onFault(Observation{Kind: HTTPError, Index: i})
			}
			http.Error(w, "faults: injected error", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	})
}
