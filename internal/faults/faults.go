// Package faults is the repository's fault-injection layer: a seeded,
// deterministic way to subject the live pipeline (price feed →
// scheduler → quote service) to the failures a real spot deployment
// sees — latency spikes, dropped/duplicated/corrupted price samples,
// feed stalls, per-zone blackouts, and HTTP 5xx/timeout errors — so the
// paper's deadline guarantee can be exercised, not assumed.
//
// Faults are described by a small scenario DSL: a Plan names one fault
// (what, when, for how long, against which zones), a Scenario is a
// seeded list of plans. Injectors consume scenarios:
//
//   - Injector wraps a price feed (anything with the livesched.Feed
//     shape) and perturbs the sample stream.
//   - RoundTripper and Handler wrap HTTP clients and servers with
//     injected 5xx responses and timeouts.
//
// Everything is deterministic for a fixed scenario: fault positions are
// keyed to sample/request indexes, not wall-clock time, and any random
// choice derives from the scenario seed. Replaying the same scenario
// over the same trace reproduces the same run bit-for-bit, which is
// what lets the chaos soak (internal/chaos, cmd/chaossim) assert
// invariants across hundreds of randomized-but-seeded runs.
package faults

import (
	"math/rand/v2"
	"sort"
	"time"
)

// Kind names one injected failure mode.
type Kind int

// The fault taxonomy. Feed kinds (Latency through Blackout) perturb a
// price sample stream; HTTP kinds perturb request/response exchanges.
const (
	// Latency delays delivery of the affected samples by Delay.
	Latency Kind = iota
	// Drop silently discards the affected samples, leaving a gap in
	// the stream.
	Drop
	// Duplicate redelivers the previous sample instead of consuming a
	// new one.
	Duplicate
	// Corrupt replaces affected prices with detectably invalid values
	// (NaN, negative, infinite) chosen deterministically from the
	// scenario seed.
	Corrupt
	// Stall blocks the feed for Delay before delivering; it models a
	// hung upstream and is what the scheduler's watchdog guards
	// against.
	Stall
	// Blackout forces affected zones' prices to BlackoutPrice —
	// finite, positive, and above any sane bid — so the market itself
	// evicts the zones, as in an availability-zone outage.
	Blackout
	// HTTPError answers the affected requests with a synthesized
	// 5xx response instead of forwarding them.
	HTTPError
	// HTTPTimeout holds the affected requests for Delay and then fails
	// them with a timeout-shaped error.
	HTTPTimeout
	// BackendKill crashes the targeted backend at tick At and restarts
	// it Duration ticks later; a restarted backend recovers from its
	// last snapshot, not from a blank slate. Fleet-topology kind,
	// consumed by the fleet soak (internal/chaos.FleetSoak).
	BackendKill
	// Partition severs the LB↔backend link for the targeted backend:
	// the backend stays alive (its feed keeps ticking) but every
	// forwarded request errors until the partition heals.
	Partition
	// SlowClient attaches a stalled, slow-loris SSE subscriber to the
	// targeted backend for the fault window; the stream fan-out must
	// shed it (latest-wins) without stalling other subscribers.
	SlowClient
	// FeedGap withholds Duration consecutive feed deliveries from the
	// targeted backend; the stream ingest must gap-fill and converge
	// once delivery resumes.
	FeedGap
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Latency:
		return "latency"
	case Drop:
		return "drop"
	case Duplicate:
		return "duplicate"
	case Corrupt:
		return "corrupt"
	case Stall:
		return "stall"
	case Blackout:
		return "blackout"
	case HTTPError:
		return "http-error"
	case HTTPTimeout:
		return "http-timeout"
	case BackendKill:
		return "backend-kill"
	case Partition:
		return "partition"
	case SlowClient:
		return "slow-client"
	case FeedGap:
		return "feed-gap"
	default:
		return "unknown"
	}
}

// BlackoutPrice is the price substituted into blacked-out zones: high
// enough to exceed any bid the planner would place, yet finite and
// positive so it survives feed sanitization — the machine must handle
// it as a market event, not a parse error.
const BlackoutPrice = 999.0

// Plan is one scheduled fault in a scenario.
type Plan struct {
	// At is the 0-based sample (or request) index at which the fault
	// engages.
	At int64
	// Kind is the failure mode.
	Kind Kind
	// Duration is how many consecutive samples (or requests) the fault
	// covers; values below 1 behave as 1.
	Duration int64
	// Zones restricts Corrupt and Blackout to the named zones; empty
	// means all zones.
	Zones []string
	// Delay is the wall-clock component of Latency, Stall and
	// HTTPTimeout faults.
	Delay time.Duration
	// Backend targets fleet-topology kinds (BackendKill, Partition,
	// SlowClient, FeedGap) at one backend by fleet index; feed and HTTP
	// kinds ignore it.
	Backend int
}

// covers reports whether the plan is active at stream index i.
func (p Plan) covers(i int64) bool {
	d := p.Duration
	if d < 1 {
		d = 1
	}
	return i >= p.At && i < p.At+d
}

// affectsZone reports whether the plan applies to the named zone.
func (p Plan) affectsZone(zone string) bool {
	if len(p.Zones) == 0 {
		return true
	}
	for _, z := range p.Zones {
		if z == zone {
			return true
		}
	}
	return false
}

// Scenario is a seeded fault schedule. The zero value injects nothing.
type Scenario struct {
	// Seed drives every random choice an injector makes (corruption
	// values); two injectors built from equal scenarios behave
	// identically.
	Seed uint64
	// Plans are the scheduled faults, in any order.
	Plans []Plan
}

// active returns the first plan of the given kind covering index i, or
// nil.
func (s Scenario) active(kind Kind, i int64) *Plan {
	for pi := range s.Plans {
		if s.Plans[pi].Kind == kind && s.Plans[pi].covers(i) {
			return &s.Plans[pi]
		}
	}
	return nil
}

// scenarioStream is the fixed second seed word of scenario-derived
// random streams, so scenario randomness never collides with the
// simulation engine's own stream.
const scenarioStream = 0xfa17_1e5e_ed

// rng returns the scenario's deterministic random stream.
func (s Scenario) rng() *rand.Rand {
	return rand.New(rand.NewPCG(s.Seed, scenarioStream))
}

// RandomScenario draws a randomized-but-seeded fault schedule for a
// stream of horizon samples over the named zones: one to four plans,
// kinds spanning the whole feed taxonomy, positions in [1, horizon)
// (index 0 stays clean so a run can always start), durations of one to
// six samples. stallDelay is used for Stall plans and latencyDelay for
// Latency plans; callers pick them relative to their watchdog gap —
// stalls well above it (the watchdog must trip), latency well below
// (the run must ride through). Equal arguments return equal scenarios.
func RandomScenario(seed uint64, horizon int64, zones []string, stallDelay, latencyDelay time.Duration) Scenario {
	sc := Scenario{Seed: seed}
	rng := sc.rng()
	kinds := []Kind{Latency, Drop, Duplicate, Corrupt, Stall, Blackout}
	n := 1 + rng.IntN(4)
	if horizon < 2 {
		horizon = 2
	}
	for i := 0; i < n; i++ {
		p := Plan{
			At:       1 + rng.Int64N(horizon-1),
			Kind:     kinds[rng.IntN(len(kinds))],
			Duration: 1 + rng.Int64N(6),
		}
		switch p.Kind {
		case Stall:
			p.Delay = stallDelay
			p.Duration = 1 // one tripped watchdog ends the run's spot phase
		case Latency:
			p.Delay = latencyDelay
		case Corrupt, Blackout:
			if len(zones) > 0 && rng.IntN(2) == 0 {
				p.Zones = []string{zones[rng.IntN(len(zones))]}
			}
		}
		sc.Plans = append(sc.Plans, p)
	}
	sort.Slice(sc.Plans, func(i, j int) bool { return sc.Plans[i].At < sc.Plans[j].At })
	return sc
}

// RandomFleetScenario draws a seeded fleet-topology fault schedule for
// a soak of horizon feed ticks over a fleet of backends: two to four
// plans drawn from the fleet taxonomy (BackendKill, Partition,
// SlowClient, FeedGap), each targeting one backend. Fault windows never
// overlap — one backend misbehaves at a time — so a correctly built
// fleet always has a healthy majority and every client-visible failure
// is attributable to exactly one plan. Windows also never touch the
// first or final ticks: every backend starts clean and every fault
// heals with enough horizon left to observe convergence. Equal
// arguments return equal scenarios.
func RandomFleetScenario(seed uint64, horizon int64, backends int) Scenario {
	sc := Scenario{Seed: seed}
	rng := sc.rng()
	if backends < 1 {
		backends = 1
	}
	if horizon < 16 {
		horizon = 16
	}
	kinds := []Kind{BackendKill, Partition, SlowClient, FeedGap}
	n := 2 + rng.IntN(3)
	// Carve the usable middle of the horizon into n equal lanes and
	// place one fault window inside each: disjointness by construction,
	// with at least one clean tick between consecutive windows.
	lo, hi := horizon/8, horizon-horizon/8
	lane := (hi - lo) / int64(n)
	for i := 0; i < n; i++ {
		maxDur := max64(lane/2, 1)
		dur := 1 + rng.Int64N(maxDur) // dur <= lane/2 < lane: window fits its lane
		start := lo + int64(i)*lane + rng.Int64N(max64(lane-dur, 1))
		sc.Plans = append(sc.Plans, Plan{
			At:       start,
			Kind:     kinds[rng.IntN(len(kinds))],
			Duration: dur,
			Backend:  rng.IntN(backends),
		})
	}
	return sc
}

// max64 is max for int64 (pre-generics helper style used in this file).
func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
