package faults

import (
	"context"
	"math"
	"math/rand/v2"
	"sync"
	"time"
)

// Feed is the price-feed shape the injector wraps and exposes. It is
// structurally identical to livesched.Feed, redeclared here so the
// fault layer stays import-free of the scheduler (the scheduler imports
// this package for its backoff helper).
type Feed interface {
	// Zones returns the zone names, fixed for the feed's lifetime.
	Zones() []string
	// Step returns the sampling interval in seconds.
	Step() int64
	// Next blocks until the next sample row is available.
	Next(ctx context.Context) ([]float64, error)
}

// Observation reports one injected fault firing, for counters and logs.
type Observation struct {
	// Kind is the fault that fired.
	Kind Kind
	// Index is the stream position it fired at.
	Index int64
}

// Injector wraps a Feed and perturbs its sample stream according to a
// Scenario. Fault positions are keyed to the injector's own stream
// index (samples delivered plus samples dropped), so a scenario replays
// identically over identical inner feeds. An Injector is not safe for
// concurrent Next calls, matching the Feed contract.
type Injector struct {
	// Inner is the wrapped feed.
	Inner Feed
	// Scenario is the fault schedule.
	Scenario Scenario
	// Sleep is overridable for tests; nil selects the shared
	// context-aware Sleep.
	Sleep func(ctx context.Context, d time.Duration) error
	// OnFault, when set, observes every fault as it fires.
	OnFault func(Observation)

	once sync.Once
	rng  *rand.Rand
	pos  int64
	last []float64
}

// Zones implements Feed.
func (f *Injector) Zones() []string { return f.Inner.Zones() }

// Step implements Feed.
func (f *Injector) Step() int64 { return f.Inner.Step() }

// init lazily prepares the deterministic corruption stream.
func (f *Injector) init() {
	f.once.Do(func() {
		f.rng = f.Scenario.rng()
		if f.Sleep == nil {
			f.Sleep = Sleep
		}
	})
}

// fired reports a fault observation.
func (f *Injector) fired(kind Kind, i int64) {
	if f.OnFault != nil {
		f.OnFault(Observation{Kind: kind, Index: i})
	}
}

// Next implements Feed: it delivers the inner feed's next sample after
// applying every plan active at the current stream position.
func (f *Injector) Next(ctx context.Context) ([]float64, error) {
	f.init()
	for {
		i := f.pos
		// Wall-clock faults first: a stalled or slow feed delays the
		// sample whatever else happens to it.
		for _, kind := range []Kind{Stall, Latency} {
			if p := f.Scenario.active(kind, i); p != nil && p.Delay > 0 {
				f.fired(kind, i)
				if err := f.Sleep(ctx, p.Delay); err != nil {
					return nil, err
				}
			}
		}
		if p := f.Scenario.active(Duplicate, i); p != nil && f.last != nil {
			f.fired(Duplicate, i)
			f.pos++
			row := make([]float64, len(f.last))
			copy(row, f.last)
			return row, nil
		}
		row, err := f.Inner.Next(ctx)
		if err != nil {
			return nil, err
		}
		f.pos++
		if p := f.Scenario.active(Drop, i); p != nil {
			f.fired(Drop, i)
			continue
		}
		if p := f.Scenario.active(Corrupt, i); p != nil {
			f.fired(Corrupt, i)
			f.corrupt(row, p)
		}
		if p := f.Scenario.active(Blackout, i); p != nil {
			f.fired(Blackout, i)
			for zi, zone := range f.Inner.Zones() {
				if zi < len(row) && p.affectsZone(zone) {
					row[zi] = BlackoutPrice
				}
			}
		}
		f.last = make([]float64, len(row))
		copy(f.last, row)
		return row, nil
	}
}

// corrupt overwrites the plan's zones with detectably invalid prices,
// the variant chosen deterministically from the scenario stream.
func (f *Injector) corrupt(row []float64, p *Plan) {
	for zi, zone := range f.Inner.Zones() {
		if zi >= len(row) || !p.affectsZone(zone) {
			continue
		}
		switch f.rng.IntN(3) {
		case 0:
			row[zi] = math.NaN()
		case 1:
			row[zi] = -row[zi] - 1
		default:
			row[zi] = math.Inf(1)
		}
	}
}
