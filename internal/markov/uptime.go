package markov

import (
	"errors"
	"math"

	"repro/internal/mat"
)

// ExpectedUptimeExact computes E[T_u] in closed form: the expected
// absorption time of the chain restricted to up states (price ≤ bid).
// With U the up→up transition sub-matrix and each transition taking one
// step, the expected uptimes E satisfy (I − U)·E = step·1; a singular
// system means the chain can remain in the up set forever, i.e. the
// expected uptime is infinite.
//
// It equals the limit of the Appendix B Chapman-Kolmogorov iteration
// (ExpectedUptime with an unbounded horizon) but costs one small linear
// solve instead of thousands of matrix-vector products, which matters
// when the Markov-Daly policy reschedules inside large experiment
// sweeps.
func (m *Model) ExpectedUptimeExact(bid, currentPrice float64) float64 {
	start := m.StateOf(currentPrice)
	if m.States[start] > bid {
		return 0
	}
	// Collect up states and the start's position among them.
	var upIdx []int
	pos := make(map[int]int)
	for i, p := range m.States {
		if p <= bid {
			pos[i] = len(upIdx)
			upIdx = append(upIdx, i)
		}
	}
	n := len(upIdx)
	a := mat.New(n, n) // I − U
	b := mat.New(n, 1) // step·1
	for r, i := range upIdx {
		b.Set(r, 0, float64(m.Step))
		for c, j := range upIdx {
			v := -m.Trans[i][j]
			if r == c {
				v += 1
			}
			a.Set(r, c, v)
		}
	}
	e, err := mat.Solve(a, b)
	if err != nil {
		if errors.Is(err, mat.ErrSingular) {
			return math.Inf(1)
		}
		return math.Inf(1)
	}
	v := e.At(pos[start], 0)
	if v < 0 || math.IsNaN(v) {
		// Numerical noise on a nearly-singular system: treat as
		// effectively unbounded.
		return math.Inf(1)
	}
	return v
}
