// Package markov implements the paper's Appendix B model: a Markov
// chain over discretised spot prices whose Chapman-Kolmogorov iteration
// yields the expected uptime E[T_u] of a spot instance at a given bid.
//
// The states are the distinct spot prices seen in a price history, the
// transition matrix is estimated from consecutive 5-minute samples, and
// the expected uptime propagates probability mass only through states at
// or below the bid (the instance survives) while accumulating the mass
// that crosses above the bid (the instance is terminated), weighted by
// the step at which it crosses (Equations 2 and 3).
package markov

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/trace"
)

// Model is a fitted price Markov chain for one zone.
type Model struct {
	// States holds the distinct prices in increasing order.
	States []float64
	// Trans is the row-stochastic transition matrix: Trans[i][j] is the
	// probability of moving from state i to state j in one step.
	Trans [][]float64
	// Step is the chain's time step in seconds.
	Step int64
	// Horizon caps the Chapman-Kolmogorov iteration, in steps; zero
	// selects the package default. Expected uptimes beyond the horizon
	// saturate, which is harmless when the horizon exceeds the
	// experiment deadline.
	Horizon int
}

// DefaultHistory is how much price history the paper uses to build the
// Markov state (§5: "a price history size of 2 days").
const DefaultHistory int64 = 2 * 24 * trace.Hour

// ErrNoHistory reports an empty price history.
var ErrNoHistory = errors.New("markov: empty price history")

// Fit estimates the chain from a price sample sequence taken every step
// seconds.
func Fit(prices []float64, step int64) (*Model, error) {
	if len(prices) == 0 {
		return nil, ErrNoHistory
	}
	if step <= 0 {
		return nil, fmt.Errorf("markov: non-positive step %d", step)
	}
	// Distinct states, sorted.
	uniq := map[float64]struct{}{}
	for _, p := range prices {
		uniq[p] = struct{}{}
	}
	states := make([]float64, 0, len(uniq))
	for p := range uniq {
		states = append(states, p)
	}
	sort.Float64s(states)
	index := make(map[float64]int, len(states))
	for i, p := range states {
		index[p] = i
	}

	n := len(states)
	counts := make([][]float64, n)
	for i := range counts {
		counts[i] = make([]float64, n)
	}
	for t := 1; t < len(prices); t++ {
		counts[index[prices[t-1]]][index[prices[t]]]++
	}
	trans := make([][]float64, n)
	for i := range trans {
		trans[i] = make([]float64, n)
		var total float64
		for _, c := range counts[i] {
			total += c
		}
		if total == 0 {
			// A state with no observed outgoing transition (e.g. the
			// final sample): treat it as absorbing.
			trans[i][i] = 1
			continue
		}
		for j, c := range counts[i] {
			trans[i][j] = c / total
		}
	}
	return &Model{States: states, Trans: trans, Step: step}, nil
}

// Quantize rounds prices to the given quantum (e.g. 0.05 for nickel
// buckets), bounding the number of Markov states on volatile histories.
// A non-positive quantum returns the input unchanged.
func Quantize(prices []float64, quantum float64) []float64 {
	if quantum <= 0 {
		return prices
	}
	out := make([]float64, len(prices))
	for i, p := range prices {
		out[i] = math.Round(p/quantum) * quantum
	}
	return out
}

// FitSeries fits the chain to the trailing history seconds of the series
// ending at time now. history <= 0 selects DefaultHistory.
func FitSeries(s *trace.Series, now, history int64) (*Model, error) {
	if history <= 0 {
		history = DefaultHistory
	}
	win := s.Slice(now-history, now)
	if win.Len() == 0 {
		return nil, ErrNoHistory
	}
	return Fit(win.Prices, s.Step)
}

// StateOf returns the index of the state closest to price.
func (m *Model) StateOf(price float64) int {
	i := sort.SearchFloat64s(m.States, price)
	if i == len(m.States) {
		return len(m.States) - 1
	}
	if i == 0 {
		return 0
	}
	if price-m.States[i-1] <= m.States[i]-price {
		return i - 1
	}
	return i
}

// NumStates returns the number of distinct price states.
func (m *Model) NumStates() int { return len(m.States) }

// uptimeOptions bounds the Chapman-Kolmogorov iteration.
const (
	// maxUptimeSteps caps the iteration; at a 5-minute step this is
	// about 35 days, far beyond any experiment horizon.
	maxUptimeSteps = 10_000
	// convergeEps stops the iteration once the surviving probability
	// mass cannot change the expectation at seconds granularity, the
	// paper's Th criterion.
	convergeEps = 1e-9
)

// ExpectedUptime returns E[T_u] in seconds for an instance started at
// the given current price with the given bid. It returns +Inf when the
// chain predicts the instance essentially never crosses above the bid
// (e.g. the bid is above every state reachable from the start state).
func (m *Model) ExpectedUptime(bid, currentPrice float64) float64 {
	start := m.StateOf(currentPrice)
	if m.States[start] > bid {
		return 0 // already out of bid: no uptime
	}
	n := len(m.States)
	up := make([]bool, n)
	anyDown := false
	for i, p := range m.States {
		up[i] = p <= bid
		if !up[i] {
			anyDown = true
		}
	}
	if !anyDown {
		return math.Inf(1)
	}

	// Probability mass over up-states only; mass that transitions into
	// a down state at step k contributes k·Step to the expectation.
	horizon := m.Horizon
	if horizon <= 0 {
		horizon = maxUptimeSteps
	}
	prob := make([]float64, n)
	prob[start] = 1
	next := make([]float64, n)
	var expected float64
	alive := 1.0
	for k := 1; k <= horizon; k++ {
		for j := range next {
			next[j] = 0
		}
		var died float64
		for i := 0; i < n; i++ {
			pi := prob[i]
			if pi == 0 {
				continue
			}
			row := m.Trans[i]
			for j := 0; j < n; j++ {
				pj := pi * row[j]
				if pj == 0 {
					continue
				}
				if up[j] {
					next[j] += pj
				} else {
					died += pj
				}
			}
		}
		expected += float64(k) * float64(m.Step) * died
		alive -= died
		prob, next = next, prob
		if alive <= convergeEps {
			return expected
		}
		// Stop when the remaining mass can no longer move the
		// expectation meaningfully; attribute it to the current step
		// (the paper's Th criterion: iterate until the expectation is
		// stable at seconds granularity).
		if alive*float64(k)*float64(m.Step) < 1 {
			return expected + alive*float64(k)*float64(m.Step)
		}
	}
	if alive > 0.5 {
		// The chain essentially never leaves the up set from here.
		return math.Inf(1)
	}
	// Truncated tail: attribute the surviving mass to the horizon.
	return expected + alive*float64(horizon)*float64(m.Step)
}

// SurvivalProbability returns the probability the instance is still up
// after k steps, starting from currentPrice at the given bid.
func (m *Model) SurvivalProbability(bid, currentPrice float64, k int) float64 {
	start := m.StateOf(currentPrice)
	if m.States[start] > bid {
		return 0
	}
	n := len(m.States)
	prob := make([]float64, n)
	prob[start] = 1
	next := make([]float64, n)
	for step := 0; step < k; step++ {
		for j := range next {
			next[j] = 0
		}
		for i := 0; i < n; i++ {
			pi := prob[i]
			if pi == 0 || m.States[i] > bid {
				continue
			}
			row := m.Trans[i]
			for j := 0; j < n; j++ {
				next[j] += pi * row[j]
			}
		}
		prob, next = next, prob
	}
	var alive float64
	for i := 0; i < n; i++ {
		if m.States[i] <= bid {
			alive += prob[i]
		}
	}
	return alive
}

// CombinedExpectedUptime sums per-zone expected uptimes, the paper's
// §4.2 rule for redundant zones with independent price movements: "the
// combined E[T_u] is the sum of E[T_u] of individual zones". It uses
// the closed-form solver.
func CombinedExpectedUptime(models []*Model, bid float64, currentPrices []float64) float64 {
	var total float64
	for i, m := range models {
		u := m.ExpectedUptimeExact(bid, currentPrices[i])
		if math.IsInf(u, 1) {
			return math.Inf(1)
		}
		total += u
	}
	return total
}
