package markov

import (
	"fmt"
	"math"
	"sort"
)

// Fitter fits price chains without the per-call allocations of Fit: the
// distinct-state extraction and transition counting run in reusable
// scratch buffers, and the produced Model can recycle the storage of a
// previously fitted one. The batched permutation evaluator refits
// hundreds of chains per decision point, which makes Fit's maps and
// per-row slices the dominant allocation source; Fitter removes them
// while producing bit-identical models (FitterMatchesFit in the tests
// pins this).
//
// A Fitter is not safe for concurrent use.
type Fitter struct {
	sorted []float64
	counts []float64
}

// Fit estimates the chain from a price sample sequence taken every step
// seconds, exactly like the package-level Fit. When reuse is non-nil
// its storage is recycled for the result (the caller must be done with
// it); the returned model is reuse itself in that case.
//
// The input must not contain NaNs (every trace admitted by
// trace.Validate is NaN-free): distinct states are extracted by sorting
// rather than hashing, and the two agree only on NaN-free input.
func (f *Fitter) Fit(prices []float64, step int64, reuse *Model) (*Model, error) {
	if len(prices) == 0 {
		return nil, ErrNoHistory
	}
	if step <= 0 {
		return nil, fmt.Errorf("markov: non-positive step %d", step)
	}
	if reuse == nil {
		reuse = &Model{}
	}
	// Distinct states, ascending. Equality here matches Fit's map-key
	// equality (==, which also collapses -0 and +0). Quantized price
	// samples carry few distinct values, so building the set by
	// binary-search insertion beats sorting the whole sample; inputs
	// with many distinct values fall back to sort-and-compact.
	const insertionMax = 64
	states := reuse.States[:0]
	for _, p := range prices {
		i := sort.SearchFloat64s(states, p)
		if i < len(states) && states[i] == p {
			continue
		}
		if len(states) == insertionMax {
			states = states[:0]
			break
		}
		states = append(states, 0)
		copy(states[i+1:], states[i:])
		states[i] = p
	}
	if len(states) == 0 {
		f.sorted = append(f.sorted[:0], prices...)
		sort.Float64s(f.sorted)
		for i, p := range f.sorted {
			if i == 0 || p != states[len(states)-1] {
				states = append(states, p)
			}
		}
	}
	n := len(states)

	if cap(f.counts) < n*n {
		f.counts = make([]float64, n*n)
	}
	counts := f.counts[:n*n]
	for i := range counts {
		counts[i] = 0
	}
	prev := stateIndex(states, prices[0])
	for t := 1; t < len(prices); t++ {
		cur := stateIndex(states, prices[t])
		counts[prev*n+cur]++
		prev = cur
	}

	// Row storage: one flat backing array, rows sliced out of it. When
	// the reused model was produced by a Fitter its rows are contiguous
	// slices of one array whose capacity row 0 still reaches, so the
	// backing can be recovered; models from plain Fit just reallocate.
	var flat []float64
	if len(reuse.Trans) > 0 {
		flat = reuse.Trans[0][:0]
	}
	if cap(flat) < n*n {
		flat = make([]float64, n*n)
	}
	flat = flat[:n*n]
	trans := reuse.Trans[:0]
	for i := 0; i < n; i++ {
		row := flat[i*n : (i+1)*n]
		var total float64
		for j := 0; j < n; j++ {
			total += counts[i*n+j]
		}
		if total == 0 {
			// A state with no observed outgoing transition (e.g. the
			// final sample): treat it as absorbing.
			for j := range row {
				row[j] = 0
			}
			row[i] = 1
		} else {
			for j := 0; j < n; j++ {
				row[j] = counts[i*n+j] / total
			}
		}
		trans = append(trans, row)
	}
	reuse.States = states
	reuse.Trans = trans
	reuse.Step = step
	reuse.Horizon = 0
	return reuse, nil
}

// stateIndex locates a price among the sorted distinct states. Every
// sample is present by construction, so the binary search always lands
// on its state (with -0/+0 comparing equal, as in Fit's map).
func stateIndex(states []float64, p float64) int {
	return sort.SearchFloat64s(states, p)
}

// PrefixFitter fits chains on every prefix of one fixed price column
// without re-sorting per fit. Init pays one distinct-value extraction
// and one state-indexing pass over the full column; Fit extracts the
// prefix's distinct states
// by a first-occurrence filter and keeps one incremental transition
// count table that advances sample by sample, so a sequence of fits at
// non-decreasing prefix lengths over a column with D distinct values
// costs O(Δ + D²) per fit, where Δ is the growth since the previous
// fit (a shrinking prefix re-counts from the start). The produced
// models are bit-identical to Fit over the same prefix
// (PrefixFitterMatchesFit in the tests pins this): the batched
// permutation evaluator replays a decision point whose model fit times
// all share one column, which makes the per-fit sort of Fitter the
// dominant cost.
//
// A PrefixFitter is not safe for concurrent use.
type PrefixFitter struct {
	prices []float64
	step   int64

	sorted []float64 // distinct column values, ascending
	first  []int32   // first sample index of each distinct value
	gid    []int32   // per-sample index into sorted

	ccounts []float64 // column-wide transition counts over [0, curN)
	curN    int       // samples covered by ccounts
	gsel    []int32   // per-fit scratch: selected column states
}

// Init points the fitter at a price column sampled every step seconds
// and precomputes its distinct-value structure. The column is aliased
// and must not change until the next Init; buffers are reused across
// calls. The column must be NaN-free (see Fitter.Fit).
func (f *PrefixFitter) Init(prices []float64, step int64) {
	f.prices = prices
	f.step = step
	// Distinct column values, ascending, built by binary-search
	// insertion as in Fitter.Fit: quantized price columns carry few
	// distinct values, so inserting beats sorting the whole column;
	// columns with many distinct values fall back to sort-and-compact.
	const insertionMax = 64
	f.sorted = f.sorted[:0]
	for _, p := range prices {
		i := sort.SearchFloat64s(f.sorted, p)
		if i < len(f.sorted) && f.sorted[i] == p {
			continue
		}
		if len(f.sorted) == insertionMax {
			f.sorted = f.sorted[:0]
			break
		}
		f.sorted = append(f.sorted, 0)
		copy(f.sorted[i+1:], f.sorted[i:])
		f.sorted[i] = p
	}
	if len(f.sorted) == 0 && len(prices) > 0 {
		tmp := append([]float64(nil), prices...)
		sort.Float64s(tmp)
		for i, p := range tmp {
			if i == 0 || p != f.sorted[len(f.sorted)-1] {
				f.sorted = append(f.sorted, p)
			}
		}
	}
	d := len(f.sorted)
	if cap(f.first) < d {
		f.first = make([]int32, d)
		f.gsel = make([]int32, d)
	}
	f.first = f.first[:d]
	for i := range f.first {
		f.first[i] = -1
	}
	if cap(f.gid) < len(prices) {
		f.gid = make([]int32, len(prices))
	}
	f.gid = f.gid[:len(prices)]
	for t, p := range prices {
		g := int32(stateIndex(f.sorted, p))
		f.gid[t] = g
		if f.first[g] < 0 {
			f.first[g] = int32(t)
		}
	}
	if cap(f.ccounts) < d*d {
		f.ccounts = make([]float64, d*d)
	}
	f.ccounts = f.ccounts[:d*d]
	for i := range f.ccounts {
		f.ccounts[i] = 0
	}
	f.curN = 1
}

// Extend re-points the fitter at a grown copy of its column — prices
// must carry the previously indexed samples unchanged as its prefix —
// and indexes the appended tail, preserving the incremental transition
// table. Appending a sample of an already-known value costs O(log D);
// a brand-new distinct value costs one O(n + D²) remap of the sample
// ids and count table (rare once a quantized column has warmed up).
// Fits after an Extend are bit-identical to a fresh Init over the grown
// column: the distinct-value order, first occurrences and counts end up
// exactly as Init would build them.
func (f *PrefixFitter) Extend(prices []float64) {
	for t := len(f.gid); t < len(prices); t++ {
		p := prices[t]
		g := sort.SearchFloat64s(f.sorted, p)
		if g == len(f.sorted) || f.sorted[g] != p {
			f.insertState(g, p)
		}
		f.gid = append(f.gid, int32(g))
		if f.first[g] < 0 {
			f.first[g] = int32(t)
		}
	}
	f.prices = prices
}

// insertState grows the distinct-value structure by one value at sorted
// position g: ids at or above g shift up in the sample map and the
// transition table, and the new value starts with no occurrences.
func (f *PrefixFitter) insertState(g int, p float64) {
	d := len(f.sorted)
	f.sorted = append(f.sorted, 0)
	copy(f.sorted[g+1:], f.sorted[g:])
	f.sorted[g] = p
	f.first = append(f.first, 0)
	copy(f.first[g+1:], f.first[g:])
	f.first[g] = -1
	for i, id := range f.gid {
		if id >= int32(g) {
			f.gid[i] = id + 1
		}
	}
	nd := d + 1
	counts := make([]float64, nd*nd)
	for r := 0; r < d; r++ {
		nr := r
		if r >= g {
			nr++
		}
		for c := 0; c < d; c++ {
			nc := c
			if c >= g {
				nc++
			}
			counts[nr*nd+nc] = f.ccounts[r*d+c]
		}
	}
	f.ccounts = counts
}

// Fit estimates the chain from the column's first n samples, exactly
// like Fit over that prefix. When reuse is non-nil its storage is
// recycled for the result, as in Fitter.Fit.
func (f *PrefixFitter) Fit(n int, reuse *Model) (*Model, error) {
	if n == 0 {
		return nil, ErrNoHistory
	}
	if f.step <= 0 {
		return nil, fmt.Errorf("markov: non-positive step %d", f.step)
	}
	if reuse == nil {
		reuse = &Model{}
	}
	// Advance (or rewind and re-count) the incremental transition table
	// to cover the first n samples. The counts are exact integers, so
	// arriving at n incrementally or in one pass is value-identical.
	d := len(f.sorted)
	if n < f.curN {
		for i := range f.ccounts {
			f.ccounts[i] = 0
		}
		f.curN = 1
	}
	for t := f.curN; t < n; t++ {
		f.ccounts[int(f.gid[t-1])*d+int(f.gid[t])]++
	}
	f.curN = n
	// The prefix's distinct states are the column values first seen
	// before n, in the same ascending order Fit would sort them into.
	// Transitions among them are exactly the table entries at their
	// column-state ids: every sample before n maps to a selected state,
	// so no counted transition is dropped by the filter.
	states := reuse.States[:0]
	f.gsel = f.gsel[:0]
	for g, fi := range f.first {
		if fi >= 0 && fi < int32(n) {
			f.gsel = append(f.gsel, int32(g))
			states = append(states, f.sorted[g])
		}
	}
	nn := len(f.gsel)

	// Row storage recovery, as in Fitter.Fit.
	var flat []float64
	if len(reuse.Trans) > 0 {
		flat = reuse.Trans[0][:0]
	}
	if cap(flat) < nn*nn {
		flat = make([]float64, nn*nn)
	}
	flat = flat[:nn*nn]
	trans := reuse.Trans[:0]
	for i, gi := range f.gsel {
		row := flat[i*nn : (i+1)*nn]
		base := int(gi) * d
		var total float64
		for j, gj := range f.gsel {
			c := f.ccounts[base+int(gj)]
			row[j] = c
			total += c
		}
		if total == 0 {
			// A state with no observed outgoing transition (e.g. the
			// final sample): treat it as absorbing.
			row[i] = 1
		} else {
			for j := range row {
				row[j] /= total
			}
		}
		trans = append(trans, row)
	}
	reuse.States = states
	reuse.Trans = trans
	reuse.Step = f.step
	reuse.Horizon = 0
	return reuse, nil
}

// UptimeSolver computes Model.ExpectedUptimeExact without its per-call
// allocations, keeping the elimination workspace across calls. The
// arithmetic — up-state collection, the (I − U)·E = step·1 system, the
// partial-pivot elimination of mat.Solve and its 1e-12 singularity
// threshold — replays the method instruction for instruction, so the
// results are bit-identical (SolverMatchesExact in the tests pins
// this).
//
// An UptimeSolver is not safe for concurrent use.
type UptimeSolver struct {
	upIdx []int
	aug   []float64
	x     []float64
}

// ExpectedUptime returns m.ExpectedUptimeExact(bid, currentPrice),
// computed in the solver's scratch space.
func (s *UptimeSolver) ExpectedUptime(m *Model, bid, currentPrice float64) float64 {
	start := m.StateOf(currentPrice)
	if m.States[start] > bid {
		return 0
	}
	s.upIdx = s.upIdx[:0]
	pos := -1
	for i, p := range m.States {
		if p <= bid {
			if i == start {
				pos = len(s.upIdx)
			}
			s.upIdx = append(s.upIdx, i)
		}
	}
	n := len(s.upIdx)
	if cap(s.aug) < n*n {
		s.aug = make([]float64, n*n)
		s.x = make([]float64, n)
	}
	aug := s.aug[:n*n]
	x := s.x[:n]
	for r, i := range s.upIdx {
		x[r] = float64(m.Step)
		row := aug[r*n : (r+1)*n]
		for c, j := range s.upIdx {
			v := -m.Trans[i][j]
			if r == c {
				v += 1
			}
			row[c] = v
		}
	}
	// Gaussian elimination with partial pivoting on the single-column
	// system, mirroring mat.Solve.
	for col := 0; col < n; col++ {
		pivot := col
		best := math.Abs(aug[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(aug[r*n+col]); v > best {
				best = v
				pivot = r
			}
		}
		if best < 1e-12 {
			return math.Inf(1) // singular: the up set can hold forever
		}
		if pivot != col {
			ri, rj := aug[pivot*n:(pivot+1)*n], aug[col*n:(col+1)*n]
			for k := range ri {
				ri[k], rj[k] = rj[k], ri[k]
			}
			x[pivot], x[col] = x[col], x[pivot]
		}
		pv := aug[col*n+col]
		for r := col + 1; r < n; r++ {
			f := aug[r*n+col] / pv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				aug[r*n+c] -= f * aug[col*n+c]
			}
			x[r] -= f * x[col]
		}
	}
	for col := n - 1; col >= 0; col-- {
		sum := x[col]
		for k := col + 1; k < n; k++ {
			sum -= aug[col*n+k] * x[k]
		}
		x[col] = sum / aug[col*n+col]
	}
	v := x[pos]
	if v < 0 || math.IsNaN(v) {
		// Numerical noise on a nearly-singular system: treat as
		// effectively unbounded.
		return math.Inf(1)
	}
	return v
}
