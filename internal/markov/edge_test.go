package markov

import (
	"math"
	"testing"

	"repro/internal/trace"
)

// TestFitEdgeInputs covers the degenerate fits: empty history, bad
// step, and a single sample.
func TestFitEdgeInputs(t *testing.T) {
	if _, err := Fit(nil, 300); err != ErrNoHistory {
		t.Fatalf("Fit(nil) = %v, want ErrNoHistory", err)
	}
	if _, err := Fit([]float64{}, 300); err != ErrNoHistory {
		t.Fatalf("Fit(empty) = %v, want ErrNoHistory", err)
	}
	for _, step := range []int64{0, -300} {
		if _, err := Fit([]float64{0.1}, step); err == nil {
			t.Fatalf("Fit with step %d accepted", step)
		}
	}
	// One sample: a single absorbing state.
	m, err := Fit([]float64{0.2}, 300)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStates() != 1 || m.Trans[0][0] != 1 {
		t.Fatalf("single-sample chain = %+v, want one absorbing state", m)
	}
}

// TestSingleStateChainUptime checks the zero-length-history /
// single-state extremes of the uptime solver: a constant price either
// never crosses the bid (infinite uptime) or starts out of bid (zero).
func TestSingleStateChainUptime(t *testing.T) {
	m, err := Fit([]float64{0.30, 0.30, 0.30}, 300)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStates() != 1 {
		t.Fatalf("constant history fitted %d states", m.NumStates())
	}
	if u := m.ExpectedUptime(0.30, 0.30); !math.IsInf(u, 1) {
		t.Fatalf("bid at the only state: uptime = %g, want +Inf", u)
	}
	if u := m.ExpectedUptime(0.29, 0.30); u != 0 {
		t.Fatalf("bid below the only state: uptime = %g, want 0", u)
	}
	if p := m.SurvivalProbability(0.29, 0.30, 5); p != 0 {
		t.Fatalf("out-of-bid survival = %g, want 0", p)
	}
	if p := m.SurvivalProbability(0.30, 0.30, 5); p != 1 {
		t.Fatalf("never-failing survival = %g, want 1", p)
	}
}

// TestTwoStateChainUptime pins a hand-computable case: a two-state
// chain that leaves the up state with probability q each step has
// geometric uptime E[T_u] = Step/q.
func TestTwoStateChainUptime(t *testing.T) {
	// History low,low,low,high,low,... gives p(low→high) = 1/4 over the
	// 8 transitions below; build the chain directly for exact control.
	m := &Model{
		States: []float64{0.10, 1.00},
		Trans: [][]float64{
			{0.75, 0.25},
			{0.50, 0.50},
		},
		Step: 300,
	}
	// Bid admits only the low state: geometric with q = 0.25, so
	// E[T_u] = 300/0.25 = 1200 seconds.
	got := m.ExpectedUptime(0.10, 0.10)
	if math.Abs(got-1200) > 1 {
		t.Fatalf("two-state uptime = %g, want 1200", got)
	}
	// Survival after k steps is 0.75^k.
	if p := m.SurvivalProbability(0.10, 0.10, 3); math.Abs(p-0.75*0.75*0.75) > 1e-12 {
		t.Fatalf("survival(3) = %g, want %g", p, 0.75*0.75*0.75)
	}
}

// TestQuantizeEdges covers the non-positive quantum passthrough and
// bucket collapsing.
func TestQuantizeEdges(t *testing.T) {
	in := []float64{0.12, 0.13, 0.17}
	if got := Quantize(in, 0); &got[0] != &in[0] {
		t.Fatal("zero quantum must return the input unchanged")
	}
	if got := Quantize(in, -1); &got[0] != &in[0] {
		t.Fatal("negative quantum must return the input unchanged")
	}
	got := Quantize(in, 0.05)
	want := []float64{0.10, 0.15, 0.15}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("Quantize = %v, want %v", got, want)
		}
	}
	if got := Quantize(nil, 0.05); len(got) != 0 {
		t.Fatalf("Quantize(nil) = %v", got)
	}
}

// TestFitSeriesEmptyWindow checks a window that contains no samples
// surfaces ErrNoHistory rather than a bogus chain.
func TestFitSeriesEmptyWindow(t *testing.T) {
	s := &trace.Series{Zone: "z", Epoch: 10_000, Step: 300, Prices: []float64{0.1, 0.2}}
	// now long before the series begins: the trailing window is empty.
	if _, err := FitSeries(s, 5_000, 600); err != ErrNoHistory {
		t.Fatalf("FitSeries(empty window) = %v, want ErrNoHistory", err)
	}
	// A valid trailing window still fits.
	if _, err := FitSeries(s, 10_600, 600); err != nil {
		t.Fatalf("FitSeries(valid window) = %v", err)
	}
}

// TestStateOfEdges checks nearest-state resolution at and beyond the
// state range.
func TestStateOfEdges(t *testing.T) {
	m := &Model{States: []float64{0.10, 0.20, 0.40}}
	cases := []struct {
		price float64
		want  int
	}{
		{0.01, 0}, // below the range
		{0.10, 0}, // exact
		{0.14, 0}, // closer to 0.10
		{0.16, 1}, // closer to 0.20
		{0.15, 0}, // tie goes low
		{0.40, 2}, // exact top
		{9.99, 2}, // above the range
	}
	for _, tc := range cases {
		if got := m.StateOf(tc.price); got != tc.want {
			t.Errorf("StateOf(%g) = %d, want %d", tc.price, got, tc.want)
		}
	}
}
