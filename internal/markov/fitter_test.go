package markov

import (
	"math"
	"math/rand"
	"testing"
)

// modelsEqual compares two models bit-for-bit: the Fitter/PrefixFitter
// contract is bit-identity with Fit, not approximation.
func modelsEqual(t *testing.T, got, want *Model) {
	t.Helper()
	if got.Step != want.Step || got.Horizon != want.Horizon {
		t.Fatalf("step/horizon = %d/%d, want %d/%d", got.Step, got.Horizon, want.Step, want.Horizon)
	}
	if len(got.States) != len(want.States) {
		t.Fatalf("state count = %d, want %d", len(got.States), len(want.States))
	}
	for i := range want.States {
		if got.States[i] != want.States[i] {
			t.Fatalf("States[%d] = %v, want %v", i, got.States[i], want.States[i])
		}
	}
	if len(got.Trans) != len(want.Trans) {
		t.Fatalf("row count = %d, want %d", len(got.Trans), len(want.Trans))
	}
	for i := range want.Trans {
		if len(got.Trans[i]) != len(want.Trans[i]) {
			t.Fatalf("row %d length = %d, want %d", i, len(got.Trans[i]), len(want.Trans[i]))
		}
		for j := range want.Trans[i] {
			if got.Trans[i][j] != want.Trans[i][j] {
				t.Fatalf("Trans[%d][%d] = %v, want %v", i, j, got.Trans[i][j], want.Trans[i][j])
			}
		}
	}
}

// quantPrices draws n samples from a small quantized alphabet, the shape
// the batched evaluator feeds the fitters.
func quantPrices(rng *rand.Rand, n, alphabet int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 0.05 * float64(1+rng.Intn(alphabet))
	}
	return out
}

// TestFitterMatchesFit pins Fitter.Fit to the package-level Fit
// bit-for-bit, cycling one reuse model through inputs of different state
// counts — including a wide-alphabet input that exercises the
// sort-and-compact fallback past the insertion cap.
func TestFitterMatchesFit(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var f Fitter
	var reuse *Model
	cases := [][]float64{
		{0.10},
		{0.10, 0.10, 0.10},
		quantPrices(rng, 50, 4),
		quantPrices(rng, 300, 12),
		quantPrices(rng, 40, 2),
	}
	// Wide alphabet: more than the insertion cap's 64 distinct values.
	wide := make([]float64, 400)
	for i := range wide {
		wide[i] = 0.001 * float64(1+rng.Intn(300))
	}
	cases = append(cases, wide, quantPrices(rng, 25, 3))

	for ci, prices := range cases {
		want, err := Fit(prices, 300)
		if err != nil {
			t.Fatalf("case %d: Fit: %v", ci, err)
		}
		got, err := f.Fit(prices, 300, reuse)
		if err != nil {
			t.Fatalf("case %d: Fitter.Fit: %v", ci, err)
		}
		modelsEqual(t, got, want)
		reuse = got // recycle into the next case
	}

	if _, err := f.Fit(nil, 300, nil); err != ErrNoHistory {
		t.Fatalf("empty history error = %v, want ErrNoHistory", err)
	}
	if _, err := f.Fit([]float64{0.1}, 0, nil); err == nil {
		t.Fatalf("non-positive step accepted")
	}
}

// TestPrefixFitterMatchesFit pins PrefixFitter.Fit to Fit over every
// probed prefix, including repeated lengths, a shrinking prefix (the
// rewind path) and a wide-alphabet column.
func TestPrefixFitterMatchesFit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	columns := [][]float64{
		quantPrices(rng, 300, 8),
		quantPrices(rng, 120, 2),
		{0.25},
	}
	wide := make([]float64, 200)
	for i := range wide {
		wide[i] = 0.001 * float64(1+rng.Intn(150))
	}
	columns = append(columns, wide)

	var pf PrefixFitter
	for ci, col := range columns {
		pf.Init(col, 300)
		var reuse *Model
		ns := []int{1, 2, len(col) / 2, len(col) / 2, len(col), len(col) / 3, len(col)}
		for _, n := range ns {
			if n < 1 {
				n = 1
			}
			if n > len(col) {
				n = len(col)
			}
			want, err := Fit(col[:n], 300)
			if err != nil {
				t.Fatalf("column %d: Fit(%d): %v", ci, n, err)
			}
			got, err := pf.Fit(n, reuse)
			if err != nil {
				t.Fatalf("column %d: PrefixFitter.Fit(%d): %v", ci, n, err)
			}
			modelsEqual(t, got, want)
			reuse = got
		}
		if _, err := pf.Fit(0, nil); err != ErrNoHistory {
			t.Fatalf("column %d: zero prefix error = %v, want ErrNoHistory", ci, err)
		}
	}
}

// TestSolverMatchesExact pins UptimeSolver.ExpectedUptime to
// Model.ExpectedUptimeExact bit-for-bit over random chains, bids below,
// inside and above the state range — +Inf singular escapes included.
func TestSolverMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var s UptimeSolver
	for trial := 0; trial < 50; trial++ {
		prices := quantPrices(rng, 50+rng.Intn(200), 1+rng.Intn(10))
		m, err := Fit(prices, 300)
		if err != nil {
			t.Fatalf("Fit: %v", err)
		}
		cur := prices[rng.Intn(len(prices))]
		for _, bid := range []float64{0.01, cur, cur + 0.05, 0.05 * 11, 2.0} {
			want := m.ExpectedUptimeExact(bid, cur)
			got := s.ExpectedUptime(m, bid, cur)
			if math.IsInf(want, 1) {
				if !math.IsInf(got, 1) {
					t.Fatalf("trial %d bid %v: got %v, want +Inf", trial, bid, got)
				}
				continue
			}
			if got != want {
				t.Fatalf("trial %d bid %v: got %v, want %v", trial, bid, got, want)
			}
		}
	}
}

// TestPrefixFitterExtendMatchesInit pins the streaming contract: a
// fitter Extended tick by tick (including ticks that introduce brand-new
// distinct values, exercising the id remap) fits every probed prefix
// bit-identically to a fresh Init over the grown column — and to the
// package-level Fit.
func TestPrefixFitterExtendMatchesInit(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	full := quantPrices(rng, 400, 10)
	// Splice in late-arriving novel values so Extend's insertState path
	// runs after warm-up.
	full[250] = 9.95
	full[300] = 0.001
	full[399] = 7.77

	var inc PrefixFitter
	inc.Init(full[:3], 300)
	var reuse *Model
	for n := 4; n <= len(full); n++ {
		inc.Extend(full[:n])
		if n%37 != 0 && n != len(full) {
			continue
		}
		var fresh PrefixFitter
		fresh.Init(full[:n], 300)
		for _, k := range []int{1, n / 2, n} {
			want, err := fresh.Fit(k, nil)
			if err != nil {
				t.Fatalf("fresh.Fit(%d) at n=%d: %v", k, n, err)
			}
			got, err := inc.Fit(k, reuse)
			if err != nil {
				t.Fatalf("inc.Fit(%d) at n=%d: %v", k, n, err)
			}
			modelsEqual(t, got, want)
			direct, err := Fit(full[:k], 300)
			if err != nil {
				t.Fatalf("Fit(%d): %v", k, err)
			}
			modelsEqual(t, got, direct)
			reuse = got
		}
	}
}
