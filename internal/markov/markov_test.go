package markov

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/trace"
	"repro/internal/tracegen"
)

func TestFitBasic(t *testing.T) {
	// Alternating 0.3, 0.5: two states with deterministic swap.
	prices := []float64{0.3, 0.5, 0.3, 0.5, 0.3, 0.5, 0.3}
	m, err := Fit(prices, 300)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStates() != 2 {
		t.Fatalf("states = %v", m.States)
	}
	if m.Trans[0][1] != 1 || m.Trans[1][0] != 1 {
		t.Fatalf("trans = %v", m.Trans)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, 300); err == nil {
		t.Fatal("Fit accepted empty history")
	}
	if _, err := Fit([]float64{1}, 0); err == nil {
		t.Fatal("Fit accepted zero step")
	}
}

func TestRowsSumToOneProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		prices := make([]float64, len(raw))
		for i, v := range raw {
			prices[i] = float64(v%10)/10 + 0.27
		}
		m, err := Fit(prices, 300)
		if err != nil {
			return false
		}
		for _, row := range m.Trans {
			var sum float64
			for _, p := range row {
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStateOf(t *testing.T) {
	m, err := Fit([]float64{0.3, 0.5, 0.9, 0.3}, 300)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		price float64
		want  int
	}{
		{0.0, 0}, {0.3, 0}, {0.39, 0}, {0.41, 1}, {0.5, 1}, {0.7, 1}, {0.71, 2}, {5, 2},
	}
	for _, c := range cases {
		if got := m.StateOf(c.price); got != c.want {
			t.Errorf("StateOf(%g) = %d, want %d", c.price, got, c.want)
		}
	}
}

func TestExpectedUptimeDeterministicChain(t *testing.T) {
	// 0.3 → 0.3 with p=0.5, 0.3 → 0.9 with p=0.5 (estimated from data
	// with equal counts); bid 0.5: geometric survival with p=0.5 →
	// E[steps to die] = 2 → E[T_u] = 2·300 = 600 s.
	prices := []float64{0.3, 0.3, 0.9, 0.3, 0.3, 0.9, 0.3, 0.3, 0.9, 0.3}
	m, err := Fit(prices, 300)
	if err != nil {
		t.Fatal(err)
	}
	// Estimated from counts: 0.3→0.3 occurs 3 times and 0.3→0.9 occurs
	// 3 times, so p(die) = 1/2 → E[steps] = 2 → E[T_u] = 600.
	got := m.ExpectedUptime(0.5, 0.3)
	want := 2.0 * 300
	if math.Abs(got-want) > 1 {
		t.Fatalf("ExpectedUptime = %g, want %g", got, want)
	}
}

func TestExpectedUptimeOutOfBid(t *testing.T) {
	m, _ := Fit([]float64{0.3, 0.9, 0.3, 0.9}, 300)
	if got := m.ExpectedUptime(0.5, 0.9); got != 0 {
		t.Fatalf("out-of-bid uptime = %g", got)
	}
}

func TestExpectedUptimeAllUp(t *testing.T) {
	m, _ := Fit([]float64{0.3, 0.4, 0.3, 0.4}, 300)
	if got := m.ExpectedUptime(1.0, 0.3); !math.IsInf(got, 1) {
		t.Fatalf("bid above all states should be +Inf, got %g", got)
	}
}

func TestExpectedUptimeMonotoneInBid(t *testing.T) {
	set := tracegen.HighVolatility(5)
	s := set.Series[0].Slice(0, 2*24*trace.Hour)
	m, err := Fit(s.Prices, 300)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	cur := s.Prices[len(s.Prices)-1]
	for _, bid := range []float64{0.27, 0.47, 0.87, 1.47, 2.47, 3.07} {
		u := m.ExpectedUptime(bid, cur)
		if math.IsInf(u, 1) {
			break
		}
		if u < prev-1e-6 {
			t.Fatalf("uptime decreased from %g to %g at bid %g", prev, u, bid)
		}
		prev = u
	}
}

func TestSurvivalProbability(t *testing.T) {
	prices := []float64{0.3, 0.3, 0.9, 0.3, 0.3, 0.9, 0.3, 0.3, 0.9, 0.3}
	m, _ := Fit(prices, 300)
	s0 := m.SurvivalProbability(0.5, 0.3, 0)
	if s0 != 1 {
		t.Fatalf("survival at 0 steps = %g", s0)
	}
	s1 := m.SurvivalProbability(0.5, 0.3, 1)
	if math.Abs(s1-0.5) > 1e-9 {
		t.Fatalf("survival at 1 step = %g, want 0.5", s1)
	}
	if m.SurvivalProbability(0.5, 0.9, 3) != 0 {
		t.Fatal("survival from out-of-bid state should be 0")
	}
	// Monotone non-increasing in k.
	prev := 1.0
	for k := 1; k < 20; k++ {
		s := m.SurvivalProbability(0.5, 0.3, k)
		if s > prev+1e-12 {
			t.Fatalf("survival increased at k=%d", k)
		}
		prev = s
	}
}

func TestCombinedExpectedUptime(t *testing.T) {
	prices := []float64{0.3, 0.3, 0.9, 0.3, 0.3, 0.9, 0.3, 0.3, 0.9, 0.3}
	m, _ := Fit(prices, 300)
	single := m.ExpectedUptimeExact(0.5, 0.3)
	combined := CombinedExpectedUptime([]*Model{m, m, m}, 0.5, []float64{0.3, 0.3, 0.3})
	if math.Abs(combined-3*single) > 1e-6 {
		t.Fatalf("combined = %g, want %g", combined, 3*single)
	}
	// Any infinite zone makes the combination infinite.
	calm, _ := Fit([]float64{0.3, 0.3, 0.3}, 300)
	comb := CombinedExpectedUptime([]*Model{m, calm}, 0.5, []float64{0.3, 0.3})
	if !math.IsInf(comb, 1) {
		t.Fatalf("combined with never-failing zone = %g, want +Inf", comb)
	}
}

func TestFitSeries(t *testing.T) {
	set := tracegen.LowVolatility(9)
	s := set.Series[0]
	now := s.Start() + 5*24*trace.Hour
	m, err := FitSeries(s, now, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStates() == 0 {
		t.Fatal("no states fitted")
	}
	if _, err := FitSeries(s, s.Start(), 300); err == nil {
		t.Fatal("FitSeries accepted an empty window")
	}
}

func TestAbsorbingUnknownState(t *testing.T) {
	// Final sample introduces a state with no outgoing transitions; it
	// must be treated as absorbing, not a NaN row.
	m, err := Fit([]float64{0.3, 0.3, 0.7}, 300)
	if err != nil {
		t.Fatal(err)
	}
	i := m.StateOf(0.7)
	if m.Trans[i][i] != 1 {
		t.Fatalf("unseen-exit state row = %v, want absorbing", m.Trans[i])
	}
	// From 0.7 with bid 1.0 the chain never leaves: infinite uptime.
	if got := m.ExpectedUptime(1.0, 0.7); !math.IsInf(got, 1) {
		t.Fatalf("absorbing uptime = %g", got)
	}
}
