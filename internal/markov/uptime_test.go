package markov

import (
	"math"
	"testing"

	"repro/internal/trace"
	"repro/internal/tracegen"
)

func TestExactMatchesIterativeDeterministicChain(t *testing.T) {
	prices := []float64{0.3, 0.3, 0.9, 0.3, 0.3, 0.9, 0.3, 0.3, 0.9, 0.3}
	m, err := Fit(prices, 300)
	if err != nil {
		t.Fatal(err)
	}
	// Geometric with p(die) = 1/2: E = 2 steps = 600 s exactly.
	got := m.ExpectedUptimeExact(0.5, 0.3)
	if math.Abs(got-600) > 1e-9 {
		t.Fatalf("exact = %g, want 600", got)
	}
}

func TestExactOutOfBidAndAllUp(t *testing.T) {
	m, _ := Fit([]float64{0.3, 0.9, 0.3, 0.9}, 300)
	if got := m.ExpectedUptimeExact(0.5, 0.9); got != 0 {
		t.Fatalf("out-of-bid exact = %g", got)
	}
	calm, _ := Fit([]float64{0.3, 0.4, 0.3, 0.4}, 300)
	if got := calm.ExpectedUptimeExact(1.0, 0.3); !math.IsInf(got, 1) {
		t.Fatalf("never-failing exact = %g, want +Inf", got)
	}
}

func TestExactMatchesIterativeOnGeneratedTraces(t *testing.T) {
	set := tracegen.HighVolatility(77)
	s := set.Series[1].Slice(0, 2*24*trace.Hour)
	hist := Quantize(s.Prices, 0.05)
	m, err := Fit(hist, 300)
	if err != nil {
		t.Fatal(err)
	}
	cur := hist[len(hist)-1]
	for _, bid := range []float64{0.47, 0.87, 1.47, 2.47} {
		exact := m.ExpectedUptimeExact(bid, cur)
		iter := m.ExpectedUptime(bid, cur)
		if math.IsInf(exact, 1) != math.IsInf(iter, 1) {
			// The iterative version may truncate a very long but finite
			// tail; accept a large finite iterative value against an
			// infinite exact one only when the iterative estimate is at
			// its horizon cap.
			if math.IsInf(exact, 1) && iter > 1e6 {
				continue
			}
			t.Fatalf("bid %g: exact %g vs iterative %g disagree on finiteness", bid, exact, iter)
		}
		if math.IsInf(exact, 1) {
			continue
		}
		// Within a few percent (the iterative version truncates tails).
		if diff := math.Abs(exact-iter) / math.Max(exact, 1); diff > 0.05 {
			t.Fatalf("bid %g: exact %g vs iterative %g (diff %.3f)", bid, exact, iter, diff)
		}
	}
}

func TestExactMonotoneInBid(t *testing.T) {
	set := tracegen.HighVolatility(5)
	s := set.Series[0].Slice(0, 2*24*trace.Hour)
	hist := Quantize(s.Prices, 0.05)
	m, err := Fit(hist, 300)
	if err != nil {
		t.Fatal(err)
	}
	cur := hist[len(hist)-1]
	prev := -1.0
	for _, bid := range []float64{0.27, 0.47, 0.87, 1.47, 2.47, 3.07} {
		u := m.ExpectedUptimeExact(bid, cur)
		if math.IsInf(u, 1) {
			break
		}
		if u < prev-1e-6 {
			t.Fatalf("exact uptime decreased to %g at bid %g", u, bid)
		}
		prev = u
	}
}

func TestExactAbsorbingUpState(t *testing.T) {
	m, err := Fit([]float64{0.3, 0.3, 0.7}, 300)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.ExpectedUptimeExact(1.0, 0.7); !math.IsInf(got, 1) {
		t.Fatalf("absorbing exact = %g, want +Inf", got)
	}
}
