// Package livesched turns the simulation engine into a deployable
// controller: the same Algorithm 1 state machine (sim.Machine) driven
// by a streaming price feed in wall-clock time, with every externally
// visible transition — spot requests, terminations, checkpoints, the
// on-demand migration — delivered to an Actuator that a real deployment
// would wire to cloud APIs and to the application's checkpoint hooks.
//
// The scheduler consumes one aligned price sample per step from a Feed
// (the paper's 5-minute cadence), appends it to a growing trace, and
// advances the machine. Because the machine is exactly the code the
// evaluation ran, every property established there — the deadline
// guarantee foremost — carries over to live operation.
package livesched

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/market"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Feed supplies aligned spot price samples, one row per step.
type Feed interface {
	// Zones returns the zone names, fixed for the feed's lifetime.
	Zones() []string
	// Step returns the sampling interval in seconds.
	Step() int64
	// Next blocks until the next sample row (one price per zone, in
	// Zones order) is available. It returns io.EOF when the feed ends.
	Next(ctx context.Context) ([]float64, error)
}

// ActionKind classifies scheduler actions and observations.
type ActionKind int

// Action kinds. Request/Cancel/Terminate/Checkpoint/Restore/OnDemand
// are actions a deployment must perform; InstanceUp/InstanceLost are
// observations surfaced for symmetry.
const (
	ActRequestSpot ActionKind = iota
	ActCancelRequest
	ActInstanceUp
	ActInstanceLost
	ActTerminate
	ActCheckpointStart
	ActCheckpointDone
	ActCheckpointAborted
	ActSwitchConfig
	ActStartOnDemand
	ActComplete
)

// String implements fmt.Stringer.
func (k ActionKind) String() string {
	switch k {
	case ActRequestSpot:
		return "request-spot"
	case ActCancelRequest:
		return "cancel-request"
	case ActInstanceUp:
		return "instance-up"
	case ActInstanceLost:
		return "instance-lost"
	case ActTerminate:
		return "terminate"
	case ActCheckpointStart:
		return "checkpoint-start"
	case ActCheckpointDone:
		return "checkpoint-done"
	case ActCheckpointAborted:
		return "checkpoint-aborted"
	case ActSwitchConfig:
		return "switch-config"
	case ActStartOnDemand:
		return "start-on-demand"
	case ActComplete:
		return "complete"
	default:
		return "unknown"
	}
}

// Action is one externally visible scheduling step.
type Action struct {
	Kind ActionKind
	// Time is the scheduler time in seconds since the run started.
	Time int64
	// Zone is the zone name, empty when not zone-specific.
	Zone string
	// Bid is the active bid at the time of the action.
	Bid float64
	// Detail carries auxiliary information (e.g. the new configuration
	// on a switch).
	Detail string
}

// Actuator receives actions as they happen.
type Actuator interface {
	Act(ctx context.Context, a Action) error
}

// ActuatorFunc adapts a function to the Actuator interface.
type ActuatorFunc func(ctx context.Context, a Action) error

// Act implements Actuator.
func (f ActuatorFunc) Act(ctx context.Context, a Action) error { return f(ctx, a) }

// Config parameterises a live run; it mirrors sim.Config minus the
// trace, which the feed supplies.
type Config struct {
	// Work is C in seconds.
	Work int64
	// Deadline is D in seconds from the run start.
	Deadline int64
	// CheckpointCost and RestartCost are t_c and t_r in seconds.
	CheckpointCost int64
	RestartCost    int64
	// History optionally primes prediction models with trailing price
	// history; its end must coincide with the run start (time 0).
	History *trace.Set
	// Delay models the spot request queuing delay (nil: measured).
	Delay market.DelayModel
	// Seed drives the run's random stream.
	Seed uint64
	// WatchdogGap bounds the wall-clock silence the scheduler tolerates
	// between samples once the run has started. When a gap exceeds it,
	// the scheduler stops waiting and drives the machine to the paper's
	// on-demand fallback, so a stalled feed consumes the watchdog bound
	// — not the deadline margin. 0 disables the watchdog. Deployments
	// should set it well below the slack D − C and above the feed's
	// normal inter-sample spacing.
	WatchdogGap time.Duration
	// FallbackOnFeedError degrades hard feed failures (exhausted
	// retries, unexpected stream end) into the on-demand fallback
	// instead of aborting the run with an error. The deadline guarantee
	// then holds even when the price feed never comes back.
	FallbackOnFeedError bool
	// Trace, when non-nil, receives simulated-time spans for the run,
	// its guard/fallback transitions and the degraded-path events
	// (watchdog trips, absorbed feed errors).
	Trace *obs.Tracer
}

// Degradation reports the scheduler's degraded-path observations for
// one run: how often the watchdog fired, how many samples failed
// validation and were skipped, and how many hard feed errors were
// absorbed by the on-demand fallback.
type Degradation struct {
	// WatchdogTrips counts feed gaps that exceeded WatchdogGap.
	WatchdogTrips int
	// InvalidRows counts samples dropped by validation (wrong arity,
	// non-finite or negative prices).
	InvalidRows int
	// FeedErrors counts hard feed failures absorbed by the fallback.
	FeedErrors int
}

// ErrFeedEnded reports that the price feed ended before the job
// finished; the deadline guarantee cannot be maintained without data.
var ErrFeedEnded = errors.New("livesched: price feed ended before completion")

// ErrWatchdog reports that the feed watchdog tripped: no valid sample
// arrived within Config.WatchdogGap. Runs configured with a watchdog
// degrade to on-demand instead of surfacing it; it only escapes Run
// when the gap opens before the first sample, when no machine exists to
// migrate.
var ErrWatchdog = errors.New("livesched: feed watchdog tripped: sample gap exceeded bound")

// Scheduler drives one job to completion against a live feed.
type Scheduler struct {
	cfg  Config
	st   sim.Strategy
	feed Feed
	act  Actuator

	machine *sim.Machine
	series  []*trace.Series
	drained int // timeline events already dispatched
	deg     Degradation
}

// Degradation returns the degraded-path observations recorded so far;
// call it after Run for the whole-run picture.
func (s *Scheduler) Degradation() Degradation { return s.deg }

// New validates the configuration and returns a scheduler ready to Run.
func New(cfg Config, strat sim.Strategy, feed Feed, act Actuator) (*Scheduler, error) {
	if strat == nil || feed == nil || act == nil {
		return nil, errors.New("livesched: nil strategy, feed or actuator")
	}
	if len(feed.Zones()) == 0 {
		return nil, errors.New("livesched: feed has no zones")
	}
	if feed.Step() <= 0 {
		return nil, errors.New("livesched: feed has no step")
	}
	return &Scheduler{cfg: cfg, st: strat, feed: feed, act: act}, nil
}

// Run executes the job: it blocks until completion, feed end, actuator
// failure or context cancellation, returning the final result on
// success. With a watchdog or FallbackOnFeedError configured, feed
// degradation ends the run through the on-demand fallback — still a
// successful, deadline-honouring result — rather than an error.
func (s *Scheduler) Run(ctx context.Context) (*sim.Result, error) {
	// The machine needs at least one price sample to exist before
	// strategies inspect current prices.
	first, err := s.sample(ctx)
	if err != nil {
		if err == io.EOF {
			return nil, ErrFeedEnded
		}
		return nil, err
	}
	if err := s.start(first); err != nil {
		return nil, err
	}
	for !s.machine.Done() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if s.machine.HasData() {
			if err := s.machine.Step(); err != nil {
				return nil, err
			}
			if err := s.dispatch(ctx); err != nil {
				return nil, err
			}
			continue
		}
		row, err := s.sample(ctx)
		if err != nil {
			return s.degrade(ctx, err)
		}
		s.append(row)
	}
	return s.machine.Result(), nil
}

// sample fetches the next valid row, skipping rows that fail
// validation and bounding the wall-clock wait by the watchdog gap.
func (s *Scheduler) sample(ctx context.Context) ([]float64, error) {
	for {
		row, err := s.next(ctx)
		if err != nil {
			return nil, err
		}
		if s.validRow(row) {
			return row, nil
		}
		s.deg.InvalidRows++
	}
}

// next is one feed read under the watchdog clock.
func (s *Scheduler) next(ctx context.Context) ([]float64, error) {
	if s.cfg.WatchdogGap <= 0 {
		return s.feed.Next(ctx)
	}
	wctx, cancel := context.WithTimeout(ctx, s.cfg.WatchdogGap)
	defer cancel()
	row, err := s.feed.Next(wctx)
	if err != nil && errors.Is(wctx.Err(), context.DeadlineExceeded) && ctx.Err() == nil {
		return nil, ErrWatchdog
	}
	return row, err
}

// validRow rejects rows a faulty feed could deliver: wrong arity,
// non-finite or negative prices. Invalid rows are skipped — the 5-minute
// slot simply goes unsampled, the same observable outcome as a dropped
// sample — so one corrupted upstream message cannot poison the growing
// trace the deadline guarantee is computed over.
func (s *Scheduler) validRow(row []float64) bool {
	if len(row) != len(s.feed.Zones()) {
		return false
	}
	for _, p := range row {
		if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
			return false
		}
	}
	return true
}

// degrade ends a started run after a feed failure: watchdog trips
// always fall back to on-demand (that is the watchdog's contract), hard
// feed errors do so when FallbackOnFeedError is set, and anything else
// — including context cancellation — surfaces as before.
func (s *Scheduler) degrade(ctx context.Context, err error) (*sim.Result, error) {
	switch {
	case errors.Is(err, ErrWatchdog):
		s.deg.WatchdogTrips++
		s.degradeSpan("livesched.watchdog-trip")
	case errors.Is(err, context.Canceled) || (errors.Is(err, context.DeadlineExceeded) && ctx.Err() != nil):
		return nil, err
	case s.cfg.FallbackOnFeedError:
		s.deg.FeedErrors++
		s.degradeSpan("livesched.feed-error")
	case err == io.EOF:
		return nil, ErrFeedEnded
	default:
		return nil, err
	}
	res := s.machine.ForceOnDemand()
	if derr := s.dispatch(ctx); derr != nil {
		return nil, derr
	}
	return res, nil
}

// degradeSpan records one instantaneous degraded-path span at the
// machine's current simulated time.
func (s *Scheduler) degradeSpan(name string) {
	if s.cfg.Trace == nil {
		return
	}
	now := s.machine.Env().Now
	s.cfg.Trace.Record(obs.Span{Name: name, Clock: obs.SimClock, Start: now, End: now})
}

// start builds the growing trace seeded with the first sample and
// constructs the machine.
func (s *Scheduler) start(first []float64) error {
	zones := s.feed.Zones()
	if len(first) != len(zones) {
		return fmt.Errorf("livesched: sample has %d prices for %d zones", len(first), len(zones))
	}
	s.series = make([]*trace.Series, len(zones))
	for i, name := range zones {
		s.series[i] = &trace.Series{Zone: name, Epoch: 0, Step: s.feed.Step(), Prices: []float64{first[i]}}
	}
	set, err := trace.NewSet(s.series...)
	if err != nil {
		return err
	}
	cfg := sim.Config{
		Trace:          set,
		History:        s.cfg.History,
		Work:           s.cfg.Work,
		Deadline:       s.cfg.Deadline,
		CheckpointCost: s.cfg.CheckpointCost,
		RestartCost:    s.cfg.RestartCost,
		Delay:          s.cfg.Delay,
		Seed:           s.cfg.Seed,
		RecordTimeline: true, // actions derive from the timeline
		ObsTrace:       s.cfg.Trace,
	}
	m, err := sim.NewMachine(cfg, s.st)
	if err != nil {
		return err
	}
	s.machine = m
	return nil
}

// append adds one sample row to the growing trace.
func (s *Scheduler) append(row []float64) {
	for i := range s.series {
		s.series[i].Prices = append(s.series[i].Prices, row[i])
	}
}

// dispatch translates newly recorded timeline events into actions.
func (s *Scheduler) dispatch(ctx context.Context) error {
	env := s.machine.Env()
	events := env.TimelineEvents()
	for ; s.drained < len(events); s.drained++ {
		a, ok := translate(env, events[s.drained])
		if !ok {
			continue
		}
		if err := s.act.Act(ctx, a); err != nil {
			return fmt.Errorf("livesched: actuator failed on %s: %w", a.Kind, err)
		}
	}
	return nil
}

// translate maps a timeline event to an external action.
func translate(env *sim.Env, ev sim.TimelineEvent) (Action, bool) {
	zone := ""
	if ev.Zone >= 0 && ev.Zone < len(env.Zones) {
		zone = env.Zones[ev.Zone].Name
	}
	a := Action{Time: ev.Time - env.StartTime, Zone: zone, Bid: env.Spec.Bid, Detail: ev.Detail}
	switch ev.Kind {
	case sim.TLZonePending:
		a.Kind = ActRequestSpot
	case sim.TLZoneUp:
		a.Kind = ActInstanceUp
	case sim.TLZoneDown:
		switch ev.Detail {
		case "provider-kill":
			a.Kind = ActInstanceLost
		case "user-release":
			a.Kind = ActTerminate
		case "request-cancelled", "spec-switch", "out-of-bid":
			a.Kind = ActCancelRequest
		default:
			return Action{}, false
		}
	case sim.TLCheckpointStart:
		a.Kind = ActCheckpointStart
	case sim.TLCheckpointDone:
		a.Kind = ActCheckpointDone
	case sim.TLCheckpointAborted:
		a.Kind = ActCheckpointAborted
	case sim.TLSwitchSpec:
		a.Kind = ActSwitchConfig
	case sim.TLOnDemand:
		a.Kind = ActStartOnDemand
	case sim.TLComplete:
		a.Kind = ActComplete
	default:
		return Action{}, false
	}
	return a, true
}
