package livesched

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/spotapi"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// growingServer serves an AWS-format history that grows over time,
// emulating a live market.
type growingServer struct {
	mu      sync.Mutex
	full    *trace.Set
	visible int64 // seconds of the trace currently exposed
	epoch   time.Time
}

func (g *growingServer) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		g.mu.Lock()
		window := g.full.Slice(g.full.Start(), g.full.Start()+g.visible)
		g.mu.Unlock()
		_ = spotapi.Write(w, window, g.epoch)
	})
}

func (g *growingServer) grow(by int64) {
	g.mu.Lock()
	g.visible += by
	if g.visible > g.full.Duration() {
		g.visible = g.full.Duration()
	}
	g.mu.Unlock()
}

func TestHTTPFeedStreamsGrowingHistory(t *testing.T) {
	// A volatile trace so change events track the sample grid closely
	// (the AWS format only reveals history up to the last movement).
	full := tracegen.HighVolatility(3).Slice(0, 4*trace.Hour)
	g := &growingServer{full: full, visible: trace.Hour, epoch: time.Date(2013, 3, 1, 0, 0, 0, 0, time.UTC)}
	srv := httptest.NewServer(g.handler())
	defer srv.Close()

	feed := &HTTPFeed{
		Client:       &spotapi.Client{BaseURL: srv.URL, HTTPClient: srv.Client()},
		PollInterval: time.Millisecond,
		MaxIdlePolls: 50,
	}
	if err := feed.Prime(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := len(feed.Zones()); got != 3 {
		t.Fatalf("zones = %d", got)
	}
	if feed.Step() != trace.DefaultStep {
		t.Fatalf("step = %d", feed.Step())
	}

	// Consume most of the first visible hour (change events may trail
	// the final samples of the window).
	rows := 0
	for ; rows < 8; rows++ {
		if _, err := feed.Next(context.Background()); err != nil {
			t.Fatalf("row %d: %v", rows, err)
		}
	}
	// Grow the server in the background while the consumer catches up.
	go func() {
		time.Sleep(5 * time.Millisecond)
		g.grow(trace.Hour)
	}()
	row, err := feed.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// The next sample matches the source trace exactly.
	want := full.Series[0].Prices[rows]
	if row[0] != want {
		t.Fatalf("row[%d] = %g, want %g", rows, row[0], want)
	}

	// Note: the AWS change-event format drops trailing constant
	// samples, so the stream ends when the server stops growing.
	for {
		if _, err := feed.Next(context.Background()); err != nil {
			if err != io.EOF {
				t.Fatalf("err = %v, want EOF", err)
			}
			break
		}
	}
}

func TestHTTPFeedErrorsSurface(t *testing.T) {
	feed := &HTTPFeed{Client: &spotapi.Client{BaseURL: "http://127.0.0.1:1"}}
	if _, err := feed.Next(context.Background()); err == nil {
		t.Fatal("unreachable server did not error")
	}
	if feed.Zones() != nil {
		t.Fatal("zones before priming should be nil")
	}
}

func TestHTTPFeedContextCancelDuringPoll(t *testing.T) {
	full := tracegen.LowVolatility(5).Slice(0, trace.Hour)
	g := &growingServer{full: full, visible: trace.Hour, epoch: time.Unix(0, 0).UTC()}
	srv := httptest.NewServer(g.handler())
	defer srv.Close()
	feed := &HTTPFeed{
		Client:       &spotapi.Client{BaseURL: srv.URL, HTTPClient: srv.Client()},
		PollInterval: time.Hour, // force the poll wait
		MaxIdlePolls: 100,
	}
	// Drain everything available.
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
		_, err := feed.Next(ctx)
		cancel()
		if err != nil {
			if err == context.DeadlineExceeded || err == io.EOF {
				return // reached the poll wait and cancelled, as intended
			}
			t.Fatalf("err = %v", err)
		}
	}
}
