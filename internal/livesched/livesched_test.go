package livesched

import (
	"context"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/market"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

func liveConfig(history *trace.Set) Config {
	return Config{
		Work:           6 * trace.Hour,
		Deadline:       9 * trace.Hour,
		CheckpointCost: 300,
		RestartCost:    300,
		History:        history,
		Delay:          market.FixedDelay(300),
		Seed:           7,
	}
}

// liveWindow cuts a run window whose epoch is rebased to 0, as a feed
// would deliver it, plus history ending at 0.
func liveWindow(seed uint64) (history, run *trace.Set) {
	set := tracegen.HighVolatility(seed)
	start := set.Start() + 5*24*trace.Hour
	hist := set.Slice(start-2*24*trace.Hour, start).Clone()
	for _, s := range hist.Series {
		s.Epoch -= start
	}
	runSet := set.Slice(start, start+12*trace.Hour).Clone()
	for _, s := range runSet.Series {
		s.Epoch -= start
	}
	return hist, runSet
}

func TestLiveRunMatchesOfflineRun(t *testing.T) {
	hist, run := liveWindow(3)
	cfg := liveConfig(hist)

	// Offline: the plain engine over the same data.
	offline, err := sim.Run(sim.Config{
		Trace: run, History: hist,
		Work: cfg.Work, Deadline: cfg.Deadline,
		CheckpointCost: cfg.CheckpointCost, RestartCost: cfg.RestartCost,
		Delay: cfg.Delay, Seed: cfg.Seed,
	}, core.SingleZone(core.NewPeriodic(), 0.81, 0))
	if err != nil {
		t.Fatal(err)
	}

	// Live: the scheduler consuming the same prices through a feed.
	rec := &Recorder{}
	s, err := New(cfg, core.SingleZone(core.NewPeriodic(), 0.81, 0), &TraceFeed{Set: run}, rec)
	if err != nil {
		t.Fatal(err)
	}
	live, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if live.Cost != offline.Cost {
		t.Fatalf("live cost %g != offline cost %g", live.Cost, offline.Cost)
	}
	if live.FinishTime != offline.FinishTime-run.Start() && live.FinishTime != offline.FinishTime {
		// Both traces start at 0 after rebasing, so finish times match.
		t.Fatalf("live finish %d != offline finish %d", live.FinishTime, offline.FinishTime)
	}
	if live.Checkpoints != offline.Checkpoints || live.ProviderKills != offline.ProviderKills {
		t.Fatalf("live events diverge: %+v vs %+v", live, offline)
	}
	if !live.DeadlineMet {
		t.Fatal("live run missed deadline")
	}
}

func TestActionsAreCoherent(t *testing.T) {
	hist, run := liveWindow(5)
	rec := &Recorder{}
	s, err := New(liveConfig(hist), core.Redundant(core.NewMarkovDaly(), 0.81, []int{0, 1, 2}), &TraceFeed{Set: run}, rec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Actions) == 0 {
		t.Fatal("no actions dispatched")
	}
	// Every simulated event appears as an action.
	if got := rec.Count(ActCheckpointDone); got != res.Checkpoints {
		t.Fatalf("checkpoint-done actions = %d, result says %d", got, res.Checkpoints)
	}
	if got := rec.Count(ActInstanceLost); got != res.ProviderKills {
		t.Fatalf("instance-lost actions = %d, result says %d", got, res.ProviderKills)
	}
	// Requests precede instance-up for the same zone.
	firstReq := map[string]int64{}
	for _, a := range rec.Actions {
		if a.Kind == ActRequestSpot {
			if _, ok := firstReq[a.Zone]; !ok {
				firstReq[a.Zone] = a.Time
			}
		}
		if a.Kind == ActInstanceUp {
			req, ok := firstReq[a.Zone]
			if !ok || req > a.Time {
				t.Fatalf("zone %s came up at %d without a prior request", a.Zone, a.Time)
			}
		}
	}
	// The run ends with a completion action.
	last := rec.Actions[len(rec.Actions)-1]
	if last.Kind != ActComplete {
		t.Fatalf("last action = %v", last.Kind)
	}
}

func TestFeedEndsEarly(t *testing.T) {
	hist, run := liveWindow(7)
	short := run.Slice(run.Start(), run.Start()+2*trace.Hour)
	s, err := New(liveConfig(hist), core.SingleZone(core.NewPeriodic(), 0.81, 0), &TraceFeed{Set: short}, &Recorder{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background()); !errors.Is(err, ErrFeedEnded) {
		t.Fatalf("err = %v, want ErrFeedEnded", err)
	}
}

func TestContextCancellation(t *testing.T) {
	hist, run := liveWindow(9)
	// A slow feed so cancellation lands mid-run.
	feed := &TraceFeed{Set: run, Interval: 50 * time.Millisecond}
	s, err := New(liveConfig(hist), core.SingleZone(core.NewPeriodic(), 0.81, 0), feed, &Recorder{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Millisecond)
	defer cancel()
	if _, err := s.Run(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestActuatorErrorStopsRun(t *testing.T) {
	hist, run := liveWindow(11)
	boom := errors.New("boom")
	act := ActuatorFunc(func(context.Context, Action) error { return boom })
	s, err := New(liveConfig(hist), core.SingleZone(core.NewPeriodic(), 0.81, 0), &TraceFeed{Set: run}, act)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestChanFeed(t *testing.T) {
	rows := make(chan []float64, 4)
	feed := &ChanFeed{ZoneNames: []string{"a"}, StepSecs: 300, Rows: rows}
	rows <- []float64{0.3}
	got, err := feed.Next(context.Background())
	if err != nil || got[0] != 0.3 {
		t.Fatalf("Next = %v, %v", got, err)
	}
	rows <- []float64{0.3, 0.4} // wrong arity
	if _, err := feed.Next(context.Background()); err == nil {
		t.Fatal("accepted wrong arity")
	}
	close(rows)
	if _, err := feed.Next(context.Background()); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	blocked := &ChanFeed{ZoneNames: []string{"a"}, StepSecs: 300, Rows: make(chan []float64)}
	if _, err := blocked.Next(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
}

func TestLogActuator(t *testing.T) {
	var sb strings.Builder
	act := LogActuator{W: &sb}
	err := act.Act(context.Background(), Action{Kind: ActRequestSpot, Time: 3600, Zone: "us-east-1a", Bid: 0.81})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "request-spot") || !strings.Contains(sb.String(), "us-east-1a") {
		t.Fatalf("log = %q", sb.String())
	}
}

func TestNewValidation(t *testing.T) {
	hist, run := liveWindow(13)
	feed := &TraceFeed{Set: run}
	if _, err := New(liveConfig(hist), nil, feed, &Recorder{}); err == nil {
		t.Fatal("accepted nil strategy")
	}
	if _, err := New(liveConfig(hist), core.NewOnDemandOnly(), nil, &Recorder{}); err == nil {
		t.Fatal("accepted nil feed")
	}
	if _, err := New(liveConfig(hist), core.NewOnDemandOnly(), feed, nil); err == nil {
		t.Fatal("accepted nil actuator")
	}
	bad := &ChanFeed{ZoneNames: nil, StepSecs: 300, Rows: make(chan []float64)}
	if _, err := New(liveConfig(hist), core.NewOnDemandOnly(), bad, &Recorder{}); err == nil {
		t.Fatal("accepted zero-zone feed")
	}
	noStep := &ChanFeed{ZoneNames: []string{"a"}, StepSecs: 0, Rows: make(chan []float64)}
	if _, err := New(liveConfig(hist), core.NewOnDemandOnly(), noStep, &Recorder{}); err == nil {
		t.Fatal("accepted zero-step feed")
	}
}

func TestActionKindString(t *testing.T) {
	kinds := []ActionKind{ActRequestSpot, ActCancelRequest, ActInstanceUp, ActInstanceLost,
		ActTerminate, ActCheckpointStart, ActCheckpointDone, ActCheckpointAborted,
		ActSwitchConfig, ActStartOnDemand, ActComplete}
	for _, k := range kinds {
		if k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if ActionKind(99).String() != "unknown" {
		t.Fatal("unknown kind misnamed")
	}
}

// coreSingleZone builds the default single-zone test strategy.
func coreSingleZone() sim.Strategy {
	return core.SingleZone(core.NewPeriodic(), 0.81, 0)
}
