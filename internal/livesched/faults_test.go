package livesched

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/trace"
)

// dyingFeed serves n rows from the inner feed, then fails permanently
// with a transient-looking error — a feed whose upstream never comes
// back.
type dyingFeed struct {
	inner Feed
	n     int
	err   error
}

func (f *dyingFeed) Zones() []string { return f.inner.Zones() }
func (f *dyingFeed) Step() int64     { return f.inner.Step() }
func (f *dyingFeed) Next(ctx context.Context) ([]float64, error) {
	if f.n <= 0 {
		return nil, f.err
	}
	f.n--
	return f.inner.Next(ctx)
}

// TestSchedulerUnderFaults drives full runs through the fault injector
// and asserts the degradation contract: every run either meets the
// deadline normally or provably engages the on-demand fallback, and the
// scheduler's degradation counters record what happened.
func TestSchedulerUnderFaults(t *testing.T) {
	const gap = 50 * time.Millisecond
	upstreamDead := errors.New("upstream dead")

	cases := []struct {
		name  string
		feed  func(run *trace.Set) Feed
		cfg   func(*Config)
		check func(t *testing.T, res *sim.Result, deg Degradation, rec *Recorder)
	}{
		{
			name: "stall mid-run trips watchdog and falls back to on-demand",
			feed: func(run *trace.Set) Feed {
				return &faults.Injector{
					Inner:    &TraceFeed{Set: run},
					Scenario: faults.Scenario{Plans: []faults.Plan{{At: 5, Kind: faults.Stall, Duration: 1, Delay: 10 * gap}}},
				}
			},
			check: func(t *testing.T, res *sim.Result, deg Degradation, rec *Recorder) {
				if deg.WatchdogTrips != 1 {
					t.Fatalf("watchdog trips = %d, want 1", deg.WatchdogTrips)
				}
				if !res.SwitchedOnDemand {
					t.Fatal("fallback did not switch to on-demand")
				}
				if rec.Count(ActStartOnDemand) == 0 {
					t.Fatal("no start-on-demand action dispatched")
				}
			},
		},
		{
			name: "zone blackout is absorbed by the bid guard",
			feed: func(run *trace.Set) Feed {
				return &faults.Injector{
					Inner:    &TraceFeed{Set: run},
					Scenario: faults.Scenario{Plans: []faults.Plan{{At: 3, Kind: faults.Blackout, Duration: 4}}},
				}
			},
			check: func(t *testing.T, res *sim.Result, deg Degradation, rec *Recorder) {
				if deg.WatchdogTrips != 0 || deg.FeedErrors != 0 {
					t.Fatalf("blackout should not error the feed: %+v", deg)
				}
			},
		},
		{
			name: "corrupted sample rows are skipped, not ingested",
			feed: func(run *trace.Set) Feed {
				return &faults.Injector{
					Inner:    &TraceFeed{Set: run},
					Scenario: faults.Scenario{Seed: 11, Plans: []faults.Plan{{At: 3, Kind: faults.Corrupt, Duration: 3}}},
				}
			},
			check: func(t *testing.T, res *sim.Result, deg Degradation, rec *Recorder) {
				if deg.InvalidRows < 1 {
					t.Fatalf("invalid rows = %d, want >= 1", deg.InvalidRows)
				}
			},
		},
		{
			name: "dead upstream exhausts retries and falls back",
			feed: func(run *trace.Set) Feed {
				return &RetryFeed{
					Inner:    &dyingFeed{inner: &TraceFeed{Set: run}, n: 10, err: upstreamDead},
					Attempts: 2,
					Backoff:  time.Millisecond,
					Cap:      2 * time.Millisecond,
				}
			},
			check: func(t *testing.T, res *sim.Result, deg Degradation, rec *Recorder) {
				if deg.FeedErrors != 1 {
					t.Fatalf("feed errors = %d, want 1", deg.FeedErrors)
				}
				if !res.SwitchedOnDemand {
					t.Fatal("fallback did not switch to on-demand")
				}
			},
		},
		{
			name: "feed ending early falls back instead of aborting",
			feed: func(run *trace.Set) Feed {
				short := run.Slice(run.Start(), run.Start()+2*trace.Hour)
				return &TraceFeed{Set: short}
			},
			check: func(t *testing.T, res *sim.Result, deg Degradation, rec *Recorder) {
				if deg.FeedErrors != 1 {
					t.Fatalf("feed errors = %d, want 1", deg.FeedErrors)
				}
				if !res.SwitchedOnDemand {
					t.Fatal("fallback did not switch to on-demand")
				}
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hist, run := liveWindow(3)
			cfg := liveConfig(hist)
			cfg.WatchdogGap = gap
			cfg.FallbackOnFeedError = true
			if tc.cfg != nil {
				tc.cfg(&cfg)
			}
			rec := &Recorder{}
			s, err := New(cfg, coreSingleZone(), tc.feed(run), rec)
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Run(context.Background())
			if err != nil {
				t.Fatalf("run surfaced %v; faults should degrade, not abort", err)
			}
			// The paper's contract, under every fault: the deadline holds
			// or the on-demand fallback provably engaged.
			if !res.DeadlineMet && !res.SwitchedOnDemand {
				t.Fatalf("deadline missed without fallback: %+v", res)
			}
			if res.DeadlineMet && res.FinishTime > cfg.Deadline {
				t.Fatalf("DeadlineMet but finish %d > deadline %d", res.FinishTime, cfg.Deadline)
			}
			if len(rec.Actions) == 0 || rec.Actions[len(rec.Actions)-1].Kind != ActComplete {
				t.Fatal("run did not end with a complete action")
			}
			tc.check(t, res, s.Degradation(), rec)
		})
	}
}

// TestWatchdogDisabledBlocksIndefinitely pins the opt-in: without a
// WatchdogGap a stalled feed blocks until the context ends, as before.
func TestWatchdogDisabledBlocksIndefinitely(t *testing.T) {
	hist, run := liveWindow(5)
	cfg := liveConfig(hist)
	feed := &faults.Injector{
		Inner:    &TraceFeed{Set: run},
		Scenario: faults.Scenario{Plans: []faults.Plan{{At: 2, Kind: faults.Stall, Duration: 1, Delay: time.Hour}}},
	}
	s, err := New(cfg, coreSingleZone(), feed, &Recorder{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := s.Run(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

// TestWatchdogBeforeFirstSample pins the edge case: a stall before any
// sample arrives surfaces ErrWatchdog — there is no machine to migrate.
func TestWatchdogBeforeFirstSample(t *testing.T) {
	hist, run := liveWindow(7)
	cfg := liveConfig(hist)
	cfg.WatchdogGap = 30 * time.Millisecond
	feed := &faults.Injector{
		Inner:    &TraceFeed{Set: run},
		Scenario: faults.Scenario{Plans: []faults.Plan{{At: 0, Kind: faults.Stall, Duration: 1, Delay: time.Hour}}},
	}
	s, err := New(cfg, coreSingleZone(), feed, &Recorder{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background()); !errors.Is(err, ErrWatchdog) {
		t.Fatalf("err = %v, want ErrWatchdog", err)
	}
}

// TestChanFeedCancellationWins pins satellite 2: a cancelled context
// wins deterministically even when a row is ready to receive.
func TestChanFeedCancellationWins(t *testing.T) {
	rows := make(chan []float64, 1)
	rows <- []float64{0.3}
	feed := &ChanFeed{ZoneNames: []string{"a"}, StepSecs: 300, Rows: rows}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := feed.Next(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled despite a ready row", err)
	}
}
