package livesched

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/spotapi"
	"repro/internal/trace"
)

// HTTPFeed polls a spotapi endpoint (AWS DescribeSpotPriceHistory
// document format, e.g. cmd/pricefeedd) and exposes the history as a
// live sample stream: each Next call returns the following 5-minute
// row, re-fetching when the consumer catches up with the server. It is
// the production form of the scheduler's input path.
//
// The AWS format carries change events, so a stretch of constant prices
// at the head of the server's window is only observable once the next
// movement is published — the feed's visible horizon trails the true
// market by up to one price-hold period, exactly as it does against the
// real DescribeSpotPriceHistory API.
type HTTPFeed struct {
	// Client fetches the history.
	Client *spotapi.Client
	// PollInterval paces re-fetches when no new data is available
	// (default: one second of wall-clock per poll; a real deployment
	// would use a large fraction of the 5-minute step).
	PollInterval time.Duration
	// MaxIdlePolls bounds consecutive polls that yield no new samples
	// before the feed reports the stream ended (default 10).
	MaxIdlePolls int

	set  *trace.Set
	next int
}

// Zones implements Feed. It performs the initial fetch on first use;
// construction-time errors surface from Next, so Zones returns nil
// until data has been seen — call Prime first when zone names are
// needed up front.
func (f *HTTPFeed) Zones() []string {
	if f.set == nil {
		return nil
	}
	return f.set.Zones()
}

// Step implements Feed.
func (f *HTTPFeed) Step() int64 {
	if f.set == nil {
		return trace.DefaultStep
	}
	return f.set.Step()
}

// Prime performs the initial fetch so Zones and Step are known before
// the scheduler starts.
func (f *HTTPFeed) Prime(ctx context.Context) error {
	if f.set != nil {
		return nil
	}
	set, _, err := f.Client.Fetch(ctx, time.Time{}, time.Time{}, trace.DefaultStep)
	if err != nil {
		return fmt.Errorf("livesched: priming http feed: %w", err)
	}
	f.set = set
	return nil
}

// Next implements Feed.
func (f *HTTPFeed) Next(ctx context.Context) ([]float64, error) {
	poll := f.PollInterval
	if poll <= 0 {
		poll = time.Second
	}
	maxIdle := f.MaxIdlePolls
	if maxIdle <= 0 {
		maxIdle = 10
	}
	idle := 0
	for {
		if err := f.Prime(ctx); err != nil {
			return nil, err
		}
		if f.next < f.set.Series[0].Len() {
			row := make([]float64, f.set.NumZones())
			for i, s := range f.set.Series {
				row[i] = s.Prices[f.next]
			}
			f.next++
			return row, nil
		}
		// Caught up: re-fetch and see whether the server has more.
		set, _, err := f.Client.Fetch(ctx, time.Time{}, time.Time{}, f.set.Step())
		if err != nil {
			return nil, err
		}
		if set.Series[0].Len() > f.set.Series[0].Len() {
			f.set = set
			idle = 0
			continue
		}
		idle++
		if idle >= maxIdle {
			return nil, io.EOF
		}
		select {
		case <-time.After(poll):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}
