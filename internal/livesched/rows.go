package livesched

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ParseRow parses one textual price-feed line into a sample row of
// exactly zones prices. Prices are decimal numbers separated by commas
// and/or whitespace; blank lines and lines starting with '#' yield
// (nil, nil) so callers can skip them. Parsing applies the same
// sanitation as the scheduler's row validation: a price that is
// non-finite, negative or syntactically malformed — or a line with the
// wrong arity — is rejected, so one corrupted upstream line cannot
// poison the growing trace.
func ParseRow(line string, zones int) ([]float64, error) {
	if zones <= 0 {
		return nil, fmt.Errorf("livesched: non-positive zone count %d", zones)
	}
	if i := strings.IndexByte(line, '#'); i >= 0 {
		line = line[:i]
	}
	fields := strings.FieldsFunc(line, func(r rune) bool {
		return r == ',' || r == ' ' || r == '\t' || r == '\r'
	})
	if len(fields) == 0 {
		return nil, nil // blank or comment-only line
	}
	if len(fields) != zones {
		return nil, fmt.Errorf("livesched: row has %d prices for %d zones", len(fields), zones)
	}
	row := make([]float64, zones)
	for i, f := range fields {
		p, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("livesched: bad price %q: %v", f, err)
		}
		if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
			return nil, fmt.Errorf("livesched: price %q out of range", f)
		}
		row[i] = p
	}
	return row, nil
}

// LineFeed reads price rows from a line-oriented stream (one ParseRow
// line per sample), the format ad-hoc fixtures and trace dumps use.
// Malformed lines are skipped and counted — the slot goes unsampled,
// matching the scheduler's own row validation — so one corrupted line
// cannot end the feed.
type LineFeed struct {
	// ZoneNames are the feed's zones, fixed for its lifetime.
	ZoneNames []string
	// StepSecs is the sampling interval in seconds.
	StepSecs int64
	// R is the underlying stream.
	R io.Reader
	// Malformed counts lines ParseRow rejected.
	Malformed int

	sc *bufio.Scanner
}

// Zones implements Feed.
func (f *LineFeed) Zones() []string { return f.ZoneNames }

// Step implements Feed.
func (f *LineFeed) Step() int64 { return f.StepSecs }

// Next implements Feed, returning the next parseable row. Blank and
// comment lines are skipped silently, malformed lines are skipped and
// counted. It returns io.EOF once the stream ends.
func (f *LineFeed) Next(ctx context.Context) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if f.sc == nil {
		f.sc = bufio.NewScanner(f.R)
	}
	for f.sc.Scan() {
		row, err := ParseRow(f.sc.Text(), len(f.ZoneNames))
		if err != nil {
			f.Malformed++
			continue
		}
		if row == nil {
			continue
		}
		return row, nil
	}
	if err := f.sc.Err(); err != nil {
		return nil, err
	}
	return nil, io.EOF
}
