package livesched

import (
	"context"
	"io"
	"math"
	"strings"
	"testing"
)

// TestParseRow covers the accepted formats and every rejection class.
func TestParseRow(t *testing.T) {
	cases := []struct {
		name  string
		line  string
		zones int
		want  []float64
		ok    bool
		skip  bool // blank/comment: (nil, nil)
	}{
		{name: "comma", line: "0.12,0.34", zones: 2, want: []float64{0.12, 0.34}, ok: true},
		{name: "whitespace", line: " 0.12\t0.34 ", zones: 2, want: []float64{0.12, 0.34}, ok: true},
		{name: "mixed separators", line: "0.12, 0.34", zones: 2, want: []float64{0.12, 0.34}, ok: true},
		{name: "trailing comment", line: "0.12,0.34 # spike", zones: 2, want: []float64{0.12, 0.34}, ok: true},
		{name: "zero price", line: "0", zones: 1, want: []float64{0}, ok: true},
		{name: "scientific", line: "1e-3", zones: 1, want: []float64{0.001}, ok: true},
		{name: "blank", line: "", zones: 2, ok: true, skip: true},
		{name: "comment only", line: "# header", zones: 2, ok: true, skip: true},
		{name: "wrong arity low", line: "0.12", zones: 2},
		{name: "wrong arity high", line: "0.1,0.2,0.3", zones: 2},
		{name: "negative", line: "-0.1,0.2", zones: 2},
		{name: "nan", line: "NaN,0.2", zones: 2},
		{name: "inf", line: "+Inf,0.2", zones: 2},
		{name: "garbage", line: "abc,0.2", zones: 2},
		{name: "zero zones", line: "0.1", zones: 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			row, err := ParseRow(tc.line, tc.zones)
			if tc.ok && err != nil {
				t.Fatalf("ParseRow(%q, %d) = %v, want ok", tc.line, tc.zones, err)
			}
			if !tc.ok {
				if err == nil {
					t.Fatalf("ParseRow(%q, %d) accepted, want error", tc.line, tc.zones)
				}
				return
			}
			if tc.skip {
				if row != nil {
					t.Fatalf("skippable line yielded row %v", row)
				}
				return
			}
			if len(row) != len(tc.want) {
				t.Fatalf("row = %v, want %v", row, tc.want)
			}
			for i := range row {
				if row[i] != tc.want[i] {
					t.Fatalf("row = %v, want %v", row, tc.want)
				}
			}
		})
	}
}

// TestLineFeed streams a fixture with comments, blanks and corrupted
// lines interleaved and checks the clean rows come through in order
// with the damage counted, then EOF.
func TestLineFeed(t *testing.T) {
	input := strings.Join([]string{
		"# zone-a zone-b",
		"0.10,0.20",
		"",
		"0.11,bogus", // malformed: skipped and counted
		"0.12,0.22",
		"0.13",  // wrong arity: skipped and counted
		"-1,-1", // negative: skipped and counted
		"0.14,0.24 # tail comment",
	}, "\n")
	f := &LineFeed{ZoneNames: []string{"a", "b"}, StepSecs: 300, R: strings.NewReader(input)}
	if got := f.Step(); got != 300 {
		t.Fatalf("step = %d", got)
	}
	var rows [][]float64
	for {
		row, err := f.Next(context.Background())
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		rows = append(rows, row)
	}
	want := [][]float64{{0.10, 0.20}, {0.12, 0.22}, {0.14, 0.24}}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows %v, want %d", len(rows), rows, len(want))
	}
	for i := range want {
		if rows[i][0] != want[i][0] || rows[i][1] != want[i][1] {
			t.Fatalf("rows[%d] = %v, want %v", i, rows[i], want[i])
		}
	}
	if f.Malformed != 3 {
		t.Fatalf("malformed = %d, want 3", f.Malformed)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.Next(ctx); err != context.Canceled {
		t.Fatalf("cancelled Next = %v, want context.Canceled", err)
	}
}

// FuzzRowParser throws arbitrary lines and arities at ParseRow and
// checks the invariants the scheduler depends on: no panic, and any
// accepted row has exactly the requested arity with only finite,
// non-negative prices.
func FuzzRowParser(f *testing.F) {
	f.Add("0.12,0.34", 2)
	f.Add(" 0.12\t0.34 ", 2)
	f.Add("0.12,0.34 # comment", 2)
	f.Add("", 1)
	f.Add("# only", 3)
	f.Add("NaN", 1)
	f.Add("-0", 1)
	f.Add("+Inf,-Inf", 2)
	f.Add("1e309", 1)
	f.Add("0x1p-2", 1)
	f.Add("0.1,0.2,0.3", 2)
	f.Add(strings.Repeat("1,", 100)+"1", 101)
	f.Fuzz(func(t *testing.T, line string, zones int) {
		row, err := ParseRow(line, zones)
		if err != nil {
			if row != nil {
				t.Fatalf("error %v with non-nil row %v", err, row)
			}
			return
		}
		if row == nil {
			return // blank/comment line
		}
		if zones <= 0 {
			t.Fatalf("accepted row with non-positive zones %d", zones)
		}
		if len(row) != zones {
			t.Fatalf("accepted row has %d prices for %d zones", len(row), zones)
		}
		for _, p := range row {
			if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
				t.Fatalf("accepted out-of-range price %v in %q", p, line)
			}
		}
	})
}
