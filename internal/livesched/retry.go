package livesched

import (
	"context"
	"errors"
	"io"
	"time"

	"repro/internal/faults"
)

// RetryFeed decorates a flaky feed with bounded retries and capped,
// jittered exponential backoff: transient errors (anything other than
// io.EOF and context cancellation) are retried up to Attempts times per
// sample before being surfaced. Production feeds — polling HTTP
// endpoints, websocket reconnects — fail transiently all the time; the
// scheduler itself should only see hard failures. Delays come from the
// shared faults.Backoff schedule, so a long outage can never double the
// sleep past the feed's own 5-minute cadence.
type RetryFeed struct {
	// Inner is the wrapped feed.
	Inner Feed
	// Attempts bounds retries per sample; 0 selects 5.
	Attempts int
	// Backoff is the initial delay; 0 selects faults.DefaultBase.
	Backoff time.Duration
	// Cap bounds the doubled delay; 0 selects faults.DefaultCap.
	Cap time.Duration
	// Jitter is the fractional jitter amplitude; 0 selects
	// faults.DefaultJitter, negative disables jitter.
	Jitter float64
	// Seed selects the deterministic jitter stream.
	Seed uint64
	// Sleep is overridable for tests; nil uses the shared
	// context-aware timer.
	Sleep func(ctx context.Context, d time.Duration) error
}

// Zones implements Feed.
func (f *RetryFeed) Zones() []string { return f.Inner.Zones() }

// Step implements Feed.
func (f *RetryFeed) Step() int64 { return f.Inner.Step() }

// Next implements Feed.
func (f *RetryFeed) Next(ctx context.Context) ([]float64, error) {
	attempts := f.Attempts
	if attempts <= 0 {
		attempts = 5
	}
	b := faults.Backoff{Base: f.Backoff, Cap: f.Cap, Jitter: f.Jitter, Seed: f.Seed}
	sleep := f.Sleep
	if sleep == nil {
		sleep = faults.Sleep
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		row, err := f.Inner.Next(ctx)
		if err == nil {
			return row, nil
		}
		if err == io.EOF || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
		lastErr = err
		if attempt+1 < attempts {
			if serr := sleep(ctx, b.Delay(attempt)); serr != nil {
				return nil, serr
			}
		}
	}
	return nil, lastErr
}
