package livesched

import (
	"context"
	"errors"
	"io"
	"time"
)

// RetryFeed decorates a flaky feed with bounded retries and exponential
// backoff: transient errors (anything other than io.EOF and context
// cancellation) are retried up to Attempts times per sample before
// being surfaced. Production feeds — polling HTTP endpoints, websocket
// reconnects — fail transiently all the time; the scheduler itself
// should only see hard failures.
type RetryFeed struct {
	// Inner is the wrapped feed.
	Inner Feed
	// Attempts bounds retries per sample; 0 selects 5.
	Attempts int
	// Backoff is the initial delay, doubled per retry; 0 selects 1 s.
	Backoff time.Duration
	// Sleep is overridable for tests; nil uses a context-aware timer.
	Sleep func(ctx context.Context, d time.Duration) error
}

// Zones implements Feed.
func (f *RetryFeed) Zones() []string { return f.Inner.Zones() }

// Step implements Feed.
func (f *RetryFeed) Step() int64 { return f.Inner.Step() }

// Next implements Feed.
func (f *RetryFeed) Next(ctx context.Context) ([]float64, error) {
	attempts := f.Attempts
	if attempts <= 0 {
		attempts = 5
	}
	backoff := f.Backoff
	if backoff <= 0 {
		backoff = time.Second
	}
	sleep := f.Sleep
	if sleep == nil {
		sleep = func(ctx context.Context, d time.Duration) error {
			select {
			case <-time.After(d):
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		row, err := f.Inner.Next(ctx)
		if err == nil {
			return row, nil
		}
		if err == io.EOF || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
		lastErr = err
		if attempt+1 < attempts {
			if serr := sleep(ctx, backoff); serr != nil {
				return nil, serr
			}
			backoff *= 2
		}
	}
	return nil, lastErr
}
