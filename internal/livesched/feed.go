package livesched

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/trace"
)

// TraceFeed replays a trace.Set as a live price feed, one sample row
// per Interval of wall-clock time (zero replays as fast as the consumer
// can step — useful for tests and offline validation).
type TraceFeed struct {
	Set *trace.Set
	// Interval is the wall-clock pacing per 5-minute sample; e.g.
	// 300 ms replays the market at 1000× speed.
	Interval time.Duration

	next int
}

// Zones implements Feed.
func (f *TraceFeed) Zones() []string { return f.Set.Zones() }

// Step implements Feed.
func (f *TraceFeed) Step() int64 { return f.Set.Step() }

// Next implements Feed.
func (f *TraceFeed) Next(ctx context.Context) ([]float64, error) {
	if f.next >= f.Set.Series[0].Len() {
		return nil, io.EOF
	}
	if f.Interval > 0 && f.next > 0 {
		select {
		case <-time.After(f.Interval):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	row := make([]float64, f.Set.NumZones())
	for i, s := range f.Set.Series {
		row[i] = s.Prices[f.next]
	}
	f.next++
	return row, nil
}

// ChanFeed adapts a channel of sample rows into a Feed, for deployments
// that push updates (e.g. a websocket or polling goroutine).
type ChanFeed struct {
	ZoneNames []string
	StepSecs  int64
	Rows      <-chan []float64
}

// Zones implements Feed.
func (f *ChanFeed) Zones() []string { return f.ZoneNames }

// Step implements Feed.
func (f *ChanFeed) Step() int64 { return f.StepSecs }

// Next implements Feed. Cancellation wins deterministically: a context
// that is already done is honoured before any available row, so a
// cancelled scheduler never keeps draining (or blocking on) a silent
// pusher.
func (f *ChanFeed) Next(ctx context.Context) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	select {
	case row, ok := <-f.Rows:
		if !ok {
			return nil, io.EOF
		}
		if len(row) != len(f.ZoneNames) {
			return nil, fmt.Errorf("livesched: row has %d prices for %d zones", len(row), len(f.ZoneNames))
		}
		return row, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// LogActuator writes each action as one line to an io.Writer.
type LogActuator struct {
	W io.Writer
}

// Act implements Actuator.
func (l LogActuator) Act(_ context.Context, a Action) error {
	zone := a.Zone
	if zone == "" {
		zone = "-"
	}
	detail := ""
	if a.Detail != "" {
		detail = "  " + a.Detail
	}
	_, err := fmt.Fprintf(l.W, "[%6.2fh] %-18s %-12s bid=$%.2f%s\n",
		float64(a.Time)/3600, a.Kind, zone, a.Bid, detail)
	return err
}

// Recorder collects actions for inspection in tests.
type Recorder struct {
	Actions []Action
}

// Act implements Actuator.
func (r *Recorder) Act(_ context.Context, a Action) error {
	r.Actions = append(r.Actions, a)
	return nil
}

// Count returns how many recorded actions have the given kind.
func (r *Recorder) Count(kind ActionKind) int {
	n := 0
	for _, a := range r.Actions {
		if a.Kind == kind {
			n++
		}
	}
	return n
}
