package livesched

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/spotapi"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// e2eEpoch anchors the served histories in wall-clock time.
var e2eEpoch = time.Date(2013, 3, 1, 0, 0, 0, 0, time.UTC)

// TestEndToEndSpotAPICompletes boots the real spotapi handler over
// httptest and runs a job to completion through the production input
// path: HTTP server → spotapi.Client → HTTPFeed → RetryFeed →
// Scheduler. The deadline guarantee must hold against the served
// history.
func TestEndToEndSpotAPICompletes(t *testing.T) {
	set := tracegen.HighVolatility(11).Slice(0, 8*trace.Hour)
	srv := httptest.NewServer(spotapi.Handler(set, e2eEpoch))
	defer srv.Close()

	inner := &HTTPFeed{
		Client:       &spotapi.Client{BaseURL: srv.URL, HTTPClient: srv.Client()},
		PollInterval: time.Millisecond,
		MaxIdlePolls: 3,
	}
	if err := inner.Prime(context.Background()); err != nil {
		t.Fatal(err)
	}
	feed := &RetryFeed{Inner: inner, Attempts: 3, Backoff: time.Millisecond}

	cfg := Config{
		Work:           1800,
		Deadline:       4 * trace.Hour,
		CheckpointCost: 300,
		RestartCost:    300,
		Seed:           7,
	}
	sched, err := New(cfg, core.SingleZone(core.NewPeriodic(), 3.07, 0), feed, ActuatorFunc(
		func(ctx context.Context, a Action) error { return nil }))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sched.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || !res.DeadlineMet {
		t.Fatalf("run did not complete within deadline: %+v", res)
	}
}

// flakyUpstream proxies to the real spotapi handler for the first
// request (the feed's prime) and answers 503 afterwards, emulating an
// upstream price API that goes down mid-run.
type flakyUpstream struct {
	inner    http.Handler
	requests atomic.Int64
}

func (f *flakyUpstream) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.requests.Add(1) > 1 {
		http.Error(w, "upstream down", http.StatusServiceUnavailable)
		return
	}
	f.inner.ServeHTTP(w, r)
}

// TestEndToEndRetryCancellation drives the scheduler's feed-error
// branch through context cancellation: the upstream dies after the
// prime fetch, the retry decorator backs off, and cancelling the run
// context mid-backoff must surface context.Canceled from Run — not a
// hang and not a silent completion.
func TestEndToEndRetryCancellation(t *testing.T) {
	set := tracegen.HighVolatility(11).Slice(0, trace.Hour)
	upstream := &flakyUpstream{inner: spotapi.Handler(set, e2eEpoch)}
	srv := httptest.NewServer(upstream)
	defer srv.Close()

	inner := &HTTPFeed{
		Client:       &spotapi.Client{BaseURL: srv.URL, HTTPClient: srv.Client()},
		PollInterval: time.Millisecond,
		MaxIdlePolls: 100,
	}
	if err := inner.Prime(context.Background()); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	retrying := make(chan struct{}, 16)
	feed := &RetryFeed{
		Inner:    inner,
		Attempts: 10,
		Backoff:  time.Millisecond,
		Sleep: func(ctx context.Context, d time.Duration) error {
			// Announce the backoff so the test can cancel mid-retry.
			select {
			case retrying <- struct{}{}:
			default:
			}
			<-ctx.Done()
			return ctx.Err()
		},
	}

	// More work than the one served hour holds: the scheduler must
	// exhaust the primed window and re-fetch from the dead upstream.
	cfg := Config{
		Work:           20 * trace.Hour,
		Deadline:       40 * trace.Hour,
		CheckpointCost: 300,
		RestartCost:    300,
		Seed:           7,
	}
	sched, err := New(cfg, core.SingleZone(core.NewPeriodic(), 3.07, 0), feed, ActuatorFunc(
		func(ctx context.Context, a Action) error { return nil }))
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := sched.Run(ctx)
		done <- err
	}()
	select {
	case <-retrying:
		cancel()
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatal("scheduler never reached the retry path")
	}
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	if upstream.requests.Load() < 2 {
		t.Fatalf("upstream saw %d requests; the failing re-fetch never happened", upstream.requests.Load())
	}
}
