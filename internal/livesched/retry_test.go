package livesched

import (
	"context"
	"errors"
	"io"
	"testing"
	"time"
)

// flakyFeed fails transiently n times before each successful sample.
type flakyFeed struct {
	failsLeft int
	rows      [][]float64
	next      int
}

func (f *flakyFeed) Zones() []string { return []string{"a"} }
func (f *flakyFeed) Step() int64     { return 300 }
func (f *flakyFeed) Next(context.Context) ([]float64, error) {
	if f.failsLeft > 0 {
		f.failsLeft--
		return nil, errors.New("transient")
	}
	if f.next >= len(f.rows) {
		return nil, io.EOF
	}
	row := f.rows[f.next]
	f.next++
	return row, nil
}

func noSleep(context.Context, time.Duration) error { return nil }

func TestRetryFeedRecovers(t *testing.T) {
	inner := &flakyFeed{failsLeft: 3, rows: [][]float64{{0.3}}}
	f := &RetryFeed{Inner: inner, Attempts: 5, Sleep: noSleep}
	row, err := f.Next(context.Background())
	if err != nil || row[0] != 0.3 {
		t.Fatalf("Next = %v, %v", row, err)
	}
	if f.Zones()[0] != "a" || f.Step() != 300 {
		t.Fatal("delegation broken")
	}
}

func TestRetryFeedExhausts(t *testing.T) {
	inner := &flakyFeed{failsLeft: 10, rows: [][]float64{{0.3}}}
	f := &RetryFeed{Inner: inner, Attempts: 3, Sleep: noSleep}
	if _, err := f.Next(context.Background()); err == nil {
		t.Fatal("exhausted retries did not surface the error")
	}
	// 3 attempts consumed exactly 3 failures.
	if inner.failsLeft != 7 {
		t.Fatalf("failsLeft = %d, want 7", inner.failsLeft)
	}
}

func TestRetryFeedPassesEOFThrough(t *testing.T) {
	inner := &flakyFeed{rows: nil}
	f := &RetryFeed{Inner: inner, Attempts: 5, Sleep: noSleep}
	if _, err := f.Next(context.Background()); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestRetryFeedHonoursCancellation(t *testing.T) {
	inner := &flakyFeed{failsLeft: 100, rows: [][]float64{{0.3}}}
	slept := 0
	f := &RetryFeed{Inner: inner, Attempts: 10, Sleep: func(ctx context.Context, d time.Duration) error {
		slept++
		return context.Canceled
	}}
	if _, err := f.Next(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if slept != 1 {
		t.Fatalf("slept %d times", slept)
	}
}

func TestRetryFeedBackoffDoubles(t *testing.T) {
	inner := &flakyFeed{failsLeft: 3, rows: [][]float64{{0.3}}}
	var delays []time.Duration
	f := &RetryFeed{Inner: inner, Attempts: 5, Backoff: 100 * time.Millisecond, Jitter: -1,
		Sleep: func(_ context.Context, d time.Duration) error {
			delays = append(delays, d)
			return nil
		}}
	if _, err := f.Next(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond}
	if len(delays) != 3 {
		t.Fatalf("delays = %v", delays)
	}
	for i := range want {
		if delays[i] != want[i] {
			t.Fatalf("delays = %v, want %v", delays, want)
		}
	}
}

func TestRetryFeedBackoffIsCappedAndJittered(t *testing.T) {
	// Enough failures to double far past the cap: no observed delay may
	// exceed it, and with jitter enabled the delays must stay within
	// ±jitter of the uncapped schedule.
	inner := &flakyFeed{failsLeft: 11, rows: [][]float64{{0.3}}}
	var delays []time.Duration
	f := &RetryFeed{Inner: inner, Attempts: 12, Backoff: 100 * time.Millisecond,
		Cap: 800 * time.Millisecond, Jitter: 0.1, Seed: 42,
		Sleep: func(_ context.Context, d time.Duration) error {
			delays = append(delays, d)
			return nil
		}}
	if _, err := f.Next(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(delays) != 11 {
		t.Fatalf("slept %d times, want 11", len(delays))
	}
	for i, d := range delays {
		if d > 800*time.Millisecond {
			t.Fatalf("delay %d = %v exceeds the 800ms cap", i, d)
		}
		if d <= 0 {
			t.Fatalf("delay %d = %v, want positive", i, d)
		}
	}
	// The tail of the schedule sits at the cap (modulo jitter), never
	// beyond: an 8-minute sleep from the old unbounded doubling would
	// have blown straight past the 5-minute sample cadence.
	last := delays[len(delays)-1]
	if last < 700*time.Millisecond {
		t.Fatalf("last delay %v fell below cap-with-jitter floor", last)
	}
	// Determinism: an identical feed replays the identical schedule.
	inner2 := &flakyFeed{failsLeft: 11, rows: [][]float64{{0.3}}}
	var delays2 []time.Duration
	f2 := &RetryFeed{Inner: inner2, Attempts: 12, Backoff: 100 * time.Millisecond,
		Cap: 800 * time.Millisecond, Jitter: 0.1, Seed: 42,
		Sleep: func(_ context.Context, d time.Duration) error {
			delays2 = append(delays2, d)
			return nil
		}}
	if _, err := f2.Next(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := range delays {
		if delays[i] != delays2[i] {
			t.Fatalf("jitter is not deterministic: %v vs %v", delays, delays2)
		}
	}
}

func TestSchedulerOverRetryFeed(t *testing.T) {
	// End-to-end: a scheduler over a flaky trace feed completes.
	hist, run := liveWindow(21)
	base := &TraceFeed{Set: run}
	flaky := &onOffFeed{inner: base}
	f := &RetryFeed{Inner: flaky, Attempts: 3, Sleep: noSleep}
	rec := &Recorder{}
	s, err := New(liveConfig(hist), coreSingleZone(), f, rec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.DeadlineMet {
		t.Fatal("deadline missed over flaky feed")
	}
}

// onOffFeed fails every other call.
type onOffFeed struct {
	inner Feed
	calls int
}

func (f *onOffFeed) Zones() []string { return f.inner.Zones() }
func (f *onOffFeed) Step() int64     { return f.inner.Step() }
func (f *onOffFeed) Next(ctx context.Context) ([]float64, error) {
	f.calls++
	if f.calls%2 == 1 {
		return nil, errors.New("blip")
	}
	return f.inner.Next(ctx)
}
