package daly

import (
	"math"
	"testing"
	"testing/quick"
)

func TestYoung(t *testing.T) {
	// √(2·300·7200) ≈ 2078.46
	got := Young(300, 7200)
	want := math.Sqrt(2 * 300 * 7200)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("Young = %g, want %g", got, want)
	}
	if Young(0, 100) != 0 || Young(100, 0) != 0 {
		t.Fatal("Young should be 0 for degenerate inputs")
	}
	if !math.IsInf(Young(300, math.Inf(1)), 1) {
		t.Fatal("Young with infinite MTBF should be +Inf")
	}
}

func TestOptimalHigherOrderExceedsNothingWeird(t *testing.T) {
	delta, mtbf := 300.0, 7200.0
	tau := Optimal(delta, mtbf)
	if tau <= 0 {
		t.Fatalf("Optimal = %g", tau)
	}
	// Daly's refinement stays within a factor of the Young estimate.
	y := Young(delta, mtbf)
	if tau > 1.5*y || tau < 0.5*y {
		t.Fatalf("Optimal = %g, far from Young = %g", tau, y)
	}
}

func TestOptimalLargeDeltaClamp(t *testing.T) {
	// δ ≥ 2M: interval equals the MTBF.
	if got := Optimal(1000, 400); got != 400 {
		t.Fatalf("Optimal clamp = %g, want 400", got)
	}
}

func TestOptimalInfiniteMTBF(t *testing.T) {
	if !math.IsInf(Optimal(300, math.Inf(1)), 1) {
		t.Fatal("Optimal with infinite MTBF should be +Inf")
	}
}

func TestOptimalDegenerate(t *testing.T) {
	if Optimal(0, 100) != 0 || Optimal(100, -1) != 0 {
		t.Fatal("Optimal should be 0 for degenerate inputs")
	}
}

// Young's interval is the exact minimiser of the first-order waste
// model δ/τ + τ/(2M): no nearby interval may have lower waste.
func TestYoungMinimisesWasteProperty(t *testing.T) {
	f := func(dRaw, mRaw uint16) bool {
		delta := 10 + float64(dRaw%2000) // 10..2009 s
		mtbf := delta*2.5 + float64(mRaw%5000)
		tau := Young(delta, mtbf)
		w := ExpectedWaste(tau, delta, mtbf)
		for _, factor := range []float64{0.5, 0.75, 1.25, 2} {
			if ExpectedWaste(tau*factor, delta, mtbf) < w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// In the small-overhead regime (δ ≪ M) Daly's higher-order estimate
// converges to Young's, so its first-order waste is near-minimal too.
func TestOptimalNearWasteMinimumSmallOverhead(t *testing.T) {
	f := func(dRaw, mRaw uint32) bool {
		delta := 10 + float64(dRaw%500)         // 10..509 s
		mtbf := delta*20 + float64(mRaw%100000) // δ ≤ M/20
		tau := Optimal(delta, mtbf)
		w := ExpectedWaste(tau, delta, mtbf)
		wOpt := ExpectedWaste(Young(delta, mtbf), delta, mtbf)
		return w <= wOpt*1.05
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// The paper's §4.2 observation: the redundancy scheme's combined E[T_u]
// is larger, so the optimal checkpoint frequency decreases (interval
// grows) as N increases.
func TestIntervalGrowsWithMTBF(t *testing.T) {
	delta := 300.0
	prev := 0.0
	for _, mtbf := range []float64{3600, 7200, 10800} {
		tau := Optimal(delta, mtbf)
		if tau <= prev {
			t.Fatalf("interval did not grow: %g after %g", tau, prev)
		}
		prev = tau
	}
}

func TestExpectedWasteEdges(t *testing.T) {
	if !math.IsInf(ExpectedWaste(0, 300, 1000), 1) {
		t.Fatal("zero interval should have infinite waste")
	}
	if !math.IsInf(ExpectedWaste(100, 300, 0), 1) {
		t.Fatal("zero MTBF should have infinite waste")
	}
}
