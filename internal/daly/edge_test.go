package daly

import (
	"math"
	"testing"
)

// TestYoungEdges covers zero/negative/infinite inputs and the formula
// on a hand-computable point.
func TestYoungEdges(t *testing.T) {
	cases := []struct {
		name        string
		delta, mtbf float64
		want        float64
	}{
		{"zero delta", 0, 3600, 0},
		{"negative delta", -1, 3600, 0},
		{"zero mtbf", 300, 0, 0},
		{"negative mtbf", 300, -10, 0},
		{"infinite mtbf", 300, math.Inf(1), math.Inf(1)},
		{"exact", 50, 10000, 1000}, // √(2·50·10000) = 1000
	}
	for _, tc := range cases {
		if got := Young(tc.delta, tc.mtbf); got != tc.want {
			t.Errorf("%s: Young(%g, %g) = %g, want %g", tc.name, tc.delta, tc.mtbf, got, tc.want)
		}
	}
}

// TestOptimalEdges covers the guard cases and the δ vs 2M boundary the
// formula switches on.
func TestOptimalEdges(t *testing.T) {
	if got := Optimal(0, 3600); got != 0 {
		t.Errorf("Optimal(0, 3600) = %g, want 0", got)
	}
	if got := Optimal(300, 0); got != 0 {
		t.Errorf("Optimal(300, 0) = %g, want 0", got)
	}
	if got := Optimal(300, math.Inf(1)); !math.IsInf(got, 1) {
		t.Errorf("Optimal(300, +Inf) = %g, want +Inf", got)
	}
	// At and past the boundary δ >= 2M the interval degenerates to M.
	const mtbf = 500.0
	if got := Optimal(2*mtbf, mtbf); got != mtbf {
		t.Errorf("Optimal at δ=2M: %g, want %g", got, mtbf)
	}
	if got := Optimal(2*mtbf+1, mtbf); got != mtbf {
		t.Errorf("Optimal past δ=2M: %g, want %g", got, mtbf)
	}
	// Just under the boundary the higher-order branch applies and must
	// stay non-negative and finite.
	got := Optimal(2*mtbf-1e-6, mtbf)
	if got < 0 || math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("Optimal just under δ=2M: %g, want finite non-negative", got)
	}
}

// TestOptimalMatchesYoungForSmallOverhead checks Daly's refinement
// converges to Young's √(2δM) as δ/M → 0.
func TestOptimalMatchesYoungForSmallOverhead(t *testing.T) {
	const mtbf = 100_000.0
	for _, delta := range []float64{1, 10, 60} {
		y := Young(delta, mtbf)
		o := Optimal(delta, mtbf)
		if rel := math.Abs(o-y) / y; rel > 0.05 {
			t.Errorf("δ=%g: Optimal %g deviates %.1f%% from Young %g", delta, o, rel*100, y)
		}
	}
}

// TestExpectedWasteMinimum checks the waste guards and that Young's
// interval sits at the first-order model's minimum: perturbing τ in
// either direction never reduces the waste.
func TestExpectedWasteMinimum(t *testing.T) {
	if !math.IsInf(ExpectedWaste(0, 300, 3600), 1) {
		t.Error("zero tau must waste infinitely")
	}
	if !math.IsInf(ExpectedWaste(-5, 300, 3600), 1) {
		t.Error("negative tau must waste infinitely")
	}
	if !math.IsInf(ExpectedWaste(600, 300, 0), 1) {
		t.Error("zero mtbf must waste infinitely")
	}
	const delta, mtbf = 300.0, 36_000.0
	tau := Young(delta, mtbf)
	at := ExpectedWaste(tau, delta, mtbf)
	for _, factor := range []float64{0.5, 0.9, 1.1, 2.0} {
		if w := ExpectedWaste(tau*factor, delta, mtbf); w < at {
			t.Errorf("waste at %.2f·τ* (%g) below waste at τ* (%g): τ* is not the minimum", factor, w, at)
		}
	}
	// Daly's interval must sit within a few percent of that minimum too.
	if w := ExpectedWaste(Optimal(delta, mtbf), delta, mtbf); w > at*1.05 {
		t.Errorf("Optimal's waste %g is more than 5%% above the minimum %g", w, at)
	}
}
