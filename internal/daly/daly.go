// Package daly computes optimal checkpoint intervals.
//
// The Markov-Daly policy (§4.2) feeds the Markov model's expected uptime
// E[T_u] — playing the role of the mean time between failures M — and
// the checkpoint cost δ into Daly's estimate of the optimum checkpoint
// interval [Daly, FGCS 2006]. Both the classic first-order Young
// approximation and Daly's higher-order refinement are provided; the
// ablation bench compares them.
package daly

import "math"

// Young returns Young's first-order optimum checkpoint interval
// √(2·δ·M) for checkpoint cost delta and mean time between failures
// mtbf, both in seconds.
func Young(delta, mtbf float64) float64 {
	if delta <= 0 || mtbf <= 0 {
		return 0
	}
	if math.IsInf(mtbf, 1) {
		return math.Inf(1)
	}
	return math.Sqrt(2 * delta * mtbf)
}

// Optimal returns Daly's higher-order estimate of the optimum compute
// time between checkpoints:
//
//	τ = √(2δM)·[1 + ⅓·√(δ/(2M)) + (1/9)·(δ/(2M))] − δ   for δ < 2M
//	τ = M                                                otherwise
//
// The result is clamped to be non-negative. An infinite MTBF (a zone the
// model expects never to fail at this bid) yields +Inf, letting callers
// fall back to their coarsest schedule.
func Optimal(delta, mtbf float64) float64 {
	if delta <= 0 || mtbf <= 0 {
		return 0
	}
	if math.IsInf(mtbf, 1) {
		return math.Inf(1)
	}
	if delta >= 2*mtbf {
		return mtbf
	}
	r := delta / (2 * mtbf)
	tau := math.Sqrt(2*delta*mtbf)*(1+math.Sqrt(r)/3+r/9) - delta
	if tau < 0 {
		tau = 0
	}
	return tau
}

// ExpectedWaste returns the expected fraction of wall-clock time lost to
// checkpointing and rework for a given checkpoint interval tau,
// checkpoint cost delta and MTBF mtbf, under the standard first-order
// model: waste ≈ δ/τ + τ/(2M). Useful for validating that Optimal and
// Young indeed sit near the minimum.
func ExpectedWaste(tau, delta, mtbf float64) float64 {
	if tau <= 0 || mtbf <= 0 {
		return math.Inf(1)
	}
	return delta/tau + tau/(2*mtbf)
}
