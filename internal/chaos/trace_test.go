package chaos

import (
	"context"
	"testing"

	"repro/internal/obs"
)

// TestSoakTracesWatchdogFallback is the observability acceptance test:
// a chaos scenario whose injected stall trips the feed watchdog (seed 3
// under the default preset, deterministic) must leave a span trail
// showing the degraded transition — the watchdog trip, then the
// machine's forced on-demand migration at the same simulated time, then
// the completed run.
func TestSoakTracesWatchdogFallback(t *testing.T) {
	tracer := obs.NewTracer(256)
	rep, err := Soak(context.Background(), Config{Seed: 3, Runs: 1, Trace: tracer})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WatchdogTrips == 0 {
		t.Fatalf("seed 3 no longer trips the watchdog; pick a tripping seed (report: %+v)", rep)
	}

	spans := tracer.Spans()
	trip, force, run := -1, -1, -1
	for i, s := range spans {
		switch s.Name {
		case "livesched.watchdog-trip":
			if trip < 0 {
				trip = i
			}
		case "sim.force-on-demand":
			if force < 0 {
				force = i
			}
		case "sim.run":
			if run < 0 {
				run = i
			}
		}
		if s.Clock != obs.SimClock {
			t.Errorf("span %q has clock %q, want %q", s.Name, s.Clock, obs.SimClock)
		}
	}
	if trip < 0 {
		t.Fatal("no livesched.watchdog-trip span recorded")
	}
	if force < 0 {
		t.Fatal("no sim.force-on-demand span recorded")
	}
	if run < 0 {
		t.Fatal("no sim.run span recorded")
	}
	if !(trip < force && force < run) {
		t.Fatalf("span order trip=%d force=%d run=%d; want watchdog-trip before force-on-demand before run", trip, force, run)
	}
	if spans[trip].Start != spans[force].Start {
		t.Errorf("trip at sim time %d but migration at %d; the fallback must fire at the trip's step",
			spans[trip].Start, spans[force].Start)
	}
	if spans[run].End < spans[force].Start {
		t.Errorf("run span ends at %d, before the migration at %d", spans[run].End, spans[force].Start)
	}
}
