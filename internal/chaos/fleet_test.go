package chaos

import (
	"bytes"
	"context"
	"testing"
)

// TestFleetSoak drives the full fleet chaos harness over a seed window
// chosen to exercise every fleet fault kind — backend kill/restart,
// LB↔backend partition, slow-loris subscribers and feed gaps — and
// checks the aggregate contract on top of the per-scenario invariants
// FleetSoak itself enforces (zero client-visible errors, monotonic
// generations, bounded catch-up, determinism, no leaks).
func TestFleetSoak(t *testing.T) {
	cfg := FleetConfig{Seed: 1, Scenarios: 5, Ticks: 64}
	var log bytes.Buffer
	cfg.Log = &log
	rep, err := FleetSoak(context.Background(), cfg)
	if err != nil {
		t.Fatalf("%v\n%s", err, log.String())
	}
	if len(rep.Runs) != cfg.Scenarios {
		t.Fatalf("%d runs, want %d", len(rep.Runs), cfg.Scenarios)
	}
	// The window must exercise the whole fleet taxonomy, or the soak is
	// vacuous.
	if rep.Kills == 0 || rep.Partitions == 0 || rep.SlowClients == 0 || rep.FeedGaps == 0 {
		t.Fatalf("fault coverage hole: kills=%d partitions=%d slow=%d gaps=%d",
			rep.Kills, rep.Partitions, rep.SlowClients, rep.FeedGaps)
	}
	if rep.Restores != rep.Kills {
		t.Fatalf("restores=%d for kills=%d: every kill must recover from its snapshot", rep.Restores, rep.Kills)
	}
	// Snapshot resume, not full replay: no single restore may approach
	// the horizon.
	if rep.MaxCatchup <= 0 || rep.MaxCatchup >= cfg.Ticks/2 {
		t.Fatalf("max catch-up %d of %d ticks: not a bounded resume", rep.MaxCatchup, cfg.Ticks)
	}
	for _, r := range rep.Runs {
		if r.Requests != cfg.Ticks {
			t.Fatalf("seed %d: %d routed quotes, want %d", r.Seed, r.Requests, cfg.Ticks)
		}
		if r.Reconnects == 0 {
			t.Fatalf("seed %d: live SSE client never connected", r.Seed)
		}
		if r.Digest == "" {
			t.Fatalf("seed %d: empty digest", r.Seed)
		}
	}
}

// TestFleetSoakReproducible pins cross-soak determinism: running the
// same configuration twice yields byte-identical per-seed reports —
// the property that makes a fleet chaos failure replayable.
func TestFleetSoakReproducible(t *testing.T) {
	cfg := FleetConfig{Seed: 11, Scenarios: 2, Ticks: 48}
	a, err := FleetSoak(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FleetSoak(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Runs {
		if a.Runs[i].Digest != b.Runs[i].Digest {
			t.Fatalf("seed %d: digests diverge across soaks: %s vs %s",
				a.Runs[i].Seed, a.Runs[i].Digest, b.Runs[i].Digest)
		}
		if a.Runs[i].CatchupTicks != b.Runs[i].CatchupTicks || a.Runs[i].Restores != b.Runs[i].Restores {
			t.Fatalf("seed %d: recovery accounting diverges across soaks", a.Runs[i].Seed)
		}
	}
}
