package chaos

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestSoakTwentyScenarios is the acceptance criterion in test form: a
// soak across 20 seeded fault plans where every run meets the deadline
// or provably engages the fallback, with no goroutine leaks and
// byte-identical results per seed (Soak replays every seed twice and
// fails on divergence).
func TestSoakTwentyScenarios(t *testing.T) {
	rep, err := Soak(context.Background(), Config{Seed: 1, Runs: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 20 {
		t.Fatalf("soaked %d runs, want 20", len(rep.Runs))
	}
	for _, r := range rep.Runs {
		if !r.DeadlineMet && !r.Fallback {
			t.Fatalf("seed %d missed the deadline without fallback", r.Seed)
		}
		if len(r.Scenario.Plans) == 0 {
			t.Fatalf("seed %d soaked with no faults", r.Seed)
		}
		if r.Digest == "" {
			t.Fatalf("seed %d has no digest", r.Seed)
		}
	}
	// The seeded scenario space must actually exercise the degraded
	// paths, not just clean runs that happen to pass.
	if rep.Fallbacks == 0 {
		t.Fatal("no run engaged the on-demand fallback")
	}
	if rep.WatchdogTrips == 0 && rep.InvalidRows == 0 && rep.FeedErrors == 0 {
		t.Fatal("no degraded path was exercised")
	}
}

func TestSoakSweepsStrategies(t *testing.T) {
	rep, err := Soak(context.Background(), Config{Seed: 1, Runs: 12})
	if err != nil {
		t.Fatal(err)
	}
	families := map[string]bool{}
	for _, r := range rep.Runs {
		families[strings.Split(r.Strategy, "/")[0]] = true
	}
	if len(families) < 2 {
		t.Fatalf("strategy sweep too narrow: %v", families)
	}
}

func TestSoakPresets(t *testing.T) {
	for _, preset := range []string{"low", "low-spike"} {
		if _, err := Soak(context.Background(), Config{Preset: preset, Seed: 3, Runs: 2}); err != nil {
			t.Fatalf("preset %s: %v", preset, err)
		}
	}
	if _, err := Soak(context.Background(), Config{Preset: "bogus", Runs: 1}); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestSoakHonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Soak(ctx, Config{Runs: 5}); err == nil {
		t.Fatal("cancelled soak returned no error")
	}
}

func TestSoakLogsOneLinePerRun(t *testing.T) {
	var sb strings.Builder
	rep, err := Soak(context.Background(), Config{Seed: 9, Runs: 3, Log: &sb})
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(sb.String(), "\n"); lines != len(rep.Runs) {
		t.Fatalf("logged %d lines for %d runs", lines, len(rep.Runs))
	}
	if rep.Elapsed <= 0 || rep.Elapsed > time.Minute {
		t.Fatalf("implausible elapsed %v", rep.Elapsed)
	}
}
