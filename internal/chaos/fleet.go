package chaos

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/leak"
	"repro/internal/quote"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// Fleet-scale chaos: where Soak subjects one scheduler to feed and HTTP
// faults, FleetSoak subjects the whole serving topology — quotelb over
// N in-process quoted instances, each with its own streamer, snapshot
// store and price-feed delivery — to seeded fleet faults (backend
// kill/restart, LB↔backend partition, slow-loris subscribers, feed
// gaps) while clients keep quoting and streaming through the front
// door. Per scenario it asserts the fleet's failure contract:
//
//   - zero client-visible errors: every routed quote and stream
//     subscription succeeds, the bounded retry budget absorbing every
//     fault window (Unroutable stays 0);
//   - monotonic client-visible plan generations across disconnects and
//     failovers, via Last-Event-ID / ?gen=N resume floors — even when
//     the failover target's evaluator is behind;
//   - crash recovery resumes from the snapshot store: a killed-and-
//     restarted backend catches up only the ticks since its last
//     checkpoint (bounded by checkpoint cadence + outage length),
//     never replaying the full feed history;
//   - no goroutine leaks scenario to scenario;
//   - determinism: each scenario runs twice and the backend-state
//     digests must match byte for byte. Client-side observations
//     (which backend served, reconnect counts) are asserted but not
//     digested — round-robin interleaving with the live SSE client is
//     scheduling-dependent; backend feed state is not.
type FleetConfig struct {
	// Seed is the base seed; scenario i derives from Seed+i.
	Seed uint64
	// Scenarios is how many seeded fault schedules to soak; 0 selects 20.
	Scenarios int
	// Backends is the fleet size; 0 selects 3.
	Backends int
	// Ticks is the feed horizon per scenario; 0 selects 96.
	Ticks int
	// CheckpointEvery is the streamers' snapshot cadence in feed ticks;
	// 0 selects 8 — small, so kill/restart windows straddle several
	// checkpoints.
	CheckpointEvery int
	// Log, when set, receives one line per scenario.
	Log io.Writer
}

// FleetRun is the outcome of one fleet scenario.
type FleetRun struct {
	// Seed is the scenario's seed.
	Seed uint64
	// Scenario is the injected fleet fault schedule.
	Scenario faults.Scenario
	// Kills, Partitions, SlowClients and FeedGaps count the schedule's
	// plans by kind.
	Kills, Partitions, SlowClients, FeedGaps int
	// Restores counts snapshot-store recoveries (one per kill).
	Restores int
	// CatchupTicks sums the ticks re-ingested across restores; the soak
	// fails if any single restore exceeds CheckpointEvery + outage.
	CatchupTicks int
	// MaxCatchup is the largest single-restore catch-up in the run.
	MaxCatchup int
	// Reconnects counts the live SSE client's connections (≥1).
	Reconnects int
	// Requests counts routed quote posts (one per tick).
	Requests int
	// Digest fingerprints the fleet's backend state; equal seeds must
	// produce equal digests.
	Digest string
}

// FleetReport aggregates a fleet soak.
type FleetReport struct {
	// Runs holds one entry per scenario, in seed order.
	Runs []FleetRun
	// Kills, Partitions, SlowClients, FeedGaps, Restores and
	// CatchupTicks sum the per-run counters.
	Kills, Partitions, SlowClients, FeedGaps, Restores, CatchupTicks int
	// MaxCatchup is the largest single-restore catch-up observed.
	MaxCatchup int
	// Elapsed is the soak's wall-clock duration.
	Elapsed time.Duration
}

// FleetSoak runs the configured number of fleet fault scenarios, each
// twice for determinism, verifying every invariant. Any violation
// returns an error naming the offending seed.
func FleetSoak(ctx context.Context, cfg FleetConfig) (*FleetReport, error) {
	if cfg.Scenarios <= 0 {
		cfg.Scenarios = 20
	}
	if cfg.Backends <= 0 {
		cfg.Backends = 3
	}
	if cfg.Ticks <= 0 {
		cfg.Ticks = 96
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 8
	}
	start := time.Now()
	before := leak.Baseline()
	rep := &FleetReport{}
	for i := 0; i < cfg.Scenarios; i++ {
		seed := cfg.Seed + uint64(i)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		first, err := fleetOne(ctx, cfg, seed)
		if err != nil {
			return nil, fmt.Errorf("fleet: seed %d: %w", seed, err)
		}
		second, err := fleetOne(ctx, cfg, seed)
		if err != nil {
			return nil, fmt.Errorf("fleet: seed %d (replay): %w", seed, err)
		}
		if first.Digest != second.Digest {
			return nil, fmt.Errorf("fleet: seed %d is nondeterministic: %s vs %s", seed, first.Digest, second.Digest)
		}
		rep.Runs = append(rep.Runs, *first)
		rep.Kills += first.Kills
		rep.Partitions += first.Partitions
		rep.SlowClients += first.SlowClients
		rep.FeedGaps += first.FeedGaps
		rep.Restores += first.Restores
		rep.CatchupTicks += first.CatchupTicks
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "seed %-4d faults=%d kills=%d partitions=%d slow=%d gaps=%d restores=%d catchup=%-3d reconnects=%d %s\n",
				seed, len(first.Scenario.Plans), first.Kills, first.Partitions, first.SlowClients,
				first.FeedGaps, first.Restores, first.CatchupTicks, first.Reconnects, first.Digest)
		}
		if first.MaxCatchup > rep.MaxCatchup {
			rep.MaxCatchup = first.MaxCatchup
		}
		if err := leak.Check(before); err != nil {
			return nil, fmt.Errorf("fleet: seed %d: %w", seed, err)
		}
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// fleetShape is the subscription shape every fleet client uses; one
// shape keeps every backend's resident-evaluator work identical and
// makes generations comparable across the fleet.
var fleetShape = quote.StreamRequest{WorkHours: 4, DeadlineHours: 12, MaxZones: 1, Top: 3}

// fleetQuoteBody is the one-shot request posted every tick.
const fleetQuoteBody = `{"work_hours":4,"deadline_hours":8,"history_window":3,"max_zones":1}`

// fleetBackend is one in-process quoted instance with a crash switch: a
// kill cancels the life context (severing any stream its handler still
// holds), discards the service and streamer — memory state is gone —
// and leaves only the snapshot store, exactly what a process crash
// leaves on disk. Restart boots a fresh instance and restores from it.
type fleetBackend struct {
	name            string
	hist            *trace.Set
	zones           []string
	start, step     int64
	backlog         int
	checkpointEvery int

	store *quote.MemStore

	mu          sync.Mutex
	handler     http.Handler
	streamer    *quote.Streamer
	sub         *quote.StreamSub // persistent resident subscription
	slowSub     *quote.StreamSub // a SlowClient plan's stalled subscriber
	dead        bool
	partitioned bool
	lifeCtx     context.Context
	lifeCancel  context.CancelFunc

	restores, catchup int
}

// boot builds one service+streamer life. Restore state, if any, is the
// caller's next step.
func (fb *fleetBackend) boot(parent context.Context) {
	ev := core.NewEvaluator()
	svc := &quote.Service{Source: &quote.StaticSource{Set: fb.hist}, Eval: ev}
	st := &quote.Streamer{
		Eval:            ev,
		Zones:           fb.zones,
		Start:           fb.start,
		Step:            fb.step,
		Backlog:         fb.backlog,
		StaleAfter:      time.Hour, // staleness flapping is wall-clock; keep it out of the soak
		Heartbeat:       50 * time.Millisecond,
		CrossCheckEvery: -1, // cross-check cadence is pinned by unit tests; keep ticks O(delta)
		Store:           fb.store,
		CheckpointEvery: fb.checkpointEvery,
	}
	fb.mu.Lock()
	defer fb.mu.Unlock()
	fb.handler = quote.NewStreamingHandler(svc, st)
	fb.streamer = st
	fb.lifeCtx, fb.lifeCancel = context.WithCancel(parent)
}

// ServeHTTP is the backend as the router sees it: 502 while dead or
// partitioned (a dead process and a severed link look identical from
// the LB), otherwise the live handler under the life context, so a kill
// mid-stream unwinds the handler like a dropped process connection.
func (fb *fleetBackend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	fb.mu.Lock()
	dead, part, h, life := fb.dead, fb.partitioned, fb.handler, fb.lifeCtx
	fb.mu.Unlock()
	if dead || part || h == nil {
		http.Error(w, "connection refused", http.StatusBadGateway)
		return
	}
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(life, cancel)
	defer stop()
	h.ServeHTTP(w, r.WithContext(ctx))
}

// subscribe attaches (or re-attaches) the persistent resident
// subscription, keeping one evaluator resident per backend life.
func (fb *fleetBackend) subscribe() error {
	sub, err := fb.streamer.Subscribe(fleetShape)
	if err != nil {
		return err
	}
	fb.mu.Lock()
	fb.sub = sub
	fb.mu.Unlock()
	return nil
}

// kill crashes the backend: memory state discarded, streams severed,
// only the snapshot store survives.
func (fb *fleetBackend) kill() {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	fb.dead = true
	fb.lifeCancel()
	fb.handler = nil
	fb.streamer = nil
	fb.sub = nil
	fb.slowSub = nil
}

// restart boots a fresh instance, restores the last checkpoint from the
// snapshot store and catches up the feed ticks the outage missed —
// rows[snap.Seq+1 .. now-1]; the current tick arrives through normal
// delivery. Returns the catch-up size.
func (fb *fleetBackend) restart(parent context.Context, rows [][]float64, now uint64) (int, error) {
	fb.boot(parent)
	snap, err := fb.store.Load()
	if err != nil {
		return 0, fmt.Errorf("%s: loading snapshot: %w", fb.name, err)
	}
	if snap == nil {
		return 0, fmt.Errorf("%s: restarted with an empty snapshot store", fb.name)
	}
	if err := fb.streamer.Restore(snap); err != nil {
		return 0, fmt.Errorf("%s: restore: %w", fb.name, err)
	}
	catchup := 0
	for s := snap.Seq + 1; s < now; s++ {
		if err := fb.streamer.Ingest(s, rows[s]); err != nil {
			return 0, fmt.Errorf("%s: catch-up tick %d: %w", fb.name, s, err)
		}
		catchup++
	}
	fb.mu.Lock()
	fb.dead = false
	fb.mu.Unlock()
	if err := fb.subscribe(); err != nil {
		return 0, err
	}
	fb.restores++
	fb.catchup += catchup
	return catchup, nil
}

// fleetOne builds the topology, drives one scenario tick by tick, and
// verifies every invariant.
func fleetOne(ctx context.Context, cfg FleetConfig, seed uint64) (*FleetRun, error) {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()

	set := tracegen.HighVolatility(seed)
	zones := set.Zones()
	start, step := set.Start(), set.Step()
	rows := make([][]float64, cfg.Ticks+1) // 1-based feed sequence numbers
	for s := 1; s <= cfg.Ticks; s++ {
		rows[s] = set.PricesAt(start + int64(s-1)*step)
	}
	scenario := faults.RandomFleetScenario(seed, int64(cfg.Ticks), cfg.Backends)
	run := &FleetRun{Seed: seed, Scenario: scenario}

	fleet := make([]*fleetBackend, cfg.Backends)
	backends := make([]*cluster.Backend, cfg.Backends)
	for i := range fleet {
		fb := &fleetBackend{
			name:            fmt.Sprintf("b%d", i),
			hist:            set,
			zones:           zones,
			start:           start,
			step:            step,
			backlog:         2 * cfg.Ticks, // never trims: restore geometry stays exact
			checkpointEvery: cfg.CheckpointEvery,
			store:           &quote.MemStore{},
		}
		fb.boot(sctx)
		if err := fb.subscribe(); err != nil {
			return nil, err
		}
		fleet[i] = fb
		b := cluster.NewBackend(fb.name, fb)
		// Threshold 1 ejects a corpse on first contact; the hour-long
		// cooldown keeps readmission explicit (restart/heal), never a
		// wall-clock race.
		b.Breaker = &quote.Breaker{Threshold: 1, Cooldown: time.Hour}
		backends[i] = b
	}
	router := &cluster.Router{
		Backends: backends,
		Policy:   cluster.NewRoundRobin(),
		// Generous but bounded: one fault window at a time must never
		// exhaust it, so every client-visible error is a real violation.
		Retry: &cluster.Budget{Ratio: 0.5, Burst: 64},
	}
	front := httptest.NewServer(router.Handler())
	defer front.Close()
	client := &http.Client{Transport: &http.Transport{}}
	defer client.CloseIdleConnections()

	// The live SSE client: subscribes through the front door, reconnects
	// with Last-Event-ID whenever its stream dies, and watches for any
	// generation regression. Its observations are asserted, not digested.
	var reconnects, sseErrors, regressions atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var lastID uint64
		for sctx.Err() == nil {
			req, err := http.NewRequestWithContext(sctx, http.MethodGet, front.URL+streamPath(""), nil)
			if err != nil {
				sseErrors.Add(1)
				return
			}
			if lastID > 0 {
				req.Header.Set("Last-Event-ID", strconv.FormatUint(lastID, 10))
			}
			resp, err := client.Do(req)
			if err != nil {
				continue // scenario over, or a connection lost pre-header
			}
			if resp.StatusCode != http.StatusOK {
				sseErrors.Add(1)
				resp.Body.Close()
				return
			}
			reconnects.Add(1)
			sc := bufio.NewScanner(resp.Body)
			for sc.Scan() {
				line := sc.Text()
				if !strings.HasPrefix(line, "id: ") {
					continue
				}
				id, err := strconv.ParseUint(line[len("id: "):], 10, 64)
				if err != nil {
					continue
				}
				if id < lastID {
					regressions.Add(1)
				}
				lastID = id
			}
			resp.Body.Close() // stream died (kill or scenario end): reconnect
		}
	}()

	// The tick loop is the scenario clock: heal and engage faults, then
	// deliver the tick, then act as the fleet's clients.
	var lastSeen uint64
	for s := 1; s <= cfg.Ticks; s++ {
		if err := sctx.Err(); err != nil {
			return nil, err
		}
		tick := int64(s)
		for pi := range scenario.Plans {
			p := &scenario.Plans[pi]
			fb, b := fleet[p.Backend], backends[p.Backend]
			switch {
			case tick == p.At+p.Duration: // heal boundary first: the window is [At, At+Duration)
				switch p.Kind {
				case faults.BackendKill:
					catchup, err := fb.restart(sctx, rows, uint64(s))
					if err != nil {
						return nil, err
					}
					if limit := cfg.CheckpointEvery + int(p.Duration); catchup > limit {
						return nil, fmt.Errorf("%s: restore caught up %d ticks, bound is %d (checkpoint cadence %d + outage %d) — that is a replay, not a resume",
							fb.name, catchup, limit, cfg.CheckpointEvery, p.Duration)
					}
					if full := s - 1; catchup >= full {
						return nil, fmt.Errorf("%s: restore caught up %d of %d ticks: full replay", fb.name, catchup, full)
					}
					if catchup > run.MaxCatchup {
						run.MaxCatchup = catchup
					}
					b.Breaker.Success() // the health probe readmitting a restarted backend
				case faults.Partition:
					fb.mu.Lock()
					fb.partitioned = false
					fb.mu.Unlock()
					b.Breaker.Success()
				case faults.SlowClient:
					fb.mu.Lock()
					slow := fb.slowSub
					fb.slowSub = nil
					fb.mu.Unlock()
					if slow != nil {
						slow.Close()
					}
				}
			case tick == p.At:
				switch p.Kind {
				case faults.BackendKill:
					run.Kills++
					fb.kill()
				case faults.Partition:
					run.Partitions++
					fb.mu.Lock()
					fb.partitioned = true
					fb.mu.Unlock()
				case faults.SlowClient:
					run.SlowClients++
					// A subscriber that never reads: latest-wins fan-out
					// must coalesce it without stalling anyone else.
					slow, err := fb.streamer.Subscribe(fleetShape)
					if err != nil {
						return nil, fmt.Errorf("%s: slow subscriber refused: %w", fb.name, err)
					}
					fb.mu.Lock()
					fb.slowSub = slow
					fb.mu.Unlock()
				case faults.FeedGap:
					run.FeedGaps++
				}
			}
		}

		// Feed delivery: every alive backend whose link isn't gapped gets
		// the tick; a dup-delivery probe exercises dedup determinism.
		for i, fb := range fleet {
			fb.mu.Lock()
			dead, st := fb.dead, fb.streamer
			fb.mu.Unlock()
			if dead || feedGapped(scenario, i, tick) {
				continue
			}
			if err := st.Ingest(uint64(s), rows[s]); err != nil {
				return nil, fmt.Errorf("%s: tick %d: %w", fb.name, s, err)
			}
			if s%17 == 0 {
				if err := st.Ingest(uint64(s), rows[s]); err != nil { // duplicate delivery: must drop
					return nil, fmt.Errorf("%s: dup tick %d: %w", fb.name, s, err)
				}
			}
		}

		// Client 1: a routed quote. Zero tolerance — the budget and the
		// healthy majority must absorb every fault window.
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/quote", strings.NewReader(fleetQuoteBody))
		front.Config.Handler.ServeHTTP(rec, req)
		run.Requests++
		if rec.Code != http.StatusOK {
			return nil, fmt.Errorf("tick %d: routed quote answered %d: %s", s, rec.Code, rec.Body.String())
		}

		// Client 2: a reconnecting stream watcher — a fresh subscription
		// every tick carrying its resume floor (alternating the
		// Last-Event-ID header and the explicit ?gen=N parameter), whose
		// announced generation must never regress even when routed to a
		// backend whose evaluator is behind.
		gen, err := watchStream(sctx, client, front.URL, lastSeen, s%2 == 0)
		if err != nil {
			return nil, fmt.Errorf("tick %d: %w", s, err)
		}
		if gen < lastSeen {
			return nil, fmt.Errorf("tick %d: stream generation regressed %d -> %d across reconnect", s, lastSeen, gen)
		}
		lastSeen = gen
	}

	cancel()
	wg.Wait()
	front.Close()
	if n := sseErrors.Load(); n != 0 {
		return nil, fmt.Errorf("live SSE client saw %d non-200 responses", n)
	}
	if n := regressions.Load(); n != 0 {
		return nil, fmt.Errorf("live SSE client saw %d generation regressions", n)
	}
	if n := router.Stats().Unroutable.Load(); n != 0 {
		return nil, fmt.Errorf("router reported %d unroutable requests", n)
	}
	run.Reconnects = int(reconnects.Load())
	if run.Reconnects == 0 {
		return nil, fmt.Errorf("live SSE client never connected")
	}
	for _, fb := range fleet {
		if n := fb.streamer.Metrics.TickErrors.Load(); n != 0 {
			return nil, fmt.Errorf("%s: %d tick application errors", fb.name, n)
		}
		run.Restores += fb.restores
		run.CatchupTicks += fb.catchup
	}
	run.Digest = fleetDigest(scenario, fleet)
	for _, fb := range fleet {
		fb.mu.Lock()
		sub, slow := fb.sub, fb.slowSub
		fb.mu.Unlock()
		if sub != nil {
			sub.Close()
		}
		if slow != nil {
			slow.Close()
		}
	}
	return run, nil
}

// streamPath is the front-door subscription URL for the fleet shape.
func streamPath(extra string) string {
	return "/v1/quotes/stream?work_hours=4&deadline_hours=12&max_zones=1&top=3" + extra
}

// watchStream opens one resumed subscription through the front door,
// reads the announced generation from the response header and
// disconnects — the reconnect-churn client, exercised once per tick.
func watchStream(ctx context.Context, client *http.Client, base string, since uint64, useHeader bool) (uint64, error) {
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	path := streamPath("")
	if !useHeader && since > 0 {
		path = streamPath("&gen=" + strconv.FormatUint(since, 10))
	}
	req, err := http.NewRequestWithContext(wctx, http.MethodGet, base+path, nil)
	if err != nil {
		return 0, err
	}
	if useHeader && since > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(since, 10))
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, fmt.Errorf("stream watcher: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, fmt.Errorf("stream watcher: status %d: %s", resp.StatusCode, body)
	}
	gen, err := strconv.ParseUint(resp.Header.Get("X-Plan-Generation"), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("stream watcher: X-Plan-Generation %q: %v", resp.Header.Get("X-Plan-Generation"), err)
	}
	return gen, nil
}

// feedGapped reports whether backend i's feed link is inside a FeedGap
// window at the given tick.
func feedGapped(sc faults.Scenario, backend int, tick int64) bool {
	for _, p := range sc.Plans {
		if p.Kind == faults.FeedGap && p.Backend == backend &&
			tick >= p.At && tick < p.At+p.Duration {
			return true
		}
	}
	return false
}

// fleetDigest fingerprints the deterministic backend state: the fault
// schedule plus, per backend, the feed cursor, the resident shape's
// generation, and the dedup/gap-fill/checkpoint/restore counters. The
// tick loop alone drives all of it — client scheduling cannot.
func fleetDigest(sc faults.Scenario, fleet []*fleetBackend) string {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(sc.Seed)
	put(uint64(len(sc.Plans)))
	for _, p := range sc.Plans {
		put(uint64(p.At))
		put(uint64(p.Kind))
		put(uint64(p.Duration))
		put(uint64(p.Backend))
	}
	for _, fb := range fleet {
		h.Write([]byte(fb.name))
		put(fb.streamer.Seq())
		put(fb.streamer.Generation(fb.sub))
		put(uint64(fb.streamer.Metrics.Ticks.Load()))
		put(uint64(fb.streamer.Metrics.DupTicks.Load()))
		put(uint64(fb.streamer.Metrics.GapFills.Load()))
		put(uint64(fb.streamer.Metrics.Checkpoints.Load()))
		put(uint64(fb.streamer.Metrics.Restores.Load()))
		put(uint64(fb.restores))
		put(uint64(fb.catchup))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
