// Package chaos is the repository's fault-injection soak harness: it
// replays the live scheduling pipeline (trace feed → fault injector →
// retry decorator → scheduler) under randomized-but-seeded fault
// scenarios and checks, for every run, the invariants the paper
// promises and the implementation must keep under failure:
//
//   - the run completes, and either meets the deadline outright or has
//     provably engaged the on-demand fallback (the guard or the feed
//     watchdog fired, visible in the result and the action stream);
//   - the billing ledger is internally consistent (spot + on-demand
//     charges sum to the total, entry totals match);
//   - no goroutines leak across runs;
//   - identical seeds reproduce identical results, byte for byte —
//     fault injection must not smuggle nondeterminism into the engine.
//
// cmd/chaossim is the CLI; scripts/check.sh runs a short soak in CI.
package chaos

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/leak"
	"repro/internal/livesched"
	"repro/internal/market"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// Config parameterises a soak.
type Config struct {
	// Preset is the synthetic trace family: low, high, low-spike;
	// "" selects high.
	Preset string
	// Seed is the base seed; run i derives everything (trace slice is
	// shared per preset, scenario and engine stream are per-run) from
	// Seed+i.
	Seed uint64
	// Runs is the number of fault scenarios; 0 selects 20.
	Runs int
	// WorkHours is C; 0 selects 4.
	WorkHours float64
	// SlackFrac is the deadline slack (D = C·(1+slack)); 0 selects 0.5.
	SlackFrac float64
	// WatchdogGap is the scheduler's feed-gap bound; 0 selects 100 ms.
	// Injected stalls sleep 10× the gap (the watchdog must trip) and
	// injected latency 1/20 of it (the run must ride through), so the
	// trip/no-trip decision is deterministic despite wall clocks.
	WatchdogGap time.Duration
	// Log, when set, receives one line per run.
	Log io.Writer
	// Trace, when non-nil, receives the schedulers' simulated-time spans
	// (runs, degraded-path events, fallback transitions) across the
	// soak.
	Trace *obs.Tracer
}

// RunReport is the outcome of one soaked scenario.
type RunReport struct {
	// Seed is the run's seed.
	Seed uint64
	// Scenario is the injected fault schedule.
	Scenario faults.Scenario
	// Strategy names the scheduling strategy exercised.
	Strategy string
	// DeadlineMet and Fallback are the run's outcome: every run
	// satisfies DeadlineMet || Fallback or the soak fails.
	DeadlineMet bool
	// Fallback reports the on-demand migration engaged (deadline guard
	// or feed watchdog).
	Fallback bool
	// Degradation is the scheduler's degraded-path counters.
	Degradation livesched.Degradation
	// Digest fingerprints the result; equal seeds must produce equal
	// digests.
	Digest string
	// Cost is the run's total dollars, for the summary line.
	Cost float64
}

// Report aggregates a soak.
type Report struct {
	// Runs holds one report per scenario, in seed order.
	Runs []RunReport
	// Fallbacks counts runs that engaged the on-demand fallback.
	Fallbacks int
	// WatchdogTrips, InvalidRows and FeedErrors sum the schedulers'
	// degradation counters.
	WatchdogTrips, InvalidRows, FeedErrors int
	// Elapsed is the soak's wall-clock duration.
	Elapsed time.Duration
}

// Soak runs the configured number of fault scenarios and verifies every
// invariant, returning the aggregate report. Any violated invariant —
// a failed run, a missed deadline without fallback, ledger
// inconsistency, nondeterminism, a goroutine leak — returns an error
// naming the offending seed.
func Soak(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.Runs <= 0 {
		cfg.Runs = 20
	}
	if cfg.WorkHours <= 0 {
		cfg.WorkHours = 4
	}
	if cfg.SlackFrac <= 0 {
		cfg.SlackFrac = 0.5
	}
	if cfg.WatchdogGap <= 0 {
		cfg.WatchdogGap = 100 * time.Millisecond
	}
	if cfg.Preset == "" {
		cfg.Preset = "high"
	}
	start := time.Now()
	before := leak.Baseline()
	rep := &Report{}
	for i := 0; i < cfg.Runs; i++ {
		seed := cfg.Seed + uint64(i)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		first, err := soakOne(ctx, cfg, seed)
		if err != nil {
			return nil, fmt.Errorf("chaos: seed %d: %w", seed, err)
		}
		// Determinism: the identical seed must replay bit-for-bit.
		second, err := soakOne(ctx, cfg, seed)
		if err != nil {
			return nil, fmt.Errorf("chaos: seed %d (replay): %w", seed, err)
		}
		if first.Digest != second.Digest {
			return nil, fmt.Errorf("chaos: seed %d is nondeterministic: %s vs %s", seed, first.Digest, second.Digest)
		}
		rep.Runs = append(rep.Runs, *first)
		if first.Fallback {
			rep.Fallbacks++
		}
		rep.WatchdogTrips += first.Degradation.WatchdogTrips
		rep.InvalidRows += first.Degradation.InvalidRows
		rep.FeedErrors += first.Degradation.FeedErrors
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "seed %-4d %-28s faults=%-2d deadline=%-5v fallback=%-5v trips=%d invalid=%d cost=$%.2f %s\n",
				seed, first.Strategy, len(first.Scenario.Plans), first.DeadlineMet, first.Fallback,
				first.Degradation.WatchdogTrips, first.Degradation.InvalidRows, first.Cost, first.Digest)
		}
		if err := leak.Check(before); err != nil {
			return nil, fmt.Errorf("chaos: seed %d: %w", seed, err)
		}
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// soakOne builds, runs and verifies a single scenario.
func soakOne(ctx context.Context, cfg Config, seed uint64) (*RunReport, error) {
	history, run, err := window(cfg, seed)
	if err != nil {
		return nil, err
	}
	work := int64(cfg.WorkHours * float64(trace.Hour))
	deadline := int64(float64(work)*(1+cfg.SlackFrac)) / trace.DefaultStep * trace.DefaultStep

	horizon := int64(run.Series[0].Len())
	scenario := faults.RandomScenario(seed, horizon, run.Zones(),
		10*cfg.WatchdogGap, cfg.WatchdogGap/20)

	strat, name := strategy(seed, run.NumZones())
	feed := &livesched.RetryFeed{
		Inner:   &faults.Injector{Inner: &livesched.TraceFeed{Set: run}, Scenario: scenario},
		Backoff: time.Millisecond, Cap: 4 * time.Millisecond, Seed: seed,
	}
	rec := &livesched.Recorder{}
	sched, err := livesched.New(livesched.Config{
		Work:                work,
		Deadline:            deadline,
		CheckpointCost:      300,
		RestartCost:         300,
		History:             history,
		Delay:               market.FixedDelay(300),
		Seed:                seed,
		WatchdogGap:         cfg.WatchdogGap,
		FallbackOnFeedError: true,
		Trace:               cfg.Trace,
	}, strat, feed, rec)
	if err != nil {
		return nil, err
	}
	res, err := sched.Run(ctx)
	if err != nil {
		return nil, fmt.Errorf("run failed under faults %v: %w", scenario.Plans, err)
	}
	deg := sched.Degradation()
	if err := verify(res, rec, deg, deadline); err != nil {
		return nil, fmt.Errorf("faults %v: %w", scenario.Plans, err)
	}
	return &RunReport{
		Seed:        seed,
		Scenario:    scenario,
		Strategy:    name,
		DeadlineMet: res.DeadlineMet,
		Fallback:    res.SwitchedOnDemand,
		Degradation: deg,
		Digest:      digest(res),
		Cost:        res.Cost,
	}, nil
}

// verify checks the per-run invariants.
func verify(res *sim.Result, rec *livesched.Recorder, deg livesched.Degradation, deadline int64) error {
	if !res.Completed {
		return fmt.Errorf("run did not complete")
	}
	if !res.DeadlineMet && !res.SwitchedOnDemand {
		return fmt.Errorf("deadline missed without engaging the on-demand fallback: %+v", res)
	}
	if res.DeadlineMet != (res.FinishTime <= deadline) {
		return fmt.Errorf("DeadlineMet=%v inconsistent with finish %d vs deadline %d", res.DeadlineMet, res.FinishTime, deadline)
	}
	// Ledger consistency: the split sums to the total, the entry sum
	// matches the running total, nothing is negative.
	if res.Cost < 0 || res.SpotCost < 0 || res.OnDemandCost < 0 {
		return fmt.Errorf("negative cost: %+v", res)
	}
	if d := math.Abs(res.Cost - (res.SpotCost + res.OnDemandCost)); d > 1e-6 {
		return fmt.Errorf("ledger split off by $%g (total %g, spot %g, od %g)", d, res.Cost, res.SpotCost, res.OnDemandCost)
	}
	var entrySum float64
	for _, e := range res.Ledger.Entries {
		if e.Rate < 0 {
			return fmt.Errorf("negative ledger entry: %+v", e)
		}
		entrySum += e.Rate
	}
	if d := math.Abs(entrySum - res.Ledger.Total()); d > 1e-6 {
		return fmt.Errorf("ledger entries sum to %g, total says %g", entrySum, res.Ledger.Total())
	}
	// The action stream must agree with the result: every run ends in
	// a completion action, and a fallback is externally visible.
	if n := len(rec.Actions); n == 0 || rec.Actions[n-1].Kind != livesched.ActComplete {
		return fmt.Errorf("action stream does not end with complete")
	}
	if res.SwitchedOnDemand && rec.Count(livesched.ActStartOnDemand) == 0 {
		return fmt.Errorf("fallback engaged but no start-on-demand action was dispatched")
	}
	if deg.WatchdogTrips > 0 && !res.SwitchedOnDemand {
		return fmt.Errorf("watchdog tripped but the machine was not driven on-demand")
	}
	return nil
}

// window cuts the per-seed history and run slices, epoch-rebased to 0
// like a live feed would deliver them.
func window(cfg Config, seed uint64) (history, run *trace.Set, err error) {
	var set *trace.Set
	switch cfg.Preset {
	case "low":
		set = tracegen.LowVolatility(seed)
	case "high":
		set = tracegen.HighVolatility(seed)
	case "low-spike":
		set = tracegen.LowVolatilityWithMegaSpike(seed)
	default:
		return nil, nil, fmt.Errorf("unknown preset %q", cfg.Preset)
	}
	work := int64(cfg.WorkHours * float64(trace.Hour))
	deadline := int64(float64(work) * (1 + cfg.SlackFrac))
	start := set.Start() + 5*24*trace.Hour
	history = rebase(set.Slice(start-2*24*trace.Hour, start), start)
	run = rebase(set.Slice(start, start+deadline+4*trace.Hour), start)
	return history, run, nil
}

// rebase clones a slice of a trace so its epoch is relative to start.
func rebase(set *trace.Set, start int64) *trace.Set {
	out := set.Clone()
	for _, s := range out.Series {
		s.Epoch -= start
	}
	return out
}

// strategy derives the run's scheduling strategy from the seed so the
// soak sweeps the policy space: single-zone and redundant variants of
// every checkpoint policy family.
func strategy(seed uint64, zones int) (sim.Strategy, string) {
	policies := []func() sim.CheckpointPolicy{
		func() sim.CheckpointPolicy { return core.NewPeriodic() },
		func() sim.CheckpointPolicy { return core.NewMarkovDaly() },
		func() sim.CheckpointPolicy { return core.NewEdge() },
		func() sim.CheckpointPolicy { return core.NewThreshold() },
	}
	p := policies[seed%uint64(len(policies))]()
	n := int(seed/uint64(len(policies)))%3 + 1
	if n > zones {
		n = zones
	}
	const bid = 0.81 // the paper's reference bid for cc2.8xlarge
	if n == 1 {
		return core.SingleZone(p, bid, 0), "single/" + p.Name()
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return core.Redundant(p, bid, idx), fmt.Sprintf("redundant%d/%s", n, p.Name())
}

// digest fingerprints a result: every externally meaningful field plus
// the full ledger, as a short hex string. Equal digests mean equal
// runs.
func digest(res *sim.Result) string {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(math.Float64bits(res.Cost))
	put(math.Float64bits(res.SpotCost))
	put(math.Float64bits(res.OnDemandCost))
	put(uint64(res.FinishTime))
	put(uint64(res.Committed))
	put(uint64(res.ReworkSeconds))
	put(uint64(res.OverheadSeconds))
	for _, v := range []bool{res.Completed, res.DeadlineMet, res.SwitchedOnDemand} {
		if v {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	for _, v := range []int{res.Checkpoints, res.AbortedCheckpoints, res.Restarts,
		res.ProviderKills, res.UserReleases, res.SpecSwitches} {
		put(uint64(v))
	}
	for _, e := range res.Ledger.Entries {
		h.Write([]byte(e.Zone))
		put(uint64(e.HourStart))
		put(math.Float64bits(e.Rate))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
