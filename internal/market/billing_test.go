package market

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func flatRate(rate float64) func(int64) float64 {
	return func(int64) float64 { return rate }
}

func TestMeterFullHours(t *testing.T) {
	var l Ledger
	m := OpenSpotMeter("z", 0, 0.30)
	m.Advance(2*trace.Hour+100, flatRate(0.50), &l)
	// Two completed hours: first at the opening rate, second at the
	// boundary rate.
	if len(l.Entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(l.Entries))
	}
	if l.Entries[0].Rate != 0.30 || l.Entries[1].Rate != 0.50 {
		t.Fatalf("rates = %v, %v", l.Entries[0].Rate, l.Entries[1].Rate)
	}
	if l.Total() != 0.80 {
		t.Fatalf("total = %g", l.Total())
	}
}

func TestHourStartPricingIgnoresIntraHourMoves(t *testing.T) {
	// Price jumps mid-hour; the charge must still be the hour-start
	// price (the paper's hour-boundary pricing rule).
	rateAt := func(at int64) float64 {
		if at < trace.Hour {
			return 0.30
		}
		return 1.00
	}
	var l Ledger
	m := OpenSpotMeter("z", 0, 0.30)
	m.Advance(trace.Hour, rateAt, &l)
	if len(l.Entries) != 1 || l.Entries[0].Rate != 0.30 {
		t.Fatalf("ledger = %+v", l.Entries)
	}
}

func TestProviderTerminationPartialHourFree(t *testing.T) {
	var l Ledger
	m := OpenSpotMeter("z", 0, 0.30)
	m.Close(trace.Hour+1800, ByProvider, flatRate(0.30), &l)
	// One completed hour charged; the half hour in progress is free.
	if len(l.Entries) != 1 {
		t.Fatalf("entries = %+v", l.Entries)
	}
	if l.Total() != 0.30 {
		t.Fatalf("total = %g, want 0.30", l.Total())
	}
}

func TestUserTerminationChargesPartialHour(t *testing.T) {
	var l Ledger
	m := OpenSpotMeter("z", 0, 0.30)
	m.Close(1800, ByUser, flatRate(0.30), &l)
	if len(l.Entries) != 1 || !l.Entries[0].Partial {
		t.Fatalf("ledger = %+v", l.Entries)
	}
	if l.Total() != 0.30 {
		t.Fatalf("total = %g", l.Total())
	}
}

func TestCloseExactlyOnBoundaryChargesNothingExtra(t *testing.T) {
	var l Ledger
	m := OpenSpotMeter("z", 0, 0.30)
	m.Close(trace.Hour, ByUser, flatRate(0.40), &l)
	// One full hour, and the next hour never started.
	if len(l.Entries) != 1 || l.Total() != 0.30 {
		t.Fatalf("ledger = %+v total %g", l.Entries, l.Total())
	}
}

func TestOnDemandMeter(t *testing.T) {
	var l Ledger
	m := OpenOnDemandMeter(0)
	if !m.OnDemand() || m.Zone() != "on-demand" {
		t.Fatal("on-demand meter misconfigured")
	}
	m.Close(2*trace.Hour+10, ByUser, nil, &l)
	// Three started hours at $2.40.
	if got := l.Total(); math.Abs(got-3*OnDemandRate) > 1e-9 {
		t.Fatalf("on-demand total = %g, want %g", got, 3*OnDemandRate)
	}
	if l.OnDemandTotal() != l.Total() || l.SpotTotal() != 0 {
		t.Fatal("ledger split wrong")
	}
}

func TestMeterPanicsOnMisuse(t *testing.T) {
	assertPanics := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	var l Ledger
	m := OpenSpotMeter("z", 1000, 0.3)
	assertPanics("backwards time", func() { m.Advance(0, flatRate(0.3), &l) })
	m.Close(1000, ByUser, flatRate(0.3), &l)
	assertPanics("advance after close", func() { m.Advance(2000, flatRate(0.3), &l) })
	assertPanics("double close", func() { m.Close(2000, ByUser, flatRate(0.3), &l) })
}

func TestLedgerSplit(t *testing.T) {
	var l Ledger
	l.Add(Entry{Zone: "a", Rate: 0.5})
	l.Add(Entry{Zone: "on-demand", Rate: 2.4, OnDemand: true})
	if l.SpotTotal() != 0.5 || l.OnDemandTotal() != 2.4 || l.Total() != 2.9 {
		t.Fatalf("split = %g/%g/%g", l.SpotTotal(), l.OnDemandTotal(), l.Total())
	}
}

// Billing invariants, property-checked: total is the sum of entries;
// a provider kill never costs more than a user kill at the same moment;
// and cost is monotone in run length.
func TestBillingProperties(t *testing.T) {
	f := func(hours uint8, extraRaw uint16, rateRaw uint8) bool {
		runFull := int64(hours%10) * trace.Hour
		extra := int64(extraRaw) % trace.Hour
		rate := 0.27 + float64(rateRaw)/100
		end := runFull + extra

		run := func(cause TerminationCause, until int64) float64 {
			var l Ledger
			m := OpenSpotMeter("z", 0, rate)
			m.Close(until, cause, flatRate(rate), &l)
			var sum float64
			for _, e := range l.Entries {
				sum += e.Rate
			}
			if sum != l.Total() {
				t.Fatalf("ledger total %g != entry sum %g", l.Total(), sum)
			}
			return l.Total()
		}
		prov := run(ByProvider, end)
		user := run(ByUser, end)
		if prov > user {
			return false
		}
		// Monotonicity: running longer never costs less.
		if end >= trace.Hour && run(ByUser, end-trace.Hour) > user {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTerminationCauseString(t *testing.T) {
	if ByProvider.String() != "provider" || ByUser.String() != "user" || TerminationCause(9).String() != "unknown" {
		t.Fatal("TerminationCause.String mismatch")
	}
}

func TestFixedDelay(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	if got := FixedDelay(0).Sample(rng); got != 0 {
		t.Fatalf("FixedDelay(0) = %d", got)
	}
	if got := FixedDelay(300).Sample(rng); got != 300 {
		t.Fatalf("FixedDelay(300) = %d", got)
	}
}

func TestMeasuredDelayCalibration(t *testing.T) {
	d := DefaultDelay()
	rng := rand.New(rand.NewPCG(42, 0))
	n := 20000
	var sum float64
	for i := 0; i < n; i++ {
		s := d.Sample(rng)
		if s < d.Min || s > d.Max {
			t.Fatalf("sample %d outside [%d, %d]", s, d.Min, d.Max)
		}
		sum += float64(s)
	}
	mean := sum / float64(n)
	// The paper measured a 299.6 s average.
	if mean < 250 || mean > 350 {
		t.Fatalf("mean delay = %g, want ≈ 300", mean)
	}
}
