// Package market implements Amazon EC2 billing mechanics as of the
// paper's era (§2.1):
//
//   - Hour-boundary pricing: each instance-hour is charged at the spot
//     price in force at the start of that hour, not the bid and not any
//     intra-hour price the market later quotes.
//   - Partial-hour usage: an hour cut short because EC2 terminated the
//     instance (spot price exceeded the bid) is free; an hour cut short
//     by the user is charged in full.
//   - On-demand instances are charged $2.40/hour (CC2) per started hour.
//
// It also models the spot-instance queuing delay the authors measured
// (mean 299.6 s, best 143 s, worst 880 s).
package market

import (
	"fmt"

	"repro/internal/trace"
)

// OnDemandRate is the fixed on-demand price of a CC2 instance in
// dollars per hour.
const OnDemandRate = 2.40

// TerminationCause says who ended an instance.
type TerminationCause int

// Termination causes.
const (
	// ByProvider: EC2 killed the instance because the spot price moved
	// above the bid. The in-progress hour is free.
	ByProvider TerminationCause = iota
	// ByUser: the user released the instance (job finished, manual
	// stop, policy switch). The in-progress hour is charged in full.
	ByUser
)

// String implements fmt.Stringer.
func (c TerminationCause) String() string {
	switch c {
	case ByProvider:
		return "provider"
	case ByUser:
		return "user"
	default:
		return "unknown"
	}
}

// Entry is one charged instance-hour in a Ledger.
type Entry struct {
	// Zone is the availability zone, or "on-demand".
	Zone string
	// HourStart is when the charged hour began.
	HourStart int64
	// Rate is the dollars charged for this hour.
	Rate float64
	// OnDemand marks on-demand hours.
	OnDemand bool
	// Partial marks an hour the instance did not run to completion but
	// was still charged (user-side termination).
	Partial bool
}

// Ledger accumulates every charge of an experiment run.
type Ledger struct {
	Entries []Entry
	total   float64
}

// Add appends a charge.
func (l *Ledger) Add(e Entry) {
	l.Entries = append(l.Entries, e)
	l.total += e.Rate
}

// Total returns the accumulated cost in dollars.
func (l *Ledger) Total() float64 { return l.total }

// Clone returns a deep copy whose entry slice shares nothing with the
// receiver; callers holding a pooled machine's result use it to keep
// the ledger past the machine's release.
func (l *Ledger) Clone() Ledger {
	return Ledger{Entries: append([]Entry(nil), l.Entries...), total: l.total}
}

// Reset empties the ledger in place, keeping the entry slice's backing
// array for reuse. Any previously shared copy of the Ledger struct
// aliases that array, so reset only ledgers whose results have been
// consumed (the sim machine pool's contract).
func (l *Ledger) Reset() {
	l.Entries = l.Entries[:0]
	l.total = 0
}

// SpotTotal returns the cost of spot hours only.
func (l *Ledger) SpotTotal() float64 {
	var t float64
	for _, e := range l.Entries {
		if !e.OnDemand {
			t += e.Rate
		}
	}
	return t
}

// OnDemandTotal returns the cost of on-demand hours only.
func (l *Ledger) OnDemandTotal() float64 { return l.total - l.SpotTotal() }

// Meter tracks billing for one running instance. Open it when the
// instance starts, Advance it as simulated time passes (committing each
// completed hour at its hour-start rate), and Close it when the
// instance stops.
type Meter struct {
	zone      string
	onDemand  bool
	hourStart int64
	hourRate  float64
	closed    bool
}

// OpenSpotMeter starts billing a spot instance at time t whose first
// hour is charged at the spot price rate in force at t.
func OpenSpotMeter(zone string, t int64, rate float64) *Meter {
	return &Meter{zone: zone, hourStart: t, hourRate: rate}
}

// OpenOnDemandMeter starts billing an on-demand instance at time t.
func OpenOnDemandMeter(t int64) *Meter {
	return &Meter{zone: "on-demand", onDemand: true, hourStart: t, hourRate: OnDemandRate}
}

// Zone returns the meter's zone label.
func (m *Meter) Zone() string { return m.zone }

// OnDemand reports whether this meter bills on-demand hours.
func (m *Meter) OnDemand() bool { return m.onDemand }

// HourStart returns the start of the currently accruing billing hour.
func (m *Meter) HourStart() int64 { return m.hourStart }

// HourRate returns the rate of the currently accruing billing hour.
func (m *Meter) HourRate() float64 { return m.hourRate }

// Advance commits every billing hour completed by time now to the
// ledger. rateAt supplies the spot price at an hour boundary and is
// ignored for on-demand meters. It panics if the meter is closed or
// time runs backwards, both of which indicate simulator bugs.
func (m *Meter) Advance(now int64, rateAt func(int64) float64, ledger *Ledger) {
	if m.closed {
		panic("market: Advance on a closed meter")
	}
	if now < m.hourStart {
		panic(fmt.Sprintf("market: time moved backwards: now %d < hour start %d", now, m.hourStart))
	}
	for now >= m.hourStart+trace.Hour {
		ledger.Add(Entry{
			Zone:      m.zone,
			HourStart: m.hourStart,
			Rate:      m.hourRate,
			OnDemand:  m.onDemand,
		})
		m.hourStart += trace.Hour
		if m.onDemand {
			m.hourRate = OnDemandRate
		} else {
			m.hourRate = rateAt(m.hourStart)
		}
	}
}

// Close stops billing at time now. A provider-side termination leaves
// the in-progress hour unbilled; a user-side termination charges it in
// full, marked Partial when the hour had time remaining. On-demand
// instances are always user-terminated and always pay the started hour.
func (m *Meter) Close(now int64, cause TerminationCause, rateAt func(int64) float64, ledger *Ledger) {
	if m.closed {
		panic("market: Close on a closed meter")
	}
	m.Advance(now, rateAt, ledger)
	m.closed = true
	if now == m.hourStart {
		return // the next hour never started
	}
	if !m.onDemand && cause == ByProvider {
		return // free partial hour
	}
	ledger.Add(Entry{
		Zone:      m.zone,
		HourStart: m.hourStart,
		Rate:      m.hourRate,
		OnDemand:  m.onDemand,
		Partial:   now < m.hourStart+trace.Hour,
	})
}

// Closed reports whether the meter has been closed.
func (m *Meter) Closed() bool { return m.closed }
