package market

import (
	"math"
	"math/rand/v2"
)

// DelayModel samples the spot-instance queuing delay: the time between
// submitting a spot request (with the bid at or above the spot price)
// and the instance being usable.
type DelayModel interface {
	// Sample draws one delay in seconds.
	Sample(rng *rand.Rand) int64
}

// FixedDelay always returns the same delay; FixedDelay(0) disables
// queuing delay for ablation runs.
type FixedDelay int64

// Sample implements DelayModel.
func (d FixedDelay) Sample(*rand.Rand) int64 { return int64(d) }

// MeasuredDelay is a truncated log-normal delay calibrated to the
// paper's two-month measurement of CC2 spot requests: average 299.6 s,
// best case 143 s, worst case 880 s (§5).
type MeasuredDelay struct {
	// Mu and Sigma parameterise the underlying log-normal.
	Mu, Sigma float64
	// Min and Max truncate the samples.
	Min, Max int64
}

// DefaultDelay returns the delay model calibrated to the paper's
// measurements.
func DefaultDelay() MeasuredDelay {
	// exp(Mu) ≈ 270 s median; sigma 0.5 puts the truncated mean near
	// the measured 299.6 s.
	return MeasuredDelay{Mu: math.Log(270), Sigma: 0.5, Min: 143, Max: 880}
}

// Sample implements DelayModel.
func (d MeasuredDelay) Sample(rng *rand.Rand) int64 {
	v := math.Exp(d.Mu + d.Sigma*rng.NormFloat64())
	s := int64(math.Round(v))
	if s < d.Min {
		s = d.Min
	}
	if s > d.Max {
		s = d.Max
	}
	return s
}
