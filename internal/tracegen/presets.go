package tracegen

import (
	"fmt"

	"repro/internal/trace"
)

// Default zone names mirror the three US-East CC2 zones the paper uses.
var DefaultZoneNames = []string{"us-east-1a", "us-east-1b", "us-east-1c"}

// SamplesPerDay is the number of 5-minute samples in a day.
const SamplesPerDay = 24 * 12

// SamplesPerMonth is the number of 5-minute samples in a 30-day month,
// the granularity at which the year trace is composed.
const SamplesPerMonth = 30 * SamplesPerDay

// LowVolatilityConfig models the paper's March 2013 window: per-zone
// mean ≈ $0.30 with variance below 0.01. Prices mostly hold, moves are
// small, and spikes are rare and modest.
func LowVolatilityConfig(seed uint64, samples int) Config {
	zones := make([]ZoneConfig, len(DefaultZoneNames))
	bases := []float64{0.30, 0.29, 0.31}
	for i, name := range DefaultZoneNames {
		zones[i] = ZoneConfig{
			Name:        name,
			Base:        bases[i],
			Floor:       0.27,
			MoveProb:    0.05,
			MoveSigma:   0.015,
			Revert:      0.3,
			SpikeProb:   0.0004,
			SpikeMin:    0.45,
			SpikeMax:    0.85,
			SpikeMinLen: 1,
			SpikeMaxLen: 3,
		}
	}
	return Config{
		Zones:             zones,
		Samples:           samples,
		SharedShockWeight: 0.08,
		Seed:              seed,
	}
}

// HighVolatilityConfig models the paper's January 2013 window: per-zone
// means between $0.70 and $1.12, variances well above the low-volatility
// cutoff, and recurring spikes mostly up to ≈ $3.00, occasionally
// overshooting the $3.07 top of the bid grid and lasting up to a couple
// of hours (the paper's high-volatility windows force even high bids
// onto the on-demand market at times).
func HighVolatilityConfig(seed uint64, samples int) Config {
	// The regime is "cheap floor plus tall, frequent spikes": the price
	// sits near a modest base most of the time and repeatedly jumps to
	// spike plateaus of up to $3.40 that last from minutes to a couple
	// of hours. This matches the paper's window statistics (means
	// 0.70–1.12 with variance up to ≈ 2) far better than diffusion
	// around a high mean would, and it produces the availability
	// structure the paper exploits: any single zone is down during its
	// spikes, while the union of three weakly-coupled zones is almost
	// always up at a moderate bid.
	zones := []ZoneConfig{
		{
			Name: DefaultZoneNames[0], Base: 0.35, Floor: 0.27,
			MoveProb: 0.20, MoveSigma: 0.08, Revert: 0.2, Ceil: 3.00,
			SpikeProb: 0.020, SpikeMin: 1.00, SpikeMax: 3.00,
			SpikeMinLen: 1, SpikeMaxLen: 18,
		},
		{
			Name: DefaultZoneNames[1], Base: 0.40, Floor: 0.27,
			MoveProb: 0.20, MoveSigma: 0.10, Revert: 0.2, Ceil: 3.00,
			SpikeProb: 0.022, SpikeMin: 1.20, SpikeMax: 3.20,
			SpikeMinLen: 1, SpikeMaxLen: 20,
		},
		{
			Name: DefaultZoneNames[2], Base: 0.45, Floor: 0.27,
			MoveProb: 0.20, MoveSigma: 0.12, Revert: 0.2, Ceil: 3.00,
			SpikeProb: 0.025, SpikeMin: 1.50, SpikeMax: 3.40,
			SpikeMinLen: 1, SpikeMaxLen: 24,
		},
	}
	return Config{
		Zones:             zones,
		Samples:           samples,
		SharedShockWeight: 0.08,
		Seed:              seed,
	}
}

// ModerateVolatilityConfig fills the months of the year trace between
// the two regimes the paper highlights.
func ModerateVolatilityConfig(seed uint64, samples int) Config {
	zones := make([]ZoneConfig, len(DefaultZoneNames))
	bases := []float64{0.45, 0.52, 0.48}
	for i, name := range DefaultZoneNames {
		zones[i] = ZoneConfig{
			Name:        name,
			Base:        bases[i],
			Floor:       0.27,
			MoveProb:    0.15,
			MoveSigma:   0.10,
			Revert:      0.2,
			SpikeProb:   0.001,
			SpikeMin:    1.20,
			SpikeMax:    2.60,
			SpikeMinLen: 1,
			SpikeMaxLen: 4,
		}
	}
	return Config{
		Zones:             zones,
		Samples:           samples,
		SharedShockWeight: 0.08,
		Seed:              seed,
	}
}

// LowVolatility generates one month of low-volatility trace.
func LowVolatility(seed uint64) *trace.Set {
	return MustGenerate(LowVolatilityConfig(seed, SamplesPerMonth))
}

// HighVolatility generates one month of high-volatility trace.
func HighVolatility(seed uint64) *trace.Set {
	return MustGenerate(HighVolatilityConfig(seed, SamplesPerMonth))
}

// MaxObservedSpike is the worst spot price the paper reports in its
// 12-month history ($20.02, March 13–14 2013).
const MaxObservedSpike = 20.02

// InjectSpike overwrites zone zoneIdx of the set with a price plateau of
// the given level over [start, start+duration) seconds. It reproduces
// the extreme events the generator's regular spike regime keeps rare,
// e.g. the $20.02 spike behind the paper's Large-bid worst case.
func InjectSpike(set *trace.Set, zoneIdx int, start, duration int64, level float64) error {
	if zoneIdx < 0 || zoneIdx >= set.NumZones() {
		return fmt.Errorf("tracegen: zone index %d out of range", zoneIdx)
	}
	s := set.Series[zoneIdx]
	if start < s.Start() || start+duration > s.End() {
		return fmt.Errorf("tracegen: spike [%d,%d) outside trace [%d,%d)", start, start+duration, s.Start(), s.End())
	}
	for t := start; t < start+duration; t += s.Step {
		s.Prices[s.Index(t)] = level
	}
	return nil
}

// LowVolatilityWithMegaSpike generates a month of low-volatility trace
// with the $20.02 spike the paper observed during its March 2013 window,
// placed roughly 40 % into the month for six hours in the first zone.
func LowVolatilityWithMegaSpike(seed uint64) *trace.Set {
	set := LowVolatility(seed)
	start := set.Start() + set.Duration()*2/5
	start = start / set.Step() * set.Step()
	if err := InjectSpike(set, 0, start, 6*trace.Hour, MaxObservedSpike); err != nil {
		panic(err)
	}
	return set
}

// Concat joins sets with identical zones into one contiguous trace; the
// epoch of each subsequent set is rewritten to follow its predecessor.
func Concat(sets ...*trace.Set) (*trace.Set, error) {
	if len(sets) == 0 {
		return nil, fmt.Errorf("tracegen: nothing to concatenate")
	}
	first := sets[0]
	out := make([]*trace.Series, first.NumZones())
	for i, s := range first.Series {
		out[i] = &trace.Series{Zone: s.Zone, Epoch: s.Epoch, Step: s.Step, Prices: append([]float64(nil), s.Prices...)}
	}
	for _, set := range sets[1:] {
		if set.NumZones() != first.NumZones() {
			return nil, fmt.Errorf("tracegen: zone count mismatch in concat")
		}
		for i, s := range set.Series {
			if s.Zone != out[i].Zone || s.Step != out[i].Step {
				return nil, fmt.Errorf("tracegen: zone %q incompatible with %q", s.Zone, out[i].Zone)
			}
			out[i].Prices = append(out[i].Prices, s.Prices...)
		}
	}
	return trace.NewSet(out...)
}

// Year generates a 12-month composite trace in the spirit of the paper's
// December 2012 – January 2014 history: months alternate between calm,
// moderate and volatile regimes, one calm month carries the $20.02 mega
// spike, and each month draws from an independent seeded stream.
func Year(seed uint64) *trace.Set {
	type monthKind int
	const (
		calm monthKind = iota
		calmSpike
		moderate
		wild
	)
	pattern := []monthKind{wild, calm, calmSpike, calm, moderate, calm, wild, calm, moderate, calm, wild, calm}
	months := make([]*trace.Set, len(pattern))
	for i, kind := range pattern {
		mseed := seed + uint64(i)*0x1000193
		switch kind {
		case calm:
			months[i] = LowVolatility(mseed)
		case calmSpike:
			months[i] = LowVolatilityWithMegaSpike(mseed)
		case moderate:
			months[i] = MustGenerate(ModerateVolatilityConfig(mseed, SamplesPerMonth))
		case wild:
			months[i] = HighVolatility(mseed)
		}
	}
	set, err := Concat(months...)
	if err != nil {
		panic(err)
	}
	return set
}
