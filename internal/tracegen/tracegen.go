// Package tracegen synthesises EC2 CC2 spot price traces.
//
// The paper evaluates its policies against 12 months of real CC2 spot
// price history (December 2012 – January 2014, three US-East zones,
// sampled every 5 minutes). That data set is not redistributable, so this
// package generates seeded synthetic traces calibrated to every statistic
// the paper publishes about its data:
//
//   - a low-volatility window ("March 2013"): per-zone mean ≈ $0.30 and
//     variance < 0.01;
//   - a high-volatility window ("January 2013"): per-zone means between
//     $0.70 and $1.12 and variance up to 2.02;
//   - occasional spikes up to ≈ $3.00, motivating bids above $2.40;
//   - one extreme $20.02-class spike somewhere in the year (the paper's
//     Large-bid worst case);
//   - strong dependence of each zone on its own price history with
//     cross-zone effects 1–2 orders of magnitude weaker (§3.1), which the
//     repository's own VAR analysis verifies.
//
// The generator models each zone as a regime-switching step process:
// prices hold for geometrically distributed stretches, then take a
// mean-reverting move; an independent spike regime lifts the price to a
// plateau for a few samples. A small shared shock couples zones weakly.
package tracegen

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/trace"
)

// ZoneConfig describes the price process of one availability zone.
type ZoneConfig struct {
	// Name is the zone label, e.g. "us-east-1a".
	Name string
	// Base is the mean-reversion level in dollars per hour.
	Base float64
	// Floor is the minimum price the zone ever quotes.
	Floor float64
	// Ceil caps regular (non-spike) price moves; 0 means uncapped. The
	// paper's 12-month history tops out near $3.00 outside one extreme
	// event, so presets cap ordinary movement there and extreme spikes
	// are injected explicitly.
	Ceil float64
	// MoveProb is the per-step probability that the price moves at all;
	// spot prices are step functions that hold between movements.
	MoveProb float64
	// MoveSigma is the standard deviation of a price move.
	MoveSigma float64
	// Revert in (0, 1] pulls the price toward Base on each move.
	Revert float64
	// SpikeProb is the per-step probability of entering a spike.
	SpikeProb float64
	// SpikeMin and SpikeMax bound the spike plateau price.
	SpikeMin, SpikeMax float64
	// SpikeMinLen and SpikeMaxLen bound spike duration in samples.
	SpikeMinLen, SpikeMaxLen int
	// DiurnalAmplitude in [0, 1) modulates the mean-reversion level
	// over a 24-hour cycle (peak demand in the afternoon, trough at
	// night), the daily pattern real spot markets exhibit. Zero
	// disables the cycle.
	DiurnalAmplitude float64
}

// Config describes a whole multi-zone trace.
type Config struct {
	Zones []ZoneConfig
	// Epoch is the absolute start time in seconds.
	Epoch int64
	// Step is the sampling interval; trace.DefaultStep if zero.
	Step int64
	// Samples is the number of 5-minute samples per zone.
	Samples int
	// SharedShockWeight in [0, 1) blends a market-wide shock into each
	// zone's moves; keep it small so cross-zone dependence stays 1-2
	// orders of magnitude below self-dependence.
	SharedShockWeight float64
	// Seed selects the deterministic random stream.
	Seed uint64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if len(c.Zones) == 0 {
		return fmt.Errorf("tracegen: no zones configured")
	}
	if c.Samples <= 0 {
		return fmt.Errorf("tracegen: non-positive sample count %d", c.Samples)
	}
	if c.SharedShockWeight < 0 || c.SharedShockWeight >= 1 {
		return fmt.Errorf("tracegen: shared shock weight %g outside [0,1)", c.SharedShockWeight)
	}
	for _, z := range c.Zones {
		if z.Base < z.Floor {
			return fmt.Errorf("tracegen: zone %q base %g below floor %g", z.Name, z.Base, z.Floor)
		}
		if z.MoveProb < 0 || z.MoveProb > 1 || z.SpikeProb < 0 || z.SpikeProb > 1 {
			return fmt.Errorf("tracegen: zone %q has probabilities outside [0,1]", z.Name)
		}
		if z.DiurnalAmplitude < 0 || z.DiurnalAmplitude >= 1 {
			return fmt.Errorf("tracegen: zone %q diurnal amplitude %g outside [0,1)", z.Name, z.DiurnalAmplitude)
		}
		if z.SpikeMinLen > z.SpikeMaxLen {
			return fmt.Errorf("tracegen: zone %q spike length bounds inverted", z.Name)
		}
	}
	return nil
}

// Generate produces a trace set from the configuration. The same
// configuration always produces the same trace.
func Generate(cfg Config) (*trace.Set, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	step := cfg.Step
	if step == 0 {
		step = trace.DefaultStep
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x9e3779b97f4a7c15))

	series := make([]*trace.Series, len(cfg.Zones))
	states := make([]zoneState, len(cfg.Zones))
	for i, z := range cfg.Zones {
		series[i] = &trace.Series{
			Zone:   z.Name,
			Epoch:  cfg.Epoch,
			Step:   step,
			Prices: make([]float64, cfg.Samples),
		}
		states[i] = zoneState{price: z.Base}
	}

	for t := 0; t < cfg.Samples; t++ {
		// One market-wide shock per step couples the zones weakly.
		shared := rng.NormFloat64()
		at := cfg.Epoch + int64(t)*step
		for zi := range cfg.Zones {
			z := &cfg.Zones[zi]
			st := &states[zi]
			st.advance(z, rng, shared, cfg.SharedShockWeight, at)
			series[zi].Prices[t] = st.price
		}
	}
	return trace.NewSet(series...)
}

// MustGenerate is Generate that panics on configuration errors; for
// presets that are correct by construction.
func MustGenerate(cfg Config) *trace.Set {
	set, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return set
}

type zoneState struct {
	price     float64
	spikeLeft int     // samples remaining in the current spike
	prevPrice float64 // price to restore after the spike
}

func (st *zoneState) advance(z *ZoneConfig, rng *rand.Rand, shared, sharedWeight float64, at int64) {
	if st.spikeLeft > 0 {
		st.spikeLeft--
		if st.spikeLeft == 0 {
			st.price = st.prevPrice
		}
		return
	}
	if z.SpikeProb > 0 && rng.Float64() < z.SpikeProb {
		st.prevPrice = st.price
		st.spikeLeft = z.SpikeMinLen
		if span := z.SpikeMaxLen - z.SpikeMinLen; span > 0 {
			st.spikeLeft += rng.IntN(span + 1)
		}
		st.price = roundCents(z.SpikeMin + rng.Float64()*(z.SpikeMax-z.SpikeMin))
		return
	}
	if rng.Float64() >= z.MoveProb {
		return // price holds this step
	}
	base := z.Base
	if z.DiurnalAmplitude > 0 {
		// Peak near 15:00, trough near 03:00 local time.
		const day = 24 * 3600
		phase := 2 * math.Pi * (float64(at%day)/day - 0.625)
		base *= 1 + z.DiurnalAmplitude*math.Cos(phase)
	}
	shock := (1-sharedWeight)*rng.NormFloat64() + sharedWeight*shared
	next := st.price + z.Revert*(base-st.price) + z.MoveSigma*shock
	if next < z.Floor {
		next = z.Floor
	}
	if z.Ceil > 0 && next > z.Ceil {
		next = z.Ceil
	}
	st.price = roundCents(next)
}

// roundCents rounds to whole cents, matching EC2's price quantisation.
func roundCents(p float64) float64 { return math.Round(p*100) / 100 }
