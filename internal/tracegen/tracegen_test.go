package tracegen

import (
	"math"
	"testing"

	"repro/internal/trace"
)

func TestGenerateDeterministic(t *testing.T) {
	a := LowVolatility(7)
	b := LowVolatility(7)
	for zi := range a.Series {
		for i := range a.Series[zi].Prices {
			if a.Series[zi].Prices[i] != b.Series[zi].Prices[i] {
				t.Fatalf("same seed diverged at zone %d sample %d", zi, i)
			}
		}
	}
	c := LowVolatility(8)
	same := true
	for i := range a.Series[0].Prices {
		if a.Series[0].Prices[i] != c.Series[0].Prices[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestLowVolatilityCalibration(t *testing.T) {
	set := LowVolatility(1)
	if set.NumZones() != 3 {
		t.Fatalf("zones = %d", set.NumZones())
	}
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, s := range set.Series {
		sum := s.Summarize()
		if sum.Mean < 0.27 || sum.Mean > 0.40 {
			t.Errorf("zone %s mean = %g, want ≈ 0.30", s.Zone, sum.Mean)
		}
		if sum.Variance >= trace.LowVarianceCutoff {
			t.Errorf("zone %s variance = %g, want < %g", s.Zone, sum.Variance, trace.LowVarianceCutoff)
		}
		if sum.Min < 0.27 {
			t.Errorf("zone %s price fell below the floor: %g", s.Zone, sum.Min)
		}
	}
	if got := set.ClassifyVolatility(); got != trace.LowVolatility {
		t.Fatalf("classification = %v, want low", got)
	}
}

func TestHighVolatilityCalibration(t *testing.T) {
	set := HighVolatility(1)
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	anyHighVar := false
	for _, s := range set.Series {
		sum := s.Summarize()
		if sum.Mean < 0.4 || sum.Mean > 1.6 {
			t.Errorf("zone %s mean = %g, want within the paper's 0.70–1.12 band (loose)", s.Zone, sum.Mean)
		}
		if sum.Variance > trace.HighVarianceCutoff {
			anyHighVar = true
		}
		if sum.Max > 3.5 {
			t.Errorf("zone %s max = %g, spikes should stay ≤ 3.40", s.Zone, sum.Max)
		}
	}
	if !anyHighVar {
		t.Error("no zone exceeded the high-variance cutoff")
	}
	if got := set.ClassifyVolatility(); got != trace.HighVolatility {
		t.Fatalf("classification = %v, want high", got)
	}
	// High volatility windows must contain spikes above on-demand,
	// motivating the paper's bid grid extending to $3.07.
	spikes := 0
	for _, s := range set.Series {
		spikes += s.Summarize().Spikes
	}
	if spikes == 0 {
		t.Error("high-volatility trace contains no spikes above $2.40")
	}
}

func TestInjectSpike(t *testing.T) {
	set := LowVolatility(3)
	start := set.Start() + 100*set.Step()
	if err := InjectSpike(set, 1, start, 2*trace.Hour, MaxObservedSpike); err != nil {
		t.Fatal(err)
	}
	if got := set.Series[1].PriceAt(start + trace.Hour); got != MaxObservedSpike {
		t.Fatalf("price during spike = %g", got)
	}
	if got := set.Series[0].PriceAt(start + trace.Hour); got == MaxObservedSpike {
		t.Fatal("spike leaked into another zone")
	}
	if err := InjectSpike(set, 9, start, 300, 5); err == nil {
		t.Fatal("InjectSpike accepted a bad zone index")
	}
	if err := InjectSpike(set, 0, set.End(), 300, 5); err == nil {
		t.Fatal("InjectSpike accepted an out-of-range window")
	}
}

func TestLowVolatilityWithMegaSpike(t *testing.T) {
	set := LowVolatilityWithMegaSpike(4)
	if got := set.MaxPrice(); got != MaxObservedSpike {
		t.Fatalf("max price = %g, want %g", got, MaxObservedSpike)
	}
}

func TestConcat(t *testing.T) {
	a := LowVolatility(1)
	b := HighVolatility(2)
	joined, err := Concat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if joined.Duration() != a.Duration()+b.Duration() {
		t.Fatalf("joined duration = %d", joined.Duration())
	}
	if err := joined.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Concat(); err == nil {
		t.Fatal("Concat accepted an empty argument list")
	}
}

func TestYear(t *testing.T) {
	set := Year(11)
	if got := set.Duration(); got != int64(12*SamplesPerMonth)*trace.DefaultStep {
		t.Fatalf("year duration = %d", got)
	}
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := set.MaxPrice(); got != MaxObservedSpike {
		t.Fatalf("year max price = %g, want the injected %g", got, MaxObservedSpike)
	}
	if got := set.MinPrice(); got < 0.27 {
		t.Fatalf("year min price = %g, below the CC2 floor", got)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{},
		{Zones: []ZoneConfig{{Name: "z", Base: 0.3, Floor: 0.27}}, Samples: 0},
		{Zones: []ZoneConfig{{Name: "z", Base: 0.1, Floor: 0.27}}, Samples: 10},
		{Zones: []ZoneConfig{{Name: "z", Base: 0.3, Floor: 0.27, MoveProb: 1.5}}, Samples: 10},
		{Zones: []ZoneConfig{{Name: "z", Base: 0.3, Floor: 0.27, SpikeMinLen: 5, SpikeMaxLen: 2}}, Samples: 10},
		{Zones: []ZoneConfig{{Name: "z", Base: 0.3, Floor: 0.27}}, Samples: 10, SharedShockWeight: 1.0},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: Generate accepted an invalid config", i)
		}
	}
}

func TestDiurnalCycle(t *testing.T) {
	cfg := Config{
		Zones: []ZoneConfig{{
			Name: "z", Base: 0.50, Floor: 0.27,
			MoveProb: 0.8, MoveSigma: 0.02, Revert: 0.5,
			DiurnalAmplitude: 0.4,
		}},
		Samples: 10 * SamplesPerDay,
		Seed:    5,
	}
	set := MustGenerate(cfg)
	s := set.Series[0]
	// Mean price in the afternoon window (13:00-17:00) must exceed the
	// night window (01:00-05:00).
	window := func(fromHour, toHour int64) float64 {
		var sum float64
		var n int
		for i, p := range s.Prices {
			hod := (s.Epoch + int64(i)*s.Step) % (24 * 3600) / 3600
			if hod >= fromHour && hod < toHour {
				sum += p
				n++
			}
		}
		return sum / float64(n)
	}
	day := window(13, 17)
	night := window(1, 5)
	if day <= night*1.2 {
		t.Fatalf("no diurnal pattern: day %.3f vs night %.3f", day, night)
	}
	// Amplitude outside [0,1) is rejected.
	bad := cfg
	bad.Zones = append([]ZoneConfig(nil), cfg.Zones...)
	bad.Zones[0].DiurnalAmplitude = 1.0
	if _, err := Generate(bad); err == nil {
		t.Fatal("accepted amplitude 1.0")
	}
}

func TestPricesAreCentQuantised(t *testing.T) {
	set := HighVolatility(5)
	for _, s := range set.Series {
		for i, p := range s.Prices {
			cents := p * 100
			if math.Abs(cents-math.Round(cents)) > 1e-9 {
				t.Fatalf("zone %s sample %d price %g is not cent-quantised", s.Zone, i, p)
			}
		}
	}
}
