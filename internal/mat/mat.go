// Package mat provides the small dense linear algebra kernel used by the
// vector auto-regression analysis: matrix arithmetic, Gaussian
// elimination with partial pivoting, and ordinary least squares.
//
// It is deliberately minimal — row-major float64 matrices with the
// operations the repository needs — rather than a general BLAS.
package mat

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// New returns a zero matrix of the given shape.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices; all rows must share a length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("mat: ragged row %d: %d vs %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:], r)
	}
	return m
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose.
func (m *Matrix) T() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Mul returns m × other.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.Cols != other.Rows {
		panic(fmt.Sprintf("mat: mul shape mismatch %dx%d × %dx%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	out := New(m.Rows, other.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			rowOut := out.Data[i*out.Cols : (i+1)*out.Cols]
			rowOther := other.Data[k*other.Cols : (k+1)*other.Cols]
			for j := range rowOther {
				rowOut[j] += a * rowOther[j]
			}
		}
	}
	return out
}

// Add returns m + other.
func (m *Matrix) Add(other *Matrix) *Matrix {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic("mat: add shape mismatch")
	}
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] += other.Data[i]
	}
	return out
}

// Sub returns m - other.
func (m *Matrix) Sub(other *Matrix) *Matrix {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic("mat: sub shape mismatch")
	}
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] -= other.Data[i]
	}
	return out
}

// Scale returns s·m.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// ErrSingular reports a (numerically) singular system.
var ErrSingular = errors.New("mat: singular matrix")

// Solve solves A·X = B for X using Gaussian elimination with partial
// pivoting. A must be square; B may have any number of columns. A and B
// are not modified.
func Solve(a, b *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("mat: Solve needs a square A, got %dx%d", a.Rows, a.Cols)
	}
	if a.Rows != b.Rows {
		return nil, fmt.Errorf("mat: Solve shape mismatch: A %dx%d, B %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	n := a.Rows
	aug := a.Clone()
	x := b.Clone()
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(aug.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(aug.At(r, col)); v > best {
				best = v
				pivot = r
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(aug, pivot, col)
			swapRows(x, pivot, col)
		}
		// Eliminate below.
		pv := aug.At(col, col)
		for r := col + 1; r < n; r++ {
			f := aug.At(r, col) / pv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				aug.Set(r, c, aug.At(r, c)-f*aug.At(col, c))
			}
			for c := 0; c < x.Cols; c++ {
				x.Set(r, c, x.At(r, c)-f*x.At(col, c))
			}
		}
	}
	// Back substitution.
	for col := n - 1; col >= 0; col-- {
		pv := aug.At(col, col)
		for c := 0; c < x.Cols; c++ {
			sum := x.At(col, c)
			for k := col + 1; k < n; k++ {
				sum -= aug.At(col, k) * x.At(k, c)
			}
			x.Set(col, c, sum/pv)
		}
	}
	return x, nil
}

func swapRows(m *Matrix, i, j int) {
	ri := m.Data[i*m.Cols : (i+1)*m.Cols]
	rj := m.Data[j*m.Cols : (j+1)*m.Cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Inverse returns A⁻¹.
func Inverse(a *Matrix) (*Matrix, error) {
	return Solve(a, Identity(a.Rows))
}

// LeastSquares solves min ‖X·β − Y‖² via the normal equations
// (XᵀX)β = XᵀY with a small ridge fallback when XᵀX is singular.
// X is n×p, Y is n×q; the result β is p×q.
func LeastSquares(x, y *Matrix) (*Matrix, error) {
	if x.Rows != y.Rows {
		return nil, fmt.Errorf("mat: LeastSquares shape mismatch: X %dx%d, Y %dx%d", x.Rows, x.Cols, y.Rows, y.Cols)
	}
	xt := x.T()
	xtx := xt.Mul(x)
	xty := xt.Mul(y)
	beta, err := Solve(xtx, xty)
	if err == nil {
		return beta, nil
	}
	if !errors.Is(err, ErrSingular) {
		return nil, err
	}
	// Ridge fallback: regularise collinear designs, which arise when a
	// price series holds a constant value across an entire window.
	const lambda = 1e-8
	for i := 0; i < xtx.Rows; i++ {
		xtx.Set(i, i, xtx.At(i, i)+lambda)
	}
	return Solve(xtx, xty)
}

// MaxAbs returns the largest absolute element; 0 for an empty matrix.
func (m *Matrix) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}
