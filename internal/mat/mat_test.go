package mat

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestFromRowsAndAccessors(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.Rows != 2 || m.Cols != 2 {
		t.Fatalf("shape = %dx%d", m.Rows, m.Cols)
	}
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %g", m.At(1, 0))
	}
	m.Set(1, 0, 9)
	if m.At(1, 0) != 9 {
		t.Fatal("Set failed")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromRows accepted ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.T()
	if mt.Rows != 3 || mt.Cols != 2 || mt.At(2, 1) != 6 || mt.At(0, 1) != 4 {
		t.Fatalf("T = %+v", mt)
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	for i := range want.Data {
		if c.Data[i] != want.Data[i] {
			t.Fatalf("Mul = %v, want %v", c.Data, want.Data)
		}
	}
}

func TestMulIdentityProperty(t *testing.T) {
	f := func(vals [6]float64) bool {
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				vals[i] = 1
			}
		}
		m := FromRows([][]float64{vals[0:3], vals[3:6]})
		p := m.Mul(Identity(3))
		for i := range m.Data {
			if p.Data[i] != m.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{3, 5}})
	if got := a.Add(b); got.At(0, 1) != 7 {
		t.Fatalf("Add = %v", got.Data)
	}
	if got := b.Sub(a); got.At(0, 0) != 2 {
		t.Fatalf("Sub = %v", got.Data)
	}
	if got := a.Scale(3); got.At(0, 1) != 6 {
		t.Fatalf("Scale = %v", got.Data)
	}
}

func TestSolve(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	b := FromRows([][]float64{{5}, {10}})
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// 2x + y = 5, x + 3y = 10 → x = 1, y = 3.
	if !approx(x.At(0, 0), 1, 1e-9) || !approx(x.At(1, 0), 3, 1e-9) {
		t.Fatalf("Solve = %v", x.Data)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Leading zero on the diagonal requires a row swap.
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	b := FromRows([][]float64{{2}, {3}})
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(x.At(0, 0), 3, 1e-9) || !approx(x.At(1, 0), 2, 1e-9) {
		t.Fatalf("Solve = %v", x.Data)
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	b := FromRows([][]float64{{1}, {2}})
	if _, err := Solve(a, b); !errors.Is(err, ErrSingular) {
		t.Fatalf("Solve singular err = %v", err)
	}
}

func TestSolveShapeErrors(t *testing.T) {
	if _, err := Solve(New(2, 3), New(2, 1)); err == nil {
		t.Fatal("Solve accepted non-square A")
	}
	if _, err := Solve(New(2, 2), New(3, 1)); err == nil {
		t.Fatal("Solve accepted mismatched B")
	}
}

func TestInverse(t *testing.T) {
	a := FromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	prod := a.Mul(inv)
	id := Identity(2)
	for i := range id.Data {
		if !approx(prod.Data[i], id.Data[i], 1e-9) {
			t.Fatalf("A·A⁻¹ = %v", prod.Data)
		}
	}
}

func TestLeastSquaresRecoversCoefficients(t *testing.T) {
	// y = 2*x1 - 3*x2 + noiseless.
	rng := rand.New(rand.NewPCG(1, 2))
	n := 50
	x := New(n, 2)
	y := New(n, 1)
	for i := 0; i < n; i++ {
		x1, x2 := rng.Float64(), rng.Float64()
		x.Set(i, 0, x1)
		x.Set(i, 1, x2)
		y.Set(i, 0, 2*x1-3*x2)
	}
	beta, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(beta.At(0, 0), 2, 1e-6) || !approx(beta.At(1, 0), -3, 1e-6) {
		t.Fatalf("beta = %v", beta.Data)
	}
}

func TestLeastSquaresCollinearFallback(t *testing.T) {
	// Two identical regressors: XᵀX is singular; ridge fallback must
	// return a finite solution whose fit is still exact.
	n := 20
	x := New(n, 2)
	y := New(n, 1)
	for i := 0; i < n; i++ {
		v := float64(i)
		x.Set(i, 0, v)
		x.Set(i, 1, v)
		y.Set(i, 0, 4*v)
	}
	beta, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if got := beta.At(0, 0) + beta.At(1, 0); !approx(got, 4, 1e-3) {
		t.Fatalf("collinear beta sum = %g, want 4", got)
	}
}

func TestMaxAbs(t *testing.T) {
	m := FromRows([][]float64{{-5, 2}, {3, -4}})
	if got := m.MaxAbs(); got != 5 {
		t.Fatalf("MaxAbs = %g", got)
	}
	if got := New(0, 0).MaxAbs(); got != 0 {
		t.Fatalf("empty MaxAbs = %g", got)
	}
}

func TestSolveRandomSystemsProperty(t *testing.T) {
	// For random well-conditioned A, Solve(A, A·x) recovers x.
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.IntN(6)
		a := New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Set(i, i, a.At(i, i)+float64(n)) // diagonal dominance
		}
		want := New(n, 1)
		for i := 0; i < n; i++ {
			want.Set(i, 0, rng.NormFloat64())
		}
		b := a.Mul(want)
		got, err := Solve(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := 0; i < n; i++ {
			if !approx(got.At(i, 0), want.At(i, 0), 1e-7) {
				t.Fatalf("trial %d: x[%d] = %g, want %g", trial, i, got.At(i, 0), want.At(i, 0))
			}
		}
	}
}
