package mat

import (
	"math"
	"testing"
)

func TestDet(t *testing.T) {
	cases := []struct {
		m    *Matrix
		want float64
	}{
		{Identity(3), 1},
		{FromRows([][]float64{{2, 0}, {0, 3}}), 6},
		{FromRows([][]float64{{1, 2}, {3, 4}}), -2},
		{FromRows([][]float64{{1, 2}, {2, 4}}), 0},
		{FromRows([][]float64{{0, 1}, {1, 0}}), -1}, // needs pivot swap
		{New(0, 0), 1},
	}
	for i, c := range cases {
		got, err := Det(c.m)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("case %d: Det = %g, want %g", i, got, c.want)
		}
	}
}

func TestDetNonSquare(t *testing.T) {
	if _, err := Det(New(2, 3)); err == nil {
		t.Fatal("Det accepted a non-square matrix")
	}
}

func TestDetMultiplicativeProperty(t *testing.T) {
	a := FromRows([][]float64{{3, 1}, {2, 5}})
	b := FromRows([][]float64{{1, 4}, {0, 2}})
	da, _ := Det(a)
	db, _ := Det(b)
	dab, _ := Det(a.Mul(b))
	if math.Abs(dab-da*db) > 1e-9 {
		t.Fatalf("det(AB) = %g, det(A)det(B) = %g", dab, da*db)
	}
}
