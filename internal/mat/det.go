package mat

import (
	"fmt"
	"math"
)

// Det returns the determinant of a square matrix via LU decomposition
// with partial pivoting. A numerically singular matrix yields 0.
func Det(a *Matrix) (float64, error) {
	if a.Rows != a.Cols {
		return 0, fmt.Errorf("mat: Det needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	if n == 0 {
		return 1, nil
	}
	lu := a.Clone()
	det := 1.0
	for col := 0; col < n; col++ {
		pivot := col
		best := math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu.At(r, col)); v > best {
				best = v
				pivot = r
			}
		}
		if best == 0 {
			return 0, nil
		}
		if pivot != col {
			swapRows(lu, pivot, col)
			det = -det
		}
		pv := lu.At(col, col)
		det *= pv
		for r := col + 1; r < n; r++ {
			f := lu.At(r, col) / pv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				lu.Set(r, c, lu.At(r, c)-f*lu.At(col, c))
			}
		}
	}
	return det, nil
}
