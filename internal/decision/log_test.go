package decision

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/leak"
)

// testAlts is the producer-shaped scratch grid testPoint reuses; zones
// and ranked alias it across calls exactly as the Adaptive recorder's
// scratch does.
var testAlts = []core.DecisionAlt{
	{Bid: 0.81, Zones: []int{0, 2}, Policy: "periodic", Cost: 14.25},
	{Bid: 0.47, Zones: []int{1}, Policy: "markov-daly", Cost: 15.5},
	{Bid: 1.67, Zones: []int{0}, Policy: "periodic", Cost: 16.75},
}

// testPoint builds a producer-shaped decision point over the shared (or
// a caller-supplied) scratch grid.
func testPoint(seq int, scratch []core.DecisionAlt) core.DecisionPoint {
	if scratch == nil {
		scratch = testAlts
	}
	return core.DecisionPoint{
		Seq:     seq,
		Time:    432000 + int64(seq)*3600,
		Trigger: core.TriggerHourBoundary,
		Chosen:  scratch[0],
		Ranked:  scratch,
	}
}

// TestLogRingSemantics checks seq auto-assignment, wrap-around
// retention (oldest first) and the lifetime total.
func TestLogRingSemantics(t *testing.T) {
	l := NewLog(4, nil)
	for i := 0; i < 7; i++ {
		l.RecordDecision(testPoint(-1, nil))
	}
	if l.Total() != 7 || l.Capacity() != 4 {
		t.Fatalf("total %d capacity %d, want 7/4", l.Total(), l.Capacity())
	}
	recs := l.Records()
	if len(recs) != 4 {
		t.Fatalf("ring holds %d records, want 4", len(recs))
	}
	for i, r := range recs {
		if r.Seq != 3+i {
			t.Fatalf("record %d has seq %d, want %d (oldest-first after wrap)", i, r.Seq, 3+i)
		}
		if len(r.Ranked) != 3 || len(r.Chosen.Zones) != 2 {
			t.Fatalf("record %d lost shape: %+v", i, r)
		}
	}
}

// TestLogDeepCopiesScratch verifies the ring does not alias the
// producer's reused scratch: mutating the scratch after recording must
// not change retained records.
func TestLogDeepCopiesScratch(t *testing.T) {
	l := NewLog(4, nil)
	scratch := make([]core.DecisionAlt, len(testAlts))
	for i, a := range testAlts {
		scratch[i] = a
		scratch[i].Zones = append([]int(nil), a.Zones...)
	}
	p := testPoint(0, scratch)
	l.RecordDecision(p)
	p.Ranked[0].Bid = 99
	p.Ranked[0].Zones[0] = 9
	rec := l.Records()[0]
	if rec.Chosen.Bid == 99 || rec.Ranked[0].Bid == 99 || rec.Ranked[0].Zones[0] == 9 {
		t.Fatalf("ring aliases producer scratch: %+v", rec)
	}
}

// TestLogWritesJSONLines checks the append-only writer output parses
// back to the recorded decisions.
func TestLogWritesJSONLines(t *testing.T) {
	var sb writerBuffer
	l := NewLog(2, &sb)
	for i := 0; i < 5; i++ {
		l.RecordDecision(testPoint(-1, nil))
	}
	recs, err := ReadRecords(&sb)
	if err != nil {
		t.Fatal(err)
	}
	// The file keeps everything even though the ring only retains 2.
	if len(recs) != 5 {
		t.Fatalf("file holds %d records, want 5", len(recs))
	}
	for i, r := range recs {
		if r.Seq != i {
			t.Fatalf("file record %d has seq %d", i, r.Seq)
		}
	}
	if l.WriteErrors() != 0 {
		t.Fatalf("unexpected write errors: %d", l.WriteErrors())
	}
}

// writerBuffer is a minimal in-memory io.Writer + io.Reader.
type writerBuffer struct {
	b []byte
	r int
}

func (w *writerBuffer) Write(p []byte) (int, error) { w.b = append(w.b, p...); return len(p), nil }
func (w *writerBuffer) Read(p []byte) (int, error) {
	if w.r >= len(w.b) {
		return 0, io.EOF
	}
	n := copy(p, w.b[w.r:])
	w.r += n
	return n, nil
}

// TestLogRecordSteadyStateAllocs pins the recording fast path: once the
// ring has wrapped and its slot backings have grown to the decision
// shape, RecordDecision (including JSON-line encoding into the reused
// buffer) must not allocate.
func TestLogRecordSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed under the race detector")
	}
	l := NewLog(8, io.Discard)
	record := func() { l.RecordDecision(testPoint(-1, nil)) }
	for i := 0; i < 3*l.Capacity(); i++ {
		record()
	}
	if allocs := testing.AllocsPerRun(200, record); allocs != 0 {
		t.Fatalf("steady-state RecordDecision allocates %.1f/op, want 0", allocs)
	}
}

// TestLogConcurrent hammers recording from several goroutines while a
// reader polls, under -race, and leak-checks the exercise.
func TestLogConcurrent(t *testing.T) {
	base := leak.Baseline()
	l := NewLog(64, io.Discard)
	const workers = 6
	const perWorker = 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				l.RecordDecision(testPoint(-1, nil))
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			for _, r := range l.Records() {
				if len(r.Ranked) != 3 {
					t.Errorf("reader saw torn record: %+v", r)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if got := l.Total(); got != workers*perWorker {
		t.Fatalf("recorded %d decisions, want %d", got, workers*perWorker)
	}
	leak.CheckT(t, base)
}

// TestLogHandler exercises the /debug/decisions dump end to end.
func TestLogHandler(t *testing.T) {
	l := NewLog(4, nil)
	for i := 0; i < 6; i++ {
		l.RecordDecision(testPoint(-1, nil))
	}
	srv := httptest.NewServer(l.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var dump struct {
		Total    uint64   `json:"total"`
		Capacity int      `json:"capacity"`
		Records  []Record `json:"records"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	if dump.Total != 6 || dump.Capacity != 4 || len(dump.Records) != 4 {
		t.Fatalf("dump shape: total=%d capacity=%d records=%d", dump.Total, dump.Capacity, len(dump.Records))
	}
	if dump.Records[0].Seq != 2 {
		t.Fatalf("dump not oldest-first: first seq %d", dump.Records[0].Seq)
	}
}
