package decision

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// goldenCell is the fixed matrix cell the regret-report fixtures pin;
// everything downstream (simulation, replay sweep, formatting) is
// deterministic, so the artifacts must be byte-stable.
func goldenReport(t *testing.T) *Report {
	t.Helper()
	r := cellReplayer(cell{regime: "high", seed: 13, cands: "both"})
	baseline, log, err := r.Baseline()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Replay(baseline, log)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// checkGolden byte-compares got against testdata/name, rewriting the
// fixture instead when REGEN_GOLDEN=1 is set (commit the result).
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("REGEN_GOLDEN") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (REGEN_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden:\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

// TestRegretReportCSVGolden pins the regret CSV artifact byte-for-byte.
func TestRegretReportCSVGolden(t *testing.T) {
	rep := goldenReport(t)
	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "regret.csv.golden", buf.Bytes())
}

// TestRegretReportTableGolden pins the human-readable regret table.
func TestRegretReportTableGolden(t *testing.T) {
	rep := goldenReport(t)
	var buf bytes.Buffer
	if err := rep.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "regret.table.golden", buf.Bytes())
}
