package decision

import (
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/market"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// tunerConfig builds the small paper-trace window the tuner tests
// search against.
func tunerConfig(seed uint64) sim.Config {
	set := tracegen.HighVolatility(seed)
	start := set.Start() + 5*24*trace.Hour
	return sim.Config{
		Trace:          set.Slice(start, start+2*24*trace.Hour),
		History:        set.Slice(start-2*24*trace.Hour, start),
		Work:           4 * trace.Hour,
		Deadline:       8 * trace.Hour,
		CheckpointCost: 300,
		RestartCost:    300,
		Delay:          market.FixedDelay(300),
		Seed:           seed,
	}
}

// smallTuner keeps the search budget test-sized.
func smallTuner(seed uint64, statePath string) *Tuner {
	return &Tuner{
		Cfg:         tunerConfig(31),
		Seed:        seed,
		Population:  4,
		Generations: 2,
		StatePath:   statePath,
	}
}

// TestDefaultGenomeMatchesPaperGrid pins the bridge between the tuner
// and the paper configuration: the default genome's bid grid must be
// bit-identical to the §7 grid NewAdaptive uses, and its Adaptive must
// behave identically on a real run.
func TestDefaultGenomeMatchesPaperGrid(t *testing.T) {
	g := DefaultGenome()
	bids := g.Bids()
	if len(bids) != 15 || bids[0] != 0.27 || bids[14] != 3.07 {
		t.Fatalf("default genome grid: %v", bids)
	}
	for i := 1; i < len(bids); i++ {
		if int(bids[i]*100+0.5)-int(bids[i-1]*100+0.5) != 20 {
			t.Fatalf("grid step drifted at %d: %v", i, bids)
		}
	}
	cfg := tunerConfig(31)
	fromGenome, err := sim.Run(cfg, g.Adaptive())
	if err != nil {
		t.Fatal(err)
	}
	r := &Replayer{Cfg: cfg}
	def, err := sim.Run(cfg, r.newAdaptive())
	if err != nil {
		t.Fatal(err)
	}
	if Digest(fromGenome) != Digest(def) {
		t.Fatalf("default genome diverges from NewAdaptive:\n%+v\n%+v", fromGenome, def)
	}
}

// TestGenomeClamp checks the search box invariants mutation relies on.
func TestGenomeClamp(t *testing.T) {
	g := Genome{BidLo: 9, BidHi: 0.01, BidStep: 0, WindowHours: 0, Headroom: 5, Churn: -1, MaxZones: 9}.clamp()
	if g.BidLo < 0.07 || g.BidLo > 2.47 || g.BidHi < g.BidLo+g.BidStep || g.BidStep < 0.05 {
		t.Fatalf("bid box violated: %+v", g)
	}
	if g.WindowHours < 2 || g.Headroom > 0.20 || g.Churn < 0.005 || g.MaxZones > 3 {
		t.Fatalf("threshold box violated: %+v", g)
	}
	if len(g.Bids()) == 0 {
		t.Fatalf("clamped genome has an empty grid: %+v", g)
	}
}

// TestTunerFindsNoWorseThanDefault is the acceptance bound: the search
// must return a configuration whose fitness is at least the paper
// default's on the same trace, and the result must be reproducible for
// a fixed seed.
func TestTunerFindsNoWorseThanDefault(t *testing.T) {
	res, err := smallTuner(7, "").Search()
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Fitness < res.Default.Fitness {
		t.Fatalf("search regressed below default: best %+v vs default %+v", res.Best, res.Default)
	}
	if res.Evaluated == 0 || res.Decisions == 0 {
		t.Fatalf("search did no work: %+v", res)
	}
	again, err := smallTuner(7, "").Search()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Best, again.Best) || res.Evaluated != again.Evaluated {
		t.Fatalf("same-seed searches diverged:\n%+v\n%+v", res.Best, again.Best)
	}
}

// TestTunerSeedChangesSearch sanity-checks the evolutionary stage is
// actually seed-driven: different seeds must explore different genomes.
func TestTunerSeedChangesSearch(t *testing.T) {
	a, err := smallTuner(7, "").Search()
	if err != nil {
		t.Fatal(err)
	}
	b, err := smallTuner(8, "").Search()
	if err != nil {
		t.Fatal(err)
	}
	// The deterministic grid stage is shared; the offspring are not.
	if a.Evaluated == b.Evaluated && reflect.DeepEqual(a.Best, b.Best) {
		t.Logf("seeds 7 and 8 happened to converge; weak but not wrong: %+v", a.Best)
	}
}

// TestTunerResume kills the search after its first checkpointed
// generation and resumes from the state file: the resumed search must
// finish with exactly the result an uninterrupted run produces.
func TestTunerResume(t *testing.T) {
	state := filepath.Join(t.TempDir(), "tuner.json")

	// Phase one: stop after the grid stage plus one generation.
	short := smallTuner(7, state)
	short.Generations = 1
	if _, err := short.Search(); err != nil {
		t.Fatal(err)
	}

	// Phase two: a fresh tuner resumes from the checkpoint and runs the
	// remaining generation.
	resumed, err := smallTuner(7, state).Search()
	if err != nil {
		t.Fatal(err)
	}
	uninterrupted, err := smallTuner(7, "").Search()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed.Best, uninterrupted.Best) || resumed.Evaluated != uninterrupted.Evaluated {
		t.Fatalf("resumed search diverged from uninterrupted:\nresumed %+v (%d evals)\nfull    %+v (%d evals)",
			resumed.Best, resumed.Evaluated, uninterrupted.Best, uninterrupted.Evaluated)
	}
}

// TestTunerRejectsForeignCheckpoint checks a checkpoint written by a
// differently-parameterised search is refused, not blended.
func TestTunerRejectsForeignCheckpoint(t *testing.T) {
	state := filepath.Join(t.TempDir(), "tuner.json")
	short := smallTuner(7, state)
	short.Generations = 1
	if _, err := short.Search(); err != nil {
		t.Fatal(err)
	}
	if _, err := smallTuner(8, state).Search(); err == nil {
		t.Fatal("tuner accepted a checkpoint from a different seed")
	}
	other := smallTuner(7, state)
	other.Weights = Weights{Cost: 2, Margin: 0.1, Waste: 0.2}
	if _, err := other.Search(); err == nil {
		t.Fatal("tuner accepted a checkpoint from different weights")
	}
}
