package decision

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/market"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// cell is one (trace-regime, seed, candidate-set) coordinate of the
// differential matrix — the same regimes the chaos soak exercises.
type cell struct {
	regime string
	seed   uint64
	cands  string
}

// regimeSet cuts the standard chaos window (start five days in, two
// days of history) from the named regime.
func regimeSet(regime string, seed uint64) (hist, run *trace.Set) {
	var set *trace.Set
	switch regime {
	case "low":
		set = tracegen.LowVolatility(seed)
	case "high":
		set = tracegen.HighVolatility(seed)
	case "spike":
		set = tracegen.LowVolatilityWithMegaSpike(seed)
	default:
		panic("unknown regime " + regime)
	}
	start := set.Start() + 5*24*trace.Hour
	return set.Slice(start-2*24*trace.Hour, start), set.Slice(start, start+2*24*trace.Hour)
}

// candidateSet resolves a candidate-set name to policy factories.
func candidateSet(name string) []core.PolicyFactory {
	all := core.DefaultAdaptiveCandidates()
	switch name {
	case "periodic":
		return all[:1]
	case "markov":
		return all[1:2]
	case "both":
		return all
	default:
		panic("unknown candidate set " + name)
	}
}

// cellReplayer builds the replayer for one matrix cell: a deliberately
// small grid (3 bids, N<=2, 6-hour window) so the full matrix stays
// fast under -race while still producing multi-decision runs with real
// rivals.
func cellReplayer(c cell) *Replayer {
	hist, run := regimeSet(c.regime, c.seed)
	cands := candidateSet(c.cands)
	return &Replayer{
		Cfg: sim.Config{
			Trace:          run,
			History:        hist,
			Work:           4 * trace.Hour,
			Deadline:       7 * trace.Hour,
			CheckpointCost: 300,
			RestartCost:    300,
			Delay:          market.FixedDelay(300),
			Seed:           c.seed,
		},
		New: func() *core.Adaptive {
			return &core.Adaptive{
				Bids:             []float64{0.47, 0.81, 1.67},
				MaxZones:         2,
				EstimationWindow: 6 * trace.Hour,
				Candidates:       cands,
			}
		},
		TopK: 2,
	}
}

// matrixCells enumerates the differential matrix.
func matrixCells() []cell {
	var out []cell
	for _, regime := range []string{"low", "high", "spike"} {
		for _, seed := range []uint64{13, 29} {
			for _, cands := range []string{"periodic", "both"} {
				out = append(out, cell{regime: regime, seed: seed, cands: cands})
			}
		}
	}
	return out
}

// TestCounterfactualMatchesOracleMatrix is the tentpole differential
// suite: for every (policy-set × seed × trace-regime) cell, forcing a
// rival at the first, middle and last decision must produce a run whose
// digest is bit-identical to a from-scratch sim.Machine oracle that
// replays the counterfactual's own decision log with every choice
// pinned and nothing evaluated. Run it under -race.
func TestCounterfactualMatchesOracleMatrix(t *testing.T) {
	for _, c := range matrixCells() {
		c := c
		t.Run(c.regime+"/"+c.cands, func(t *testing.T) {
			t.Parallel()
			r := cellReplayer(c)
			baseline, log, err := r.Baseline()
			if err != nil {
				t.Fatal(err)
			}
			if len(log) == 0 {
				t.Fatal("empty decision log")
			}
			// The recorded log, replayed fully pinned, must reproduce
			// the baseline run exactly.
			oracle, err := r.Oracle(log)
			if err != nil {
				t.Fatal(err)
			}
			if oracle.Digest != baseline.Digest {
				t.Fatalf("pinned replay of the baseline log diverged:\nbaseline %s %+v\noracle   %s %+v",
					baseline.Digest, baseline, oracle.Digest, oracle)
			}
			seqs := []int{0}
			if n := len(log); n > 1 {
				seqs = append(seqs, n/2, n-1)
			}
			for _, seq := range seqs {
				for _, task := range r.rivalsOf(&log[seq]) {
					cf, cfLog, err := r.Counterfactual(log, task.seq, task.rival)
					if err != nil {
						t.Fatalf("seq %d rank %d: %v", task.seq, task.rank, err)
					}
					cfOracle, err := r.Oracle(cfLog)
					if err != nil {
						t.Fatalf("seq %d rank %d oracle: %v", task.seq, task.rank, err)
					}
					if cf.Digest != cfOracle.Digest {
						t.Fatalf("counterfactual seq %d rank %d diverged from oracle:\nreplay %s %+v\noracle %s %+v",
							task.seq, task.rank, cf.Digest, cf, cfOracle.Digest, cfOracle)
					}
				}
			}
		})
	}
}

// TestForcingChosenYieldsZeroRegret is the zero-regret property: at
// every decision point of a recorded run, forcing the originally-chosen
// permutation must reproduce the baseline run bit-identically — the
// counterfactual machinery may not perturb a replay whose forced choice
// changes nothing.
func TestForcingChosenYieldsZeroRegret(t *testing.T) {
	r := cellReplayer(cell{regime: "high", seed: 13, cands: "both"})
	baseline, log, err := r.Baseline()
	if err != nil {
		t.Fatal(err)
	}
	for seq := range log {
		cf, _, err := r.Counterfactual(log, seq, log[seq].Chosen)
		if err != nil {
			t.Fatalf("seq %d: %v", seq, err)
		}
		if cf.Digest != baseline.Digest {
			t.Fatalf("forcing the chosen permutation at seq %d changed the run:\nbaseline %s %+v\nreplay   %s %+v",
				seq, baseline.Digest, baseline, cf.Digest, cf)
		}
		if cf.Cost != baseline.Cost {
			t.Fatalf("seq %d: nonzero regret %g forcing the chosen permutation", seq, cf.Cost-baseline.Cost)
		}
	}
}

// TestBaselineDeterministic replays the same cell twice and requires
// byte-identical decision logs and outcomes, including the top-k rival
// ordering the replay sweep depends on.
func TestBaselineDeterministic(t *testing.T) {
	r := cellReplayer(cell{regime: "spike", seed: 29, cands: "both"})
	o1, l1, err := r.Baseline()
	if err != nil {
		t.Fatal(err)
	}
	o2, l2, err := r.Baseline()
	if err != nil {
		t.Fatal(err)
	}
	if o1 != o2 {
		t.Fatalf("outcomes differ:\n%+v\n%+v", o1, o2)
	}
	if !reflect.DeepEqual(l1, l2) {
		t.Fatalf("decision logs differ across identical runs:\n%+v\n%+v", l1, l2)
	}
	for i := range l1 {
		r1, r2 := r.rivalsOf(&l1[i]), r.rivalsOf(&l2[i])
		if !reflect.DeepEqual(r1, r2) {
			t.Fatalf("top-k rivals differ at seq %d: %+v vs %+v", i, r1, r2)
		}
	}
}

// TestNaiveCounterfactualIdentical checks the naive (no pinned prefix,
// fresh machine) counterfactual path produces the same digest as the
// scripted fast path — the precondition for the benchmark comparing
// their speed.
func TestNaiveCounterfactualIdentical(t *testing.T) {
	r := cellReplayer(cell{regime: "high", seed: 29, cands: "both"})
	_, log, err := r.Baseline()
	if err != nil {
		t.Fatal(err)
	}
	seq := len(log) / 2
	tasks := r.rivalsOf(&log[seq])
	if len(tasks) == 0 {
		t.Skip("no rivals at midpoint decision")
	}
	fast, _, err := r.Counterfactual(log, seq, tasks[0].rival)
	if err != nil {
		t.Fatal(err)
	}
	naive := *r
	naive.Naive = true
	slow, _, err := naive.Counterfactual(log, seq, tasks[0].rival)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Digest != slow.Digest {
		t.Fatalf("naive and scripted counterfactuals diverge:\nfast  %s %+v\nnaive %s %+v",
			fast.Digest, fast, slow.Digest, slow)
	}
}

// TestReplayAggregatesRegret end-to-ends the sweep on one cell: the
// report must cover every decision, count its counterfactuals, and
// aggregate per-decision regret consistently with its own rivals.
func TestReplayAggregatesRegret(t *testing.T) {
	r := cellReplayer(cell{regime: "low", seed: 13, cands: "both"})
	baseline, log, err := r.Baseline()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Replay(baseline, log)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Decisions) != len(log) {
		t.Fatalf("report covers %d decisions, want %d", len(rep.Decisions), len(log))
	}
	total, max, n := 0.0, 0.0, 0
	for _, d := range rep.Decisions {
		n += len(d.Rivals)
		want := 0.0
		for _, cf := range d.Rivals {
			if saved := -cf.CostDelta; saved > want {
				want = saved
			}
		}
		if d.Regret != want {
			t.Fatalf("seq %d regret %g inconsistent with rivals (want %g)", d.Seq, d.Regret, want)
		}
		total += d.Regret
		if d.Regret > max {
			max = d.Regret
		}
	}
	if n != rep.Counterfactuals {
		t.Fatalf("counterfactual count %d, want %d", rep.Counterfactuals, n)
	}
	if rep.TotalRegret != total || rep.MaxRegret != max {
		t.Fatalf("aggregates total=%g max=%g, want total=%g max=%g", rep.TotalRegret, rep.MaxRegret, total, max)
	}
}
