package decision

import (
	"fmt"
	"io"
	"math"
	"strconv"

	"repro/internal/core"
	"repro/internal/pool"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Outcome summarises one run for regret accounting: the cost split,
// completion facts, waste attribution and the full-run Digest.
type Outcome struct {
	// Cost is the total dollars charged.
	Cost float64 `json:"cost"`
	// SpotCost and OnDemandCost split Cost by market.
	SpotCost     float64 `json:"spot_cost"`
	OnDemandCost float64 `json:"on_demand_cost"`
	// Completed reports whether the work finished.
	Completed bool `json:"completed"`
	// FinishTime is the absolute completion time.
	FinishTime int64 `json:"finish_time"`
	// DeadlineMet reports FinishTime within the deadline.
	DeadlineMet bool `json:"deadline_met"`
	// SwitchedOnDemand reports the deadline guard fired.
	SwitchedOnDemand bool `json:"switched_on_demand"`
	// Checkpoints, Restarts and SpecSwitches count run events.
	Checkpoints  int `json:"checkpoints"`
	Restarts     int `json:"restarts"`
	SpecSwitches int `json:"spec_switches"`
	// ReworkSeconds and OverheadSeconds attribute wasted time.
	ReworkSeconds   int64 `json:"rework_seconds"`
	OverheadSeconds int64 `json:"overhead_seconds"`
	// Digest is the bit-identity fingerprint of the whole run.
	Digest string `json:"digest"`
}

// Summarize extracts an Outcome from a live result (valid to call on a
// pooled machine's result inside the consume callback: everything,
// including the ledger digest, is copied out).
func Summarize(res *sim.Result) Outcome {
	return Outcome{
		Cost:             res.Cost,
		SpotCost:         res.SpotCost,
		OnDemandCost:     res.OnDemandCost,
		Completed:        res.Completed,
		FinishTime:       res.FinishTime,
		DeadlineMet:      res.DeadlineMet,
		SwitchedOnDemand: res.SwitchedOnDemand,
		Checkpoints:      res.Checkpoints,
		Restarts:         res.Restarts,
		SpecSwitches:     res.SpecSwitches,
		ReworkSeconds:    res.ReworkSeconds,
		OverheadSeconds:  res.OverheadSeconds,
		Digest:           Digest(res),
	}
}

// Counterfactual is one forced-rival replay: what the run would have
// cost had the strategy taken this rival at this decision point, with
// every other decision up to that point pinned and every later decision
// made live by the Adaptive strategy.
type Counterfactual struct {
	// Seq is the decision the rival was forced at.
	Seq int `json:"seq"`
	// Rank is the rival's position in the decision's ranked grid.
	Rank int `json:"rank"`
	// Rival is the forced permutation.
	Rival Alt `json:"rival"`
	// Outcome is the counterfactual run's summary.
	Outcome Outcome `json:"outcome"`
	// CostDelta is counterfactual cost minus baseline cost: positive
	// means the rival would have cost more.
	CostDelta float64 `json:"cost_delta"`
}

// DecisionRegret aggregates the counterfactuals of one decision point.
type DecisionRegret struct {
	// Seq, Time, Trigger and Chosen identify the decision.
	Seq     int    `json:"seq"`
	Time    int64  `json:"time"`
	Trigger string `json:"trigger"`
	Chosen  Alt    `json:"chosen"`
	// Rivals holds the forced-rival replays, in rank order.
	Rivals []Counterfactual `json:"rivals"`
	// Regret is the realized regret of the decision: how many dollars
	// the best evaluated rival would have saved, floored at zero.
	Regret float64 `json:"regret"`
}

// Report is the regret table of one recorded run.
type Report struct {
	// Baseline is the recorded run's outcome.
	Baseline Outcome `json:"baseline"`
	// Decisions holds per-decision regret, in sequence order.
	Decisions []DecisionRegret `json:"decisions"`
	// Counterfactuals counts the replays evaluated.
	Counterfactuals int `json:"counterfactuals"`
	// MaxRegret is the largest per-decision regret.
	MaxRegret float64 `json:"max_regret"`
	// TotalRegret sums per-decision regrets (an upper bound on the
	// improvement any single-decision change could buy, summed over
	// decisions; useful as a tuning signal, not as achievable savings).
	TotalRegret float64 `json:"total_regret"`
}

// Replayer runs counterfactual replays of a recorded Adaptive run. The
// configuration must be exactly the recorded run's (trace, history,
// work, deadline, costs, delay model, seed): counterfactual identity is
// only meaningful against the same world.
type Replayer struct {
	// Cfg is the run configuration to replay under.
	Cfg sim.Config
	// New builds the strategy for the baseline and for live
	// continuations; nil selects core.NewAdaptive. Each call must
	// return a fresh instance with the same settings.
	New func() *core.Adaptive
	// TopK bounds how many rivals are forced per decision; 0 selects 3.
	TopK int
	// Workers bounds the replay fan-out; 0 selects GOMAXPROCS.
	Workers int
	// Naive routes counterfactuals through the naive baseline: no
	// pinned prefix — the live strategy re-runs every prefix sweep from
	// scratch — and a fresh (unpooled) machine per replay. It exists
	// for the speedup benchmark; results are identical.
	Naive bool
}

// newAdaptive builds a fresh strategy instance.
func (r *Replayer) newAdaptive() *core.Adaptive {
	if r.New != nil {
		return r.New()
	}
	return core.NewAdaptive()
}

// candidates returns the policy factories the replay scripts resolve
// policy names against.
func (r *Replayer) candidates() []core.PolicyFactory {
	return r.newAdaptive().Candidates
}

// Baseline runs the strategy once with a recorder attached and returns
// its outcome and decision log.
func (r *Replayer) Baseline() (Outcome, []Record, error) {
	a := r.newAdaptive()
	col := &Collector{}
	a.Sink = col
	res, err := sim.Run(r.Cfg, a)
	if err != nil {
		return Outcome{}, nil, err
	}
	return Summarize(res), col.Records(), nil
}

// Oracle replays a full decision log on a from-scratch sim.Machine with
// every choice pinned and nothing evaluated — the ground truth a
// counterfactual replay must be bit-identical to.
func (r *Replayer) Oracle(log []Record) (Outcome, error) {
	f := &core.Forced{Script: Script(log), ForceAt: -1, Candidates: r.candidates()}
	res, err := sim.Run(r.Cfg, f)
	if err != nil {
		return Outcome{}, err
	}
	return Summarize(res), nil
}

// Counterfactual replays one forced rival: decisions before seq replay
// pinned from the log, the rival is forced at seq, and the Adaptive
// strategy decides live afterwards. It returns the run's outcome and
// its complete decision log (pinned prefix included), which Oracle can
// replay back bit-identically.
func (r *Replayer) Counterfactual(log []Record, seq int, rival Alt) (Outcome, []Record, error) {
	if seq < 0 || seq >= len(log) {
		return Outcome{}, nil, fmt.Errorf("decision: seq %d outside log of %d decisions", seq, len(log))
	}
	col := &Collector{}
	f := &core.Forced{
		Inner:      r.newAdaptive(),
		Candidates: r.candidates(),
		Script:     Script(log[:seq+1]),
		ForceAt:    seq,
		Force:      scriptAlt(rival),
		Sink:       col,
	}
	f.Inner.Sink = col
	if r.Naive {
		f.Script = nil
		res, err := sim.Run(r.Cfg, f)
		if err != nil {
			return Outcome{}, nil, err
		}
		return Summarize(res), col.Records(), nil
	}
	var out Outcome
	err := sim.RunPooled(r.Cfg, f, func(res *sim.Result) { out = Summarize(res) })
	if err != nil {
		return Outcome{}, nil, err
	}
	return out, col.Records(), nil
}

// cfTask names one (decision, rival) replay of a Replay sweep.
type cfTask struct {
	seq   int
	rank  int
	rival Alt
}

// rivalsOf selects the top-k rivals of one record: ranked alternatives
// that name a different permutation than the chosen one.
func (r *Replayer) rivalsOf(rec *Record) []cfTask {
	k := r.TopK
	if k <= 0 {
		k = 3
	}
	var out []cfTask
	for i := range rec.Ranked {
		if len(out) == k {
			break
		}
		if altsEqual(rec.Ranked[i], rec.Chosen) {
			continue
		}
		out = append(out, cfTask{seq: rec.Seq, rank: i, rival: rec.Ranked[i]})
	}
	return out
}

// Replay evaluates the top-k rivals of every decision in the log in
// parallel and aggregates realized regret per decision point. The log
// must be the contiguous record of one run (seq 0..n-1).
func (r *Replayer) Replay(baseline Outcome, log []Record) (*Report, error) {
	var tasks []cfTask
	perDecision := make([][]int, len(log))
	for i := range log {
		if log[i].Seq != i {
			return nil, fmt.Errorf("decision: log not contiguous: record %d has seq %d", i, log[i].Seq)
		}
		for _, t := range r.rivalsOf(&log[i]) {
			perDecision[i] = append(perDecision[i], len(tasks))
			tasks = append(tasks, t)
		}
	}
	results := make([]Counterfactual, len(tasks))
	err := pool.RunErr(r.Workers, len(tasks), func(i int) error {
		t := tasks[i]
		out, _, err := r.Counterfactual(log, t.seq, t.rival)
		if err != nil {
			return fmt.Errorf("decision: counterfactual seq %d rank %d: %w", t.seq, t.rank, err)
		}
		results[i] = Counterfactual{
			Seq:       t.seq,
			Rank:      t.rank,
			Rival:     t.rival,
			Outcome:   out,
			CostDelta: out.Cost - baseline.Cost,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep := &Report{Baseline: baseline, Counterfactuals: len(tasks)}
	for i := range log {
		dr := DecisionRegret{
			Seq:     log[i].Seq,
			Time:    log[i].Time,
			Trigger: log[i].Trigger,
			Chosen:  log[i].Chosen,
		}
		for _, ti := range perDecision[i] {
			cf := results[ti]
			dr.Rivals = append(dr.Rivals, cf)
			if saved := -cf.CostDelta; saved > dr.Regret {
				dr.Regret = saved
			}
		}
		rep.Decisions = append(rep.Decisions, dr)
		rep.TotalRegret += dr.Regret
		rep.MaxRegret = math.Max(rep.MaxRegret, dr.Regret)
	}
	return rep, nil
}

// fmtMoney renders dollars with stable precision for tables.
func fmtMoney(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

// fmtAlt renders a permutation as "bid=0.81 n=2 policy".
func fmtAlt(a Alt) string {
	return fmt.Sprintf("bid=%s n=%d %s", strconv.FormatFloat(a.Bid, 'g', -1, 64), len(a.Zones), a.Policy)
}

// WriteTable renders the per-decision regret table as aligned text.
func (rep *Report) WriteTable(w io.Writer) error {
	headers := []string{"seq", "t(h)", "trigger", "chosen", "best rival", "rival cost", "regret($)"}
	rows := make([][]string, 0, len(rep.Decisions))
	for _, d := range rep.Decisions {
		bestRival, bestCost := "-", "-"
		best := math.Inf(1)
		for _, cf := range d.Rivals {
			if cf.Outcome.Cost < best {
				best = cf.Outcome.Cost
				bestRival = fmtAlt(cf.Rival)
				bestCost = fmtMoney(cf.Outcome.Cost)
			}
		}
		rows = append(rows, []string{
			strconv.Itoa(d.Seq),
			strconv.FormatFloat(float64(d.Time)/float64(trace.Hour), 'f', 2, 64),
			d.Trigger,
			fmtAlt(d.Chosen),
			bestRival,
			bestCost,
			fmtMoney(d.Regret),
		})
	}
	if err := report.Table(w, headers, rows); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "\nbaseline cost %s  counterfactuals %d  max regret %s  total regret %s\n",
		fmtMoney(rep.Baseline.Cost), rep.Counterfactuals, fmtMoney(rep.MaxRegret), fmtMoney(rep.TotalRegret))
	return err
}

// WriteCSV emits one row per counterfactual: the artifact form of the
// regret report.
func (rep *Report) WriteCSV(w io.Writer) error {
	headers := []string{
		"seq", "time", "trigger",
		"chosen_bid", "chosen_zones", "chosen_policy", "chosen_predicted_cost",
		"rival_rank", "rival_bid", "rival_zones", "rival_policy", "rival_predicted_cost",
		"baseline_cost", "counterfactual_cost", "cost_delta", "decision_regret",
	}
	var rows [][]string
	zoneStr := func(zs []int) string {
		s := ""
		for i, z := range zs {
			if i > 0 {
				s += "+"
			}
			s += strconv.Itoa(z)
		}
		return s
	}
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, d := range rep.Decisions {
		for _, cf := range d.Rivals {
			rows = append(rows, []string{
				strconv.Itoa(d.Seq),
				strconv.FormatInt(d.Time, 10),
				d.Trigger,
				g(d.Chosen.Bid), zoneStr(d.Chosen.Zones), d.Chosen.Policy, g(d.Chosen.Cost),
				strconv.Itoa(cf.Rank),
				g(cf.Rival.Bid), zoneStr(cf.Rival.Zones), cf.Rival.Policy, g(cf.Rival.Cost),
				g(rep.Baseline.Cost), g(cf.Outcome.Cost), g(cf.CostDelta), g(d.Regret),
			})
		}
	}
	return report.WriteCSV(w, headers, rows)
}
