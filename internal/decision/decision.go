// Package decision closes the loop from observability to policy
// improvement for the paper's §7 Adaptive scheme. It has three layers:
//
//   - recording: a DecisionSink implementation (Log, Collector) captures
//     every Adaptive decision — the chosen (bid, zones, policy)
//     permutation plus the predicted costs of all ranked rivals — into
//     an append-only, seed-deterministic decision log (JSON-lines on
//     disk, in-memory ring over HTTP via /debug/decisions on quoted);
//   - counterfactual replay: Replayer re-runs the same trace pinning the
//     recorded prefix and forcing each top-k rival decision through the
//     batched evaluator, and reports the realized regret per decision
//     point. Forced-choice replays are bit-identical to a from-scratch
//     sim.Machine oracle run with the same choices pinned, which the
//     differential test suite asserts cell by cell;
//   - tuning: Tuner searches the Adaptive hyperparameter space (bid
//     grid, history window, headroom/churn thresholds, redundancy
//     bound) with a grid stage plus a seeded evolutionary stage against
//     a weighted multi-objective fitness (cost, deadline margin,
//     checkpoint waste), parallelized on internal/pool and
//     checkpointable so a killed search resumes deterministically.
package decision

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Alt is the serialized form of one ranked permutation: bid, zone
// indices, policy family and the Inequality (1) predicted remaining
// cost in dollars.
type Alt struct {
	// Bid is the permutation's bid in dollars per hour.
	Bid float64 `json:"bid"`
	// Zones holds trace zone indices, ascending.
	Zones []int `json:"zones,omitempty"`
	// Policy names the checkpoint policy family.
	Policy string `json:"policy"`
	// Cost is the predicted remaining cost in dollars.
	Cost float64 `json:"cost"`
}

// Record is one decision-log entry: the serialized, deep-copied form of
// a core.DecisionPoint. Records are seed-deterministic: replaying the
// same configuration yields a byte-identical log.
type Record struct {
	// Seq numbers the decision within its run, starting at 0.
	Seq int `json:"seq"`
	// Time is the absolute simulation time of the decision.
	Time int64 `json:"time"`
	// Trigger is one of the core.Trigger constants.
	Trigger string `json:"trigger"`
	// Switched reports whether the decision changed the running spec.
	Switched bool `json:"switched"`
	// Chosen is the permutation the decision installed or kept.
	Chosen Alt `json:"chosen"`
	// Ranked is the full scored rival grid, best-first; empty for
	// pinned replay decisions.
	Ranked []Alt `json:"ranked,omitempty"`
}

// copyAlt deep-copies a core alternative into dst, reusing dst's zone
// slice backing when it has capacity (the ring log's steady state
// allocates nothing).
func copyAlt(dst *Alt, src core.DecisionAlt) {
	zones := dst.Zones[:0]
	zones = append(zones, src.Zones...)
	if len(src.Zones) == 0 {
		zones = nil
	}
	*dst = Alt{Bid: src.Bid, Zones: zones, Policy: src.Policy, Cost: src.Cost}
}

// copyPoint deep-copies a decision point into dst under the final
// sequence number, reusing dst's slice backings.
func copyPoint(dst *Record, p core.DecisionPoint, seq int) {
	ranked := dst.Ranked
	if cap(ranked) < len(p.Ranked) {
		grown := make([]Alt, len(p.Ranked))
		copy(grown, ranked[:cap(ranked)])
		ranked = grown
	} else {
		ranked = ranked[:len(p.Ranked)]
	}
	for i := range p.Ranked {
		copyAlt(&ranked[i], p.Ranked[i])
	}
	if len(p.Ranked) == 0 {
		ranked = nil
	}
	chosen := dst.Chosen
	copyAlt(&chosen, p.Chosen)
	*dst = Record{
		Seq:      seq,
		Time:     p.Time,
		Trigger:  p.Trigger,
		Switched: p.Switched,
		Chosen:   chosen,
		Ranked:   ranked,
	}
}

// Collector is the unbounded DecisionSink the replayer and the tests
// use: it appends a deep copy of every decision point in order. Safe
// for concurrent use.
type Collector struct {
	mu   sync.Mutex
	recs []Record
}

// RecordDecision implements core.DecisionSink.
func (c *Collector) RecordDecision(p core.DecisionPoint) {
	c.mu.Lock()
	defer c.mu.Unlock()
	seq := p.Seq
	if seq < 0 {
		seq = len(c.recs)
	}
	var rec Record
	copyPoint(&rec, p, seq)
	c.recs = append(c.recs, rec)
}

// Records returns the collected decisions in recording order. The
// returned slice is a snapshot; its records are not copied again, so
// callers must not mutate them.
func (c *Collector) Records() []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Record(nil), c.recs...)
}

// CountingSink counts decision points and discards them. The tuner
// attaches one across all of its evaluation runs to report search
// throughput in decisions per second.
type CountingSink struct {
	n atomic.Int64
}

// RecordDecision implements core.DecisionSink.
func (s *CountingSink) RecordDecision(core.DecisionPoint) { s.n.Add(1) }

// Count returns how many decisions have been recorded.
func (s *CountingSink) Count() int64 { return s.n.Load() }

// Script converts a decision-log prefix into the pinned replay script
// core.Forced consumes: one ScriptChoice per record, in order.
func Script(records []Record) []core.ScriptChoice {
	out := make([]core.ScriptChoice, len(records))
	for i := range records {
		r := &records[i]
		out[i] = core.ScriptChoice{
			Time:     r.Time,
			Switched: r.Switched,
			Bid:      r.Chosen.Bid,
			Zones:    r.Chosen.Zones,
			Policy:   r.Chosen.Policy,
		}
	}
	return out
}

// scriptAlt converts one alternative into the forced-choice form.
func scriptAlt(a Alt) core.ScriptChoice {
	return core.ScriptChoice{Bid: a.Bid, Zones: a.Zones, Policy: a.Policy}
}

// altsEqual reports whether two alternatives name the same permutation
// (bid, zone set, policy family), ignoring predicted cost.
func altsEqual(a, b Alt) bool {
	if a.Bid != b.Bid || a.Policy != b.Policy || len(a.Zones) != len(b.Zones) {
		return false
	}
	for i := range a.Zones {
		if a.Zones[i] != b.Zones[i] {
			return false
		}
	}
	return true
}
