//go:build race

package decision

// raceEnabled reports whether the race detector is on; allocation pins
// skip under it because instrumentation perturbs allocation counts.
const raceEnabled = true
