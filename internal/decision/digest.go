package decision

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/sim"
)

// Digest hashes every externally observable field of a run result —
// costs, completion, time attribution, counters and the full charge
// ledger — into a compact FNV-64a hex string. Equal digests mean equal
// runs; the differential suite uses it to assert that a counterfactual
// replay and the from-scratch pinned-choice oracle produced bit-for-bit
// identical executions (the same discipline the chaos soak applies to
// whole-run replays).
func Digest(res *sim.Result) string {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(math.Float64bits(res.Cost))
	put(math.Float64bits(res.SpotCost))
	put(math.Float64bits(res.OnDemandCost))
	put(uint64(res.FinishTime))
	put(uint64(res.Committed))
	put(uint64(res.ReworkSeconds))
	put(uint64(res.OverheadSeconds))
	put(uint64(res.MaxProgress))
	for _, v := range []bool{res.Completed, res.DeadlineMet, res.SwitchedOnDemand} {
		if v {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	for _, v := range []int{res.Checkpoints, res.AbortedCheckpoints, res.Restarts,
		res.ProviderKills, res.UserReleases, res.SpecSwitches} {
		put(uint64(v))
	}
	for _, e := range res.Ledger.Entries {
		h.Write([]byte(e.Zone))
		put(uint64(e.HourStart))
		put(math.Float64bits(e.Rate))
		flags := byte(0)
		if e.OnDemand {
			flags |= 1
		}
		if e.Partial {
			flags |= 2
		}
		h.Write([]byte{flags})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
