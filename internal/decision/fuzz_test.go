package decision

import (
	"bytes"
	"math"
	"reflect"
	"testing"
)

// fuzzStrings is the identifier table fuzz inputs index into: triggers
// and policy names stay realistic while the numeric space is explored
// freely (arbitrary strings are exercised separately via the raw
// parse-robustness input).
var fuzzStrings = []string{"begin", "provider-kill", "hour-boundary", "rank", "periodic", "markov-daly", "", `q"uo\te`, "ctrl\x01\x1f"}

// fuzzRecord builds a deterministic record from fuzz primitives.
func fuzzRecord(seq int32, tm int64, trig, pol uint8, switched bool, bid, cost float64, zmask uint16, nRanked uint8) Record {
	mk := func(b, c float64, m uint16, p uint8) Alt {
		var zones []int
		for z := 0; z < 16; z++ {
			if m&(1<<z) != 0 {
				zones = append(zones, z)
			}
		}
		return Alt{Bid: b, Zones: zones, Policy: fuzzStrings[int(p)%len(fuzzStrings)], Cost: c}
	}
	rec := Record{
		Seq:      int(seq),
		Time:     tm,
		Trigger:  fuzzStrings[int(trig)%len(fuzzStrings)],
		Switched: switched,
		Chosen:   mk(bid, cost, zmask, pol),
	}
	for i := uint8(0); i < nRanked%8; i++ {
		rec.Ranked = append(rec.Ranked, mk(bid+float64(i)*0.2, cost*float64(i+1), zmask>>i, pol+i))
	}
	return rec
}

// normalize maps a record onto the codec's canonical image: non-finite
// floats clamp to MaxFloat64 and negative zeros lose their sign (JSON
// has neither).
func normalize(rec Record) Record {
	f := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return math.MaxFloat64
		}
		if v == 0 {
			return 0
		}
		return v
	}
	alt := func(a Alt) Alt {
		a.Bid, a.Cost = f(a.Bid), f(a.Cost)
		return a
	}
	rec.Chosen = alt(rec.Chosen)
	for i := range rec.Ranked {
		rec.Ranked[i] = alt(rec.Ranked[i])
	}
	return rec
}

// FuzzDecisionLogRoundTrip is the satellite fuzz target wired into
// scripts/check.sh: every decision record must encode to one JSON line
// that decodes back to the same value and re-encodes byte-identically,
// and ParseRecord must never panic on arbitrary bytes.
func FuzzDecisionLogRoundTrip(f *testing.F) {
	f.Add(int32(0), int64(432000), uint8(0), uint8(4), true, 0.81, 14.25, uint16(0b101), uint8(2), []byte(`{"seq":1}`))
	f.Add(int32(7), int64(-1), uint8(2), uint8(5), false, math.Inf(1), math.NaN(), uint16(0), uint8(0), []byte("not json"))
	f.Add(int32(-3), int64(math.MaxInt64), uint8(7), uint8(8), true, -0.0, math.MaxFloat64, uint16(0xffff), uint8(7), []byte{0xff, 0xfe})
	f.Fuzz(func(t *testing.T, seq int32, tm int64, trig, pol uint8, switched bool, bid, cost float64, zmask uint16, nRanked uint8, raw []byte) {
		// Arbitrary bytes must never panic the parser.
		_, _ = ParseRecord(raw)

		rec := fuzzRecord(seq, tm, trig, pol, switched, bid, cost, zmask, nRanked)
		line := AppendRecord(nil, &rec)
		got, err := ParseRecord(line)
		if err != nil {
			t.Fatalf("canonical encoding does not parse: %v\n%s", err, line)
		}
		if want := normalize(rec); !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip changed the record:\nin   %+v\nwant %+v\ngot  %+v", rec, want, got)
		}
		again := AppendRecord(nil, &got)
		if !bytes.Equal(line, again) {
			t.Fatalf("re-encode not byte-identical:\n%s\n%s", line, again)
		}
	})
}
