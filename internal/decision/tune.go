package decision

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/pool"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Genome is one point of the Adaptive hyperparameter space the tuner
// searches: the bid grid (lo/hi/step in dollars), the estimation-window
// length, the near-tie headroom and churn-damping thresholds, and the
// redundancy bound.
type Genome struct {
	// BidLo, BidHi and BidStep define the candidate bid grid in dollars
	// (inclusive, stepped in whole cents).
	BidLo   float64 `json:"bid_lo"`
	BidHi   float64 `json:"bid_hi"`
	BidStep float64 `json:"bid_step"`
	// WindowHours is the trailing estimation window in hours.
	WindowHours int `json:"window_hours"`
	// Headroom and Churn are the Adaptive selection thresholds.
	Headroom float64 `json:"headroom"`
	Churn    float64 `json:"churn"`
	// MaxZones bounds the redundancy degree N.
	MaxZones int `json:"max_zones"`
}

// DefaultGenome returns the paper's Adaptive settings: the $0.27–$3.07
// step-$0.20 bid grid, a 12-hour window, 3% headroom, 2% churn
// tolerance and up to 3 zones. Its Adaptive() is behavior-identical to
// core.NewAdaptive()'s defaults, which anchors the tuner's "no worse
// than default" guarantee.
func DefaultGenome() Genome {
	return Genome{BidLo: 0.27, BidHi: 3.07, BidStep: 0.20, WindowHours: 12, Headroom: 0.03, Churn: 0.02, MaxZones: 3}
}

// Bids materializes the genome's bid grid, stepping in integer cents to
// avoid float accumulation drift (the default genome reproduces
// core.BidGrid exactly). The grid is capped at 64 bids.
func (g Genome) Bids() []float64 {
	lo := int(math.Round(g.BidLo * 100))
	hi := int(math.Round(g.BidHi * 100))
	step := int(math.Round(g.BidStep * 100))
	if step <= 0 {
		step = 20
	}
	if hi < lo {
		hi = lo
	}
	var out []float64
	for c := lo; c <= hi && len(out) < 64; c += step {
		out = append(out, float64(c)/100)
	}
	return out
}

// Adaptive builds a fresh strategy configured by the genome.
func (g Genome) Adaptive() *core.Adaptive {
	return &core.Adaptive{
		Bids:             g.Bids(),
		MaxZones:         g.MaxZones,
		EstimationWindow: int64(g.WindowHours) * trace.Hour,
		Headroom:         g.Headroom,
		Churn:            g.Churn,
	}
}

// Key returns the genome's canonical identity used for evaluation
// caching and deterministic tie-breaking.
func (g Genome) Key() string {
	return fmt.Sprintf("b%g-%g-%g|w%d|h%g|c%g|z%d",
		g.BidLo, g.BidHi, g.BidStep, g.WindowHours, g.Headroom, g.Churn, g.MaxZones)
}

// clamp normalizes the genome into the searchable box: bids in whole
// cents within sane market bounds, window/zones bounded, thresholds in
// (0, 0.2].
func (g Genome) clamp() Genome {
	cents := func(v, lo, hi float64) float64 {
		c := math.Round(v*100) / 100
		return math.Min(hi, math.Max(lo, c))
	}
	frac := func(v, lo, hi float64) float64 {
		f := math.Round(v*1e4) / 1e4
		return math.Min(hi, math.Max(lo, f))
	}
	g.BidStep = cents(g.BidStep, 0.05, 1.00)
	g.BidLo = cents(g.BidLo, 0.07, 2.47)
	g.BidHi = cents(g.BidHi, g.BidLo+g.BidStep, 4.07)
	if g.WindowHours < 2 {
		g.WindowHours = 2
	}
	if g.WindowHours > 48 {
		g.WindowHours = 48
	}
	g.Headroom = frac(g.Headroom, 0.005, 0.20)
	g.Churn = frac(g.Churn, 0.005, 0.20)
	if g.MaxZones < 1 {
		g.MaxZones = 1
	}
	if g.MaxZones > 3 {
		g.MaxZones = 3
	}
	return g
}

// Weights is the multi-objective fitness weighting: dollars of cost
// against hours of deadline margin and hours of checkpoint waste
// (rework plus overhead). Fitness is
//
//	-Cost·cost + Margin·margin_hours − Waste·waste_hours
//
// so higher is better; a run that misses the deadline or fails to
// complete is heavily penalized regardless of weights.
type Weights struct {
	// Cost weights dollars spent (per dollar).
	Cost float64 `json:"cost"`
	// Margin rewards finishing early (per hour of slack left).
	Margin float64 `json:"margin"`
	// Waste penalizes rework and checkpoint overhead (per hour).
	Waste float64 `json:"waste"`
}

// DefaultWeights returns the cost-dominant default: $1 of cost trades
// against 20 hours of margin or 10 hours of waste.
func DefaultWeights() Weights { return Weights{Cost: 1, Margin: 0.05, Waste: 0.1} }

// Eval is one evaluated genome.
type Eval struct {
	// Genome is the evaluated configuration.
	Genome Genome `json:"genome"`
	// Fitness is the weighted multi-objective score (higher is better).
	Fitness float64 `json:"fitness"`
	// Cost, MarginHours and WasteHours are the fitness components.
	Cost        float64 `json:"cost"`
	MarginHours float64 `json:"margin_hours"`
	WasteHours  float64 `json:"waste_hours"`
	// Outcome is the underlying run summary.
	Outcome Outcome `json:"outcome"`
}

// SearchResult summarises one tuner search.
type SearchResult struct {
	// Best is the highest-fitness configuration found; by construction
	// Best.Fitness >= Default.Fitness (the default genome is always in
	// the grid stage).
	Best Eval `json:"best"`
	// Default is the paper-default genome's evaluation on the same
	// configuration, for comparison.
	Default Eval `json:"default"`
	// Evaluated counts distinct genomes simulated (cache hits from a
	// resumed checkpoint excluded).
	Evaluated int `json:"evaluated"`
	// Decisions counts Adaptive decision points simulated by this
	// process during the search (search throughput numerator).
	Decisions int64 `json:"decisions"`
	// Generations is how many evolutionary generations ran.
	Generations int `json:"generations"`
}

// tunerState is the atomic-rename checkpoint a killed search resumes
// from: the evaluation cache plus the next generation to run. Resuming
// is deterministic — the same seed and weights produce the same final
// result whether or not the search was interrupted.
type tunerState struct {
	// Seed and Weights fingerprint the search; a mismatching checkpoint
	// is rejected rather than silently blended.
	Seed    uint64  `json:"seed"`
	Weights Weights `json:"weights"`
	// NextGen is the next evolutionary generation to run (0 = grid
	// stage done, evolution not started).
	NextGen int `json:"next_gen"`
	// GridDone marks the grid stage complete.
	GridDone bool `json:"grid_done"`
	// Evals is the evaluation cache.
	Evals []Eval `json:"evals"`
	// Evaluated counts genomes simulated across all processes.
	Evaluated int `json:"evaluated"`
}

// Tuner searches the Adaptive hyperparameter space against one run
// configuration: a deterministic grid stage (the default genome plus
// single-axis variations) followed by a seeded evolutionary stage
// (mutation + crossover of the elite population), both parallelized on
// internal/pool. The search is deterministic for a fixed Seed and
// resumable from StatePath.
type Tuner struct {
	// Cfg is the run configuration genomes are evaluated on.
	Cfg sim.Config
	// Weights is the fitness weighting; zero value selects
	// DefaultWeights.
	Weights Weights
	// Seed drives the evolutionary stage's random stream.
	Seed uint64
	// Workers bounds the evaluation fan-out; 0 selects GOMAXPROCS.
	Workers int
	// Population is the elite/offspring size; 0 selects 12.
	Population int
	// Generations is the evolutionary budget; 0 selects 6.
	Generations int
	// StatePath, when non-empty, checkpoints the search after the grid
	// stage and after every generation (atomic rename), and resumes
	// from an existing checkpoint.
	StatePath string
	// Log, when non-nil, receives one progress line per stage.
	Log io.Writer

	counter CountingSink
}

func (t *Tuner) weights() Weights {
	if t.Weights == (Weights{}) {
		return DefaultWeights()
	}
	return t.Weights
}

func (t *Tuner) population() int {
	if t.Population <= 0 {
		return 12
	}
	return t.Population
}

func (t *Tuner) generations() int {
	if t.Generations <= 0 {
		return 6
	}
	return t.Generations
}

// logf writes one progress line when logging is enabled.
func (t *Tuner) logf(format string, args ...any) {
	if t.Log != nil {
		fmt.Fprintf(t.Log, format+"\n", args...)
	}
}

// evalGenome simulates one genome on the tuner's configuration and
// scores it.
func (t *Tuner) evalGenome(g Genome) (Eval, error) {
	a := g.Adaptive()
	a.Sink = &t.counter
	var out Outcome
	err := sim.RunPooled(t.Cfg, a, func(res *sim.Result) { out = Summarize(res) })
	if err != nil {
		return Eval{}, fmt.Errorf("decision: genome %s: %w", g.Key(), err)
	}
	deadline := t.Cfg.Trace.Start() + t.Cfg.Deadline
	margin := float64(deadline-out.FinishTime) / float64(trace.Hour)
	waste := float64(out.ReworkSeconds+out.OverheadSeconds) / float64(trace.Hour)
	w := t.weights()
	fit := -w.Cost*out.Cost + w.Margin*margin - w.Waste*waste
	if !out.Completed || !out.DeadlineMet {
		fit -= 1e6
	}
	return Eval{Genome: g, Fitness: fit, Cost: out.Cost, MarginHours: margin, WasteHours: waste, Outcome: out}, nil
}

// evalAll evaluates every genome not in the cache (deduplicated, input
// order preserved) across the worker pool and folds the results into
// the cache and the checkpoint state.
func (t *Tuner) evalAll(genomes []Genome, cache map[string]Eval, st *tunerState) error {
	var fresh []Genome
	seen := make(map[string]bool)
	for _, g := range genomes {
		k := g.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		if _, ok := cache[k]; ok {
			continue
		}
		fresh = append(fresh, g)
	}
	evals := make([]Eval, len(fresh))
	err := pool.RunErr(t.Workers, len(fresh), func(i int) error {
		ev, err := t.evalGenome(fresh[i])
		evals[i] = ev
		return err
	})
	if err != nil {
		return err
	}
	for _, ev := range evals {
		cache[ev.Genome.Key()] = ev
		st.Evals = append(st.Evals, ev)
	}
	st.Evaluated += len(fresh)
	return nil
}

// gridGenomes is the deterministic stage-one lattice: the default
// genome first (anchoring the no-worse-than-default guarantee), then
// single-axis variations around it.
func (t *Tuner) gridGenomes() []Genome {
	def := DefaultGenome()
	out := []Genome{def}
	vary := func(mut func(Genome) Genome) {
		out = append(out, mut(def).clamp())
	}
	for _, lo := range []float64{0.17, 0.47, 0.81} {
		lo := lo
		vary(func(g Genome) Genome { g.BidLo = lo; return g })
	}
	for _, hi := range []float64{1.67, 2.47} {
		hi := hi
		vary(func(g Genome) Genome { g.BidHi = hi; return g })
	}
	for _, step := range []float64{0.10, 0.40} {
		step := step
		vary(func(g Genome) Genome { g.BidStep = step; return g })
	}
	for _, wh := range []int{6, 18, 24} {
		wh := wh
		vary(func(g Genome) Genome { g.WindowHours = wh; return g })
	}
	for _, h := range []float64{0.01, 0.08} {
		h := h
		vary(func(g Genome) Genome { g.Headroom = h; return g })
	}
	for _, c := range []float64{0.01, 0.05} {
		c := c
		vary(func(g Genome) Genome { g.Churn = c; return g })
	}
	for _, z := range []int{1, 2} {
		z := z
		vary(func(g Genome) Genome { g.MaxZones = z; return g })
	}
	return out
}

// topEvals returns the cache's evaluations best-first (fitness
// descending, genome key ascending for determinism).
func topEvals(cache map[string]Eval) []Eval {
	out := make([]Eval, 0, len(cache))
	for _, ev := range cache {
		out = append(out, ev)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fitness != out[j].Fitness {
			return out[i].Fitness > out[j].Fitness
		}
		return out[i].Genome.Key() < out[j].Genome.Key()
	})
	return out
}

// mutate perturbs one to three axes of a genome.
func mutate(rng *rand.Rand, g Genome) Genome {
	for hops := 1 + rng.IntN(3); hops > 0; hops-- {
		switch rng.IntN(7) {
		case 0:
			g.BidLo += []float64{-0.20, -0.10, 0.10, 0.20}[rng.IntN(4)]
		case 1:
			g.BidHi += []float64{-0.60, -0.20, 0.20, 0.60}[rng.IntN(4)]
		case 2:
			g.BidStep *= []float64{0.5, 2}[rng.IntN(2)]
		case 3:
			g.WindowHours += []int{-6, -2, 2, 6}[rng.IntN(4)]
		case 4:
			g.Headroom *= []float64{0.5, 2}[rng.IntN(2)]
		case 5:
			g.Churn *= []float64{0.5, 2}[rng.IntN(2)]
		case 6:
			g.MaxZones += []int{-1, 1}[rng.IntN(2)]
		}
	}
	return g.clamp()
}

// crossover mixes two genomes axis-by-axis.
func crossover(rng *rand.Rand, a, b Genome) Genome {
	pick := func(x, y float64) float64 {
		if rng.IntN(2) == 0 {
			return x
		}
		return y
	}
	g := Genome{
		BidLo:    pick(a.BidLo, b.BidLo),
		BidHi:    pick(a.BidHi, b.BidHi),
		BidStep:  pick(a.BidStep, b.BidStep),
		Headroom: pick(a.Headroom, b.Headroom),
		Churn:    pick(a.Churn, b.Churn),
	}
	if rng.IntN(2) == 0 {
		g.WindowHours = a.WindowHours
	} else {
		g.WindowHours = b.WindowHours
	}
	if rng.IntN(2) == 0 {
		g.MaxZones = a.MaxZones
	} else {
		g.MaxZones = b.MaxZones
	}
	return g.clamp()
}

// spawn derives one generation of offspring from the elite population:
// half mutations, half crossovers (mutated at half rate).
func (t *Tuner) spawn(rng *rand.Rand, elites []Eval) []Genome {
	n := t.population()
	out := make([]Genome, 0, n)
	parent := func() Genome { return elites[rng.IntN(len(elites))].Genome }
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			out = append(out, mutate(rng, parent()))
		} else {
			child := crossover(rng, parent(), parent())
			if rng.IntN(2) == 0 {
				child = mutate(rng, child)
			}
			out = append(out, child)
		}
	}
	return out
}

// loadState loads the checkpoint, returning a fresh state when no
// checkpoint exists and an error when one exists but was written by a
// differently-parameterised search.
func (t *Tuner) loadState() (*tunerState, error) {
	st := &tunerState{Seed: t.Seed, Weights: t.weights()}
	if t.StatePath == "" {
		return st, nil
	}
	data, err := os.ReadFile(t.StatePath)
	if os.IsNotExist(err) {
		return st, nil
	}
	if err != nil {
		return nil, err
	}
	var loaded tunerState
	if err := json.Unmarshal(data, &loaded); err != nil {
		return nil, fmt.Errorf("decision: bad tuner checkpoint %s: %w", t.StatePath, err)
	}
	if loaded.Seed != t.Seed || loaded.Weights != t.weights() {
		return nil, fmt.Errorf("decision: checkpoint %s was written by a different search (seed/weights mismatch)", t.StatePath)
	}
	return &loaded, nil
}

// saveState checkpoints the search via write-to-temp + atomic rename.
func (t *Tuner) saveState(st *tunerState) error {
	if t.StatePath == "" {
		return nil
	}
	data, err := json.MarshalIndent(st, "", " ")
	if err != nil {
		return err
	}
	tmp := t.StatePath + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, t.StatePath)
}

// Search runs the grid stage and the evolutionary stage to completion
// and returns the best configuration found. For a fixed Seed the result
// is reproducible, including across kill-and-resume via StatePath.
func (t *Tuner) Search() (*SearchResult, error) {
	if err := t.Cfg.Validate(); err != nil {
		return nil, err
	}
	st, err := t.loadState()
	if err != nil {
		return nil, err
	}
	cache := make(map[string]Eval, len(st.Evals))
	for _, ev := range st.Evals {
		cache[ev.Genome.Key()] = ev
	}
	if !st.GridDone {
		grid := t.gridGenomes()
		if err := t.evalAll(grid, cache, st); err != nil {
			return nil, err
		}
		st.GridDone = true
		if err := t.saveState(st); err != nil {
			return nil, err
		}
		t.logf("grid: %d genomes, best fitness %.4f", len(grid), topEvals(cache)[0].Fitness)
	}
	gens := t.generations()
	for gen := st.NextGen; gen < gens; gen++ {
		// Reseeding per generation from (Seed, gen) makes each
		// generation a pure function of the cache state before it, so a
		// resumed search replays the identical stream.
		rng := rand.New(rand.NewPCG(t.Seed, uint64(gen)+1))
		elites := topEvals(cache)
		if n := t.population(); len(elites) > n {
			elites = elites[:n]
		}
		children := t.spawn(rng, elites)
		if err := t.evalAll(children, cache, st); err != nil {
			return nil, err
		}
		st.NextGen = gen + 1
		if err := t.saveState(st); err != nil {
			return nil, err
		}
		t.logf("gen %d: best fitness %.4f (%d evaluated)", gen, topEvals(cache)[0].Fitness, st.Evaluated)
	}
	best := topEvals(cache)[0]
	def, ok := cache[DefaultGenome().Key()]
	if !ok {
		return nil, fmt.Errorf("decision: default genome missing from cache")
	}
	return &SearchResult{
		Best:        best,
		Default:     def,
		Evaluated:   st.Evaluated,
		Decisions:   t.counter.Count(),
		Generations: gens,
	}, nil
}
