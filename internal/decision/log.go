package decision

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"

	"repro/internal/core"
)

// DefaultLogCapacity is the ring capacity NewLog selects for
// non-positive requests.
const DefaultLogCapacity = 1024

// Log is the bounded decision sink services mount: a fixed-capacity
// ring of the most recent decisions (oldest overwritten first) plus an
// optional append-only JSON-lines writer. Recording is
// allocation-bounded: once the ring has wrapped and its per-slot slice
// backings have grown to the decision shape, RecordDecision allocates
// nothing. A Log is safe for concurrent use.
type Log struct {
	mu      sync.Mutex
	ring    []Record
	next    int // write cursor once the ring has wrapped
	total   uint64
	autoSeq int
	w       io.Writer
	werrs   uint64
	encBuf  []byte
}

// NewLog returns a ring log holding capacity records (non-positive
// selects DefaultLogCapacity). When w is non-nil every record is also
// appended to it as one JSON line; write errors are counted, not
// propagated (recording never fails the simulation).
func NewLog(capacity int, w io.Writer) *Log {
	if capacity <= 0 {
		capacity = DefaultLogCapacity
	}
	return &Log{ring: make([]Record, 0, capacity), w: w}
}

// RecordDecision implements core.DecisionSink: deep-copy the point into
// the ring (reusing the slot's slice backings) and append its JSON line
// to the writer, if any. Points with a negative Seq are assigned the
// log's own sequence.
func (l *Log) RecordDecision(p core.DecisionPoint) {
	l.mu.Lock()
	defer l.mu.Unlock()
	seq := p.Seq
	if seq < 0 {
		seq = l.autoSeq
	}
	l.autoSeq++
	var dst *Record
	if len(l.ring) < cap(l.ring) {
		l.ring = l.ring[:len(l.ring)+1]
		dst = &l.ring[len(l.ring)-1]
	} else {
		dst = &l.ring[l.next]
		l.next = (l.next + 1) % len(l.ring)
	}
	copyPoint(dst, p, seq)
	l.total++
	if l.w != nil {
		l.encBuf = AppendRecord(l.encBuf[:0], dst)
		l.encBuf = append(l.encBuf, '\n')
		if _, err := l.w.Write(l.encBuf); err != nil {
			l.werrs++
		}
	}
}

// Records returns a deep copy of the ring's contents, oldest first.
func (l *Log) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, 0, len(l.ring))
	appendCopy := func(src []Record) {
		for i := range src {
			var rec Record
			rec.Seq = src[i].Seq
			rec.Time = src[i].Time
			rec.Trigger = src[i].Trigger
			rec.Switched = src[i].Switched
			rec.Chosen = Alt{Bid: src[i].Chosen.Bid, Zones: append([]int(nil), src[i].Chosen.Zones...), Policy: src[i].Chosen.Policy, Cost: src[i].Chosen.Cost}
			if len(src[i].Ranked) > 0 {
				rec.Ranked = make([]Alt, len(src[i].Ranked))
				for j, a := range src[i].Ranked {
					rec.Ranked[j] = Alt{Bid: a.Bid, Zones: append([]int(nil), a.Zones...), Policy: a.Policy, Cost: a.Cost}
				}
			}
			out = append(out, rec)
		}
	}
	if len(l.ring) == cap(l.ring) {
		appendCopy(l.ring[l.next:])
		appendCopy(l.ring[:l.next])
	} else {
		appendCopy(l.ring)
	}
	return out
}

// Total returns how many decisions have ever been recorded (including
// those the ring has since overwritten).
func (l *Log) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Capacity returns the ring capacity.
func (l *Log) Capacity() int { return cap(l.ring) }

// WriteErrors returns how many JSON-line writes have failed.
func (l *Log) WriteErrors() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.werrs
}

// logDump is the /debug/decisions response shape.
type logDump struct {
	// Total counts every decision ever recorded.
	Total uint64 `json:"total"`
	// Capacity is the ring size.
	Capacity int `json:"capacity"`
	// Records holds the retained decisions, oldest first.
	Records []Record `json:"records"`
}

// Handler returns the /debug/decisions HTTP handler: a JSON dump of the
// ring's retained decisions, oldest first, with the lifetime total and
// the ring capacity.
func (l *Log) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		recs := l.Records()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		_ = enc.Encode(logDump{Total: l.Total(), Capacity: l.Capacity(), Records: recs})
	})
}
