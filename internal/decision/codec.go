package decision

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// AppendRecord appends the record's canonical JSON-line encoding (no
// trailing newline) to dst and returns the extended slice. The encoding
// is deterministic — fixed field order, shortest round-tripping float
// form — so identical records encode to identical bytes, which the
// round-trip fuzz target and the golden fixtures rely on. Non-finite
// costs are clamped to math.MaxFloat64 (JSON has no Inf/NaN).
func AppendRecord(dst []byte, r *Record) []byte {
	dst = append(dst, `{"seq":`...)
	dst = strconv.AppendInt(dst, int64(r.Seq), 10)
	dst = append(dst, `,"time":`...)
	dst = strconv.AppendInt(dst, r.Time, 10)
	dst = append(dst, `,"trigger":`...)
	dst = appendJSONString(dst, r.Trigger)
	dst = append(dst, `,"switched":`...)
	dst = strconv.AppendBool(dst, r.Switched)
	dst = append(dst, `,"chosen":`...)
	dst = appendAlt(dst, &r.Chosen)
	if len(r.Ranked) > 0 {
		dst = append(dst, `,"ranked":[`...)
		for i := range r.Ranked {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendAlt(dst, &r.Ranked[i])
		}
		dst = append(dst, ']')
	}
	return append(dst, '}')
}

// appendAlt appends one alternative's JSON object.
func appendAlt(dst []byte, a *Alt) []byte {
	dst = append(dst, `{"bid":`...)
	dst = appendJSONFloat(dst, a.Bid)
	if len(a.Zones) > 0 {
		dst = append(dst, `,"zones":[`...)
		for i, z := range a.Zones {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = strconv.AppendInt(dst, int64(z), 10)
		}
		dst = append(dst, ']')
	}
	dst = append(dst, `,"policy":`...)
	dst = appendJSONString(dst, a.Policy)
	dst = append(dst, `,"cost":`...)
	dst = appendJSONFloat(dst, a.Cost)
	return append(dst, '}')
}

// appendJSONFloat appends a float in its shortest round-tripping form,
// clamping non-finite values to math.MaxFloat64.
func appendJSONFloat(dst []byte, v float64) []byte {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		v = math.MaxFloat64
	}
	return strconv.AppendFloat(dst, v, 'g', -1, 64)
}

// appendJSONString appends a JSON string literal, escaping quotes,
// backslashes and control characters (\u00XX form).
func appendJSONString(dst []byte, s string) []byte {
	const hex = "0123456789abcdef"
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			dst = append(dst, '\\', c)
		case c < 0x20:
			dst = append(dst, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		default:
			dst = append(dst, c)
		}
	}
	return append(dst, '"')
}

// ParseRecord decodes one JSON line into a record.
func ParseRecord(line []byte) (Record, error) {
	var r Record
	if err := json.Unmarshal(line, &r); err != nil {
		return Record{}, fmt.Errorf("decision: bad record: %w", err)
	}
	return r, nil
}

// ReadRecords decodes a JSON-lines decision log, skipping blank lines.
func ReadRecords(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		rec, err := ParseRecord(line)
		if err != nil {
			return nil, fmt.Errorf("decision: line %d: %w", len(out)+1, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteRecords encodes records as JSON lines, one per record.
func WriteRecords(w io.Writer, records []Record) error {
	var buf []byte
	for i := range records {
		buf = AppendRecord(buf[:0], &records[i])
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}
