package decision

import (
	"sync"
	"testing"
)

// benchState shares one recorded baseline across the replay benchmarks
// so setup cost (and the digest cross-check) runs once.
var benchState struct {
	once  sync.Once
	r     *Replayer
	log   []Record
	seq   int
	rival Alt
}

// benchSetup records the baseline once and picks the forced rival: the
// first rival of the final decision — the longest pinned prefix, where
// scripted replay's advantage over naive re-simulation is the whole
// point. The scripted and naive digests are cross-checked here, outside
// the timed region.
func benchSetup(b *testing.B) {
	benchState.once.Do(func() {
		// The matrix cells use a deliberately tiny evaluation grid; the
		// benchmark runs the paper's full §7 grid (15 bids × N<=3 × 2
		// policies), which is what a production replay sweeps and what
		// the naive path pays for on every pinned-prefix decision.
		r := cellReplayer(cell{regime: "high", seed: 13, cands: "both"})
		r.New = nil
		_, log, err := r.Baseline()
		if err != nil {
			b.Fatal(err)
		}
		seq := len(log) - 1
		tasks := r.rivalsOf(&log[seq])
		if len(tasks) == 0 {
			b.Fatal("no rivals at final decision")
		}
		benchState.r, benchState.log, benchState.seq, benchState.rival = r, log, seq, tasks[0].rival

		fast, _, err := r.Counterfactual(log, seq, tasks[0].rival)
		if err != nil {
			b.Fatal(err)
		}
		naive := *r
		naive.Naive = true
		slow, _, err := naive.Counterfactual(log, seq, tasks[0].rival)
		if err != nil {
			b.Fatal(err)
		}
		if fast.Digest != slow.Digest {
			b.Fatalf("bench paths diverge: fast %s naive %s", fast.Digest, slow.Digest)
		}
	})
	if benchState.r == nil {
		b.Fatal("bench setup failed earlier")
	}
}

// BenchmarkCounterfactualReplay measures one scripted counterfactual:
// pinned prefix (no evaluator sweeps), forced rival, pooled machine.
// scripts/bench.sh gates its speedup over BenchmarkCounterfactualNaive
// at >=3x.
func BenchmarkCounterfactualReplay(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := benchState.r.Counterfactual(benchState.log, benchState.seq, benchState.rival); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCounterfactualNaive measures the same counterfactual the
// naive way: the live strategy re-runs every prefix evaluation sweep
// from scratch on a fresh machine.
func BenchmarkCounterfactualNaive(b *testing.B) {
	benchSetup(b)
	naive := *benchState.r
	naive.Naive = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := naive.Counterfactual(benchState.log, benchState.seq, benchState.rival); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTunerSearch measures one minimal grid+evolution search and
// reports throughput as decisions simulated per second.
func BenchmarkTunerSearch(b *testing.B) {
	b.ReportAllocs()
	var decisions int64
	for i := 0; i < b.N; i++ {
		tn := &Tuner{Cfg: tunerConfig(31), Seed: 7, Population: 2, Generations: 1}
		res, err := tn.Search()
		if err != nil {
			b.Fatal(err)
		}
		decisions += res.Decisions
	}
	b.ReportMetric(float64(decisions)/b.Elapsed().Seconds(), "decisions/s")
}
