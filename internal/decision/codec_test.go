package decision

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

// sampleRecords covers the encoder's edge shapes: empty rivals, empty
// zones, negative and extreme floats, escaped strings.
func sampleRecords() []Record {
	return []Record{
		{Seq: 0, Time: 432000, Trigger: "begin", Switched: true,
			Chosen: Alt{Bid: 0.81, Zones: []int{0, 2}, Policy: "periodic", Cost: 14.25},
			Ranked: []Alt{
				{Bid: 0.81, Zones: []int{0, 2}, Policy: "periodic", Cost: 14.25},
				{Bid: 0.47, Zones: []int{1}, Policy: "markov-daly", Cost: 15.5},
			}},
		{Seq: 1, Time: 435600, Trigger: "hour-boundary", Switched: false,
			Chosen: Alt{Bid: 2.40, Policy: "on-demand", Cost: 0}},
		{Seq: 2, Time: 439200, Trigger: `weird"trigger\with`, Switched: false,
			Chosen: Alt{Bid: 1e-7, Zones: []int{3}, Policy: "p\x01q", Cost: -3.25}},
		{Seq: 3, Time: -1, Trigger: "provider-kill", Switched: true,
			Chosen: Alt{Bid: math.MaxFloat64, Zones: []int{0}, Policy: "periodic", Cost: math.MaxFloat64}},
	}
}

// TestRecordRoundTrip checks encode → decode → encode is the identity
// on both the value and the bytes.
func TestRecordRoundTrip(t *testing.T) {
	for i, rec := range sampleRecords() {
		line := AppendRecord(nil, &rec)
		got, err := ParseRecord(line)
		if err != nil {
			t.Fatalf("record %d: %v\n%s", i, err, line)
		}
		if !reflect.DeepEqual(got, rec) {
			t.Fatalf("record %d round-trip changed the value:\nin  %+v\nout %+v", i, rec, got)
		}
		again := AppendRecord(nil, &got)
		if !bytes.Equal(line, again) {
			t.Fatalf("record %d re-encode not byte-identical:\n%s\n%s", i, line, again)
		}
	}
}

// TestRecordEncodeClampsNonFinite verifies Inf/NaN predicted costs
// encode as valid JSON (clamped to MaxFloat64) rather than crashing the
// log writer.
func TestRecordEncodeClampsNonFinite(t *testing.T) {
	rec := Record{Trigger: "begin", Chosen: Alt{Bid: 0.81, Policy: "periodic", Cost: math.Inf(1)},
		Ranked: []Alt{{Bid: 0.81, Policy: "periodic", Cost: math.NaN()}}}
	line := AppendRecord(nil, &rec)
	got, err := ParseRecord(line)
	if err != nil {
		t.Fatalf("clamped record does not parse: %v\n%s", err, line)
	}
	if got.Chosen.Cost != math.MaxFloat64 || got.Ranked[0].Cost != math.MaxFloat64 {
		t.Fatalf("non-finite costs not clamped: %+v", got)
	}
}

// TestReadWriteRecords round-trips a multi-record JSON-lines stream,
// including blank lines.
func TestReadWriteRecords(t *testing.T) {
	recs := sampleRecords()
	var buf bytes.Buffer
	if err := WriteRecords(&buf, recs); err != nil {
		t.Fatal(err)
	}
	withBlanks := strings.ReplaceAll(buf.String(), "\n", "\n\n")
	got, err := ReadRecords(strings.NewReader(withBlanks))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("stream round-trip changed records:\nin  %+v\nout %+v", recs, got)
	}
}

// TestReadRecordsRejectsGarbage checks a corrupt line surfaces a parse
// error naming the line.
func TestReadRecordsRejectsGarbage(t *testing.T) {
	_, err := ReadRecords(strings.NewReader("{\"seq\":0,\"time\":1,\"trigger\":\"begin\",\"switched\":false,\"chosen\":{\"bid\":1,\"policy\":\"p\",\"cost\":1}}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("corrupt line not reported: %v", err)
	}
}
