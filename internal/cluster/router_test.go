package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/quote"
)

// validBody is a decodable quote request for routing tests; the echo
// backends never evaluate it.
const validBody = `{"work_hours":4,"deadline_hours":8,"history_window":3}`

// echoBackend answers 200 with its name and the request body, so tests
// can verify which backend served and that the body survived failover.
func echoBackend(name string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		fmt.Fprintf(w, "%s:%s", name, body)
	})
}

// failingBackend always answers 500.
func failingBackend() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
}

// postQuote drives one request through the router handler.
func postQuote(h http.Handler, body, tenant string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/v1/quote", strings.NewReader(body))
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestRouterAffinityPinsRequests checks that identical request bodies
// always land on the same backend while the workload as a whole
// spreads across the fleet.
func TestRouterAffinityPinsRequests(t *testing.T) {
	r := &Router{
		Backends: []*Backend{
			NewBackend("b0", echoBackend("b0")),
			NewBackend("b1", echoBackend("b1")),
			NewBackend("b2", echoBackend("b2")),
		},
		Policy: NewAffinity(),
	}
	h := r.Handler()

	first := postQuote(h, validBody, "").Header().Get("X-Backend")
	for i := 0; i < 10; i++ {
		if got := postQuote(h, validBody, "").Header().Get("X-Backend"); got != first {
			t.Fatalf("identical request moved backend %q → %q", first, got)
		}
	}
	seen := map[string]bool{}
	for w := 1; w <= 24; w++ {
		body := fmt.Sprintf(`{"work_hours":%d,"deadline_hours":%d,"history_window":3}`, w, 2*w)
		rec := postQuote(h, body, "")
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d returned %d", w, rec.Code)
		}
		seen[rec.Header().Get("X-Backend")] = true
	}
	if len(seen) < 2 {
		t.Fatalf("24 distinct shapes all routed to %v; affinity is not spreading", seen)
	}
}

// TestRouterFailoverAndEjection kills one backend and checks the
// client never sees it: requests fail over with intact bodies, the
// breaker ejects the backend after Threshold failures, and traffic
// stops reaching the corpse.
func TestRouterFailoverAndEjection(t *testing.T) {
	dead := NewBackend("b0", failingBackend())
	dead.Breaker = &quote.Breaker{Threshold: 2, Cooldown: time.Hour}
	live := NewBackend("b1", echoBackend("b1"))
	r := &Router{Backends: []*Backend{dead, live}, Policy: NewRoundRobin()}
	h := r.Handler()

	for i := 0; i < 6; i++ {
		rec := postQuote(h, validBody, "")
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d returned %d, want failover to 200", i, rec.Code)
		}
		if got := rec.Header().Get("X-Backend"); got != "b1" {
			t.Fatalf("request %d served by %q, want b1", i, got)
		}
		if got := rec.Body.String(); got != "b1:"+validBody {
			t.Fatalf("request %d body %q: request body did not survive failover", i, got)
		}
	}
	if dead.Available() {
		t.Fatal("failing backend still routable after threshold failures")
	}
	m := r.Stats()
	if m.Ejections.Load() != 1 {
		t.Fatalf("ejections = %d, want 1", m.Ejections.Load())
	}
	// Round-robin prefers b0 on every other request; with b0 ejected
	// only the 2 pre-ejection attempts may have reached it.
	if got := dead.Failures(); got != 2 {
		t.Fatalf("dead backend saw %d forwards, want exactly the 2 pre-ejection attempts", got)
	}
	if m.Failovers.Load() != 2 {
		t.Fatalf("failovers = %d, want 2 (one per pre-ejection attempt)", m.Failovers.Load())
	}
}

// TestRouterAllBackendsDead checks the 503 path and the degraded
// /healthz once the whole fleet is ejected.
func TestRouterAllBackendsDead(t *testing.T) {
	mk := func(name string) *Backend {
		b := NewBackend(name, failingBackend())
		b.Breaker = &quote.Breaker{Threshold: 1, Cooldown: time.Hour}
		return b
	}
	r := &Router{Backends: []*Backend{mk("b0"), mk("b1")}}
	h := r.Handler()

	rec := postQuote(h, validBody, "")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("all-dead fleet returned %d, want 503", rec.Code)
	}
	var envelope struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &envelope); err != nil || envelope.Error == "" {
		t.Fatalf("bad 503 envelope %q (%v)", rec.Body.String(), err)
	}
	if got := r.Stats().Unroutable.Load(); got != 1 {
		t.Fatalf("unroutable = %d, want 1", got)
	}
	hz := httptest.NewRecorder()
	h.ServeHTTP(hz, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if hz.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz = %d with no routable backends, want 503", hz.Code)
	}
}

// TestRouterQuota checks per-tenant admission: the configured tenant
// is throttled at its own quota with a 429 envelope and the dedicated
// metric, while other tenants are untouched.
func TestRouterQuota(t *testing.T) {
	r := &Router{
		Backends: []*Backend{NewBackend("b0", echoBackend("b0"))},
		Limiter: &Limiter{
			Tenants: map[string]Quota{"acme": {Rate: 1, Burst: 2}},
		},
	}
	h := r.Handler()

	codes := []int{}
	for i := 0; i < 4; i++ {
		codes = append(codes, postQuote(h, validBody, "acme").Code)
	}
	if codes[0] != http.StatusOK || codes[1] != http.StatusOK {
		t.Fatalf("burst requests returned %v, want 200s first", codes)
	}
	throttled := postQuote(h, validBody, "acme")
	if throttled.Code != http.StatusTooManyRequests {
		t.Fatalf("post-burst request returned %d, want 429", throttled.Code)
	}
	if got := throttled.Header().Get("Retry-After"); got == "" {
		t.Fatal("429 carries no Retry-After")
	}
	m := r.Stats()
	if m.QuotaRejected.Load() == 0 {
		t.Fatal("dedicated quota_rejected metric not incremented")
	}
	// The default bucket is unlimited here: other tenants sail through.
	if rec := postQuote(h, validBody, "other"); rec.Code != http.StatusOK {
		t.Fatalf("unconfigured tenant returned %d, want 200", rec.Code)
	}
	var buf strings.Builder
	m.Render(&buf)
	for _, want := range []string{"quotelb_quota_rejected_total", `quotelb_tenant_rejected_total{tenant="acme"}`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics exposition missing %q:\n%s", want, buf.String())
		}
	}
}

// TestRouterBadRequest checks malformed bodies die at the front door.
func TestRouterBadRequest(t *testing.T) {
	served := 0
	r := &Router{Backends: []*Backend{NewBackend("b0", http.HandlerFunc(func(http.ResponseWriter, *http.Request) { served++ }))}}
	h := r.Handler()
	rec := postQuote(h, `{"work_hours":`, "")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed body returned %d, want 400", rec.Code)
	}
	if served != 0 {
		t.Fatal("malformed body reached a backend")
	}
	if got := r.Stats().BadRequests.Load(); got != 1 {
		t.Fatalf("bad_requests = %d, want 1", got)
	}
}

// TestRouterProbeReadmission ejects a backend, lets it recover, and
// checks the probe loop readmits it.
func TestRouterProbeReadmission(t *testing.T) {
	var healthy bool
	var mu sync.Mutex
	b := NewBackend("b0", failingBackend())
	b.Breaker = &quote.Breaker{Threshold: 1, Cooldown: time.Millisecond}
	r := &Router{Backends: []*Backend{b, NewBackend("b1", echoBackend("b1"))}}
	h := r.Handler()

	if rec := postQuote(h, validBody, ""); rec.Code != http.StatusOK {
		t.Fatalf("failover request returned %d", rec.Code)
	}
	if b.Available() {
		t.Fatal("backend not ejected")
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		r.ProbeLoop(ctx, time.Millisecond, func(_ context.Context, _ *Backend) error {
			mu.Lock()
			defer mu.Unlock()
			if !healthy {
				return fmt.Errorf("still down")
			}
			return nil
		})
	}()

	time.Sleep(10 * time.Millisecond) // a few failing probes
	mu.Lock()
	healthy = true
	mu.Unlock()
	deadline := time.Now().Add(5 * time.Second)
	for !b.Available() {
		if time.Now().After(deadline) {
			t.Fatal("recovered backend never readmitted")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done
	if r.Stats().Readmissions.Load() == 0 {
		t.Fatal("readmissions metric not incremented")
	}
}

// TestRouterMetricsAndHealthz covers the local (non-routed) surface.
func TestRouterMetricsAndHealthz(t *testing.T) {
	r := &Router{Backends: []*Backend{NewBackend("b0", echoBackend("b0"))}}
	h := r.Handler()
	postQuote(h, validBody, "")

	hz := httptest.NewRecorder()
	h.ServeHTTP(hz, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if hz.Code != http.StatusOK || !strings.Contains(hz.Body.String(), "1/1") {
		t.Fatalf("healthz = %d %q", hz.Code, hz.Body.String())
	}
	mx := httptest.NewRecorder()
	h.ServeHTTP(mx, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	for _, want := range []string{
		"quotelb_requests_total 1",
		"quotelb_routed_total 1",
		`quotelb_backend_served_total{backend="b0"} 1`,
		`quotelb_latency_seconds{stage="route",quantile="0.99"}`,
	} {
		if !strings.Contains(mx.Body.String(), want) {
			t.Errorf("/metrics missing %q in:\n%s", want, mx.Body.String())
		}
	}
}

// TestRouterConcurrent hammers the router with every policy under the
// race detector.
func TestRouterConcurrent(t *testing.T) {
	for _, p := range Policies() {
		r := &Router{
			Backends: []*Backend{
				NewBackend("b0", echoBackend("b0")),
				NewBackend("b1", echoBackend("b1")),
				NewBackend("b2", echoBackend("b2")),
			},
			Policy: p,
		}
		h := r.Handler()
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					body := fmt.Sprintf(`{"work_hours":%d,"deadline_hours":%d,"history_window":3}`, 1+i%20, 2*(1+i%20))
					if rec := postQuote(h, body, ""); rec.Code != http.StatusOK {
						t.Errorf("%s: concurrent request returned %d", p.Name(), rec.Code)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		if got := r.Stats().Routed.Load(); got != 400 {
			t.Fatalf("%s: routed = %d, want 400", p.Name(), got)
		}
	}
}

// TestRouterFailoverHeaderFidelity pins the wire contract across the
// buffered failover: every quote header the winning backend sets —
// cache status, staleness, plan generation — reaches the client
// verbatim, with nothing leaked from the failed attempt.
func TestRouterFailoverHeaderFidelity(t *testing.T) {
	cases := []struct {
		name    string
		headers map[string]string
	}{
		{"cache hit", map[string]string{"X-Quote-Cache": "hit"}},
		{"stale degraded", map[string]string{"X-Quote-Cache": "stale", "X-Quote-Stale": "true"}},
		{"streamed generation", map[string]string{"X-Plan-Generation": "42", "X-Quote-Cache": "miss"}},
		{"stale stream", map[string]string{"X-Plan-Generation": "7", "X-Quote-Stale": "true"}},
	}
	for _, tc := range cases {
		dead := NewBackend("b0", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			// The corpse sets headers too; none of them may leak.
			w.Header().Set("X-Quote-Stale", "false")
			w.Header().Set("X-Plan-Generation", "999")
			http.Error(w, "boom", http.StatusInternalServerError)
		}))
		live := NewBackend("b1", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			for k, v := range tc.headers {
				w.Header().Set(k, v)
			}
			w.Write([]byte(`{"plans":[]}`))
		}))
		r := &Router{Backends: []*Backend{dead, live}, Policy: NewRoundRobin()}
		rec := postQuote(r.Handler(), validBody, "")
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d", tc.name, rec.Code)
		}
		for k, v := range tc.headers {
			if got := rec.Header().Get(k); got != v {
				t.Errorf("%s: header %s = %q, want %q", tc.name, k, got, v)
			}
		}
		for k, v := range map[string]string{"X-Backend": "b1"} {
			if got := rec.Header().Get(k); got != v {
				t.Errorf("%s: header %s = %q, want %q", tc.name, k, got, v)
			}
		}
		if tc.headers["X-Quote-Stale"] == "" && rec.Header().Get("X-Quote-Stale") != "" {
			t.Errorf("%s: X-Quote-Stale %q leaked from the failed attempt", tc.name, rec.Header().Get("X-Quote-Stale"))
		}
		if want, got := tc.headers["X-Plan-Generation"], rec.Header().Get("X-Plan-Generation"); want == "" && got != "" {
			t.Errorf("%s: X-Plan-Generation %q leaked from the failed attempt", tc.name, got)
		}
		if rec.Body.String() != `{"plans":[]}` {
			t.Errorf("%s: body %q polluted by failed attempt", tc.name, rec.Body.String())
		}
	}
}

// TestRouterStreamFailover drives the streaming route over a real
// connection: the first backend dies with a 5xx (its error body must
// be swallowed), the stream fails over at header time, and frames then
// flush through incrementally while the winning backend still holds
// the connection open.
func TestRouterStreamFailover(t *testing.T) {
	release := make(chan struct{})
	dead := NewBackend("b0", failingBackend())
	live := NewBackend("b1", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("work_hours") != "4" {
			t.Errorf("query lost in stream forward: %q", r.URL.RawQuery)
		}
		h := w.Header()
		h.Set("Content-Type", "text/event-stream")
		h.Set("X-Plan-Generation", "3")
		h.Set("X-Quote-Stale", "true")
		io.WriteString(w, "event: plan\ndata: {\"generation\":3}\n\n")
		w.(http.Flusher).Flush()
		<-release
		io.WriteString(w, "event: plan\ndata: {\"generation\":4}\n\n")
	}))
	r := &Router{Backends: []*Backend{dead, live}, Policy: NewRoundRobin()}
	front := httptest.NewServer(r.Handler())
	defer front.Close()
	defer close(release)

	resp, err := http.Get(front.URL + "/v1/quotes/stream?work_hours=4&deadline_hours=12")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want failover to 200", resp.StatusCode)
	}
	for k, v := range map[string]string{
		"X-Backend":         "b1",
		"X-Plan-Generation": "3",
		"X-Quote-Stale":     "true",
		"Content-Type":      "text/event-stream",
	} {
		if got := resp.Header.Get(k); got != v {
			t.Errorf("header %s = %q, want %q", k, got, v)
		}
	}

	br := bufio.NewReader(resp.Body)
	readUntil := func(substr string) string {
		var sb strings.Builder
		deadline := time.Now().Add(10 * time.Second)
		for !strings.Contains(sb.String(), substr) {
			if time.Now().After(deadline) {
				t.Fatalf("frame %q never arrived; got %q", substr, sb.String())
			}
			b, err := br.ReadByte()
			if err != nil {
				t.Fatalf("stream ended before %q: %v (got %q)", substr, err, sb.String())
			}
			sb.WriteByte(b)
		}
		return sb.String()
	}
	// First frame must arrive while b1 is blocked on release — proof the
	// router is not buffering the stream for failover.
	first := readUntil(`{"generation":3}`)
	if strings.Contains(first, "boom") {
		t.Fatalf("failed attempt's body leaked into the stream: %q", first)
	}
	release <- struct{}{}
	readUntil(`{"generation":4}`)

	if got := dead.Failures(); got != 1 {
		t.Errorf("dead backend failures = %d, want 1", got)
	}
	if got := r.Stats().Failovers.Load(); got != 1 {
		t.Errorf("failovers = %d, want 1", got)
	}
	if got := r.Stats().Routed.Load(); got != 1 {
		t.Errorf("routed = %d, want 1", got)
	}
}
