package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/quote"
)

// Router fans quote requests across a fleet of backends: admission
// control first, then policy-ordered forwarding with buffered failover
// — a backend answering 5xx (or a proxy answering 502 for a dead
// process) costs a breaker failure and the request silently moves to
// the next backend in the order, so a mid-run backend kill degrades to
// a failover, never to a client-visible error, as long as one backend
// survives. Fields are read at first use and must not change
// afterwards. A Router is safe for concurrent use.
type Router struct {
	// Backends is the fleet, in stable order; names must be unique.
	Backends []*Backend
	// Policy orders backends per request; nil selects round-robin.
	Policy Policy
	// Limiter is per-tenant admission control; nil admits everything.
	Limiter *Limiter
	// Metrics receives router counters; nil selects a private instance
	// (retrievable via Stats).
	Metrics *Metrics
	// MaxAttempts bounds forward attempts per request; 0 tries every
	// backend once.
	MaxAttempts int

	once sync.Once
}

// init lazily fills defaults and registers per-backend metrics.
func (r *Router) init() {
	r.once.Do(func() {
		if r.Policy == nil {
			r.Policy = NewRoundRobin()
		}
		if r.Metrics == nil {
			r.Metrics = NewMetrics()
		}
		r.Metrics.registerBackends(r.Backends)
		r.Metrics.registerTenants(r.Limiter)
	})
}

// Stats returns the router's metrics sink.
func (r *Router) Stats() *Metrics {
	r.init()
	return r.Metrics
}

// Available returns how many backends are currently routable.
func (r *Router) Available() int {
	n := 0
	for _, b := range r.Backends {
		if b.Available() {
			n++
		}
	}
	return n
}

// Handler returns the front door's HTTP surface:
//
//	POST /v1/quote           — routed to a backend (X-Backend names which)
//	GET  /v1/quotes/stream   — streaming plan pushes, failover at
//	                           response-header time, frames flushed through
//	GET  /healthz            — 200 while ≥1 backend is routable, else 503
//	GET  /metrics            — router counters and latency quantiles (text)
//
// Everything else is 404: the router deliberately exposes no backend
// debug surface.
func (r *Router) Handler() http.Handler {
	r.init()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/quote", r.route)
	mux.HandleFunc("GET /v1/quotes/stream", r.routeStream)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		avail := r.Available()
		if avail == 0 {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "degraded: 0/%d backends available\n", len(r.Backends))
			return
		}
		fmt.Fprintf(w, "ok: %d/%d backends available\n", avail, len(r.Backends))
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.Metrics.Render(w)
	})
	return mux
}

// route is the request path: decode → admit → order → forward with
// failover.
func (r *Router) route(w http.ResponseWriter, req *http.Request) {
	m := r.Metrics
	m.Requests.Inc()
	start := time.Now()

	body, err := io.ReadAll(io.LimitReader(req.Body, quote.MaxBodyBytes))
	if err != nil {
		m.BadRequests.Inc()
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: reading body: %v", quote.ErrInvalidRequest, err))
		return
	}
	qreq, err := quote.DecodeRequest(bytes.NewReader(body))
	if err != nil {
		// Reject malformed bodies at the front door: they could never
		// produce a plan, so burning a backend round-trip (and a
		// failover budget) on them only helps an attacker.
		m.BadRequests.Inc()
		writeError(w, http.StatusBadRequest, err)
		return
	}
	qreq.Normalize()

	tenant := req.Header.Get("X-Tenant")
	if r.Limiter != nil && !r.Limiter.Allow(tenant) {
		m.QuotaRejected.Inc()
		if tenant == "" {
			tenant = "default"
		}
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, fmt.Errorf("quota exhausted for tenant %q", tenant))
		return
	}

	span := obs.FromContext(req.Context())
	span.SetAttr("policy", r.Policy.Name())

	order := make([]int, len(r.Backends))
	r.Policy.Order(qreq.AffinityKey(), r.Backends, order)
	maxAttempts := r.MaxAttempts
	if maxAttempts <= 0 || maxAttempts > len(order) {
		maxAttempts = len(order)
	}

	attempts := 0
	for _, idx := range order {
		if attempts >= maxAttempts {
			break
		}
		b := r.Backends[idx]
		allowed, probe := b.Breaker.Allow()
		if !allowed {
			continue // ejected and still cooling down
		}
		if probe {
			m.Probes.Inc()
		}
		attempts++
		if attempts > 1 {
			m.Failovers.Inc()
		}

		cap := r.forward(req, b, body)
		if cap.code >= http.StatusInternalServerError {
			b.failures.Inc()
			if b.Breaker.Failure() {
				m.Ejections.Inc()
			}
			continue // buffered response: nothing reached the client yet
		}
		b.Breaker.Success()
		if probe {
			m.Readmissions.Inc()
		}
		b.served.Inc()
		m.Routed.Inc()
		span.SetAttr("backend", b.Name)
		if attempts > 1 {
			span.SetAttr("failovers", strconv.Itoa(attempts-1))
		}

		h := w.Header()
		for k, vs := range cap.header {
			h[k] = vs
		}
		h.Set("X-Backend", b.Name)
		w.WriteHeader(cap.code)
		w.Write(cap.body.Bytes())
		m.latency.Observe(time.Since(start).Seconds())
		return
	}
	m.Unroutable.Inc()
	writeError(w, http.StatusServiceUnavailable,
		fmt.Errorf("no backend available (%d/%d routable, %d attempts)", r.Available(), len(r.Backends), attempts))
}

// routeStream is the streaming request path. A stream cannot ride the
// buffered-failover capture — frames must reach the client while the
// backend still holds the connection — so the failover point moves to
// response-header time: a backend answering 5xx is discarded (its body
// swallowed) and the next backend in the order gets the stream; once a
// 2xx header commits, every subsequent frame is written through and
// flushed immediately, headers (X-Quote-Stale, X-Plan-Generation)
// intact.
func (r *Router) routeStream(w http.ResponseWriter, req *http.Request) {
	m := r.Metrics
	m.Requests.Inc()

	tenant := req.Header.Get("X-Tenant")
	if r.Limiter != nil && !r.Limiter.Allow(tenant) {
		m.QuotaRejected.Inc()
		if tenant == "" {
			tenant = "default"
		}
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, fmt.Errorf("quota exhausted for tenant %q", tenant))
		return
	}

	span := obs.FromContext(req.Context())
	span.SetAttr("policy", r.Policy.Name())

	order := make([]int, len(r.Backends))
	r.Policy.Order(streamAffinity(req.URL.RawQuery), r.Backends, order)
	maxAttempts := r.MaxAttempts
	if maxAttempts <= 0 || maxAttempts > len(order) {
		maxAttempts = len(order)
	}

	attempts := 0
	for _, idx := range order {
		if attempts >= maxAttempts {
			break
		}
		b := r.Backends[idx]
		allowed, probe := b.Breaker.Allow()
		if !allowed {
			continue
		}
		if probe {
			m.Probes.Inc()
		}
		attempts++
		if attempts > 1 {
			m.Failovers.Inc()
		}

		sc := &streamCapture{w: w, backend: b.Name, header: make(http.Header)}
		b.inflight.Add(1)
		b.Handler.ServeHTTP(sc, req)
		b.inflight.Add(-1)
		if sc.failed {
			b.failures.Inc()
			if b.Breaker.Failure() {
				m.Ejections.Inc()
			}
			continue // nothing reached the client: next backend
		}
		b.Breaker.Success()
		if probe {
			m.Readmissions.Inc()
		}
		b.served.Inc()
		m.Routed.Inc()
		span.SetAttr("backend", b.Name)
		if attempts > 1 {
			span.SetAttr("failovers", strconv.Itoa(attempts-1))
		}
		sc.commit() // a handler that wrote nothing still owes a header
		return
	}
	m.Unroutable.Inc()
	writeError(w, http.StatusServiceUnavailable,
		fmt.Errorf("no backend available (%d/%d routable, %d attempts)", r.Available(), len(r.Backends), attempts))
}

// streamAffinity hashes a stream's query string (FNV-64a) so affinity
// policies pin a subscription shape to a backend, mirroring
// quote.Request.AffinityKey for the one-shot path.
func streamAffinity(rawQuery string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, rawQuery)
	return h.Sum64()
}

// streamCapture is the streaming analogue of capture: it buffers only
// the response *header*. A 5xx commits nothing (the attempt can fail
// over); anything else writes the header through — with the backend's
// headers copied verbatim — and turns every subsequent Write into an
// immediately flushed client write.
type streamCapture struct {
	w       http.ResponseWriter
	backend string
	header  http.Header
	code    int
	failed  bool
}

// Header implements http.ResponseWriter.
func (c *streamCapture) Header() http.Header { return c.header }

// WriteHeader implements http.ResponseWriter: the failover decision
// point.
func (c *streamCapture) WriteHeader(code int) {
	if c.code != 0 {
		return
	}
	c.code = code
	if code >= http.StatusInternalServerError {
		c.failed = true
		return
	}
	h := c.w.Header()
	for k, vs := range c.header {
		h[k] = vs
	}
	h.Set("X-Backend", c.backend)
	c.w.WriteHeader(code)
}

// commit defaults an untouched response to 200 once the attempt is
// accepted.
func (c *streamCapture) commit() {
	if c.code == 0 {
		c.WriteHeader(http.StatusOK)
	}
}

// Write implements http.ResponseWriter, flushing each frame through.
func (c *streamCapture) Write(p []byte) (int, error) {
	if c.code == 0 {
		c.WriteHeader(http.StatusOK)
	}
	if c.failed {
		return len(p), nil // swallow the failed attempt's error body
	}
	n, err := c.w.Write(p)
	c.Flush()
	return n, err
}

// Flush implements http.Flusher so backends detect streaming support.
func (c *streamCapture) Flush() {
	if c.code == 0 || c.failed {
		return
	}
	if fl, ok := c.w.(http.Flusher); ok {
		fl.Flush()
	}
}

// forward replays the buffered request body against one backend and
// captures the full response so a failing attempt can be discarded and
// retried elsewhere without the client seeing partial output.
func (r *Router) forward(req *http.Request, b *Backend, body []byte) *capture {
	span := obs.FromContext(req.Context()).Child("lb.forward")
	span.SetAttr("backend", b.Name)
	defer span.End()

	attempt := req.Clone(req.Context())
	attempt.Body = io.NopCloser(bytes.NewReader(body))
	attempt.ContentLength = int64(len(body))

	cap := newCapture()
	b.inflight.Add(1)
	b.Handler.ServeHTTP(cap, attempt)
	b.inflight.Add(-1)
	if cap.code == 0 {
		cap.code = http.StatusOK
	}
	span.SetAttr("status", strconv.Itoa(cap.code))
	return cap
}

// ProbeLoop actively re-checks ejected backends every interval with
// check (e.g. a GET /healthz round-trip) until ctx is done, so a
// recovered backend rejoins the fleet without waiting for live traffic
// to spend a probe on it. Pacing is still the breaker's: an ejected
// backend is only checked once its cooldown admits a half-open probe.
func (r *Router) ProbeLoop(ctx context.Context, interval time.Duration, check func(context.Context, *Backend) error) {
	r.init()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		for _, b := range r.Backends {
			if b.Available() {
				continue
			}
			allowed, probe := b.Breaker.Allow()
			if !allowed || !probe {
				continue
			}
			r.Metrics.Probes.Inc()
			if err := check(ctx, b); err != nil {
				b.Breaker.Failure()
				continue
			}
			b.Breaker.Success()
			r.Metrics.Readmissions.Inc()
		}
	}
}

// capture is a buffered http.ResponseWriter: the router only flushes a
// captured response to the real client once an attempt is accepted.
type capture struct {
	header http.Header
	code   int
	body   bytes.Buffer
}

// newCapture returns an empty response buffer.
func newCapture() *capture { return &capture{header: make(http.Header)} }

// Header implements http.ResponseWriter.
func (c *capture) Header() http.Header { return c.header }

// WriteHeader implements http.ResponseWriter, keeping the first status.
func (c *capture) WriteHeader(code int) {
	if c.code == 0 {
		c.code = code
	}
}

// Write implements http.ResponseWriter, defaulting the status to 200.
func (c *capture) Write(p []byte) (int, error) {
	if c.code == 0 {
		c.code = http.StatusOK
	}
	return c.body.Write(p)
}

// writeError sends the quote service's JSON error envelope shape.
func writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{Error: err.Error()})
}
