package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/quote"
)

// Router fans quote requests across a fleet of backends: admission
// control first, then policy-ordered forwarding with buffered failover
// — a backend answering 5xx (or a proxy answering 502 for a dead
// process) costs a breaker failure and the request silently moves to
// the next backend in the order, so a mid-run backend kill degrades to
// a failover, never to a client-visible error, as long as one backend
// survives. Fields are read at first use and must not change
// afterwards. A Router is safe for concurrent use.
type Router struct {
	// Backends is the fleet, in stable order; names must be unique.
	Backends []*Backend
	// Policy orders backends per request; nil selects round-robin.
	Policy Policy
	// Limiter is per-tenant admission control; nil admits everything.
	Limiter *Limiter
	// Metrics receives router counters; nil selects a private instance
	// (retrievable via Stats).
	Metrics *Metrics
	// MaxAttempts bounds forward attempts per request; 0 tries every
	// backend once.
	MaxAttempts int
	// Retry bounds failovers and hedges across requests (see Budget);
	// nil keeps the historical unbounded failover behavior.
	Retry *Budget
	// HedgeAfter, when positive, launches one speculative attempt at
	// the next backend if the first has not answered within it —
	// deadline-aware (skipped when the request's remaining deadline
	// cannot cover a hedge) and budget-gated like any retry. One-shot
	// quotes only; streams never hedge.
	HedgeAfter time.Duration

	once sync.Once
}

// init lazily fills defaults and registers per-backend metrics.
func (r *Router) init() {
	r.once.Do(func() {
		if r.Policy == nil {
			r.Policy = NewRoundRobin()
		}
		if r.Metrics == nil {
			r.Metrics = NewMetrics()
		}
		r.Metrics.registerBackends(r.Backends)
		r.Metrics.registerTenants(r.Limiter)
	})
}

// Stats returns the router's metrics sink.
func (r *Router) Stats() *Metrics {
	r.init()
	return r.Metrics
}

// Available returns how many backends are currently routable.
func (r *Router) Available() int {
	n := 0
	for _, b := range r.Backends {
		if b.Available() {
			n++
		}
	}
	return n
}

// Handler returns the front door's HTTP surface:
//
//	POST /v1/quote           — routed to a backend (X-Backend names which)
//	GET  /v1/quotes/stream   — streaming plan pushes, failover at
//	                           response-header time, frames flushed through
//	GET  /healthz            — 200 while ≥1 backend is routable, else 503
//	GET  /metrics            — router counters and latency quantiles (text)
//
// Everything else is 404: the router deliberately exposes no backend
// debug surface.
func (r *Router) Handler() http.Handler {
	r.init()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/quote", r.route)
	mux.HandleFunc("GET /v1/quotes/stream", r.routeStream)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		avail := r.Available()
		if avail == 0 {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "degraded: 0/%d backends available\n", len(r.Backends))
			return
		}
		fmt.Fprintf(w, "ok: %d/%d backends available\n", avail, len(r.Backends))
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.Metrics.Render(w)
	})
	return mux
}

// withdraw asks the retry budget for one failover or hedge token. A
// nil budget admits everything (the historical behavior); a configured
// one counts what it grants and what it refuses.
func (r *Router) withdraw() bool {
	if r.Retry == nil {
		return true
	}
	if r.Retry.Withdraw() {
		r.Metrics.Retries.Inc()
		return true
	}
	r.Metrics.RetrySuppressed.Inc()
	return false
}

// softFailure classifies a captured response as back-pressure rather
// than death: a 429, or a 503 that names its Retry-After. Such a
// backend is alive and shedding — failing over is budget-gated like
// any retry, but costs no breaker failure, and when every attempt
// sheds, the last shed response (Retry-After intact) is flushed to the
// client instead of a synthesized 503.
func softFailure(code int, header http.Header) bool {
	switch code {
	case http.StatusTooManyRequests:
		return true
	case http.StatusServiceUnavailable:
		return header.Get("Retry-After") != ""
	}
	return false
}

// route is the request path: decode → admit → order → forward with
// failover.
func (r *Router) route(w http.ResponseWriter, req *http.Request) {
	m := r.Metrics
	m.Requests.Inc()
	start := time.Now()

	body, err := io.ReadAll(io.LimitReader(req.Body, quote.MaxBodyBytes))
	if err != nil {
		m.BadRequests.Inc()
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: reading body: %v", quote.ErrInvalidRequest, err))
		return
	}
	qreq, err := quote.DecodeRequest(bytes.NewReader(body))
	if err != nil {
		// Reject malformed bodies at the front door: they could never
		// produce a plan, so burning a backend round-trip (and a
		// failover budget) on them only helps an attacker.
		m.BadRequests.Inc()
		writeError(w, http.StatusBadRequest, err)
		return
	}
	qreq.Normalize()

	tenant := req.Header.Get("X-Tenant")
	if r.Limiter != nil && !r.Limiter.Allow(tenant) {
		m.QuotaRejected.Inc()
		if tenant == "" {
			tenant = "default"
		}
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, fmt.Errorf("quota exhausted for tenant %q", tenant))
		return
	}

	span := obs.FromContext(req.Context())
	span.SetAttr("policy", r.Policy.Name())

	order := make([]int, len(r.Backends))
	r.Policy.Order(qreq.AffinityKey(), r.Backends, order)
	maxAttempts := r.MaxAttempts
	if maxAttempts <= 0 || maxAttempts > len(order) {
		maxAttempts = len(order)
	}

	if r.Retry != nil {
		r.Retry.Deposit()
	}
	if r.HedgeAfter > 0 {
		r.routeHedged(w, req, body, order, maxAttempts, start)
		return
	}

	attempts := 0
	var shed *capture
	var shedBackend string
	for _, idx := range order {
		if attempts >= maxAttempts {
			break
		}
		b := r.Backends[idx]
		allowed, probe := b.Breaker.Allow()
		if !allowed {
			continue // ejected and still cooling down
		}
		if attempts > 0 && !r.withdraw() {
			break // retry budget spent: stop generating extra work
		}
		if probe {
			m.Probes.Inc()
		}
		attempts++
		if attempts > 1 {
			m.Failovers.Inc()
		}

		cap := r.forward(req, b, body)
		if softFailure(cap.code, cap.header) {
			// Alive but shedding: try elsewhere at no breaker penalty,
			// keeping the shed response in case everyone sheds.
			shed, shedBackend = cap, b.Name
			continue
		}
		if cap.code >= http.StatusInternalServerError {
			b.failures.Inc()
			if b.Breaker.Failure() {
				m.Ejections.Inc()
			}
			continue // buffered response: nothing reached the client yet
		}
		b.Breaker.Success()
		if probe {
			m.Readmissions.Inc()
		}
		b.served.Inc()
		m.Routed.Inc()
		span.SetAttr("backend", b.Name)
		if attempts > 1 {
			span.SetAttr("failovers", strconv.Itoa(attempts-1))
		}
		r.flush(w, cap, b.Name)
		m.latency.Observe(time.Since(start).Seconds())
		return
	}
	r.finish(w, shed, shedBackend, attempts)
}

// flush writes a captured backend response through to the client.
func (r *Router) flush(w http.ResponseWriter, cap *capture, backend string) {
	h := w.Header()
	for k, vs := range cap.header {
		h[k] = vs
	}
	h.Set("X-Backend", backend)
	w.WriteHeader(cap.code)
	w.Write(cap.body.Bytes())
}

// finish ends a request no backend accepted: the last shed response
// (its Retry-After intact) when the fleet is back-pressuring, else the
// synthesized unroutable 503.
func (r *Router) finish(w http.ResponseWriter, shed *capture, backend string, attempts int) {
	if shed != nil {
		r.Metrics.Routed.Inc()
		r.flush(w, shed, backend)
		return
	}
	r.Metrics.Unroutable.Inc()
	writeError(w, http.StatusServiceUnavailable,
		fmt.Errorf("no backend available (%d/%d routable, %d attempts)", r.Available(), len(r.Backends), attempts))
}

// routeHedged is route's forwarding tail when HedgeAfter is set:
// attempts run as goroutines so a slow first backend can be raced by
// one speculative attempt at the next. The hedge is deadline-aware
// (not launched when the request's remaining deadline cannot cover
// it), budget-gated like any retry, and capped at one per request —
// tail-latency insurance, not a traffic multiplier. Breaker
// bookkeeping happens inside each attempt so an abandoned loser still
// counts, except when the loss is our own cancellation.
func (r *Router) routeHedged(w http.ResponseWriter, req *http.Request, body []byte, order []int, maxAttempts int, start time.Time) {
	m := r.Metrics
	span := obs.FromContext(req.Context())
	type result struct {
		b   *Backend
		cap *capture
	}
	results := make(chan result, len(order)) // losers park here, never on a goroutine

	next := 0
	launch := func(gated bool) bool {
		for next < len(order) {
			b := r.Backends[order[next]]
			next++
			allowed, probe := b.Breaker.Allow()
			if !allowed {
				continue
			}
			if gated && !r.withdraw() {
				return false
			}
			if probe {
				m.Probes.Inc()
			}
			go func() {
				cap := r.forward(req, b, body)
				switch {
				case softFailure(cap.code, cap.header):
					// Shedding: no breaker movement either way.
				case cap.code >= http.StatusInternalServerError:
					// A losing attempt is cancelled through the request
					// context once the winner responds; don't charge
					// the backend for our own cancellation.
					if req.Context().Err() == nil {
						b.failures.Inc()
						if b.Breaker.Failure() {
							m.Ejections.Inc()
						}
					}
				default:
					b.Breaker.Success()
					if probe {
						m.Readmissions.Inc()
					}
				}
				results <- result{b, cap}
			}()
			return true
		}
		return false
	}

	if !launch(false) {
		r.finish(w, nil, "", 0)
		return
	}
	attempts, pending := 1, 1
	var shed *capture
	var shedBackend string

	var hedge <-chan time.Time
	if d, ok := req.Context().Deadline(); !ok || time.Until(d) >= 2*r.HedgeAfter {
		t := time.NewTimer(r.HedgeAfter)
		defer t.Stop()
		hedge = t.C
	}

	for pending > 0 {
		select {
		case <-req.Context().Done():
			return // client gone; attempts unwind on the same context
		case <-hedge:
			hedge = nil // at most one hedge per request
			if attempts < maxAttempts && launch(true) {
				attempts++
				pending++
				m.Hedges.Inc()
				m.Failovers.Inc()
			}
		case res := <-results:
			pending--
			cap := res.cap
			if !softFailure(cap.code, cap.header) && cap.code < http.StatusInternalServerError {
				res.b.served.Inc()
				m.Routed.Inc()
				span.SetAttr("backend", res.b.Name)
				if attempts > 1 {
					span.SetAttr("failovers", strconv.Itoa(attempts-1))
				}
				r.flush(w, cap, res.b.Name)
				m.latency.Observe(time.Since(start).Seconds())
				return
			}
			if softFailure(cap.code, cap.header) {
				shed, shedBackend = cap, res.b.Name
			}
			if attempts < maxAttempts && launch(true) {
				attempts++
				pending++
				m.Failovers.Inc()
			}
		}
	}
	r.finish(w, shed, shedBackend, attempts)
}

// routeStream is the streaming request path. A stream cannot ride the
// buffered-failover capture — frames must reach the client while the
// backend still holds the connection — so the failover point moves to
// response-header time: a backend answering 5xx is discarded (its body
// swallowed) and the next backend in the order gets the stream; once a
// 2xx header commits, every subsequent frame is written through and
// flushed immediately, headers (X-Quote-Stale, X-Plan-Generation)
// intact.
func (r *Router) routeStream(w http.ResponseWriter, req *http.Request) {
	m := r.Metrics
	m.Requests.Inc()

	tenant := req.Header.Get("X-Tenant")
	if r.Limiter != nil && !r.Limiter.Allow(tenant) {
		m.QuotaRejected.Inc()
		if tenant == "" {
			tenant = "default"
		}
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, fmt.Errorf("quota exhausted for tenant %q", tenant))
		return
	}

	span := obs.FromContext(req.Context())
	span.SetAttr("policy", r.Policy.Name())

	order := make([]int, len(r.Backends))
	r.Policy.Order(streamAffinity(req.URL.RawQuery), r.Backends, order)
	maxAttempts := r.MaxAttempts
	if maxAttempts <= 0 || maxAttempts > len(order) {
		maxAttempts = len(order)
	}

	if r.Retry != nil {
		r.Retry.Deposit()
	}
	attempts := 0
	for _, idx := range order {
		if attempts >= maxAttempts {
			break
		}
		b := r.Backends[idx]
		allowed, probe := b.Breaker.Allow()
		if !allowed {
			continue
		}
		if attempts > 0 && !r.withdraw() {
			break // retry budget spent: stop generating extra work
		}
		if probe {
			m.Probes.Inc()
		}
		attempts++
		if attempts > 1 {
			m.Failovers.Inc()
		}

		sc := &streamCapture{w: w, backend: b.Name, header: make(http.Header)}
		aborted := r.serveStreamAttempt(b, sc, req)
		if aborted && sc.committed() {
			// The backend died mid-frame after bytes reached the
			// client. A committed stream cannot fail over — replaying
			// it elsewhere would duplicate or reorder frames — so
			// charge the breaker and abort the connection; the client's
			// reconnect (with Last-Event-ID) is the recovery path.
			b.failures.Inc()
			if b.Breaker.Failure() {
				m.Ejections.Inc()
			}
			panic(http.ErrAbortHandler)
		}
		if sc.failed || aborted {
			b.failures.Inc()
			if b.Breaker.Failure() {
				m.Ejections.Inc()
			}
			continue // nothing reached the client: next backend
		}
		b.Breaker.Success()
		if probe {
			m.Readmissions.Inc()
		}
		b.served.Inc()
		m.Routed.Inc()
		span.SetAttr("backend", b.Name)
		if attempts > 1 {
			span.SetAttr("failovers", strconv.Itoa(attempts-1))
		}
		sc.commit() // a handler that wrote nothing still owes a header
		return
	}
	m.Unroutable.Inc()
	writeError(w, http.StatusServiceUnavailable,
		fmt.Errorf("no backend available (%d/%d routable, %d attempts)", r.Available(), len(r.Backends), attempts))
}

// serveStreamAttempt forwards one streaming attempt, keeping the
// in-flight gauge and the fleet's health bookkeeping correct when the
// backend (or the reverse proxy under it) aborts mid-request with
// http.ErrAbortHandler — a killed quoted process surfaces exactly that
// way. Any other panic is a programming error and propagates.
func (r *Router) serveStreamAttempt(b *Backend, sc *streamCapture, req *http.Request) (aborted bool) {
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	defer func() {
		if v := recover(); v != nil {
			if v != http.ErrAbortHandler {
				panic(v)
			}
			aborted = true
		}
	}()
	b.Handler.ServeHTTP(sc, req)
	return false
}

// streamAffinity hashes a stream's query string (FNV-64a) so affinity
// policies pin a subscription shape to a backend, mirroring
// quote.Request.AffinityKey for the one-shot path.
func streamAffinity(rawQuery string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, rawQuery)
	return h.Sum64()
}

// streamCapture is the streaming analogue of capture: it buffers only
// the response *header*. A 5xx commits nothing (the attempt can fail
// over); anything else writes the header through — with the backend's
// headers copied verbatim — and turns every subsequent Write into an
// immediately flushed client write.
type streamCapture struct {
	w       http.ResponseWriter
	backend string
	header  http.Header
	code    int
	failed  bool
}

// Header implements http.ResponseWriter.
func (c *streamCapture) Header() http.Header { return c.header }

// WriteHeader implements http.ResponseWriter: the failover decision
// point.
func (c *streamCapture) WriteHeader(code int) {
	if c.code != 0 {
		return
	}
	c.code = code
	if code >= http.StatusInternalServerError {
		c.failed = true
		return
	}
	h := c.w.Header()
	for k, vs := range c.header {
		h[k] = vs
	}
	h.Set("X-Backend", c.backend)
	c.w.WriteHeader(code)
}

// commit defaults an untouched response to 200 once the attempt is
// accepted.
func (c *streamCapture) commit() {
	if c.code == 0 {
		c.WriteHeader(http.StatusOK)
	}
}

// committed reports whether the attempt's header (and possibly frames)
// already reached the client, past the failover point.
func (c *streamCapture) committed() bool { return c.code != 0 && !c.failed }

// Write implements http.ResponseWriter, flushing each frame through.
func (c *streamCapture) Write(p []byte) (int, error) {
	if c.code == 0 {
		c.WriteHeader(http.StatusOK)
	}
	if c.failed {
		return len(p), nil // swallow the failed attempt's error body
	}
	n, err := c.w.Write(p)
	c.Flush()
	return n, err
}

// Flush implements http.Flusher so backends detect streaming support.
func (c *streamCapture) Flush() {
	if c.code == 0 || c.failed {
		return
	}
	if fl, ok := c.w.(http.Flusher); ok {
		fl.Flush()
	}
}

// forward replays the buffered request body against one backend and
// captures the full response so a failing attempt can be discarded and
// retried elsewhere without the client seeing partial output.
func (r *Router) forward(req *http.Request, b *Backend, body []byte) *capture {
	span := obs.FromContext(req.Context()).Child("lb.forward")
	span.SetAttr("backend", b.Name)
	defer span.End()

	attempt := req.Clone(req.Context())
	attempt.Body = io.NopCloser(bytes.NewReader(body))
	attempt.ContentLength = int64(len(body))

	cap := newCapture()
	b.inflight.Add(1)
	b.Handler.ServeHTTP(cap, attempt)
	b.inflight.Add(-1)
	if cap.code == 0 {
		cap.code = http.StatusOK
	}
	span.SetAttr("status", strconv.Itoa(cap.code))
	return cap
}

// ProbeLoop actively re-checks ejected backends every interval with
// check (e.g. a GET /healthz round-trip) until ctx is done, so a
// recovered backend rejoins the fleet without waiting for live traffic
// to spend a probe on it. Pacing is still the breaker's: an ejected
// backend is only checked once its cooldown admits a half-open probe.
func (r *Router) ProbeLoop(ctx context.Context, interval time.Duration, check func(context.Context, *Backend) error) {
	r.init()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		for _, b := range r.Backends {
			if b.Available() {
				continue
			}
			allowed, probe := b.Breaker.Allow()
			if !allowed || !probe {
				continue
			}
			r.Metrics.Probes.Inc()
			if err := check(ctx, b); err != nil {
				b.Breaker.Failure()
				continue
			}
			b.Breaker.Success()
			r.Metrics.Readmissions.Inc()
		}
	}
}

// capture is a buffered http.ResponseWriter: the router only flushes a
// captured response to the real client once an attempt is accepted.
type capture struct {
	header http.Header
	code   int
	body   bytes.Buffer
}

// newCapture returns an empty response buffer.
func newCapture() *capture { return &capture{header: make(http.Header)} }

// Header implements http.ResponseWriter.
func (c *capture) Header() http.Header { return c.header }

// WriteHeader implements http.ResponseWriter, keeping the first status.
func (c *capture) WriteHeader(code int) {
	if c.code == 0 {
		c.code = code
	}
}

// Write implements http.ResponseWriter, defaulting the status to 200.
func (c *capture) Write(p []byte) (int, error) {
	if c.code == 0 {
		c.code = http.StatusOK
	}
	return c.body.Write(p)
}

// writeError sends the quote service's JSON error envelope shape.
func writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{Error: err.Error()})
}
