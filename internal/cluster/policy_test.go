package cluster

import (
	"fmt"
	"net/http"
	"sync"
	"testing"
)

// stubBackends builds n handler-less backends named quoted-0..n-1.
func stubBackends(n int) []*Backend {
	out := make([]*Backend, n)
	for i := range out {
		out[i] = NewBackend(fmt.Sprintf("quoted-%d", i), http.NotFoundHandler())
	}
	return out
}

// TestRoundRobinDeterminism pins the policy's cycle: request i prefers
// backend i mod N and the failover tail continues the rotation.
func TestRoundRobinDeterminism(t *testing.T) {
	backends := stubBackends(3)
	p := NewRoundRobin()
	dst := make([]int, 3)
	want := [][]int{{0, 1, 2}, {1, 2, 0}, {2, 0, 1}, {0, 1, 2}}
	for i, w := range want {
		p.Order(0, backends, dst)
		for j := range w {
			if dst[j] != w[j] {
				t.Fatalf("request %d: order %v, want %v", i, dst, w)
			}
		}
	}
}

// TestLeastLoadedTieBreaking covers both the load ordering and the
// deterministic fleet-index tie-break.
func TestLeastLoadedTieBreaking(t *testing.T) {
	cases := []struct {
		name  string
		loads []int64
		want  []int
	}{
		{"all idle ties by index", []int64{0, 0, 0}, []int{0, 1, 2}},
		{"distinct loads sort ascending", []int64{5, 1, 3}, []int{1, 2, 0}},
		{"partial tie keeps index order", []int64{2, 0, 2}, []int{1, 0, 2}},
		{"busy head moves last", []int64{9, 0, 0}, []int{1, 2, 0}},
	}
	p := NewLeastLoaded()
	for _, tc := range cases {
		backends := stubBackends(len(tc.loads))
		for i, l := range tc.loads {
			backends[i].inflight.Set(l)
		}
		dst := make([]int, len(backends))
		p.Order(0, backends, dst)
		for j := range tc.want {
			if dst[j] != tc.want[j] {
				t.Fatalf("%s: order %v, want %v", tc.name, dst, tc.want)
			}
		}
	}
}

// TestAffinityStableAndBalanced checks that the rendezvous assignment
// is deterministic and spreads keys across every backend.
func TestAffinityStableAndBalanced(t *testing.T) {
	backends := stubBackends(3)
	p := NewAffinity()
	dst := make([]int, 3)
	counts := make([]int, 3)
	assign := map[uint64]int{}
	for key := uint64(0); key < 300; key++ {
		p.Order(key, backends, dst)
		assign[key] = dst[0]
		counts[dst[0]]++
		p.Order(key, backends, dst)
		if dst[0] != assign[key] {
			t.Fatalf("key %d: assignment moved between identical calls", key)
		}
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("backend %d received no keys: %v", i, counts)
		}
	}
}

// TestAffinityStabilityUnderJoinLeave is the rendezvous property the
// policy exists for: removing a backend remaps only its own keys, and
// adding one steals keys only for itself.
func TestAffinityStabilityUnderJoinLeave(t *testing.T) {
	full := stubBackends(3)
	p := NewAffinity()
	const keys = 500

	pick := func(backends []*Backend, key uint64) string {
		dst := make([]int, len(backends))
		p.Order(key, backends, dst)
		return backends[dst[0]].Name
	}

	before := make([]string, keys)
	for key := 0; key < keys; key++ {
		before[key] = pick(full, uint64(key))
	}

	// Leave: drop quoted-1. Keys owned by survivors must not move.
	reduced := []*Backend{full[0], full[2]}
	remapped := 0
	for key := 0; key < keys; key++ {
		after := pick(reduced, uint64(key))
		if before[key] != "quoted-1" {
			if after != before[key] {
				t.Fatalf("key %d moved %s → %s though its owner survived", key, before[key], after)
			}
		} else {
			remapped++
		}
	}
	if remapped == 0 {
		t.Fatal("no keys were owned by the removed backend; test is vacuous")
	}

	// Join: add quoted-3. Keys may move only onto the newcomer.
	grown := append([]*Backend{}, full...)
	grown = append(grown, NewBackend("quoted-3", http.NotFoundHandler()))
	stolen := 0
	for key := 0; key < keys; key++ {
		after := pick(grown, uint64(key))
		if after != before[key] {
			if after != "quoted-3" {
				t.Fatalf("key %d moved %s → %s instead of to the joining backend", key, before[key], after)
			}
			stolen++
		}
	}
	if stolen == 0 {
		t.Fatal("joining backend stole no keys; test is vacuous")
	}
}

// TestPoliciesConcurrent hammers every policy from many goroutines so
// the race detector sees the shared state (round-robin's counter, the
// in-flight gauges).
func TestPoliciesConcurrent(t *testing.T) {
	backends := stubBackends(4)
	for _, p := range Policies() {
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				dst := make([]int, len(backends))
				for i := 0; i < 200; i++ {
					backends[g%len(backends)].inflight.Add(1)
					p.Order(uint64(g*1000+i), backends, dst)
					backends[g%len(backends)].inflight.Add(-1)
					seen := 0
					for _, idx := range dst {
						seen |= 1 << idx
					}
					if seen != 1<<len(backends)-1 {
						t.Errorf("%s: order %v is not a permutation", p.Name(), dst)
						return
					}
				}
			}(g)
		}
		wg.Wait()
	}
}

// TestParsePolicy covers the flag surface.
func TestParsePolicy(t *testing.T) {
	for _, name := range []string{"round-robin", "least-loaded", "affinity"} {
		p, err := ParsePolicy(name)
		if err != nil || p.Name() != name {
			t.Fatalf("ParsePolicy(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := ParsePolicy("random"); err == nil {
		t.Fatal("ParsePolicy accepted an unknown policy")
	}
}
