package cluster

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync/atomic"
)

// Policy orders a fleet's backends by routing preference for one
// request. The router forwards to the first ordered backend whose
// breaker admits it and fails over down the order, so a policy decides
// preference, never availability. Implementations must be safe for
// concurrent use.
type Policy interface {
	// Name is the policy's wire name, used in flags, metrics and the
	// capacity-curve report.
	Name() string
	// Order fills dst (len(backends)) with backend indexes, most
	// preferred first. key is the request's affinity hash
	// (quote.Request.AffinityKey); policies that don't partition the
	// key space ignore it.
	Order(key uint64, backends []*Backend, dst []int)
}

// Policies returns a fresh instance of every routing policy, in the
// order the capacity-curve report presents them.
func Policies() []Policy {
	return []Policy{NewRoundRobin(), NewLeastLoaded(), NewAffinity()}
}

// ParsePolicy maps a wire name to a fresh policy instance.
func ParsePolicy(name string) (Policy, error) {
	for _, p := range Policies() {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("cluster: unknown routing policy %q (want round-robin, least-loaded or affinity)", name)
}

// RoundRobin cycles through the backends in fleet order: request i
// prefers backend i mod N and fails over to i+1, i+2, … — the
// stateless baseline every other policy is measured against.
type RoundRobin struct {
	next atomic.Uint64
}

// NewRoundRobin returns a round-robin policy starting at backend 0.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Policy.
func (*RoundRobin) Name() string { return "round-robin" }

// Order implements Policy.
func (p *RoundRobin) Order(_ uint64, backends []*Backend, dst []int) {
	n := len(backends)
	start := int(p.next.Add(1)-1) % n
	for i := 0; i < n; i++ {
		dst[i] = (start + i) % n
	}
}

// LeastLoaded prefers the backend with the fewest in-flight requests,
// breaking ties deterministically by fleet index. Under uniform
// backends it behaves like join-shortest-queue; under a degraded
// backend it naturally sheds load away from the slow instance, whose
// queue stays long.
type LeastLoaded struct{}

// NewLeastLoaded returns a least-loaded policy.
func NewLeastLoaded() *LeastLoaded { return &LeastLoaded{} }

// Name implements Policy.
func (*LeastLoaded) Name() string { return "least-loaded" }

// Order implements Policy.
func (*LeastLoaded) Order(_ uint64, backends []*Backend, dst []int) {
	// Snapshot the gauges first so the sort sees a consistent keying
	// even while forwards complete concurrently.
	loads := make([]int64, len(backends))
	for i, b := range backends {
		loads[i] = b.InFlight()
		dst[i] = i
	}
	sort.SliceStable(dst, func(a, b int) bool {
		if loads[dst[a]] != loads[dst[b]] {
			return loads[dst[a]] < loads[dst[b]]
		}
		return dst[a] < dst[b]
	})
}

// Affinity partitions the request key space across the fleet with
// rendezvous (highest-random-weight) hashing on the canonical quote
// request key: every backend scores each key and the highest score
// wins, with the rest of the order doubling as the failover chain.
// Identical quote requests therefore land on the same backend's plan
// cache, and a backend joining or leaving remaps only the keys whose
// winning score changed — roughly 1/N of the space — instead of
// reshuffling everything the way mod-N hashing would.
type Affinity struct{}

// NewAffinity returns an affinity policy.
func NewAffinity() *Affinity { return &Affinity{} }

// Name implements Policy.
func (*Affinity) Name() string { return "affinity" }

// Order implements Policy.
func (*Affinity) Order(key uint64, backends []*Backend, dst []int) {
	scores := make([]uint64, len(backends))
	for i, b := range backends {
		scores[i] = rendezvousScore(key, b.Name)
		dst[i] = i
	}
	sort.SliceStable(dst, func(a, b int) bool {
		if scores[dst[a]] != scores[dst[b]] {
			return scores[dst[a]] > scores[dst[b]]
		}
		return backends[dst[a]].Name < backends[dst[b]].Name
	})
}

// rendezvousScore hashes (backend name, request key) with FNV-64a. The
// name goes first so each backend owns an independent permutation of
// the key space.
func rendezvousScore(key uint64, name string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, name)
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], key)
	h.Write(buf[:])
	return h.Sum64()
}
