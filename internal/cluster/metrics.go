package cluster

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/obs"
)

// Metrics aggregates the router's counters and routing latency on the
// obs registry. Use NewMetrics; the zero value is not ready.
type Metrics struct {
	// Requests counts requests reaching the router.
	Requests obs.Counter
	// BadRequests counts requests rejected before routing (malformed
	// body).
	BadRequests obs.Counter
	// QuotaRejected counts requests rejected by per-tenant admission
	// control with 429 — the dedicated quota-exhaustion metric.
	QuotaRejected obs.Counter
	// Routed counts requests answered by a backend.
	Routed obs.Counter
	// Failovers counts forward attempts beyond a request's first.
	Failovers obs.Counter
	// Ejections counts backend breaker opens — a backend leaving the
	// routable set.
	Ejections obs.Counter
	// Probes counts requests forwarded to an ejected backend as its
	// half-open probe.
	Probes obs.Counter
	// Readmissions counts probes that succeeded and closed a backend's
	// breaker.
	Readmissions obs.Counter
	// Unroutable counts requests that exhausted every backend (503).
	Unroutable obs.Counter
	// Retries counts budget tokens spent on failovers and hedges (0
	// when no retry budget is configured).
	Retries obs.Counter
	// RetrySuppressed counts failovers and hedges the retry budget
	// refused — bounded extra work doing its job under overload.
	RetrySuppressed obs.Counter
	// Hedges counts speculative second attempts launched because the
	// first exceeded the hedge latency threshold.
	Hedges obs.Counter

	latency *obs.Histogram // whole routing decision + forward latency

	reg obs.Registry
}

// routerQuantiles reported on /metrics.
var routerQuantiles = []float64{0.5, 0.9, 0.99}

// NewMetrics returns a ready Metrics.
func NewMetrics() *Metrics {
	m := &Metrics{latency: obs.NewHistogram(nil)}
	m.reg.Counter("quotelb_requests_total", &m.Requests)
	m.reg.Counter("quotelb_bad_requests_total", &m.BadRequests)
	m.reg.Counter("quotelb_quota_rejected_total", &m.QuotaRejected)
	m.reg.Counter("quotelb_routed_total", &m.Routed)
	m.reg.Counter("quotelb_failovers_total", &m.Failovers)
	m.reg.Counter("quotelb_ejections_total", &m.Ejections)
	m.reg.Counter("quotelb_probes_total", &m.Probes)
	m.reg.Counter("quotelb_readmissions_total", &m.Readmissions)
	m.reg.Counter("quotelb_unroutable_total", &m.Unroutable)
	m.reg.Counter("quotelb_retries_total", &m.Retries)
	m.reg.Counter("quotelb_retry_suppressed_total", &m.RetrySuppressed)
	m.reg.Counter("quotelb_hedges_total", &m.Hedges)
	m.reg.Histogram("quotelb_latency_seconds", "stage", "route", routerQuantiles, m.latency)
	return m
}

// LatencyQuantile returns the routing latency quantile in seconds, for
// the capacity-curve report.
func (m *Metrics) LatencyQuantile(q float64) float64 { return m.latency.Quantile(q) }

// registerBackends adds per-backend gauges and counters, labelled by
// backend name, in fleet order.
func (m *Metrics) registerBackends(backends []*Backend) {
	for _, b := range backends {
		m.reg.Gauge(fmt.Sprintf("quotelb_backend_in_flight{backend=%q}", b.Name), &b.inflight)
		m.reg.Counter(fmt.Sprintf("quotelb_backend_served_total{backend=%q}", b.Name), &b.served)
		m.reg.Counter(fmt.Sprintf("quotelb_backend_failures_total{backend=%q}", b.Name), &b.failures)
	}
}

// registerTenants adds per-tenant quota-rejection counters (configured
// tenants in sorted order, then the shared default bucket).
func (m *Metrics) registerTenants(l *Limiter) {
	if l == nil {
		return
	}
	l.init()
	names := make([]string, 0, len(l.buckets))
	for name := range l.buckets {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m.reg.Counter(fmt.Sprintf("quotelb_tenant_rejected_total{tenant=%q}", name), &l.buckets[name].rejected)
	}
	m.reg.Counter(`quotelb_tenant_rejected_total{tenant="default"}`, &l.def.rejected)
}

// Render writes the metrics in Prometheus text exposition style.
func (m *Metrics) Render(w io.Writer) { m.reg.Render(w) }
