package cluster

import (
	"bufio"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/leak"
	"repro/internal/quote"
)

// TestBudgetTokens pins the token arithmetic: the pool starts full,
// withdrawals drain it whole tokens at a time, deposits refill it at
// Ratio per request capped at Burst.
func TestBudgetTokens(t *testing.T) {
	b := &Budget{Ratio: 0.5, Burst: 2}
	if got := b.Tokens(); got != 2 {
		t.Fatalf("fresh pool %g, want full at 2", got)
	}
	if !b.Withdraw() || !b.Withdraw() {
		t.Fatal("full pool refused withdrawals")
	}
	if b.Withdraw() {
		t.Fatal("empty pool granted a withdrawal")
	}
	b.Deposit() // 0.5: still under one token
	if b.Withdraw() {
		t.Fatal("half a token granted a withdrawal")
	}
	b.Deposit() // 1.0
	if !b.Withdraw() {
		t.Fatal("replenished pool refused a withdrawal")
	}
	for i := 0; i < 10; i++ {
		b.Deposit()
	}
	if got := b.Tokens(); got != 2 {
		t.Fatalf("pool %g after heavy deposits, want capped at Burst 2", got)
	}
}

// TestRouterRetryBudgetBounds pins the storm bound: with every backend
// hard-failing (thresholds high enough that nothing ejects), failovers
// consume the budget and, once it is spent, requests stop fanning out
// — the extra work per request collapses to one attempt.
func TestRouterRetryBudgetBounds(t *testing.T) {
	mk := func(name string) *Backend {
		b := NewBackend(name, failingBackend())
		b.Breaker = &quote.Breaker{Threshold: 1000, Cooldown: time.Hour}
		return b
	}
	fleet := []*Backend{mk("b0"), mk("b1"), mk("b2")}
	r := &Router{
		Backends: fleet,
		Policy:   NewRoundRobin(),
		Retry:    &Budget{Ratio: 0.001, Burst: 2}, // 2 retries, near-zero refill
	}
	h := r.Handler()

	// First request: 1 free attempt + 2 budgeted failovers, then 503.
	if rec := postQuote(h, validBody, ""); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("all-failing fleet returned %d, want 503", rec.Code)
	}
	m := r.Stats()
	if got := m.Retries.Load(); got != 2 {
		t.Fatalf("retries = %d, want 2 (the whole budget)", got)
	}
	total := fleet[0].Failures() + fleet[1].Failures() + fleet[2].Failures()
	if total != 3 {
		t.Fatalf("first request burned %d attempts, want 3", total)
	}

	// Budget spent: subsequent requests get exactly one attempt each.
	for i := 0; i < 4; i++ {
		if rec := postQuote(h, validBody, ""); rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("request %d returned %d, want 503", i, rec.Code)
		}
	}
	if got := fleet[0].Failures() + fleet[1].Failures() + fleet[2].Failures(); got != total+4 {
		t.Fatalf("4 post-budget requests burned %d attempts, want 4 — retry storm not bounded", got-total)
	}
	if m.RetrySuppressed.Load() == 0 {
		t.Fatal("retry_suppressed metric never incremented")
	}
}

// TestRouterShedPassThrough pins the back-pressure path: a backend
// answering 429 (or 503 with Retry-After) is shedding, not dead — the
// router fails over without charging its breaker, and when the whole
// fleet sheds, the client receives the backend's own response with its
// Retry-After intact rather than a synthesized 503.
func TestRouterShedPassThrough(t *testing.T) {
	shedding := func(code int) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(code)
			io.WriteString(w, `{"error":"overloaded"}`)
		})
	}
	for _, code := range []int{http.StatusTooManyRequests, http.StatusServiceUnavailable} {
		r := &Router{
			Backends: []*Backend{
				NewBackend("b0", shedding(code)),
				NewBackend("b1", shedding(code)),
			},
			Policy: NewRoundRobin(),
		}
		rec := postQuote(r.Handler(), validBody, "")
		if rec.Code != code {
			t.Fatalf("shedding fleet returned %d, want %d passed through", rec.Code, code)
		}
		if got := rec.Header().Get("Retry-After"); got != "7" {
			t.Fatalf("Retry-After %q did not survive the shed pass-through", got)
		}
		for _, b := range r.Backends {
			if !b.Available() {
				t.Fatalf("%s ejected by back-pressure; shedding must not charge the breaker", b.Name)
			}
			if b.Failures() != 0 {
				t.Fatalf("%s failures = %d on shed responses", b.Name, b.Failures())
			}
		}
		if got := r.Stats().Unroutable.Load(); got != 0 {
			t.Fatalf("unroutable = %d for a shedding fleet, want 0", got)
		}
	}

	// A shedding backend plus a healthy one: the failover serves.
	r := &Router{
		Backends: []*Backend{
			NewBackend("b0", shedding(http.StatusTooManyRequests)),
			NewBackend("b1", echoBackend("b1")),
		},
		Policy: NewRoundRobin(),
	}
	rec := postQuote(r.Handler(), validBody, "")
	if rec.Code != http.StatusOK || rec.Header().Get("X-Backend") != "b1" {
		t.Fatalf("shed failover: %d from %q, want 200 from b1", rec.Code, rec.Header().Get("X-Backend"))
	}
}

// TestRouterHedge pins the speculative path: when the first backend
// sits on a request past HedgeAfter, the router races a second one and
// the client gets the fast answer; the hedge consumes retry budget.
func TestRouterHedge(t *testing.T) {
	defer leak.CheckT(t, leak.Baseline())
	release := make(chan struct{})
	var slowDone atomic.Bool
	slow := NewBackend("b0", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
		slowDone.Store(true)
		io.WriteString(w, "slow")
	}))
	fast := NewBackend("b1", echoBackend("b1"))
	r := &Router{
		Backends:   []*Backend{slow, fast},
		Policy:     NewRoundRobin(), // b0 first for the first request
		Retry:      &Budget{Ratio: 0.5, Burst: 4},
		HedgeAfter: 30 * time.Millisecond,
	}
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	defer close(release)

	start := time.Now()
	resp, err := http.Post(srv.URL+"/v1/quote", "application/json", strings.NewReader(validBody))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Backend"); got != "b1" {
		t.Fatalf("served by %q, want the hedge winner b1", got)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hedged request took %v; the slow backend was awaited", elapsed)
	}
	m := r.Stats()
	if m.Hedges.Load() != 1 {
		t.Fatalf("hedges = %d, want 1", m.Hedges.Load())
	}
	if m.Retries.Load() != 1 {
		t.Fatalf("retries = %d, want 1 (the hedge token)", m.Retries.Load())
	}
	// The abandoned attempt unwinds via context cancellation without
	// charging the slow backend's breaker.
	waitFor(t, "slow attempt unwind", func() bool { return slowDone.Load() })
	if !slow.Available() {
		t.Fatal("slow backend ejected by a lost hedge")
	}
}

// TestRouterHedgeDeadlineAware pins that a request whose remaining
// deadline cannot cover a hedge never launches one.
func TestRouterHedgeDeadlineAware(t *testing.T) {
	r := &Router{
		Backends:   []*Backend{NewBackend("b0", echoBackend("b0")), NewBackend("b1", echoBackend("b1"))},
		Policy:     NewRoundRobin(),
		HedgeAfter: 50 * time.Millisecond,
	}
	h := r.Handler()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/quote", strings.NewReader(validBody)).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if got := r.Stats().Hedges.Load(); got != 0 {
		t.Fatalf("hedges = %d under a tight deadline, want 0", got)
	}
}

// TestRouterStreamCommittedDeath pins the failover boundary (the
// satellite case): once a stream has committed — header and frames on
// the wire — a backend death mid-frame must NOT fail over to another
// backend (frames would duplicate); the connection aborts, the corpse
// is charged, and the client's reconnect is the recovery path.
func TestRouterStreamCommittedDeath(t *testing.T) {
	var secondTouched atomic.Bool
	dying := NewBackend("b0", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		io.WriteString(w, "id: 3\nevent: plan\ndata: {\"generation\":3}\n\n")
		w.(http.Flusher).Flush()
		panic(http.ErrAbortHandler) // killed mid-stream, next frame never comes
	}))
	dying.Breaker = &quote.Breaker{Threshold: 1, Cooldown: time.Hour}
	standby := NewBackend("b1", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		secondTouched.Store(true)
	}))
	r := &Router{Backends: []*Backend{dying, standby}, Policy: NewRoundRobin()}
	front := httptest.NewServer(r.Handler())
	defer front.Close()

	resp, err := http.Get(front.URL + "/v1/quotes/stream?work_hours=4&deadline_hours=12")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want the committed 200", resp.StatusCode)
	}
	br := bufio.NewReader(resp.Body)
	var got strings.Builder
	for {
		b, err := br.ReadByte()
		if err != nil {
			break // the abort: EOF or reset, after the committed frame
		}
		got.WriteByte(b)
	}
	if !strings.Contains(got.String(), `{"generation":3}`) {
		t.Fatalf("committed frame lost: %q", got.String())
	}
	if secondTouched.Load() {
		t.Fatal("committed stream failed over to a second backend")
	}
	if dying.Available() {
		t.Fatal("mid-stream death did not charge the backend's breaker")
	}
	if got := dying.Failures(); got != 1 {
		t.Fatalf("dying backend failures = %d, want 1", got)
	}
	waitFor(t, "in-flight gauge drain", func() bool {
		return dying.InFlight() == 0 && standby.InFlight() == 0
	})
}

// TestRouterStreamPreCommitAbort pins the complement: an abort BEFORE
// the header commits (the proxy died connecting) is an ordinary
// failover — the next backend serves and the client never notices.
func TestRouterStreamPreCommitAbort(t *testing.T) {
	dying := NewBackend("b0", http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler) // death before any byte commits
	}))
	live := NewBackend("b1", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		io.WriteString(w, "id: 1\nevent: plan\ndata: {\"generation\":1}\n\n")
	}))
	r := &Router{Backends: []*Backend{dying, live}, Policy: NewRoundRobin()}
	front := httptest.NewServer(r.Handler())
	defer front.Close()

	resp, err := http.Get(front.URL + "/v1/quotes/stream?work_hours=4&deadline_hours=12")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Backend") != "b1" {
		t.Fatalf("pre-commit abort: %d from %q, want 200 from b1", resp.StatusCode, resp.Header.Get("X-Backend"))
	}
	if !strings.Contains(string(body), `{"generation":1}`) {
		t.Fatalf("failover stream body %q", body)
	}
	if got := dying.Failures(); got != 1 {
		t.Fatalf("dying backend failures = %d, want 1", got)
	}
	if got := r.Stats().Failovers.Load(); got != 1 {
		t.Fatalf("failovers = %d, want 1", got)
	}
}

// waitFor polls a condition with a deadline.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
