package cluster

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// Quota is one token-bucket admission rate.
type Quota struct {
	// Rate is tokens (requests) refilled per second; 0 or negative
	// admits everything — "no quota configured" rather than "closed".
	Rate float64
	// Burst is the bucket capacity — how far a tenant may briefly
	// exceed Rate; values below 1 are raised to 1 so a positive Rate
	// always admits single requests.
	Burst float64
}

// unlimited reports whether the quota admits everything.
func (q Quota) unlimited() bool { return q.Rate <= 0 }

// bucket is one tenant's token bucket plus its rejection counter.
type bucket struct {
	mu     sync.Mutex
	quota  Quota
	tokens float64
	last   time.Time

	rejected obs.Counter
}

// take refills by elapsed time and spends one token if available.
func (b *bucket) take(now time.Time) bool {
	if b.quota.unlimited() {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	burst := b.quota.Burst
	if burst < 1 {
		burst = 1
	}
	if b.last.IsZero() {
		b.tokens = burst
	} else if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.quota.Rate
		if b.tokens > burst {
			b.tokens = burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		b.rejected.Inc()
		return false
	}
	b.tokens--
	return true
}

// Limiter is per-tenant token-bucket admission control. Tenants named
// in Tenants get a private bucket under their own quota; every other
// request — no X-Tenant header, or an unrecognised one — shares the
// Default bucket, so an unbounded stream of invented tenant names can
// never grow the bucket map. The zero value admits everything. A
// Limiter is safe for concurrent use.
type Limiter struct {
	// Default is the shared bucket's quota for unconfigured tenants.
	Default Quota
	// Tenants maps tenant name → private quota.
	Tenants map[string]Quota
	// Now is overridable for tests; nil selects time.Now.
	Now func() time.Time

	once    sync.Once
	def     bucket
	buckets map[string]*bucket
}

// init lazily materialises the buckets.
func (l *Limiter) init() {
	l.once.Do(func() {
		l.def.quota = l.Default
		l.buckets = make(map[string]*bucket, len(l.Tenants))
		for name, q := range l.Tenants {
			l.buckets[name] = &bucket{quota: q}
		}
	})
}

// now returns the limiter's clock reading.
func (l *Limiter) now() time.Time {
	if l.Now != nil {
		return l.Now()
	}
	return time.Now()
}

// Allow spends one admission token for tenant and reports whether the
// request may proceed. The empty tenant (no X-Tenant header) and any
// unconfigured tenant draw from the shared default bucket.
func (l *Limiter) Allow(tenant string) bool {
	l.init()
	b := l.buckets[tenant]
	if b == nil {
		b = &l.def
	}
	return b.take(l.now())
}

// Rejected returns the rejection count per configured tenant plus the
// shared "default" bucket — the capacity-curve report and tests read
// it; /metrics renders the same counters via register.
func (l *Limiter) Rejected() map[string]int64 {
	l.init()
	out := make(map[string]int64, len(l.buckets)+1)
	out["default"] = l.def.rejected.Load()
	for name, b := range l.buckets {
		out[name] = b.rejected.Load()
	}
	return out
}
