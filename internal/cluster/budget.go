package cluster

import "sync"

// Retry-budget defaults: each admitted request earns DefaultRetryRatio
// retry tokens, the pool holding at most DefaultRetryBurst.
const (
	DefaultRetryRatio = 0.2
	DefaultRetryBurst = 10
)

// Budget bounds the router's extra work under failure: a token pool
// that admitted requests pay into (Ratio tokens each) and every retry,
// failover or hedge withdraws from (one token each). Under a total
// backend outage the fleet's retry traffic is then capped at roughly
// Ratio× the request rate instead of multiplying by the fleet size —
// the classic retry-storm amplification. The pool starts full so a
// cold router can still fail over its very first requests. The zero
// value is ready; a Budget is safe for concurrent use.
type Budget struct {
	// Ratio is the token fraction each request deposits; 0 selects
	// DefaultRetryRatio.
	Ratio float64
	// Burst caps the pool; 0 selects DefaultRetryBurst.
	Burst float64

	mu     sync.Mutex
	tokens float64
	primed bool
}

// init fills defaults and fills the pool, under mu.
func (b *Budget) initLocked() {
	if b.primed {
		return
	}
	if b.Ratio <= 0 {
		b.Ratio = DefaultRetryRatio
	}
	if b.Burst <= 0 {
		b.Burst = DefaultRetryBurst
	}
	b.tokens = b.Burst
	b.primed = true
}

// Deposit credits one admitted request's share of retry headroom.
func (b *Budget) Deposit() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.initLocked()
	b.tokens += b.Ratio
	if b.tokens > b.Burst {
		b.tokens = b.Burst
	}
}

// Withdraw takes one token for a retry or hedge, reporting false when
// the pool cannot cover it — the caller must then stop retrying.
func (b *Budget) Withdraw() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.initLocked()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Tokens returns the current pool level, for tests and reports.
func (b *Budget) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.initLocked()
	return b.tokens
}
