// Package cluster is the fleet layer of the serving stack: a front-door
// router that fans quote requests across N quoted backends. One quoted
// process tops out around 20k req/s; the ROADMAP's millions of users
// need a fleet, and a fleet needs three things a single process never
// did — a routing policy (who serves this request), admission control
// (who gets in at all), and health-aware ejection (who is quietly dead).
//
// The router supports three pluggable policies: round-robin,
// least-loaded (live in-flight counts per backend) and request-affinity
// (rendezvous hashing on the canonical quote request key, so identical
// quotes land on the same backend's plan cache). Admission is a
// per-tenant token bucket keyed by the X-Tenant header. Ejection reuses
// the quote package's three-state circuit breaker per backend:
// consecutive failures eject, a cooldown admits one probe, and the
// probe's outcome readmits or re-ejects.
//
// The same Router serves two deployments: cmd/quotelb reverse-proxies
// to real quoted processes, while the in-process cluster simulator
// (sim.go) drives N quote.Service instances through the identical
// routing path to measure capacity curves before anything is deployed.
package cluster

import (
	"net/http"

	"repro/internal/obs"
	"repro/internal/quote"
)

// Backend is one quoted instance behind the router.
type Backend struct {
	// Name identifies the backend — the address for proxied fleets.
	// Affinity hashing mixes it into the rendezvous score, so it must
	// be unique within the fleet and stable across restarts: renaming a
	// backend remaps its share of the key space.
	Name string
	// Handler serves the backend's HTTP API: an httpx.Proxy for a
	// remote quoted process, or the in-process quote handler in the
	// cluster simulator.
	Handler http.Handler
	// Breaker guards the backend (the PR 3 pattern): consecutive
	// failed forwards eject it from routing, the cooldown admits one
	// probe request, and the probe's outcome readmits or re-ejects.
	Breaker *quote.Breaker

	inflight obs.Gauge   // requests currently forwarded to this backend
	served   obs.Counter // successful forwards
	failures obs.Counter // failed forwards (5xx or transport error)
}

// NewBackend returns a routable backend with a default breaker.
func NewBackend(name string, h http.Handler) *Backend {
	return &Backend{Name: name, Handler: h, Breaker: &quote.Breaker{}}
}

// InFlight returns the number of requests currently forwarded to the
// backend; the least-loaded policy orders on it.
func (b *Backend) InFlight() int64 { return b.inflight.Load() }

// Served returns the backend's successful-forward count.
func (b *Backend) Served() int64 { return b.served.Load() }

// Failures returns the backend's failed-forward count.
func (b *Backend) Failures() int64 { return b.failures.Load() }

// Available reports whether the backend is routable — its breaker is
// closed. Ejected backends still receive paced probe requests through
// Breaker.Allow, which is how they earn readmission.
func (b *Backend) Available() bool { return !b.Breaker.Degraded() }
