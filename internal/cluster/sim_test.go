package cluster

import (
	"testing"
	"time"
)

// TestSimSmall runs a scaled-down simulator sweep end to end and
// checks the acceptance gates hold: affinity meets the round-robin
// cache-hit floor, quota exhaustion yields counted 429s, and a mid-run
// backend kill ejects without a client-visible error.
func TestSimSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster sim is a multi-hundred-millisecond wall-clock test")
	}
	cfg := SimConfig{
		Backends:  2,
		Seed:      7,
		Loads:     []float64{150},
		Duration:  400 * time.Millisecond,
		QuotaRate: 30,
	}
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatalf("sim gates failed: %v\n%+v", err, res)
	}
	if len(res.Curves) != 3 {
		t.Fatalf("got %d curve points, want 3 (three policies × one load)", len(res.Curves))
	}
	for _, p := range res.Curves {
		if p.Sent == 0 || p.OK != p.Sent {
			t.Errorf("%s@%.0f: sent %d ok %d — healthy fleet should answer everything",
				p.Policy, p.OfferedRPS, p.Sent, p.OK)
		}
		if p.P50Ms <= 0 || p.P99Ms < p.P50Ms {
			t.Errorf("%s@%.0f: implausible quantiles p50=%.3fms p99=%.3fms",
				p.Policy, p.OfferedRPS, p.P50Ms, p.P99Ms)
		}
		if p.CacheHitRate <= 0 || p.CacheHitRate >= 1 {
			t.Errorf("%s@%.0f: cache hit rate %.3f outside (0,1) — the mix holds both repeats and uniques",
				p.Policy, p.OfferedRPS, p.CacheHitRate)
		}
	}
	if res.Quota.OK == 0 {
		t.Error("quota scenario admitted nothing; the bucket should pass its burst")
	}
	if res.Quota.TenantRejected != res.Quota.RejectedMetric {
		t.Errorf("tenant rejected %d != router quota metric %d",
			res.Quota.TenantRejected, res.Quota.RejectedMetric)
	}
	if res.Kill.Failovers == 0 {
		t.Error("kill scenario recorded no failovers; the dead backend was never even tried")
	}
}

// TestSimWorkloadDeterminism pins the seeded generator: two workloads
// with one seed emit identical request sequences, which is what makes
// per-policy curves comparable.
func TestSimWorkloadDeterminism(t *testing.T) {
	cfg := SimConfig{}
	cfg.normalize()
	a, b := newWorkload(cfg), newWorkload(cfg)
	for i := 0; i < 1000; i++ {
		if string(a.next()) != string(b.next()) {
			t.Fatalf("request %d diverged between equal seeds", i)
		}
	}
	cfg2 := cfg
	cfg2.Seed = 2
	c := newWorkload(cfg2)
	same := 0
	for i := 0; i < 1000; i++ {
		if string(a.next()) == string(c.next()) {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("different seeds produced identical sequences")
	}
}
