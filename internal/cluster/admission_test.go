package cluster

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced limiter clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestLimiterBurstAndRefill covers the token-bucket core: a burst is
// admitted, the empty bucket rejects, and elapsed time refills at Rate.
func TestLimiterBurstAndRefill(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	l := &Limiter{
		Tenants: map[string]Quota{"acme": {Rate: 10, Burst: 3}},
		Now:     clock.now,
	}
	for i := 0; i < 3; i++ {
		if !l.Allow("acme") {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	if l.Allow("acme") {
		t.Fatal("request beyond burst admitted")
	}
	if got := l.Rejected()["acme"]; got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
	// 100 ms at 10 req/s refills exactly one token.
	clock.advance(100 * time.Millisecond)
	if !l.Allow("acme") {
		t.Fatal("refilled token rejected")
	}
	if l.Allow("acme") {
		t.Fatal("second request after a one-token refill admitted")
	}
	// A long idle period refills to Burst, not beyond.
	clock.advance(time.Hour)
	admitted := 0
	for i := 0; i < 10; i++ {
		if l.Allow("acme") {
			admitted++
		}
	}
	if admitted != 3 {
		t.Fatalf("admitted %d after long idle, want burst 3", admitted)
	}
}

// TestLimiterDefaultBucketShared checks that unknown tenants and the
// empty tenant draw from one shared default bucket, so invented tenant
// names cannot mint fresh quota or grow the bucket map.
func TestLimiterDefaultBucketShared(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	l := &Limiter{Default: Quota{Rate: 1, Burst: 2}, Now: clock.now}
	if !l.Allow("") || !l.Allow("invented-1") {
		t.Fatal("default bucket rejected its burst")
	}
	if l.Allow("invented-2") {
		t.Fatal("a fresh invented tenant was admitted past the shared default burst")
	}
	if got := l.Rejected()["default"]; got != 1 {
		t.Fatalf("default rejected counter = %d, want 1", got)
	}
	if len(l.buckets) != 0 {
		t.Fatalf("unconfigured tenants grew the bucket map to %d entries", len(l.buckets))
	}
}

// TestLimiterUnlimited checks that a zero quota (and the zero Limiter)
// admit everything — admission control off, not closed.
func TestLimiterUnlimited(t *testing.T) {
	var l Limiter
	for i := 0; i < 1000; i++ {
		if !l.Allow("anyone") {
			t.Fatal("zero limiter rejected a request")
		}
	}
	l2 := &Limiter{Tenants: map[string]Quota{"free": {}}}
	for i := 0; i < 1000; i++ {
		if !l2.Allow("free") {
			t.Fatal("zero quota rejected a request")
		}
	}
}

// TestLimiterConcurrent admits from many goroutines under a finite
// bucket; the total admitted must never exceed burst + refill headroom.
func TestLimiterConcurrent(t *testing.T) {
	l := &Limiter{Tenants: map[string]Quota{"acme": {Rate: 1, Burst: 50}}}
	var wg sync.WaitGroup
	admitted := make([]int, 8)
	for g := range admitted {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if l.Allow("acme") {
					admitted[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, n := range admitted {
		total += n
	}
	// 800 instant requests against burst 50 at 1 req/s: a generous
	// bound still catches a broken lock or refill.
	if total < 50 || total > 60 {
		t.Fatalf("admitted %d of 800, want ≈50 (burst) with ≤10 refill slack", total)
	}
}
