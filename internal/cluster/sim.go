package cluster

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/quote"
	"repro/internal/tracegen"
)

// SimConfig parameterises the in-process cluster simulator: N real
// quote.Service backends behind the real Router, driven by a seeded
// open-loop workload, so cluster capacity is measured before anything
// is deployed. The zero value selects the documented defaults.
type SimConfig struct {
	// Backends is the fleet size; 0 selects 3.
	Backends int
	// Seed seeds both the synthetic price history and the workload
	// mix; 0 selects 1. Equal seeds replay the identical request
	// sequence against every policy, so curves are comparable.
	Seed uint64
	// Loads are the offered-load levels in req/s; nil selects
	// 300, 1200, 4800.
	Loads []float64
	// Duration is the run time per (policy, load) level; 0 selects 2s.
	Duration time.Duration
	// HotFraction is the share of requests drawn from the repeated hot
	// set (the cacheable traffic); 0 selects 0.85.
	HotFraction float64
	// HotShapes is the number of distinct hot request shapes; 0 selects
	// 12 (mirroring quoted -selfbench's mix).
	HotShapes int
	// Policies are the routing policies to sweep; nil selects all
	// three.
	Policies []string
	// QuotaRate is tenant-a's admission rate in req/s for the quota
	// scenario; 0 selects 50.
	QuotaRate float64
	// BreakerThreshold is each backend's consecutive-failure ejection
	// bound; 0 selects 3.
	BreakerThreshold int
}

// normalize fills defaults in place.
func (c *SimConfig) normalize() {
	if c.Backends <= 0 {
		c.Backends = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.Loads) == 0 {
		c.Loads = []float64{300, 1200, 4800}
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.HotFraction <= 0 || c.HotFraction > 1 {
		c.HotFraction = 0.85
	}
	if c.HotShapes <= 0 {
		c.HotShapes = 12
	}
	if len(c.Policies) == 0 {
		for _, p := range Policies() {
			c.Policies = append(c.Policies, p.Name())
		}
	}
	if c.QuotaRate <= 0 {
		c.QuotaRate = 50
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
}

// CurvePoint is one (policy, offered load) capacity measurement.
type CurvePoint struct {
	Policy       string  `json:"policy"`
	OfferedRPS   float64 `json:"offered_rps"`
	AchievedRPS  float64 `json:"achieved_rps"`
	Sent         int64   `json:"sent"`
	OK           int64   `json:"ok"`
	Errors       int64   `json:"errors"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	ErrorRate    float64 `json:"error_rate"`
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// HitRateDuel compares plan-cache hit rates between affinity and
// round-robin routing over the identical workload.
type HitRateDuel struct {
	AffinityHitRate   float64 `json:"affinity_hit_rate"`
	RoundRobinHitRate float64 `json:"round_robin_hit_rate"`
	AffinityWins      bool    `json:"affinity_wins"`
}

// QuotaResult is the per-tenant admission scenario: tenant-a offered
// several times its quota must see 429s, counted on the dedicated
// metric.
type QuotaResult struct {
	TenantRateRPS  float64 `json:"tenant_rate_rps"`
	OfferedRPS     float64 `json:"offered_rps"`
	Sent           int64   `json:"sent"`
	OK             int64   `json:"ok"`
	Throttled      int64   `json:"throttled_429"`
	RejectedMetric int64   `json:"quota_rejected_total"`
	TenantRejected int64   `json:"tenant_rejected_total"`
}

// KillResult is the mid-run backend-kill scenario: the dead backend
// must be ejected while every client request still gets an answer —
// the fleet-level deadline-or-fallback guarantee.
type KillResult struct {
	Policy        string `json:"policy"`
	KilledBackend string `json:"killed_backend"`
	Sent          int64  `json:"sent"`
	OK            int64  `json:"ok"`
	Errors        int64  `json:"errors"`
	Failovers     int64  `json:"failovers"`
	Ejections     int64  `json:"ejections"`
	Held          bool   `json:"deadline_or_fallback_held"`
}

// SimResult is the simulator's full report, serialised to
// BENCH_cluster.json by scripts/bench.sh.
type SimResult struct {
	Backends    int          `json:"backends"`
	Seed        uint64       `json:"seed"`
	DurationSec float64      `json:"duration_per_level_s"`
	HotFraction float64      `json:"hot_fraction"`
	Curves      []CurvePoint `json:"curves"`
	Duel        HitRateDuel  `json:"affinity_vs_round_robin"`
	Quota       QuotaResult  `json:"quota_scenario"`
	Kill        KillResult   `json:"kill_scenario"`
}

// Check reports whether the run satisfies the cluster acceptance
// gates: affinity at or above round-robin's cache-hit-rate floor,
// quota exhaustion visible as 429s on the dedicated metric, and a
// mid-run backend kill ejected without a client-visible error.
func (r *SimResult) Check() error {
	if !r.Duel.AffinityWins {
		return fmt.Errorf("cluster sim: affinity hit rate %.4f below round-robin floor %.4f",
			r.Duel.AffinityHitRate, r.Duel.RoundRobinHitRate)
	}
	if r.Quota.Throttled == 0 || r.Quota.RejectedMetric == 0 {
		return fmt.Errorf("cluster sim: quota scenario produced no 429s (throttled=%d metric=%d)",
			r.Quota.Throttled, r.Quota.RejectedMetric)
	}
	if r.Kill.Ejections == 0 {
		return fmt.Errorf("cluster sim: killed backend was never ejected")
	}
	if !r.Kill.Held {
		return fmt.Errorf("cluster sim: %d client-visible errors after backend kill — deadline-or-fallback broken",
			r.Kill.Errors)
	}
	return nil
}

// RunSim sweeps every configured policy across every offered-load
// level on a fresh fleet each time (cold caches, identical seeded
// workload), then runs the quota and backend-kill scenarios.
func RunSim(cfg SimConfig) (*SimResult, error) {
	cfg.normalize()
	res := &SimResult{
		Backends:    cfg.Backends,
		Seed:        cfg.Seed,
		DurationSec: cfg.Duration.Seconds(),
		HotFraction: cfg.HotFraction,
	}

	hits := map[string]int64{}
	lookups := map[string]int64{}
	for _, name := range cfg.Policies {
		for _, rps := range cfg.Loads {
			policy, err := ParsePolicy(name)
			if err != nil {
				return nil, err
			}
			fleet := newSimFleet(cfg, policy, nil)
			stats := newLevelStats()
			start := time.Now()
			driveOpenLoop(fleet.handler, newWorkload(cfg), rps, cfg.Duration, "", stats)
			elapsed := time.Since(start).Seconds()
			h, m := fleet.cacheStats()
			point := CurvePoint{
				Policy:      name,
				OfferedRPS:  rps,
				AchievedRPS: float64(stats.ok.Load()) / elapsed,
				Sent:        stats.sent.Load(),
				OK:          stats.ok.Load(),
				Errors:      stats.errors.Load(),
				P50Ms:       stats.hist.Quantile(0.50) * 1e3,
				P99Ms:       stats.hist.Quantile(0.99) * 1e3,
			}
			if point.Sent > 0 {
				point.ErrorRate = float64(point.Errors) / float64(point.Sent)
			}
			if h+m > 0 {
				point.CacheHitRate = float64(h) / float64(h+m)
			}
			res.Curves = append(res.Curves, point)
			hits[name] += h
			lookups[name] += h + m
		}
	}
	if lookups["affinity"] > 0 && lookups["round-robin"] > 0 {
		aff := float64(hits["affinity"]) / float64(lookups["affinity"])
		rr := float64(hits["round-robin"]) / float64(lookups["round-robin"])
		res.Duel = HitRateDuel{AffinityHitRate: aff, RoundRobinHitRate: rr, AffinityWins: aff >= rr}
	}

	res.Quota = runQuotaScenario(cfg)
	res.Kill = runKillScenario(cfg)
	return res, nil
}

// runQuotaScenario offers tenant-a 4× its quota for one second and
// records the 429s.
func runQuotaScenario(cfg SimConfig) QuotaResult {
	limiter := &Limiter{Tenants: map[string]Quota{
		"tenant-a": {Rate: cfg.QuotaRate, Burst: cfg.QuotaRate},
	}}
	fleet := newSimFleet(cfg, NewAffinity(), limiter)
	stats := newLevelStats()
	offered := 4 * cfg.QuotaRate
	driveOpenLoop(fleet.handler, newWorkload(cfg), offered, time.Second, "tenant-a", stats)
	return QuotaResult{
		TenantRateRPS:  cfg.QuotaRate,
		OfferedRPS:     offered,
		Sent:           stats.sent.Load(),
		OK:             stats.ok.Load(),
		Throttled:      stats.throttled.Load(),
		RejectedMetric: fleet.router.Stats().QuotaRejected.Load(),
		TenantRejected: limiter.Rejected()["tenant-a"],
	}
}

// runKillScenario kills one backend halfway through a run and checks
// ejection plus the fleet-level deadline-or-fallback guarantee (no
// client-visible errors: every request is answered by a surviving
// backend).
func runKillScenario(cfg SimConfig) KillResult {
	fleet := newSimFleet(cfg, NewAffinity(), nil)
	stats := newLevelStats()
	timer := time.AfterFunc(cfg.Duration/2, func() { fleet.kill.dead.Store(true) })
	defer timer.Stop()
	driveOpenLoop(fleet.handler, newWorkload(cfg), cfg.Loads[0], cfg.Duration, "", stats)
	m := fleet.router.Stats()
	return KillResult{
		Policy:        "affinity",
		KilledBackend: fleet.router.Backends[0].Name,
		Sent:          stats.sent.Load(),
		OK:            stats.ok.Load(),
		Errors:        stats.errors.Load(),
		Failovers:     m.Failovers.Load(),
		Ejections:     m.Ejections.Load(),
		Held:          stats.errors.Load() == 0 && stats.ok.Load() == stats.sent.Load(),
	}
}

// simFleet is N in-process quote services behind one real router.
// Backend 0 carries a kill switch for the failure scenario.
type simFleet struct {
	router   *Router
	handler  http.Handler
	services []*quote.Service
	kill     *killSwitch
}

// newSimFleet builds a cold fleet over one shared synthetic history.
func newSimFleet(cfg SimConfig, policy Policy, limiter *Limiter) *simFleet {
	set := tracegen.HighVolatility(cfg.Seed)
	f := &simFleet{}
	backends := make([]*Backend, cfg.Backends)
	for i := range backends {
		svc := &quote.Service{Source: &quote.StaticSource{Set: set}}
		f.services = append(f.services, svc)
		var h http.Handler = quote.NewHandler(svc)
		if i == 0 {
			f.kill = &killSwitch{h: h}
			h = f.kill
		}
		b := NewBackend(fmt.Sprintf("quoted-%d", i), h)
		// A long cooldown keeps a killed backend ejected for the whole
		// scenario instead of re-probing the corpse every few seconds.
		b.Breaker = &quote.Breaker{Threshold: cfg.BreakerThreshold, Cooldown: time.Hour}
		backends[i] = b
	}
	f.router = &Router{Backends: backends, Policy: policy, Limiter: limiter}
	f.handler = f.router.Handler()
	return f
}

// cacheStats sums plan-cache hits and misses across the fleet.
func (f *simFleet) cacheStats() (hits, misses int64) {
	for _, svc := range f.services {
		m := svc.Stats()
		hits += m.CacheHits.Load()
		misses += m.CacheMisses.Load()
	}
	return hits, misses
}

// killSwitch simulates a crashed backend: once dead, every request
// fails the way a reverse proxy to a dead process does (a 5xx with no
// useful body), which is what trips the router's breaker.
type killSwitch struct {
	dead atomic.Bool
	h    http.Handler
}

// ServeHTTP implements http.Handler.
func (k *killSwitch) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if k.dead.Load() {
		http.Error(w, "backend down", http.StatusBadGateway)
		return
	}
	k.h.ServeHTTP(w, r)
}

// workload generates the seeded open-loop request mix: HotFraction of
// requests repeat one of HotShapes cacheable shapes (quoted
// -selfbench's grid of work × slack), the rest are unique shapes that
// can never hit any cache. next is called from the single scheduler
// goroutine only.
type workload struct {
	rng         *rand.Rand
	hot         [][]byte
	hotFraction float64
	uniq        int
}

// newWorkload builds the deterministic mix for one run.
func newWorkload(cfg SimConfig) *workload {
	w := &workload{
		rng:         rand.New(rand.NewSource(int64(cfg.Seed))),
		hotFraction: cfg.HotFraction,
	}
	for _, work := range []float64{4, 8, 12, 16, 20, 24} {
		for _, slack := range []float64{1.2, 1.5} {
			w.hot = append(w.hot, quoteBody(work, work*slack))
		}
	}
	for len(w.hot) < cfg.HotShapes {
		w.hot = append(w.hot, w.hot[len(w.hot)%12])
	}
	w.hot = w.hot[:cfg.HotShapes]
	return w
}

// next returns the next request body in the mix.
func (w *workload) next() []byte {
	if w.rng.Float64() < w.hotFraction {
		return w.hot[w.rng.Intn(len(w.hot))]
	}
	w.uniq++
	work := 2 + float64(w.uniq)*0.001
	return quoteBody(work, work*1.5)
}

// quoteBody renders one /v1/quote request body.
func quoteBody(work, deadline float64) []byte {
	return []byte(fmt.Sprintf(`{"work_hours":%g,"deadline_hours":%g,"history_window":3,"max_zones":2}`,
		work, deadline))
}

// levelStats accumulates one run's outcomes.
type levelStats struct {
	sent, ok, errors, throttled atomic.Int64
	hist                        *obs.Histogram
}

// newLevelStats returns empty stats.
func newLevelStats() *levelStats { return &levelStats{hist: obs.NewHistogram(nil)} }

// driveOpenLoop fires rps requests per second at handler for dur,
// open-loop: arrivals follow the schedule regardless of completions,
// so saturation shows up as queueing latency in the histogram, exactly
// as it would for real clients. It returns once every in-flight
// request has been answered.
func driveOpenLoop(handler http.Handler, w *workload, rps float64, dur time.Duration, tenant string, stats *levelStats) {
	interval := time.Duration(float64(time.Second) / rps)
	n := int(rps * dur.Seconds())
	t0 := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if d := time.Until(t0.Add(time.Duration(i) * interval)); d > 0 {
			time.Sleep(d)
		}
		body := w.next()
		wg.Add(1)
		go func(body []byte) {
			defer wg.Done()
			req, err := http.NewRequest(http.MethodPost, "/v1/quote", bytes.NewReader(body))
			if err != nil {
				stats.errors.Add(1)
				stats.sent.Add(1)
				return
			}
			req.Header.Set("Content-Type", "application/json")
			if tenant != "" {
				req.Header.Set("X-Tenant", tenant)
			}
			start := time.Now()
			rec := newCapture()
			handler.ServeHTTP(rec, req)
			stats.hist.Observe(time.Since(start).Seconds())
			stats.sent.Add(1)
			switch {
			case rec.code == http.StatusOK:
				stats.ok.Add(1)
			case rec.code == http.StatusTooManyRequests:
				stats.throttled.Add(1)
			default:
				stats.errors.Add(1)
			}
		}(body)
	}
	wg.Wait()
}
