package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestNormalCDF(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.959964, 0.975},
		{-1.959964, 0.025},
		{3, 0.99865},
		{-5, 2.8665e-7},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); math.Abs(got-c.want) > 1e-4 {
			t.Errorf("NormalCDF(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestRegIncompleteBetaKnownValues(t *testing.T) {
	cases := []struct{ a, b, x, want float64 }{
		// I_x(1, 1) = x (uniform distribution).
		{1, 1, 0.3, 0.3},
		{1, 1, 0.7, 0.7},
		// I_x(2, 1) = x².
		{2, 1, 0.5, 0.25},
		// I_x(1, 2) = 1 − (1−x)² = 2x − x².
		{1, 2, 0.5, 0.75},
		// Symmetry point: I_0.5(a, a) = 0.5.
		{3, 3, 0.5, 0.5},
		{7.5, 7.5, 0.5, 0.5},
		// Edges.
		{2, 3, 0, 0},
		{2, 3, 1, 1},
	}
	for _, c := range cases {
		if got := RegIncompleteBeta(c.a, c.b, c.x); math.Abs(got-c.want) > 1e-10 {
			t.Errorf("I_%g(%g,%g) = %g, want %g", c.x, c.a, c.b, got, c.want)
		}
	}
	if !math.IsNaN(RegIncompleteBeta(-1, 2, 0.5)) {
		t.Error("negative parameter accepted")
	}
}

func TestRegIncompleteBetaMonotone(t *testing.T) {
	prev := -1.0
	for x := 0.0; x <= 1.0; x += 0.01 {
		v := RegIncompleteBeta(2.5, 4.5, x)
		if v < prev-1e-12 {
			t.Fatalf("not monotone at x=%g", x)
		}
		prev = v
	}
}

func TestFCDFKnownValues(t *testing.T) {
	// Critical values: P(F(1, 10) ≤ 4.965) ≈ 0.95, P(F(5, 20) ≤ 2.711) ≈ 0.95.
	cases := []struct{ x, d1, d2, want float64 }{
		{4.965, 1, 10, 0.95},
		{2.711, 5, 20, 0.95},
		{1, 10, 10, 0.5},
	}
	for _, c := range cases {
		if got := FCDF(c.x, c.d1, c.d2); math.Abs(got-c.want) > 2e-3 {
			t.Errorf("FCDF(%g; %g, %g) = %g, want %g", c.x, c.d1, c.d2, got, c.want)
		}
	}
	if FCDF(-1, 2, 2) != 0 {
		t.Error("negative F accepted")
	}
	if got := FSurvival(4.965, 1, 10); math.Abs(got-0.05) > 2e-3 {
		t.Errorf("FSurvival = %g", got)
	}
}

func TestMannWhitneyDetectsShift(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	xs := make([]float64, 60)
	ys := make([]float64, 60)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = rng.NormFloat64() + 1.5 // clearly shifted
	}
	res := MannWhitney(xs, ys)
	if res.P > 1e-6 {
		t.Fatalf("shift not detected: p = %g", res.P)
	}
	if res.EffectSize > 0.3 {
		t.Fatalf("effect size = %g, expected well below 0.5 (xs smaller)", res.EffectSize)
	}
}

func TestMannWhitneyNoDifference(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	xs := make([]float64, 80)
	ys := make([]float64, 80)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = rng.NormFloat64()
	}
	res := MannWhitney(xs, ys)
	if res.P < 0.01 {
		t.Fatalf("false positive: p = %g", res.P)
	}
	if math.Abs(res.EffectSize-0.5) > 0.15 {
		t.Fatalf("effect size = %g for identical distributions", res.EffectSize)
	}
}

func TestMannWhitneyTies(t *testing.T) {
	// Heavy ties (all values from a small set) must not panic or yield
	// NaN; all-equal samples give p = 1.
	xs := []float64{1, 1, 2, 2, 3}
	ys := []float64{1, 2, 2, 3, 3}
	res := MannWhitney(xs, ys)
	if math.IsNaN(res.P) || res.P < 0 || res.P > 1 {
		t.Fatalf("tied p = %g", res.P)
	}
	same := MannWhitney([]float64{5, 5, 5}, []float64{5, 5})
	if same.P != 1 {
		t.Fatalf("all-tied p = %g, want 1", same.P)
	}
}

func TestMannWhitneyDegenerate(t *testing.T) {
	res := MannWhitney(nil, []float64{1})
	if res.P != 1 || res.EffectSize != 0.5 {
		t.Fatalf("degenerate = %+v", res)
	}
}

func TestMannWhitneySymmetry(t *testing.T) {
	xs := []float64{1, 3, 5, 7}
	ys := []float64{2, 4, 6, 8}
	a := MannWhitney(xs, ys)
	b := MannWhitney(ys, xs)
	if math.Abs(a.P-b.P) > 1e-12 {
		t.Fatalf("asymmetric p-values: %g vs %g", a.P, b.P)
	}
	if math.Abs(a.EffectSize+b.EffectSize-1) > 1e-12 {
		t.Fatalf("effect sizes do not complement: %g + %g", a.EffectSize, b.EffectSize)
	}
}
