package stats

import (
	"math"
	"sort"
)

// MannWhitneyResult reports a two-sided Mann-Whitney U test of whether
// two cost samples come from the same distribution — how the harness
// checks that, e.g., redundancy's advantage over a single zone in a
// cell is not tiling noise.
type MannWhitneyResult struct {
	// U is the test statistic of the first sample.
	U float64
	// Z is the normal approximation z-score (tie-corrected).
	Z float64
	// P is the two-sided p-value under the normal approximation.
	P float64
	// EffectSize is the common-language effect size U/(n1·n2): the
	// probability that a random draw from the first sample exceeds one
	// from the second (ties counted half; 0.5 = indistinguishable).
	EffectSize float64
}

// MannWhitney runs the two-sided test on xs vs ys. It returns a zero
// result with P = 1 for degenerate inputs (either sample empty).
func MannWhitney(xs, ys []float64) MannWhitneyResult {
	n1, n2 := float64(len(xs)), float64(len(ys))
	if n1 == 0 || n2 == 0 {
		return MannWhitneyResult{P: 1, EffectSize: 0.5}
	}
	type obs struct {
		v     float64
		first bool
	}
	all := make([]obs, 0, len(xs)+len(ys))
	for _, v := range xs {
		all = append(all, obs{v, true})
	}
	for _, v := range ys {
		all = append(all, obs{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Midranks with tie correction.
	ranks := make([]float64, len(all))
	var tieTerm float64
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		t := float64(j - i)
		tieTerm += t*t*t - t
		i = j
	}
	var r1 float64
	for i, o := range all {
		if o.first {
			r1 += ranks[i]
		}
	}
	u1 := r1 - n1*(n1+1)/2
	n := n1 + n2
	mean := n1 * n2 / 2
	variance := n1 * n2 / 12 * ((n + 1) - tieTerm/(n*(n-1)))
	res := MannWhitneyResult{U: u1, EffectSize: u1 / (n1 * n2)}
	if variance <= 0 {
		// All observations tied: no evidence of a difference.
		res.P = 1
		return res
	}
	// Continuity-corrected z.
	z := u1 - mean
	switch {
	case z > 0.5:
		z -= 0.5
	case z < -0.5:
		z += 0.5
	default:
		z = 0
	}
	z /= math.Sqrt(variance)
	res.Z = z
	res.P = 2 * (1 - NormalCDF(math.Abs(z)))
	if res.P > 1 {
		res.P = 1
	}
	return res
}
