package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

// ExampleNewBox summarises a cost sample the way the figures do.
func ExampleNewBox() {
	costs := []float64{42, 20, 44, 48, 15}
	b := stats.NewBox(costs)
	fmt.Printf("n=%d min=%.0f median=%.0f max=%.0f\n", b.N, b.Min, b.Median, b.Max)
	// Output: n=5 min=15 median=42 max=48
}

// ExampleMannWhitney tests whether one policy's costs are genuinely
// lower than another's.
func ExampleMannWhitney() {
	redundant := []float64{15, 17, 18, 20, 21, 22}
	single := []float64{40, 42, 44, 46, 47, 48}
	r := stats.MannWhitney(redundant, single)
	fmt.Printf("P(redundant > single) = %.2f, significant: %v\n",
		r.EffectSize, r.P < 0.05)
	// Output: P(redundant > single) = 0.00, significant: true
}
