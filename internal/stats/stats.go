// Package stats provides the descriptive statistics the experiment
// harness reports: quantiles, five-number boxplot summaries (the
// paper's figures are boxplots of per-experiment cost), and simple
// aggregates.
package stats

import (
	"math"
	"sort"
)

// Quantile returns the q-quantile of xs (0 ≤ q ≤ 1) with linear
// interpolation between order statistics; NaN for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean; NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Box is a five-number boxplot summary with mean and sample count.
type Box struct {
	N      int
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
	Mean   float64
}

// NewBox summarises the samples; an empty input yields a Box of NaNs
// with N = 0.
func NewBox(xs []float64) Box {
	if len(xs) == 0 {
		nan := math.NaN()
		return Box{Min: nan, Q1: nan, Median: nan, Q3: nan, Max: nan, Mean: nan}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return Box{
		N:      len(xs),
		Min:    sorted[0],
		Q1:     quantileSorted(sorted, 0.25),
		Median: quantileSorted(sorted, 0.5),
		Q3:     quantileSorted(sorted, 0.75),
		Max:    sorted[len(sorted)-1],
		Mean:   Mean(xs),
	}
}

// IQR returns the interquartile range.
func (b Box) IQR() float64 { return b.Q3 - b.Q1 }
