package stats

import "math"

// Distribution functions used by the harness's significance tests:
// the standard normal CDF (Mann-Whitney's normal approximation) and
// the F distribution CDF via the regularised incomplete beta function
// (Granger causality tests in the VAR analysis).

// NormalCDF returns P(Z ≤ x) for a standard normal Z.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// RegIncompleteBeta returns the regularised incomplete beta function
// I_x(a, b) for a, b > 0 and x in [0, 1], via the continued-fraction
// expansion (Lentz's algorithm), the standard numerical approach.
func RegIncompleteBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	case a <= 0 || b <= 0:
		return math.NaN()
	}
	// Symmetry: use the expansion on the side where it converges fast.
	if x > (a+1)/(a+b+2) {
		return 1 - RegIncompleteBeta(b, a, 1-x)
	}
	lbeta := lgamma(a) + lgamma(b) - lgamma(a+b)
	front := math.Exp(a*math.Log(x)+b*math.Log(1-x)-lbeta) / a

	// Lentz's continued fraction.
	const (
		eps     = 1e-14
		tiny    = 1e-30
		maxIter = 500
	)
	f, c, d := 1.0, 1.0, 0.0
	for i := 0; i <= maxIter; i++ {
		m := float64(i / 2)
		var numerator float64
		switch {
		case i == 0:
			numerator = 1
		case i%2 == 0:
			numerator = m * (b - m) * x / ((a + 2*m - 1) * (a + 2*m))
		default:
			numerator = -(a + m) * (a + b + m) * x / ((a + 2*m) * (a + 2*m + 1))
		}
		d = 1 + numerator*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		d = 1 / d
		c = 1 + numerator/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		delta := c * d
		f *= delta
		if math.Abs(delta-1) < eps {
			break
		}
	}
	return front * (f - 1)
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// FCDF returns P(F ≤ x) for an F distribution with d1 and d2 degrees of
// freedom.
func FCDF(x, d1, d2 float64) float64 {
	if x <= 0 {
		return 0
	}
	return RegIncompleteBeta(d1/2, d2/2, d1*x/(d1*x+d2))
}

// FSurvival returns the upper tail P(F > x): the p-value of an observed
// F statistic.
func FSurvival(x, d1, d2 float64) float64 {
	return 1 - FCDF(x, d1, d2)
}
