package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); got != c.want {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
	// Input is not mutated.
	if xs[0] != 4 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %g", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("empty mean should be NaN")
	}
}

func TestNewBox(t *testing.T) {
	b := NewBox([]float64{5, 1, 3, 2, 4})
	if b.N != 5 || b.Min != 1 || b.Max != 5 || b.Median != 3 || b.Q1 != 2 || b.Q3 != 4 || b.Mean != 3 {
		t.Fatalf("box = %+v", b)
	}
	if b.IQR() != 2 {
		t.Fatalf("IQR = %g", b.IQR())
	}
	empty := NewBox(nil)
	if empty.N != 0 || !math.IsNaN(empty.Median) {
		t.Fatalf("empty box = %+v", empty)
	}
}

func TestBoxOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				// Bound magnitudes so the mean cannot overflow.
				xs = append(xs, math.Mod(v, 1e9))
			}
		}
		if len(xs) == 0 {
			return true
		}
		b := NewBox(xs)
		return b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.Max &&
			b.Mean >= b.Min && b.Mean <= b.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
