// Package opt derives bid-price recommendations analytically from the
// price Markov chain, without replaying history through the simulator.
//
// This is an extension beyond the paper: the paper's Adaptive scheme
// selects its bid by simulating every permutation against recent
// history (§7.1). Here the same chain that powers Markov-Daly yields,
// in closed form per candidate bid B:
//
//   - availability: the stationary probability of the price sitting at
//     or below B;
//   - the expected paid rate: E[price | price ≤ B], the hour-start
//     price a granted instance is billed at;
//   - the expected up and down durations of a grant/out-of-bid cycle
//     (absorption times of the chain restricted to either side of B);
//   - an effective progress rate discounting checkpoint overhead,
//     rework after kills, restart cost and queuing delay;
//   - the resulting expected dollars per hour of committed work.
//
// BestBid picks the cheapest bid whose effective progress rate meets a
// required rate (work over remaining time), which is the analytic
// analogue of Inequality (1). The ablation benchmark compares this
// chooser against the paper's simulation-based estimator.
package opt

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/markov"
	"repro/internal/mat"
)

// Stationary returns a stationary distribution π (πP = π, Σπ = 1) of
// the chain via power iteration, which converges for the reducible
// chains price histories sometimes produce.
func Stationary(m *markov.Model) []float64 {
	n := m.NumStates()
	pi := make([]float64, n)
	for i := range pi {
		pi[i] = 1 / float64(n)
	}
	next := make([]float64, n)
	for iter := 0; iter < 10000; iter++ {
		for j := range next {
			next[j] = 0
		}
		for i := 0; i < n; i++ {
			if pi[i] == 0 {
				continue
			}
			row := m.Trans[i]
			for j := 0; j < n; j++ {
				next[j] += pi[i] * row[j]
			}
		}
		var diff float64
		for j := range next {
			diff += math.Abs(next[j] - pi[j])
		}
		pi, next = next, pi
		if diff < 1e-12 {
			break
		}
	}
	return pi
}

// Analysis summarises a bid's analytic behaviour on one zone's chain.
type Analysis struct {
	Bid float64
	// Availability is the stationary fraction of time price ≤ bid.
	Availability float64
	// MeanPaidPrice is E[price | price ≤ bid] in $/h: the expected
	// hour-start rate of a granted instance.
	MeanPaidPrice float64
	// ExpectedUptime and ExpectedDowntime are the mean grant and
	// out-of-bid durations in seconds (+Inf / 0 at the extremes).
	ExpectedUptime   float64
	ExpectedDowntime float64
	// EffectiveRate is committed work per wall-clock second after
	// discounting downtime, checkpoint overhead, rework, restart and
	// queuing delay; in [0, 1].
	EffectiveRate float64
	// CostPerWorkHour is the expected dollars per hour of committed
	// work: MeanPaidPrice × uptime share ÷ EffectiveRate.
	CostPerWorkHour float64
}

// Overheads parameterise the effective-rate model.
type Overheads struct {
	// CheckpointCost and RestartCost are t_c and t_r in seconds.
	CheckpointCost, RestartCost float64
	// QueueDelay is the mean spot request queuing delay in seconds.
	QueueDelay float64
}

// Analyze evaluates one bid against the chain.
func Analyze(m *markov.Model, bid float64, ov Overheads) Analysis {
	pi := Stationary(m)
	a := Analysis{Bid: bid}
	var availMass, paid float64
	for i, p := range m.States {
		if p <= bid {
			availMass += pi[i]
			paid += pi[i] * p
		}
	}
	a.Availability = availMass
	if availMass > 0 {
		a.MeanPaidPrice = paid / availMass
	}
	if availMass == 0 {
		return a // never granted: rate 0, cost undefined (zero value)
	}

	// Expected uptime from the stationary-conditional up start.
	var up float64
	infUp := false
	for i, p := range m.States {
		if p > bid || pi[i] == 0 {
			continue
		}
		u := m.ExpectedUptimeExact(bid, p)
		if math.IsInf(u, 1) {
			infUp = true
			break
		}
		up += pi[i] / availMass * u
	}
	if infUp {
		a.ExpectedUptime = math.Inf(1)
	} else {
		a.ExpectedUptime = up
	}
	a.ExpectedDowntime = expectedDowntime(m, bid, pi)

	a.EffectiveRate = effectiveRate(a, ov, float64(m.Step))
	if a.EffectiveRate > 0 {
		upShare := 1.0
		if !math.IsInf(a.ExpectedUptime, 1) && a.ExpectedUptime+a.ExpectedDowntime > 0 {
			upShare = a.ExpectedUptime / (a.ExpectedUptime + a.ExpectedDowntime)
		}
		a.CostPerWorkHour = a.MeanPaidPrice * upShare / a.EffectiveRate
	}
	return a
}

// expectedDowntime is the mean time to re-enter the up set, averaged
// over the stationary-conditional down states; 0 when never down and
// +Inf when the down set is absorbing.
func expectedDowntime(m *markov.Model, bid float64, pi []float64) float64 {
	var downIdx []int
	pos := map[int]int{}
	var downMass float64
	for i, p := range m.States {
		if p > bid {
			pos[i] = len(downIdx)
			downIdx = append(downIdx, i)
			downMass += pi[i]
		}
	}
	if len(downIdx) == 0 || downMass == 0 {
		return 0
	}
	n := len(downIdx)
	a := mat.New(n, n)
	b := mat.New(n, 1)
	for r, i := range downIdx {
		b.Set(r, 0, float64(m.Step))
		for c, j := range downIdx {
			v := -m.Trans[i][j]
			if r == c {
				v += 1
			}
			a.Set(r, c, v)
		}
	}
	e, err := mat.Solve(a, b)
	if err != nil {
		return math.Inf(1)
	}
	var out float64
	for r, i := range downIdx {
		v := e.At(r, 0)
		if v < 0 {
			return math.Inf(1)
		}
		out += pi[i] / downMass * v
	}
	return out
}

// effectiveRate models committed work per wall-clock second over a
// grant/out-of-bid cycle: each cycle computes for the uptime minus one
// checkpoint interval's expected rework and the per-cycle checkpoint
// overhead, then waits out the downtime, queuing delay and restart.
func effectiveRate(a Analysis, ov Overheads, step float64) float64 {
	if a.Availability == 0 {
		return 0
	}
	if math.IsInf(a.ExpectedUptime, 1) {
		// Never killed: only checkpoint overhead applies. With Daly's
		// interval going to infinity the overhead vanishes.
		return 1
	}
	up := a.ExpectedUptime
	if up <= 0 {
		return 0
	}
	// Daly interval for the chain's MTBF.
	tauOpt := math.Sqrt(2 * ov.CheckpointCost * up)
	if tauOpt <= 0 {
		tauOpt = step
	}
	ckptOverhead := 0.0
	if tauOpt+ov.CheckpointCost > 0 {
		ckptOverhead = ov.CheckpointCost / (tauOpt + ov.CheckpointCost)
	}
	// Expected rework at a kill: half a checkpoint interval, capped by
	// the uptime itself.
	rework := tauOpt / 2
	if rework > up {
		rework = up
	}
	useful := (up - rework) * (1 - ckptOverhead)
	if useful < 0 {
		useful = 0
	}
	cycle := up + a.ExpectedDowntime + ov.QueueDelay + ov.RestartCost
	if cycle <= 0 {
		return 0
	}
	r := useful / cycle
	if r > 1 {
		r = 1
	}
	return r
}

// Recommendation is BestBid's result.
type Recommendation struct {
	Bid      float64
	Analysis Analysis
	// Feasible reports whether the bid's effective rate meets the
	// required rate; when no bid is feasible, BestBid returns the
	// fastest bid with Feasible = false (the deadline guard will buy
	// on-demand time regardless).
	Feasible bool
}

// ErrNoBids reports an empty bid grid.
var ErrNoBids = errors.New("opt: no candidate bids")

// BestBid returns the cheapest bid (expected dollars per hour of work)
// whose effective progress rate meets requiredRate; requiredRate is
// work remaining over time remaining, the analytic Inequality (1).
func BestBid(m *markov.Model, bids []float64, ov Overheads, requiredRate float64) (Recommendation, error) {
	if len(bids) == 0 {
		return Recommendation{}, ErrNoBids
	}
	if requiredRate < 0 || requiredRate > 1 {
		return Recommendation{}, fmt.Errorf("opt: required rate %g outside [0,1]", requiredRate)
	}
	var best *Recommendation
	var fastest *Recommendation
	for _, bid := range bids {
		an := Analyze(m, bid, ov)
		rec := Recommendation{Bid: bid, Analysis: an, Feasible: an.EffectiveRate >= requiredRate}
		if fastest == nil || an.EffectiveRate > fastest.Analysis.EffectiveRate {
			r := rec
			fastest = &r
		}
		if !rec.Feasible || an.CostPerWorkHour <= 0 {
			continue
		}
		if best == nil || an.CostPerWorkHour < best.Analysis.CostPerWorkHour {
			r := rec
			best = &r
		}
	}
	if best != nil {
		return *best, nil
	}
	return *fastest, nil
}
