package opt

import (
	"math"
	"testing"

	"repro/internal/markov"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// twoState fits a chain that alternates between 0.3 (k steps) and 0.9
// (m steps) deterministically in expectation.
func fitChain(t *testing.T, prices []float64) *markov.Model {
	t.Helper()
	m, err := markov.Fit(prices, 300)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestStationaryTwoState(t *testing.T) {
	// 0.3 → 0.9 → 0.3 → … : stationary distribution is (1/2, 1/2).
	m := fitChain(t, []float64{0.3, 0.9, 0.3, 0.9, 0.3})
	pi := Stationary(m)
	if math.Abs(pi[0]-0.5) > 1e-9 || math.Abs(pi[1]-0.5) > 1e-9 {
		t.Fatalf("pi = %v", pi)
	}
	var sum float64
	for _, p := range pi {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("pi sums to %g", sum)
	}
}

func TestAnalyzeTwoState(t *testing.T) {
	m := fitChain(t, []float64{0.3, 0.9, 0.3, 0.9, 0.3})
	ov := Overheads{CheckpointCost: 300, RestartCost: 300, QueueDelay: 300}
	an := Analyze(m, 0.5, ov)
	if math.Abs(an.Availability-0.5) > 1e-9 {
		t.Fatalf("availability = %g", an.Availability)
	}
	if math.Abs(an.MeanPaidPrice-0.3) > 1e-9 {
		t.Fatalf("mean paid price = %g", an.MeanPaidPrice)
	}
	// Deterministic alternation: one step up, one step down.
	if math.Abs(an.ExpectedUptime-300) > 1e-6 || math.Abs(an.ExpectedDowntime-300) > 1e-6 {
		t.Fatalf("uptime/downtime = %g/%g", an.ExpectedUptime, an.ExpectedDowntime)
	}
	if an.EffectiveRate <= 0 || an.EffectiveRate >= 1 {
		t.Fatalf("effective rate = %g", an.EffectiveRate)
	}
	if an.CostPerWorkHour <= 0 {
		t.Fatalf("cost per work hour = %g", an.CostPerWorkHour)
	}
}

func TestAnalyzeExtremes(t *testing.T) {
	m := fitChain(t, []float64{0.3, 0.9, 0.3, 0.9, 0.3})
	ov := Overheads{CheckpointCost: 300, RestartCost: 300, QueueDelay: 300}
	// Bid below every state: never granted.
	low := Analyze(m, 0.1, ov)
	if low.Availability != 0 || low.EffectiveRate != 0 {
		t.Fatalf("below-floor analysis = %+v", low)
	}
	// Bid above every state: always up, full rate.
	high := Analyze(m, 2.0, ov)
	if high.Availability != 1 || !math.IsInf(high.ExpectedUptime, 1) {
		t.Fatalf("above-ceiling analysis = %+v", high)
	}
	if high.EffectiveRate != 1 {
		t.Fatalf("above-ceiling rate = %g", high.EffectiveRate)
	}
	if high.ExpectedDowntime != 0 {
		t.Fatalf("above-ceiling downtime = %g", high.ExpectedDowntime)
	}
}

func TestAvailabilityMonotoneInBid(t *testing.T) {
	set := tracegen.HighVolatility(21)
	hist := markov.Quantize(set.Series[0].Slice(0, 4*24*trace.Hour).Prices, 0.05)
	m := fitChain(t, hist)
	ov := Overheads{CheckpointCost: 300, RestartCost: 300, QueueDelay: 300}
	prev := -1.0
	for _, bid := range []float64{0.27, 0.47, 0.87, 1.47, 2.47, 3.47} {
		an := Analyze(m, bid, ov)
		if an.Availability < prev-1e-12 {
			t.Fatalf("availability decreased at bid %g", bid)
		}
		prev = an.Availability
	}
}

func TestAnalyticAvailabilityMatchesEmpirical(t *testing.T) {
	// The stationary availability of a chain fitted on a long window
	// should approximate the window's empirical up fraction.
	set := tracegen.HighVolatility(31)
	s := set.Series[1].Slice(0, 10*24*trace.Hour)
	hist := markov.Quantize(s.Prices, 0.05)
	m := fitChain(t, hist)
	ov := Overheads{CheckpointCost: 300, RestartCost: 300, QueueDelay: 300}
	for _, bid := range []float64{0.81, 1.47, 2.47} {
		an := Analyze(m, bid, ov)
		emp := s.UpFraction(bid)
		if math.Abs(an.Availability-emp) > 0.08 {
			t.Fatalf("bid %g: analytic availability %.3f vs empirical %.3f", bid, an.Availability, emp)
		}
	}
}

func TestBestBid(t *testing.T) {
	set := tracegen.HighVolatility(41)
	hist := markov.Quantize(set.Series[0].Slice(0, 4*24*trace.Hour).Prices, 0.05)
	m := fitChain(t, hist)
	ov := Overheads{CheckpointCost: 300, RestartCost: 300, QueueDelay: 300}
	grid := []float64{0.27, 0.47, 0.87, 1.47, 2.47, 3.47}

	// Loose requirement: the chooser should find a feasible cheap bid.
	rec, err := BestBid(m, grid, ov, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Feasible {
		t.Fatalf("no feasible bid at rate 0.5: %+v", rec)
	}
	if rec.Analysis.CostPerWorkHour <= 0 {
		t.Fatalf("bad cost: %+v", rec)
	}

	// Impossible requirement (rate 1 needs a never-killed zone): the
	// chooser falls back to the fastest bid.
	recHard, err := BestBid(m, grid[:3], ov, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if recHard.Feasible {
		t.Fatalf("rate 1.0 should be infeasible on a volatile zone below $1: %+v", recHard)
	}
	// The fallback is the highest-rate candidate.
	for _, bid := range grid[:3] {
		an := Analyze(m, bid, ov)
		if an.EffectiveRate > recHard.Analysis.EffectiveRate+1e-12 {
			t.Fatalf("fallback %g is not the fastest (bid %g has %g)", recHard.Analysis.EffectiveRate, bid, an.EffectiveRate)
		}
	}
}

func TestBestBidErrors(t *testing.T) {
	m := fitChain(t, []float64{0.3, 0.9, 0.3})
	ov := Overheads{}
	if _, err := BestBid(m, nil, ov, 0.5); err == nil {
		t.Fatal("accepted empty grid")
	}
	if _, err := BestBid(m, []float64{1}, ov, 1.5); err == nil {
		t.Fatal("accepted bad rate")
	}
}

func TestHigherBidNeverSlower(t *testing.T) {
	// Effective rate should be monotone non-decreasing in bid on real
	// chains: more headroom, fewer kills.
	set := tracegen.HighVolatility(51)
	hist := markov.Quantize(set.Series[2].Slice(0, 6*24*trace.Hour).Prices, 0.05)
	m := fitChain(t, hist)
	ov := Overheads{CheckpointCost: 300, RestartCost: 300, QueueDelay: 300}
	prev := -1.0
	for _, bid := range []float64{0.47, 0.87, 1.47, 2.47, 3.47} {
		an := Analyze(m, bid, ov)
		if an.EffectiveRate < prev-0.02 { // small tolerance: rework model is non-linear
			t.Fatalf("rate dropped at bid %g: %g after %g", bid, an.EffectiveRate, prev)
		}
		prev = an.EffectiveRate
	}
}
