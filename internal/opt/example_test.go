package opt_test

import (
	"fmt"

	"repro/internal/markov"
	"repro/internal/opt"
)

// ExampleBestBid picks a bid for a zone that alternates hourly between
// a cheap and an expensive regime.
func ExampleBestBid() {
	// 12 samples at $0.30, 12 at $1.50, repeating: up half the time at
	// any bid between the levels.
	var prices []float64
	for c := 0; c < 20; c++ {
		for i := 0; i < 12; i++ {
			prices = append(prices, 0.30)
		}
		for i := 0; i < 12; i++ {
			prices = append(prices, 1.50)
		}
	}
	chain, err := markov.Fit(prices, 300)
	if err != nil {
		fmt.Println(err)
		return
	}
	ov := opt.Overheads{CheckpointCost: 300, RestartCost: 300, QueueDelay: 300}
	// A modest required rate: a bid between the regimes suffices and is
	// far cheaper than bidding above $1.50.
	rec, err := opt.BestBid(chain, []float64{0.47, 2.47}, ov, 0.25)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("bid $%.2f, availability %.0f%%, feasible %v\n",
		rec.Bid, rec.Analysis.Availability*100, rec.Feasible) // ≈ half the time up
	// Output: bid $0.47, availability 49%, feasible true
}
