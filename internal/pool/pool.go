// Package pool is the repository's one bounded worker-pool primitive.
// The experiment suite's sweep runner, the Adaptive scheme's
// permutation evaluator and the sweep/paperfigs commands all fan work
// out through Run, so concurrency policy — worker bounding, panic
// propagation, deterministic slot assignment — lives in exactly one
// place.
//
// Run assigns item indices to workers dynamically (work stealing via an
// atomic counter), so which goroutine executes fn(i) is not
// deterministic — but every fn(i) runs exactly once, and callers write
// results into slot i of a pre-sized slice, which keeps batch results
// bit-for-bit reproducible regardless of scheduling.
package pool

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// TaskPanic is the value re-panicked on the caller's goroutine when a
// worker's fn(i) panics: it annotates the original panic value with the
// item index and the worker's stack trace, which the bare panic loses
// once it crosses goroutines.
type TaskPanic struct {
	// Index is the item whose fn panicked.
	Index int
	// Value is the original panic value.
	Value any
	// Stack is the panicking worker's stack trace.
	Stack []byte
}

// Error implements error so a recovered TaskPanic reads well in logs.
func (p *TaskPanic) Error() string {
	return fmt.Sprintf("pool: task %d panicked: %v\n%s", p.Index, p.Value, p.Stack)
}

// String implements fmt.Stringer.
func (p *TaskPanic) String() string { return p.Error() }

// Run executes fn(0..n-1) across at most workers goroutines and waits
// for completion. workers <= 0 selects GOMAXPROCS; a single worker (or
// n <= 1) runs inline on the caller's goroutine. If any fn panics, the
// pool stops handing out further items, waits for in-flight items, and
// re-panics exactly once on the caller's goroutine with a *TaskPanic
// annotating the item index — it never deadlocks callers or kills the
// process from an anonymous goroutine.
func Run(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		// Inline: panics propagate naturally on the caller's goroutine,
		// but annotate them identically to the parallel path.
		for i := 0; i < n; i++ {
			runOne(i, fn)
		}
		return
	}

	var (
		next   atomic.Int64 // next item index to hand out
		failed atomic.Bool  // a worker panicked: stop dispatching
		once   sync.Once
		caught *TaskPanic
		wg     sync.WaitGroup
	)
	worker := func() {
		defer wg.Done()
		for !failed.Load() {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			if tp := capture(i, fn); tp != nil {
				once.Do(func() { caught = tp })
				failed.Store(true)
				return
			}
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()
	if caught != nil {
		panic(caught)
	}
}

// RunErr is Run for fallible tasks: fn may return an error, every item
// still runs exactly once (an error does not cancel the remaining
// items), and the first error by item index — not by completion order,
// so the result is deterministic — is returned after all items finish.
// Panics propagate exactly as in Run.
func RunErr(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	Run(workers, n, func(i int) {
		errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runOne invokes fn(i) inline, annotating a panic with the item index.
func runOne(i int, fn func(i int)) {
	if tp := capture(i, fn); tp != nil {
		panic(tp)
	}
}

// capture invokes fn(i), converting a panic into a *TaskPanic.
func capture(i int, fn func(i int)) (tp *TaskPanic) {
	defer func() {
		if v := recover(); v != nil {
			buf := make([]byte, 16<<10)
			buf = buf[:runtime.Stack(buf, false)]
			tp = &TaskPanic{Index: i, Value: v, Stack: buf}
		}
	}()
	fn(i)
	return nil
}
