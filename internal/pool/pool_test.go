package pool

import (
	"strings"
	"sync/atomic"
	"testing"
)

func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		n := 153
		hits := make([]int32, n)
		Run(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestRunZeroAndNegativeN(t *testing.T) {
	Run(4, 0, func(int) { t.Fatal("fn called for n=0") })
	Run(4, -3, func(int) { t.Fatal("fn called for n<0") })
}

func TestRunPanicPropagatesWithIndex(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				v := recover()
				if v == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				tp, ok := v.(*TaskPanic)
				if !ok {
					t.Fatalf("workers=%d: recovered %T, want *TaskPanic", workers, v)
				}
				if tp.Index != 5 {
					t.Errorf("workers=%d: Index = %d, want 5", workers, tp.Index)
				}
				if tp.Value != "boom" {
					t.Errorf("workers=%d: Value = %v, want boom", workers, tp.Value)
				}
				if !strings.Contains(tp.Error(), "task 5 panicked: boom") {
					t.Errorf("workers=%d: Error() = %q lacks annotation", workers, tp.Error())
				}
				if len(tp.Stack) == 0 {
					t.Errorf("workers=%d: missing stack trace", workers)
				}
			}()
			Run(workers, 16, func(i int) {
				if i == 5 {
					panic("boom")
				}
			})
		}()
	}
}

// TestRunPanicDoesNotDeadlock exercises the historical failure mode of
// the experiment suite's bespoke pool: every worker panicking while the
// dispatcher still had items to send. The atomic-counter pool must
// return (by panicking on the caller) rather than hang.
func TestRunPanicDoesNotDeadlock(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() { recover() }()
		Run(4, 10_000, func(i int) { panic(i) })
	}()
	<-done
}

func TestRunStopsDispatchAfterPanic(t *testing.T) {
	var ran atomic.Int64
	func() {
		defer func() { recover() }()
		Run(2, 100_000, func(i int) {
			ran.Add(1)
			panic("first")
		})
	}()
	if got := ran.Load(); got > 100 {
		t.Errorf("pool kept dispatching after panic: %d items ran", got)
	}
}
