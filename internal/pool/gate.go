package pool

import (
	"context"
	"runtime"
)

// Gate bounds the number of operations admitted concurrently: the
// server-side counterpart of Run's bounded batch fan-out. Where Run
// owns a fixed batch, a Gate fronts an open-ended request stream — an
// HTTP handler Acquires before starting an expensive evaluation and
// Releases when done, so an arbitrary number of in-flight requests
// queue at the gate instead of oversubscribing the machine.
type Gate struct {
	slots chan struct{}
}

// NewGate returns a gate admitting at most n concurrent holders;
// n <= 0 selects 2×GOMAXPROCS (enough to keep every core busy while
// one batch drains).
func NewGate(n int) *Gate {
	if n <= 0 {
		n = 2 * runtime.GOMAXPROCS(0)
	}
	return &Gate{slots: make(chan struct{}, n)}
}

// Acquire blocks until a slot is free or ctx is done, returning the
// context's error in the latter case. A free slot is taken even when
// ctx is already cancelled concurrently with the slot becoming
// available; callers always pair a nil-error Acquire with Release.
func (g *Gate) Acquire(ctx context.Context) error {
	select {
	case g.slots <- struct{}{}:
		return nil
	default:
	}
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TryAcquire takes a slot if one is immediately free and reports
// whether it did.
func (g *Gate) TryAcquire() bool {
	select {
	case g.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release frees a slot taken by a successful Acquire or TryAcquire.
// Calls must pair one-to-one with acquisitions.
func (g *Gate) Release() {
	select {
	case <-g.slots:
	default:
		panic("pool: Gate.Release without matching Acquire")
	}
}

// InFlight returns the number of slots currently held.
func (g *Gate) InFlight() int { return len(g.slots) }

// Cap returns the gate's admission bound.
func (g *Gate) Cap() int { return cap(g.slots) }
