package pool

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGateBoundsConcurrency hammers a small gate from many goroutines
// and asserts the observed concurrency never exceeds the bound.
func TestGateBoundsConcurrency(t *testing.T) {
	const bound = 4
	g := NewGate(bound)
	if g.Cap() != bound {
		t.Fatalf("Cap() = %d, want %d", g.Cap(), bound)
	}
	var cur, max atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.Acquire(context.Background()); err != nil {
				t.Error(err)
				return
			}
			n := cur.Add(1)
			for {
				m := max.Load()
				if n <= m || max.CompareAndSwap(m, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			g.Release()
		}()
	}
	wg.Wait()
	if max.Load() > bound {
		t.Fatalf("observed %d concurrent holders, bound %d", max.Load(), bound)
	}
	if g.InFlight() != 0 {
		t.Fatalf("InFlight() = %d after drain", g.InFlight())
	}
}

// TestGateAcquireCancellation verifies a blocked Acquire returns the
// context error once cancelled.
func TestGateAcquireCancellation(t *testing.T) {
	g := NewGate(1)
	if !g.TryAcquire() {
		t.Fatal("TryAcquire on empty gate failed")
	}
	if g.TryAcquire() {
		t.Fatal("TryAcquire succeeded past the bound")
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- g.Acquire(ctx) }()
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Acquire returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Acquire did not observe cancellation")
	}
	g.Release()
}

// TestGateQueuedCancellation queues many waiters behind a full gate,
// cancels a subset while they are still queued, and checks the
// cancelled waiters all observe their context error while the
// survivors drain through the gate one slot at a time — no slot is
// leaked to a cancelled waiter and no survivor starves.
func TestGateQueuedCancellation(t *testing.T) {
	const (
		waiters   = 10
		cancelled = 5
	)
	g := NewGate(1)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	cancels := make([]context.CancelFunc, waiters)
	cancelledErrs := make(chan error, cancelled)
	survivorErrs := make(chan error, waiters-cancelled)
	for i := 0; i < waiters; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancels[i] = cancel
		ch := survivorErrs
		if i < cancelled {
			ch = cancelledErrs
		}
		go func(ctx context.Context, ch chan error) { ch <- g.Acquire(ctx) }(ctx, ch)
	}
	// The gate is full: give the waiters time to queue and check none
	// sneaked through.
	select {
	case err := <-cancelledErrs:
		t.Fatalf("waiter returned %v while the gate was full", err)
	case err := <-survivorErrs:
		t.Fatalf("waiter returned %v while the gate was full", err)
	case <-time.After(50 * time.Millisecond):
	}

	for i := 0; i < cancelled; i++ {
		cancels[i]()
	}
	for i := 0; i < cancelled; i++ {
		select {
		case err := <-cancelledErrs:
			if err != context.Canceled {
				t.Fatalf("cancelled waiter returned %v, want context.Canceled", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("cancelled waiter did not observe cancellation while queued")
		}
	}
	select {
	case err := <-survivorErrs:
		t.Fatalf("survivor returned %v before any slot was released", err)
	default:
	}

	// Release the held slot and drain: each release admits exactly one
	// surviving waiter, and no slot leaks to a cancelled one.
	g.Release()
	for n := 0; n < waiters-cancelled; n++ {
		select {
		case err := <-survivorErrs:
			if err != nil {
				t.Fatalf("surviving waiter returned %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("no surviving waiter acquired after release %d", n)
		}
		if in := g.InFlight(); in != 1 {
			t.Fatalf("InFlight() = %d with one admitted survivor, want 1", in)
		}
		g.Release()
	}
	if g.InFlight() != 0 {
		t.Fatalf("InFlight() = %d after drain, want 0", g.InFlight())
	}
	for _, cancel := range cancels[cancelled:] {
		cancel()
	}
}

// TestGateDefaultsAndMisuse covers the default sizing and the
// unmatched-release panic.
func TestGateDefaultsAndMisuse(t *testing.T) {
	if NewGate(0).Cap() <= 0 {
		t.Fatal("default gate has no capacity")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Release without Acquire did not panic")
		}
	}()
	NewGate(1).Release()
}
