package pool

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGateBoundsConcurrency hammers a small gate from many goroutines
// and asserts the observed concurrency never exceeds the bound.
func TestGateBoundsConcurrency(t *testing.T) {
	const bound = 4
	g := NewGate(bound)
	if g.Cap() != bound {
		t.Fatalf("Cap() = %d, want %d", g.Cap(), bound)
	}
	var cur, max atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.Acquire(context.Background()); err != nil {
				t.Error(err)
				return
			}
			n := cur.Add(1)
			for {
				m := max.Load()
				if n <= m || max.CompareAndSwap(m, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			g.Release()
		}()
	}
	wg.Wait()
	if max.Load() > bound {
		t.Fatalf("observed %d concurrent holders, bound %d", max.Load(), bound)
	}
	if g.InFlight() != 0 {
		t.Fatalf("InFlight() = %d after drain", g.InFlight())
	}
}

// TestGateAcquireCancellation verifies a blocked Acquire returns the
// context error once cancelled.
func TestGateAcquireCancellation(t *testing.T) {
	g := NewGate(1)
	if !g.TryAcquire() {
		t.Fatal("TryAcquire on empty gate failed")
	}
	if g.TryAcquire() {
		t.Fatal("TryAcquire succeeded past the bound")
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- g.Acquire(ctx) }()
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Acquire returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Acquire did not observe cancellation")
	}
	g.Release()
}

// TestGateDefaultsAndMisuse covers the default sizing and the
// unmatched-release panic.
func TestGateDefaultsAndMisuse(t *testing.T) {
	if NewGate(0).Cap() <= 0 {
		t.Fatal("default gate has no capacity")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Release without Acquire did not panic")
		}
	}()
	NewGate(1).Release()
}
