// Package replay archives experiment outcomes as JSON so sweeps can be
// run once and re-analysed many times (different aggregations,
// significance tests, plots) without re-simulating.
package replay

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Record is one archived run with the parameters that produced it.
type Record struct {
	// Experiment coordinates.
	Regime string  `json:"regime"`
	Slack  float64 `json:"slack"`
	Tc     int64   `json:"tc"`
	Policy string  `json:"policy"`
	Bid    float64 `json:"bid"`
	N      int     `json:"n"`
	Window int     `json:"window"`
	// Outcome.
	Cost             float64 `json:"cost"`
	SpotCost         float64 `json:"spot_cost"`
	OnDemandCost     float64 `json:"od_cost"`
	Completed        bool    `json:"completed"`
	DeadlineMet      bool    `json:"deadline_met"`
	SwitchedOnDemand bool    `json:"switched_od"`
	FinishTime       int64   `json:"finish_time"`
	Checkpoints      int     `json:"checkpoints"`
	Restarts         int     `json:"restarts"`
	ProviderKills    int     `json:"kills"`
}

// FromResult builds a record from a run result plus its coordinates.
func FromResult(res *sim.Result, regime string, slack float64, tc int64, bid float64, n, window int) Record {
	return Record{
		Regime: regime, Slack: slack, Tc: tc,
		Policy: res.Policy, Bid: bid, N: n, Window: window,
		Cost: res.Cost, SpotCost: res.SpotCost, OnDemandCost: res.OnDemandCost,
		Completed: res.Completed, DeadlineMet: res.DeadlineMet,
		SwitchedOnDemand: res.SwitchedOnDemand, FinishTime: res.FinishTime,
		Checkpoints: res.Checkpoints, Restarts: res.Restarts, ProviderKills: res.ProviderKills,
	}
}

// Archive is a set of records with free-form provenance metadata
// (suite seed, window count, code version, …).
type Archive struct {
	Meta    map[string]string `json:"meta,omitempty"`
	Records []Record          `json:"records"`
}

// Add appends a record.
func (a *Archive) Add(r Record) { a.Records = append(a.Records, r) }

// Write encodes the archive as JSON.
func (a *Archive) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(a)
}

// Read decodes an archive.
func Read(r io.Reader) (*Archive, error) {
	var a Archive
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&a); err != nil {
		return nil, fmt.Errorf("replay: decoding archive: %w", err)
	}
	return &a, nil
}

// Filter returns the records matching the predicate.
func (a *Archive) Filter(keep func(Record) bool) []Record {
	var out []Record
	for _, r := range a.Records {
		if keep(r) {
			out = append(out, r)
		}
	}
	return out
}

// Costs extracts the cost column of the matching records.
func (a *Archive) Costs(keep func(Record) bool) []float64 {
	var out []float64
	for _, r := range a.Records {
		if keep(r) {
			out = append(out, r.Cost)
		}
	}
	return out
}

// Box summarises the matching records' costs.
func (a *Archive) Box(keep func(Record) bool) stats.Box {
	return stats.NewBox(a.Costs(keep))
}

// Deadlines reports how many matching records missed their deadline
// (which must always be zero for guard-enabled runs — a quick archive
// integrity check).
func (a *Archive) Deadlines(keep func(Record) bool) (met, missed int) {
	for _, r := range a.Records {
		if !keep(r) {
			continue
		}
		if r.DeadlineMet {
			met++
		} else {
			missed++
		}
	}
	return met, missed
}
