package replay

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

func sampleArchive() *Archive {
	a := &Archive{Meta: map[string]string{"seed": "1"}}
	a.Add(Record{Regime: "high", Policy: "periodic", Bid: 0.81, N: 1, Window: 0, Cost: 42, DeadlineMet: true})
	a.Add(Record{Regime: "high", Policy: "periodic", Bid: 0.81, N: 1, Window: 1, Cost: 44, DeadlineMet: true})
	a.Add(Record{Regime: "high", Policy: "markov-daly", Bid: 0.81, N: 3, Window: 0, Cost: 20, DeadlineMet: true})
	return a
}

func TestArchiveRoundTrip(t *testing.T) {
	a := sampleArchive()
	var buf bytes.Buffer
	if err := a.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != 3 || got.Meta["seed"] != "1" {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if got.Records[2].Policy != "markov-daly" || got.Records[2].Cost != 20 {
		t.Fatalf("record mismatch: %+v", got.Records[2])
	}
}

func TestReadRejectsUnknownFields(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"records":[{"bogus":1}]}`)); err == nil {
		t.Fatal("accepted unknown fields")
	}
	if _, err := Read(strings.NewReader(`{`)); err == nil {
		t.Fatal("accepted truncated JSON")
	}
}

func TestFilterAndAggregates(t *testing.T) {
	a := sampleArchive()
	periodic := func(r Record) bool { return r.Policy == "periodic" }
	if got := a.Filter(periodic); len(got) != 2 {
		t.Fatalf("filter = %d records", len(got))
	}
	costs := a.Costs(periodic)
	if len(costs) != 2 || costs[0] != 42 {
		t.Fatalf("costs = %v", costs)
	}
	box := a.Box(periodic)
	if box.Median != 43 {
		t.Fatalf("median = %g", box.Median)
	}
	met, missed := a.Deadlines(func(Record) bool { return true })
	if met != 3 || missed != 0 {
		t.Fatalf("deadlines = %d/%d", met, missed)
	}
}

func TestFromResult(t *testing.T) {
	res := &sim.Result{
		Policy: "periodic", Cost: 12.5, SpotCost: 10, OnDemandCost: 2.5,
		Completed: true, DeadlineMet: true, Checkpoints: 7, Restarts: 2, ProviderKills: 3,
	}
	rec := FromResult(res, "low", 0.15, 300, 0.81, 2, 9)
	if rec.Regime != "low" || rec.Bid != 0.81 || rec.N != 2 || rec.Window != 9 {
		t.Fatalf("coordinates lost: %+v", rec)
	}
	if rec.Cost != 12.5 || rec.Checkpoints != 7 || !rec.DeadlineMet {
		t.Fatalf("outcome lost: %+v", rec)
	}
}
