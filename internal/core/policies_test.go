package core

import (
	"testing"

	"repro/internal/market"
	"repro/internal/sim"
	"repro/internal/trace"
)

// stepTrace builds a single-zone trace from (price, count) pairs.
func stepTrace(pairs ...[2]float64) *trace.Set {
	var prices []float64
	for _, p := range pairs {
		for i := 0; i < int(p[1]); i++ {
			prices = append(prices, p[0])
		}
	}
	return trace.MustNewSet(trace.NewSeries("z", 0, prices))
}

// drive runs a machine with the given policy over the trace and returns
// the result, with generous deadline so the guard stays out of the way.
func drive(t *testing.T, set *trace.Set, pol sim.CheckpointPolicy, bid float64, work int64) *sim.Result {
	t.Helper()
	cfg := sim.Config{
		Trace:          set,
		Work:           work,
		Deadline:       set.Duration() - trace.Hour,
		CheckpointCost: 300,
		RestartCost:    300,
		Delay:          market.FixedDelay(0),
		Seed:           1,
	}
	res, err := sim.Run(cfg, SingleZone(pol, bid, 0))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPeriodicExactlyOncePerBillingHour(t *testing.T) {
	set := stepTrace([2]float64{0.30, 12 * 20})
	res := drive(t, set, NewPeriodic(), 0.81, 5*trace.Hour)
	// 5 hours of work + 4-5 checkpoints of 300 s: the run spans just
	// over five billing hours; each completed hour ends with exactly
	// one checkpoint except possibly the final partial one.
	if res.Checkpoints < 4 || res.Checkpoints > 6 {
		t.Fatalf("checkpoints = %d, want ≈ 5", res.Checkpoints)
	}
	if res.ProviderKills != 0 {
		t.Fatalf("kills = %d", res.ProviderKills)
	}
}

func TestThresholdPriceCondition(t *testing.T) {
	// Price rises from 0.30 to 0.60 (above PriceThresh = (0.30+0.81)/2
	// ≈ 0.56) at sample 24 and stays below the bid: condition 1 fires
	// exactly there. No kills.
	set := stepTrace([2]float64{0.30, 24}, [2]float64{0.60, 12 * 8})
	pol := NewThreshold()
	res := drive(t, set, pol, 0.81, 4*trace.Hour)
	if res.Checkpoints == 0 {
		t.Fatal("threshold condition 1 never fired")
	}
	if res.ProviderKills != 0 {
		t.Fatalf("kills = %d", res.ProviderKills)
	}
}

func TestThresholdIgnoresSmallRises(t *testing.T) {
	// A rise that stays below PriceThresh must not trigger condition 1,
	// and a full day of always-up history makes TimeThresh (the mean
	// uptime) a whole day — longer than the run, so condition 2 stays
	// silent too.
	set := stepTrace([2]float64{0.30, 12 * 24}, [2]float64{0.30, 24}, [2]float64{0.35, 12 * 8})
	hist := set.Slice(0, 24*trace.Hour)
	run := set.Slice(24*trace.Hour, set.End())
	cfg := sim.Config{
		Trace: run, History: hist,
		Work: 4 * trace.Hour, Deadline: 9 * trace.Hour,
		CheckpointCost: 300, RestartCost: 300, Delay: market.FixedDelay(0), Seed: 1,
	}
	res, err := sim.Run(cfg, SingleZone(NewThreshold(), 0.81, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Checkpoints != 0 {
		t.Fatalf("checkpoints = %d on a sub-threshold rise", res.Checkpoints)
	}
}

func TestThresholdTimeCondition(t *testing.T) {
	// History alternates up (1 h) / down (1 h) at bid 0.81, so the mean
	// uptime (TimeThresh) ≈ 1 h. During the run the price stays low, so
	// only condition 2 fires — roughly once per ~1 h of uptime.
	var pairs [][2]float64
	for i := 0; i < 6; i++ {
		pairs = append(pairs, [2]float64{0.30, 12}, [2]float64{2.00, 12})
	}
	pairs = append(pairs, [2]float64{0.30, 12 * 10})
	set := stepTrace(pairs...)
	run := set.Slice(12*trace.Hour, set.End())
	hist := set.Slice(0, 12*trace.Hour)
	cfg := sim.Config{
		Trace:          run,
		History:        hist,
		Work:           4 * trace.Hour,
		Deadline:       9 * trace.Hour,
		CheckpointCost: 300,
		RestartCost:    300,
		Delay:          market.FixedDelay(0),
		Seed:           1,
	}
	res, err := sim.Run(cfg, SingleZone(NewThreshold(), 0.81, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Checkpoints < 2 {
		t.Fatalf("condition 2 checkpoints = %d, want a few over 4 h with ≈1 h threshold", res.Checkpoints)
	}
}

func TestLargeBidRidesOutShortSpike(t *testing.T) {
	// A 20-minute spike above L in the middle of an hour: not near the
	// hour end, so Large-bid neither checkpoints nor releases and pays
	// the hour at its (low) start price.
	// Generous deadline keeps the engine's pre-guard insurance
	// checkpoint out of the 4-hour run.
	set := stepTrace([2]float64{0.30, 3}, [2]float64{2.0, 4}, [2]float64{0.30, 12 * 12})
	pol := NewLargeBid(0.81)
	cfg := sim.Config{
		Trace: set, Work: 4 * trace.Hour, Deadline: 10 * trace.Hour,
		CheckpointCost: 300, RestartCost: 300, Delay: market.FixedDelay(0), Seed: 1,
	}
	res, err := sim.Run(cfg, sim.Strategy(NewStatic("lb", sim.RunSpec{Bid: LargeBidAmount, Zones: []int{0}, Policy: pol})))
	if err != nil {
		t.Fatal(err)
	}
	if res.UserReleases != 0 || res.ProviderKills != 0 {
		t.Fatalf("short spike caused releases=%d kills=%d", res.UserReleases, res.ProviderKills)
	}
	if res.FinishTime != 4*trace.Hour {
		t.Fatalf("finish = %d", res.FinishTime)
	}
}

func TestLargeBidReleasesAtHourEndDuringLongSpike(t *testing.T) {
	// The price jumps above L mid-hour and stays there for 3 hours:
	// Large-bid checkpoints near the end of the current paid hour,
	// releases, waits out the spike, and restarts.
	set := stepTrace([2]float64{0.30, 6}, [2]float64{2.0, 12 * 3}, [2]float64{0.30, 12 * 10})
	pol := NewLargeBid(0.81)
	cfg := sim.Config{
		Trace: set, Work: 4 * trace.Hour, Deadline: 10 * trace.Hour,
		CheckpointCost: 300, RestartCost: 300, Delay: market.FixedDelay(0), Seed: 1,
	}
	res, err := sim.Run(cfg, NewStatic("lb", sim.RunSpec{Bid: LargeBidAmount, Zones: []int{0}, Policy: pol}))
	if err != nil {
		t.Fatal(err)
	}
	if res.UserReleases != 1 {
		t.Fatalf("releases = %d, want 1", res.UserReleases)
	}
	if res.Checkpoints == 0 {
		t.Fatal("no pre-release checkpoint")
	}
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1 after the spike", res.Restarts)
	}
	if res.ProviderKills != 0 {
		t.Fatalf("kills = %d (bid $100 should never be outbid here)", res.ProviderKills)
	}
	// The spike hours are never paid: the instance was released after
	// its first (cheap) hour, so no ledger entry exceeds $0.30.
	for _, e := range res.Ledger.Entries {
		if !e.OnDemand && e.Rate > 0.30 {
			t.Fatalf("paid a spike hour at %g", e.Rate)
		}
	}
}

func TestNaiveLargeBidPaysSpikeHours(t *testing.T) {
	set := stepTrace([2]float64{0.30, 6}, [2]float64{2.0, 12 * 3}, [2]float64{0.30, 12 * 10})
	cfg := sim.Config{
		Trace: set, Work: 4 * trace.Hour, Deadline: 10 * trace.Hour,
		CheckpointCost: 300, RestartCost: 300, Delay: market.FixedDelay(0), Seed: 1,
	}
	res, err := sim.Run(cfg, NewStatic("naive", sim.RunSpec{Bid: LargeBidAmount, Zones: []int{0}, Policy: NewNaiveLargeBid()}))
	if err != nil {
		t.Fatal(err)
	}
	if res.UserReleases != 0 {
		t.Fatalf("naive variant released %d times", res.UserReleases)
	}
	paidSpike := false
	for _, e := range res.Ledger.Entries {
		if !e.OnDemand && e.Rate >= 2.0 {
			paidSpike = true
		}
	}
	if !paidSpike {
		t.Fatal("naive variant did not pay any spike hour")
	}
}

func TestMarkovDalySchedulesFiniteInterval(t *testing.T) {
	// History alternates below/above the bid: finite E[T_u] → a finite
	// Daly interval → periodic-ish checkpoints during the calm run.
	var pairs [][2]float64
	for i := 0; i < 24; i++ {
		pairs = append(pairs, [2]float64{0.30, 6}, [2]float64{2.00, 6})
	}
	pairs = append(pairs, [2]float64{0.30, 12 * 10})
	set := stepTrace(pairs...)
	hist := set.Slice(0, 24*trace.Hour)
	run := set.Slice(24*trace.Hour, set.End())
	cfg := sim.Config{
		Trace: run, History: hist,
		Work: 4 * trace.Hour, Deadline: 9 * trace.Hour,
		CheckpointCost: 300, RestartCost: 300, Delay: market.FixedDelay(0), Seed: 1,
	}
	res, err := sim.Run(cfg, SingleZone(NewMarkovDaly(), 0.81, 0))
	if err != nil {
		t.Fatal(err)
	}
	// E[T_u] ≈ 30 min → Daly interval √(2·300·1800) ≈ 17.3 min: many
	// checkpoints across 4 h.
	if res.Checkpoints < 5 {
		t.Fatalf("markov-daly checkpoints = %d, want many at a short predicted uptime", res.Checkpoints)
	}
}

func TestMarkovDalyNeverCheckpointsWhenUnkillable(t *testing.T) {
	// History constant and far below bid: E[T_u] = ∞ → no scheduled
	// checkpoints; only the engine's pre-guard insurance checkpoint can
	// appear, and with this much slack it never does.
	set := stepTrace([2]float64{0.30, 12 * 40}) // 40 hours flat
	hist := set.Slice(0, 24*trace.Hour)
	run := set.Slice(24*trace.Hour, set.End())
	cfg := sim.Config{
		Trace: run, History: hist,
		Work: 4 * trace.Hour, Deadline: 15 * trace.Hour,
		CheckpointCost: 300, RestartCost: 300, Delay: market.FixedDelay(0), Seed: 1,
	}
	res, err := sim.Run(cfg, SingleZone(NewMarkovDaly(), 0.81, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Checkpoints != 0 {
		t.Fatalf("checkpoints = %d on an unkillable zone", res.Checkpoints)
	}
	if res.FinishTime != run.Start()+4*trace.Hour {
		t.Fatalf("finish = %d", res.FinishTime)
	}
}
