package core

import (
	"repro/internal/changepoint"
	"repro/internal/sim"
)

// Changepoint is an extension of the paper's Edge family (§4.3–4.4):
// instead of checkpointing on every upward price tick, it runs a
// two-sided CUSUM detector per active zone and checkpoints only when a
// zone's price shows a *sustained* upward shift. This keeps Edge's
// virtue — checkpointing just before out-of-bid terminations, which
// price regimes usually precede — while shedding its documented flaw of
// burning checkpoints on noise.
type Changepoint struct {
	// Drift is the per-step noise allowance in dollars (default $0.02).
	Drift float64
	// Threshold is the cumulative deviation that signals a shift
	// (default $0.10).
	Threshold float64

	detectors map[int]*changepoint.Detector
}

// NewChangepoint returns the policy with its defaults.
func NewChangepoint() *Changepoint {
	return &Changepoint{Drift: 0.02, Threshold: 0.10}
}

// Name implements sim.CheckpointPolicy.
func (c *Changepoint) Name() string { return "changepoint" }

// Reset implements sim.CheckpointPolicy.
func (c *Changepoint) Reset(env *sim.Env) {
	c.detectors = make(map[int]*changepoint.Detector, len(env.Spec.Zones))
	for _, zi := range env.Spec.Zones {
		d, err := changepoint.New(env.PriceNow(zi), c.Drift, c.Threshold)
		if err != nil {
			// Defaults are valid; a caller-broken configuration falls
			// back to them rather than disabling the policy.
			d, _ = changepoint.New(env.PriceNow(zi), 0.02, 0.10)
		}
		c.detectors[zi] = d
	}
}

// CheckpointCondition feeds each up zone's price to its detector and
// triggers on a sustained upward shift.
func (c *Changepoint) CheckpointCondition(env *sim.Env) bool {
	fire := false
	for _, z := range env.UpZones() {
		d, ok := c.detectors[z.Index]
		if !ok {
			d, _ = changepoint.New(env.PriceNow(z.Index), c.Drift, c.Threshold)
			c.detectors[z.Index] = d
		}
		if d.Observe(env.PriceNow(z.Index)) == changepoint.Up {
			fire = true
		}
	}
	return fire
}

// ScheduleNextCheckpoint implements sim.CheckpointPolicy (no-op: the
// decision is event-driven, as with Edge).
func (c *Changepoint) ScheduleNextCheckpoint(env *sim.Env) {}
