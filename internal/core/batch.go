package core

import (
	"math"
	"sort"

	"repro/internal/daly"
	"repro/internal/markov"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Columnar batched replay: the Adaptive scheme's permutation search
// replays every sibling (bid, zone set, policy) permutation of one
// decision point over the same price window. The machine oracle prices
// them one at a time — a full sim.Machine per permutation, with meters,
// interfaces and per-step allocations — and refits the same prediction
// models through a mutex-guarded shared cache. The batched engine in
// this file prices all of them against one shared trace.Columns view,
// one shared per-(zone, bid) availability index, and batch-local memo
// tables for the Markov fits, expected-uptime solves and Daly
// intervals, replicating the oracle's estimation semantics (static
// strategy, deadline guard disabled, fixed queuing delay, Periodic or
// Markov-Daly policies) instruction for instruction so that every
// float64 is accumulated in the same order and the results are
// bit-identical. The oracle stays authoritative: Evaluator.Measure
// still runs it, differential and fuzz tests hold the two paths equal,
// and Evaluator.DisableBatch routes everything back.
//
// The replayed semantics are exactly those reachable from
// estimationCfg + core.NewStatic: billing advances per Up zone in zone
// index order, state updates and compute run in spec order, checkpoint
// commits restart waiting zones before the policy reschedules, and the
// run closes with FinishEstimation's user-side meter close at the end
// of the window. Specs the oracle would reject (bad zone indices,
// non-positive bids) and policies beyond Periodic/Markov-Daly fall back
// to the oracle per spec.
//
// Memoization is value-faithful rather than structure-faithful: a
// fitted chain is a pure function of (zone, fit time, span, quantum)
// over a fixed window, an expected uptime of the chain plus (bid,
// current price), and a Daly interval of those plus the checkpoint
// cost and zone set — so replacing the oracle's shared PredictorCache
// protocol with batch-local tables indexed by window step returns the
// same bits regardless of which permutation populates an entry first.
// The one place the oracle's caching is NOT pure is its interval key,
// which omits the history span and quantum: Markov-Daly policies with
// different parameters sharing one cache instance can collide there.
// The batch refuses that configuration instead of reproducing it —
// addPerm routes a permutation to the oracle fallback when its shared
// cache was already claimed by a different (span, quantum) profile in
// the same sweep. The batch never writes into the shared cache; a
// later oracle-path miss recomputes the same pure values.

// estimationHorizon mirrors estimationCfg's effectively-unbounded work
// and deadline (1 << 40 seconds).
const estimationHorizon = int64(1) << 40

// batchPolicyKind discriminates the emulated checkpoint policies.
type batchPolicyKind uint8

const (
	polPeriodic batchPolicyKind = iota
	polMarkovDaly
)

// batchPolicy is the flattened per-permutation policy state: the
// Periodic hour latch and the Markov-Daly schedule plus its model
// parameters (resolved once at permutation build time, exactly as the
// oracle resolves them inside computeInterval).
type batchPolicy struct {
	kind batchPolicyKind

	// Markov-Daly parameters and state.
	span    int64
	quantum float64
	higher  bool
	ts      int64

	// Periodic state.
	lastHourEnd int64
}

// chainMemoKey identifies one chain-fit memo column: everything a
// fitted model depends on besides the (grid-aligned) fit time, which
// indexes the column.
type chainMemoKey struct {
	zone    int
	span    int64
	quantum float64
}

// chainMemo memoizes one zone's fitted chains by window step index. A
// nil model with done set records an unfittable history, mirroring the
// oracle's cached nil. While the policy's history span covers the whole
// window — the common case — every fit history is a prefix of the
// zone's (quantized) column, and the memo's PrefixFitter fits those
// without per-fit sorting; shorter spans fall back to the windowed
// Fitter.
type chainMemo struct {
	models []*markov.Model
	done   []bool

	pf      markov.PrefixFitter
	pfReady bool
	qbuf    []float64

	// usolve memoizes expected uptimes on a (step, up-state count)
	// grid of stride ustride. The states a bid admits are a prefix of
	// the model's ascending state list, and the solve reads the bid
	// only through that prefix (and the step's price), so every bid
	// admitting the same k states shares one slot — a whole bid grid
	// typically collapses to a handful of solves per step.
	usolve  memoCol
	ustride int
}

// memoCol is a float memo column over window step indexes with O(1)
// bulk invalidation: an entry is set when its stamp matches the
// column's generation, so recycling a column costs one counter bump
// instead of a sentinel fill across the window. Expected uptimes and
// Daly intervals both use it (neither is ever NaN, but the stamps make
// sentinels unnecessary anyway).
type memoCol struct {
	vals []float64
	ver  []uint32
	gen  uint32
}

// arm sizes the column to n entries and invalidates all of them.
func (mc *memoCol) arm(n int) {
	if cap(mc.vals) < n {
		mc.vals = make([]float64, n)
		mc.ver = make([]uint32, n)
		mc.gen = 0
	}
	mc.vals = mc.vals[:n]
	mc.ver = mc.ver[:n]
	mc.gen++
	if mc.gen == 0 { // generation counter wrapped: clear stale stamps
		for i := range mc.ver {
			mc.ver[i] = 0
		}
		mc.gen = 1
	}
}

// grow extends the column to n entries without invalidating the set
// ones — the streaming evaluator's per-tick window growth. Appended
// entries carry stamp 0, which arm keeps distinct from every live
// generation, so they read as unset.
func (mc *memoCol) grow(n int) {
	for len(mc.vals) < n {
		mc.vals = append(mc.vals, 0)
		mc.ver = append(mc.ver, 0)
	}
}

// get returns the entry and whether it is set.
func (mc *memoCol) get(i int) (float64, bool) {
	if mc.ver[i] == mc.gen {
		return mc.vals[i], true
	}
	return 0, false
}

// set stores the entry.
func (mc *memoCol) set(i int, v float64) {
	mc.vals[i] = v
	mc.ver[i] = mc.gen
}

// batchZone is the flattened per-permutation zone state, the columnar
// counterpart of sim.ZoneState plus its billing meter and the memo
// columns its policy computations read.
type batchZone struct {
	zone    int
	state   sim.InstanceState
	restore bool

	col []float64
	idx *trace.BidIndex
	cm  *chainMemo

	progress  int64
	busyUntil int64
	readyAt   int64

	// The open meter while Up: the accruing hour's start and rate.
	hourStart int64
	hourRate  float64
}

// batchPerm is one permutation's replay state. Zone and billing-order
// storage live in the batchState's flat buffers (offsets, not slices,
// so buffer growth during the build phase cannot leave stale aliases).
type batchPerm struct {
	out int // result slot in the MeasureAll output
	bid float64

	zoff, nz int // zones in spec order: zoneBuf[zoff : zoff+nz]
	boff     int // spec positions in zone-index order: billBuf[boff : boff+nz]

	pol   batchPolicy
	ivals *memoCol // Daly interval by step index (Markov-Daly only)

	// Memo of the last Periodic trigger candidate computed by
	// periodicCap, valid while the leader's open meter (trigH0) and the
	// policy latch are unchanged and now has not passed the candidate
	// (any of those moving can change the answer; nothing else can).
	trigH0, trigLatch, trigCand int64
	trigValid                   bool

	committed   int64
	cost        float64
	maxProgress int64
	nUp         int

	ckActive bool
	ckPos    int // spec position of the checkpointing zone
	ckEnds   int64
	ckSnap   int64
}

// cacheProfile is the Markov-Daly parameter profile claimed by a shared
// PredictorCache instance within one sweep (see the interval-key
// collision note in the package comment).
type cacheProfile struct {
	span    int64
	quantum float64
}

// batchState is the reusable scratch of one batched sweep: the columnar
// view, the availability index, the flat permutation arrays and the
// memo tables. An Evaluator pools these, so the steady state of
// successive decision points reuses every buffer. Permutations replay
// serially on one goroutine — the shared work is memoized, the
// per-step work is branch-light — so none of the state needs locking
// and results cannot depend on a worker count.
type batchState struct {
	cols  *trace.Columns
	avail *trace.AvailIndex

	perms    []batchPerm
	zoneBuf  []batchZone
	billBuf  []int32
	fallback []int

	// Memo tables, looked up by linear scan: a sweep holds one chain
	// memo per (zone, profile) — a handful of entries — so scanning
	// parallel key/value slices beats hashing float-bearing keys.
	chainKeys []chainMemoKey
	chains    []*chainMemo
	cacheRefs []*PredictorCache
	cacheProf []cacheProfile

	freeChains []*chainMemo
	freeIvals  []*memoCol
	freeModels []*markov.Model

	fitter  markov.Fitter
	solver  markov.UptimeSolver
	histBuf []float64
	zsel    []int32 // computeInterval scratch: fittable spec positions

	start, step, end int64
	deadline         int64
	nsteps           int
	tc, tr           int64
}

// reset re-arms the scratch for a new history window, recycling every
// memo table and fitted model into the free lists.
func (b *batchState) reset(hist *trace.Set, tc, tr int64) {
	if b.cols == nil {
		b.cols = trace.NewColumns(hist)
		b.avail = trace.NewAvailIndex(b.cols)
	} else {
		b.cols.Reset(hist)
		b.avail.Reset(b.cols)
		for _, cm := range b.chains {
			for i, m := range cm.models {
				if cm.done[i] && m != nil {
					b.freeModels = append(b.freeModels, m)
				}
			}
			b.freeChains = append(b.freeChains, cm)
		}
		b.chainKeys = b.chainKeys[:0]
		b.chains = b.chains[:0]
		for i := range b.cacheRefs {
			b.cacheRefs[i] = nil // release the decision point's caches
		}
		b.cacheRefs = b.cacheRefs[:0]
		b.cacheProf = b.cacheProf[:0]
		for i := range b.perms {
			if iv := b.perms[i].ivals; iv != nil {
				b.freeIvals = append(b.freeIvals, iv)
			}
		}
	}
	b.perms = b.perms[:0]
	b.zoneBuf = b.zoneBuf[:0]
	b.billBuf = b.billBuf[:0]
	b.fallback = b.fallback[:0]
	b.start = b.cols.Start()
	b.step = b.cols.Step()
	b.end = b.cols.End()
	b.nsteps = b.cols.Steps()
	b.deadline = b.start + estimationHorizon
	b.tc, b.tr = tc, tr
}

// chainMemoFor returns (building if needed) the chain memo column for
// the key, sized to the window.
func (b *batchState) chainMemoFor(key chainMemoKey) *chainMemo {
	for i, k := range b.chainKeys {
		if k == key {
			return b.chains[i]
		}
	}
	var cm *chainMemo
	if n := len(b.freeChains); n > 0 {
		cm = b.freeChains[n-1]
		b.freeChains = b.freeChains[:n-1]
	} else {
		cm = &chainMemo{}
	}
	if cap(cm.models) < b.nsteps {
		cm.models = make([]*markov.Model, b.nsteps)
		cm.done = make([]bool, b.nsteps)
	}
	cm.models = cm.models[:b.nsteps]
	cm.done = cm.done[:b.nsteps]
	for i := range cm.done {
		cm.models[i] = nil
		cm.done[i] = false
	}
	cm.pfReady = false
	if cm.ustride > 0 {
		cm.usolve.arm(b.nsteps * cm.ustride)
	}
	b.chainKeys = append(b.chainKeys, key)
	b.chains = append(b.chains, cm)
	return cm
}

// takeIvals returns an invalidated interval memo sized to the window.
func (b *batchState) takeIvals() *memoCol {
	var iv *memoCol
	if n := len(b.freeIvals); n > 0 {
		iv = b.freeIvals[n-1]
		b.freeIvals = b.freeIvals[:n-1]
	} else {
		iv = &memoCol{}
	}
	iv.arm(b.nsteps)
	return iv
}

// takeModel pops a recycled model for the fitter to refill.
func (b *batchState) takeModel() *markov.Model {
	if n := len(b.freeModels); n > 0 {
		m := b.freeModels[n-1]
		b.freeModels = b.freeModels[:n-1]
		return m
	}
	return &markov.Model{}
}

// addPerm builds the flattened replay state for one spec, reporting
// whether the batched engine supports it. Unsupported specs — foreign
// policy types, empty zone sets, specs sim.checkSpec would reject (the
// oracle turns those errors into zero estimates), and Markov-Daly
// policies whose shared cache is already claimed by a different
// parameter profile — take the per-spec oracle path instead.
func (b *batchState) addPerm(out int, spec sim.RunSpec) bool {
	var pol batchPolicy
	switch p := spec.Policy.(type) {
	case *Periodic:
		pol.kind = polPeriodic
	case *MarkovDaly:
		pol.kind = polMarkovDaly
		pol.span = p.HistorySpan
		if pol.span <= 0 {
			pol.span = markov.DefaultHistory
		}
		pol.quantum = p.Quantum
		pol.higher = p.HigherOrder
		if p.cache != nil {
			prof := cacheProfile{span: pol.span, quantum: pol.quantum}
			claimed := false
			for i, c := range b.cacheRefs {
				if c == p.cache {
					if b.cacheProf[i] != prof {
						return false
					}
					claimed = true
					break
				}
			}
			if !claimed {
				b.cacheRefs = append(b.cacheRefs, p.cache)
				b.cacheProf = append(b.cacheProf, prof)
			}
		}
	default:
		return false
	}
	nz := len(spec.Zones)
	if nz == 0 || spec.Bid <= 0 {
		return false
	}
	for i, zi := range spec.Zones {
		if zi < 0 || zi >= b.cols.NumZones() {
			return false
		}
		for _, zj := range spec.Zones[:i] {
			if zj == zi {
				return false
			}
		}
	}

	zoff := len(b.zoneBuf)
	for _, zi := range spec.Zones {
		z := batchZone{
			zone: zi,
			col:  b.cols.Col(zi),
			idx:  b.avail.Get(zi, spec.Bid),
		}
		if pol.kind == polMarkovDaly {
			z.cm = b.chainMemoFor(chainMemoKey{zone: zi, span: pol.span, quantum: pol.quantum})
		}
		b.zoneBuf = append(b.zoneBuf, z)
	}
	boff := len(b.billBuf)
	for k := 0; k < nz; k++ {
		b.billBuf = append(b.billBuf, int32(k))
	}
	// Billing iterates zones in trace index order (Machine.Step walks
	// env.Zones, not the spec); sort the spec positions accordingly.
	bill := b.billBuf[boff : boff+nz]
	for i := 1; i < nz; i++ {
		for j := i; j > 0 && spec.Zones[bill[j]] < spec.Zones[bill[j-1]]; j-- {
			bill[j], bill[j-1] = bill[j-1], bill[j]
		}
	}
	var ivals *memoCol
	if pol.kind == polMarkovDaly {
		ivals = b.takeIvals()
	}
	b.perms = append(b.perms, batchPerm{out: out, bid: spec.Bid, zoff: zoff, nz: nz, boff: boff, pol: pol, ivals: ivals})
	return true
}

// runPerm replays one permutation over the whole window. It mirrors
// Machine.Reset + the Step loop + FinishEstimation for an estimation
// configuration, in the exact order the oracle executes them.
func (b *batchState) runPerm(p *batchPerm) {
	b.replayPerm(p)
	zs := b.zoneBuf[p.zoff : p.zoff+p.nz]
	bill := b.billBuf[p.boff : p.boff+p.nz]

	// FinishEstimation: close every running meter user-side at the end
	// of the trace, in zone index order.
	for _, bk := range bill {
		z := &zs[bk]
		if z.state != sim.Up {
			continue
		}
		for b.end >= z.hourStart+trace.Hour {
			p.cost += z.hourRate
			z.hourStart += trace.Hour
			z.hourRate = z.col[b.cols.Index(z.hourStart)]
		}
		if b.end != z.hourStart {
			p.cost += z.hourRate // started hour charged in full
		}
		z.state = sim.Down
	}
	maxP := p.committed
	for k := range zs {
		if zs[k].progress > maxP {
			maxP = zs[k].progress
		}
	}
	p.maxProgress = maxP
}

// closeEstimate computes the permutation's estimate exactly as runPerm's
// FinishEstimation close would — completed hours committed then the
// started hour charged in full, zones in index order — but on local
// copies, leaving the resident replay state untouched. The streaming
// evaluator reads per-tick estimates through it and keeps stepping the
// same permutation on the next tick.
func (b *batchState) closeEstimate(p *batchPerm, span float64) estimate {
	zs := b.zoneBuf[p.zoff : p.zoff+p.nz]
	bill := b.billBuf[p.boff : p.boff+p.nz]
	cost := p.cost
	for _, bk := range bill {
		z := &zs[bk]
		if z.state != sim.Up {
			continue
		}
		hs, hr := z.hourStart, z.hourRate
		for b.end >= hs+trace.Hour {
			cost += hr
			hs += trace.Hour
			hr = z.col[b.cols.Index(hs)]
		}
		if b.end != hs {
			cost += hr // started hour charged in full
		}
	}
	maxP := p.committed
	for k := range zs {
		if zs[k].progress > maxP {
			maxP = zs[k].progress
		}
	}
	return estimate{progressRate: float64(maxP) / span, costRate: cost / span}
}

// replayPerm initializes one permutation's state and replays it over
// the whole window, leaving the resident state live at the window end
// (meters open, availability-derived states current as of the last
// step). runPerm layers the destructive estimation close on top; the
// streaming evaluator instead keeps stepping the state tick by tick and
// reads estimates through closeEstimate.
func (b *batchState) replayPerm(p *batchPerm) {
	zs := b.zoneBuf[p.zoff : p.zoff+p.nz]
	bill := b.billBuf[p.boff : p.boff+p.nz]

	p.committed = 0
	p.cost = 0
	p.ckActive = false
	p.nUp = 0
	for k := range zs {
		z := &zs[k]
		z.state = sim.Down
		z.restore = false
		z.progress = 0
		z.busyUntil = 0
		z.readyAt = 0
	}
	p.pol.lastHourEnd = 0
	if p.pol.kind == polMarkovDaly {
		// MarkovDaly.Reset schedules at run start.
		b.schedule(p, b.start)
	}

	// Event-driven stepping: run the full per-step state machine only at
	// steps where something can change (an availability flip, a pending
	// instance coming ready, a checkpoint start/finish, a policy
	// trigger); the provably-inert stretches in between reduce to meter
	// advances and linear progress accrual, which bulkAdvance replays in
	// the oracle's exact accumulation order.
	n := b.nsteps
	now := b.start
	i := 0
	for i < n {
		b.stepPerm(p, zs, bill, now, i)
		i++
		now += b.step
		if i >= n {
			break
		}
		if j := b.horizon(p, zs, now, i); j > i {
			b.bulkAdvance(p, zs, bill, i, j)
			i = j
			now = b.start + int64(i)*b.step
		}
	}
}

// horizon returns the first step at or after i where the permutation's
// replay can do more than advance meters and accrue progress, bounding
// the stretch bulkAdvance may fast-forward. The bound is conservative:
// stopping at a step where nothing happens is just a missed skip, never
// an error. The returned step assumes the states current after step
// i-1, so it must be recomputed after every full step.
func (b *batchState) horizon(p *batchPerm, zs []batchZone, now int64, i int) int {
	j := b.nsteps
	if p.nUp > 0 {
		for k := range zs {
			z := &zs[k]
			switch z.state {
			case sim.Up:
				if z.busyUntil > now {
					// A busy zone accrues partial progress and can shift
					// the checkpoint leader; busy spells last a step or
					// two, so run them through the full state machine.
					return i
				}
				if f := z.idx.NextChange(i - 1); f < j {
					j = f
				}
			case sim.Pending:
				if f := z.idx.NextChange(i - 1); f < j {
					j = f
				}
				if t := b.stepAtOrAfter(z.readyAt); t < j {
					j = t
				}
			}
			// Waiting and Down zones need no cap while instances run:
			// with no hook observing them their state is a pure function
			// of the current availability bit, and stepPerm's update
			// switch re-derives it from the live bit whenever the
			// stretch ends — intermediate flips are unobservable.
		}
		if p.ckActive {
			if t := b.stepAtOrAfter(p.ckEnds); t < j {
				j = t
			}
		} else if p.pol.kind == polMarkovDaly {
			if t := b.stepAtOrAfter(p.pol.ts); t < j {
				j = t
			}
		} else {
			j = b.periodicCap(p, zs, now, j)
		}
	} else {
		// No running instances: a checkpoint cannot be in flight (its
		// zone would be up), but the no-instance hook resubmits every
		// effectively-waiting zone each step, so any zone whose bit is
		// (or becomes) up forces full stepping.
		for k := range zs {
			z := &zs[k]
			if f := z.idx.NextChange(i - 1); f < j {
				j = f
			}
			switch z.state {
			case sim.Pending:
				if t := b.stepAtOrAfter(z.readyAt); t < j {
					j = t
				}
			case sim.Waiting, sim.Down:
				if z.idx.Up(i - 1) {
					return i
				}
			}
		}
	}
	if j < i {
		return i
	}
	return j
}

// stepAtOrAfter returns the first step index whose time is at or after
// x, clamped to the window.
func (b *batchState) stepAtOrAfter(x int64) int {
	d := x - b.start
	if d <= 0 {
		return 0
	}
	t := (d + b.step - 1) / b.step
	if t > int64(b.nsteps) {
		return b.nsteps
	}
	return int(t)
}

// periodicCap bounds a stretch by the Periodic policy's next trigger.
// The cap is exact: a stretch has no busy up zones (horizon single-
// steps those), so every up zone accrues identical progress, progress
// differences are constant, and the strictly-max first-wins leader —
// the zone whose billing hour drives the condition — cannot change
// before the stretch ends.
func (b *batchState) periodicCap(p *batchPerm, zs []batchZone, now int64, j int) int {
	lead := -1
	for k := range zs {
		z := &zs[k]
		if z.state == sim.Up && (lead < 0 || z.progress > zs[lead].progress) {
			lead = k
		}
	}
	if lead < 0 {
		return j
	}
	h0 := zs[lead].hourStart
	latch := p.pol.lastHourEnd
	// The candidate depends only on (h0, latch) and now, and while now
	// has not reached a previously computed candidate the answer cannot
	// move (every hour end between then and the candidate would have
	// either triggered or advanced the meter, changing h0 or the latch),
	// so the last candidate is reusable across consecutive events.
	if !p.trigValid || p.trigH0 != h0 || p.trigLatch != latch || p.trigCand < now {
		p.trigCand = b.trigTime(h0, now, b.tc+b.step, latch)
		p.trigH0, p.trigLatch, p.trigValid = h0, latch, true
	}
	if t := (p.trigCand - b.start) / b.step; t < int64(j) {
		j = int(t)
	}
	return j
}

// trigTime returns the first grid time at or after now where a meter
// opened at h0 (and advancing hour by hour) is within thr of its hour
// end and that hour end is not latched — the Periodic trigger condition
// for a zone that stays up.
func (b *batchState) trigTime(h0, now, thr, latch int64) int64 {
	k := (now - h0) / trace.Hour
	for {
		hEnd := h0 + (k+1)*trace.Hour
		cand := now
		if lo := hEnd - thr; lo > cand {
			cand = b.start + ((lo-b.start+b.step-1)/b.step)*b.step
		}
		// cand < hEnd always: the qualifying window is at least one step
		// long (thr >= step) and now precedes hEnd in this hour.
		if hEnd != latch {
			return cand
		}
		k++
	}
}

// bulkAdvance fast-forwards one permutation across the inert steps
// [a, c): every completed instance-hour is charged at the step where
// the oracle's meter advance would commit it, ordered by (step, zone
// index) exactly like the per-step loop, and each up zone accrues one
// full step of progress per step.
func (b *batchState) bulkAdvance(p *batchPerm, zs []batchZone, bill []int32, a, c int) {
	if p.nUp == 0 {
		return
	}
	adv := int64(c-a) * b.step
	if p.nUp == 1 {
		// One up zone: its charges are the only ones in the stretch, so
		// a tight per-hour loop reproduces the merge order trivially. An
		// hour fires inside the stretch iff its end is at or before the
		// last in-stretch grid time (the merge loop's fire-step bound,
		// cleared of the ceiling division).
		lastT := b.start + int64(c-1)*b.step
		for k := range zs {
			z := &zs[k]
			if z.state != sim.Up {
				continue
			}
			for z.hourStart+trace.Hour <= lastT {
				p.cost += z.hourRate
				z.hourStart += trace.Hour
				z.hourRate = z.col[b.cols.Index(z.hourStart)]
			}
			z.progress += adv
			return
		}
	}
	for {
		var zf *batchZone
		var bestT int64
		for _, bk := range bill {
			z := &zs[bk]
			if z.state != sim.Up {
				continue
			}
			f := z.hourStart + trace.Hour
			t := (f - b.start + b.step - 1) / b.step
			if t >= int64(c) {
				continue
			}
			if zf == nil || t < bestT {
				zf = z
				bestT = t
			}
		}
		if zf == nil {
			break
		}
		p.cost += zf.hourRate
		zf.hourStart += trace.Hour
		zf.hourRate = zf.col[b.cols.Index(zf.hourStart)]
	}
	for k := range zs {
		z := &zs[k]
		if z.state == sim.Up {
			z.progress += adv
		}
	}
}

// stepPerm advances one permutation by one interval, mirroring
// Machine.Step stage by stage (deadline guard disabled, static
// strategy, no Releaser/Admission on the supported policies).
func (b *batchState) stepPerm(p *batchPerm, zs []batchZone, bill []int32, now int64, i int) {
	// Billing: commit completed instance-hours, zones in index order.
	for _, bk := range bill {
		z := &zs[bk]
		if z.state != sim.Up {
			continue
		}
		for now >= z.hourStart+trace.Hour {
			p.cost += z.hourRate
			z.hourStart += trace.Hour
			z.hourRate = z.col[b.cols.Index(z.hourStart)]
		}
	}

	// Instance state updates against the current spot prices, spec
	// order.
	for k := range zs {
		z := &zs[k]
		up := z.idx.Up(i)
		switch z.state {
		case sim.Up:
			if !up {
				// Provider kill: the in-progress hour is free and all
				// speculative progress is lost; a checkpoint running on
				// this zone aborts with it.
				z.state = sim.Down
				z.progress = p.committed
				p.nUp--
				if p.ckActive && p.ckPos == k {
					p.ckActive = false
				}
			}
		case sim.Pending:
			if !up {
				z.state = sim.Down
			} else if z.readyAt <= now {
				b.promote(p, z)
			}
		case sim.Waiting:
			if !up {
				z.state = sim.Down
			}
		case sim.Down:
			if up {
				z.state = sim.Waiting
			}
		}
	}

	// Checkpoint completion commits progress and wakes waiting zones.
	if p.ckActive && now >= p.ckEnds {
		p.committed = p.ckSnap
		p.ckActive = false
		b.startWaiting(p, zs, now)
		if p.pol.kind == polMarkovDaly {
			b.schedule(p, now)
		}
	}

	// Policy hooks.
	if p.nUp > 0 {
		if !p.ckActive && b.condition(p, zs, now) {
			b.beginCheckpoint(p, zs, now)
		}
	} else if b.startWaiting(p, zs, now) {
		if p.pol.kind == polMarkovDaly {
			b.schedule(p, now)
		}
	}

	// Compute over [now, now+step) on every up zone, spec order. The
	// estimation work budget (1 << 40 s) dwarfs any window, so the
	// oracle's finish-on-completion branch is unreachable here.
	for k := range zs {
		z := &zs[k]
		if z.state != sim.Up {
			continue
		}
		activeStart := now
		if z.busyUntil > activeStart {
			activeStart = z.busyUntil
		}
		end := now + b.step
		if activeStart >= end {
			continue
		}
		z.progress += end - activeStart
	}
}

// promote turns a Pending request into a running instance, opening its
// meter at the ready time's price.
func (b *batchState) promote(p *batchPerm, z *batchZone) {
	z.state = sim.Up
	p.nUp++
	z.hourStart = z.readyAt
	z.hourRate = z.col[b.cols.Index(z.readyAt)]
	z.progress = p.committed
	z.busyUntil = z.readyAt
	if z.restore {
		z.busyUntil += b.tr
	}
}

// startWaiting submits spot requests for every waiting zone; the
// estimation configuration's fixed queuing delay keeps the replay
// deterministic without an RNG.
func (b *batchState) startWaiting(p *batchPerm, zs []batchZone, now int64) bool {
	any := false
	for k := range zs {
		z := &zs[k]
		if z.state != sim.Waiting {
			continue
		}
		z.state = sim.Pending
		z.readyAt = now + estimationDelay
		z.restore = p.committed > 0
		any = true
		if z.readyAt <= now {
			b.promote(p, z)
		}
	}
	return any
}

// condition evaluates CheckpointCondition for the permutation's policy.
func (b *batchState) condition(p *batchPerm, zs []batchZone, now int64) bool {
	if p.pol.kind == polMarkovDaly {
		return now >= p.pol.ts
	}
	// Periodic: trigger once per billing hour of the leader — the Up
	// zone with strictly greatest progress, first wins in spec order
	// (env.Leader does not filter on BusyUntil) — at the last step from
	// which the checkpoint still completes within the hour.
	lead := -1
	for k := range zs {
		z := &zs[k]
		if z.state == sim.Up && (lead < 0 || z.progress > zs[lead].progress) {
			lead = k
		}
	}
	if lead < 0 {
		return false
	}
	hourEnd := zs[lead].hourStart + trace.Hour
	if hourEnd == p.pol.lastHourEnd {
		return false
	}
	remaining := hourEnd - now
	if remaining > 0 && remaining <= b.tc+b.step {
		p.pol.lastHourEnd = hourEnd
		return true
	}
	return false
}

// beginCheckpoint starts a checkpoint on the most advanced non-busy up
// zone, committing immediately when checkpoints are free.
func (b *batchState) beginCheckpoint(p *batchPerm, zs []batchZone, now int64) {
	lead := -1
	for k := range zs {
		z := &zs[k]
		if z.state != sim.Up || z.busyUntil > now {
			continue
		}
		if lead < 0 || z.progress > zs[lead].progress {
			lead = k
		}
	}
	if lead < 0 {
		return
	}
	snap := zs[lead].progress // IterationSeconds is 0 in estimation replays
	if snap <= p.committed {
		return
	}
	p.ckActive = true
	p.ckPos = lead
	p.ckEnds = now + b.tc
	p.ckSnap = snap
	zs[lead].busyUntil = p.ckEnds
	if b.tc == 0 {
		p.committed = snap
		p.ckActive = false
		b.startWaiting(p, zs, now)
		if p.pol.kind == polMarkovDaly {
			b.schedule(p, now)
		}
	}
}

// schedule recomputes the Markov-Daly checkpoint time T_s.
func (b *batchState) schedule(p *batchPerm, now int64) {
	iv := b.interval(p, now)
	if math.IsInf(iv, 1) {
		p.pol.ts = b.deadline
		return
	}
	p.pol.ts = now + int64(iv)
}

// interval returns Daly's interval at the decision time through the
// permutation's memo column. Schedule times always fall on the step
// grid — the reset schedule runs at the window start and every
// reschedule happens inside a step — so the memo indexes by step.
func (b *batchState) interval(p *batchPerm, now int64) float64 {
	si := int((now - b.start) / b.step)
	if v, ok := p.ivals.get(si); ok {
		return v
	}
	v := b.computeInterval(p, now, si)
	p.ivals.set(si, v)
	return v
}

// computeInterval fits (or fetches) the per-zone chains on the trailing
// history and applies Daly's estimate to their combined expected
// uptime, mirroring MarkovDaly.computeInterval — including the lazy
// short-circuit of markov.CombinedExpectedUptime, which stops solving
// at the first unbounded zone.
func (b *batchState) computeInterval(p *batchPerm, now int64, si int) float64 {
	zs := b.zoneBuf[p.zoff : p.zoff+p.nz]
	b.zsel = b.zsel[:0]
	for k := range zs {
		if b.chainAt(&zs[k], now, si, &p.pol) != nil {
			b.zsel = append(b.zsel, int32(k))
		}
	}
	if len(b.zsel) == 0 {
		return math.Inf(1)
	}
	var mtbf float64
	for _, k := range b.zsel {
		u := b.uptimeAt(&zs[k], si, p.bid)
		if math.IsInf(u, 1) {
			mtbf = math.Inf(1)
			break
		}
		mtbf += u
	}
	tc := float64(b.tc)
	if p.pol.higher {
		return daly.Optimal(tc, mtbf)
	}
	return daly.Young(tc, mtbf)
}

// chainAt returns the zone's chain fitted at the decision time, through
// the memo column; nil records an unfittable history.
func (b *batchState) chainAt(z *batchZone, now int64, si int, pol *batchPolicy) *markov.Model {
	cm := z.cm
	if !cm.done[si] {
		cm.models[si] = b.fitModel(cm, z.zone, now, si, pol)
		cm.done[si] = true
	}
	return cm.models[si]
}

// uptimeAt returns the zone's expected uptime at the decision time,
// through the chain memo's bid-collapsed column: the solver reads the
// bid only through the admitted state prefix (States ascending, admit
// iff price <= bid) and the step's current price, so the solve is a
// pure function of (fitted chain, prefix length k, price at step) and
// every bid admitting k states shares one memo slot.
func (b *batchState) uptimeAt(z *batchZone, si int, bid float64) float64 {
	cm := z.cm
	m := cm.models[si]
	k := upCount(m.States, bid)
	if k >= cm.ustride {
		// Widen the grid; invalidating the narrower entries is fine,
		// they are pure and recomputable.
		cm.ustride = k + 8
		cm.usolve = memoCol{}
		cm.usolve.arm(b.nsteps * cm.ustride)
	}
	slot := si*cm.ustride + k
	if v, ok := cm.usolve.get(slot); ok {
		return v
	}
	v := b.solver.ExpectedUptime(m, bid, z.col[si])
	cm.usolve.set(slot, v)
	return v
}

// upCount returns how many of the ascending distinct states the bid
// admits (price <= bid) — the length of the state prefix the uptime
// solve actually reads.
func upCount(states []float64, bid float64) int {
	return sort.Search(len(states), func(i int) bool { return states[i] > bid })
}

// fitModel fits the zone's chain on the trailing history at the
// decision time, on a recycled model; nil reports an unfittable (empty)
// history. When the span reaches back to the window start the history
// is the column prefix ending at the decision step and the memo's
// prefix fitter handles it sort-free; otherwise the trailing window is
// sampled into scratch, quantized in place (Round(p/q)*q,
// value-identical to markov.Quantize) and fitted by the general fitter.
func (b *batchState) fitModel(cm *chainMemo, zone int, now int64, si int, pol *batchPolicy) *markov.Model {
	reuse := b.takeModel()
	var m *markov.Model
	var err error
	if now-pol.span+b.step <= b.start {
		if !cm.pfReady {
			src := b.cols.Col(zone)
			if pol.quantum > 0 {
				cm.qbuf = append(cm.qbuf[:0], src...)
				for i := range cm.qbuf {
					cm.qbuf[i] = math.Round(cm.qbuf[i]/pol.quantum) * pol.quantum
				}
				src = cm.qbuf
			}
			cm.pf.Init(src, b.step)
			cm.pfReady = true
		}
		m, err = cm.pf.Fit(si+1, reuse)
	} else {
		h := b.cols.HistoryInto(b.histBuf[:0], zone, now, pol.span)
		b.histBuf = h
		if pol.quantum > 0 {
			for i := range h {
				h[i] = math.Round(h[i]/pol.quantum) * pol.quantum
			}
		}
		m, err = b.fitter.Fit(h, b.step, reuse)
	}
	if err != nil {
		b.freeModels = append(b.freeModels, reuse)
		return nil
	}
	return m
}
