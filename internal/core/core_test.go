package core

import (
	"math"
	"sort"
	"testing"

	"repro/internal/market"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// window cuts a run window with history from a generated preset.
func window(set *trace.Set, startDay int, days int64) (history, run *trace.Set) {
	start := set.Start() + int64(startDay)*24*trace.Hour
	histStart := start - 2*24*trace.Hour
	if histStart < set.Start() {
		histStart = set.Start()
	}
	return set.Slice(histStart, start), set.Slice(start, start+days*24*trace.Hour)
}

func testConfig(history, run *trace.Set, tc int64) sim.Config {
	return sim.Config{
		Trace:          run,
		History:        history,
		Work:           6 * trace.Hour,
		Deadline:       9 * trace.Hour,
		CheckpointCost: tc,
		RestartCost:    tc,
		Delay:          market.FixedDelay(300),
		Seed:           11,
	}
}

func TestAllPoliciesCompleteOnBothRegimes(t *testing.T) {
	regimes := map[string]*trace.Set{
		"low":  tracegen.LowVolatility(21),
		"high": tracegen.HighVolatility(21),
	}
	for name, set := range regimes {
		hist, run := window(set, 5, 2)
		for _, tc := range []int64{300, 900} {
			cfg := testConfig(hist, run, tc)
			strategies := []sim.Strategy{
				SingleZone(NewPeriodic(), 0.81, 0),
				SingleZone(NewMarkovDaly(), 0.81, 0),
				SingleZone(NewEdge(), 0.81, 0),
				SingleZone(NewThreshold(), 0.81, 0),
				Redundant(NewPeriodic(), 0.81, []int{0, 1, 2}),
				Redundant(NewMarkovDaly(), 0.81, []int{0, 1, 2}),
				NewStatic("large-bid", sim.RunSpec{Bid: LargeBidAmount, Zones: []int{0}, Policy: NewLargeBid(0.81)}),
				NewOnDemandOnly(),
			}
			for _, strat := range strategies {
				res, err := sim.Run(cfg, strat)
				if err != nil {
					t.Fatalf("%s/%d/%s: %v", name, tc, strat.Name(), err)
				}
				if !res.Completed {
					t.Errorf("%s/%d/%s: did not complete", name, tc, strat.Name())
				}
				if !res.DeadlineMet {
					t.Errorf("%s/%d/%s: missed deadline (finish %d)", name, tc, strat.Name(), res.FinishTime)
				}
				if res.Cost <= 0 {
					t.Errorf("%s/%d/%s: non-positive cost %g", name, tc, strat.Name(), res.Cost)
				}
			}
		}
	}
}

func TestOnDemandBaselineCostExact(t *testing.T) {
	hist, run := window(tracegen.LowVolatility(3), 4, 2)
	cfg := testConfig(hist, run, 300)
	res, err := sim.Run(cfg, NewOnDemandOnly())
	if err != nil {
		t.Fatal(err)
	}
	want := 6 * market.OnDemandRate // 6 hours of work
	if math.Abs(res.Cost-want) > 1e-9 {
		t.Fatalf("on-demand cost = %g, want %g", res.Cost, want)
	}
}

func TestSpotBeatsOnDemandInCalmMarket(t *testing.T) {
	hist, run := window(tracegen.LowVolatility(7), 6, 2)
	cfg := testConfig(hist, run, 300)
	res, err := sim.Run(cfg, SingleZone(NewPeriodic(), 0.81, 0))
	if err != nil {
		t.Fatal(err)
	}
	od := 6 * market.OnDemandRate
	if res.Cost >= od/2 {
		t.Fatalf("calm-market periodic cost %g should be well below on-demand %g", res.Cost, od)
	}
}

func TestPeriodicCheckpointsRoughlyHourly(t *testing.T) {
	hist, run := window(tracegen.LowVolatility(5), 3, 2)
	cfg := testConfig(hist, run, 300)
	res, err := sim.Run(cfg, SingleZone(NewPeriodic(), 0.81, 0))
	if err != nil {
		t.Fatal(err)
	}
	// 6 hours of work in a calm market: expect roughly one checkpoint
	// per billing hour (the final hour may finish without one).
	if res.Checkpoints < 4 || res.Checkpoints > 8 {
		t.Fatalf("periodic checkpoints = %d, want ≈ 6", res.Checkpoints)
	}
}

func TestEdgeCheckpointsOnRisingPrices(t *testing.T) {
	// Construct a price staircase below the bid: every rise triggers a
	// checkpoint even though the instance is never killed.
	var prices []float64
	for i := 0; i < 12*10; i++ {
		base := 0.30 + float64((i/6)%3)*0.05 // rises every 30 min, cycling
		prices = append(prices, base)
	}
	run := trace.MustNewSet(trace.NewSeries("z", 0, prices))
	cfg := sim.Config{
		Trace:          run,
		Work:           4 * trace.Hour,
		Deadline:       8 * trace.Hour,
		CheckpointCost: 300,
		RestartCost:    300,
		Delay:          market.FixedDelay(0),
		Seed:           1,
	}
	res, err := sim.Run(cfg, SingleZone(NewEdge(), 0.81, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Checkpoints < 3 {
		t.Fatalf("edge checkpoints = %d, want several", res.Checkpoints)
	}
	if res.ProviderKills != 0 {
		t.Fatalf("kills = %d, want 0", res.ProviderKills)
	}
}

func TestEdgeNoCheckpointsOnFlatPrices(t *testing.T) {
	prices := make([]float64, 12*10)
	for i := range prices {
		prices[i] = 0.30
	}
	run := trace.MustNewSet(trace.NewSeries("z", 0, prices))
	cfg := sim.Config{
		// Deadline far enough out that the engine's pre-guard insurance
		// checkpoint never triggers.
		Trace: run, Work: 4 * trace.Hour, Deadline: 12 * trace.Hour,
		CheckpointCost: 300, RestartCost: 300, Delay: market.FixedDelay(0), Seed: 1,
	}
	res, err := sim.Run(cfg, SingleZone(NewEdge(), 0.81, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Checkpoints != 0 {
		t.Fatalf("edge checkpointed %d times on a flat price", res.Checkpoints)
	}
}

func TestLargeBidNeverProviderKilled(t *testing.T) {
	hist, run := window(tracegen.HighVolatility(13), 8, 2)
	cfg := testConfig(hist, run, 300)
	strat := NewStatic("large-bid", sim.RunSpec{Bid: LargeBidAmount, Zones: []int{0}, Policy: NewLargeBid(0.81)})
	res, err := sim.Run(cfg, strat)
	if err != nil {
		t.Fatal(err)
	}
	if res.ProviderKills != 0 {
		t.Fatalf("large-bid was provider-killed %d times", res.ProviderKills)
	}
	if !res.DeadlineMet {
		t.Fatal("large-bid missed deadline")
	}
}

func TestLargeBidPaysSpikeThatThresholdAvoids(t *testing.T) {
	// A calm zone with a $20.02 spike: the naive variant keeps running
	// through the spike and pays it; a threshold variant releases.
	set := tracegen.LowVolatility(17)
	spikeAt := set.Start() + 30*trace.Hour
	if err := tracegen.InjectSpike(set, 0, spikeAt, 4*trace.Hour, tracegen.MaxObservedSpike); err != nil {
		t.Fatal(err)
	}
	hist := set.Slice(set.Start(), set.Start()+24*trace.Hour)
	run := set.Slice(set.Start()+24*trace.Hour, set.Start()+72*trace.Hour)
	cfg := sim.Config{
		Trace: run, History: hist,
		Work: 16 * trace.Hour, Deadline: 24 * trace.Hour,
		CheckpointCost: 300, RestartCost: 300,
		Delay: market.FixedDelay(300), Seed: 5,
	}
	naive, err := sim.Run(cfg, NewStatic("naive", sim.RunSpec{Bid: LargeBidAmount, Zones: []int{0}, Policy: NewNaiveLargeBid()}))
	if err != nil {
		t.Fatal(err)
	}
	guarded, err := sim.Run(cfg, NewStatic("guarded", sim.RunSpec{Bid: LargeBidAmount, Zones: []int{0}, Policy: NewLargeBid(0.81)}))
	if err != nil {
		t.Fatal(err)
	}
	if naive.Cost <= guarded.Cost {
		t.Fatalf("naive cost %g should exceed threshold cost %g", naive.Cost, guarded.Cost)
	}
	// The naive run pays at least one hour near the spike price.
	if naive.Cost < tracegen.MaxObservedSpike {
		t.Fatalf("naive cost %g did not include a spike hour", naive.Cost)
	}
	if guarded.UserReleases == 0 {
		t.Fatal("threshold variant never released during the spike")
	}
}

func TestRedundancyBeatsSingleZoneUnderHighVolatility(t *testing.T) {
	// The paper's central claim (§6, Figure 4c): with high volatility
	// and little slack, redundancy-based policies beat single-zone ones
	// at B = $0.81 because the combined availability keeps the job on
	// the spot market where a single volatile zone forces the expensive
	// on-demand fallback. Needs the paper-scale 20 h job to show up;
	// medians are taken across windows and zones.
	set := tracegen.HighVolatility(23)
	work := 20 * trace.Hour
	deadline := 23 * trace.Hour // 15% slack
	var singles, redundants []float64
	for day := 3; day <= 23; day += 4 {
		start := set.Start() + int64(day)*24*trace.Hour
		hist := set.Slice(start-2*24*trace.Hour, start)
		run := set.Slice(start, start+30*trace.Hour)
		cfg := sim.Config{
			Trace: run, History: hist,
			Work: int64(work), Deadline: int64(deadline),
			CheckpointCost: 300, RestartCost: 300,
			Delay: market.FixedDelay(300), Seed: uint64(day),
		}
		for z := 0; z < 3; z++ {
			res, err := sim.Run(cfg, SingleZone(NewMarkovDaly(), 0.81, z))
			if err != nil {
				t.Fatal(err)
			}
			singles = append(singles, res.Cost)
		}
		res, err := sim.Run(cfg, Redundant(NewMarkovDaly(), 0.81, []int{0, 1, 2}))
		if err != nil {
			t.Fatal(err)
		}
		redundants = append(redundants, res.Cost)
	}
	med := func(xs []float64) float64 {
		ys := append([]float64(nil), xs...)
		sort.Float64s(ys)
		return ys[len(ys)/2]
	}
	ms, mr := med(singles), med(redundants)
	t.Logf("single median=%.2f redundant median=%.2f", ms, mr)
	if mr >= ms {
		t.Fatalf("redundant median %.2f not below single-zone median %.2f", mr, ms)
	}
}

func TestBidGrid(t *testing.T) {
	grid := BidGrid()
	if len(grid) != 15 {
		t.Fatalf("grid size = %d, want 15", len(grid))
	}
	if grid[0] != 0.27 || grid[len(grid)-1] != 3.07 {
		t.Fatalf("grid = %v", grid)
	}
	for i := 1; i < len(grid); i++ {
		if math.Abs(grid[i]-grid[i-1]-0.20) > 1e-9 {
			t.Fatalf("grid step at %d: %v", i, grid)
		}
	}
	if got := Figure4Bids(); len(got) != 3 || got[1] != 0.81 {
		t.Fatalf("Figure4Bids = %v", got)
	}
}

func TestMeanUptimeHelper(t *testing.T) {
	// ups: [0.3 0.3] [0.9] [0.3] → two runs of 2 and 1 samples.
	got := meanUptime([]float64{0.3, 0.3, 0.9, 0.3}, 300, 0.5)
	if got != 450 {
		t.Fatalf("meanUptime = %g, want 450", got)
	}
	if meanUptime([]float64{0.9, 0.9}, 300, 0.5) != 0 {
		t.Fatal("never-up meanUptime should be 0")
	}
	if meanUptime([]float64{0.3, 0.3}, 300, 0.5) != 600 {
		t.Fatal("always-up meanUptime wrong")
	}
}
