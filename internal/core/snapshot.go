package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/trace"
)

// Crash recovery for streaming evaluation: a StreamEvaluator's
// externally meaningful state is a pure function of (request shape,
// retained window, tick count, generation) — the resident permutation
// structures are a cache rebuilt from the tape on demand. A snapshot
// therefore persists exactly that function's inputs plus a digest of
// its output, and Restore proves the resumed evaluator equals the
// crashed one by re-deriving the plan table from the restored window
// and checking it against the digest, bit for bit. A restarted backend
// then needs to replay only the ticks that arrived after the snapshot
// (the catch-up), never the full history.

// StreamSnapshot is a StreamEvaluator checkpoint: the feed geometry,
// the retained price window, the tick/generation counters and a digest
// binding them to the plan table they produce. It is JSON-serialisable
// so snapshot stores can persist it to disk.
type StreamSnapshot struct {
	// Zones is the feed geometry, in column order.
	Zones []string `json:"zones"`
	// Start is the absolute time of the retained window's first sample
	// (compaction advances it past the config's Start).
	Start int64 `json:"start"`
	// Step is the tick interval in seconds.
	Step int64 `json:"step"`
	// Ticks is the evaluator's ingested-tick count at snapshot time.
	Ticks uint64 `json:"ticks"`
	// Generation is the plan-table generation at snapshot time.
	Generation uint64 `json:"generation"`
	// Rows is the retained window, one price row per tick.
	Rows [][]float64 `json:"rows"`
	// StateDigest fingerprints the snapshot (geometry, counters, rows)
	// and the plan table it must reproduce; Restore refuses a snapshot
	// whose restored table does not match.
	StateDigest string `json:"state_digest"`
}

// Snapshot captures the evaluator's resumable state. The snapshot is
// independent of the resident structures, so it is valid whether or
// not the evaluator has degraded to fallback ranking.
func (se *StreamEvaluator) Snapshot() *StreamSnapshot {
	hist := se.tape.Set()
	n := se.tape.Len()
	rows := make([][]float64, n)
	for i := 0; i < n; i++ {
		rows[i] = hist.PricesAt(se.tape.Start() + int64(i)*se.tape.Step())
	}
	snap := &StreamSnapshot{
		Zones:      append([]string(nil), se.cfg.Zones...),
		Start:      se.tape.Start(),
		Step:       se.tape.Step(),
		Ticks:      se.stats.Ticks,
		Generation: se.gen,
		Rows:       rows,
	}
	snap.StateDigest = snap.digest(se.plans)
	return snap
}

// Restore rebuilds the evaluator's state from a snapshot. It is only
// valid on a fresh evaluator (no ticks ingested) whose config matches
// the snapshot's geometry; the plan table is re-derived from the
// restored window and verified against the snapshot digest, so a
// corrupt or mismatched snapshot is refused rather than silently
// resumed. After a successful Restore the evaluator continues exactly
// where the snapshot left off: the next Advance produces tick
// snap.Ticks+1, and the generation only moves when the table changes.
func (se *StreamEvaluator) Restore(snap *StreamSnapshot) error {
	if se.stats.Ticks != 0 || se.tape.Len() != 0 {
		return fmt.Errorf("core: Restore on an evaluator that has already ingested %d ticks", se.stats.Ticks)
	}
	if len(snap.Zones) != len(se.cfg.Zones) {
		return fmt.Errorf("core: snapshot has %d zones, evaluator %d", len(snap.Zones), len(se.cfg.Zones))
	}
	for i, z := range snap.Zones {
		if z != se.cfg.Zones[i] {
			return fmt.Errorf("core: snapshot zone %d is %q, evaluator has %q", i, z, se.cfg.Zones[i])
		}
	}
	if snap.Step != se.cfg.Step {
		return fmt.Errorf("core: snapshot step %d, evaluator %d", snap.Step, se.cfg.Step)
	}
	if uint64(len(snap.Rows)) > snap.Ticks {
		return fmt.Errorf("core: snapshot retains %d rows but counts only %d ticks", len(snap.Rows), snap.Ticks)
	}
	if len(snap.Rows) == 0 {
		// An empty snapshot (taken before the first tick) restores to
		// the fresh state.
		if snap.Generation != 0 {
			return fmt.Errorf("core: empty snapshot carries generation %d", snap.Generation)
		}
		return nil
	}
	tape, err := replayTape(snap)
	if err != nil {
		return err
	}
	// Re-derive the plan table the snapshot's window must produce. By
	// the streaming contract the incremental table is bit-identical to
	// Rank over the same window, so the digest check below proves the
	// resumed state equals the crashed one.
	se.tape = tape
	hist := se.tape.Set()
	plans, err := se.ev.Rank(se.request(hist))
	if err != nil {
		return fmt.Errorf("core: restoring plan table: %w", err)
	}
	if got := snap.digest(plans); got != snap.StateDigest {
		return fmt.Errorf("core: snapshot digest mismatch: restored table hashes to %s, snapshot says %s", got, snap.StateDigest)
	}
	se.stats.Ticks = snap.Ticks
	se.gen = snap.Generation
	se.plans = plans
	se.dirty = true // resident structures rebuild lazily on the next tick
	se.stats.Rebuilds++
	return nil
}

// replayTape reconstructs the snapshot's retained window as a tape,
// re-validating every row.
func replayTape(snap *StreamSnapshot) (*trace.Tape, error) {
	t, err := trace.NewTape(snap.Zones, snap.Start, snap.Step)
	if err != nil {
		return nil, err
	}
	for i, row := range snap.Rows {
		if err := t.Append(row); err != nil {
			return nil, fmt.Errorf("core: snapshot row %d: %w", i, err)
		}
	}
	return t, nil
}

// digest fingerprints the snapshot's inputs and the plan table they
// must reproduce, FNV-64a over the raw float bits so the check is
// exact, not approximate.
func (snap *StreamSnapshot) digest(plans []Plan) string {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	for _, z := range snap.Zones {
		h.Write([]byte(z))
		h.Write([]byte{0})
	}
	put(uint64(snap.Start))
	put(uint64(snap.Step))
	put(snap.Ticks)
	put(snap.Generation)
	for _, row := range snap.Rows {
		for _, p := range row {
			put(math.Float64bits(p))
		}
	}
	put(uint64(len(plans)))
	for i := range plans {
		p := &plans[i]
		put(math.Float64bits(p.Bid))
		h.Write([]byte(p.Policy))
		h.Write([]byte{0})
		for _, z := range p.Zones {
			h.Write([]byte(z))
			h.Write([]byte{0})
		}
		put(math.Float64bits(p.PredictedCost))
		put(math.Float64bits(p.ProgressRate))
		put(math.Float64bits(p.CostRate))
		put(uint64(p.PredictedFinish))
		put(uint64(p.DeadlineMargin))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
