package core

import (
	"repro/internal/sim"
	"repro/internal/trace"
)

// Periodic checkpoints at billing-hour boundaries (§4.1): a checkpoint
// is scheduled so that it completes within the hour the leading
// instance is currently being billed for (T_s = hour − t_c). Because
// the user is charged the hour-start price for the whole hour, this
// commits exactly the progress each paid hour produced.
type Periodic struct {
	lastHourEnd int64
}

// NewPeriodic returns a Periodic policy.
func NewPeriodic() *Periodic { return &Periodic{} }

// Name implements sim.CheckpointPolicy.
func (p *Periodic) Name() string { return "periodic" }

// Reset implements sim.CheckpointPolicy.
func (p *Periodic) Reset(env *sim.Env) { p.lastHourEnd = 0 }

// CheckpointCondition triggers once per billing hour, at the last step
// from which the checkpoint can complete before the hour ends.
func (p *Periodic) CheckpointCondition(env *sim.Env) bool {
	lead := env.Leader()
	if lead == nil || lead.Meter == nil {
		return false
	}
	hourEnd := lead.Meter.HourStart() + trace.Hour
	if hourEnd == p.lastHourEnd {
		return false
	}
	remaining := hourEnd - env.Now
	if remaining > 0 && remaining <= env.CheckpointCost()+env.Step {
		p.lastHourEnd = hourEnd
		return true
	}
	return false
}

// ScheduleNextCheckpoint implements sim.CheckpointPolicy; the schedule
// is derived from billing hours, so nothing is planned here.
func (p *Periodic) ScheduleNextCheckpoint(env *sim.Env) {}
