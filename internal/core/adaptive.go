package core

import (
	"math"
	"sort"
	"strconv"

	"repro/internal/market"
	"repro/internal/markov"
	"repro/internal/opt"
	"repro/internal/sim"
	"repro/internal/trace"
)

// PolicyFactory builds a fresh checkpoint policy instance. Adaptive
// candidates need fresh instances because policies hold run state.
type PolicyFactory struct {
	// Kind names the policy family ("periodic", "markov-daly").
	Kind string
	// New constructs an instance.
	New func() sim.CheckpointPolicy
}

// DefaultAdaptiveCandidates returns the policy families the Adaptive
// scheme chooses among. Edge and Threshold are excluded, as the paper
// drops them after §6 for their high recovery costs; Large-bid is
// excluded because it has no cost bound (§7.2.2).
func DefaultAdaptiveCandidates() []PolicyFactory {
	return []PolicyFactory{
		{Kind: "periodic", New: func() sim.CheckpointPolicy { return NewPeriodic() }},
		{Kind: "markov-daly", New: func() sim.CheckpointPolicy { return NewMarkovDaly() }},
	}
}

// Adaptive is the paper's §7 scheme: at each decision point (a zone
// terminated out-of-bid, or a billing hour ended) it simulates every
// permutation of bid price B, zone count N and candidate policy against
// recent price history, predicts each permutation's remaining cost via
// Inequality (1) — splitting the remaining time between the spot market
// at the observed progress rate and an on-demand tail — and switches to
// the least-cost permutation. The engine's deadline guard independently
// preserves the completion-time guarantee.
type Adaptive struct {
	// Bids is the candidate bid grid; nil selects the paper's grid
	// ($0.27–$3.07 step $0.20).
	Bids []float64
	// MaxZones bounds the redundancy degree N; 0 selects 3.
	MaxZones int
	// Candidates are the policy families; nil selects the defaults.
	Candidates []PolicyFactory
	// EstimationWindow is how much trailing history each permutation is
	// simulated over; 0 selects 12 hours.
	EstimationWindow int64
	// ReDecideOnHourOnly restricts decisions to hour boundaries,
	// ignoring kills; used by the decision-trigger ablation.
	ReDecideOnHourOnly bool
	// Analytic replaces the per-permutation engine replays with the
	// closed-form chain model of internal/opt (an extension beyond the
	// paper): availability, expected paid rate and cycle efficiency per
	// bid from the stationary chain, with redundancy approximated as
	// the union of per-zone effective rates. Roughly an order of
	// magnitude faster per decision; the candidate policy is always
	// Markov-Daly, whose assumptions the analytic model shares.
	Analytic bool
	// Eval is the evaluation service the permutation search runs on;
	// nil selects a default evaluator with GOMAXPROCS workers. Results
	// are independent of the worker count.
	Eval *Evaluator
	// Headroom is the near-tie band as a fraction of the least predicted
	// cost: among candidates within (1+Headroom) of the minimum the
	// strategy prefers bid headroom, then fewer zones. 0 selects the
	// default 0.03. It is one of the hyperparameters cmd/policytune
	// searches over.
	Headroom float64
	// Churn is the incumbent-retention tolerance: the current
	// configuration is kept while it predicts within (1+Churn) of the
	// best candidate, damping switch churn from estimation noise. 0
	// selects the default 0.02. Searched by cmd/policytune.
	Churn float64
	// Sink, when non-nil, receives one DecisionPoint per decision with
	// the chosen permutation and the full ranked rival grid. The point's
	// slices alias per-decision scratch; the sink must copy what it
	// keeps. Nil costs nothing.
	Sink DecisionSink

	chosen sim.RunSpec
	decSeq int

	// rankBuf is the reusable best-first alternative list handed to
	// Sink; valid only during the RecordDecision call.
	rankBuf []DecisionAlt

	// Per-decision scratch, reused across decision points: the scored
	// candidate grid, the measurement specs handed to the evaluator, and
	// the measurement policy instances (safe to reuse because the engine
	// resets policy state at replay start and the evaluator does not
	// retain them; each decision reattaches its own predictor cache).
	candBuf []candidate
	specBuf []sim.RunSpec
	polBuf  []policySlot
}

// policySlot is one reusable measurement-policy instance, tagged with
// its family so a reshaped candidate grid rebuilds mismatched slots.
type policySlot struct {
	kind string
	pol  sim.CheckpointPolicy
}

// NewAdaptive returns the Adaptive strategy with the paper's settings.
func NewAdaptive() *Adaptive { return &Adaptive{} }

// Name implements sim.Strategy.
func (a *Adaptive) Name() string { return "adaptive" }

// Begin implements sim.Strategy: bootstrap from the price history
// preceding the experiment (the paper primes with 2 days) and pick the
// initial permutation.
func (a *Adaptive) Begin(env *sim.Env) sim.RunSpec {
	a.decSeq = 0
	a.chosen = a.pick(env, TriggerBegin)
	return a.chosen
}

// Reconsider implements sim.Strategy.
func (a *Adaptive) Reconsider(env *sim.Env, events []sim.Event) (sim.RunSpec, bool) {
	if a.ReDecideOnHourOnly {
		hour := false
		for _, ev := range events {
			if ev.Kind == sim.HourBoundary {
				hour = true
				break
			}
		}
		if !hour {
			return sim.RunSpec{}, false
		}
	}
	spec := a.pick(env, triggerFor(events))
	if spec.Equal(a.chosen) {
		return sim.RunSpec{}, false
	}
	a.chosen = spec
	return spec, true
}

// triggerFor labels a decision point by its events: a provider kill
// dominates a coincident hour boundary, matching the paper's triggers.
func triggerFor(events []sim.Event) string {
	for _, ev := range events {
		if ev.Kind == sim.ProviderKill {
			return TriggerProviderKill
		}
	}
	return TriggerHourBoundary
}

func (a *Adaptive) bids() []float64 {
	if a.Bids != nil {
		return a.Bids
	}
	return BidGrid()
}

func (a *Adaptive) maxZones(env *sim.Env) int {
	n := a.MaxZones
	if n <= 0 {
		n = 3
	}
	if total := len(env.Zones); n > total {
		n = total
	}
	return n
}

func (a *Adaptive) candidates() []PolicyFactory {
	if a.Candidates != nil {
		return a.Candidates
	}
	return DefaultAdaptiveCandidates()
}

func (a *Adaptive) window() int64 {
	if a.EstimationWindow > 0 {
		return a.EstimationWindow
	}
	return 12 * trace.Hour
}

func (a *Adaptive) headroom() float64 {
	if a.Headroom > 0 {
		return a.Headroom
	}
	return 0.03
}

func (a *Adaptive) churn() float64 {
	if a.Churn > 0 {
		return a.Churn
	}
	return 0.02
}

// zonesByPrice returns all zone indices ordered by current price,
// cheapest first (ties by index for determinism).
func zonesByPrice(env *sim.Env) []int {
	idx := make([]int, len(env.Zones))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool {
		px, py := env.PriceNow(idx[x]), env.PriceNow(idx[y])
		if px != py {
			return px < py
		}
		return idx[x] < idx[y]
	})
	return idx
}

// historySet reconstructs a trace.Set of the trailing span seconds of
// price history visible at env.Now, for estimation replays.
func historySet(env *sim.Env, span int64) *trace.Set {
	series := make([]*trace.Series, len(env.Zones))
	var n int
	for zi := range env.Zones {
		prices := env.PriceHistory(zi, span)
		n = len(prices)
		epoch := env.Now - int64(len(prices)-1)*env.Step
		series[zi] = &trace.Series{
			Zone:   env.Cfg.Trace.Series[zi].Zone,
			Epoch:  epoch,
			Step:   env.Step,
			Prices: prices,
		}
	}
	if n == 0 {
		return nil
	}
	return trace.MustNewSet(series...)
}

// estimate holds a permutation's measured behaviour over the history
// window.
type estimate struct {
	progressRate float64 // work seconds per wall second
	costRate     float64 // dollars per wall second
}

// evaluator returns the strategy's evaluation service, building the
// default lazily.
func (a *Adaptive) evaluator() *Evaluator {
	if a.Eval == nil {
		a.Eval = NewEvaluator()
	}
	return a.Eval
}

// predictCost applies Inequality (1) at the paper's on-demand rate.
func predictCost(e estimate, cr, tr int64, migration int64) float64 {
	return predictCostAt(e, cr, tr, migration, market.OnDemandRate)
}

// predictCostAt applies Inequality (1): given the permutation's rates,
// the remaining work C_r and the remaining time T_r (less migration
// overhead), split the schedule between spot and an on-demand tail at
// odRate dollars per hour and return the predicted remaining cost.
func predictCostAt(e estimate, cr, tr int64, migration int64, odRate float64) float64 {
	if cr <= 0 {
		return 0
	}
	avail := float64(tr - migration)
	work := float64(cr)
	if avail <= 0 {
		// Only on-demand can finish now.
		return onDemandCost(work, odRate)
	}
	rate := e.progressRate
	if rate > 1 {
		rate = 1 // cannot progress faster than wall clock
	}
	if rate > 0 && rate*avail >= work {
		// Pure spot execution at the observed rate.
		return e.costRate * (work / rate)
	}
	if rate >= 1-1e-9 {
		// Spot is full speed but time is short: the tail is on-demand
		// either way; price the whole remainder on-demand as a floor.
		return onDemandCost(work, odRate)
	}
	// Spend t_s on spot, then finish on-demand:
	// t_s + (work − rate·t_s) = avail  ⇒  t_s = (avail − work)/(1 − rate).
	ts := (avail - work) / (1 - rate)
	if ts < 0 {
		ts = 0
	}
	odWork := work - rate*ts
	mixed := e.costRate*ts + onDemandCost(odWork, odRate)
	// Switching to on-demand immediately is always available; a mixed
	// schedule that costs more than that is never chosen.
	return math.Min(mixed, onDemandCost(work, odRate))
}

// onDemandCost prices work seconds of on-demand compute at odRate
// dollars per started hour.
func onDemandCost(work, odRate float64) float64 {
	hours := math.Ceil(work / float64(trace.Hour))
	return hours * odRate
}

// candidate is one scored (bid, N, policy) permutation.
type candidate struct {
	spec sim.RunSpec
	kind string
	n    int
	cost float64
}

// analyticCandidates scores permutations with the closed-form chain
// model instead of engine replays. The evaluator fits one chain per
// zone on the trailing history and analyses every (zone, bid) pair
// exactly once across its worker pool; redundancy combines zones as a
// union of effective rates (optimistic for correlated zones, which the
// generator keeps weak) and sums their cost rates.
func (a *Adaptive) analyticCandidates(env *sim.Env, ordered []int, cr, tr, migration int64) []candidate {
	ov := opt.Overheads{
		CheckpointCost: float64(env.CheckpointCost()),
		RestartCost:    float64(env.RestartCost()),
		QueueDelay:     300,
	}
	bids := a.bids()
	zones := a.evaluator().AnalyzeZones(env, bids, markov.DefaultHistory, 0.05, ov)
	var out []candidate
	for n := 1; n <= a.maxZones(env); n++ {
		zs := append([]int(nil), ordered[:n]...)
		sort.Ints(zs)
		for bi, bid := range bids {
			var costRate float64 // $/s across all paid zones
			missRate := 1.0      // Π(1 − effRate_z)
			for _, zi := range zs {
				if !zones[zi].ok {
					continue
				}
				an := zones[zi].analyses[bi]
				costRate += an.Availability * an.MeanPaidPrice / float64(trace.Hour)
				missRate *= 1 - an.EffectiveRate
			}
			est := estimate{progressRate: 1 - missRate, costRate: costRate}
			out = append(out, candidate{
				spec: sim.RunSpec{Bid: bid, Zones: zs, Policy: NewMarkovDaly()},
				kind: "markov-daly",
				n:    n,
				cost: predictCost(est, cr, tr, migration),
			})
		}
	}
	return out
}

// replayCandidates scores the full B × N × policy permutation grid by
// engine replay: the candidate grid is laid out in deterministic order,
// the evaluator measures every permutation in parallel on pooled
// machines, and Markov-Daly candidates share one predictor cache so
// identical chains are fitted once instead of once per permutation.
func (a *Adaptive) replayCandidates(env *sim.Env, hist *trace.Set, ordered []int, cr, tr, migration int64, cache *PredictorCache) []candidate {
	cands := a.candBuf[:0]
	specs := a.specBuf[:0]
	np := 0
	for _, fac := range a.candidates() {
		for n := 1; n <= a.maxZones(env); n++ {
			zones := append([]int(nil), ordered[:n]...)
			sort.Ints(zones)
			for _, bid := range a.bids() {
				// The candidate's own policy instance is materialized
				// lazily by pickSpec for the winner only; the scoring
				// grid never runs these instances.
				cands = append(cands, candidate{
					spec: sim.RunSpec{Bid: bid, Zones: zones},
					kind: fac.Kind,
					n:    n,
				})
				if hist != nil {
					if np == len(a.polBuf) {
						a.polBuf = append(a.polBuf, policySlot{})
					}
					if a.polBuf[np].kind != fac.Kind {
						a.polBuf[np] = policySlot{kind: fac.Kind, pol: fac.New()}
					}
					pol := withSharedCache(a.polBuf[np].pol, cache)
					np++
					specs = append(specs, sim.RunSpec{Bid: bid, Zones: zones, Policy: pol})
				}
			}
		}
	}
	a.candBuf = cands
	a.specBuf = specs
	if hist == nil {
		for i := range cands {
			cands[i].cost = predictCost(estimate{}, cr, tr, migration)
		}
		return cands
	}
	ests := a.evaluator().MeasureAll(hist, specs, env.CheckpointCost(), env.RestartCost())
	for i := range cands {
		cands[i].cost = predictCost(ests[i], cr, tr, migration)
	}
	return cands
}

// withSharedCache attaches the decision point's predictor cache to
// policies that can use one (estimation-replay instances only; the
// spec instances a switch would install stay cache-free).
func withSharedCache(p sim.CheckpointPolicy, cache *PredictorCache) sim.CheckpointPolicy {
	if md, ok := p.(*MarkovDaly); ok && cache != nil {
		return md.withCache(cache)
	}
	return p
}

// pick evaluates every permutation and returns the least-predicted-cost
// spec, tracing the decision with its chosen (bid, n, policy) and, when
// a Sink is attached, recording the full decision point (chosen plus
// every ranked rival) on the same adaptive.decision span path.
func (a *Adaptive) pick(env *sim.Env, trigger string) sim.RunSpec {
	span := a.evaluator().Trace.Start("adaptive.decision")
	spec, cands, chosenCost := a.pickSpec(env)
	if a.Sink != nil {
		a.recordDecision(env, trigger, spec, cands, chosenCost)
	}
	if span.Recording() {
		span.SetAttr("trigger", trigger)
		span.SetAttr("bid", strconv.FormatFloat(spec.Bid, 'g', -1, 64))
		span.SetAttr("zones", strconv.Itoa(len(spec.Zones)))
		if spec.Policy != nil {
			span.SetAttr("policy", spec.Policy.Name())
		}
		span.SetAttr("batched", strconv.FormatBool(!a.Analytic && !a.evaluator().DisableBatch))
	}
	span.End()
	return spec
}

// recordDecision hands the decision point to the sink: the candidates
// are sorted best-first into the reusable rankBuf (the scoring grid is
// per-decision scratch, so reordering it after selection is safe) and
// the chosen spec is captured with the cost the selection actually
// compared (the incumbent's re-evaluated cost when churn damping kept
// it). Switched is computed against the pre-decision incumbent exactly
// as Reconsider will: spec identity via RunSpec.Equal.
func (a *Adaptive) recordDecision(env *sim.Env, trigger string, spec sim.RunSpec, cands []candidate, chosenCost float64) {
	sort.Slice(cands, func(x, y int) bool {
		cx, cy := &cands[x], &cands[y]
		if cx.cost != cy.cost {
			return cx.cost < cy.cost
		}
		if cx.spec.Bid != cy.spec.Bid {
			return cx.spec.Bid > cy.spec.Bid
		}
		if cx.n != cy.n {
			return cx.n < cy.n
		}
		return cx.kind < cy.kind
	})
	buf := a.rankBuf[:0]
	for i := range cands {
		c := &cands[i]
		buf = append(buf, DecisionAlt{
			Bid:    c.spec.Bid,
			Zones:  c.spec.Zones,
			Policy: c.kind,
			Cost:   sanitizeCost(c.cost),
		})
	}
	a.rankBuf = buf
	policy := ""
	if spec.Policy != nil {
		policy = spec.Policy.Name()
	}
	p := DecisionPoint{
		Seq:      a.decSeq,
		Time:     env.Now,
		Trigger:  trigger,
		Switched: !spec.Equal(a.chosen),
		Chosen:   DecisionAlt{Bid: spec.Bid, Zones: spec.Zones, Policy: policy, Cost: sanitizeCost(chosenCost)},
		Ranked:   buf,
	}
	a.decSeq++
	a.Sink.RecordDecision(p)
}

// pickSpec is pick's decision body. It returns the selected spec, the
// scored candidate grid (per-decision scratch) and the predicted cost
// the selection compared for the chosen spec.
func (a *Adaptive) pickSpec(env *sim.Env) (sim.RunSpec, []candidate, float64) {
	hist := historySet(env, a.window())
	ordered := zonesByPrice(env)
	cr := env.RemainingWork()
	tr := env.RemainingTime()
	migration := env.CheckpointCost() + env.RestartCost() + env.Step
	cache := NewPredictorCache()

	var cands []candidate
	if a.Analytic {
		cands = a.analyticCandidates(env, ordered, cr, tr, migration)
	} else {
		cands = a.replayCandidates(env, hist, ordered, cr, tr, migration, cache)
	}
	var best *candidate
	minCost := math.Inf(1)
	for i := range cands {
		if cands[i].cost < minCost {
			minCost = cands[i].cost
		}
	}
	// Among candidates within a few percent of the least predicted
	// cost, prefer bid headroom (short estimation replays under-sample
	// terminations, so near-equal low bids are riskier than they look)
	// and then fewer zones.
	for i := range cands {
		c := &cands[i]
		if c.cost > minCost*(1+a.headroom())+1e-9 {
			continue
		}
		if best == nil ||
			c.spec.Bid > best.spec.Bid ||
			(c.spec.Bid == best.spec.Bid && c.n < best.n) {
			best = c
		}
	}
	if best == nil {
		// No history at all: fall back to single-zone Periodic at the
		// median bid.
		bids := a.bids()
		fallback := sim.RunSpec{Bid: bids[len(bids)/2], Zones: []int{ordered[0]}, Policy: NewPeriodic()}
		return fallback, cands, math.Inf(1)
	}
	// Keep the current configuration when it predicts within a hair of
	// the best, avoiding churn from estimation noise.
	if len(a.chosen.Zones) > 0 && !best.spec.Equal(a.chosen) {
		cur := a.evalSpec(env, hist, a.chosen, cr, tr, migration, cache)
		if cur <= best.cost*(1+a.churn()) {
			return a.chosen, cands, cur
		}
	}
	if best.spec.Policy == nil {
		// Replay candidates defer their policy instance to the winner
		// (the scoring grid never runs it); build it now.
		best.spec.Policy = a.policyFor(best.kind)
	}
	return best.spec, cands, best.cost
}

// policyFor builds a fresh policy instance of the named family.
func (a *Adaptive) policyFor(kind string) sim.CheckpointPolicy {
	for _, fac := range a.candidates() {
		if fac.Kind == kind {
			return fac.New()
		}
	}
	return NewPeriodic()
}

// evalSpec predicts the remaining cost of an existing spec (re-using
// its policy kind with a fresh instance, sharing the decision point's
// predictor cache).
func (a *Adaptive) evalSpec(env *sim.Env, hist *trace.Set, spec sim.RunSpec, cr, tr, migration int64, cache *PredictorCache) float64 {
	if hist == nil {
		return math.Inf(1)
	}
	fresh := sim.RunSpec{Bid: spec.Bid, Zones: spec.Zones, Policy: withSharedCache(clonePolicy(spec.Policy), cache)}
	est := a.evaluator().measureOne(hist, fresh, env.CheckpointCost(), env.RestartCost())
	return predictCost(est, cr, tr, migration)
}

// clonePolicy builds a fresh instance of a known policy family.
func clonePolicy(p sim.CheckpointPolicy) sim.CheckpointPolicy {
	switch p.(type) {
	case *Periodic:
		return NewPeriodic()
	case *MarkovDaly:
		return NewMarkovDaly()
	case *Edge:
		return NewEdge()
	case *Threshold:
		return NewThreshold()
	default:
		return NewPeriodic()
	}
}
