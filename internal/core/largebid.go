package core

import (
	"math"

	"repro/internal/sim"
	"repro/internal/trace"
)

// LargeBid is the §7.2.2 policy (after Khatua et al.): bid an amount
// the spot price will essentially never reach (so EC2 never terminates
// the instance) and control cost with a user threshold L. If the spot
// price S moves above L, the instance is allowed to finish the ongoing
// hour; if S is still above L near the hour's end, a checkpoint is
// taken and the instance is manually terminated, to be restarted once
// S falls back below L. It is strictly single-zone and provides no
// upper bound on cost — a price spike is paid at full spot rate for the
// hour in which it occurs.
type LargeBid struct {
	// L is the cost-control threshold; +Inf is the paper's "Naive"
	// variant that never releases.
	L float64

	lastHourEnd int64 // billing hour already checkpointed
}

// NewLargeBid returns the policy with threshold l.
func NewLargeBid(l float64) *LargeBid { return &LargeBid{L: l} }

// NewNaiveLargeBid returns the thresholdless variant.
func NewNaiveLargeBid() *LargeBid { return &LargeBid{L: math.Inf(1)} }

// Name implements sim.CheckpointPolicy.
func (lb *LargeBid) Name() string { return "large-bid" }

// Reset implements sim.CheckpointPolicy.
func (lb *LargeBid) Reset(env *sim.Env) { lb.lastHourEnd = 0 }

// overThresholdNearHourEnd reports whether the zone is both above the
// threshold and close enough to its billing-hour boundary that a
// checkpoint must start now to complete within the paid hour.
func (lb *LargeBid) overThresholdNearHourEnd(env *sim.Env, z *sim.ZoneState) bool {
	if z.Meter == nil || env.PriceNow(z.Index) <= lb.L {
		return false
	}
	remaining := z.Meter.HourStart() + trace.Hour - env.Now
	return remaining > 0 && remaining <= env.CheckpointCost()+env.Step
}

// CheckpointCondition takes the pre-release checkpoint.
func (lb *LargeBid) CheckpointCondition(env *sim.Env) bool {
	for _, z := range env.UpZones() {
		if !lb.overThresholdNearHourEnd(env, z) {
			continue
		}
		hourEnd := z.Meter.HourStart() + trace.Hour
		if hourEnd == lb.lastHourEnd {
			continue
		}
		lb.lastHourEnd = hourEnd
		return true
	}
	return false
}

// ScheduleNextCheckpoint implements sim.CheckpointPolicy (no-op).
func (lb *LargeBid) ScheduleNextCheckpoint(env *sim.Env) {}

// ShouldRelease implements sim.Releaser: manually terminate once the
// pre-release checkpoint has landed (nothing uncommitted) while the
// price is still above the threshold near the hour end.
func (lb *LargeBid) ShouldRelease(env *sim.Env, zone int) bool {
	var z *sim.ZoneState
	for _, u := range env.UpZones() {
		if u.Index == zone {
			z = u
			break
		}
	}
	if z == nil || !lb.overThresholdNearHourEnd(env, z) {
		return false
	}
	return z.Progress <= env.Committed
}

// MayStart implements sim.Admission: do not (re)start while the spot
// price exceeds the threshold.
func (lb *LargeBid) MayStart(env *sim.Env, zone int) bool {
	return env.PriceNow(zone) <= lb.L
}

// Compile-time checks for the optional engine extensions.
var (
	_ sim.Releaser  = (*LargeBid)(nil)
	_ sim.Admission = (*LargeBid)(nil)
)
