package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/market"
	"repro/internal/sim"
	"repro/internal/trace"
)

// DefaultCheckpointCost is the planning default for t_c = t_r in
// seconds: the lower of the two costs the paper evaluates (§5).
const DefaultCheckpointCost int64 = 300

// PlanRequest describes one planning question for Rank: how much work
// remains, how much wall-clock budget the deadline leaves, and which
// price history window the candidate permutations should be replayed
// over. It is the offline (service-facing) form of the question the
// Adaptive strategy answers at every decision point.
type PlanRequest struct {
	// History is the trailing price window the permutations replay.
	History *trace.Set
	// Work is the remaining computation C_r in seconds.
	Work int64
	// Deadline is the remaining wall-clock budget T_r in seconds.
	Deadline int64
	// CheckpointCost and RestartCost are t_c and t_r in seconds.
	CheckpointCost int64
	RestartCost    int64
	// OnDemandRate prices the on-demand fallback in dollars per hour;
	// 0 selects market.OnDemandRate.
	OnDemandRate float64
	// Bids is the candidate bid grid; nil selects BidGrid().
	Bids []float64
	// MaxZones bounds the redundancy degree N; 0 selects 3 (clamped to
	// the zones the history has).
	MaxZones int
	// Candidates are the policy families; nil selects
	// DefaultAdaptiveCandidates().
	Candidates []PolicyFactory
}

// Plan is one scored (bid, zones, policy) permutation of a Rank call.
type Plan struct {
	// Bid is the spot bid in dollars per hour.
	Bid float64
	// Zones names the availability zones the plan runs in; its length
	// is the redundancy degree N.
	Zones []string
	// Policy names the checkpoint policy family.
	Policy string
	// PredictedCost is the Inequality (1) remaining-cost prediction in
	// dollars.
	PredictedCost float64
	// ProgressRate is the measured work-seconds-per-wall-second over
	// the history window.
	ProgressRate float64
	// CostRate is the measured spend in dollars per wall-clock hour.
	CostRate float64
	// PredictedFinish is the predicted completion time in seconds from
	// now under the predicted schedule split.
	PredictedFinish int64
	// DeadlineMargin is Deadline − PredictedFinish in seconds; negative
	// margins flag plans whose predicted schedule overruns the budget.
	DeadlineMargin int64
}

// validate reports structural errors in a plan request.
func (req *PlanRequest) validate() error {
	if req.History == nil || req.History.NumZones() == 0 || req.History.Duration() <= 0 {
		return errors.New("core: plan request needs a non-empty history window")
	}
	if req.Work <= 0 {
		return fmt.Errorf("core: non-positive remaining work %d", req.Work)
	}
	if req.Deadline < req.Work {
		return fmt.Errorf("core: deadline %d cannot be met: below remaining work %d", req.Deadline, req.Work)
	}
	if req.OnDemandRate < 0 {
		return fmt.Errorf("core: negative on-demand rate %g", req.OnDemandRate)
	}
	return nil
}

// zonesByHistPrice returns the history's zone indices ordered by final
// observed price, cheapest first (ties by index for determinism) — the
// offline analogue of the Adaptive strategy's zonesByPrice.
func zonesByHistPrice(hist *trace.Set) []int {
	last := hist.PricesAt(hist.End() - 1)
	idx := make([]int, hist.NumZones())
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool {
		px, py := last[idx[x]], last[idx[y]]
		if px != py {
			return px < py
		}
		return idx[x] < idx[y]
	})
	return idx
}

// predictFinish mirrors predictCostAt's schedule split and returns the
// predicted completion time in seconds from now: migration plus spot
// execution at the observed rate when the deadline leaves room, the
// whole remaining budget when the prediction needs an on-demand tail,
// and an immediate on-demand restart when spot makes no progress.
func predictFinish(e estimate, cr, tr, migration int64) int64 {
	if cr <= 0 {
		return 0
	}
	avail := float64(tr - migration)
	rate := e.progressRate
	if rate > 1 {
		rate = 1
	}
	if avail <= 0 || rate <= 0 {
		// Immediate on-demand restart from the last checkpoint.
		return migration + cr
	}
	work := float64(cr)
	if rate*avail >= work {
		return migration + int64(math.Ceil(work/rate))
	}
	// A mixed spot/on-demand schedule uses the full remaining budget.
	return tr
}

// resolveRank resolves the request's defaulted knobs against its
// history: the on-demand rate, the bid grid, the (zone-clamped)
// redundancy bound and the candidate families.
func resolveRank(req *PlanRequest) (odRate float64, bids []float64, maxZones int, cands []PolicyFactory) {
	odRate = req.OnDemandRate
	if odRate == 0 {
		odRate = market.OnDemandRate
	}
	bids = req.Bids
	if bids == nil {
		bids = BidGrid()
	}
	maxZones = req.MaxZones
	if maxZones <= 0 {
		maxZones = 3
	}
	if nz := req.History.NumZones(); maxZones > nz {
		maxZones = nz
	}
	cands = req.Candidates
	if cands == nil {
		cands = DefaultAdaptiveCandidates()
	}
	return odRate, bids, maxZones, cands
}

// rankSlot is one (policy, zone set, bid) cell of a ranking sweep's
// permutation grid. fac indexes the candidate list the grid was built
// from; zone sets are shared (not copied) across the bids of one
// redundancy degree.
type rankSlot struct {
	kind  string
	fac   int
	bid   float64
	zones []int
}

// rankSlots enumerates the permutation grid over the history's current
// cheapest-last-price zone ordering, in Rank's exact slot order
// (candidate-major, then redundancy degree, then bid). The streaming
// evaluator re-derives this grid every tick: the ordering — and with it
// the zone sets — can change whenever prices move.
func rankSlots(hist *trace.Set, bids []float64, maxZones int, cands []PolicyFactory) []rankSlot {
	ordered := zonesByHistPrice(hist)
	slots := make([]rankSlot, 0, len(cands)*maxZones*len(bids))
	for fi := range cands {
		for n := 1; n <= maxZones; n++ {
			zs := append([]int(nil), ordered[:n]...)
			sort.Ints(zs)
			for _, bid := range bids {
				slots = append(slots, rankSlot{kind: cands[fi].Kind, fac: fi, bid: bid, zones: zs})
			}
		}
	}
	return slots
}

// scorePlans converts per-slot estimates into the ranked plan table:
// Inequality (1) cost prediction and schedule split per slot, then the
// stable best-first order (ascending predicted cost, ties toward bid
// headroom, then fewer zones, then policy name).
func scorePlans(req *PlanRequest, odRate float64, slots []rankSlot, ests []estimate) []Plan {
	names := req.History.Zones()
	migration := req.CheckpointCost + req.RestartCost + req.History.Step()
	plans := make([]Plan, len(slots))
	for i := range slots {
		sl := &slots[i]
		e := ests[i]
		zoneNames := make([]string, len(sl.zones))
		for j, zi := range sl.zones {
			zoneNames[j] = names[zi]
		}
		finish := predictFinish(e, req.Work, req.Deadline, migration)
		plans[i] = Plan{
			Bid:             sl.bid,
			Zones:           zoneNames,
			Policy:          sl.kind,
			PredictedCost:   predictCostAt(e, req.Work, req.Deadline, migration, odRate),
			ProgressRate:    e.progressRate,
			CostRate:        e.costRate * float64(trace.Hour),
			PredictedFinish: finish,
			DeadlineMargin:  req.Deadline - finish,
		}
	}
	sort.SliceStable(plans, func(x, y int) bool {
		a, b := &plans[x], &plans[y]
		if a.PredictedCost != b.PredictedCost {
			return a.PredictedCost < b.PredictedCost
		}
		if a.Bid != b.Bid {
			return a.Bid > b.Bid // prefer bid headroom among ties
		}
		if len(a.Zones) != len(b.Zones) {
			return len(a.Zones) < len(b.Zones)
		}
		return a.Policy < b.Policy
	})
	return plans
}

// Rank scores every (bid, zone set, policy) permutation of the request
// by replaying it over the history window — the Adaptive strategy's
// §7 permutation search exposed as a standalone planning service — and
// returns all plans ordered best-first: ascending predicted cost, with
// ties broken toward bid headroom (higher bid), then fewer zones, then
// policy name. Markov-Daly candidates share one predictor cache, so
// identical chains are fitted once. The result depends only on the
// request (fixed estimation seed, order-preserving fan-out), so
// identical requests yield identical plans regardless of worker count.
func (ev *Evaluator) Rank(req PlanRequest) ([]Plan, error) {
	rsp := ev.Trace.Start("eval.rank")
	defer rsp.End()
	if err := req.validate(); err != nil {
		return nil, err
	}
	odRate, bids, maxZones, cands := resolveRank(&req)
	slots := rankSlots(req.History, bids, maxZones, cands)
	cache := NewPredictorCache()
	specs := make([]sim.RunSpec, len(slots))
	for i := range slots {
		sl := &slots[i]
		specs[i] = sim.RunSpec{Bid: sl.bid, Zones: sl.zones, Policy: withSharedCache(cands[sl.fac].New(), cache)}
	}
	ests := ev.MeasureAll(req.History, specs, req.CheckpointCost, req.RestartCost)
	plans := scorePlans(&req, odRate, slots, ests)
	if ev.Sink != nil && len(plans) > 0 {
		ev.Sink.RecordDecision(rankDecision(req.History, plans))
	}
	return plans, nil
}

// rankDecision converts a ranked plan table into the decision-point
// shape shared with the Adaptive strategy: the best plan as the chosen
// permutation and the whole table as the ranked rivals, with plan zone
// names mapped back to the history's zone indices. Seq is -1 (the sink
// assigns it) and Time is the end of the history window the plans were
// scored over.
func rankDecision(hist *trace.Set, plans []Plan) DecisionPoint {
	byName := make(map[string]int, hist.NumZones())
	for i, name := range hist.Zones() {
		byName[name] = i
	}
	alts := make([]DecisionAlt, len(plans))
	for i := range plans {
		p := &plans[i]
		zones := make([]int, len(p.Zones))
		for j, name := range p.Zones {
			zones[j] = byName[name]
		}
		alts[i] = DecisionAlt{Bid: p.Bid, Zones: zones, Policy: p.Policy, Cost: sanitizeCost(p.PredictedCost)}
	}
	return DecisionPoint{
		Seq:      -1,
		Time:     hist.End(),
		Trigger:  TriggerRank,
		Switched: false,
		Chosen:   alts[0],
		Ranked:   alts,
	}
}
