package core

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// estimationHistory builds a 12-hour three-zone history window the way
// Adaptive does before a decision point.
func estimationHistory(seed uint64) *trace.Set {
	set := tracegen.HighVolatility(seed)
	start := set.Start() + 3*24*trace.Hour
	return set.Slice(start-12*trace.Hour, start)
}

// permutationSpecs lays out a small bid × zones × policy grid with
// fresh policy instances, as replayCandidates does.
func permutationSpecs(cache *PredictorCache) []sim.RunSpec {
	var specs []sim.RunSpec
	for _, zones := range [][]int{{0}, {0, 1}, {0, 1, 2}} {
		for _, bid := range []float64{0.47, 0.81, 1.67} {
			specs = append(specs, sim.RunSpec{Bid: bid, Zones: zones, Policy: NewPeriodic()})
			specs = append(specs, sim.RunSpec{Bid: bid, Zones: zones, Policy: withSharedCache(NewMarkovDaly(), cache)})
		}
	}
	return specs
}

// TestMeasureAllMatchesSequentialMeasure is the evaluator's golden
// determinism contract: the parallel fan-out must return bit-identical
// estimates to one-at-a-time measurement, with and without a shared
// predictor cache, at any worker count.
func TestMeasureAllMatchesSequentialMeasure(t *testing.T) {
	hist := estimationHistory(17)
	serial := &Evaluator{Workers: 1}
	want := make([]estimate, 0, 18)
	for _, spec := range permutationSpecs(nil) {
		want = append(want, serial.Measure(hist, spec, 300, 300))
	}
	for _, workers := range []int{0, 1, 2, 8} {
		ev := &Evaluator{Workers: workers}
		got := ev.MeasureAll(hist, permutationSpecs(NewPredictorCache()), 300, 300)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("workers=%d: parallel cached estimates diverge from serial uncached ones\nwant %v\ngot  %v",
				workers, want, got)
		}
	}
	var nonzero int
	for _, e := range want {
		if e.progressRate > 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("every permutation measured zero progress; scenario too tame")
	}
}

// TestAdaptiveResultIndependentOfWorkers runs the full Adaptive scheme
// with a serial and a parallel evaluator and requires identical runs.
func TestAdaptiveResultIndependentOfWorkers(t *testing.T) {
	hist, run := window(tracegen.HighVolatility(23), 5, 2)
	cfg := testConfig(hist, run, 300)

	results := make([]*sim.Result, 2)
	for i, workers := range []int{1, 8} {
		a := NewAdaptive()
		a.Eval = &Evaluator{Workers: workers}
		res, err := sim.Run(cfg, a)
		if err != nil {
			t.Fatal(err)
		}
		results[i] = res
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Errorf("Adaptive diverges across worker counts:\nserial:   %+v\nparallel: %+v", results[0], results[1])
	}
}

// TestPredictorCacheConcurrentUse hammers one shared cache from many
// goroutines running full permutation evaluations; -race exercises the
// lock discipline, and every round must agree with the first.
func TestPredictorCacheConcurrentUse(t *testing.T) {
	hist := estimationHistory(29)
	ev := NewEvaluator()
	cache := NewPredictorCache()
	want := ev.MeasureAll(hist, permutationSpecs(cache), 300, 300)

	const goroutines = 6
	got := make([][]estimate, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got[g] = ev.MeasureAll(hist, permutationSpecs(cache), 300, 300)
		}(g)
	}
	wg.Wait()
	for g := range got {
		if !reflect.DeepEqual(want, got[g]) {
			t.Errorf("goroutine %d: cached evaluation diverged", g)
		}
	}
}

// TestPackZones pins the interval-cache key encoding.
func TestPackZones(t *testing.T) {
	a, ok := packZones([]int{0, 1, 2})
	if !ok || a == 0 {
		t.Fatalf("packZones({0,1,2}) = %#x, %v", a, ok)
	}
	b, ok := packZones([]int{0, 2, 1})
	if !ok || a == b {
		t.Fatalf("order must distinguish keys: %#x vs %#x", a, b)
	}
	if _, ok := packZones([]int{0, 1, 2, 3, 4, 5, 6, 7, 8}); ok {
		t.Fatal("nine zones must disable packing")
	}
	if _, ok := packZones([]int{300}); ok {
		t.Fatal("zone index above 0xfe must disable packing")
	}
}
