package core

import (
	"math"
	"testing"

	"repro/internal/market"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

func TestAdaptiveCompletesBothRegimes(t *testing.T) {
	for name, set := range map[string]*trace.Set{
		"low":  tracegen.LowVolatility(31),
		"high": tracegen.HighVolatility(31),
	} {
		hist, run := window(set, 5, 2)
		cfg := testConfig(hist, run, 300)
		res, err := sim.Run(cfg, NewAdaptive())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Completed || !res.DeadlineMet {
			t.Fatalf("%s: adaptive failed: %+v", name, res)
		}
		// The paper's §7.2 bound: total cost stayed within 20% above
		// on-demand across all its experiments; we allow a wider 50%
		// band as a hard invariant for the small test config.
		od := math.Ceil(float64(cfg.Work)/float64(trace.Hour)) * market.OnDemandRate
		if res.Cost > 1.5*od {
			t.Fatalf("%s: adaptive cost %g far above on-demand %g", name, res.Cost, od)
		}
		t.Logf("%s: cost=%.2f policy=%s switches=%d", name, res.Cost, res.Policy, res.SpecSwitches)
	}
}

func TestAdaptiveBeatsOnDemandInCalmMarket(t *testing.T) {
	hist, run := window(tracegen.LowVolatility(37), 7, 2)
	cfg := testConfig(hist, run, 300)
	res, err := sim.Run(cfg, NewAdaptive())
	if err != nil {
		t.Fatal(err)
	}
	od := 6 * market.OnDemandRate
	if res.Cost > od/2 {
		t.Fatalf("adaptive cost %g should be far below on-demand %g in a calm market", res.Cost, od)
	}
}

func TestAdaptivePicksLowBidInCalmMarket(t *testing.T) {
	hist, run := window(tracegen.LowVolatility(41), 6, 2)
	cfg := testConfig(hist, run, 300)
	a := NewAdaptive()
	res, err := sim.Run(cfg, a)
	if err != nil {
		t.Fatal(err)
	}
	// In a calm $0.30 market a single zone suffices; the bid only sets
	// headroom (the hour-start price is what is paid), so any bid above
	// the floor is acceptable but redundancy is not.
	if len(a.chosen.Zones) != 1 {
		t.Fatalf("adaptive chose N=%d in a calm market", len(a.chosen.Zones))
	}
	if a.chosen.Bid <= 0.27 {
		t.Fatalf("adaptive chose the floor bid %g", a.chosen.Bid)
	}
	if res.Cost <= 0 {
		t.Fatal("non-positive cost")
	}
}

func TestAdaptiveAnalyticMode(t *testing.T) {
	for name, set := range map[string]*trace.Set{
		"low":  tracegen.LowVolatility(31),
		"high": tracegen.HighVolatility(31),
	} {
		hist, run := window(set, 5, 2)
		cfg := testConfig(hist, run, 300)
		a := NewAdaptive()
		a.Analytic = true
		res, err := sim.Run(cfg, a)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Completed || !res.DeadlineMet {
			t.Fatalf("%s: analytic adaptive failed: %+v", name, res)
		}
		od := math.Ceil(float64(cfg.Work)/float64(trace.Hour)) * market.OnDemandRate
		if res.Cost > 1.5*od {
			t.Fatalf("%s: analytic adaptive cost %g far above on-demand %g", name, res.Cost, od)
		}
		if res.Policy != "markov-daly" {
			t.Fatalf("%s: analytic mode ran policy %q", name, res.Policy)
		}
		t.Logf("%s: analytic adaptive cost=%.2f", name, res.Cost)
	}
}

func TestAdaptiveHourOnlyAblation(t *testing.T) {
	hist, run := window(tracegen.HighVolatility(43), 4, 2)
	cfg := testConfig(hist, run, 300)
	a := NewAdaptive()
	a.ReDecideOnHourOnly = true
	res, err := sim.Run(cfg, a)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || !res.DeadlineMet {
		t.Fatalf("hour-only adaptive failed: %+v", res)
	}
}

func TestPredictCost(t *testing.T) {
	hour := float64(trace.Hour)
	// Full-speed free progress: cost 0.
	if got := predictCost(estimate{progressRate: 1, costRate: 0}, trace.Hour, 4*trace.Hour, 600); got != 0 {
		t.Fatalf("free spot predicted %g", got)
	}
	// No remaining work: zero cost.
	if got := predictCost(estimate{}, 0, trace.Hour, 0); got != 0 {
		t.Fatalf("no work predicted %g", got)
	}
	// No time left: pure on-demand at $2.40/h.
	if got := predictCost(estimate{progressRate: 0.9, costRate: 0}, 2*trace.Hour, 100, 600); got != 2*market.OnDemandRate {
		t.Fatalf("no-time prediction = %g", got)
	}
	// Zero progress rate: everything on-demand.
	want := math.Ceil(2*hour/hour) * market.OnDemandRate
	if got := predictCost(estimate{progressRate: 0, costRate: 0}, 2*trace.Hour, 10*trace.Hour, 600); got != want {
		t.Fatalf("zero-rate prediction = %g, want %g", got, want)
	}
	// Half progress rate, plenty of time: pure spot costing
	// costRate × work/rate.
	e := estimate{progressRate: 0.5, costRate: 0.30 / hour}
	got := predictCost(e, 2*trace.Hour, 100*trace.Hour, 600)
	wantSpot := e.costRate * (2 * hour / 0.5)
	if math.Abs(got-wantSpot) > 1e-9 {
		t.Fatalf("pure-spot prediction = %g, want %g", got, wantSpot)
	}
	// Rate too slow for the window: a mixed schedule costs more than
	// pure spot would but never more than switching to on-demand now.
	gotMixed := predictCost(e, 4*trace.Hour, 5*trace.Hour, 600)
	odAll := math.Ceil(4) * market.OnDemandRate
	if gotMixed <= 0 || gotMixed > odAll {
		t.Fatalf("mixed prediction = %g, want in (0, %g]", gotMixed, odAll)
	}
}

func TestZonesByPrice(t *testing.T) {
	run := trace.MustNewSet(
		trace.NewSeries("a", 0, []float64{0.9, 0.9}),
		trace.NewSeries("b", 0, []float64{0.3, 0.3}),
		trace.NewSeries("c", 0, []float64{0.5, 0.5}),
	)
	cfg := sim.Config{
		Trace: run, Work: 300, Deadline: 1200,
		CheckpointCost: 0, RestartCost: 0, Delay: market.FixedDelay(0), Seed: 1,
	}
	var order []int
	probe := probeStrategy{func(env *sim.Env) {
		order = zonesByPrice(env)
	}}
	if _, err := sim.Run(cfg, probe); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 0 {
		t.Fatalf("order = %v", order)
	}
}

// probeStrategy runs a callback at Begin and then executes on-demand.
type probeStrategy struct {
	fn func(env *sim.Env)
}

func (p probeStrategy) Name() string { return "probe" }
func (p probeStrategy) Begin(env *sim.Env) sim.RunSpec {
	p.fn(env)
	return sim.RunSpec{}
}
func (p probeStrategy) Reconsider(*sim.Env, []sim.Event) (sim.RunSpec, bool) {
	return sim.RunSpec{}, false
}

func TestHistorySet(t *testing.T) {
	set := tracegen.LowVolatility(3)
	hist, run := window(set, 3, 1)
	cfg := testConfig(hist, run, 300)
	var got *trace.Set
	probe := probeStrategy{func(env *sim.Env) {
		got = historySet(env, 6*trace.Hour)
	}}
	if _, err := sim.Run(cfg, probe); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("no history set built")
	}
	if got.NumZones() != 3 {
		t.Fatalf("zones = %d", got.NumZones())
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	// The reconstructed series must end at the probe time (run start)
	// and agree with the source prices.
	if got.End() != run.Start()+set.Step() {
		t.Fatalf("history ends at %d, want %d", got.End(), run.Start()+set.Step())
	}
	wantPrice := set.Series[0].PriceAt(got.Start())
	if got.Series[0].Prices[0] != wantPrice {
		t.Fatalf("history price = %g, want %g", got.Series[0].Prices[0], wantPrice)
	}
}

func TestClonePolicy(t *testing.T) {
	// Stateful policies must get fresh instances (Edge is zero-sized,
	// so pointer identity is not meaningful for it).
	for _, p := range []sim.CheckpointPolicy{NewPeriodic(), NewMarkovDaly(), NewThreshold()} {
		c := clonePolicy(p)
		if c == p {
			t.Fatalf("clone of %s returned the same instance", p.Name())
		}
		if c.Name() != p.Name() {
			t.Fatalf("clone of %s has name %s", p.Name(), c.Name())
		}
	}
	if clonePolicy(NewEdge()).Name() != "edge" {
		t.Fatal("edge clone wrong")
	}
	if clonePolicy(NewLargeBid(1)).Name() != "periodic" {
		t.Fatal("unknown policy should fall back to periodic")
	}
}
