package core

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

func TestAdaptiveCustomKnobs(t *testing.T) {
	hist, run := window(tracegen.LowVolatility(47), 5, 2)
	cfg := testConfig(hist, run, 300)
	a := NewAdaptive()
	a.Bids = []float64{0.47, 0.87}
	a.MaxZones = 2
	a.EstimationWindow = 6 * trace.Hour
	a.Candidates = []PolicyFactory{
		{Kind: "periodic", New: func() sim.CheckpointPolicy { return NewPeriodic() }},
	}
	res, err := sim.Run(cfg, a)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || !res.DeadlineMet {
		t.Fatalf("custom adaptive failed: %+v", res)
	}
	if a.chosen.Bid != 0.47 && a.chosen.Bid != 0.87 {
		t.Fatalf("chosen bid %g outside the custom grid", a.chosen.Bid)
	}
	if len(a.chosen.Zones) > 2 {
		t.Fatalf("chosen N=%d above MaxZones", len(a.chosen.Zones))
	}
	if a.chosen.Policy.Name() != "periodic" {
		t.Fatalf("chosen policy %q outside the custom candidates", a.chosen.Policy.Name())
	}
}

func TestAdaptiveRetainsNearOptimalCurrentSpec(t *testing.T) {
	// In a calm market every bid above the floor predicts nearly the
	// same cost, so once chosen, the configuration should persist: no
	// churn (switches) across the run.
	hist, run := window(tracegen.LowVolatility(53), 6, 2)
	cfg := testConfig(hist, run, 300)
	res, err := sim.Run(cfg, NewAdaptive())
	if err != nil {
		t.Fatal(err)
	}
	if res.SpecSwitches > 2 {
		t.Fatalf("adaptive churned %d switches in a calm market", res.SpecSwitches)
	}
}

func TestAnalyticCandidatesShape(t *testing.T) {
	hist, run := window(tracegen.HighVolatility(59), 5, 1)
	cfg := testConfig(hist, run, 300)
	a := NewAdaptive()
	a.Analytic = true
	a.Bids = []float64{0.47, 2.47}
	probe := probeStrategy{func(env *sim.Env) {
		cands := a.analyticCandidates(env, zonesByPrice(env), env.RemainingWork(), env.RemainingTime(), 900)
		if len(cands) != 2*3 { // bids × N
			t.Fatalf("candidates = %d, want 6", len(cands))
		}
		for _, c := range cands {
			if c.cost < 0 {
				t.Fatalf("negative predicted cost: %+v", c)
			}
			if c.kind != "markov-daly" {
				t.Fatalf("analytic candidate policy %q", c.kind)
			}
		}
	}}
	if _, err := sim.Run(cfg, probe); err != nil {
		t.Fatal(err)
	}
}
