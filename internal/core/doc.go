// Package core implements the paper's contribution: the checkpoint
// scheduling policies for time-constrained, cost-minimising execution on
// the EC2 spot market.
//
// Single-zone and redundancy-based policies (§4) plug into the sim
// engine's Algorithm 1 hooks:
//
//   - Periodic: checkpoint just before each billing-hour boundary.
//   - MarkovDaly: a Markov chain over discretised spot prices predicts
//     the expected uptime E[T_u] at the current bid (Appendix B); Daly's
//     equation converts it into an optimal checkpoint interval. With N
//     redundant zones the combined E[T_u] is the per-zone sum, so the
//     checkpoint frequency falls as N grows.
//   - Edge: checkpoint on every upward spot price movement in an
//     executing zone.
//   - Threshold: the two-threshold refinement of Edge (price threshold
//     (S_min+B)/2 on rising edges, plus an uptime threshold).
//   - LargeBid: bid far above any plausible price and control cost with
//     a user threshold L, releasing instances near the hour end while
//     the price exceeds L (§7.2.2).
//
// The Adaptive strategy (§7) re-simulates every permutation of bid,
// redundancy degree and policy against recent price history at decision
// points and switches to the least-predicted-cost configuration while
// the engine's deadline guard keeps the completion-time guarantee.
package core
