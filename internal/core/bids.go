package core

// Bid grid constants from §5 of the paper.

// MinBid and MaxBid bound the bid grid: "$0.27 to $3.07 in steps of
// $0.20"; bids above $2.40 exist to ride out occasional spikes of up to
// $3.00.
const (
	MinBid  = 0.27
	MaxBid  = 3.07
	BidStep = 0.20
)

// LargeBidAmount is the effectively-unbeatable bid of the Large-bid
// policy (the paper suggests $100; the largest price it ever observed
// was $20.02).
const LargeBidAmount = 100.0

// BidGrid returns the paper's bid grid.
func BidGrid() []float64 {
	var out []float64
	// Iterate in integer cents to avoid float accumulation drift.
	const minC, maxC, stepC = 27, 307, 20
	for c := minC; c <= maxC; c += stepC {
		out = append(out, float64(c)/100)
	}
	return out
}

// Figure4Bids are the bid prices highlighted in the paper's Figure 4.
func Figure4Bids() []float64 { return []float64{0.27, 0.81, 2.40} }
