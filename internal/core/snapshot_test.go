package core

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestStreamSnapshotResume is the crash-recovery contract: an evaluator
// restored from a mid-stream snapshot and fed only the ticks after it
// stays bit-identical — update by update — to the evaluator that never
// crashed. The snapshot goes through a JSON round trip first, exactly
// as a snapshot store would persist it.
func TestStreamSnapshotResume(t *testing.T) {
	set := paperRegimes()["high/day3"]
	cfg := streamConfigFor(set)
	cfg.CrossCheckEvery = -1
	live, err := NewStreamEvaluator(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := set.Series[0].Len()
	crash := n / 2
	for i := 0; i < crash; i++ {
		if _, err := live.Advance(set.PricesAt(set.Start() + int64(i)*set.Step())); err != nil {
			t.Fatal(err)
		}
	}
	snap := live.Snapshot()
	if snap.Ticks != uint64(crash) || snap.Generation != live.Generation() {
		t.Fatalf("snapshot counters (%d, %d) disagree with evaluator (%d, %d)",
			snap.Ticks, snap.Generation, crash, live.Generation())
	}
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var thawed StreamSnapshot
	if err := json.Unmarshal(raw, &thawed); err != nil {
		t.Fatal(err)
	}
	resumed, err := NewStreamEvaluator(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Restore(&thawed); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if resumed.Generation() != live.Generation() || !plansEqual(resumed.Plans(), live.Plans()) {
		t.Fatal("restored table differs from the live one at the snapshot point")
	}
	// Catch-up: only the post-snapshot ticks, in lockstep with the
	// never-crashed evaluator.
	for i := crash; i < n; i++ {
		row := set.PricesAt(set.Start() + int64(i)*set.Step())
		want, err := live.Advance(row)
		if err != nil {
			t.Fatal(err)
		}
		got, err := resumed.Advance(row)
		if err != nil {
			t.Fatal(err)
		}
		if got.Generation != want.Generation || got.Tick != want.Tick || got.Changed != want.Changed {
			t.Fatalf("tick %d: resumed (gen %d tick %d changed %v) vs live (gen %d tick %d changed %v)",
				i, got.Generation, got.Tick, got.Changed, want.Generation, want.Tick, want.Changed)
		}
		if !plansEqual(got.Plans, want.Plans) {
			t.Fatalf("tick %d: resumed table diverges from the live one", i)
		}
	}
}

// TestStreamSnapshotRefusals pins every way Restore must say no: a
// tampered window, a tampered digest, mismatched geometry, and an
// evaluator that has already ingested ticks.
func TestStreamSnapshotRefusals(t *testing.T) {
	set := paperRegimes()["low/day1"]
	cfg := streamConfigFor(set)
	cfg.CrossCheckEvery = -1
	se, err := NewStreamEvaluator(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if _, err := se.Advance(set.PricesAt(set.Start() + int64(i)*set.Step())); err != nil {
			t.Fatal(err)
		}
	}
	snap := se.Snapshot()

	fresh := func() *StreamEvaluator {
		ev, err := NewStreamEvaluator(nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return ev
	}
	copySnap := func() *StreamSnapshot {
		c := *snap
		c.Rows = make([][]float64, len(snap.Rows))
		for i, row := range snap.Rows {
			c.Rows[i] = append([]float64(nil), row...)
		}
		return &c
	}

	tampered := copySnap()
	tampered.Rows[3][0] *= 7
	if err := fresh().Restore(tampered); err == nil || !strings.Contains(err.Error(), "digest") {
		t.Fatalf("tampered window restored: %v", err)
	}

	badDigest := copySnap()
	badDigest.StateDigest = "deadbeefdeadbeef"
	if err := fresh().Restore(badDigest); err == nil || !strings.Contains(err.Error(), "digest") {
		t.Fatalf("tampered digest restored: %v", err)
	}

	wrongStep := copySnap()
	wrongStep.Step++
	if err := fresh().Restore(wrongStep); err == nil {
		t.Fatal("mismatched step restored")
	}

	wrongZones := copySnap()
	wrongZones.Zones = append([]string(nil), wrongZones.Zones...)
	wrongZones.Zones[0] = "nowhere-1x"
	if err := fresh().Restore(wrongZones); err == nil {
		t.Fatal("mismatched zones restored")
	}

	used := fresh()
	if _, err := used.Advance(set.PricesAt(set.Start())); err != nil {
		t.Fatal(err)
	}
	if err := used.Restore(copySnap()); err == nil {
		t.Fatal("restore onto a ticked evaluator succeeded")
	}
}

// TestStreamSnapshotEmpty pins the pre-first-tick snapshot: restoring
// it is a no-op, and the restored evaluator's first tick matches a
// fresh evaluator's.
func TestStreamSnapshotEmpty(t *testing.T) {
	set := paperRegimes()["moderate/day1"]
	cfg := streamConfigFor(set)
	cfg.CrossCheckEvery = -1
	a, err := NewStreamEvaluator(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := a.Snapshot()
	if len(snap.Rows) != 0 || snap.Ticks != 0 || snap.Generation != 0 {
		t.Fatalf("fresh snapshot not empty: %+v", snap)
	}
	b, err := NewStreamEvaluator(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(snap); err != nil {
		t.Fatalf("empty restore: %v", err)
	}
	row := set.PricesAt(set.Start())
	ua, err := a.Advance(row)
	if err != nil {
		t.Fatal(err)
	}
	ub, err := b.Advance(row)
	if err != nil {
		t.Fatal(err)
	}
	if ua.Generation != ub.Generation || !plansEqual(ua.Plans, ub.Plans) {
		t.Fatal("empty-restored evaluator diverges from a fresh one")
	}
}
